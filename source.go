package dmfsgd

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/engine"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sim"
)

// Measurement is one timestamped directed measurement: node I observed
// Value for the path I → J at stream time T (seconds, or whatever unit
// the producing Source documents). It is the unit of the ingestion
// layer — every measurement that reaches the engine flows through a
// Source of these, whether it came from sampling a ground-truth matrix,
// replaying a trace or an NDJSON capture, or live probing.
type Measurement = dataset.Measurement

// Source is a pull-based stream of measurements — the single seam
// through which training data reaches a Session. NextBatch fills buf
// with the next measurements and returns how many it wrote:
//
//   - n > 0 with a nil error while the stream continues;
//   - 0 with io.EOF when a finite stream is drained (Session.Run then
//     returns nil early, like an exhausted trace always has);
//   - 0 with ctx's error when a blocking source was cancelled.
//
// Implementations may block (a live capture waiting for probes) and
// must honor ctx while doing so; finite replays simply copy and never
// block. A Source is a stateful single-consumer stream: call NextBatch
// from one goroutine at a time, and do not share one source between
// sessions.
//
// Built-in sources: MatrixSource (random sampling of a static matrix),
// TraceSource (time-ordered trace replay), StreamSource (NDJSON
// capture replay), SwarmSource (live probe capture). Scenario
// decorators — WithChurn, WithDrift, WithNoise, WithDrop — wrap any
// Source and compose freely; they expose the wrapped source through an
// Unwrap() Source method, and Session inspects the whole chain when it
// needs to know what is at the bottom.
type Source interface {
	NextBatch(ctx context.Context, buf []Measurement) (int, error)
}

// An EpochSource is a Source whose stream is a finite, time-ordered
// replay that can be consumed in per-epoch groups: Session.RunEpochs
// collects n·probesPerNode usable measurements per epoch and trains on
// each group through the engine's sharded batch-apply path. TraceSource
// and StreamSource are EpochSources, and decorating one preserves the
// property (the session inspects the full Unwrap chain). Endless
// samplers are not: a bare MatrixSource session trains epochs through
// the engine's native parallel scheduler instead, and RunEpochs on any
// other structure returns ErrDynamicTrace.
type EpochSource interface {
	Source
	// EpochStructure reports whether the stream can be grouped into
	// training epochs.
	EpochStructure() bool
}

// A CursorSource is a Source whose stream position can be captured and
// restored — what lets a checkpoint resume the same stream where it
// stopped. Cursor returns the layer's position counters (an opaque,
// layer-defined encoding); Seek fast-forwards a freshly constructed
// layer to a captured cursor, consuming whatever private randomness the
// skipped records would have consumed, and fails when the cursor cannot
// belong to this layer. The built-in replay sources and the stateful
// scenario decorators implement it; layers whose behavior is a pure
// function of the measurements flowing through them (WithChurn,
// WithDrift) need no cursor, and a bound MatrixSource's sampling stream
// is carried by the session's master RNG, so its cursor is only the
// emission counter that drives measurement timestamps.
//
// Session.Checkpoint records the cursors of every CursorSource in the
// source chain, outermost first; ResumeSession hands them back to a
// freshly built chain of the same shape. (A WithWAL decorator is not a
// cursor layer — its sequence travels in the checkpoint's WALSeq field
// and in every commit barrier — so attaching or detaching the log does
// not change a chain's shape.)
type CursorSource interface {
	Source
	Cursor() []uint64
	Seek(cur []uint64) error
}

// sourceUnwrapper is the decorator convention: expose the wrapped
// source so the session can inspect and bind the whole chain.
type sourceUnwrapper interface{ Unwrap() Source }

// collectCursors gathers the cursor of every CursorSource in the chain,
// outermost first.
func collectCursors(src Source) [][]uint64 {
	var out [][]uint64
	for src != nil {
		if cs, ok := src.(CursorSource); ok {
			out = append(out, cs.Cursor())
		}
		u, ok := src.(sourceUnwrapper)
		if !ok {
			break
		}
		src = u.Unwrap()
	}
	return out
}

// seekCursors restores captured cursors into a freshly built chain of
// the same shape: the number of cursor-bearing layers must match.
func seekCursors(src Source, cur [][]uint64) error {
	seen := 0
	for src != nil {
		if cs, ok := src.(CursorSource); ok {
			if seen >= len(cur) {
				return fmt.Errorf("source chain has more cursor layers than the checkpoint's %d", len(cur))
			}
			if err := cs.Seek(cur[seen]); err != nil {
				return err
			}
			seen++
		}
		u, ok := src.(sourceUnwrapper)
		if !ok {
			break
		}
		src = u.Unwrap()
	}
	if seen != len(cur) {
		return fmt.Errorf("source chain has %d cursor layers, checkpoint recorded %d", seen, len(cur))
	}
	return nil
}

// cursorLen validates a cursor's arity for a layer.
func cursorLen(cur []uint64, want int, layer string) error {
	if len(cur) != want {
		return fmt.Errorf("%s cursor carries %d values, want %d", layer, len(cur), want)
	}
	return nil
}

// sessionBinder is implemented by sources that adapt to a session's
// topology and RNG stream when attached (MatrixSource).
type sessionBinder interface{ bindSession(drv *sim.Driver) }

// sourceHasEpochs walks the decorator chain looking for an EpochSource.
func sourceHasEpochs(src Source) bool {
	for src != nil {
		if es, ok := src.(EpochSource); ok && es.EpochStructure() {
			return true
		}
		u, ok := src.(sourceUnwrapper)
		if !ok {
			return false
		}
		src = u.Unwrap()
	}
	return false
}

// bindSource attaches every bindable source in the chain to the driver.
func bindSource(src Source, drv *sim.Driver) {
	for src != nil {
		if b, ok := src.(sessionBinder); ok {
			b.bindSession(drv)
		}
		u, ok := src.(sourceUnwrapper)
		if !ok {
			return
		}
		src = u.Unwrap()
	}
}

// sourceCtxMask throttles context polling on sampling loops.
const sourceCtxMask = 4095

// MatrixSource samples a static ground-truth matrix the way the
// sequential protocol does: at each step a uniformly random node probes
// a uniformly random member of its neighbor set, and the pair's matrix
// entry is emitted as the measured value (missing entries fail the
// probe and are resampled). The stream is endless and deterministic for
// a fixed seed. T advances by 1/n per emitted measurement, so one unit
// of stream time corresponds to one probing round of the network — the
// time base the scenario decorators act on.
//
// When a MatrixSource is attached to a Session (NewSession builds one
// implicitly for static datasets; NewSessionFromSource binds explicit
// ones), it adopts the session's neighbor topology and master RNG
// stream, which makes draining it through Session.Run bit-identical to
// the classic sequential driver at a fixed seed. Standalone — e.g.
// feeding cmd/datagen -stream — it derives its own topology from k and
// seed, matching the topology a session with the same seed and k would
// build.
type MatrixSource struct {
	ds      *Dataset
	k       int
	seed    int64
	sample  func() (i, j int)
	emitted int
}

// NewMatrixSource builds a sampling source over ds's ground-truth
// matrix. k is the neighbor count per node (0 = the dataset default);
// seed drives topology and sampling in standalone use.
func NewMatrixSource(ds *Dataset, k int, seed int64) (*MatrixSource, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrInvalidConfig)
	}
	if k == 0 {
		k = ds.DefaultK
	}
	if k <= 0 || k >= ds.N() {
		return nil, fmt.Errorf("%w: matrix source k=%d out of (0,%d)", ErrInvalidConfig, k, ds.N())
	}
	return &MatrixSource{ds: ds, k: k, seed: seed}, nil
}

// bindSession adopts the driver's topology and master RNG stream. A
// driver for a different node count is ignored (the source keeps its
// standalone schedule).
func (ms *MatrixSource) bindSession(drv *sim.Driver) {
	if drv.N() != ms.ds.N() {
		return
	}
	ms.sample = drv.SampleProbe
}

// init builds the standalone probe schedule on first use: the same
// NeighborMask construction a driver performs, sampled from a private
// stream seeded like the driver's master stream.
func (ms *MatrixSource) init() {
	if ms.sample != nil {
		return
	}
	rng := rand.New(rand.NewSource(ms.seed))
	_, neighbors := mat.NeighborMask(ms.ds.N(), ms.k, ms.ds.Metric.Symmetric(), rng)
	ms.sample = func() (int, int) {
		i := rng.Intn(len(neighbors))
		j := neighbors[i][rng.Intn(len(neighbors[i]))]
		return i, j
	}
}

// Cursor returns the emission counter (it drives measurement
// timestamps). A bound source's sampling stream lives in the session's
// master RNG, which the session checkpoint carries separately.
func (ms *MatrixSource) Cursor() []uint64 { return []uint64{uint64(ms.emitted)} }

// Seek restores the emission counter on a fresh source.
func (ms *MatrixSource) Seek(cur []uint64) error {
	if err := cursorLen(cur, 1, "matrix source"); err != nil {
		return err
	}
	ms.emitted = int(cur[0])
	return nil
}

// NextBatch fills buf with sampled measurements. The stream never ends;
// the only non-nil error is ctx's, polled every few thousand probe
// attempts so a matrix with much missing data cannot stall
// cancellation.
func (ms *MatrixSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	ms.init()
	m := ms.ds.Matrix
	n := float64(ms.ds.N())
	filled := 0
	for attempts := 0; filled < len(buf); attempts++ {
		if attempts&sourceCtxMask == 0 {
			if err := ctx.Err(); err != nil {
				return filled, err
			}
		}
		i, j := ms.sample()
		if m.IsMissing(i, j) {
			continue // failed probe: resample, like the sequential driver
		}
		ms.emitted++
		buf[filled] = Measurement{T: float64(ms.emitted) / n, I: i, J: j, Value: m.At(i, j)}
		filled++
	}
	return filled, nil
}

// TraceSource replays a dataset's dynamic measurement trace in time
// order — the Harvard workload. The stream is finite: NextBatch returns
// io.EOF once the trace is exhausted. It has epoch structure
// (EpochStructure reports true), so Session.RunEpochs can train on
// per-epoch measurement groups instead of rejecting the dataset.
type TraceSource struct {
	trace []Measurement
	pos   int
}

// NewTraceSource builds a replay source over ds's trace.
func NewTraceSource(ds *Dataset) (*TraceSource, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrInvalidConfig)
	}
	if ds.Trace == nil {
		return nil, fmt.Errorf("%w: dataset %q has no dynamic trace", ErrInvalidConfig, ds.Name)
	}
	return &TraceSource{trace: ds.Trace}, nil
}

// EpochStructure reports that a trace can be consumed in epoch groups.
func (ts *TraceSource) EpochStructure() bool { return true }

// Cursor returns the replay position.
func (ts *TraceSource) Cursor() []uint64 { return []uint64{uint64(ts.pos)} }

// Seek restores the replay position on a fresh source.
func (ts *TraceSource) Seek(cur []uint64) error {
	if err := cursorLen(cur, 1, "trace source"); err != nil {
		return err
	}
	if cur[0] > uint64(len(ts.trace)) {
		return fmt.Errorf("trace cursor %d past the %d-record trace", cur[0], len(ts.trace))
	}
	ts.pos = int(cur[0])
	return nil
}

// NextBatch copies the next trace records into buf; io.EOF at the end.
func (ts *TraceSource) NextBatch(_ context.Context, buf []Measurement) (int, error) {
	if ts.pos >= len(ts.trace) {
		return 0, io.EOF
	}
	n := copy(buf, ts.trace[ts.pos:])
	ts.pos += n
	return n, nil
}

// StreamSource replays an NDJSON measurement stream — one
// {"t":…,"i":…,"j":…,"v":…} object per line, the format cmd/datagen
// -stream writes and WriteMeasurements produces from a live capture —
// without materializing it: records decode on demand, so a multi-hour
// capture replays in constant memory. Records are consumed in file
// order (captures are written in time order); a malformed or invalid
// record stops the stream with a descriptive error. The stream is
// finite and has epoch structure, like TraceSource.
type StreamSource struct {
	sc       *dataset.StreamScanner
	consumed uint64
	err      error
}

// NewStreamSource builds a replay source reading NDJSON from r.
func NewStreamSource(r io.Reader) *StreamSource {
	return &StreamSource{sc: dataset.NewStreamScanner(r)}
}

// EpochStructure reports that a capture can be consumed in epoch groups.
func (ss *StreamSource) EpochStructure() bool { return true }

// Cursor returns the number of records consumed.
func (ss *StreamSource) Cursor() []uint64 { return []uint64{ss.consumed} }

// Seek skips cur[0] records on a freshly opened source (the underlying
// reader must be positioned at the start of the same capture). A
// capture too short to skip that far fails the seek.
func (ss *StreamSource) Seek(cur []uint64) error {
	if err := cursorLen(cur, 1, "stream source"); err != nil {
		return err
	}
	var m Measurement
	for ss.consumed < cur[0] {
		if err := ss.sc.Next(&m); err != nil {
			return fmt.Errorf("stream cursor %d unreachable after %d records: %w", cur[0], ss.consumed, err)
		}
		ss.consumed++
	}
	return nil
}

// NextBatch decodes up to len(buf) records; io.EOF at a clean end of
// stream, a parse error (sticky) otherwise.
func (ss *StreamSource) NextBatch(_ context.Context, buf []Measurement) (int, error) {
	if ss.err != nil {
		return 0, ss.err
	}
	filled := 0
	for filled < len(buf) {
		if err := ss.sc.Next(&buf[filled]); err != nil {
			ss.err = err
			if filled > 0 && err == io.EOF {
				return filled, nil
			}
			return filled, err
		}
		filled++
		ss.consumed++
	}
	return filled, nil
}

// WriteMeasurements writes measurements as an NDJSON stream consumable
// by NewStreamSource — the capture half of the replay story (write what
// a SwarmSource observed, replay it deterministically later).
func WriteMeasurements(w io.Writer, ms []Measurement) error {
	return dataset.WriteStream(w, ms)
}

// ReadMeasurements materializes a whole NDJSON stream. Replay should
// prefer NewStreamSource, which streams in constant memory.
func ReadMeasurements(r io.Reader) ([]Measurement, error) {
	return dataset.ReadStream(r)
}

// --- Scenario decorators ---

// nodeUniform returns a deterministic uniform in [0,1) for (seed, i) —
// used to select scenario-affected node subsets without consuming any
// stream randomness. Per-node streams derive with engine.DeriveSeed,
// the same splitmix64 construction the parallel scheduler uses.
func nodeUniform(seed int64, i int) float64 {
	return rand.New(rand.NewSource(engine.DeriveSeed(seed, i))).Float64()
}

// ChurnConfig parameterizes WithChurn.
type ChurnConfig struct {
	// Start is the stream time at which churn begins; before it every
	// node is up.
	Start float64
	// MeanUp and MeanDown are the mean online/offline durations, in the
	// stream's time unit (exponentially distributed). Both must be
	// positive.
	MeanUp, MeanDown float64
	// Fraction is the fraction of nodes that churn (selected
	// deterministically from Seed); the rest stay up forever. 0 means
	// every node churns.
	Fraction float64
	// Seed drives the per-node on/off schedules.
	Seed int64
}

// churnNode is one node's alternating-renewal schedule, generated
// lazily from its private stream: deterministic for (Seed, node)
// regardless of which measurements happen to query it.
type churnNode struct {
	rng  *rand.Rand
	up   bool
	next float64 // stream time of the next state toggle
}

type churnSource struct {
	src   Source
	cfg   ChurnConfig
	nodes map[int]*churnNode
}

// WithChurn decorates src with node churn: churning nodes alternate
// between online and offline periods (exponential with means MeanUp and
// MeanDown), and measurements whose observer or target is offline at
// their stream time are dropped — the path was not probed because one
// endpoint was gone. Node state is a deterministic function of the
// config, so a churned stream replays identically. Panics on a
// non-positive MeanUp/MeanDown or a Fraction outside [0,1].
func WithChurn(src Source, cfg ChurnConfig) Source {
	if !(cfg.MeanUp > 0) || !(cfg.MeanDown > 0) {
		panic(fmt.Sprintf("dmfsgd: WithChurn means must be positive, got up=%v down=%v", cfg.MeanUp, cfg.MeanDown))
	}
	if cfg.Fraction < 0 || cfg.Fraction > 1 || math.IsNaN(cfg.Fraction) {
		panic(fmt.Sprintf("dmfsgd: WithChurn fraction %v out of [0,1]", cfg.Fraction))
	}
	if cfg.Fraction == 0 {
		cfg.Fraction = 1
	}
	return &churnSource{src: src, cfg: cfg, nodes: make(map[int]*churnNode)}
}

// Unwrap returns the decorated source.
func (c *churnSource) Unwrap() Source { return c.src }

// alive reports whether node i is up at stream time t, advancing its
// schedule as needed.
func (c *churnSource) alive(i int, t float64) bool {
	if t < c.cfg.Start {
		return true
	}
	st := c.nodes[i]
	if st == nil {
		rng := rand.New(rand.NewSource(engine.DeriveSeed(c.cfg.Seed, i)))
		st = &churnNode{rng: rng, up: true, next: math.Inf(1)}
		if rng.Float64() < c.cfg.Fraction {
			st.next = c.cfg.Start + rng.ExpFloat64()*c.cfg.MeanUp
		}
		c.nodes[i] = st
	}
	for t >= st.next {
		st.up = !st.up
		mean := c.cfg.MeanUp
		if !st.up {
			mean = c.cfg.MeanDown
		}
		st.next += st.rng.ExpFloat64() * mean
	}
	return st.up
}

func (c *churnSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	for {
		n, err := c.src.NextBatch(ctx, buf)
		kept := 0
		for _, m := range buf[:n] {
			if c.alive(m.I, m.T) && c.alive(m.J, m.T) {
				buf[kept] = m
				kept++
			}
		}
		if kept > 0 || err != nil || n == 0 {
			return kept, err
		}
	}
}

// DriftConfig parameterizes WithDrift.
type DriftConfig struct {
	// Rate is the multiplicative drift per unit of stream time: a
	// measurement at time T is scaled by exp(Rate·(T−Start)). Positive
	// rates inflate the metric (RTTs degrade), negative deflate it.
	Rate float64
	// Start is the stream time at which the drift begins.
	Start float64
	// Fraction is the fraction of nodes whose paths drift (a
	// measurement drifts when either endpoint is affected), selected
	// deterministically from Seed. 0 means every node.
	Fraction float64
	// Seed selects the affected node subset.
	Seed int64
}

type driftSource struct {
	src      Source
	cfg      DriftConfig
	affCache map[int]bool
}

// WithDrift decorates src with a slow metric shift: affected
// measurements are scaled by exp(Rate·(T−Start)), modelling paths whose
// performance drifts away from the ground truth the predictor was
// trained on (congestion building up, a route change degrading a
// provider). Ground truth used for evaluation does not move, so drift
// shows up as label noise growing with time. Deterministic; panics on a
// non-finite Rate or a Fraction outside [0,1].
func WithDrift(src Source, cfg DriftConfig) Source {
	if math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) {
		panic(fmt.Sprintf("dmfsgd: WithDrift rate %v must be finite", cfg.Rate))
	}
	if cfg.Fraction < 0 || cfg.Fraction > 1 || math.IsNaN(cfg.Fraction) {
		panic(fmt.Sprintf("dmfsgd: WithDrift fraction %v out of [0,1]", cfg.Fraction))
	}
	if cfg.Fraction == 0 {
		cfg.Fraction = 1
	}
	return &driftSource{src: src, cfg: cfg, affCache: make(map[int]bool)}
}

// Unwrap returns the decorated source.
func (d *driftSource) Unwrap() Source { return d.src }

func (d *driftSource) affected(i int) bool {
	if d.cfg.Fraction == 1 {
		return true
	}
	aff, ok := d.affCache[i]
	if !ok {
		aff = nodeUniform(d.cfg.Seed, i) < d.cfg.Fraction
		d.affCache[i] = aff
	}
	return aff
}

func (d *driftSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	n, err := d.src.NextBatch(ctx, buf)
	for k := range buf[:n] {
		m := &buf[k]
		if m.T <= d.cfg.Start {
			continue
		}
		if d.affected(m.I) || d.affected(m.J) {
			m.Value *= math.Exp(d.cfg.Rate * (m.T - d.cfg.Start))
		}
	}
	return n, err
}

type noiseSource struct {
	src   Source
	sigma float64
	rng   *rand.Rand
	seen  uint64 // records noised; each consumed one NormFloat64
}

// WithNoise decorates src with lognormal measurement noise: each value
// is scaled by exp(σ·N(0,1) − σ²/2), a mean-preserving model of
// imperfect measurement tools. This folds the live-session
// WithMeasurementNoise knob into the ingestion layer, where it applies
// to every source. sigma 0 returns src unchanged; panics on a negative
// or non-finite sigma.
func WithNoise(src Source, sigma float64, seed int64) Source {
	if sigma < 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		panic(fmt.Sprintf("dmfsgd: WithNoise sigma %v must be non-negative and finite", sigma))
	}
	if sigma == 0 {
		return src
	}
	return &noiseSource{src: src, sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Unwrap returns the decorated source.
func (ns *noiseSource) Unwrap() Source { return ns.src }

// Cursor returns the count of records noised so far.
func (ns *noiseSource) Cursor() []uint64 { return []uint64{ns.seen} }

// Seek fast-forwards a fresh decorator's private noise stream past the
// records already consumed (one normal draw per record).
func (ns *noiseSource) Seek(cur []uint64) error {
	if err := cursorLen(cur, 1, "noise decorator"); err != nil {
		return err
	}
	for ; ns.seen < cur[0]; ns.seen++ {
		ns.rng.NormFloat64()
	}
	return nil
}

func (ns *noiseSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	n, err := ns.src.NextBatch(ctx, buf)
	for k := range buf[:n] {
		buf[k].Value *= math.Exp(ns.rng.NormFloat64()*ns.sigma - ns.sigma*ns.sigma/2)
		ns.seen++
	}
	return n, err
}

type dropSource struct {
	src  Source
	rate float64
	rng  *rand.Rand
	seen uint64 // records considered; each consumed one Float64
}

// WithDrop decorates src with measurement loss: each measurement is
// independently dropped with the given probability, folding the
// live-session packet-loss knob (WithPacketLoss) into the ingestion
// layer. rate 0 returns src unchanged; panics on a rate outside [0,1).
func WithDrop(src Source, rate float64, seed int64) Source {
	if rate < 0 || rate >= 1 || math.IsNaN(rate) {
		panic(fmt.Sprintf("dmfsgd: WithDrop rate %v out of [0,1)", rate))
	}
	if rate == 0 {
		return src
	}
	return &dropSource{src: src, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Unwrap returns the decorated source.
func (ds *dropSource) Unwrap() Source { return ds.src }

// Cursor returns the count of records considered so far.
func (ds *dropSource) Cursor() []uint64 { return []uint64{ds.seen} }

// Seek fast-forwards a fresh decorator's private drop stream past the
// records already considered (one uniform draw per record).
func (ds *dropSource) Seek(cur []uint64) error {
	if err := cursorLen(cur, 1, "drop decorator"); err != nil {
		return err
	}
	for ; ds.seen < cur[0]; ds.seen++ {
		ds.rng.Float64()
	}
	return nil
}

func (ds *dropSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	for {
		n, err := ds.src.NextBatch(ctx, buf)
		kept := 0
		for _, m := range buf[:n] {
			ds.seen++
			if ds.rng.Float64() < ds.rate {
				continue
			}
			buf[kept] = m
			kept++
		}
		if kept > 0 || err != nil || n == 0 {
			return kept, err
		}
	}
}
