package dmfsgd

import (
	"context"
	"testing"
)

// TestSnapshotCachedAtQuiescence: with no shard advanced between calls,
// Session.Snapshot must return the previously materialized snapshot — the
// same pointer, hence bit-identical for free — and a later call after more
// training must produce a fresh, correct snapshot. This is the regression
// test for the version-aware materialization path.
func TestSnapshotCachedAtQuiescence(t *testing.T) {
	ds := NewMeridianDataset(60, 5)
	sess, err := NewSession(ds, WithSeed(5), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 5000); err != nil {
		t.Fatal(err)
	}

	snap1 := sess.Snapshot()
	snap2 := sess.Snapshot()
	if snap1 != snap2 {
		t.Fatal("quiescent Snapshot() materialized a new copy")
	}
	if snap1.StoreShards() != 4 {
		t.Fatalf("StoreShards = %d, want 4", snap1.StoreShards())
	}
	vers := snap1.Versions()
	if len(vers) != 4 {
		t.Fatalf("version vector length %d, want 4", len(vers))
	}

	// More training invalidates the cache; the delta-refreshed snapshot
	// must be a new object, bit-identical to the live coordinates.
	if err := sess.Run(context.Background(), 5000); err != nil {
		t.Fatal(err)
	}
	snap3 := sess.Snapshot()
	if snap3 == snap1 {
		t.Fatal("Snapshot() returned a stale cache after training")
	}
	for i := 0; i < ds.N(); i++ {
		for j := 0; j < ds.N(); j++ {
			if i == j {
				continue
			}
			if got, want := snap3.Predict(i, j), sess.Predict(i, j); got != want {
				t.Fatalf("delta-refreshed Predict(%d,%d) = %v, live = %v", i, j, got, want)
			}
		}
	}
	// The older snapshot is untouched by the refresh (immutability).
	if snap1.Predict(0, 1) == 0 && snap3.Predict(0, 1) == 0 {
		t.Log("zero predictions; topology degenerate?") // not fatal, just loud
	}

	// Version vectors advance monotonically.
	vers3 := snap3.Versions()
	newer := false
	for p := range vers {
		if vers3[p] < vers[p] {
			t.Fatalf("shard %d version went backwards: %d → %d", p, vers[p], vers3[p])
		}
		if vers3[p] > vers[p] {
			newer = true
		}
	}
	if !newer {
		t.Fatal("training advanced no shard version")
	}
}

// TestSnapshotCacheEpochAndFlatRoundTrip: the epoch scheduler invalidates
// the cache through the barrier bump, and Flat/NewSnapshotFlat round-trip
// a snapshot bit-exactly (the follower serving path).
func TestSnapshotCacheEpochAndFlatRoundTrip(t *testing.T) {
	ds := NewMeridianDataset(50, 9)
	sess, err := NewSession(ds, WithSeed(9), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.RunEpochs(context.Background(), 2, 8); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	if _, err := sess.RunEpochs(context.Background(), 1, 8); err != nil {
		t.Fatal(err)
	}
	snap2 := sess.Snapshot()
	if snap2 == snap {
		t.Fatal("epoch training did not invalidate the snapshot cache")
	}

	u, v := snap2.Flat()
	clone, err := NewSnapshotFlat(snap2.Metric(), snap2.Tau(), snap2.Steps(), snap2.Dim(), u, v)
	if err != nil {
		t.Fatal(err)
	}
	if clone.N() != snap2.N() || clone.Steps() != snap2.Steps() || clone.Tau() != snap2.Tau() {
		t.Fatalf("flat round trip metadata: %d/%d/%v", clone.N(), clone.Steps(), clone.Tau())
	}
	for i := 0; i < snap2.N(); i++ {
		for j := 0; j < snap2.N(); j++ {
			if clone.Predict(i, j) != snap2.Predict(i, j) {
				t.Fatalf("flat round trip Predict(%d,%d) differs", i, j)
			}
		}
	}
}

func TestNewSnapshotFlatValidation(t *testing.T) {
	if _, err := NewSnapshotFlat(RTT, 1, 0, 0, []float64{1}, []float64{1}); err == nil {
		t.Error("zero rank accepted")
	}
	if _, err := NewSnapshotFlat(RTT, 1, 0, 2, []float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("non-multiple length accepted")
	}
	if _, err := NewSnapshotFlat(RTT, 1, 0, 2, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("unequal lengths accepted")
	}
	bad := []float64{1, inf()}
	if _, err := NewSnapshotFlat(RTT, 1, 0, 2, bad, []float64{1, 2}); err == nil {
		t.Error("non-finite value accepted")
	}
	snap, err := NewSnapshotFlat(RTT, 2.5, 7, 2, []float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if snap.N() != 2 || snap.Dim() != 2 || snap.Steps() != 7 {
		t.Fatalf("metadata %d/%d/%d", snap.N(), snap.Dim(), snap.Steps())
	}
	if snap.StoreShards() != 0 || snap.Versions() != nil {
		t.Error("assembled snapshot claims store versions")
	}
	// u₀·v₁ = 1·7 + 2·8 = 23.
	if got := snap.Predict(0, 1); got != 23 {
		t.Fatalf("Predict(0,1) = %v, want 23", got)
	}
}

func inf() float64 { return 1 / zero }

var zero float64
