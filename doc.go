// Package dmfsgd is a Go implementation of Decentralized Matrix
// Factorization by Stochastic Gradient Descent (DMFSGD) for predicting
// end-to-end network performance *classes*, reproducing
//
//	Liao, Du, Geurts, Leduc — "Decentralized Prediction of End-to-End
//	Network Performance Classes", ACM CoNEXT 2011.
//
// # The idea
//
// Full-mesh probing of n² network paths does not scale. DMFSGD measures
// only k·n pairs (each node probes k random neighbors) and predicts the
// rest by low-rank matrix completion: the matrix of pairwise performance
// classes ("good" = +1, "bad" = −1) factorizes as X ≈ U·Vᵀ with rank
// r ≪ n because Internet paths share infrastructure. Every node stores
// only its own rows uᵢ and vᵢ of the factors and refines them by
// stochastic gradient descent on each measurement, exchanging coordinates
// piggybacked on probes. No landmarks, no central server, no matrix is
// ever materialized.
//
// The estimate of the path i→j is the scalar x̂ᵢⱼ = uᵢ·vⱼᵀ; its sign is
// the predicted class, and its magnitude orders candidate peers from most
// to least likely good.
//
// # Package layout
//
// This root package is the stable public API:
//
//   - Node: an embeddable DMFSGD participant for applications that bring
//     their own networking (observe measurements, predict classes).
//   - Simulation: deterministic experiments over generated or loaded
//     datasets (this is what reproduces the paper's figures).
//   - Swarm: a live concurrent deployment of goroutine nodes exchanging
//     real protocol messages over in-memory or UDP transports.
//   - Dataset constructors for the three evaluation workloads (Harvard,
//     Meridian, HP-S3 — synthetic equivalents; see DESIGN.md).
//
// Implementation packages live under internal/ (sgd, sim, runtime, wire,
// transport, eval, …); cmd/dmfbench regenerates every table and figure of
// the paper, and examples/ contains runnable walkthroughs.
//
// # Execution engine
//
// Both drivers — the deterministic simulator and the concurrent runtime —
// execute on one shared layer, internal/engine: a sharded coordinate
// store (nodes partitioned across P shards, each shard owning its nodes'
// (uᵢ, vᵢ) rows behind one lock) plus two schedulers over it. The
// sequential scheduler reproduces the historical single-stream semantics
// bit for bit; the parallel epoch scheduler fans shard sweeps out to a
// worker pool while staying deterministic for a fixed seed regardless of
// shard count (per-node RNG streams, epoch-start snapshots for peer
// reads, cross-shard ABW updates routed through mailboxes and applied in
// sorted order at the epoch barrier). Evaluation of the O(n²) held-out
// pairs is spread over row-blocks and scales with cores. Shards and
// Workers knobs are surfaced on SimulationConfig and SwarmConfig.
//
// # Quick start
//
//	ds := dmfsgd.NewMeridianDataset(200, 42)   // synthetic RTT matrix
//	sim, _ := dmfsgd.Simulate(ds, dmfsgd.SimulationConfig{})
//	sim.Run(0)                                  // paper's default budget
//	fmt.Printf("AUC=%.3f\n", sim.AUC())
package dmfsgd
