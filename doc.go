// Package dmfsgd is a Go implementation of Decentralized Matrix
// Factorization by Stochastic Gradient Descent (DMFSGD) for predicting
// end-to-end network performance *classes*, reproducing
//
//	Liao, Du, Geurts, Leduc — "Decentralized Prediction of End-to-End
//	Network Performance Classes", ACM CoNEXT 2011.
//
// # The idea
//
// Full-mesh probing of n² network paths does not scale. DMFSGD measures
// only k·n pairs (each node probes k random neighbors) and predicts the
// rest by low-rank matrix completion: the matrix of pairwise performance
// classes ("good" = +1, "bad" = −1) factorizes as X ≈ U·Vᵀ with rank
// r ≪ n because Internet paths share infrastructure. Every node stores
// only its own rows uᵢ and vᵢ of the factors and refines them by
// stochastic gradient descent on each measurement, exchanging coordinates
// piggybacked on probes. No landmarks, no central server, no matrix is
// ever materialized.
//
// The estimate of the path i→j is the scalar x̂ᵢⱼ = uᵢ·vⱼᵀ; its sign is
// the predicted class, and its magnitude orders candidate peers from most
// to least likely good.
//
// # Public API
//
// The root package is organized around four types (see DESIGN.md for
// the full architecture):
//
//   - Session: the context-aware facade over both execution backends —
//     the deterministic simulation driver (default; reproduces the
//     paper's experiments) and the live concurrent swarm (WithLive).
//     Configured with functional options (WithRank, WithTau, WithLoss,
//     WithShards, WithSeed, …) that reject bad values with errors
//     wrapping ErrInvalidConfig. Training runs under a context
//     (Run, RunEpochs) and streams telemetry through Watch.
//   - Source: the ingestion seam — a pull-based, context-aware stream
//     of Measurements through which all training data reaches the
//     engine. MatrixSource samples a static matrix on the classic
//     probe schedule (bit-identical to the sequential driver at a
//     fixed seed), TraceSource replays dynamic traces in time order
//     and in per-epoch groups, StreamSource replays NDJSON captures in
//     constant memory, and SwarmSource taps a live swarm's
//     measurements for capture. Scenario decorators — WithChurn,
//     WithDrift, WithNoise, WithDrop — compose over any source;
//     NewSessionFromSource trains a session from whatever stream
//     results, and NewSession is the thin adapter wrapping a dataset
//     in its canonical source.
//   - Snapshot: an immutable copy of all coordinates, materialized from
//     a Session in one pass. Predict, PredictBatch, Rank and Classify
//     serve unlimited concurrent readers with zero synchronization —
//     the serving surface for heavy prediction traffic (cmd/dmfserve
//     exposes it over HTTP). The hot paths are allocation-free in
//     steady state: PredictBatch scores into a caller-owned buffer,
//     RankInto ranks through a pooled scratch, and NewSnapshotBlocks
//     serves directly over a replica state's immutable per-shard
//     blocks so followers publish fresh snapshots without flattening.
//   - Node: an embeddable DMFSGD participant for applications that bring
//     their own networking (observe measurements, predict classes);
//     NewSnapshot assembles a serving Snapshot from gathered Node
//     coordinates.
//
// Durability: Session.Checkpoint (and SaveCheckpoint, which writes
// atomically and truncates the WAL at the barrier) captures full
// training state — factors, version vector, step counter, RNG stream
// positions and source cursors — and ResumeSession restores it so a
// restarted process continues training bit-identically instead of
// relearning from scratch. WithWAL tees any source chain into an NDJSON
// measurement write-ahead log whose committed tail replays on resume;
// entries already covered by a checkpoint are skipped (idempotent
// replay at the barrier). Both paths scale incrementally:
// CheckpointChain saves per-shard delta checkpoints keyed on the
// version vector with a fresh full base every K saves, and WithWALDir
// rotates the log across bounded segment files that checkpoint
// barriers delete — resume folds the delta chain and replays the
// ordered segment tail to the same bit-identical state. See
// DESIGN.md §8.
//
// Distributed training: Session.RunCluster drains the measurement
// source through a trainer cluster (internal/cluster) instead of the
// local sequential loop — T identically configured sessions each own a
// contiguous shard range, train the same stream in lockstep rounds,
// route cross-shard updates to the owning trainer, and mirror the other
// shards locally, so every member ends bit-identical to the sequential
// run (partition equivalence) and serves the full coordinate view.
// Per-shard vector clocks keyed by (trainer, incarnation, counter) —
// WithIncarnation, persisted in checkpoints — make restarts and
// failover monotone: a shard can never regress. See DESIGN.md §11 and
// the -trainer-id/-cluster-* flags of cmd/dmfserve.
//
// Observability: every binary shares one dependency-free metrics
// registry (internal/metrics) — atomic counters, gauges and fixed-bucket
// histograms with pre-registered label children, so hot-path observation
// is allocation-free — exposed in Prometheus text format on GET /metrics
// (cmd/dmfserve on the serving mux, cmd/dmfnode via -metrics). The same
// registry carries an NDJSON event-trace sink (-trace, schema
// dmftrace/v1) that records cluster rounds, epochs, gossip deltas and
// checkpoint saves with monotonic timestamps, and cmd/dmfload embeds
// before/after scrape deltas (server_delta) in its BENCH_*.json
// artifacts. See DESIGN.md §12.
//
// Project invariants — deterministic iteration in the reproducible
// packages, no wall-clock reads outside the metrics/trace seams,
// dmf_-namespaced metric names, length-checked wire decodes, and
// allocation-free hot paths marked //dmf:zeroalloc — are enforced by a
// dependency-free static-analysis suite (internal/analysis, run as
// `go run ./cmd/dmfvet ./...` in CI) with a //dmf:allow escape hatch
// for justified exceptions. See DESIGN.md §13.
//
// Failures are reported through typed sentinel errors (ErrInvalidConfig,
// ErrStopped, ErrDynamicTrace, ErrLiveSession, ErrCheckpoint, ErrWAL)
// that work with errors.Is; cancelled runs return the context's error.
//
// The previous experiment-harness surface — Simulate/Simulation,
// StartSwarm/Swarm and their config structs — remains as thin deprecated
// shims over Session and keeps reproducing historical fixed-seed outputs
// bit for bit.
//
// # Package layout
//
// Implementation packages live under internal/ (sgd, sim, runtime, wire,
// transport, eval, load, …); cmd/dmfbench regenerates every table and
// figure of the paper, cmd/dmfserve serves predictions over HTTP from a
// Snapshot, cmd/dmfload drives deterministic macro load against either
// and records the BENCH_*.json perf trajectory (DESIGN.md §10), and
// examples/ contains runnable walkthroughs.
//
// # Execution engine
//
// Both backends execute on one shared layer, internal/engine: a sharded
// coordinate store (nodes partitioned across P shards, each shard owning
// its nodes' (uᵢ, vᵢ) rows behind one lock) plus two schedulers over it.
// The sequential scheduler reproduces the historical single-stream
// semantics bit for bit; the parallel epoch scheduler fans shard sweeps
// out to a worker pool while staying deterministic for a fixed seed
// regardless of shard count (per-node RNG streams, epoch-start snapshots
// for peer reads, cross-shard ABW updates routed through mailboxes and
// applied in sorted order at the epoch barrier). Evaluation of the O(n²)
// held-out pairs is spread over row-blocks, scales with cores, caches
// its pair list across calls, and cancels with the caller's context.
//
// # Quick start
//
//	ds := dmfsgd.NewMeridianDataset(200, 42)     // synthetic RTT matrix
//	sess, err := dmfsgd.NewSession(ds, dmfsgd.WithSeed(42))
//	if err != nil { ... }
//	defer sess.Close()
//	sess.Run(ctx, 0)                              // paper's default budget
//	snap := sess.Snapshot()                       // lock-free serving view
//	fmt.Printf("0→9: %v\n", snap.Classify(0, 9))
package dmfsgd
