package dmfsgd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"dmfsgd/internal/ckpt"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/engine"
	"dmfsgd/internal/loss"
)

// Checkpoint writes the session's full training state to w in the
// versioned binary checkpoint format: the flat coordinate factors, the
// per-shard version vector, and — on a deterministic session — the
// counters that make resumed training bit-identical to never having
// stopped (step count, master and per-node RNG stream positions, the
// measurement-WAL sequence already applied, and the source-chain
// cursors). Restore with ResumeSession / ResumeSessionFromSource.
//
// Checkpoint must not run concurrently with Run or RunEpochs on a
// deterministic session (call it between training calls — that is the
// checkpoint barrier); on a live session it may be called at any time
// and captures a per-shard-consistent snapshot, but a live swarm's
// schedule is wall-clock driven, so a live checkpoint records no
// stream positions: ResumeSession restores it as a warm start — the
// factors and step counter carry over, training continues on a fresh
// deterministic stream, and no bit-identity is promised.
//
// Prefer SaveCheckpoint for files: it writes atomically (temp file +
// rename) and truncates the session's WAL at the new barrier.
func (s *Session) Checkpoint(w io.Writer) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	return ckpt.Write(w, s.checkpointState())
}

// SaveCheckpoint durably checkpoints sess to path — temp file in the
// same directory, fsync, atomic rename, so a crash mid-write leaves the
// previous checkpoint intact — and then truncates the session's WAL (if
// one is attached and its sink supports truncation; a rotating dir-mode
// log deletes its fully-covered segment files instead) at the barrier:
// the log's entries are all folded into the new checkpoint, so a
// restart needs only the entries that follow. The crash-consistency
// order is checkpoint-then-truncate; a crash between the two leaves a
// WAL whose entries are all at or below the checkpoint's sequence, and
// replay skips them (idempotent replay at the barrier).
//
// Every save rewrites the full state. Long-running sessions that save
// often should use a CheckpointChain, which writes small delta records
// for the shards that actually advanced and a full base every K saves.
func SaveCheckpoint(sess *Session, path string) error {
	if err := sess.checkOpen(); err != nil {
		return err
	}
	if err := ckpt.WriteFile(path, sess.checkpointState()); err != nil {
		return err
	}
	if sess.wal != nil {
		return sess.wal.truncateBarrier()
	}
	return nil
}

// CheckpointChain is the incremental save policy over a checkpoint
// chain rooted at path: the first save writes a full base; each
// subsequent save writes a delta record carrying only the shards whose
// version-vector entry advanced since the previous save; after
// baseEvery deltas the next save rolls the chain — a fresh full base
// replaces the file at path and the stale deltas are pruned. baseEvery
// ≤ 0 degenerates to SaveCheckpoint's full-rewrite-every-time behavior.
//
// On disk a chain is path, path.d001, path.d002, …; LoadChain (and
// Resume here) folds base + deltas back into one state, ignoring any
// delta that does not extend its predecessor (a stale file from an
// earlier chain epoch, or anything after a torn/corrupt record), so a
// crash at any point between saves leaves a resumable prefix.
type CheckpointChain struct {
	cw *ckpt.ChainWriter
}

// NewCheckpointChain returns the save policy for the chain rooted at
// path, rolling a fresh base after every baseEvery delta saves.
func NewCheckpointChain(path string, baseEvery int) *CheckpointChain {
	return &CheckpointChain{cw: ckpt.NewChainWriter(path, baseEvery)}
}

// Path returns the chain's base checkpoint path.
func (cc *CheckpointChain) Path() string { return cc.cw.Path() }

// Save checkpoints sess to the chain under the base-every-K policy and
// then compacts the session's WAL at the barrier, exactly like
// SaveCheckpoint (both record kinds capture the full counter set, so a
// delta save is as strong a barrier as a base save).
func (cc *CheckpointChain) Save(sess *Session) error {
	if err := sess.checkOpen(); err != nil {
		return err
	}
	if _, err := cc.cw.Save(sess.checkpointState()); err != nil {
		return err
	}
	if sess.wal != nil {
		return sess.wal.truncateBarrier()
	}
	return nil
}

// Resume rebuilds a session from the on-disk chain — base plus every
// delta that extends it — and primes the writer so the next Save
// continues that chain. src follows ResumeSessionFromSource's contract
// when non-nil; a nil src builds the canonical source ResumeSession
// would. wal is the log tail to replay: a single-file reader as in
// ResumeSession, or nil when src carries a rotating dir-mode WAL (the
// segment chain is found and replayed in order automatically). A
// missing base file is the cold path: the session trains from the log
// alone (ErrInvalidConfig when there is no log either); any other
// chain-decode failure is ErrCheckpoint.
func (cc *CheckpointChain) Resume(ds *Dataset, src Source, wal io.Reader, opts ...Option) (*Session, error) {
	c, deltas, err := ckpt.LoadChain(cc.cw.Path())
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %w", ErrCheckpoint, err)
	}
	var vers []uint64
	if c != nil {
		vers = append([]uint64(nil), c.Vers...)
	}
	mk := func(set settings, k int) (Source, error) {
		if src != nil {
			return src, nil
		}
		if ds.Trace != nil {
			return NewTraceSource(ds)
		}
		return NewMatrixSource(ds, k, set.seed)
	}
	s, err := resumeDecoded(ds, c, wal, opts, mk)
	if err != nil {
		return nil, err
	}
	if c != nil {
		cc.cw.Resume(vers, deltas)
	}
	return s, nil
}

// checkpointState assembles the capture.
func (s *Session) checkpointState() *ckpt.Checkpoint {
	store := s.store()
	u, v := store.SnapshotFlat()
	c := &ckpt.Checkpoint{
		N: store.N(), Rank: store.Rank(), Shards: store.Shards(),
		K:     s.k,
		Steps: uint64(s.Steps()),
		Seed:  s.set.seed,
		Tau:   s.tau, Eta: s.set.learningRate, Lambda: s.set.lambda,
		Loss: uint8(s.set.loss), Metric: uint8(s.ds.Metric),
		Incarnation: s.set.incarnation,
		Vers:        store.Versions(nil),
		U:           u, V: v,
	}
	if s.drv != nil {
		c.Draws = s.drv.MasterDraws()
		c.NodeDraws = s.drv.Engine().NodeDraws()
		c.Cursors = collectCursors(s.src)
		if s.wal != nil {
			c.WALSeq = s.wal.Seq()
		}
	}
	return c
}

// ResumeSession rebuilds a deterministic session from a checkpoint
// instead of training from scratch — the restart-without-retrain path.
// The dataset must be the one the checkpoint was trained on (same node
// count and metric; rebuild it with the same generator parameters), and
// the session's measurement source is the canonical one NewSession
// would build (trace replay for dynamic datasets, matrix sampling
// otherwise). Configuration is adopted from the checkpoint — rank, k,
// seed, τ, hyper-parameters, shard count — and explicitly passed
// options that contradict it are rejected with ErrCheckpoint; options
// the checkpoint does not record (WithWorkers) apply as usual.
//
// wal, when non-nil, is the measurement write-ahead log to replay: the
// tail past the checkpoint's sequence is applied through the same paths
// that originally trained it (sequential, or the sharded batch path for
// epoch groups), entries already covered by the checkpoint are skipped,
// and a torn tail — measurements whose application the crash
// interrupted — is discarded, to be re-emitted by the resumed source.
// After a successful resume the session's factors, version vector, step
// counter and stream positions are bit-identical to the run that wrote
// the checkpoint and log, and continued training stays bit-identical to
// an uninterrupted run at the same seed.
//
// ckptR may be nil when wal is not: the cold-replay path for a process
// killed before its first checkpoint. The session is configured from
// opts alone (they must match the run that wrote the log — the replay
// cross-checks its step counter and fails with ErrWAL on a log from a
// different configuration) and the log's committed entries rebuild the
// state from sequence zero. A log whose first segment starts past zero
// (it was truncated at a checkpoint barrier) needs its checkpoint and
// fails the same way.
func ResumeSession(ds *Dataset, ckptR, wal io.Reader, opts ...Option) (*Session, error) {
	return resumeSession(ds, ckptR, wal, opts, func(set settings, k int) (Source, error) {
		if ds.Trace != nil {
			return NewTraceSource(ds)
		}
		return NewMatrixSource(ds, k, set.seed)
	})
}

// ResumeSessionFromSource is ResumeSession for sessions built with
// NewSessionFromSource: src must be a freshly constructed source chain
// of the same shape as the one the checkpoint was taken with (same
// decorators in the same order — the checkpoint carries one cursor per
// cursor-bearing layer and restores each). A WithWAL decorator is the
// exception: its sequence travels in the checkpoint and commit records
// rather than as a chain cursor, so it may be present or absent on
// either side of the restart. When one is present and its sink is the
// same *os.File the wal reader replays from, the file is truncated at
// the last commit barrier and appends continue in place.
func ResumeSessionFromSource(ds *Dataset, src Source, ckptR, wal io.Reader, opts ...Option) (*Session, error) {
	if src == nil {
		return nil, fmt.Errorf("%w: nil source", ErrInvalidConfig)
	}
	return resumeSession(ds, ckptR, wal, opts, func(settings, int) (Source, error) { return src, nil })
}

// resumeSession is the reader-based resume path: decode the checkpoint
// (when given) and hand off to resumeDecoded. A nil ckptR with a
// non-nil wal is the cold-replay path: the log's committed entries
// rebuild the state from scratch into a session configured by opts
// alone (which must match the run that wrote the log — the replay
// step-counter cross-check catches a mismatch as ErrWAL).
func resumeSession(ds *Dataset, ckptR, wal io.Reader, opts []Option, mkSrc func(set settings, k int) (Source, error)) (*Session, error) {
	var c *ckpt.Checkpoint
	if ckptR != nil {
		var err error
		if c, err = ckpt.Read(ckptR); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCheckpoint, err)
		}
	}
	return resumeDecoded(ds, c, wal, opts, mkSrc)
}

// resumeDecoded is the shared resume path; mkSrc builds the measurement
// source once the checkpoint's configuration is merged. With a nil wal
// reader, a source chain carrying a rotating dir-mode WAL replays its
// on-disk segment chain instead; "nothing to resume" (no checkpoint, no
// log of either shape) is ErrInvalidConfig.
func resumeDecoded(ds *Dataset, c *ckpt.Checkpoint, wal io.Reader, opts []Option, mkSrc func(set settings, k int) (Source, error)) (*Session, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrInvalidConfig)
	}
	set := defaultSettings()
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	if set.live {
		return nil, fmt.Errorf("%w: a live swarm's schedule is not checkpointable; resume restores deterministic sessions", ErrLiveSession)
	}
	if c != nil {
		if err := mergeCheckpoint(&set, c, ds); err != nil {
			return nil, err
		}
	}
	s, err := newDeterministicSession(ds, set)
	if err != nil {
		return nil, err
	}
	barrier := uint64(0)
	if c != nil {
		store := s.drv.Engine().Store()
		if store.Rank() != c.Rank || store.Shards() != c.Shards {
			return nil, fmt.Errorf("%w: built store rank=%d shards=%d, checkpoint has %d/%d",
				ErrCheckpoint, store.Rank(), store.Shards(), c.Rank, c.Shards)
		}
		// A deterministic session's construction always consumes master
		// draws, so Draws == 0 identifies a live-session checkpoint:
		// factors and steps are real, but there are no stream positions
		// to restore — the resume is a warm start (training continues
		// from the restored factors on a fresh deterministic stream),
		// not a bit-identical one.
		warm := c.Draws == 0
		// Restore: RNG stream position first (the freshly built driver
		// has already consumed its construction draws from the same
		// seed), then the factors, version vector, step counter and
		// per-node streams.
		if !warm {
			if err := s.drv.FastForwardMaster(c.Draws); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCheckpoint, err)
			}
		}
		store.RestoreFlat(c.U, c.V, c.Vers)
		s.drv.Engine().SetSteps(int(c.Steps))
		if err := s.drv.Engine().RestoreNodeDraws(c.NodeDraws); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCheckpoint, err)
		}
		barrier = c.WALSeq
	}
	src, err := mkSrc(set, s.k)
	if err != nil {
		return nil, err
	}
	if err := s.attachSource(src); err != nil {
		return nil, err
	}
	if c != nil && c.Draws > 0 {
		if err := seekCursors(s.src, c.Cursors); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCheckpoint, err)
		}
	}
	if s.wal != nil {
		// Continue the log's sequence numbering where the barrier left it
		// (replay advances it further from the last commit it applies).
		s.wal.setSeq(barrier)
	}
	segmented := s.wal != nil && s.wal.rot != nil
	switch {
	case wal != nil && segmented:
		return nil, fmt.Errorf("%w: a dir-mode WAL replays its own segment chain; pass a nil wal reader", ErrInvalidConfig)
	case wal != nil:
		if err := s.replayWAL(wal, barrier); err != nil {
			return nil, err
		}
	case segmented:
		if err := s.replayWALSegments(barrier); err != nil {
			return nil, err
		}
	case c == nil:
		return nil, fmt.Errorf("%w: nothing to resume from (no checkpoint, no WAL)", ErrInvalidConfig)
	}
	return s, nil
}

// mergeCheckpoint folds the checkpoint's recorded configuration into
// set, rejecting explicit options that contradict it.
func mergeCheckpoint(set *settings, c *ckpt.Checkpoint, ds *Dataset) error {
	if c.N != ds.N() {
		return fmt.Errorf("%w: checkpoint has %d nodes, dataset has %d", ErrCheckpoint, c.N, ds.N())
	}
	if c.Metric != uint8(ds.Metric) {
		return fmt.Errorf("%w: checkpoint metric %d, dataset measures %v", ErrCheckpoint, c.Metric, ds.Metric)
	}
	if c.K == 0 {
		return fmt.Errorf("%w: checkpoint records no topology (k=0); it is not a session checkpoint", ErrCheckpoint)
	}
	if c.Loss > uint8(loss.Logistic) {
		return fmt.Errorf("%w: unknown loss id %d", ErrCheckpoint, c.Loss)
	}
	conflict := func(name string, explicit bool, got, want any) error {
		if explicit && got != want {
			return fmt.Errorf("%w: option %s=%v contradicts the checkpoint's %v", ErrCheckpoint, name, got, want)
		}
		return nil
	}
	for _, chk := range []error{
		conflict("WithRank", set.rankSet, set.rank, c.Rank),
		conflict("WithK", set.kSet, set.k, c.K),
		conflict("WithShards", set.shardsSet, set.shards, c.Shards),
		conflict("WithSeed", set.seedSet, set.seed, c.Seed),
		conflict("WithTau", set.tauSet, set.tau, c.Tau),
		conflict("WithLearningRate", set.etaSet, set.learningRate, c.Eta),
		conflict("WithLambda", set.lambdaSet, set.lambda, c.Lambda),
		conflict("WithLoss", set.lossSet, set.loss, Loss(c.Loss)),
	} {
		if chk != nil {
			return chk
		}
	}
	set.rank = c.Rank
	set.k = c.K
	set.shards = c.Shards
	set.seed = c.Seed
	set.tau, set.tauSet = c.Tau, true
	set.learningRate = c.Eta
	set.lambda = c.Lambda
	set.loss = Loss(c.Loss)
	return nil
}

// walReplay is the record-at-a-time replay state machine shared by the
// single-file and segmented resume paths: it applies committed batches
// past the barrier, skips what the checkpoint already covers, and holds
// the last commit for the final stream-position restore.
type walReplay struct {
	s       *Session
	barrier uint64
	cur     uint64
	pending []Measurement
	last    *dataset.WALCommit
}

// handle folds one scanned record into the replay.
func (rp *walReplay) handle(rec *dataset.WALRecord) error {
	switch rec.Kind {
	case dataset.WALHeaderRecord:
		if len(rp.pending) != 0 {
			return fmt.Errorf("%w: segment header inside an uncommitted batch", ErrWAL)
		}
		rp.cur = rec.Base
	case dataset.WALMeasurementRecord:
		rp.cur++
		if rp.cur > rp.barrier {
			rp.pending = append(rp.pending, rec.M)
		}
	case dataset.WALCommitRecord:
		co := rec.Commit
		if co.Seq != rp.cur {
			return fmt.Errorf("%w: commit at sequence %d, log position is %d", ErrWAL, co.Seq, rp.cur)
		}
		if co.Seq > rp.barrier {
			if !co.Skip {
				// Skip barriers cover measurements the original run
				// logged but discarded (an interrupted collection);
				// replay discards them the same way and only adopts
				// the recorded stream positions.
				if err := rp.s.applyReplayed(rp.pending, co.Batch); err != nil {
					return err
				}
				mWALReplayed.Add(uint64(len(rp.pending)))
			}
			cc := co
			rp.last = &cc
		}
		rp.pending = rp.pending[:0]
	}
	return nil
}

// finish restores the stream positions the last replayed barrier
// recorded and cross-checks the step counter against the log's.
func (rp *walReplay) finish() error {
	s, last := rp.s, rp.last
	if last == nil {
		return nil
	}
	if got := uint64(s.drv.Steps()); got != last.Steps {
		return fmt.Errorf("%w: replay reached step %d, log committed %d (log belongs to a different run?)", ErrWAL, got, last.Steps)
	}
	if err := s.drv.FastForwardMaster(last.Draws); err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	if err := seekCursors(s.src, last.Cursors); err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	if s.wal != nil {
		s.wal.setSeq(last.Seq)
	}
	return nil
}

// replayWAL applies the log's committed tail past the checkpoint
// barrier, then restores the stream positions the last barrier
// recorded. Entries at or below the barrier are already in the restored
// state and are skipped; measurements after the last commit (a torn
// tail) are discarded — the resumed source re-emits them. When the
// session's WAL sink is the same file the replay read from, the file is
// truncated at the last whole commit so appended entries follow it.
func (s *Session) replayWAL(r io.Reader, barrier uint64) error {
	sc := dataset.NewWALScanner(r)
	rp := &walReplay{s: s, barrier: barrier}
	keepOffset := int64(0) // file offset after the last whole commit
	for {
		var rec dataset.WALRecord
		err := sc.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: trust exactly the committed prefix.
			break
		}
		if err := rp.handle(&rec); err != nil {
			return err
		}
		if rec.Kind == dataset.WALCommitRecord {
			keepOffset = sc.Offset()
		}
	}
	if err := rp.finish(); err != nil {
		return err
	}
	return s.alignWALFile(r, keepOffset)
}

// replayWALSegments is replayWAL for a rotating dir-mode log: the
// on-disk segments are scanned in index order as one logical stream. A
// torn record ends the trusted prefix — the rest of that segment and
// every later one are discarded (a segment whose very first line is
// torn, or an empty zero-byte segment from a crash between create and
// header write, counts as such a tail). Afterwards the chain is aligned
// for appends: segments past the last commit are deleted, the segment
// holding it is truncated there and adopted as the active append
// target, and fully-covered older segments stay until the next
// checkpoint barrier deletes them.
func (s *Session) replayWALSegments(barrier uint64) error {
	rot := s.wal.rot
	idxs, err := dataset.ListWALSegments(rot.dir)
	if err != nil {
		return fmt.Errorf("%w: segment dir: %v", ErrWAL, err)
	}
	rp := &walReplay{s: s, barrier: barrier}
	keepSeg := 0 // segment holding the last whole commit (0 = none)
	keepOff := int64(0)
scan:
	for _, idx := range idxs {
		f, err := os.Open(rot.segPath(idx))
		if err != nil {
			return fmt.Errorf("%w: segment %d: %v", ErrWAL, idx, err)
		}
		sc := dataset.NewWALScanner(f)
		for {
			var rec dataset.WALRecord
			err := sc.Next(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				break scan // torn tail: trust exactly the committed prefix
			}
			if err := rp.handle(&rec); err != nil {
				f.Close()
				return err
			}
			if rec.Kind == dataset.WALCommitRecord {
				keepSeg, keepOff = idx, sc.Offset()
			}
		}
		f.Close()
	}
	if err := rp.finish(); err != nil {
		return err
	}
	return s.alignWALSegments(keepSeg, keepOff, idxs)
}

// alignWALSegments positions the rotating log for appends after a
// segmented replay: everything past the last whole commit is dropped
// (whole segments deleted, the kept segment truncated), and the kept
// segment becomes the active append target. With no commit anywhere the
// chain is cleared entirely — the resumed source re-emits the torn
// measurements, and the next append starts a fresh segment.
func (s *Session) alignWALSegments(keepSeg int, keepOff int64, idxs []int) error {
	rot := s.wal.rot
	var live []int
	for _, idx := range idxs {
		if keepSeg == 0 || idx > keepSeg {
			if err := os.Remove(rot.segPath(idx)); err != nil {
				return fmt.Errorf("%w: drop torn segment %d: %v", ErrWAL, idx, err)
			}
			continue
		}
		live = append(live, idx)
	}
	rot.live = live
	if keepSeg == 0 {
		return nil
	}
	f, err := os.OpenFile(rot.segPath(keepSeg), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("%w: adopt segment %d: %v", ErrWAL, keepSeg, err)
	}
	if err := f.Truncate(keepOff); err != nil {
		f.Close()
		return fmt.Errorf("%w: truncate tail: %v", ErrWAL, err)
	}
	if _, err := f.Seek(keepOff, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("%w: seek: %v", ErrWAL, err)
	}
	// The scanner's offset excludes the newline after the last commit's
	// JSON value; keep the log line-shaped.
	if _, err := f.WriteString("\n"); err != nil {
		f.Close()
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	rot.f = f
	rot.size = keepOff + 1
	s.wal.headered = true // the kept prefix starts with this segment's header
	return nil
}

// applyReplayed trains on one committed WAL batch through the same path
// that originally applied it: the usual topology and sanity filters,
// then sequential Gauss-Seidel updates or one sharded epoch batch.
func (s *Session) applyReplayed(ms []Measurement, batch bool) error {
	if batch {
		samples := make([]engine.Sample, 0, len(ms))
		for _, m := range ms {
			if !s.usable(m) || !s.drv.IsNeighbor(m.I, m.J) {
				continue
			}
			samples = append(samples, engine.Sample{
				I: m.I, J: m.J,
				Label: ClassOf(s.ds.Metric, m.Value, s.tau).Value(),
			})
		}
		if len(samples) == 0 {
			return nil
		}
		_, err := s.drv.ApplyBatchCtx(context.Background(), samples)
		if err != nil {
			return fmt.Errorf("%w: batch replay: %v", ErrWAL, err)
		}
		return nil
	}
	for _, m := range ms {
		if !s.usable(m) || !s.drv.IsNeighbor(m.I, m.J) {
			continue
		}
		s.drv.ApplyLabel(m.I, m.J, ClassOf(s.ds.Metric, m.Value, s.tau).Value())
	}
	return nil
}

// alignWALFile positions the session's WAL sink for appends after a
// replay, when sink and replay reader are the same *os.File: truncate
// at the last whole commit (dropping the discarded tail so future
// replays see a consistent sequence) and seek there. Any other
// sink/reader combination is left untouched — the caller either gave
// the decorator a fresh sink or manages the file itself.
func (s *Session) alignWALFile(r io.Reader, keep int64) error {
	if s.wal == nil {
		return nil
	}
	wf, ok := s.wal.w.(*os.File)
	if !ok {
		return nil
	}
	rf, ok := r.(*os.File)
	if !ok || rf != wf {
		return nil
	}
	if err := wf.Truncate(keep); err != nil {
		return fmt.Errorf("%w: truncate tail: %v", ErrWAL, err)
	}
	if _, err := wf.Seek(keep, io.SeekStart); err != nil {
		return fmt.Errorf("%w: seek: %v", ErrWAL, err)
	}
	if keep > 0 {
		// The scanner's offset excludes the newline after the last
		// commit's JSON value; keep the log line-shaped.
		if _, err := wf.WriteString("\n"); err != nil {
			return fmt.Errorf("%w: %v", ErrWAL, err)
		}
	}
	return nil
}
