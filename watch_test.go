package dmfsgd

import (
	"context"
	"testing"
	"time"
)

// Slow-consumer and lifecycle tests for Session.Watch: publish must
// never block on a stalled reader, a dropped sample must be the new one
// (the buffer keeps the oldest 16), and every channel must be closed
// exactly once no matter how Close and the watcher's cancel race.

func watchSession(t *testing.T) *Session {
	t.Helper()
	sess, err := NewSession(NewMeridianDataset(30, 13), WithSeed(13), WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

// TestWatchSlowConsumerDrops: with nobody reading, publish fills the
// 16-slot buffer and then drops new samples without blocking; the
// buffered samples are the oldest ones.
func TestWatchSlowConsumerDrops(t *testing.T) {
	sess := watchSession(t)
	ch := sess.Watch(context.Background())

	published := make(chan struct{})
	go func() {
		defer close(published)
		for i := 1; i <= 100; i++ {
			sess.publish(Progress{Steps: i})
		}
	}()
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow consumer")
	}

	for i := 1; i <= 16; i++ {
		select {
		case p := <-ch:
			if p.Steps != i {
				t.Fatalf("buffered sample %d has Steps=%d, want %d (oldest-kept semantics)", i, p.Steps, i)
			}
		default:
			t.Fatalf("only %d samples buffered, want 16", i-1)
		}
	}
	select {
	case p := <-ch:
		t.Fatalf("17th sample %+v buffered; samples 17..100 should have been dropped", p)
	default:
	}

	// The reader drained the buffer; delivery resumes with fresh samples.
	sess.publish(Progress{Steps: 200})
	select {
	case p := <-ch:
		if p.Steps != 200 {
			t.Fatalf("post-drain sample Steps=%d, want 200", p.Steps)
		}
	default:
		t.Fatal("post-drain publish not delivered")
	}
}

// TestWatchCancelUnsubscribes: cancelling the watcher's context closes
// its channel and removes it from the subscriber list — a later publish
// must not panic by sending on the closed channel.
func TestWatchCancelUnsubscribes(t *testing.T) {
	sess := watchSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	ch := sess.Watch(ctx)
	cancel()

	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				// Closed. Publishing now exercises the stale-subscriber path.
				for i := 0; i < 32; i++ {
					sess.publish(Progress{Steps: i})
				}
				return
			}
		case <-deadline:
			t.Fatal("watch channel not closed after cancel")
		}
	}
}

// TestWatchCloseThenCancelClosesOnce: Close closes every subscriber
// channel; the watcher goroutine's later ctx-cancel must not close it a
// second time (a double close panics).
func TestWatchCloseThenCancelClosesOnce(t *testing.T) {
	sess := watchSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	ch := sess.Watch(ctx)

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch; ok {
		t.Fatal("sample delivered after Close")
	}
	cancel()
	// Give the watcher goroutine time to observe the cancel and take the
	// unsubscribe path; a double close would panic the process here.
	time.Sleep(50 * time.Millisecond)
	if _, ok := <-ch; ok {
		t.Fatal("channel reopened?!")
	}
}

// TestWatchCancelThenCloseClosesOnce: the same race from the other
// side — the watcher unsubscribes first, then Close sweeps what's left.
func TestWatchCancelThenCloseClosesOnce(t *testing.T) {
	sess := watchSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	ch := sess.Watch(ctx)
	keep := sess.Watch(context.Background())
	cancel()

	deadline := time.After(2 * time.Second)
drain:
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				break drain
			}
		case <-deadline:
			t.Fatal("watch channel not closed after cancel")
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-keep; ok {
		t.Fatal("surviving watcher delivered a sample after Close")
	}
}
