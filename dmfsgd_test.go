package dmfsgd

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Rank != 10 || cfg.LearningRate != 0.1 || cfg.Lambda != 0.1 || cfg.Loss != LossLogistic {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

func TestConfigZeroValueNormalizes(t *testing.T) {
	n, err := NewNode(Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.U()) != 10 {
		t.Errorf("zero config rank = %d, want 10", len(n.U()))
	}
}

func TestConfigWithLossL2(t *testing.T) {
	cfg := Config{}.WithLoss(LossL2).normalize()
	if cfg.Loss != LossL2 {
		t.Errorf("WithLoss(L2) lost: %v", cfg.Loss)
	}
	// Without WithLoss, zero Loss means logistic.
	if got := (Config{}).normalize().Loss; got != LossLogistic {
		t.Errorf("implicit loss = %v, want logistic", got)
	}
}

func TestNewNodeRejectsBadConfig(t *testing.T) {
	if _, err := NewNode(Config{Rank: -1}, 1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := NewNode(Config{Lambda: -3}, 1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(RTT, 50, 100) != Good || ClassOf(RTT, 150, 100) != Bad {
		t.Error("RTT polarity")
	}
	if ClassOf(ABW, 50, 40) != Good || ClassOf(ABW, 30, 40) != Bad {
		t.Error("ABW polarity")
	}
}

func TestNodeObserveAndPredict(t *testing.T) {
	a, _ := NewNode(DefaultConfig(), 1)
	b, _ := NewNode(DefaultConfig(), 2)
	// Ping-pong a Good path until both agree.
	for i := 0; i < 1000; i++ {
		a.ObserveRTT(b.U(), b.V(), Good)
		b.ObserveRTT(a.U(), a.V(), Good)
	}
	if a.PredictClass(b.V()) != Good {
		t.Errorf("learned class = %v, want good (score %v)", a.PredictClass(b.V()), a.Score(b.V()))
	}
	if !a.Healthy() || !b.Healthy() {
		t.Error("nodes unhealthy after training")
	}
}

func TestNodeABWRoles(t *testing.T) {
	sender, _ := NewNode(DefaultConfig(), 3)
	target, _ := NewNode(DefaultConfig(), 4)
	for i := 0; i < 1000; i++ {
		// Algorithm 2: target infers Bad, updates V; sender updates U.
		vPre := target.V()
		target.ObserveABWAsTarget(sender.U(), Bad)
		sender.ObserveABWAsSender(vPre, Bad)
	}
	if sender.PredictClass(target.V()) != Bad {
		t.Errorf("ABW class = %v, want bad", sender.PredictClass(target.V()))
	}
	if sender.ScoreFrom(target.U()) == 0 {
		t.Error("reverse score should be defined")
	}
}

func TestNodeRejectsPoisonedInput(t *testing.T) {
	n, _ := NewNode(DefaultConfig(), 5)
	bad := make([]float64, 10)
	bad[0] = math.NaN()
	good := make([]float64, 10)
	if n.ObserveRTT(bad, good, Good) || n.ObserveABWAsSender(bad, Good) {
		t.Error("poisoned input accepted")
	}
	if !n.Healthy() {
		t.Error("node poisoned")
	}
}

func TestUVAreCopies(t *testing.T) {
	n, _ := NewNode(DefaultConfig(), 6)
	u := n.U()
	u[0] = 1e9
	if n.U()[0] == 1e9 {
		t.Error("U leaked internal storage")
	}
}

func TestDatasetConstructors(t *testing.T) {
	m := NewMeridianDataset(50, 1)
	if m.N() != 50 || m.Metric != RTT {
		t.Errorf("meridian: %+v", m)
	}
	h := NewHarvardDataset(30, 5000, 1)
	if h.N() != 30 || len(h.Trace) != 5000 {
		t.Errorf("harvard: n=%d trace=%d", h.N(), len(h.Trace))
	}
	a := NewHPS3Dataset(40, 1)
	if a.N() != 40 || a.Metric != ABW {
		t.Errorf("hp-s3: %+v", a)
	}
}

func TestLoadDataset(t *testing.T) {
	in := "nan 10\n12 nan\n"
	ds, err := LoadDataset(strings.NewReader(in), "tiny", RTT)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Matrix.At(0, 1) != 10 {
		t.Errorf("loaded: %+v", ds)
	}
	if _, err := LoadDataset(strings.NewReader("1 2 3\n4 5 6\n"), "rect", RTT); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := LoadDataset(strings.NewReader(""), "empty", RTT); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	ds := NewMeridianDataset(80, 7)
	s, err := Simulate(ds, SimulationConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0) // paper budget
	auc := s.AUC()
	if auc < 0.85 {
		t.Errorf("AUC = %v, want >= 0.85", auc)
	}
	c := s.Confusion()
	if c.Accuracy() < 0.75 {
		t.Errorf("accuracy = %v", c.Accuracy())
	}
	if s.Tau() != ds.Median() {
		t.Errorf("Tau = %v, want median %v", s.Tau(), ds.Median())
	}
	if len(s.Neighbors(0)) != ds.DefaultK {
		t.Errorf("neighbors = %d", len(s.Neighbors(0)))
	}
	_ = s.Predict(0, 1)
	stretch, unsat := s.SelectPeers(15, 9)
	if stretch < 1 {
		t.Errorf("RTT stretch %v must be >= 1", stretch)
	}
	if unsat > 0.5 {
		t.Errorf("unsatisfied %v implausibly high", unsat)
	}
}

func TestSimulationCurves(t *testing.T) {
	ds := NewMeridianDataset(60, 13)
	s, err := Simulate(ds, SimulationConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	roc := s.ROC()
	if len(roc) < 2 || roc[0].FPR != 0 || roc[len(roc)-1].TPR != 1 {
		t.Errorf("ROC endpoints wrong: %d points", len(roc))
	}
	pr := s.PrecisionRecall()
	if len(pr) == 0 || pr[len(pr)-1].Recall != 1 {
		t.Errorf("PR curve must reach recall 1: %d points", len(pr))
	}
}

func TestSimulateHarvardTrace(t *testing.T) {
	ds := NewHarvardDataset(50, 80000, 8)
	s, err := Simulate(ds, SimulationConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if auc := s.AUC(); auc < 0.7 {
		t.Errorf("trace AUC = %v", auc)
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	ds := NewMeridianDataset(20, 9)
	if _, err := Simulate(ds, SimulationConfig{K: 30}); err == nil {
		t.Error("k >= n accepted")
	}
}

func TestSimulateMulticlass(t *testing.T) {
	ds := NewMeridianDataset(100, 12)
	q1 := ds.TauForGoodPortion(0.25)
	q2 := ds.TauForGoodPortion(0.50)
	q3 := ds.TauForGoodPortion(0.75)
	res, err := SimulateMulticlass(ds, []float64{q1, q2, q3}, DefaultConfig(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact < 0.45 { // 4-class chance is 0.25
		t.Errorf("exact accuracy = %v", res.Exact)
	}
	if res.WithinOne < 0.85 {
		t.Errorf("within-one accuracy = %v", res.WithinOne)
	}
	if len(res.Confusion) != 4 || len(res.Confusion[0]) != 4 {
		t.Errorf("confusion shape %dx%d", len(res.Confusion), len(res.Confusion[0]))
	}
	// Unordered thresholds must be rejected.
	if _, err := SimulateMulticlass(ds, []float64{q3, q1}, DefaultConfig(), 1); err == nil {
		t.Error("descending RTT thresholds accepted")
	}
}

func TestSwarmEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent integration test")
	}
	ds := NewHPS3Dataset(30, 10)
	sw, err := StartSwarm(ds, SwarmConfig{
		ProbeInterval: 200 * time.Microsecond,
		Seed:          10,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(1200 * time.Millisecond)
	sw.Stop()
	if sw.Updates() < 500 {
		t.Fatalf("updates = %d", sw.Updates())
	}
	if auc := sw.AUC(0); auc < 0.65 {
		t.Errorf("swarm AUC = %v", auc)
	}
}
