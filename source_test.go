package dmfsgd

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"dmfsgd/internal/sim"
)

// sessionFlat snapshots a session's factors.
func sessionFlat(s *Session) (u, v []float64) {
	return s.Snapshot().Flat()
}

// driverFlat snapshots a raw driver's factors.
func driverFlat(d *sim.Driver) (u, v []float64) {
	return d.Engine().Store().SnapshotFlat()
}

func flatEqual(t *testing.T, ctx string, au, av, bu, bv []float64) {
	t.Helper()
	if len(au) != len(bu) || len(av) != len(bv) {
		t.Fatalf("%s: factor lengths differ", ctx)
	}
	for i := range au {
		if au[i] != bu[i] || av[i] != bv[i] {
			t.Fatalf("%s: factors diverge at flat index %d (u %v vs %v, v %v vs %v)",
				ctx, i, au[i], bu[i], av[i], bv[i])
		}
	}
}

// TestMatrixSourceBitIdenticalToDriver: the acceptance criterion of the
// ingestion redesign — sequential training driven through the session's
// MatrixSource produces bit-identical factors and AUC to the
// pre-redesign path (the raw driver's RunCtx) at a fixed seed.
func TestMatrixSourceBitIdenticalToDriver(t *testing.T) {
	ds := NewMeridianDataset(120, 5)
	const budget = 30_000

	sess, err := NewSession(ds, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), budget); err != nil {
		t.Fatal(err)
	}

	drv, err := sim.ClassDriver(ds, ds.Median(), sim.Config{
		SGD: sess.set.sgdConfig(), K: ds.DefaultK, Seed: 5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drv.RunCtx(context.Background(), budget); err != nil {
		t.Fatal(err)
	}

	su, sv := sessionFlat(sess)
	du, dv := driverFlat(drv)
	flatEqual(t, "matrix source vs driver", su, sv, du, dv)

	sessAUC, err := sess.AUC(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if drvAUC := drv.AUC(); sessAUC != drvAUC {
		t.Fatalf("AUC diverges: session %v, driver %v", sessAUC, drvAUC)
	}
	if sess.Steps() != drv.Steps() {
		t.Fatalf("steps diverge: session %d, driver %d", sess.Steps(), drv.Steps())
	}
}

// TestTraceSourceBitIdenticalToDriver: same criterion for time-ordered
// trace replay (Harvard) through TraceSource.
func TestTraceSourceBitIdenticalToDriver(t *testing.T) {
	ds := NewHarvardDataset(60, 40_000, 9)
	const budget = 8_000

	sess, err := NewSession(ds, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), budget); err != nil {
		t.Fatal(err)
	}

	drv, err := sim.ClassDriver(ds, ds.Median(), sim.Config{
		SGD: sess.set.sgdConfig(), K: ds.DefaultK, Seed: 9,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tau := ds.Median()
	toLabel := func(m Measurement) (float64, bool) {
		return ClassOf(ds.Metric, m.Value, tau).Value(), true
	}
	drv.ReplayTrace(ds.Trace, toLabel, budget)

	su, sv := sessionFlat(sess)
	du, dv := driverFlat(drv)
	flatEqual(t, "trace source vs driver", su, sv, du, dv)
	if sess.Steps() != drv.Steps() {
		t.Fatalf("steps diverge: session %d, driver %d", sess.Steps(), drv.Steps())
	}
}

// TestRunEpochsTraceShardIndependence: epoch-mode trace replay is
// deterministic across shard/worker counts and trains to a finite AUC.
func TestRunEpochsTraceShardIndependence(t *testing.T) {
	ds := NewHarvardDataset(50, 30_000, 4)
	run := func(shards int) (int, []float64, []float64, float64) {
		sess, err := NewSession(ds, WithSeed(4), WithShards(shards), WithWorkers(shards))
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		n, err := sess.RunEpochs(context.Background(), 6, 8)
		if err != nil {
			t.Fatal(err)
		}
		u, v := sessionFlat(sess)
		auc, err := sess.AUC(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return n, u, v, auc
	}
	n1, u1, v1, auc1 := run(1)
	if n1 == 0 {
		t.Fatal("epoch trace replay applied nothing")
	}
	if math.IsNaN(auc1) || auc1 <= 0 || auc1 > 1 {
		t.Fatalf("AUC = %v, want finite in (0,1]", auc1)
	}
	for _, shards := range []int{4, 8} {
		n, u, v, auc := run(shards)
		if n != n1 || auc != auc1 {
			t.Fatalf("shards=%d: (updates, AUC) = (%d, %v), want (%d, %v)", shards, n, auc, n1, auc1)
		}
		flatEqual(t, "epoch trace replay across shards", u, v, u1, v1)
	}
}

// TestRunEpochsStreamSource: an NDJSON capture replays in epoch mode
// and ends the run early, without error, when the stream is exhausted.
func TestRunEpochsStreamSource(t *testing.T) {
	ds := NewMeridianDataset(40, 6)
	src, err := NewMatrixSource(ds, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Measurement, 4000)
	if _, err := src.NextBatch(context.Background(), buf); err != nil {
		t.Fatal(err)
	}
	var ndjson bytes.Buffer
	if err := WriteMeasurements(&ndjson, buf); err != nil {
		t.Fatal(err)
	}

	sess, err := NewSessionFromSource(ds, NewStreamSource(&ndjson), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// 100 epochs × 40·10 = far beyond the 4000-record stream: must end
	// at EOF with every usable record consumed, not loop or error.
	n, err := sess.RunEpochs(context.Background(), 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n > 4000 {
		t.Fatalf("applied %d updates from a 4000-record stream", n)
	}
}

// TestRunEpochsNoEpochStructure: the ErrDynamicTrace sentinel survives
// exactly for sources with no epoch structure — a decorated endless
// sampler.
func TestRunEpochsNoEpochStructure(t *testing.T) {
	ds := NewMeridianDataset(30, 2)
	src, err := NewMatrixSource(ds, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSessionFromSource(ds, WithNoise(src, 0.1, 3), WithK(8), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.RunEpochs(context.Background(), 2, 4); !errors.Is(err, ErrDynamicTrace) {
		t.Fatalf("RunEpochs on a decorated sampler: err = %v, want ErrDynamicTrace", err)
	}
	// Run drains it fine.
	if err := sess.Run(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	if sess.Steps() != 2000 {
		t.Fatalf("steps = %d, want 2000", sess.Steps())
	}
}

// TestRunEpochsBareMatrixSourceNative: an undecorated matrix-source
// session keeps the native epoch scheduler, bit-identical to the
// pre-redesign RunEpochs.
func TestRunEpochsBareMatrixSourceNative(t *testing.T) {
	ds := NewMeridianDataset(60, 8)
	src, err := NewMatrixSource(ds, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	viaSource, err := NewSessionFromSource(ds, src, WithSeed(8), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer viaSource.Close()
	classic, err := NewSession(ds, WithSeed(8), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer classic.Close()

	na, err := viaSource.RunEpochs(context.Background(), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := classic.RunEpochs(context.Background(), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Fatalf("updates diverge: %d vs %d", na, nb)
	}
	au, av := sessionFlat(viaSource)
	bu, bv := sessionFlat(classic)
	flatEqual(t, "native epochs via source session", au, av, bu, bv)
}

// TestSourceDecoratorDeterminism: every decorator is a deterministic
// function of its config — the same composition replays identically.
func TestSourceDecoratorDeterminism(t *testing.T) {
	ds := NewMeridianDataset(40, 13)
	build := func() Source {
		src, err := NewMatrixSource(ds, 0, 13)
		if err != nil {
			t.Fatal(err)
		}
		return WithDrop(WithNoise(WithDrift(WithChurn(src, ChurnConfig{
			Start: 5, MeanUp: 10, MeanDown: 10, Fraction: 0.5, Seed: 21,
		}), DriftConfig{Rate: 0.01, Start: 10, Fraction: 0.5, Seed: 22}), 0.2, 23), 0.1, 24)
	}
	drain := func(src Source) []Measurement {
		out := make([]Measurement, 0, 5000)
		buf := make([]Measurement, 512)
		for len(out) < 5000 {
			n, err := src.NextBatch(context.Background(), buf)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, buf[:n]...)
		}
		return out
	}
	a, b := drain(build()), drain(build())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("measurement %d differs across identical replays: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestWithChurnDropsOfflineNodes: once churn starts, some measurements
// vanish; before it, none do.
func TestWithChurnDropsOfflineNodes(t *testing.T) {
	ds := NewMeridianDataset(40, 17)
	src, err := NewMatrixSource(ds, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	const start = 20.0
	churned := WithChurn(src, ChurnConfig{
		Start: start, MeanUp: 5, MeanDown: 20, Fraction: 1, Seed: 3,
	})
	buf := make([]Measurement, 8192)
	var preChurn, postChurn, total int
	for total < 40_000 {
		n, err := churned.NextBatch(context.Background(), buf)
		if err != nil {
			t.Fatal(err)
		}
		total += n
		for _, m := range buf[:n] {
			if m.T < start {
				preChurn++
			} else {
				postChurn++
			}
		}
	}
	// Before Start the stream passes through untouched: one measurement
	// advances T by 1/n, so exactly start·n−1 measurements carry T < start
	// (the start·n-th lands on T = start and is churn-eligible).
	if want := int(start)*ds.N() - 1; preChurn != want {
		t.Errorf("pre-churn measurements = %d, want %d (churn before Start)", preChurn, want)
	}
	if postChurn == 0 {
		t.Error("no measurements survived churn (MeanDown should only thin the stream)")
	}
}

// TestWithDriftScalesValues: affected measurements scale by
// exp(Rate·(T−Start)); unaffected (pre-start) ones pass through.
func TestWithDriftScalesValues(t *testing.T) {
	ds := NewMeridianDataset(30, 19)
	clean, err := NewMatrixSource(ds, 8, 19)
	if err != nil {
		t.Fatal(err)
	}
	drifted := WithDrift(clean, DriftConfig{Rate: 0.05, Start: 2, Seed: 7})
	buf := make([]Measurement, 3000)
	n, err := drifted.NextBatch(context.Background(), buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range buf[:n] {
		truth := ds.Matrix.At(m.I, m.J)
		if m.T <= 2 {
			if m.Value != truth {
				t.Fatalf("pre-start measurement drifted: %v vs %v", m.Value, truth)
			}
			continue
		}
		want := truth * math.Exp(0.05*(m.T-2))
		if math.Abs(m.Value-want) > 1e-12*want {
			t.Fatalf("drift at T=%v: value %v, want %v", m.T, m.Value, want)
		}
	}
}

// TestNewSessionFromSourceValidation: nil sources and live sessions are
// rejected with the right sentinels.
func TestNewSessionFromSourceValidation(t *testing.T) {
	ds := NewMeridianDataset(30, 1)
	if _, err := NewSessionFromSource(ds, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("nil source: err = %v, want ErrInvalidConfig", err)
	}
	src, err := NewMatrixSource(ds, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSessionFromSource(ds, src, WithLive()); !errors.Is(err, ErrLiveSession) {
		t.Errorf("WithLive: err = %v, want ErrLiveSession", err)
	}
	if _, err := NewSessionFromSource(nil, src); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("nil dataset: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := NewMatrixSource(ds, ds.N(), 1); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("k=n: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := NewTraceSource(ds); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("trace source on static dataset: err = %v, want ErrInvalidConfig", err)
	}
}

// TestRunSourceFiltersHostileStream: out-of-range, self-pair and
// non-finite records in an external stream are discarded, not applied
// and never panic.
func TestRunSourceFiltersHostileStream(t *testing.T) {
	ds := NewMeridianDataset(30, 3)
	hostile := []Measurement{
		{T: 1, I: -1, J: 2, Value: 40},
		{T: 2, I: 0, J: 99, Value: 40},
		{T: 3, I: 5, J: 5, Value: 40},
		{T: 4, I: 0, J: 1, Value: math.NaN()},
		{T: 5, I: 0, J: 1, Value: math.Inf(1)},
	}
	sess, err := NewSessionFromSource(ds, &sliceSource{ms: hostile}, WithK(8), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if sess.Steps() != 0 {
		t.Fatalf("hostile records trained %d steps", sess.Steps())
	}
}

// sliceSource is a minimal custom Source for tests: a finite slice.
type sliceSource struct {
	ms  []Measurement
	pos int
}

func (s *sliceSource) NextBatch(_ context.Context, buf []Measurement) (int, error) {
	if s.pos >= len(s.ms) {
		return 0, io.EOF
	}
	n := copy(buf, s.ms[s.pos:])
	s.pos += n
	return n, nil
}

// TestRunSourceCancellable: finite replay sources never block and so
// never consult ctx themselves — the drain loops must poll it. A
// cancelled context stops trace replay (Run) and epoch replay
// (RunEpochs) promptly with the context error and no training.
func TestRunSourceCancellable(t *testing.T) {
	ds := NewHarvardDataset(40, 20_000, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	sess, err := NewSession(ds, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if sess.Steps() != 0 {
		t.Fatalf("cancelled Run trained %d steps", sess.Steps())
	}
	if _, err := sess.RunEpochs(ctx, 5, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunEpochs on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if sess.Steps() != 0 {
		t.Fatalf("cancelled RunEpochs trained %d steps", sess.Steps())
	}
}

// TestSwarmSourceStaleClose: closing a tap that has been replaced by a
// newer one must not detach the newer one.
func TestSwarmSourceStaleClose(t *testing.T) {
	ds := NewMeridianDataset(24, 15)
	sess, err := NewSession(ds,
		WithLive(), WithK(6), WithSeed(15),
		WithProbeInterval(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	stale, err := NewSwarmSource(sess, 0)
	if err != nil {
		t.Fatal(err)
	}
	active, err := NewSwarmSource(sess, 0) // replaces stale
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()
	stale.Close() // must be a no-op for the active tap

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	buf := make([]Measurement, 16)
	if n, err := active.NextBatch(ctx, buf); err != nil || n == 0 {
		t.Fatalf("active tap after stale Close: n=%d err=%v (stale Close detached it?)", n, err)
	}
}

// TestSwarmSourceCapture: a live session's tap yields valid neighbor
// measurements, and the capture replays into a deterministic session.
func TestSwarmSourceCapture(t *testing.T) {
	ds := NewMeridianDataset(24, 12)
	sess, err := NewSession(ds,
		WithLive(), WithK(6), WithSeed(12),
		WithProbeInterval(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Deterministic sessions have replayable sources already: rejected.
	det, err := NewSession(ds, WithK(6), WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	if _, err := NewSwarmSource(det, 0); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("deterministic capture: err = %v, want ErrInvalidConfig", err)
	}

	tap, err := NewSwarmSource(sess, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	captured := make([]Measurement, 0, 512)
	buf := make([]Measurement, 256)
	for len(captured) < 300 {
		n, err := tap.NextBatch(ctx, buf)
		if err != nil {
			t.Fatalf("capture ended early after %d measurements: %v", len(captured), err)
		}
		captured = append(captured, buf[:n]...)
	}
	lastT := math.Inf(-1)
	for k, m := range captured {
		if m.I < 0 || m.I >= ds.N() || m.J < 0 || m.J >= ds.N() || m.I == m.J {
			t.Fatalf("measurement %d: invalid pair (%d,%d)", k, m.I, m.J)
		}
		if m.Value <= 0 || math.IsNaN(m.Value) {
			t.Fatalf("measurement %d: invalid RTT %v", k, m.Value)
		}
		found := false
		for _, nb := range sess.Neighbors(m.I) {
			if nb == m.J {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("measurement %d: %d probed non-neighbor %d", k, m.I, m.J)
		}
		if m.T < lastT {
			// Timestamps come from one wall clock; per-node interleaving
			// may jitter but time must not run backwards wildly.
			if lastT-m.T > 1 {
				t.Fatalf("measurement %d: time ran backwards %v -> %v", k, lastT, m.T)
			}
		}
		lastT = math.Max(lastT, m.T)
	}

	// The capture replays into a deterministic session with the same
	// topology (same seed and k).
	replay, err := NewSessionFromSource(ds, &sliceSource{ms: captured}, WithK(6), WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Close()
	if err := replay.Run(context.Background(), len(captured)); err != nil {
		t.Fatal(err)
	}
	if replay.Steps() == 0 {
		t.Fatal("replayed capture trained nothing")
	}
	// Closing the live session ends the stream with io.EOF.
	sess.Close()
	for {
		if _, err := tap.NextBatch(ctx, buf); err != nil {
			if err != io.EOF {
				t.Fatalf("post-close capture: err = %v, want io.EOF", err)
			}
			break
		}
	}
}
