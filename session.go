package dmfsgd

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/engine"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/peersel"
	"dmfsgd/internal/runtime"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
)

// Evaluation result types, re-exported from the internal evaluation
// package.
type (
	// Confusion is the sign-rule confusion matrix over the test pairs.
	Confusion = eval.Confusion
	// ROCPoint is one point of a receiver operating characteristic.
	ROCPoint = eval.Point
	// PRPoint is one point of a precision-recall curve.
	PRPoint = eval.PRPoint
)

// Progress is one telemetry sample of a training run, delivered through
// Session.Watch.
type Progress struct {
	// Steps is the session's cumulative successful coordinate updates.
	Steps int
	// Target is the step budget of the Run call in flight (0 when the
	// sample came from epoch training, which has no step budget).
	Target int
	// Epochs is the number of epochs completed by the RunEpochs call in
	// flight (0 for sequential and live runs).
	Epochs int
}

// runChunk is the cancellation / telemetry granularity of sequential
// training: the context is polled and progress published once per chunk.
const runChunk = 8192

// epochMode classifies what RunEpochs can do with a session's source.
type epochMode uint8

const (
	// epochNone: the source has no epoch structure (an endless decorated
	// sampler, a live capture) — RunEpochs returns ErrDynamicTrace.
	epochNone epochMode = iota
	// epochNative: a bare matrix sampler — RunEpochs trains through the
	// engine's native parallel epoch scheduler, exactly as before the
	// ingestion redesign.
	epochNative
	// epochReplay: a finite time-ordered replay (trace, NDJSON capture,
	// decorated either way) — RunEpochs trains on per-epoch measurement
	// groups through the engine's sharded batch-apply path.
	epochReplay
)

// Session is the context-aware facade over both execution backends: the
// deterministic simulation driver (default) and the live concurrent
// swarm (WithLive). It decouples training — Run, RunEpochs, Watch — from
// serving, which goes through immutable Snapshots:
//
//	sess, err := dmfsgd.NewSession(ds, dmfsgd.WithSeed(42))
//	if err != nil { ... }
//	defer sess.Close()
//	if err := sess.Run(ctx, 0); err != nil { ... }   // paper budget
//	snap := sess.Snapshot()                           // immutable, lock-free
//	class := snap.Classify(3, 77)
//
// All configuration goes through functional options, which distinguish
// "explicitly zero" from "unset" (WithTau(0), WithLoss(LossL2)) and
// reject invalid values with errors wrapping ErrInvalidConfig.
//
// A Session's training methods (Run, RunEpochs) must not be called
// concurrently with each other. On a live session everything else —
// Predict, Snapshot, evaluation, Watch, Close — is safe to call from
// any goroutine at any time (the swarm synchronizes on the shard
// locks). On a deterministic session the sequential scheduler writes
// coordinates without locking, so reads (Predict, Snapshot, Steps,
// evaluation) must not overlap an in-flight Run/RunEpochs; Watch and
// Close are always safe. Serving loops that train in the background
// should read only from materialized Snapshots, which are immutable —
// that is the pattern cmd/dmfserve uses.
type Session struct {
	ds  *Dataset
	set settings
	tau float64
	k   int

	drv   *sim.Driver    // deterministic backend (nil when live)
	swarm *runtime.Swarm // live backend (nil when deterministic)

	// src is the measurement stream Run drains on a deterministic
	// session (nil when live: a swarm generates its own measurements).
	// epochMode records what RunEpochs can do with it. wal is the
	// chain's WAL decorator when one is attached (always the outermost
	// layer): the session writes a commit barrier through it after every
	// applied batch.
	src       Source
	epochMode epochMode
	wal       *WALSource

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	subs   []chan Progress

	// Snapshot memoization: the last materialized snapshot is returned
	// as-is while no shard version has advanced, and seeds the delta
	// refresh (only advanced shards re-copied from the store) otherwise.
	snapMu sync.Mutex
	snap   *Snapshot
}

// NewSession builds a session over ds. The default backend is the
// deterministic simulation driver reproducing the paper's experiment
// procedure; WithLive selects the concurrent runtime instead (the swarm
// starts probing immediately and trains until Close). All errors wrap
// ErrInvalidConfig.
//
// NewSession is the adapter path of the ingestion layer: it wraps the
// dataset in its canonical Source — a TraceSource replaying dynamic
// traces (Harvard) in time order, or a MatrixSource sampling a static
// matrix on the classic sequential probe schedule — and is exactly
// equivalent to NewSessionFromSource with that source. Build the source
// yourself (and compose scenario decorators such as WithChurn or
// WithDrift onto it) when the measurement stream should differ from the
// dataset's default story.
func NewSession(ds *Dataset, opts ...Option) (*Session, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrInvalidConfig)
	}
	set := defaultSettings()
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	return newSession(ds, set)
}

// NewSessionFromSource builds a deterministic session whose training
// measurements come from src instead of the dataset's canonical stream.
// ds still supplies the topology (neighbor sets), the evaluation ground
// truth and the default τ; src supplies what the nodes measure. The
// drain path filters measurements to the session's neighbor topology
// (only probes toward a node's k neighbors train it, as in the paper's
// architecture) and discards out-of-range or non-finite records, so an
// externally captured stream can be replayed safely.
//
// A MatrixSource anywhere in src's decorator chain is bound to the
// session's topology and master RNG stream, so an undecorated matrix
// source trains bit-identically to NewSession. WithLive is rejected
// with ErrLiveSession: a live swarm generates its own measurements.
func NewSessionFromSource(ds *Dataset, src Source, opts ...Option) (*Session, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrInvalidConfig)
	}
	if src == nil {
		return nil, fmt.Errorf("%w: nil source", ErrInvalidConfig)
	}
	set := defaultSettings()
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	if set.live {
		return nil, fmt.Errorf("%w: a live swarm measures for itself; sources drive deterministic sessions", ErrLiveSession)
	}
	s, err := newDeterministicSession(ds, set)
	if err != nil {
		return nil, err
	}
	if err := s.attachSource(src); err != nil {
		return nil, err
	}
	return s, nil
}

// newSession builds a session from resolved settings (shared with the
// legacy Simulate/StartSwarm shims, which map their config structs onto
// the same representation — that is what keeps them bit-identical).
func newSession(ds *Dataset, set settings) (*Session, error) {
	if set.live {
		k := set.k
		if k == 0 {
			k = ds.DefaultK
		}
		tau := set.tau
		if !set.tauSet {
			tau = ds.Median()
		}
		s := &Session{ds: ds, set: set, tau: tau, k: k, done: make(chan struct{})}
		sw, err := runtime.NewSwarm(runtime.SwarmConfig{
			Dataset:          ds,
			SGD:              set.sgdConfig(),
			K:                k,
			Tau:              tau,
			ProbeInterval:    set.probeInterval,
			MeasurementNoise: set.noise,
			DropRate:         set.dropRate,
			DupRate:          set.dupRate,
			Shards:           set.shards,
			Workers:          set.workers,
			Seed:             set.seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		sw.Start()
		s.swarm = sw
		return s, nil
	}
	s, err := newDeterministicSession(ds, set)
	if err != nil {
		return nil, err
	}
	// The canonical source for the dataset: time-ordered trace replay
	// when the dataset has a dynamic trace, classic random matrix
	// sampling otherwise.
	var src Source
	if ds.Trace != nil {
		src, err = NewTraceSource(ds)
	} else {
		src, err = NewMatrixSource(ds, s.k, set.seed)
	}
	if err != nil {
		return nil, err
	}
	if err := s.attachSource(src); err != nil {
		return nil, err
	}
	return s, nil
}

// newDeterministicSession builds the driver-backed session skeleton; the
// caller attaches a measurement source.
func newDeterministicSession(ds *Dataset, set settings) (*Session, error) {
	k := set.k
	if k == 0 {
		k = ds.DefaultK
	}
	tau := set.tau
	if !set.tauSet {
		tau = ds.Median()
	}
	s := &Session{ds: ds, set: set, tau: tau, k: k, done: make(chan struct{})}
	drv, err := sim.ClassDriver(ds, tau, sim.Config{
		SGD:     set.sgdConfig(),
		K:       k,
		Shards:  set.shards,
		Workers: set.workers,
		Seed:    set.seed,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	s.drv = drv
	return s, nil
}

// attachSource wires a measurement source to the session: bindable
// sources in the chain adopt the driver's topology and RNG stream, the
// epoch mode is classified once, and a WAL decorator — which must be
// the outermost layer, so the log records exactly what the session
// consumes — is remembered for commit barriers.
func (s *Session) attachSource(src Source) error {
	bindSource(src, s.drv)
	s.src = src
	if ws, ok := src.(*WALSource); ok {
		s.wal = ws
	}
	for c := src; c != nil; {
		u, ok := c.(sourceUnwrapper)
		if !ok {
			break
		}
		c = u.Unwrap()
		if _, buried := c.(*WALSource); buried {
			return fmt.Errorf("%w: WithWAL must be the outermost source layer (the log must record what the session consumes)", ErrInvalidConfig)
		}
	}
	switch {
	case sourceHasEpochs(src):
		s.epochMode = epochReplay
	default:
		if isBareMatrix(src) {
			s.epochMode = epochNative
		} else {
			s.epochMode = epochNone
		}
	}
	return nil
}

// isBareMatrix reports whether src is a matrix sampler with no scenario
// decorators — the only shape with native epoch structure. A WAL tee
// does not change the stream, so it is looked through.
func isBareMatrix(src Source) bool {
	if ws, ok := src.(*WALSource); ok {
		src = ws.Unwrap()
	}
	_, bare := src.(*MatrixSource)
	return bare
}

// N returns the node count.
func (s *Session) N() int { return s.ds.N() }

// K returns the neighbor count per node in effect.
func (s *Session) K() int { return s.k }

// Tau returns the classification threshold in effect.
func (s *Session) Tau() float64 { return s.tau }

// Metric returns the dataset's measured quantity.
func (s *Session) Metric() Metric { return s.ds.Metric }

// Live reports whether the session runs the concurrent swarm backend.
func (s *Session) Live() bool { return s.swarm != nil }

// DefaultBudget returns the session's paper-default training budget —
// the total Run(ctx, 0) resolves to (20·k·n successful updates,
// §6.2.4). Callers deciding how much remains to train after a
// checkpoint resume compare it against Steps.
func (s *Session) DefaultBudget() int { return sim.DefaultBudget(s.ds.N(), s.k) }

// Steps returns the cumulative successful coordinate updates so far.
func (s *Session) Steps() int {
	if s.swarm != nil {
		return s.swarm.TotalStats().Updates
	}
	return s.drv.Steps()
}

// Neighbors returns node i's neighbor set (shared slice; do not modify).
func (s *Session) Neighbors(i int) []int {
	if s.swarm != nil {
		return s.swarm.Neighbors(i)
	}
	return s.drv.Neighbors(i)
}

// checkOpen returns ErrStopped once Close has been called.
func (s *Session) checkOpen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStopped
	}
	return nil
}

// Run trains until total additional successful coordinate updates have
// accumulated beyond the session's current Steps count (0 = the paper's
// convergence budget of 20·k updates per node), polling ctx between
// chunks and publishing Progress to watchers. On a deterministic
// session training drains the session's measurement Source through the
// engine: the canonical sources consume a static matrix in random probe
// order or replay a dynamic trace (Harvard) in time order, and a custom
// source (NewSessionFromSource) streams whatever scenario it encodes.
// On a live session the swarm is already training; Run simply waits for
// the additional updates to accumulate.
//
// Returns nil on completion, the context's error when cancelled (the
// coordinates keep all updates applied so far and remain usable), or
// ErrStopped when the session was closed. A finite source (a trace or
// capture replay) can also end the run early with nil once its stream
// is exhausted.
func (s *Session) Run(ctx context.Context, total int) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if total <= 0 {
		total = sim.DefaultBudget(s.ds.N(), s.k)
	}
	if s.swarm != nil {
		return s.runLive(ctx, total)
	}
	return s.runSource(ctx, total)
}

// runSource drains the measurement source through the engine's
// sequential apply path: topology-filter, classify at τ, apply. One
// chunk of measurements per iteration keeps the historical telemetry
// cadence; ctx is polled per chunk here because finite replay sources
// (trace, NDJSON) never block and so never consult it themselves.
func (s *Session) runSource(ctx context.Context, total int) error {
	buf := make([]Measurement, runChunk)
	for done := 0; done < total; {
		if err := ctx.Err(); err != nil {
			return err
		}
		want := min(runChunk, total-done)
		k, err := s.src.NextBatch(ctx, buf[:want])
		for _, m := range buf[:k] {
			if !s.usable(m) || !s.drv.IsNeighbor(m.I, m.J) {
				continue
			}
			s.drv.ApplyLabel(m.I, m.J, ClassOf(s.ds.Metric, m.Value, s.tau).Value())
			done++
		}
		if cerr := s.commitWAL(false); cerr != nil {
			return cerr
		}
		s.publish(Progress{Steps: s.drv.Steps(), Target: total})
		if err == io.EOF {
			return nil // finite stream exhausted before the budget
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// commitWAL writes a barrier to the session's WAL (no-op without one):
// every measurement logged so far is now applied, at the recorded step
// counter, master-RNG position and source-chain cursors. batch marks
// epoch-group application (replayed through the sharded batch path)
// versus sequential.
func (s *Session) commitWAL(batch bool) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.commit(dataset.WALCommit{
		Batch:   batch,
		Steps:   uint64(s.drv.Steps()),
		Draws:   s.drv.MasterDraws(),
		Cursors: collectCursors(s.src),
	})
}

// skipWAL writes a Skip barrier covering measurements that were logged
// but discarded without training — an interrupted epoch collection.
// Without it, the next real commit's cumulative sequence would claim
// them as applied and replay could never reconcile the step counter.
// Best-effort: the caller is already returning an error, and a failed
// skip leaves the entries as an ordinary uncommitted tail.
func (s *Session) skipWAL() {
	if s.wal == nil {
		return
	}
	_ = s.wal.commit(dataset.WALCommit{
		Skip:    true,
		Steps:   uint64(s.drv.Steps()),
		Draws:   s.drv.MasterDraws(),
		Cursors: collectCursors(s.src),
	})
}

// usable reports whether a streamed measurement can train this session:
// in-range distinct nodes, a finite value and a finite timestamp (the
// WAL cannot record a non-finite time, and every applied measurement
// must be recordable — applied ⊆ logged is what makes crash replay
// exact). Canonical sources only emit usable measurements; external
// captures are filtered here.
func (s *Session) usable(m Measurement) bool {
	n := s.ds.N()
	return m.I >= 0 && m.I < n && m.J >= 0 && m.J < n && m.I != m.J &&
		!math.IsNaN(m.Value) && !math.IsInf(m.Value, 0) &&
		!math.IsNaN(m.T) && !math.IsInf(m.T, 0)
}

func (s *Session) runLive(ctx context.Context, total int) error {
	start := s.swarm.TotalStats().Updates
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		steps := s.swarm.TotalStats().Updates
		s.publish(Progress{Steps: steps, Target: total})
		if steps-start >= total {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.done:
			return ErrStopped
		case <-tick.C:
		}
	}
}

// RunEpochs trains in epoch sweeps on the sharded parallel engine,
// deterministic for a fixed seed regardless of shard and worker counts.
// What one epoch means depends on the session's measurement source:
//
//   - Matrix sampling (the static-dataset default): every node issues
//     probesPerNode random probes through the engine's native epoch
//     scheduler — the historical behavior, bit-identical at a fixed
//     seed.
//   - Finite replay (a dynamic trace such as Harvard, an NDJSON
//     capture, or either behind scenario decorators): each epoch
//     consumes the next n·probesPerNode usable measurements from the
//     stream and trains on the group through the engine's sharded
//     batch-apply path (peer reads from an epoch-start snapshot,
//     cross-shard updates merged deterministically at the barrier).
//     The run ends early, without error, when the stream is exhausted.
//   - Anything else — an endless sampler behind decorators, a live
//     capture — has no epoch structure and returns ErrDynamicTrace;
//     use Run, which drains the stream in order.
//
// ctx is polled between epochs and at shard granularity within one; a
// cancelled call returns the context's error with all completed updates
// kept (no goroutines leak). Live sessions return ErrLiveSession.
// Returns the number of successful updates applied.
func (s *Session) RunEpochs(ctx context.Context, epochs, probesPerNode int) (int, error) {
	if err := s.checkOpen(); err != nil {
		return 0, err
	}
	if epochs < 0 || probesPerNode <= 0 {
		return 0, fmt.Errorf("%w: epochs=%d probesPerNode=%d (want epochs ≥ 0, probes > 0)",
			ErrInvalidConfig, epochs, probesPerNode)
	}
	if s.swarm != nil {
		return 0, fmt.Errorf("%w: a live swarm trains continuously on its own schedule", ErrLiveSession)
	}
	switch s.epochMode {
	case epochReplay:
		return s.runEpochsReplay(ctx, epochs, probesPerNode)
	case epochNative:
		if s.wal != nil {
			// Native epochs sample internally — no measurements flow, so
			// nothing reaches the log, and the step counter would outrun
			// what the WAL can reproduce: a later committed batch could
			// never replay to the right step count.
			return 0, fmt.Errorf("%w: native epoch training is not measurement-driven and cannot be logged; use Run, an epoch-structured source, or checkpoints around unlogged epoch training", ErrWAL)
		}
		total := 0
		for ep := 0; ep < epochs; ep++ {
			n, err := s.drv.RunEpochCtx(ctx, probesPerNode)
			total += n
			s.publish(Progress{Steps: s.drv.Steps(), Epochs: ep + 1})
			if err != nil {
				return total, err
			}
		}
		return total, nil
	default:
		return 0, fmt.Errorf("%w: source %T has no epoch structure; use Run, which drains the stream in order",
			ErrDynamicTrace, s.src)
	}
}

// runEpochsReplay trains on per-epoch measurement groups: each epoch
// collects the next n·probesPerNode usable measurements (topology
// filter, classification at τ) and applies the group through the
// engine's sharded batch path.
func (s *Session) runEpochsReplay(ctx context.Context, epochs, probesPerNode int) (int, error) {
	n := s.ds.N()
	target := n * probesPerNode
	buf := make([]Measurement, min(runChunk, target))
	samples := make([]engine.Sample, 0, target)
	total := 0
	for ep := 0; ep < epochs; ep++ {
		samples = samples[:0]
		eof := false
		for len(samples) < target && !eof {
			if err := ctx.Err(); err != nil {
				// Interrupted collection: the gathered measurements are
				// discarded, so mark them skipped in the WAL — otherwise a
				// later commit's cumulative sequence would claim them.
				s.skipWAL()
				return total, err
			}
			k, err := s.src.NextBatch(ctx, buf[:min(len(buf), target-len(samples))])
			for _, m := range buf[:k] {
				if !s.usable(m) || !s.drv.IsNeighbor(m.I, m.J) {
					continue
				}
				samples = append(samples, engine.Sample{
					I: m.I, J: m.J,
					Label: ClassOf(s.ds.Metric, m.Value, s.tau).Value(),
				})
			}
			if err == io.EOF {
				eof = true
			} else if err != nil {
				s.skipWAL()
				return total, err
			}
		}
		if len(samples) == 0 {
			s.skipWAL()       // a logged tail of unusable records only
			return total, nil // stream exhausted
		}
		// With a WAL attached the batch must apply atomically: a
		// partially applied parallel batch is not replayable, so the
		// context is honored between batches (above) and the apply
		// itself runs to completion — bounded work, one epoch group.
		applyCtx := ctx
		if s.wal != nil {
			applyCtx = context.Background()
		}
		applied, err := s.drv.ApplyBatchCtx(applyCtx, samples)
		total += applied
		if err == nil {
			if cerr := s.commitWAL(true); cerr != nil {
				return total, cerr
			}
		}
		s.publish(Progress{Steps: s.drv.Steps(), Epochs: ep + 1})
		if err != nil {
			return total, err
		}
		if eof {
			return total, nil
		}
	}
	return total, nil
}

// Predict returns the live estimate x̂ᵢⱼ = uᵢ·vⱼᵀ for the path i → j.
// On a live session this takes the owning shards' read locks; prediction
// traffic should instead go through a Snapshot, which is lock-free.
func (s *Session) Predict(i, j int) float64 {
	if s.swarm != nil {
		store := s.swarm.Store()
		var ui, vj []float64
		store.Ref(i).View(func(c *sgd.Coordinates) { ui = append(ui, c.U...) })
		store.Ref(j).View(func(c *sgd.Coordinates) { vj = append(vj, c.V...) })
		return sgd.Predict(ui, vj)
	}
	return s.drv.Predict(i, j)
}

// Classify returns the predicted class of the path i → j: the sign of
// Predict.
func (s *Session) Classify(i, j int) Class {
	return classify.FromValue(s.Predict(i, j))
}

// store returns the backing sharded coordinate store.
func (s *Session) store() *engine.Store {
	if s.swarm != nil {
		return s.swarm.Store()
	}
	return s.drv.Engine().Store()
}

// Snapshot materializes an immutable copy of every node's coordinates
// (consistent per shard even while a live swarm keeps training). The
// returned Snapshot serves Predict/PredictBatch/Rank/Classify to any
// number of concurrent readers without further synchronization.
//
// Materialization is version-aware: every store shard carries a counter
// bumped on each write, and the session remembers the vector its last
// snapshot was copied at. At quiescence — no shard advanced since the
// last call — the previously materialized snapshot is returned as-is
// (zero copying, zero locking beyond the version reads). Otherwise a
// fresh snapshot starts from the previous one and re-copies only the
// shards whose version moved, taking only those shards' read locks.
func (s *Session) Snapshot() *Snapshot {
	store := s.store()
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	n, rank, shards := store.N(), store.Rank(), store.Shards()
	prev := s.snap
	if prev != nil && store.VersionsEqual(prev.vers) {
		return prev
	}
	u := make([]float64, n*rank)
	v := make([]float64, n*rank)
	vers := make([]uint64, shards)
	if prev != nil && prev.n == n && prev.rank == rank && len(prev.vers) == shards {
		// Seed the refresh from the previous materialization: one
		// contiguous copy with no lock traffic, then only advanced shards
		// are re-copied from the store.
		copy(u, prev.u)
		copy(v, prev.v)
		copy(vers, prev.vers)
	}
	// With a zero base (first call), the all-zero version vector is the
	// canonical empty snapshot: shards at version 0 were never written and
	// hold zeros, matching the fresh buffers.
	store.SnapshotDeltaInto(u, v, vers)
	s.snap = &Snapshot{
		n:      n,
		rank:   rank,
		u:      u,
		v:      v,
		tau:    s.tau,
		metric: s.ds.Metric,
		steps:  s.Steps(),
		shards: shards,
		vers:   vers,
	}
	return s.snap
}

// evalSet delegates test-set evaluation to the active backend.
func (s *Session) evalSet(ctx context.Context, maxPairs int) (labels, scores []float64, err error) {
	if s.swarm != nil {
		return s.swarm.EvalSetCtx(ctx, maxPairs)
	}
	return s.drv.EvalSetCtx(ctx, maxPairs)
}

// AUC evaluates prediction quality over the never-measured pairs.
// maxPairs > 0 evaluates a deterministic subsample (cheap checkpoint
// probes); 0 uses every test pair. Cancelling ctx aborts the
// block-parallel sweep and returns the context's error.
func (s *Session) AUC(ctx context.Context, maxPairs int) (float64, error) {
	labels, scores, err := s.evalSet(ctx, maxPairs)
	if err != nil {
		return 0, err
	}
	return eval.AUC(labels, scores), nil
}

// Confusion returns the sign-rule confusion matrix over the test pairs.
func (s *Session) Confusion(ctx context.Context) (Confusion, error) {
	labels, scores, err := s.evalSet(ctx, 0)
	if err != nil {
		return Confusion{}, err
	}
	return eval.ConfusionAtParallel(labels, scores, 0, s.set.workers), nil
}

// ROC returns the receiver operating characteristic over the test pairs,
// from (0,0) to (1,1) as the discrimination threshold τc sweeps the
// prediction range (§6.1).
func (s *Session) ROC(ctx context.Context) ([]ROCPoint, error) {
	labels, scores, err := s.evalSet(ctx, 0)
	if err != nil {
		return nil, err
	}
	return eval.ROC(labels, scores), nil
}

// PrecisionRecall returns the precision-recall curve over the test pairs.
func (s *Session) PrecisionRecall(ctx context.Context) ([]PRPoint, error) {
	labels, scores, err := s.evalSet(ctx, 0)
	if err != nil {
		return nil, err
	}
	return eval.PrecisionRecall(labels, scores), nil
}

// SelectPeers evaluates class-based peer selection over random peer sets
// of the given size (disjoint from neighbor sets), returning the mean
// stretch and the unsatisfied-node fraction of §6.4. On a live session
// the predictions come from a fresh Snapshot.
func (s *Session) SelectPeers(peerSetSize int, seed int64) (stretch, unsatisfied float64) {
	var pred peersel.Predictor
	if s.swarm != nil {
		pred = s.Snapshot()
	} else {
		pred = s.drv
	}
	cfg := peersel.Config{
		PeerSetSize: peerSetSize,
		Tau:         s.tau,
		Exclude:     peersel.NeighborExclusion(s.ds.N(), s.Neighbors),
		Seed:        seed,
	}
	sets := peersel.BuildPeerSets(s.ds, cfg)
	res := peersel.Evaluate(s.ds, sets, peersel.ClassBased, pred, cfg)
	return res.MeanStretch, res.Unsatisfied
}

// Watch returns a stream of training telemetry: one Progress sample per
// completed chunk of Run (about every 8k updates), epoch of RunEpochs,
// or live poll tick. Delivery is best-effort — a slow reader misses
// intermediate samples rather than stalling training (the channel holds
// the 16 most recent undelivered samples). The channel is closed when
// ctx is cancelled or the session is closed.
func (s *Session) Watch(ctx context.Context) <-chan Progress {
	ch := make(chan Progress, 16)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(ch)
		return ch
	}
	s.subs = append(s.subs, ch)
	s.mu.Unlock()
	go func() {
		select {
		case <-ctx.Done():
			s.unsubscribe(ch)
		case <-s.done:
			// Close already closed every subscriber channel.
		}
	}()
	return ch
}

// unsubscribe removes ch from the subscriber list and closes it, if it
// is still registered (Close may have won the race and closed it first).
func (s *Session) unsubscribe(ch chan Progress) {
	s.mu.Lock()
	for i, c := range s.subs {
		if c == ch {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			s.mu.Unlock()
			close(ch)
			return
		}
	}
	s.mu.Unlock()
}

// publish delivers a telemetry sample to every watcher, never blocking:
// a full channel drops the sample.
func (s *Session) publish(p Progress) {
	s.mu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- p:
		default:
		}
	}
	s.mu.Unlock()
}

// Close stops the session: a live swarm's nodes are cancelled and
// joined, every Watch channel is closed, and subsequent Run/RunEpochs
// calls return ErrStopped. Snapshots taken earlier remain valid — they
// are immutable copies. Close is idempotent and always returns nil.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	subs := s.subs
	s.subs = nil
	s.mu.Unlock()
	if s.swarm != nil {
		s.swarm.Stop()
	}
	for _, ch := range subs {
		close(ch)
	}
	return nil
}
