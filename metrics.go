package dmfsgd

import "dmfsgd/internal/metrics"

// WAL series (DESIGN.md §12); the checkpoint counterparts live in
// internal/ckpt.
var (
	mWALRecords = metrics.Default().Counter("dmf_wal_records_total",
		"Measurements appended to the write-ahead log.")
	mWALCommits = metrics.Default().Counter("dmf_wal_commits_total",
		"Commit barriers written.")
	mWALReplayed = metrics.Default().Counter("dmf_wal_replayed_records_total",
		"Committed measurements re-applied from the log on resume.")
	mWALSegments = metrics.Default().Counter("dmf_wal_segments_total",
		"WAL segment files opened by the rotating log.")
)
