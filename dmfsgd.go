package dmfsgd

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/loss"
	"dmfsgd/internal/sgd"
)

// Class is a binary performance class: Good (+1) or Bad (−1).
type Class = classify.Class

// Class values.
const (
	// Good marks a well-performing path.
	Good = classify.Good
	// Bad marks a poorly-performing path.
	Bad = classify.Bad
)

// Metric identifies the measured quantity.
type Metric = dataset.Metric

// Metrics.
const (
	// RTT is round-trip time (ms): symmetric, good = small.
	RTT = dataset.RTT
	// ABW is available bandwidth (Mbps): asymmetric, good = large.
	ABW = dataset.ABW
)

// Loss selects the training loss function.
type Loss = loss.Kind

// Losses.
const (
	// LossLogistic is the paper's recommended classification loss.
	LossLogistic = loss.Logistic
	// LossHinge is the max-margin classification loss.
	LossHinge = loss.Hinge
	// LossL2 is the square loss for quantity-based (regression) training.
	LossL2 = loss.L2
)

// Config carries the DMFSGD hyper-parameters for the embeddable Node
// API. The zero value of each field is replaced by the paper's default
// (§6.2.4): Rank 10, LearningRate 0.1, Lambda 0.1, LossLogistic.
// Build one with NewConfig and functional options to set values —
// including explicit zeros — unambiguously; Sessions take the same
// options directly.
type Config struct {
	// Rank is r, the coordinate dimensionality.
	Rank int
	// LearningRate is η, the SGD step size.
	LearningRate float64
	// Lambda is λ, the regularization coefficient.
	Lambda float64
	// Loss is the training loss.
	Loss Loss
	// lossSet distinguishes "unset" from an explicit LossL2 (which is the
	// zero Kind). Use WithLoss to set it explicitly.
	lossSet bool
}

// WithLoss returns a copy of c with the loss set explicitly (needed to
// select LossL2, whose value coincides with the zero Kind).
func (c Config) WithLoss(l Loss) Config {
	c.Loss = l
	c.lossSet = true
	return c
}

// DefaultConfig returns the paper's recommended configuration.
func DefaultConfig() Config {
	return Config{}.normalize()
}

// normalize fills zero fields with paper defaults.
func (c Config) normalize() Config {
	if c.Rank == 0 {
		c.Rank = 10
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.1
	}
	if c.Lambda == 0 {
		c.Lambda = 0.1
	}
	if !c.lossSet && c.Loss == loss.L2 {
		c.Loss = loss.Logistic
	}
	c.lossSet = true
	return c
}

// sgdConfig converts to the internal representation.
func (c Config) sgdConfig() sgd.Config {
	n := c.normalize()
	return sgd.Config{
		Rank:         n.Rank,
		LearningRate: n.LearningRate,
		Lambda:       n.Lambda,
		Loss:         n.Loss,
	}
}

// Node is an embeddable DMFSGD participant for applications that bring
// their own measurement and messaging: feed it observations, ask it for
// predictions. A Node is the complete per-host state of the decentralized
// system — two rank-r vectors — so it costs O(r) memory regardless of
// network size.
//
// Node is not safe for concurrent use; guard it externally or confine it
// to one goroutine (the runtime package does the latter).
type Node struct {
	cfg    sgd.Config
	coords *sgd.Coordinates
}

// NewNode creates a node with randomly initialized coordinates. Invalid
// hyper-parameters are reported with an error wrapping ErrInvalidConfig.
func NewNode(cfg Config, seed int64) (*Node, error) {
	sc := cfg.sgdConfig()
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return &Node{
		cfg:    sc,
		coords: sgd.NewCoordinates(sc.Rank, rand.New(rand.NewSource(seed))),
	}, nil
}

// U returns a copy of the node's out-coordinate (its row of U).
// Applications piggyback it on ABW probes (Algorithm 2).
func (n *Node) U() []float64 { return append([]float64(nil), n.coords.U...) }

// V returns a copy of the node's in-coordinate (its row of V).
// Applications piggyback it on probe replies.
func (n *Node) V() []float64 { return append([]float64(nil), n.coords.V...) }

// ObserveRTT records one symmetric class measurement to a peer whose
// coordinates (peerU, peerV) came back with the probe reply (Algorithm 1).
// Returns false when the peer coordinates are invalid (NaN/Inf); the node
// is untouched in that case.
func (n *Node) ObserveRTT(peerU, peerV []float64, c Class) bool {
	return n.cfg.UpdateRTT(n.coords, peerU, peerV, c.Value())
}

// ObserveABWAsSender records the class returned by an ABW probe target
// along with the target's in-coordinate (Algorithm 2 step 5).
func (n *Node) ObserveABWAsSender(peerV []float64, c Class) bool {
	return n.cfg.UpdateABWSender(n.coords, peerV, c.Value())
}

// ObserveABWAsTarget records a class this node inferred for an incoming
// probe carrying the sender's out-coordinate (Algorithm 2 step 4).
func (n *Node) ObserveABWAsTarget(peerU []float64, c Class) bool {
	return n.cfg.UpdateABWTarget(n.coords, peerU, c.Value())
}

// Score returns the raw prediction x̂ = u·peerVᵀ for the path from this
// node to the peer owning peerV. Larger means more likely good; use it
// directly to rank candidate peers (§6.4 does exactly this).
func (n *Node) Score(peerV []float64) float64 { return n.coords.PredictTo(peerV) }

// PredictClass returns the predicted class of the path to the peer owning
// peerV (the sign of Score).
func (n *Node) PredictClass(peerV []float64) Class {
	return classify.FromValue(n.Score(peerV))
}

// ScoreFrom returns the prediction for the reverse path (from the peer
// owning peerU to this node).
func (n *Node) ScoreFrom(peerU []float64) float64 { return n.coords.PredictFrom(peerU) }

// Healthy reports whether the node's coordinates are finite.
func (n *Node) Healthy() bool { return n.coords.Valid() }

// ClassOf classifies a raw metric measurement against a threshold τ under
// the metric's polarity: RTT ≤ τ or ABW ≥ τ is Good. Applications use it
// to turn their own measurements into classes before calling Observe*.
func ClassOf(m Metric, value, tau float64) Class {
	return classify.Of(m, value, tau)
}

// ClassOfScore applies the sign decision rule to a prediction score
// x̂ᵢⱼ (from Node.Score, Session.Predict or Snapshot.PredictBatch):
// strictly positive means Good. This is the single place the rule
// lives — serving code should use it instead of re-deriving the sign
// convention.
func ClassOfScore(score float64) Class {
	return classify.FromValue(score)
}
