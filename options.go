package dmfsgd

import (
	"fmt"
	"math"
	"time"

	"dmfsgd/internal/loss"
	"dmfsgd/internal/sgd"
)

// settings is the resolved Session configuration. Unlike the legacy
// zero-value config structs, every "explicitly set" state is tracked, so
// an explicit WithTau(0) or WithLoss(LossL2) is distinguishable from
// "use the default".
type settings struct {
	rank         int
	learningRate float64
	lambda       float64
	loss         Loss
	tau          float64
	tauSet       bool
	k            int // 0 = dataset default
	shards       int // 0 = backend default
	workers      int // 0 = GOMAXPROCS
	seed         int64

	// Explicit-set markers for the options a checkpoint also records:
	// ResumeSession adopts the checkpoint's values and uses these to
	// detect (and reject) contradicting explicit options.
	rankSet, etaSet, lambdaSet, lossSet, kSet, shardsSet, seedSet bool

	// incarnation numbers this process lifetime of a stable trainer
	// identity (cluster deployments; recorded in checkpoints).
	incarnation uint32

	// Live-session knobs (WithLive and friends).
	live          bool
	probeInterval time.Duration
	noise         float64
	dropRate      float64
	dupRate       float64
}

// defaultSettings returns the paper's recommended configuration (§6.2.4).
func defaultSettings() settings {
	return settings{rank: 10, learningRate: 0.1, lambda: 0.1, loss: LossLogistic}
}

// sgdConfig converts to the internal hyper-parameter representation.
func (s settings) sgdConfig() sgd.Config {
	return sgd.Config{
		Rank:         s.rank,
		LearningRate: s.learningRate,
		Lambda:       s.lambda,
		Loss:         s.loss,
	}
}

// Option configures a Session (and, via NewConfig, a Node). Options
// validate eagerly: NewSession returns the first option error, wrapped in
// ErrInvalidConfig.
type Option func(*settings) error

// WithRank sets r, the coordinate dimensionality (default 10, §6.2.4).
func WithRank(r int) Option {
	return func(s *settings) error {
		if r <= 0 {
			return fmt.Errorf("%w: rank must be positive, got %d", ErrInvalidConfig, r)
		}
		s.rank = r
		s.rankSet = true
		return nil
	}
}

// WithLearningRate sets η, the SGD step size (default 0.1).
func WithLearningRate(eta float64) Option {
	return func(s *settings) error {
		if !(eta > 0) || math.IsInf(eta, 0) {
			return fmt.Errorf("%w: learning rate must be positive and finite, got %v", ErrInvalidConfig, eta)
		}
		s.learningRate = eta
		s.etaSet = true
		return nil
	}
}

// WithLambda sets λ, the regularization coefficient (default 0.1). Zero
// disables regularization — expressible here, unlike with the legacy
// Config struct, whose zero value meant "use the default".
func WithLambda(lambda float64) Option {
	return func(s *settings) error {
		if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
			return fmt.Errorf("%w: lambda must be non-negative and finite, got %v", ErrInvalidConfig, lambda)
		}
		s.lambda = lambda
		s.lambdaSet = true
		return nil
	}
}

// WithLoss sets the training loss (default LossLogistic). LossL2 is the
// zero Loss value, so with the legacy Config struct it could only be
// selected through the Config.WithLoss workaround; here it is just
// another explicit value.
func WithLoss(l Loss) Option {
	return func(s *settings) error {
		switch l {
		case loss.Logistic, loss.Hinge, loss.L2:
			s.loss = l
			s.lossSet = true
			return nil
		default:
			return fmt.Errorf("%w: unknown loss %v", ErrInvalidConfig, l)
		}
	}
}

// WithTau sets the classification threshold explicitly (default: the
// dataset median, the paper's τ). Unlike the legacy config structs, an
// explicit 0 is honored rather than treated as "unset".
func WithTau(tau float64) Option {
	return func(s *settings) error {
		if math.IsNaN(tau) || math.IsInf(tau, 0) {
			return fmt.Errorf("%w: tau must be finite, got %v", ErrInvalidConfig, tau)
		}
		s.tau = tau
		s.tauSet = true
		return nil
	}
}

// WithK sets the neighbor count per node (default: the dataset's
// DefaultK — 10, or 32 for thousand-node sets, §6.2.2). The upper bound
// k < n is checked against the dataset at NewSession.
func WithK(k int) Option {
	return func(s *settings) error {
		if k <= 0 {
			return fmt.Errorf("%w: k must be positive, got %d", ErrInvalidConfig, k)
		}
		s.k = k
		s.kSet = true
		return nil
	}
}

// WithShards partitions the coordinate store into p shards (default: 1
// for deterministic sessions, a contention-minimizing value for live
// ones). Results are independent of the shard count in every mode.
func WithShards(p int) Option {
	return func(s *settings) error {
		if p <= 0 {
			return fmt.Errorf("%w: shards must be positive, got %d", ErrInvalidConfig, p)
		}
		s.shards = p
		s.shardsSet = true
		return nil
	}
}

// WithWorkers bounds the goroutines used by epoch training and
// evaluation (default: GOMAXPROCS). Results are identical for every
// worker count.
func WithWorkers(w int) Option {
	return func(s *settings) error {
		if w <= 0 {
			return fmt.Errorf("%w: workers must be positive, got %d", ErrInvalidConfig, w)
		}
		s.workers = w
		return nil
	}
}

// WithSeed sets the seed driving all randomness (neighbor choice, probe
// order, coordinate initialization). Fixed seed ⇒ reproducible session.
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.seed = seed
		s.seedSet = true
		return nil
	}
}

// WithIncarnation numbers this process lifetime of a stable trainer
// identity in a trainer cluster. The value is recorded in checkpoints;
// a process resuming from one must pass the checkpoint's incarnation
// plus one, so the restarted trainer's vector-clock entries start a
// fresh lineage that dominates everything its previous life wrote
// (shards can never regress through a restart). Single-process
// sessions may ignore it entirely — the default 0 is fine.
func WithIncarnation(inc uint32) Option {
	return func(s *settings) error {
		s.incarnation = inc
		return nil
	}
}

// WithLive selects the concurrent runtime backend: the session starts a
// swarm of goroutine nodes exchanging real protocol messages over an
// in-memory transport, training continuously until Close. Without it the
// session uses the deterministic simulation driver.
func WithLive() Option {
	return func(s *settings) error {
		s.live = true
		return nil
	}
}

// WithProbeInterval sets each live node's probing period (default 1ms).
// Implies nothing for deterministic sessions, which have no clock.
func WithProbeInterval(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("%w: probe interval must be positive, got %v", ErrInvalidConfig, d)
		}
		s.probeInterval = d
		return nil
	}
}

// WithMeasurementNoise models imperfect measurement tools in a live
// session: the lognormal sigma of RTT measurements and the relative
// width of near-τ ABW errors (default 0 = exact tools).
func WithMeasurementNoise(sigma float64) Option {
	return func(s *settings) error {
		if sigma < 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
			return fmt.Errorf("%w: measurement noise must be non-negative and finite, got %v", ErrInvalidConfig, sigma)
		}
		s.noise = sigma
		return nil
	}
}

// WithPacketLoss injects transport failures into a live session: drop is
// the fraction of messages lost, dup the fraction duplicated.
func WithPacketLoss(drop, dup float64) Option {
	return func(s *settings) error {
		if drop < 0 || drop >= 1 || math.IsNaN(drop) {
			return fmt.Errorf("%w: drop rate must be in [0,1), got %v", ErrInvalidConfig, drop)
		}
		if dup < 0 || dup >= 1 || math.IsNaN(dup) {
			return fmt.Errorf("%w: dup rate must be in [0,1), got %v", ErrInvalidConfig, dup)
		}
		s.dropRate, s.dupRate = drop, dup
		return nil
	}
}

// NewConfig builds a hyper-parameter Config for the embeddable Node API
// from the same options a Session takes (WithRank, WithLearningRate,
// WithLambda, WithLoss; session-level options are accepted and ignored by
// Node, which has no topology or clock). Unlike the zero-value Config
// struct, an explicit WithLoss(LossL2) needs no workaround.
func NewConfig(opts ...Option) (Config, error) {
	set := defaultSettings()
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return Config{}, err
		}
	}
	return Config{
		Rank:         set.rank,
		LearningRate: set.learningRate,
		Lambda:       set.lambda,
		Loss:         set.loss,
		lossSet:      true,
	}, nil
}
