package dmfsgd

import (
	"context"
	"errors"
	"math"
	goruntime "runtime"
	"testing"
	"time"
)

// waitNoLeak asserts the goroutine count returns to at most base within a
// grace period — the "no leaked goroutines" check of the cancellation
// tests.
func waitNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", base, goruntime.NumGoroutine())
}

func TestSessionOptionValidation(t *testing.T) {
	ds := NewMeridianDataset(30, 1)
	cases := []struct {
		name string
		opt  Option
	}{
		{"rank", WithRank(0)},
		{"eta", WithLearningRate(-1)},
		{"lambda", WithLambda(-0.1)},
		{"loss", WithLoss(Loss(99))},
		{"k", WithK(-3)},
		{"shards", WithShards(0)},
		{"workers", WithWorkers(0)},
		{"probe-interval", WithProbeInterval(0)},
		{"noise", WithMeasurementNoise(-1)},
		{"packet-loss", WithPacketLoss(1.5, 0)},
	}
	for _, tc := range cases {
		if _, err := NewSession(ds, tc.opt); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: err = %v, want ErrInvalidConfig", tc.name, err)
		}
	}
	if _, err := NewSession(nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("nil dataset: err = %v", err)
	}
	// Topology bound checked against the dataset.
	if _, err := NewSession(ds, WithK(30)); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("k >= n: err = %v", err)
	}
}

func TestSessionExplicitZeroOptions(t *testing.T) {
	ds := NewMeridianDataset(40, 2)
	// WithTau(0) is an explicit threshold, not "use the median" — the
	// ambiguity the legacy SimulationConfig could not express.
	sess, err := NewSession(ds, WithTau(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Tau() != 0 {
		t.Errorf("explicit tau 0 became %v", sess.Tau())
	}
	// Unset tau falls back to the dataset median.
	sess2, err := NewSession(ds)
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	if sess2.Tau() != ds.Median() {
		t.Errorf("default tau = %v, want median %v", sess2.Tau(), ds.Median())
	}
	// WithLoss(LossL2) needs no workaround (LossL2 is the zero Loss).
	sess3, err := NewSession(ds, WithLoss(LossL2), WithLambda(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sess3.Close()
	if sess3.set.loss != LossL2 {
		t.Errorf("explicit LossL2 became %v", sess3.set.loss)
	}
	if sess3.set.lambda != 0 {
		t.Errorf("explicit lambda 0 became %v", sess3.set.lambda)
	}
}

// TestSessionMatchesLegacySimulate: the deprecated shim and the Session it
// wraps are the same computation — fixed seed, bit-identical predictions.
func TestSessionMatchesLegacySimulate(t *testing.T) {
	ds := NewMeridianDataset(60, 5)
	legacy, err := Simulate(ds, SimulationConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	legacy.Run(0)

	sess, err := NewSession(ds, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < ds.N(); i++ {
		for j := 0; j < ds.N(); j++ {
			if i == j {
				continue
			}
			if got, want := sess.Predict(i, j), legacy.Predict(i, j); got != want {
				t.Fatalf("Predict(%d,%d): session %v != legacy %v", i, j, got, want)
			}
		}
	}
	auc, err := sess.AUC(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if auc != legacy.AUC() {
		t.Errorf("AUC: session %v != legacy %v", auc, legacy.AUC())
	}
}

func TestSessionRunCancelled(t *testing.T) {
	ds := NewMeridianDataset(50, 3)
	sess, err := NewSession(ds, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := goruntime.NumGoroutine()
	if err := sess.Run(ctx, 1_000_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx: err = %v", err)
	}
	if sess.Steps() != 0 {
		t.Errorf("cancelled-before-start run performed %d steps", sess.Steps())
	}
	waitNoLeak(t, base)
}

// TestSessionRunEpochsCancelMidEpoch: cancellation lands while the shard
// workers are mid-sweep; the call returns the context error promptly, the
// store stays usable, and no worker goroutines are left behind.
func TestSessionRunEpochsCancelMidEpoch(t *testing.T) {
	ds := NewMeridianDataset(300, 4)
	sess, err := NewSession(ds, WithSeed(4), WithShards(8), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	base := goruntime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	// Far more epochs than can complete in 5ms: the cancel must land
	// mid-flight.
	n, err := sess.RunEpochs(ctx, 1_000_000, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n == 0 {
		t.Error("no updates before cancellation — cancel landed before any epoch?")
	}
	waitNoLeak(t, base)
	// The partially trained store still answers predictions.
	_ = sess.Predict(0, 1)
	if _, err := sess.AUC(context.Background(), 1000); err != nil {
		t.Errorf("AUC after cancelled training: %v", err)
	}
}

// TestSessionEvalCancelMidSweep: a context that expires during the
// block-parallel evaluation aborts it with the context error and joins
// every eval worker.
func TestSessionEvalCancelMidSweep(t *testing.T) {
	ds := NewMeridianDataset(400, 6)
	sess, err := NewSession(ds, WithSeed(6), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.RunEpochs(context.Background(), 1, 8); err != nil {
		t.Fatal(err)
	}
	base := goruntime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.AUC(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("AUC on cancelled ctx: err = %v", err)
	}
	if _, err := sess.Confusion(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Confusion on cancelled ctx: err = %v", err)
	}
	waitNoLeak(t, base)
}

// TestSessionRunEpochsDynamicTrace: epoch training on a trace dataset
// now trains on per-epoch measurement groups instead of returning
// ErrDynamicTrace — the sentinel survives only for sources with no
// epoch structure (TestRunEpochsNoEpochStructure).
func TestSessionRunEpochsDynamicTrace(t *testing.T) {
	ds := NewHarvardDataset(40, 20000, 7)
	sess, err := NewSession(ds, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	n, err := sess.RunEpochs(context.Background(), 5, 10)
	if err != nil {
		t.Fatalf("RunEpochs on trace dataset: %v", err)
	}
	if n == 0 {
		t.Fatal("epoch-mode trace replay made no updates")
	}
	auc, err := sess.AUC(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(auc) || auc <= 0 || auc > 1 {
		t.Fatalf("epoch-mode trace replay AUC = %v, want a finite value in (0,1]", auc)
	}
	// The deprecated shim trains the same way now.
	legacy, err := Simulate(ds, SimulationConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ln, err := legacy.RunEpochs(5, 10); err != nil || ln != n {
		t.Fatalf("Simulation.RunEpochs = (%d, %v), want (%d, nil)", ln, err, n)
	}
	// Run on a fresh session still replays the trace in time order.
	fresh, err := NewSession(ds, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Run(context.Background(), 5000); err != nil {
		t.Fatal(err)
	}
	if fresh.Steps() == 0 {
		t.Error("trace replay made no updates")
	}
}

func TestSessionInvalidEpochArgs(t *testing.T) {
	ds := NewMeridianDataset(30, 8)
	sess, err := NewSession(ds, WithSeed(8), WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.RunEpochs(context.Background(), 1, 0); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("probesPerNode=0: err = %v", err)
	}
	if _, err := sess.RunEpochs(context.Background(), -1, 5); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("epochs=-1: err = %v", err)
	}
}

func TestSessionClose(t *testing.T) {
	ds := NewMeridianDataset(30, 9)
	sess, err := NewSession(ds, WithSeed(9), WithK(10))
	if err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if err := sess.Run(context.Background(), 100); !errors.Is(err, ErrStopped) {
		t.Errorf("Run after Close: err = %v, want ErrStopped", err)
	}
	if _, err := sess.RunEpochs(context.Background(), 1, 1); !errors.Is(err, ErrStopped) {
		t.Errorf("RunEpochs after Close: err = %v, want ErrStopped", err)
	}
	// Snapshots outlive the session.
	_ = snap.Predict(0, 1)
	// Watch on a closed session returns a closed channel.
	if _, ok := <-sess.Watch(context.Background()); ok {
		t.Error("Watch after Close delivered a sample")
	}
}

func TestSessionWatch(t *testing.T) {
	ds := NewMeridianDataset(60, 11)
	sess, err := NewSession(ds, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ch := sess.Watch(ctx)
	if err := sess.Run(context.Background(), 30000); err != nil {
		t.Fatal(err)
	}
	var got []Progress
	for len(got) < 1 {
		p, ok := <-ch
		if !ok {
			t.Fatal("watch channel closed before any sample")
		}
		got = append(got, p)
	}
	if got[0].Steps == 0 || got[0].Target != 30000 {
		t.Errorf("first sample = %+v", got[0])
	}
	cancel()
	// The channel must close once the watcher's context is cancelled.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("watch channel not closed after cancel")
		}
	}
}

func TestSessionLiveBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent live swarm")
	}
	ds := NewHPS3Dataset(30, 10)
	sess, err := NewSession(ds,
		WithLive(),
		WithProbeInterval(200*time.Microsecond),
		WithSeed(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if !sess.Live() {
		t.Fatal("session not live")
	}
	// Run waits for the update budget to accumulate.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sess.Run(ctx, 500); err != nil {
		t.Fatalf("live Run: %v", err)
	}
	if sess.Steps() < 500 {
		t.Errorf("steps = %d after budget-500 Run", sess.Steps())
	}
	if _, err := sess.RunEpochs(context.Background(), 1, 1); !errors.Is(err, ErrLiveSession) {
		t.Errorf("live RunEpochs: err = %v, want ErrLiveSession", err)
	}
	if auc, err := sess.AUC(ctx, 0); err != nil || auc < 0.5 {
		t.Errorf("live AUC = %v, %v", auc, err)
	}
}
