module dmfsgd

go 1.24
