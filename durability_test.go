package dmfsgd

// Tests for the incremental-durability tier: delta checkpoint chains
// (CheckpointChain), rotating WAL segments (WithWALDir), and the
// durability-path edge cases around them. The crash-recovery property
// stays the one TestCrashRecoverySequential pins: a run that
// checkpoints, crashes and resumes must be bit-identical to a run that
// never stopped.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmfsgd/internal/ckpt"
	"dmfsgd/internal/dataset"
)

// terminalSource hands out one batch of measurements together with
// io.EOF — the "final partial batch" shape a finite stream may emit.
type terminalSource struct {
	ms   []Measurement
	done bool
}

func (s *terminalSource) NextBatch(_ context.Context, buf []Measurement) (int, error) {
	if s.done {
		return 0, io.EOF
	}
	s.done = true
	return copy(buf, s.ms), io.EOF
}

// failWriter fails every write.
type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

// TestWALSourceNextBatchPreservesSourceError: when the inner source
// reports a terminal condition (io.EOF with a final batch) in the same
// call where the log write fails, NextBatch must surface BOTH — the
// old code returned only the WAL error, losing the fact that the
// stream had ended.
func TestWALSourceNextBatchPreservesSourceError(t *testing.T) {
	boom := errors.New("disk full")
	src := &terminalSource{ms: []Measurement{{T: 1, I: 0, J: 1, Value: 2}}}
	ws := WithWAL(src, failWriter{boom})
	buf := make([]Measurement, 4)
	n, err := ws.NextBatch(context.Background(), buf)
	if n != 0 {
		t.Errorf("n=%d after a failed log write, want 0 (nothing unlogged may train)", n)
	}
	if !errors.Is(err, ErrWAL) {
		t.Errorf("err=%v, want ErrWAL", err)
	}
	if !strings.Contains(err.Error(), boom.Error()) {
		t.Errorf("err=%v lost the write failure's cause", err)
	}
	if !errors.Is(err, io.EOF) {
		t.Errorf("err=%v dropped the source's terminal io.EOF", err)
	}
	// The failure is sticky, and without a competing source error the
	// plain WAL error comes back alone.
	if _, err := ws.NextBatch(context.Background(), buf); !errors.Is(err, ErrWAL) || errors.Is(err, io.EOF) {
		t.Errorf("sticky err=%v, want bare ErrWAL", err)
	}
}

// TestCheckpointBarrierNonTruncatingSink: on a sink that cannot
// truncate (a plain buffer, a pipe) the checkpoint barrier is a no-op,
// and correctness comes from skip-by-seq replay: resume reads the
// whole untruncated log, skips every entry at or below the barrier,
// and sequence numbering continues where the log left off.
func TestCheckpointBarrierNonTruncatingSink(t *testing.T) {
	ctx := context.Background()
	const n, total, seed = 50, 2400, 91
	ds := NewMeridianDataset(n, seed)
	ckptPath := filepath.Join(t.TempDir(), "sess.ckpt")

	ref, err := NewSession(ds, WithSeed(seed), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ctx, total); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, ref)
	ref.Close()

	var wal bytes.Buffer
	src, _ := NewMatrixSource(ds, 0, seed)
	ws := WithWAL(src, &wal)
	crash, err := NewSessionFromSource(ds, ws, WithSeed(seed), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := crash.Run(ctx, 800); err != nil {
		t.Fatal(err)
	}
	preSave := wal.Len()
	if err := SaveCheckpoint(crash, ckptPath); err != nil {
		t.Fatal(err)
	}
	if wal.Len() != preSave {
		t.Fatalf("barrier changed a non-truncating sink: %d -> %d bytes", preSave, wal.Len())
	}
	if err := crash.Run(ctx, 900); err != nil {
		t.Fatal(err)
	}
	killSeq := ws.Seq()
	crash.Close()

	ckptF, err := os.Open(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ckptF.Close()
	src2, _ := NewMatrixSource(ds, 0, seed)
	var wal2 bytes.Buffer
	ws2 := WithWAL(src2, &wal2)
	resumed, err := ResumeSessionFromSource(ds, ws2, ckptF, bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed.Steps() != 800+900 {
		t.Errorf("resumed at %d steps, want %d", resumed.Steps(), 800+900)
	}
	if ws2.Seq() != killSeq {
		t.Errorf("resumed log sequence %d, want %d (numbering must continue)", ws2.Seq(), killSeq)
	}
	if err := resumed.Run(ctx, total-resumed.Steps()); err != nil {
		t.Fatal(err)
	}
	got := captureState(t, resumed)
	resumed.Close()
	assertSameState(t, "buffer-sink cycle", got, want)
	// The fresh log's first header carries the replayed sequence as its
	// base — the numbering visibly continued across the restart.
	first, _, _ := strings.Cut(wal2.String(), "\n")
	if !strings.Contains(first, `"seq":`) || strings.Contains(first, `"seq":0`) {
		t.Errorf("resumed log header %q should base at sequence %d", first, killSeq)
	}
}

// TestCrashRecoveryDeltaChainSegments is the crash-recovery property
// test for the incremental tier: a run that saves through a
// CheckpointChain (full base + delta records) into a rotating dir-mode
// WAL, crashes inside the delta chain — after at least one delta save
// and at least one segment rotation — and resumes from the chain plus
// the segment files must be bit-identical to a run that never stopped,
// across seeds, shard counts and kill points.
func TestCrashRecoveryDeltaChainSegments(t *testing.T) {
	ctx := context.Background()
	const n, total, chunk = 60, 3000, 512
	for _, tc := range []struct {
		seed       int64
		shards     int
		killChunks int // chunks trained before the crash
		ckptEvery  int // chain save every this many chunks
		baseEvery  int // chain rolls a fresh base after this many deltas
	}{
		{seed: 1, shards: 4, killChunks: 5, ckptEvery: 1, baseEvery: 8},
		{seed: 2, shards: 4, killChunks: 5, ckptEvery: 2, baseEvery: 1},
		// killChunks=5 with baseEvery=2 kills one save after a base
		// roll: the chain is base + d001 with pruned stale deltas.
		{seed: 3, shards: 7, killChunks: 5, ckptEvery: 1, baseEvery: 2},
		{seed: 4, shards: 1, killChunks: 3, ckptEvery: 1, baseEvery: 8},
	} {
		ds := NewMeridianDataset(n, tc.seed)
		opts := []Option{WithSeed(tc.seed), WithShards(tc.shards)}

		ref, err := NewSession(ds, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(ctx, total); err != nil {
			t.Fatal(err)
		}
		want := captureState(t, ref)
		ref.Close()

		dir := t.TempDir()
		walDir := filepath.Join(dir, "wal")
		ckptPath := filepath.Join(dir, "sess.ckpt")
		// A tiny segment limit forces rotation every few batches.
		const segBytes = 8 << 10
		src, err := NewMatrixSource(ds, 0, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := WithWALDir(src, walDir, segBytes)
		if err != nil {
			t.Fatal(err)
		}
		cc := NewCheckpointChain(ckptPath, tc.baseEvery)
		crash, err := NewSessionFromSource(ds, ws, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < tc.killChunks; c++ {
			if err := crash.Run(ctx, chunk); err != nil {
				t.Fatal(err)
			}
			if (c+1)%tc.ckptEvery == 0 {
				if err := cc.Save(crash); err != nil {
					t.Fatal(err)
				}
			}
		}
		// The kill point must sit inside a delta chain after at least
		// one rotation, or the tuple is not testing the new tier.
		if _, err := os.Stat(ckpt.DeltaPath(ckptPath, 1)); err != nil {
			t.Fatalf("seed=%d: no delta record on disk at the kill point: %v", tc.seed, err)
		}
		if ws.rot.index < 2 {
			t.Fatalf("seed=%d: only %d segment(s) ever opened; rotation never happened", tc.seed, ws.rot.index)
		}
		killedAt := crash.Steps()
		crash.Close()

		// Restart from the files alone: chain + segment directory.
		src2, err := NewMatrixSource(ds, 0, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		ws2, err := WithWALDir(src2, walDir, segBytes)
		if err != nil {
			t.Fatal(err)
		}
		cc2 := NewCheckpointChain(ckptPath, tc.baseEvery)
		resumed, err := cc2.Resume(ds, ws2, nil, opts...)
		if err != nil {
			t.Fatalf("resume (seed=%d shards=%d): %v", tc.seed, tc.shards, err)
		}
		if resumed.Steps() != killedAt {
			t.Errorf("seed=%d shards=%d: replay reached %d steps, crash stopped at %d",
				tc.seed, tc.shards, resumed.Steps(), killedAt)
		}
		// The resumed writer continues the chain: its next save extends
		// the on-disk prefix instead of rewriting the base.
		if err := resumed.Run(ctx, (total-killedAt)/2); err != nil {
			t.Fatal(err)
		}
		if err := cc2.Save(resumed); err != nil {
			t.Fatal(err)
		}
		if err := resumed.Run(ctx, total-resumed.Steps()); err != nil {
			t.Fatal(err)
		}
		got := captureState(t, resumed)
		resumed.Close()
		assertSameState(t, "chain resume", got, want)

		// Second restart: the post-resume save plus the newest segments
		// must themselves resolve.
		src3, err := NewMatrixSource(ds, 0, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		ws3, err := WithWALDir(src3, walDir, segBytes)
		if err != nil {
			t.Fatal(err)
		}
		again, err := NewCheckpointChain(ckptPath, tc.baseEvery).Resume(ds, ws3, nil, opts...)
		if err != nil {
			t.Fatalf("second resume (seed=%d): %v", tc.seed, err)
		}
		got2 := captureState(t, again)
		again.Close()
		assertSameState(t, "second chain resume", got2, want)
	}
}

// TestSegmentedColdReplayAndTornHeader: a dir-mode run killed before
// its first checkpoint resumes from the segment chain alone (cold
// replay from sequence zero), and extra torn segments at the chain's
// tail — a zero-length file from a crash between create and header
// write, then a partial header line — are dropped without poisoning
// the resume.
func TestSegmentedColdReplayAndTornHeader(t *testing.T) {
	ctx := context.Background()
	const n, total, seed = 50, 2000, 17
	ds := NewMeridianDataset(n, seed)
	opts := []Option{WithSeed(seed), WithShards(4)}

	ref, err := NewSession(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ctx, total); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, ref)
	ref.Close()

	walDir := t.TempDir()
	const segBytes = 4 << 10
	src, _ := NewMatrixSource(ds, 0, seed)
	ws, err := WithWALDir(src, walDir, segBytes)
	if err != nil {
		t.Fatal(err)
	}
	crash, err := NewSessionFromSource(ds, ws, opts...)
	if err != nil {
		t.Fatal(err)
	}
	// Rotation happens at batch boundaries, so train in several Run
	// calls (one WAL batch each) to force the active segment past the
	// limit repeatedly.
	for i := 0; i < 3; i++ {
		if err := crash.Run(ctx, 400); err != nil {
			t.Fatal(err)
		}
	}
	lastIdx := ws.rot.index
	if lastIdx < 2 {
		t.Fatalf("only %d segment(s); rotation never happened", lastIdx)
	}
	crash.Close()

	// Simulate the crash tearing the chain's tail: an empty next
	// segment and a partial header beyond it.
	empty := filepath.Join(walDir, dataset.WALSegmentName(lastIdx+1))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(walDir, dataset.WALSegmentName(lastIdx+2))
	if err := os.WriteFile(torn, []byte(`{"wal":1,`), 0o644); err != nil {
		t.Fatal(err)
	}

	src2, _ := NewMatrixSource(ds, 0, seed)
	ws2, err := WithWALDir(src2, walDir, segBytes)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeSessionFromSource(ds, ws2, nil, nil, opts...)
	if err != nil {
		t.Fatalf("cold segmented resume: %v", err)
	}
	if resumed.Steps() != 1200 {
		t.Errorf("replay reached %d steps, want 1200", resumed.Steps())
	}
	for _, p := range []string{empty, torn} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("torn segment %s survived resume alignment (err=%v)", filepath.Base(p), err)
		}
	}
	if err := resumed.Run(ctx, total-resumed.Steps()); err != nil {
		t.Fatal(err)
	}
	got := captureState(t, resumed)
	resumed.Close()
	assertSameState(t, "cold segmented resume", got, want)
}

// TestDirModeResumeRejectsReader: handing a single-file WAL reader to a
// resume whose source carries a dir-mode log is ambiguous (which log
// wins?) and fails fast.
func TestDirModeResumeRejectsReader(t *testing.T) {
	const n, seed = 30, 5
	ds := NewMeridianDataset(n, seed)
	src, _ := NewMatrixSource(ds, 0, seed)
	ws, err := WithWALDir(src, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ResumeSessionFromSource(ds, ws, nil, strings.NewReader(`{"wal":1,"seq":0}`), WithSeed(seed))
	if !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("err=%v, want ErrInvalidConfig", err)
	}
}
