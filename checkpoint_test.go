package dmfsgd

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// sessionState captures everything the bit-identity contract covers.
type sessionState struct {
	u, v  []float64
	vers  []uint64
	steps int
	auc   float64
}

func captureState(t *testing.T, s *Session) sessionState {
	t.Helper()
	snap := s.Snapshot()
	u, v := snap.Flat()
	auc, err := s.AUC(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return sessionState{u: u, v: v, vers: snap.Versions(), steps: s.Steps(), auc: auc}
}

func assertSameState(t *testing.T, label string, got, want sessionState) {
	t.Helper()
	if got.steps != want.steps {
		t.Errorf("%s: steps %d, want %d", label, got.steps, want.steps)
	}
	if len(got.vers) != len(want.vers) {
		t.Fatalf("%s: version vector %d shards, want %d", label, len(got.vers), len(want.vers))
	}
	for p := range want.vers {
		if got.vers[p] != want.vers[p] {
			t.Errorf("%s: shard %d version %d, want %d", label, p, got.vers[p], want.vers[p])
		}
	}
	for k := range want.u {
		if got.u[k] != want.u[k] || got.v[k] != want.v[k] {
			t.Fatalf("%s: coordinate %d drifted: %v/%v vs %v/%v", label, k, got.u[k], got.v[k], want.u[k], want.v[k])
		}
	}
	if got.auc != want.auc {
		t.Errorf("%s: AUC %v, want bit-identical %v", label, got.auc, want.auc)
	}
}

// TestCrashRecoverySequential is the crash-recovery property test for
// sequential training: for several (seed, shard-count, kill-point)
// tuples, a run that checkpoints periodically, "crashes" at a batch
// boundary, resumes from checkpoint + WAL tail and finishes its budget
// must be bit-identical — factors, version vector, steps, AUC — to a
// run that never stopped. The WAL sink is never truncated, so every
// resume also exercises idempotent replay at the barrier: the entries
// already folded into the checkpoint are skipped by sequence number.
func TestCrashRecoverySequential(t *testing.T) {
	ctx := context.Background()
	const n, total, chunk = 60, 3000, 512
	for _, tc := range []struct {
		seed       int64
		shards     int
		killChunks int // chunks trained before the crash
		ckptEvery  int // checkpoint every this many chunks
	}{
		{seed: 1, shards: 1, killChunks: 3, ckptEvery: 2},
		{seed: 1, shards: 4, killChunks: 3, ckptEvery: 2},
		{seed: 2, shards: 4, killChunks: 5, ckptEvery: 3},
		{seed: 3, shards: 7, killChunks: 1, ckptEvery: 1},
	} {
		ds := NewMeridianDataset(n, tc.seed)
		opts := []Option{WithSeed(tc.seed), WithShards(tc.shards)}

		// The reference: train the budget in one uninterrupted call.
		ref, err := NewSession(ds, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(ctx, total); err != nil {
			t.Fatal(err)
		}
		want := captureState(t, ref)
		ref.Close()

		// The crashing run: WAL everything, checkpoint periodically,
		// stop mid-budget ("kill" = drop the session on the floor).
		var wal bytes.Buffer
		var ckptBytes []byte
		src, err := NewMatrixSource(ds, 0, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		crash, err := NewSessionFromSource(ds, WithWAL(src, &wal), opts...)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < tc.killChunks; c++ {
			if err := crash.Run(ctx, chunk); err != nil {
				t.Fatal(err)
			}
			if (c+1)%tc.ckptEvery == 0 {
				var buf bytes.Buffer
				if err := crash.Checkpoint(&buf); err != nil {
					t.Fatal(err)
				}
				ckptBytes = buf.Bytes()
			}
		}
		if ckptBytes == nil {
			t.Fatal("test tuple never checkpointed")
		}
		killedAt := crash.Steps()
		crash.Close()

		// Restart: fresh chain of the same shape, restore, replay, finish.
		src2, err := NewMatrixSource(ds, 0, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		var wal2 bytes.Buffer
		resumed, err := ResumeSessionFromSource(ds, WithWAL(src2, &wal2),
			bytes.NewReader(ckptBytes), bytes.NewReader(wal.Bytes()))
		if err != nil {
			t.Fatalf("resume (seed=%d shards=%d): %v", tc.seed, tc.shards, err)
		}
		if resumed.Steps() != killedAt {
			t.Errorf("seed=%d shards=%d: replay reached %d steps, crash stopped at %d",
				tc.seed, tc.shards, resumed.Steps(), killedAt)
		}
		if err := resumed.Run(ctx, total-resumed.Steps()); err != nil {
			t.Fatal(err)
		}
		got := captureState(t, resumed)
		resumed.Close()
		assertSameState(t, "resumed", got, want)
	}
}

// TestCrashRecoveryTornTail cuts bytes off the end of the WAL (a crash
// mid-write tears the final line): replay must trust exactly the
// committed prefix and the resumed source must re-emit the rest, still
// bit-identical to the uninterrupted run.
func TestCrashRecoveryTornTail(t *testing.T) {
	ctx := context.Background()
	const n, total, seed = 50, 2000, 11
	ds := NewMeridianDataset(n, seed)

	ref, err := NewSession(ds, WithSeed(seed), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ctx, total); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, ref)
	ref.Close()

	var wal bytes.Buffer
	src, _ := NewMatrixSource(ds, 0, seed)
	crash, err := NewSessionFromSource(ds, WithWAL(src, &wal), WithSeed(seed), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := crash.Run(ctx, 900); err != nil {
		t.Fatal(err)
	}
	var ckptBuf bytes.Buffer
	if err := crash.Checkpoint(&ckptBuf); err != nil {
		t.Fatal(err)
	}
	if err := crash.Run(ctx, 700); err != nil {
		t.Fatal(err)
	}
	crash.Close()

	for _, cut := range []int{1, 7, 300} {
		torn := wal.Bytes()[:wal.Len()-cut]
		src2, _ := NewMatrixSource(ds, 0, seed)
		var wal2 bytes.Buffer
		resumed, err := ResumeSessionFromSource(ds, WithWAL(src2, &wal2),
			bytes.NewReader(ckptBuf.Bytes()), bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("cut %d: resume: %v", cut, err)
		}
		if err := resumed.Run(ctx, total-resumed.Steps()); err != nil {
			t.Fatal(err)
		}
		got := captureState(t, resumed)
		resumed.Close()
		assertSameState(t, "torn tail", got, want)
	}
}

// TestCrashRecoveryDecoratedChain runs the crash through a scenario
// stack (noise and drop hold private RNG streams; churn is rebuilt from
// queried stream times): the checkpoint's source cursors must restore
// every layer.
func TestCrashRecoveryDecoratedChain(t *testing.T) {
	ctx := context.Background()
	const n, total, seed = 50, 2200, 21
	ds := NewMeridianDataset(n, seed)
	mkChain := func(w io.Writer) Source {
		src, err := NewMatrixSource(ds, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		var s Source = src
		s = WithChurn(s, ChurnConfig{Start: 0.5, MeanUp: 5, MeanDown: 1, Fraction: 0.3, Seed: 7})
		s = WithNoise(s, 0.05, 13)
		s = WithDrop(s, 0.1, 17)
		return WithWAL(s, w)
	}

	ref, err := NewSessionFromSource(ds, mkChain(io.Discard), WithSeed(seed), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ctx, total); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, ref)
	ref.Close()

	var wal bytes.Buffer
	crash, err := NewSessionFromSource(ds, mkChain(&wal), WithSeed(seed), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := crash.Run(ctx, 800); err != nil {
		t.Fatal(err)
	}
	var ckptBuf bytes.Buffer
	if err := crash.Checkpoint(&ckptBuf); err != nil {
		t.Fatal(err)
	}
	if err := crash.Run(ctx, 600); err != nil {
		t.Fatal(err)
	}
	crash.Close()

	resumed, err := ResumeSessionFromSource(ds, mkChain(io.Discard),
		bytes.NewReader(ckptBuf.Bytes()), bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := resumed.Run(ctx, total-resumed.Steps()); err != nil {
		t.Fatal(err)
	}
	got := captureState(t, resumed)
	resumed.Close()
	assertSameState(t, "decorated chain", got, want)
}

// TestCrashRecoveryEpochReplay crashes epoch-mode trace training: the
// WAL's commit barriers record epoch groups (mode "b"), and replay must
// re-apply them through the sharded batch path with the same grouping.
func TestCrashRecoveryEpochReplay(t *testing.T) {
	ctx := context.Background()
	const n, seed, probes = 40, 31, 4
	const epochs = 8
	ds := NewHarvardDataset(n, 60000, seed)

	for _, shards := range []int{1, 5} {
		opts := []Option{WithSeed(seed), WithShards(shards)}
		ref, err := NewSession(ds, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.RunEpochs(ctx, epochs, probes); err != nil {
			t.Fatal(err)
		}
		want := captureState(t, ref)
		ref.Close()

		var wal bytes.Buffer
		ts, err := NewTraceSource(ds)
		if err != nil {
			t.Fatal(err)
		}
		crash, err := NewSessionFromSource(ds, WithWAL(ts, &wal), opts...)
		if err != nil {
			t.Fatal(err)
		}
		var ckptBytes []byte
		const killEpoch = 5
		for ep := 0; ep < killEpoch; ep++ {
			if _, err := crash.RunEpochs(ctx, 1, probes); err != nil {
				t.Fatal(err)
			}
			if ep == 2 {
				var buf bytes.Buffer
				if err := crash.Checkpoint(&buf); err != nil {
					t.Fatal(err)
				}
				ckptBytes = buf.Bytes()
			}
		}
		crash.Close()

		ts2, err := NewTraceSource(ds)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := ResumeSessionFromSource(ds, WithWAL(ts2, io.Discard),
			bytes.NewReader(ckptBytes), bytes.NewReader(wal.Bytes()))
		if err != nil {
			t.Fatalf("shards=%d: resume: %v", shards, err)
		}
		if _, err := resumed.RunEpochs(ctx, epochs-killEpoch, probes); err != nil {
			t.Fatal(err)
		}
		got := captureState(t, resumed)
		resumed.Close()
		assertSameState(t, "epoch replay", got, want)
	}
}

// TestCrashRecoveryNativeEpochs resumes parallel epoch training on a
// static dataset: no measurements flow (the engine samples internally),
// so the checkpoint alone — factors plus per-node RNG stream positions —
// must make the continuation bit-identical.
func TestCrashRecoveryNativeEpochs(t *testing.T) {
	ctx := context.Background()
	const n, seed, probes, epochs = 50, 41, 5, 10
	ds := NewMeridianDataset(n, seed)
	for _, shards := range []int{1, 4} {
		opts := []Option{WithSeed(seed), WithShards(shards)}
		ref, err := NewSession(ds, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.RunEpochs(ctx, epochs, probes); err != nil {
			t.Fatal(err)
		}
		want := captureState(t, ref)
		ref.Close()

		half, err := NewSession(ds, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := half.RunEpochs(ctx, 6, probes); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := half.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		half.Close()

		resumed, err := ResumeSession(ds, bytes.NewReader(buf.Bytes()), nil)
		if err != nil {
			t.Fatalf("shards=%d: resume: %v", shards, err)
		}
		if _, err := resumed.RunEpochs(ctx, epochs-6, probes); err != nil {
			t.Fatal(err)
		}
		got := captureState(t, resumed)
		resumed.Close()
		assertSameState(t, "native epochs", got, want)
	}
}

// TestSaveCheckpointFileAndWALTruncation exercises the file-based
// durability cycle dmfserve uses: a WAL on a real file, SaveCheckpoint
// truncating it at the barrier, a crash, and a resume that replays the
// tail from the same file handle and appends in place.
func TestSaveCheckpointFileAndWALTruncation(t *testing.T) {
	ctx := context.Background()
	const n, total, seed = 50, 2400, 51
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "sess.ckpt")
	walPath := filepath.Join(dir, "sess.wal")
	ds := NewMeridianDataset(n, seed)

	ref, err := NewSession(ds, WithSeed(seed), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ctx, total); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, ref)
	ref.Close()

	walF, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := NewMatrixSource(ds, 0, seed)
	crash, err := NewSessionFromSource(ds, WithWAL(src, walF), WithSeed(seed), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := crash.Run(ctx, 800); err != nil {
		t.Fatal(err)
	}
	preTrunc, _ := walF.Seek(0, io.SeekEnd)
	if err := SaveCheckpoint(crash, ckptPath); err != nil {
		t.Fatal(err)
	}
	postTrunc, _ := walF.Seek(0, io.SeekEnd)
	if postTrunc != 0 || preTrunc == 0 {
		t.Fatalf("checkpoint barrier should truncate the WAL: %d -> %d bytes", preTrunc, postTrunc)
	}
	if err := crash.Run(ctx, 900); err != nil {
		t.Fatal(err)
	}
	crash.Close() // "crash": the post-checkpoint tail lives only in the WAL
	walF.Close()

	// Restart from the files alone.
	walF2, err := os.OpenFile(walPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer walF2.Close()
	ckptF, err := os.Open(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ckptF.Close()
	src2, _ := NewMatrixSource(ds, 0, seed)
	resumed, err := ResumeSessionFromSource(ds, WithWAL(src2, walF2), ckptF, walF2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed.Steps() != 800+900 {
		t.Errorf("resumed at %d steps, want %d", resumed.Steps(), 800+900)
	}
	if err := resumed.Run(ctx, total-resumed.Steps()); err != nil {
		t.Fatal(err)
	}
	got := captureState(t, resumed)
	resumed.Close()
	assertSameState(t, "file cycle", got, want)

	// The appended segment must itself replay: one more restart.
	walF3, err := os.OpenFile(walPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer walF3.Close()
	ckptF2, err := os.Open(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ckptF2.Close()
	src3, _ := NewMatrixSource(ds, 0, seed)
	again, err := ResumeSessionFromSource(ds, WithWAL(src3, walF3), ckptF2, walF3)
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	got2 := captureState(t, again)
	again.Close()
	assertSameState(t, "second resume", got2, want)
}

// TestResumeRejectsMismatches: contradicting options, a wrong dataset
// and a wrong chain shape all fail with ErrCheckpoint, not silently
// divergent training.
func TestResumeRejectsMismatches(t *testing.T) {
	ctx := context.Background()
	const n, seed = 40, 61
	ds := NewMeridianDataset(n, seed)
	sess, err := NewSession(ds, WithSeed(seed), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(ctx, 500); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	if _, err := ResumeSession(ds, bytes.NewReader(buf.Bytes()), nil, WithSeed(seed+1)); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("conflicting seed: %v, want ErrCheckpoint", err)
	}
	if _, err := ResumeSession(ds, bytes.NewReader(buf.Bytes()), nil, WithShards(5)); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("conflicting shards: %v, want ErrCheckpoint", err)
	}
	if _, err := ResumeSession(ds, bytes.NewReader(buf.Bytes()), nil, WithRank(4)); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("conflicting rank: %v, want ErrCheckpoint", err)
	}
	other := NewMeridianDataset(n+5, seed)
	if _, err := ResumeSession(other, bytes.NewReader(buf.Bytes()), nil); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("wrong dataset: %v, want ErrCheckpoint", err)
	}
	if _, err := ResumeSession(ds, bytes.NewReader([]byte("garbage")), nil); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("garbage checkpoint: %v, want ErrCheckpoint", err)
	}
	// Matching options are fine.
	ok, err := ResumeSession(ds, bytes.NewReader(buf.Bytes()), nil, WithSeed(seed), WithShards(2))
	if err != nil {
		t.Errorf("matching options rejected: %v", err)
	} else {
		ok.Close()
	}
	// A chain with a different cursor shape is rejected.
	src, _ := NewMatrixSource(ds, 0, seed)
	if _, err := ResumeSessionFromSource(ds, WithDrop(src, 0.1, 1), bytes.NewReader(buf.Bytes()), nil); !errors.Is(err, ErrCheckpoint) {
		t.Errorf("mismatched chain shape: %v, want ErrCheckpoint", err)
	}
}

// TestLiveCheckpointWarmResume: a live session's checkpoint records no
// stream positions (Draws == 0); ResumeSession must restore it as a
// warm start — factors and steps carried over — rather than failing on
// the missing positions.
func TestLiveCheckpointWarmResume(t *testing.T) {
	ds := NewMeridianDataset(30, 71)
	live, err := NewSession(ds, WithSeed(71), WithK(8), WithLive())
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Run(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := live.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	wantU, wantV := live.Snapshot().Flat()
	wantSteps := live.Snapshot().Steps()
	live.Close()

	resumed, err := ResumeSession(ds, bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatalf("warm resume: %v", err)
	}
	defer resumed.Close()
	if resumed.Steps() < wantSteps {
		t.Errorf("resumed steps %d, want >= %d", resumed.Steps(), wantSteps)
	}
	gotU, gotV := resumed.Snapshot().Flat()
	for k := range wantU {
		if gotU[k] != wantU[k] || gotV[k] != wantV[k] {
			t.Fatalf("warm factors drifted at %d", k)
		}
	}
	// And a warm session keeps training.
	if err := resumed.Run(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
}

// cancelAfterSource delivers a given number of batches normally and
// then returns one final batch together with context.Canceled — a
// deterministic interruption landing mid-epoch, with measurements
// already logged to the WAL but never trained.
type cancelAfterSource struct {
	src     Source
	batches int
}

func (c *cancelAfterSource) Unwrap() Source { return c.src }

func (c *cancelAfterSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	n, err := c.src.NextBatch(ctx, buf)
	if c.batches--; c.batches == 0 && err == nil {
		err = context.Canceled
	}
	return n, err
}

// TestCrashRecoveryAfterCancelledEpoch: a cancelled epoch collection
// logs measurements it never trains on. The session must mark them
// skipped in the WAL so that a later crash still resumes to the exact
// state the interrupted-and-continued run reached.
func TestCrashRecoveryAfterCancelledEpoch(t *testing.T) {
	ctx := context.Background()
	const n, seed, probes = 40, 81, 4
	ds := NewHarvardDataset(n, 60000, seed)

	var wal bytes.Buffer
	ts, err := NewTraceSource(ds)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &cancelAfterSource{src: ts, batches: -1}
	run, err := NewSessionFromSource(ds, WithWAL(wrapped, &wal), WithSeed(seed), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.RunEpochs(ctx, 2, probes); err != nil {
		t.Fatal(err)
	}
	var ckptBuf bytes.Buffer
	if err := run.Checkpoint(&ckptBuf); err != nil {
		t.Fatal(err)
	}
	// The interrupted epoch: two batches into the next collection (not
	// enough usable measurements to complete an epoch group) the source
	// aborts, so the gathered measurements are discarded — and must be
	// marked skipped in the WAL.
	wrapped.batches = 2
	if _, err := run.RunEpochs(ctx, 3, probes); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected cancellation, got %v", err)
	}
	if !bytes.Contains(wal.Bytes(), []byte(`"mode":"x"`)) {
		t.Fatal("interrupted collection wrote no skip barrier")
	}
	// The run continues past the interruption and then "crashes".
	if _, err := run.RunEpochs(ctx, 2, probes); err != nil {
		t.Fatal(err)
	}
	wantSteps := run.Steps()
	wantU, wantV := run.Snapshot().Flat()
	run.Close()

	ts2, err := NewTraceSource(ds)
	if err != nil {
		t.Fatal(err)
	}
	inert := &cancelAfterSource{src: ts2, batches: -1}
	resumed, err := ResumeSessionFromSource(ds, WithWAL(inert, io.Discard),
		bytes.NewReader(ckptBuf.Bytes()), bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatalf("resume across a skip barrier: %v", err)
	}
	defer resumed.Close()
	if resumed.Steps() != wantSteps {
		t.Errorf("replay reached %d steps, crashed run had %d", resumed.Steps(), wantSteps)
	}
	gotU, gotV := resumed.Snapshot().Flat()
	for k := range wantU {
		if gotU[k] != wantU[k] || gotV[k] != wantV[k] {
			t.Fatalf("factors drifted at %d after skip-barrier replay", k)
		}
	}
}

// hostileSource injects unrepresentable records (self-pairs, NaNs,
// negative ids) between the inner source's measurements.
type hostileSource struct {
	src Source
}

func (h *hostileSource) Unwrap() Source { return h.src }

func (h *hostileSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	if len(buf) > 3 {
		n, err := h.src.NextBatch(ctx, buf[:len(buf)-3])
		buf[n] = Measurement{T: 1, I: 2, J: 2, Value: 5}            // self-pair
		buf[n+1] = Measurement{T: math.NaN(), I: 0, J: 1, Value: 5} // NaN time
		buf[n+2] = Measurement{T: 1, I: -4, J: 1, Value: 5}         // negative id
		return n + 3, err
	}
	return h.src.NextBatch(ctx, buf)
}

// TestWALSurvivesHostileRecords: records the WAL line format cannot
// represent are never applied (the session filters them) — they must
// also never be logged, or one bad record from a custom source would
// make every later committed entry unparseable on resume.
func TestWALSurvivesHostileRecords(t *testing.T) {
	ctx := context.Background()
	const n, seed = 40, 91
	ds := NewMeridianDataset(n, seed)
	mkChain := func(w io.Writer) Source {
		src, err := NewMatrixSource(ds, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		return WithWAL(&hostileSource{src: src}, w)
	}

	var wal bytes.Buffer
	run, err := NewSessionFromSource(ds, mkChain(&wal), WithSeed(seed), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Run(ctx, 600); err != nil {
		t.Fatal(err)
	}
	var ckptBuf bytes.Buffer
	if err := run.Checkpoint(&ckptBuf); err != nil {
		t.Fatal(err)
	}
	if err := run.Run(ctx, 400); err != nil {
		t.Fatal(err)
	}
	wantSteps := run.Steps()
	wantU, wantV := run.Snapshot().Flat()
	run.Close()

	resumed, err := ResumeSessionFromSource(ds, mkChain(io.Discard),
		bytes.NewReader(ckptBuf.Bytes()), bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatalf("resume after hostile records: %v", err)
	}
	defer resumed.Close()
	if resumed.Steps() != wantSteps {
		t.Errorf("replay reached %d steps, run had %d", resumed.Steps(), wantSteps)
	}
	gotU, gotV := resumed.Snapshot().Flat()
	for k := range wantU {
		if gotU[k] != wantU[k] || gotV[k] != wantV[k] {
			t.Fatalf("factors drifted at %d", k)
		}
	}
}

// TestCanonicalResumeOfWALTrainedState: the WAL decorator is not a
// cursor layer, so a checkpoint + WAL written by a WithWAL chain must
// resume through plain ResumeSession (canonical source, no WAL) — and
// the continuation must stay bit-identical to an uninterrupted run.
func TestCanonicalResumeOfWALTrainedState(t *testing.T) {
	ctx := context.Background()
	const n, total, seed = 50, 2000, 111
	ds := NewMeridianDataset(n, seed)

	ref, err := NewSession(ds, WithSeed(seed), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ctx, total); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, ref)
	ref.Close()

	var wal bytes.Buffer
	src, _ := NewMatrixSource(ds, 0, seed)
	crash, err := NewSessionFromSource(ds, WithWAL(src, &wal), WithSeed(seed), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := crash.Run(ctx, 700); err != nil {
		t.Fatal(err)
	}
	var ckptBuf bytes.Buffer
	if err := crash.Checkpoint(&ckptBuf); err != nil {
		t.Fatal(err)
	}
	if err := crash.Run(ctx, 500); err != nil {
		t.Fatal(err)
	}
	crash.Close()

	resumed, err := ResumeSession(ds, bytes.NewReader(ckptBuf.Bytes()), bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatalf("canonical resume of WAL-trained checkpoint: %v", err)
	}
	if resumed.Steps() != 1200 {
		t.Errorf("replay reached %d steps, want 1200", resumed.Steps())
	}
	if err := resumed.Run(ctx, total-resumed.Steps()); err != nil {
		t.Fatal(err)
	}
	got := captureState(t, resumed)
	resumed.Close()
	assertSameState(t, "canonical resume", got, want)
}

// TestColdWALReplay: a process killed before its first checkpoint
// leaves only the WAL; resuming with a nil checkpoint must rebuild the
// state from sequence zero, bit-identically.
func TestColdWALReplay(t *testing.T) {
	ctx := context.Background()
	const n, seed = 50, 101
	ds := NewMeridianDataset(n, seed)

	var wal bytes.Buffer
	src, _ := NewMatrixSource(ds, 0, seed)
	run, err := NewSessionFromSource(ds, WithWAL(src, &wal), WithSeed(seed), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Run(ctx, 1500); err != nil {
		t.Fatal(err)
	}
	wantSteps := run.Steps()
	wantU, wantV := run.Snapshot().Flat()
	run.Close() // killed before any checkpoint existed

	src2, _ := NewMatrixSource(ds, 0, seed)
	resumed, err := ResumeSessionFromSource(ds, WithWAL(src2, io.Discard),
		nil, bytes.NewReader(wal.Bytes()), WithSeed(seed), WithShards(3))
	if err != nil {
		t.Fatalf("cold replay: %v", err)
	}
	defer resumed.Close()
	if resumed.Steps() != wantSteps {
		t.Errorf("cold replay reached %d steps, run had %d", resumed.Steps(), wantSteps)
	}
	gotU, gotV := resumed.Snapshot().Flat()
	for k := range wantU {
		if gotU[k] != wantU[k] || gotV[k] != wantV[k] {
			t.Fatalf("factors drifted at %d", k)
		}
	}

	// A log from a different configuration must be refused, not
	// silently diverged from.
	src3, _ := NewMatrixSource(ds, 0, seed)
	if _, err := ResumeSessionFromSource(ds, WithWAL(src3, io.Discard),
		nil, bytes.NewReader(wal.Bytes()), WithSeed(seed+1), WithShards(3)); !errors.Is(err, ErrWAL) {
		t.Errorf("cold replay with wrong seed: %v, want ErrWAL", err)
	}
	// Nothing to resume from at all is a config error.
	if _, err := ResumeSession(ds, nil, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("nil checkpoint and WAL: %v, want ErrInvalidConfig", err)
	}
}

// TestNativeEpochsRejectWAL: native epoch training samples internally —
// nothing reaches the log — so a WAL-attached session must refuse it
// rather than let the step counter outrun what the WAL can replay.
func TestNativeEpochsRejectWAL(t *testing.T) {
	ds := NewMeridianDataset(30, 1)
	src, _ := NewMatrixSource(ds, 8, 1)
	sess, err := NewSessionFromSource(ds, WithWAL(src, io.Discard), WithSeed(1), WithK(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.RunEpochs(context.Background(), 2, 4); !errors.Is(err, ErrWAL) {
		t.Errorf("native epochs on a WAL session: %v, want ErrWAL", err)
	}
	// Run still works and logs.
	if err := sess.Run(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
}

// TestWALMustBeOutermost: a buried WAL decorator records a stream the
// session does not consume; the session refuses it.
func TestWALMustBeOutermost(t *testing.T) {
	ds := NewMeridianDataset(30, 1)
	src, _ := NewMatrixSource(ds, 0, 1)
	buried := WithDrop(WithWAL(src, io.Discard), 0.1, 2)
	if _, err := NewSessionFromSource(ds, buried); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("buried WAL accepted: %v", err)
	}
}
