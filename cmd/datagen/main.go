// Command datagen generates the synthetic evaluation datasets and writes
// them to disk in the plain-text formats used by the public originals:
// whitespace-separated matrices and CSV traces (time,src,dst,value).
//
// Usage:
//
//	datagen -dataset meridian -n 500 -out meridian.txt
//	datagen -dataset harvard -out harvard.txt -trace harvard_trace.csv
//	datagen -dataset hp-s3 -out abw.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfsgd/internal/dataset"
)

func main() {
	var (
		name  = flag.String("dataset", "meridian", "dataset to generate: harvard | meridian | hp-s3")
		n     = flag.Int("n", 0, "node count (0 = paper size)")
		meas  = flag.Int("measurements", 0, "trace length for harvard (0 = default)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file for the ground-truth matrix (default stdout)")
		trace = flag.String("trace", "", "output file for the dynamic trace (harvard only)")
	)
	flag.Parse()

	var ds *dataset.Dataset
	switch *name {
	case "meridian":
		ds = dataset.Meridian(dataset.MeridianConfig{N: *n, Seed: *seed})
	case "harvard":
		ds = dataset.Harvard(dataset.HarvardConfig{N: *n, Measurements: *meas, Seed: *seed})
	case "hp-s3", "hps3":
		ds = dataset.HPS3(dataset.HPS3Config{N: *n, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteMatrix(w, ds.Matrix); err != nil {
		fatal(err)
	}

	if *trace != "" {
		if ds.Trace == nil {
			fmt.Fprintln(os.Stderr, "datagen: dataset has no dynamic trace")
			os.Exit(2)
		}
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := dataset.WriteTrace(f, ds.Trace); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "datagen: %s n=%d median=%.1f %s missing=%.1f%%\n",
		ds.Name, ds.N(), ds.Median(), ds.Metric.Unit(), ds.Matrix.MissingFraction()*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
