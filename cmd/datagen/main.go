// Command datagen generates the synthetic evaluation datasets and writes
// them to disk in the plain-text formats used by the public originals:
// whitespace-separated matrices and CSV traces (time,src,dst,value).
//
// With -stream it additionally emits an NDJSON measurement stream
// (one {"t":…,"i":…,"j":…,"v":…} object per line) consumable by the
// ingestion layer's stream loader (dmfsgd.NewStreamSource): the
// dataset's trace replayed in time order, or — for static datasets —
// the classic random probe schedule, optionally composed with scenario
// decorators (noise, loss, churn, drift) so a scenario can be baked
// into a replayable file. -stream-live captures the stream from a live
// concurrent swarm instead, turning a live run into a deterministic
// replay.
//
// Usage:
//
//	datagen -dataset meridian -n 500 -out meridian.txt
//	datagen -dataset harvard -out harvard.txt -trace harvard_trace.csv
//	datagen -dataset hp-s3 -out abw.txt
//	datagen -dataset meridian -n 200 -out m.txt -stream m.ndjson -noise 0.2 -churn 0.3
//	datagen -dataset meridian -n 120 -out m.txt -stream live.ndjson -stream-live
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dmfsgd"
	"dmfsgd/internal/dataset"
)

func main() {
	var (
		name  = flag.String("dataset", "meridian", "dataset to generate: harvard | meridian | hp-s3")
		n     = flag.Int("n", 0, "node count (0 = paper size)")
		meas  = flag.Int("measurements", 0, "trace length for harvard (0 = default)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file for the ground-truth matrix (default stdout)")
		trace = flag.String("trace", "", "output file for the dynamic trace (harvard only)")

		stream      = flag.String("stream", "", "output file for an NDJSON measurement stream")
		streamCount = flag.Int("stream-count", 0, "stream length in measurements (0 = trace length, or 20·k·n)")
		streamLive  = flag.Bool("stream-live", false, "capture the stream from a live swarm (RTT datasets only)")
		noise       = flag.Float64("noise", 0, "lognormal measurement-noise sigma on the stream")
		drop        = flag.Float64("drop", 0, "measurement loss rate on the stream [0,1)")
		churnFrac   = flag.Float64("churn", 0, "fraction of nodes churning in the stream (0 = no churn)")
		driftRate   = flag.Float64("drift", 0, "multiplicative drift per stream-time unit over the stream's second half")
	)
	flag.Parse()

	var ds *dataset.Dataset
	switch *name {
	case "meridian":
		ds = dataset.Meridian(dataset.MeridianConfig{N: *n, Seed: *seed})
	case "harvard":
		ds = dataset.Harvard(dataset.HarvardConfig{N: *n, Measurements: *meas, Seed: *seed})
	case "hp-s3", "hps3":
		ds = dataset.HPS3(dataset.HPS3Config{N: *n, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteMatrix(w, ds.Matrix); err != nil {
		fatal(err)
	}

	if *trace != "" {
		if ds.Trace == nil {
			fmt.Fprintln(os.Stderr, "datagen: dataset has no dynamic trace")
			os.Exit(2)
		}
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := dataset.WriteTrace(f, ds.Trace); err != nil {
			fatal(err)
		}
	}

	if *stream != "" {
		count := *streamCount
		if count == 0 {
			if ds.Trace != nil {
				count = len(ds.Trace)
			} else {
				count = 20 * ds.DefaultK * ds.N()
			}
		}
		f, err := os.Create(*stream)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		written, err := writeStream(f, ds, streamSpec{
			count: count, live: *streamLive, seed: *seed,
			noise: *noise, drop: *drop, churn: *churnFrac, drift: *driftRate,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "datagen: stream %s: %d measurements\n", *stream, written)
	}

	fmt.Fprintf(os.Stderr, "datagen: %s n=%d median=%.1f %s missing=%.1f%%\n",
		ds.Name, ds.N(), ds.Median(), ds.Metric.Unit(), ds.Matrix.MissingFraction()*100)
}

// streamSpec carries the -stream knobs.
type streamSpec struct {
	count int
	live  bool
	seed  int64
	noise float64
	drop  float64
	churn float64
	drift float64
}

// writeStream builds the measurement source for the dataset, composes
// the requested scenario decorators onto it, drains count measurements
// and writes them as NDJSON.
func writeStream(w io.Writer, ds *dataset.Dataset, spec streamSpec) (int, error) {
	src, duration, cleanup, err := baseSource(ds, spec)
	if err != nil {
		return 0, err
	}
	defer cleanup()

	if spec.churn > 0 {
		src = dmfsgd.WithChurn(src, dmfsgd.ChurnConfig{
			Start:    duration / 4,
			MeanUp:   duration / 8,
			MeanDown: duration / 8,
			Fraction: spec.churn,
			Seed:     spec.seed + 201,
		})
	}
	if spec.drift != 0 {
		src = dmfsgd.WithDrift(src, dmfsgd.DriftConfig{
			Rate:  spec.drift,
			Start: duration / 2,
			Seed:  spec.seed + 202,
		})
	}
	src = dmfsgd.WithNoise(src, spec.noise, spec.seed+203)
	src = dmfsgd.WithDrop(src, spec.drop, spec.seed+204)

	bw := bufio.NewWriter(w)
	buf := make([]dmfsgd.Measurement, 4096)
	written := 0
	ctx := context.Background()
	for written < spec.count {
		want := len(buf)
		if r := spec.count - written; r < want {
			want = r
		}
		n, err := src.NextBatch(ctx, buf[:want])
		if werr := dmfsgd.WriteMeasurements(bw, buf[:n]); werr != nil {
			return written, werr
		}
		written += n
		if err == io.EOF {
			break
		}
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// baseSource picks the dataset's stream: live capture, trace replay, or
// matrix sampling. It returns the stream's natural duration in the
// source's time unit (seconds for traces and live captures, probing
// rounds for matrix sampling) so the scenario windows can be placed,
// and a cleanup closing whatever the source runs on.
func baseSource(ds *dataset.Dataset, spec streamSpec) (src dmfsgd.Source, duration float64, cleanup func(), err error) {
	cleanup = func() {}
	if spec.live {
		sess, err := dmfsgd.NewSession(ds, dmfsgd.WithLive(), dmfsgd.WithSeed(spec.seed),
			dmfsgd.WithProbeInterval(200*time.Microsecond))
		if err != nil {
			return nil, 0, cleanup, err
		}
		cap, err := dmfsgd.NewSwarmSource(sess, 0)
		if err != nil {
			sess.Close()
			return nil, 0, cleanup, err
		}
		// Probe-rate estimate: n probes per interval across the swarm.
		duration = float64(spec.count) / float64(ds.N()) * 200e-6
		return cap, duration, func() { cap.Close(); sess.Close() }, nil
	}
	if ds.Trace != nil {
		ts, err := dmfsgd.NewTraceSource(ds)
		if err != nil {
			return nil, 0, cleanup, err
		}
		return ts, ds.Trace[len(ds.Trace)-1].T, cleanup, nil
	}
	ms, err := dmfsgd.NewMatrixSource(ds, 0, spec.seed)
	if err != nil {
		return nil, 0, cleanup, err
	}
	return ms, float64(spec.count) / float64(ds.N()), cleanup, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
