// Command dmfload is the macro load generator for the serving tier: it
// expands a seeded, deterministic workload spec (closed- or open-loop
// arrivals, predict/predict-batch/rank mix, Zipf-skewed node
// popularity, multi-period phases) and drives it against a dmfserve
// cluster over HTTP or against an in-process Snapshot, recording
// per-phase latency percentiles, throughput, allocation rates and
// errors into a schema-versioned BENCH_serve.json.
//
// With -train it instead runs the engine-epoch benchmark sweep (the
// sharded parallel trainer at Meridian scale) via testing.Benchmark and
// writes BENCH_train.json, streaming benchstat-compatible lines to
// stdout. Committed BENCH files form the repo's perf trajectory: every
// PR that touches a hot path regenerates them, so the diff carries the
// before/after numbers.
//
// Determinism: the same -spec and seed expand to the identical request
// sequence, so two runs against the same snapshot issue identical
// requests and report identical per-phase request and kind counts —
// only latencies vary with the host.
//
// Examples:
//
//	dmfload -inproc -out BENCH_serve.json
//	dmfload -target http://localhost:8080 -scale 0.1
//	dmfload -train -train-out BENCH_train.json
//	dmfload -print-spec > workload.json && dmfload -inproc -spec workload.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dmfsgd"
	"dmfsgd/internal/load"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "workload spec JSON (empty = built-in diurnal default)")
		printSpec = flag.Bool("print-spec", false, "print the effective workload spec as JSON and exit")
		target    = flag.String("target", "", "drive a dmfserve base URL, e.g. http://localhost:8080")
		inproc    = flag.Bool("inproc", false, "drive an in-process snapshot (trains one first)")
		scale     = flag.Float64("scale", 1, "multiply every phase's request count (CI smoke runs use e.g. 0.05)")
		out       = flag.String("out", "BENCH_serve.json", "serve report path")
		inflight  = flag.Int("inflight", 0, "open-loop in-flight cap (0 = phase client count)")

		dsName = flag.String("dataset", "meridian", "in-process dataset: meridian, harvard or hps3")
		n      = flag.Int("n", 500, "in-process node count")
		seed   = flag.Int64("seed", 1, "in-process dataset/training seed")
		rank   = flag.Int("rank", 10, "in-process coordinate dimensionality")
		k      = flag.Int("k", 0, "in-process neighbors per node (0 = dataset default)")
		shards = flag.Int("shards", 0, "in-process store shards (0 = default)")
		budget = flag.Int("budget", 0, "in-process training budget (0 = paper default)")

		train     = flag.Bool("train", false, "run the engine-epoch benchmark sweep instead of a serve run")
		trainOut  = flag.String("train-out", "BENCH_train.json", "train report path")
		trainFull = flag.Bool("train-full", false, "include the Meridian-2500 cases (slower)")
	)
	flag.Parse()

	spec := load.Default()
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatalf("dmfload: %v", err)
		}
		spec, err = load.ReadSpec(f)
		f.Close()
		if err != nil {
			log.Fatalf("dmfload: %v", err)
		}
	}
	spec = spec.Scaled(*scale)
	if err := spec.Validate(); err != nil {
		log.Fatalf("dmfload: %v", err)
	}

	if *printSpec {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec); err != nil {
			log.Fatalf("dmfload: %v", err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *train {
		runTrain(*trainOut, *trainFull)
		return
	}

	rep := &load.Report{
		Schema: load.SchemaBench,
		Kind:   "serve",
		Env:    load.CaptureEnv(),
		Spec:   spec,
	}
	var tgt load.Target
	switch {
	case *target != "":
		base := strings.TrimSuffix(*target, "/")
		maxClients := 0
		for _, ph := range spec.Phases {
			if ph.Clients > maxClients {
				maxClients = ph.Clients
			}
		}
		if *inflight > maxClients {
			maxClients = *inflight
		}
		ht := load.NewHTTPTarget(base, maxClients)
		nodes, err := load.FetchNodes(ht)
		if err != nil {
			log.Fatalf("dmfload: %s: %v", base, err)
		}
		rep.Target, rep.Nodes = base, nodes
		tgt = ht
		log.Printf("target %s: %d nodes", base, nodes)
	case *inproc:
		snap := trainSnapshot(ctx, *dsName, *n, *seed, *rank, *k, *shards, *budget)
		rep.Target, rep.Nodes = "inproc", snap.N()
		rep.SnapshotSteps = uint64(snap.Steps())
		tgt = &load.SnapshotTarget{Snap: snap}
	default:
		log.Fatalf("dmfload: pick a target: -target URL or -inproc")
	}

	w, err := load.Expand(spec, rep.Nodes)
	if err != nil {
		log.Fatalf("dmfload: %v", err)
	}
	total := 0
	for _, ph := range w.Phases {
		total += len(ph.Requests)
	}
	log.Printf("workload %q: %d phases, %d requests", spec.Name, len(w.Phases), total)

	cfg := load.RunConfig{MaxInflight: *inflight, Logf: log.Printf}
	if ht, ok := tgt.(*load.HTTPTarget); ok {
		// Bracket every phase with a server-side /metrics scrape so the
		// report carries what the run cost the target, not just how it
		// felt from the client.
		cfg.Scrape = ht.ScrapeMetrics
	}
	res, err := load.Run(ctx, w, tgt, cfg)
	if err != nil {
		log.Fatalf("dmfload: %v", err)
	}
	rep.Phases = res.Phases
	failed := false
	for _, pr := range res.Phases {
		log.Printf("phase %-14s %7d req %8.0f rps  p50 %.3fms  p90 %.3fms  p99 %.3fms  %6.1f allocs/op  %d errors",
			pr.Name, pr.Requests, pr.ThroughputRPS, pr.P50MS, pr.P90MS, pr.P99MS, pr.AllocsPerOp, pr.Errors)
		if served := serverRequests(pr.ServerDelta); served > 0 {
			log.Printf("  server saw %.0f hot-path requests, %d cumulative series moved", served, len(pr.ServerDelta))
		}
		failed = failed || pr.Errors > 0
	}
	if err := rep.WriteFile(*out); err != nil {
		log.Fatalf("dmfload: %v", err)
	}
	log.Printf("report: %s", *out)
	if failed {
		os.Exit(1)
	}
}

// serverRequests sums the per-endpoint request-counter deltas from a
// phase's server-side scrape.
func serverRequests(delta map[string]float64) float64 {
	var total float64
	for id, v := range delta {
		if strings.HasPrefix(id, "dmf_http_requests_total{") {
			total += v
		}
	}
	return total
}

// trainSnapshot builds the in-process serving snapshot the same way
// dmfserve does: synthetic dataset, Session training to the budget,
// freeze.
func trainSnapshot(ctx context.Context, dsName string, n int, seed int64, rank, k, shards, budget int) *dmfsgd.Snapshot {
	var ds *dmfsgd.Dataset
	switch dsName {
	case "meridian":
		ds = dmfsgd.NewMeridianDataset(n, seed)
	case "harvard":
		ds = dmfsgd.NewHarvardDataset(n, 0, seed)
	case "hps3":
		ds = dmfsgd.NewHPS3Dataset(n, seed)
	default:
		log.Fatalf("dmfload: unknown dataset %q (want meridian, harvard or hps3)", dsName)
	}
	opts := []dmfsgd.Option{dmfsgd.WithSeed(seed), dmfsgd.WithRank(rank)}
	if k > 0 {
		opts = append(opts, dmfsgd.WithK(k))
	}
	if shards > 0 {
		opts = append(opts, dmfsgd.WithShards(shards))
	}
	sess, err := dmfsgd.NewSession(ds, opts...)
	if err != nil {
		log.Fatalf("dmfload: %v", err)
	}
	defer sess.Close()
	if budget <= 0 {
		budget = sess.DefaultBudget()
	}
	log.Printf("training in-process snapshot: %s, %d nodes, budget %d", ds.Name, sess.N(), budget)
	if err := sess.Run(ctx, budget); err != nil {
		log.Fatalf("dmfload: training: %v", err)
	}
	return sess.Snapshot()
}

// runTrain runs the engine-epoch sweep and writes BENCH_train.json.
func runTrain(path string, full bool) {
	cases := load.DefaultTrainCases(full)
	log.Printf("engine-epoch sweep: %d cases (benchstat lines on stdout)", len(cases))
	results, err := load.TrainBench(cases, 32, os.Stdout)
	if err != nil {
		log.Fatalf("dmfload: %v", err)
	}
	rep := &load.Report{
		Schema: load.SchemaBench,
		Kind:   "train",
		Env:    load.CaptureEnv(),
		Train:  results,
	}
	if err := rep.WriteFile(path); err != nil {
		log.Fatalf("dmfload: %v", err)
	}
	log.Printf("report: %s", path)
	for _, tr := range results {
		fmt.Fprintf(os.Stderr, "  %-34s %12.0f updates/s %6d allocs/op\n", tr.Name, tr.UpdatesPerSec, tr.AllocsPerOp)
	}
}
