// Zero-allocation request handlers for the dmfserve hot paths.
//
// The serving endpoints (/predict GET+POST, /rank) used to build a
// map[string]any per request and stream it through json.NewEncoder —
// dozens of allocations per request, which under load means GC pressure
// scaling with throughput. Here every hot handler draws a pooled scratch
// (response buffer, decoded pair/candidate slices, score buffers) and
// hand-appends the JSON response, so a steady-state request performs no
// heap allocations in this package. Response bytes stay identical to the
// old encoder output (encoding/json sorts map keys, so the POST body is
// {"classes":...,"scores":...}; floats use the encoding/json float
// format; a trailing newline matches json.Encoder.Encode).
//
// Cold paths (/healthz, /stats, errors) keep the simple writeJSON.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"dmfsgd"
)

var errNeedCandidates = errors.New("need candidates=j1,j2,...")

// reqScratch is the pooled per-request scratch: one instance cycles
// through the pool per request, so steady-state serving reuses the same
// buffers instead of allocating.
type reqScratch struct {
	out    []byte            // response body under construction
	body   []byte            // POST request body
	raw    [][2]int          // decoded batch pairs
	pairs  []dmfsgd.PathPair // validated batch pairs
	scores []float64         // PredictBatch output
	cands  []int             // parsed rank candidates
	ranked []int             // RankInto output
}

var scratchPool = sync.Pool{New: func() any { return new(reqScratch) }}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest representation, %f inside [1e-6, 1e21), %e outside with a
// minimal exponent.
//
//dmf:zeroalloc
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims zero-padded negative exponents: e-09 → e-9.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// jsonCT is the shared Content-Type value slice: Header().Set would
// allocate a fresh []string per request, which is the one heap
// allocation the zero-alloc handler pin would otherwise charge us for.
// The slice is never mutated, so sharing it across responses is safe.
var jsonCT = []string{"application/json"}

// writeRaw sends a prebuilt JSON body.
//
//dmf:zeroalloc
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	if len(h["Content-Type"]) == 0 {
		h["Content-Type"] = jsonCT
	}
	w.WriteHeader(status)
	w.Write(body)
}

// writeSized is writeRaw plus the endpoint's response-size observation.
//
//dmf:zeroalloc
func writeSized(ep *endpointMetrics, w http.ResponseWriter, status int, body []byte) {
	ep.size.Observe(float64(len(body)))
	writeRaw(w, status, body)
}

// queryValue extracts a raw query parameter without materializing a
// url.Values map. Values containing escapes fall back to the caller's
// slow path (ok=false with found=true).
//
//dmf:zeroalloc
func queryValue(rawQuery, key string) (val string, found, ok bool) {
	for len(rawQuery) > 0 {
		var pair string
		if idx := strings.IndexByte(rawQuery, '&'); idx >= 0 {
			pair, rawQuery = rawQuery[:idx], rawQuery[idx+1:]
		} else {
			pair, rawQuery = rawQuery, ""
		}
		k, v, _ := strings.Cut(pair, "=")
		if k != key {
			continue
		}
		if strings.ContainsAny(v, "%+") {
			return "", true, false // escaped: needs full URL decoding
		}
		return v, true, true
	}
	return "", false, true
}

// nodeParam parses a node-index query parameter and bounds-checks it.
//
//dmf:zeroalloc
func nodeParam(r *http.Request, name string, n int) (int, error) {
	v, found, fast := queryValue(r.URL.RawQuery, name)
	if !fast {
		v = r.URL.Query().Get(name)
	} else if !found {
		v = ""
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		//dmf:allow zeroalloc error path: a malformed request already left the zero-alloc fast path
		return 0, fmt.Errorf("bad %s=%q: want an integer", name, v)
	}
	if i < 0 || i >= n {
		//dmf:allow zeroalloc error path: a malformed request already left the zero-alloc fast path
		return 0, fmt.Errorf("%s=%d out of range [0,%d)", name, i, n)
	}
	return i, nil
}

// snapLoader yields the serving snapshot or answers 503 (follower still
// syncing) and reports false.
type snapLoader func(w http.ResponseWriter) (*dmfsgd.Snapshot, bool)

// handlePredictGet serves GET /predict?i=..&j=.. with zero steady-state
// allocations.
//
//dmf:zeroalloc
func handlePredictGet(load snapLoader) http.HandlerFunc {
	//dmf:allow zeroalloc the closure is built once at mux setup, not per request
	return func(w http.ResponseWriter, r *http.Request) {
		snap, ok := load(w)
		if !ok {
			return
		}
		i, err := nodeParam(r, "i", snap.N())
		if err != nil {
			writeError(w, err)
			return
		}
		j, err := nodeParam(r, "j", snap.N())
		if err != nil {
			writeError(w, err)
			return
		}
		score := snap.Predict(i, j)
		sc := scratchPool.Get().(*reqScratch)
		out := append(sc.out[:0], `{"class":"`...)
		out = append(out, dmfsgd.ClassOfScore(score).String()...)
		out = append(out, `","i":`...)
		out = strconv.AppendInt(out, int64(i), 10)
		out = append(out, `,"j":`...)
		out = strconv.AppendInt(out, int64(j), 10)
		out = append(out, `,"score":`...)
		out = appendJSONFloat(out, score)
		out = append(out, '}', '\n')
		writeSized(epPredictGet, w, http.StatusOK, out)
		sc.out = out
		scratchPool.Put(sc)
	}
}

// readBody drains r into buf (reused across requests), growing only when
// a request exceeds every previous body size.
//
//dmf:zeroalloc
func readBody(r *http.Request, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			if errors.Is(err, io.EOF) {
				return buf, nil
			}
			return buf, err
		}
	}
}

// handlePredictPost serves POST /predict {"pairs":[[i,j],...]} with pooled
// request/response buffers and score slices; the only remaining per-
// request allocations are inside json.Unmarshal's decode state.
//
//dmf:zeroalloc
func handlePredictPost(load snapLoader) http.HandlerFunc {
	//dmf:allow zeroalloc the closure is built once at mux setup, not per request
	return func(w http.ResponseWriter, r *http.Request) {
		snap, ok := load(w)
		if !ok {
			return
		}
		sc := scratchPool.Get().(*reqScratch)
		defer func() { scratchPool.Put(sc) }()
		body, err := readBody(r, sc.body[:0])
		sc.body = body
		if err != nil {
			//dmf:allow zeroalloc error path: a malformed request already left the zero-alloc fast path
			writeError(w, fmt.Errorf("bad JSON body: %v", err))
			return
		}
		req := struct {
			Pairs [][2]int `json:"pairs"`
		}{Pairs: sc.raw[:0]}
		if err := json.Unmarshal(body, &req); err != nil {
			//dmf:allow zeroalloc error path: a malformed request already left the zero-alloc fast path
			writeError(w, fmt.Errorf("bad JSON body: %v", err))
			return
		}
		sc.raw = req.Pairs[:0]
		pairs := sc.pairs[:0]
		for idx, p := range req.Pairs {
			if p[0] < 0 || p[0] >= snap.N() || p[1] < 0 || p[1] >= snap.N() {
				sc.pairs = pairs
				//dmf:allow zeroalloc error path: a malformed request already left the zero-alloc fast path
				writeError(w, fmt.Errorf("pair %d: (%d,%d) out of range [0,%d)", idx, p[0], p[1], snap.N()))
				return
			}
			pairs = append(pairs, dmfsgd.PathPair{I: p[0], J: p[1]})
		}
		sc.pairs = pairs
		if cap(sc.scores) < len(pairs) {
			sc.scores = make([]float64, len(pairs))
		}
		scores := sc.scores[:len(pairs)]
		snap.PredictBatch(pairs, scores)
		out := append(sc.out[:0], `{"classes":[`...)
		for k, s := range scores {
			if k > 0 {
				out = append(out, ',')
			}
			out = append(out, '"')
			out = append(out, dmfsgd.ClassOfScore(s).String()...)
			out = append(out, '"')
		}
		out = append(out, `],"scores":[`...)
		for k, s := range scores {
			if k > 0 {
				out = append(out, ',')
			}
			out = appendJSONFloat(out, s)
		}
		out = append(out, ']', '}', '\n')
		writeSized(epPredictPost, w, http.StatusOK, out)
		sc.out = out
	}
}

// handleRank serves GET /rank?i=..&candidates=.. through RankInto with a
// pooled candidate and output buffer — zero steady-state allocations.
//
//dmf:zeroalloc
func handleRank(load snapLoader) http.HandlerFunc {
	//dmf:allow zeroalloc the closure is built once at mux setup, not per request
	return func(w http.ResponseWriter, r *http.Request) {
		snap, ok := load(w)
		if !ok {
			return
		}
		i, err := nodeParam(r, "i", snap.N())
		if err != nil {
			writeError(w, err)
			return
		}
		raw, found, fast := queryValue(r.URL.RawQuery, "candidates")
		if !fast {
			raw = r.URL.Query().Get("candidates")
		} else if !found {
			raw = ""
		}
		sc := scratchPool.Get().(*reqScratch)
		defer func() { scratchPool.Put(sc) }()
		cands := sc.cands[:0]
		for len(raw) > 0 {
			var part string
			if idx := strings.IndexByte(raw, ','); idx >= 0 {
				part, raw = raw[:idx], raw[idx+1:]
			} else {
				part, raw = raw, ""
			}
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			j, err := strconv.Atoi(part)
			if err != nil || j < 0 || j >= snap.N() {
				sc.cands = cands
				//dmf:allow zeroalloc error path: a malformed request already left the zero-alloc fast path
				writeError(w, fmt.Errorf("bad candidate %q", part))
				return
			}
			cands = append(cands, j)
		}
		sc.cands = cands
		if len(cands) == 0 {
			writeError(w, errNeedCandidates)
			return
		}
		if cap(sc.ranked) < len(cands) {
			sc.ranked = make([]int, len(cands))
		}
		ranked := snap.RankInto(i, cands, sc.ranked[:len(cands)])
		out := append(sc.out[:0], `{"i":`...)
		out = strconv.AppendInt(out, int64(i), 10)
		out = append(out, `,"ranked":[`...)
		for k, j := range ranked {
			if k > 0 {
				out = append(out, ',')
			}
			out = strconv.AppendInt(out, int64(j), 10)
		}
		out = append(out, ']', '}', '\n')
		writeSized(epRank, w, http.StatusOK, out)
		sc.out = out
	}
}
