// Command dmfserve is an HTTP/JSON prediction service over a DMFSGD
// Snapshot: the serve-heavy-traffic story of the Session API. It trains a
// Session over a synthetic dataset, materializes an immutable Snapshot,
// and answers prediction queries from it with zero lock acquisitions —
// every request handler reads the same frozen coordinate arrays, so
// throughput scales with cores until memory bandwidth. With -refresh the
// session keeps training in the background and atomically swaps a fresh
// Snapshot into the serving pointer at each interval; in-flight requests
// keep the snapshot they started with.
//
// With -gossip the process joins the replication tier: it listens for
// anti-entropy gossip (TCP, length-prefixed frames) and feeds its
// versioned snapshot state to pulling peers, so one trainer replica can
// feed any number of serving replicas. With -peer the process is such a
// serving replica: it skips training entirely, bootstraps its state from
// the given peers, keeps it fresh by pulling only the shards whose
// version advanced, and publishes its replication lag at /healthz. Reads
// never block on replication — a replica serves whatever immutable
// snapshot it holds while newer shards stream in.
//
// Endpoints:
//
//	GET  /healthz                          liveness, update counter, replication lag
//	GET  /stats                            session and snapshot metadata
//	GET  /predict?i=3&j=77                 one path: score and class
//	POST /predict {"pairs":[[3,77],...]}   batch prediction
//	GET  /rank?i=3&candidates=4,9,12       §6.4 peer ranking, best first
//
// Example — one trainer feeding one read replica:
//
//	dmfserve -dataset meridian -n 500 -addr :8080 -refresh 2s -gossip 127.0.0.1:9090
//	dmfserve -addr :8081 -peer 127.0.0.1:9090
//	curl 'localhost:8081/predict?i=3&j=77'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dmfsgd"
	"dmfsgd/internal/ckpt"
	"dmfsgd/internal/replica"
	"dmfsgd/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dsName  = flag.String("dataset", "meridian", "dataset: meridian, harvard or hps3")
		n       = flag.Int("n", 500, "node count (0 = dataset original scale)")
		seed    = flag.Int64("seed", 1, "seed for dataset generation and training")
		rank    = flag.Int("rank", 10, "coordinate dimensionality")
		k       = flag.Int("k", 0, "neighbors per node (0 = dataset default)")
		shards  = flag.Int("shards", 0, "coordinate store shards (0 = default)")
		workers = flag.Int("workers", 0, "training/eval goroutines (0 = GOMAXPROCS)")
		budget  = flag.Int("budget", 0, "training update budget (0 = paper default, 20·k·n)")
		refresh = flag.Duration("refresh", 0, "keep training and swap a fresh snapshot at this interval (0 = train once, serve frozen)")

		gossipAddr  = flag.String("gossip", "", "replication gossip listen address (TCP); joins the replication tier")
		peerList    = flag.String("peer", "", "comma-separated bootstrap gossip peers; serve as a read replica (no local training)")
		gossipEvery = flag.Duration("gossip-interval", 500*time.Millisecond, "anti-entropy gossip period")

		ckptPath  = flag.String("checkpoint", "", "durability: checkpoint file — restored at startup (restart-without-retrain), saved after training bursts, periodically and at shutdown, always via atomic rename")
		walPath   = flag.String("wal", "", "durability: measurement write-ahead log (trainer only) — the training stream is teed into it and its tail is replayed on restart; truncated at every checkpoint barrier")
		ckptEvery = flag.Duration("checkpoint-interval", 30*time.Second, "minimum period between periodic checkpoint saves while training continues")

		pprofAddr = flag.String("pprof", "", "profiling: expose net/http/pprof on this separate (loopback) listener, e.g. 127.0.0.1:6060; empty = off")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: load runs can profile the
		// process without the serving mux growing debug routes.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", netpprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("dmfserve: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The serving pointer: handlers load it once per request; the
	// refresher (trainer) or the replication peer (follower) stores fresh
	// snapshots. Readers never block writers and vice versa. On a
	// follower it is nil until the bootstrap pull (or a local checkpoint)
	// lands.
	var serving atomic.Pointer[dmfsgd.Snapshot]

	// Durability telemetry, published on /healthz when -checkpoint is on:
	// wal_lag is the number of applied updates not yet covered by a
	// durable checkpoint (they live only in the WAL, or — without one —
	// would retrain on restart).
	var trainedSteps, ckptSteps atomic.Int64
	// trainerDone is closed once the training goroutine (if any) has
	// saved its shutdown checkpoint; main waits on it before exiting.
	trainerDone := make(chan struct{})
	close(trainerDone) // replaced by a live channel when a trainer runs

	role := "standalone"
	follower := *peerList != ""
	if follower {
		role = "follower"
	} else if *gossipAddr != "" {
		role = "trainer"
	}

	// The replication peer (nil when the tier is disabled) and its
	// transport.
	var repPeer *replica.Peer
	startPeer := func(listen string, peers []string, source bool, onState func(*replica.State)) *transport.TCP {
		tr, err := transport.ListenTCP(listen)
		if err != nil {
			log.Fatalf("dmfserve: %v", err)
		}
		repPeer = replica.NewPeer(replica.Config{
			ID:        uint32(os.Getpid()),
			Transport: tr,
			Peers:     peers,
			Interval:  *gossipEvery,
			Seed:      *seed,
			Source:    source,
			OnState:   onState,
			Logf:      log.Printf,
		})
		go repPeer.Run(ctx)
		log.Printf("replication: %s gossiping on %s (interval %v)", role, tr.Addr(), *gossipEvery)
		return tr
	}

	dsLabel := *dsName
	if follower {
		// Read replica: no dataset, no training. State arrives over
		// gossip; each applied delta publishes a fresh serving snapshot.
		dsLabel = "replicated"
		listen := *gossipAddr
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		// Publish serves directly over the replicated state's immutable
		// per-shard blocks: no 2·n·r flatten per applied delta, and blocks
		// shared with the previously published snapshot skip re-validation,
		// so the per-delta cost is proportional to the shards that advanced.
		// The mutex orders the checkpoint-bootstrap publish against the
		// gossip loop's.
		var pubMu sync.Mutex
		var pubPrev *dmfsgd.Snapshot
		publishState := func(st *replica.State) {
			pubMu.Lock()
			defer pubMu.Unlock()
			bu, bv := st.Blocks()
			snap, err := dmfsgd.NewSnapshotBlocks(dmfsgd.Metric(st.Meta.Metric), st.Meta.Tau,
				int(st.Meta.Steps), st.Rank, st.N, st.Shards, bu, bv, st.Vers(), pubPrev)
			if err != nil {
				log.Printf("dmfserve: replicated state rejected: %v", err)
				return
			}
			pubPrev = snap
			serving.Store(snap)
			trainedSteps.Store(int64(st.Meta.Steps))
		}
		tr := startPeer(listen, strings.Split(*peerList, ","), false, publishState)
		defer tr.Close()

		if *ckptPath != "" {
			// Bootstrap from the local checkpoint when one exists: the
			// replica serves immediately, and the restored version vector
			// makes gossip pull only the shards that advanced while it was
			// down — not the whole state.
			if c, err := ckpt.ReadFile(*ckptPath); err == nil {
				st, err := replica.FromCheckpoint(c)
				if err != nil {
					log.Fatalf("dmfserve: checkpoint %s: %v", *ckptPath, err)
				}
				// The gossip loop is already running, so a bootstrap pull
				// may have landed fresher state: SetState never goes
				// backwards, and publishing the peer's current state (not
				// the checkpoint's) keeps the serving snapshot on
				// whichever won.
				repPeer.SetState(st)
				if cur := repPeer.State(); cur != nil {
					publishState(cur)
				}
				ckptSteps.Store(int64(st.Meta.Steps))
				log.Printf("checkpoint restored: %d updates, serving before first gossip pull", st.Meta.Steps)
			} else if !errors.Is(err, os.ErrNotExist) {
				log.Fatalf("dmfserve: checkpoint %s: %v", *ckptPath, err)
			}
			// Persist whatever state gossip converges to.
			saveState := func() {
				st := repPeer.State()
				if st == nil || uint64(ckptSteps.Load()) == st.Meta.Steps {
					return
				}
				if err := ckpt.WriteFile(*ckptPath, st.Checkpoint()); err != nil {
					log.Printf("dmfserve: checkpoint save: %v", err)
					return
				}
				ckptSteps.Store(int64(st.Meta.Steps))
			}
			done := make(chan struct{})
			trainerDone = done // main waits for the shutdown save
			go func() {
				defer close(done)
				tick := time.NewTicker(*ckptEvery)
				defer tick.Stop()
				for {
					select {
					case <-ctx.Done():
						saveState()
						return
					case <-tick.C:
						saveState()
					}
				}
			}()
		}
	} else {
		var ds *dmfsgd.Dataset
		switch *dsName {
		case "meridian":
			ds = dmfsgd.NewMeridianDataset(*n, *seed)
		case "harvard":
			ds = dmfsgd.NewHarvardDataset(*n, 0, *seed)
		case "hps3":
			ds = dmfsgd.NewHPS3Dataset(*n, *seed)
		default:
			log.Fatalf("dmfserve: unknown dataset %q (want meridian, harvard or hps3)", *dsName)
		}

		opts := []dmfsgd.Option{
			dmfsgd.WithSeed(*seed),
			dmfsgd.WithRank(*rank),
		}
		if *k > 0 {
			opts = append(opts, dmfsgd.WithK(*k))
		}
		if *shards > 0 {
			opts = append(opts, dmfsgd.WithShards(*shards))
		}
		if *workers > 0 {
			opts = append(opts, dmfsgd.WithWorkers(*workers))
		}

		// Durability wiring: a WAL file tees the canonical measurement
		// stream, and an existing checkpoint resumes the session instead
		// of retraining — the WAL tail replays what the previous process
		// applied after its last checkpoint barrier.
		var sess *dmfsgd.Session
		var err error
		resume := false
		if *ckptPath != "" {
			if _, statErr := os.Stat(*ckptPath); statErr == nil {
				resume = true
			}
		}
		// No checkpoint but a non-empty WAL: the process died before its
		// first save. The log's committed entries are still replayable
		// into a fresh session (cold replay) — don't throw them away.
		coldWAL := false
		if !resume && *walPath != "" {
			if fi, statErr := os.Stat(*walPath); statErr == nil && fi.Size() > 0 {
				coldWAL = true
			}
		}
		mkSource := func() (dmfsgd.Source, error) {
			var src dmfsgd.Source
			var err error
			if ds.Trace != nil {
				src, err = dmfsgd.NewTraceSource(ds)
			} else {
				src, err = dmfsgd.NewMatrixSource(ds, *k, *seed)
			}
			if err != nil || *walPath == "" {
				return src, err
			}
			// With neither a checkpoint nor replayable entries, a
			// leftover WAL is garbage: truncate it, or fresh records
			// would overwrite a longer stale log in place and leave its
			// tail behind.
			flags := os.O_RDWR | os.O_CREATE
			if !resume && !coldWAL {
				flags |= os.O_TRUNC
			}
			walF, err := os.OpenFile(*walPath, flags, 0o644)
			if err != nil {
				return nil, err
			}
			return dmfsgd.WithWAL(src, walF), nil
		}
		// walFile extracts the *os.File behind the chain's WAL decorator:
		// replaying from the same handle lets resume truncate the
		// discarded tail in place and continue appending.
		walFile := func(src dmfsgd.Source) *os.File {
			if ws, ok := src.(*dmfsgd.WALSource); ok {
				if f, ok := ws.Sink().(*os.File); ok {
					return f
				}
			}
			return nil
		}
		src, err := mkSource()
		if err != nil {
			log.Fatalf("dmfserve: %v", err)
		}
		switch {
		case resume:
			ckptF, err := os.Open(*ckptPath)
			if err != nil {
				log.Fatalf("dmfserve: %v", err)
			}
			var walR io.Reader
			if f := walFile(src); f != nil {
				walR = f
			}
			sess, err = dmfsgd.ResumeSessionFromSource(ds, src, ckptF, walR, opts...)
			ckptF.Close()
			if err != nil {
				log.Fatalf("dmfserve: resume from %s: %v (if -wal was added or removed since the checkpoint was written, restart with the original flags, or delete the checkpoint and WAL to retrain)", *ckptPath, err)
			}
			log.Printf("checkpoint restored: %d updates already trained", sess.Steps())
		case coldWAL:
			var walR io.Reader
			if f := walFile(src); f != nil {
				walR = f
			}
			sess, err = dmfsgd.ResumeSessionFromSource(ds, src, nil, walR, opts...)
			if err != nil {
				// The log belongs to a different configuration (or was
				// already truncated at a barrier whose checkpoint is
				// gone): start fresh rather than crash-loop.
				log.Printf("dmfserve: WAL %s not replayable into this configuration (%v); starting fresh", *walPath, err)
				if f := walFile(src); f != nil {
					f.Truncate(0)
					f.Close()
				}
				if src, err = mkSource(); err != nil {
					log.Fatalf("dmfserve: %v", err)
				}
				if sess, err = dmfsgd.NewSessionFromSource(ds, src, opts...); err != nil {
					log.Fatalf("dmfserve: %v", err)
				}
			} else {
				log.Printf("WAL replayed cold: %d updates recovered without a checkpoint", sess.Steps())
			}
		default:
			sess, err = dmfsgd.NewSessionFromSource(ds, src, opts...)
			if err != nil {
				log.Fatalf("dmfserve: %v", err)
			}
		}
		defer sess.Close()
		trainedSteps.Store(int64(sess.Steps()))

		saveCkpt := func() {
			if *ckptPath == "" {
				return
			}
			if err := dmfsgd.SaveCheckpoint(sess, *ckptPath); err != nil {
				log.Printf("dmfserve: checkpoint save: %v", err)
				return
			}
			ckptSteps.Store(int64(sess.Steps()))
		}

		resolvedBudget := *budget
		if resolvedBudget <= 0 {
			resolvedBudget = sess.DefaultBudget()
		}
		log.Printf("training: %s, %d nodes, k=%d, tau=%.2f", ds.Name, sess.N(), sess.K(), sess.Tau())
		start := time.Now()
		if remaining := resolvedBudget - sess.Steps(); remaining > 0 {
			if err := sess.Run(ctx, remaining); err != nil {
				// Make the interrupted progress durable before exiting: a
				// SIGTERM mid-burst must not discard hours of training.
				saveCkpt()
				log.Fatalf("dmfserve: training interrupted: %v", err)
			}
			log.Printf("trained: %d updates in %.1fs", sess.Steps(), time.Since(start).Seconds())
		} else {
			log.Printf("budget of %d already met by the checkpoint (%d updates): nothing to retrain", resolvedBudget, sess.Steps())
		}
		trainedSteps.Store(int64(sess.Steps()))
		saveCkpt()

		// Trainer-side replication state: rebuilt incrementally from each
		// snapshot's version vector — only shards that advanced since the
		// previous capture are re-packed. Written by one goroutine (main
		// at startup, then the refresher).
		var repState *replica.State
		var lastPublished *dmfsgd.Snapshot
		publish := func(snap *dmfsgd.Snapshot) {
			if snap == lastPublished {
				// Session.Snapshot memoizes at quiescence; nothing moved,
				// so skip the flat-copy capture entirely.
				return
			}
			lastPublished = snap
			serving.Store(snap)
			if repPeer == nil {
				return
			}
			u, v := snap.Flat()
			st, err := replica.Update(repState, snap.N(), snap.Dim(), snap.StoreShards(),
				replica.Meta{Steps: uint64(snap.Steps()), Tau: snap.Tau(), Metric: uint8(ds.Metric)},
				snap.Versions(), u, v)
			if err != nil {
				log.Printf("dmfserve: replica capture: %v", err)
				return
			}
			repState = st
			repPeer.SetState(st)
		}

		if *gossipAddr != "" {
			tr := startPeer(*gossipAddr, nil, true, nil)
			defer tr.Close()
		}
		publish(sess.Snapshot())

		if *refresh > 0 {
			done := make(chan struct{})
			trainerDone = done
			go func() {
				defer close(done)
				tick := time.NewTicker(*refresh)
				defer tick.Stop()
				lastSave := time.Now()
				for {
					select {
					case <-ctx.Done():
						// Shutdown barrier: make everything trained since the
						// last save durable before the process exits.
						saveCkpt()
						return
					case <-tick.C:
					}
					// One k·n increment of training, then publish. Only this
					// goroutine touches the session after startup; handlers
					// read immutable snapshots.
					if err := sess.Run(ctx, sess.N()*sess.K()); err != nil {
						saveCkpt()
						return
					}
					snap := sess.Snapshot()
					publish(snap)
					trainedSteps.Store(int64(sess.Steps()))
					if *ckptPath != "" && time.Since(lastSave) >= *ckptEvery {
						saveCkpt()
						lastSave = time.Now()
					}
					log.Printf("snapshot refreshed at %d updates", snap.Steps())
				}
			}()
		}
	}

	// loadSnap answers 503 while a follower has not bootstrapped yet.
	loadSnap := func(w http.ResponseWriter) (*dmfsgd.Snapshot, bool) {
		snap := serving.Load()
		if snap == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "replica syncing: no snapshot yet"})
			return nil, false
		}
		return snap, true
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := serving.Load()
		resp := map[string]any{"role": role}
		if snap == nil {
			resp["status"] = "syncing"
		} else {
			resp["status"] = "ok"
			resp["steps"] = snap.Steps()
		}
		if repPeer != nil {
			lag := repPeer.Lag()
			resp["lag_steps"] = lag.StepsBehind
			resp["stale_shards"] = lag.StaleShards
			if !lag.LastAdvance.IsZero() {
				resp["since_advance_ms"] = time.Since(lag.LastAdvance).Milliseconds()
			}
		}
		if *ckptPath != "" {
			// Durability lag: applied updates not yet covered by a durable
			// checkpoint. Zero means a restart loses nothing (and, with a
			// WAL, nonzero values are replayable anyway).
			resp["checkpoint_steps"] = ckptSteps.Load()
			resp["wal_lag"] = trainedSteps.Load() - ckptSteps.Load()
		}
		status := http.StatusOK
		if snap == nil {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, resp)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		// Snapshot metadata only: the session itself may be training in
		// the background and is not safe to read concurrently.
		snap, ok := loadSnap(w)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"dataset":        dsLabel,
			"role":           role,
			"nodes":          snap.N(),
			"dim":            snap.Dim(),
			"tau":            snap.Tau(),
			"snapshot_steps": snap.Steps(),
		})
	})
	// Hot serving paths: pooled request/response buffers, hand-built JSON,
	// RankInto — zero steady-state allocations (see handlers.go).
	mux.HandleFunc("GET /predict", handlePredictGet(loadSnap))
	mux.HandleFunc("POST /predict", handlePredictPost(loadSnap))
	mux.HandleFunc("GET /rank", handleRank(loadSnap))

	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	log.Printf("serving on %s (role=%s, refresh=%v)", *addr, role, *refresh)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dmfserve: %v", err)
	}
	// Wait for the trainer's shutdown checkpoint before exiting.
	<-trainerDone
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}
