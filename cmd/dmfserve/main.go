// Command dmfserve is an HTTP/JSON prediction service over a DMFSGD
// Snapshot: the serve-heavy-traffic story of the Session API. It trains a
// Session over a synthetic dataset, materializes an immutable Snapshot,
// and answers prediction queries from it with zero lock acquisitions —
// every request handler reads the same frozen coordinate arrays, so
// throughput scales with cores until memory bandwidth. With -refresh the
// session keeps training in the background and atomically swaps a fresh
// Snapshot into the serving pointer at each interval; in-flight requests
// keep the snapshot they started with.
//
// With -trainer-id and -cluster-size the process joins a trainer
// cluster (internal/cluster): each of T trainers owns a contiguous range
// of coordinate-store shards, trains the same measurement stream in
// lockstep rounds, routes cross-shard target updates to the owning
// trainer, and mirrors every other trainer's shards locally — so every
// member serves (and gossips to followers) the full coordinate view.
// Trainer identities are 0..T-1 and must be stable across restarts: a
// restart resumes from its checkpoint with the incarnation bumped, so
// its vector-clock lineage dominates everything the previous life wrote.
// Peers find each other through -cluster-peers bootstrap addresses and
// the membership gossip of internal/member. All cluster members must run
// identical dataset/seed/budget flags — the identical measurement
// streams are what keep their rounds in lockstep. A -cluster-size 1
// cluster is bit-identical to the standalone trainer.
//
// With -gossip the process joins the replication tier: it listens for
// anti-entropy gossip (TCP, length-prefixed frames) and feeds its
// versioned snapshot state to pulling peers, so one trainer replica can
// feed any number of serving replicas. With -peer the process is such a
// serving replica: it skips training entirely, bootstraps its state from
// the given peers, keeps it fresh by pulling only the shards whose
// version advanced, and publishes its replication lag at /healthz. Reads
// never block on replication — a replica serves whatever immutable
// snapshot it holds while newer shards stream in.
//
// Endpoints:
//
//	GET  /healthz                          liveness, update counter, replication lag
//	GET  /stats                            session and snapshot metadata
//	GET  /predict?i=3&j=77                 one path: score and class
//	POST /predict {"pairs":[[3,77],...]}   batch prediction
//	GET  /rank?i=3&candidates=4,9,12       §6.4 peer ranking, best first
//
// Example — one trainer feeding one read replica:
//
//	dmfserve -dataset meridian -n 500 -addr :8080 -refresh 2s -gossip 127.0.0.1:9090
//	dmfserve -addr :8081 -peer 127.0.0.1:9090
//	curl 'localhost:8081/predict?i=3&j=77'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dmfsgd"
	"dmfsgd/internal/ckpt"
	"dmfsgd/internal/cluster"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/member"
	"dmfsgd/internal/metrics"
	"dmfsgd/internal/replica"
	"dmfsgd/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dsName  = flag.String("dataset", "meridian", "dataset: meridian, harvard or hps3")
		n       = flag.Int("n", 500, "node count (0 = dataset original scale)")
		seed    = flag.Int64("seed", 1, "seed for dataset generation and training")
		rank    = flag.Int("rank", 10, "coordinate dimensionality")
		k       = flag.Int("k", 0, "neighbors per node (0 = dataset default)")
		shards  = flag.Int("shards", 0, "coordinate store shards (0 = default)")
		workers = flag.Int("workers", 0, "training/eval goroutines (0 = GOMAXPROCS)")
		budget  = flag.Int("budget", 0, "training update budget (0 = paper default, 20·k·n)")
		refresh = flag.Duration("refresh", 0, "keep training and swap a fresh snapshot at this interval (0 = train once, serve frozen)")

		trainerID      = flag.Int("trainer-id", -1, "stable trainer identity (0..T-1) in a trainer cluster; alone it only adds the cluster fields to /healthz")
		clusterSize    = flag.Int("cluster-size", 0, "trainer count T; ids are 0..T-1 (enables cluster mode, even at T=1)")
		clusterAddr    = flag.String("cluster-addr", "", "trainer-cluster transport listen address (TCP; default 127.0.0.1:0)")
		clusterPeers   = flag.String("cluster-peers", "", "comma-separated bootstrap -cluster-addr addresses of other trainers (enables cluster mode)")
		clusterTimeout = flag.Duration("cluster-timeout", 5*time.Second, "lockstep barrier timeout; a trainer missing it is declared dead and failed over")

		gossipAddr  = flag.String("gossip", "", "replication gossip listen address (TCP); joins the replication tier")
		peerList    = flag.String("peer", "", "comma-separated bootstrap gossip peers; serve as a read replica (no local training)")
		gossipEvery = flag.Duration("gossip-interval", 500*time.Millisecond, "anti-entropy gossip period")

		ckptPath      = flag.String("checkpoint", "", "durability: checkpoint file — restored at startup (restart-without-retrain), saved after training bursts, periodically and at shutdown, always via atomic rename")
		walPath       = flag.String("wal", "", "durability: measurement write-ahead log (trainer only) — the training stream is teed into it and its tail is replayed on restart; truncated at every checkpoint barrier")
		ckptEvery     = flag.Duration("checkpoint-interval", 30*time.Second, "minimum period between periodic checkpoint saves while training continues")
		ckptBaseEvery = flag.Int("checkpoint-base-every", 0, "durability: save incremental delta checkpoints (only the shards that advanced), rolling a fresh full base after this many deltas; 0 = rewrite the full checkpoint every save")
		walSegBytes   = flag.Int64("wal-segments", 0, "durability: treat -wal as a directory of rotating log segments, starting a new segment past this many bytes (checkpoint barriers delete covered segments); 0 = one growing file truncated at barriers")

		pprofAddr = flag.String("pprof", "", "profiling: expose net/http/pprof on this separate (loopback) listener, e.g. 127.0.0.1:6060; empty = off")
		tracePath = flag.String("trace", "", "observability: append NDJSON round/epoch/gossip trace events ("+metrics.TraceSchema+") to this file; empty = off")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: load runs can profile the
		// process without the serving mux growing debug routes. Bind
		// synchronously so a bad -pprof address fails the start instead of
		// logging from a goroutine the operator never reads.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", netpprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("dmfserve: pprof listener %s: %v", *pprofAddr, err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
		go func() {
			if err := http.Serve(ln, pm); err != nil {
				log.Printf("dmfserve: pprof: %v", err)
			}
		}()
	}

	if *tracePath != "" {
		tw, err := metrics.OpenTraceFile(*tracePath)
		if err != nil {
			log.Fatalf("dmfserve: trace %s: %v", *tracePath, err)
		}
		metrics.SetTrace(tw)
		defer tw.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The serving pointer: handlers load it once per request; the
	// refresher (trainer) or the replication peer (follower) stores fresh
	// snapshots. Readers never block writers and vice versa. On a
	// follower it is nil until the bootstrap pull (or a local checkpoint)
	// lands.
	var serving atomic.Pointer[dmfsgd.Snapshot]

	// Durability telemetry, published on /healthz when -checkpoint is on:
	// wal_lag is the number of applied updates not yet covered by a
	// durable checkpoint (they live only in the WAL, or — without one —
	// would retrain on restart).
	var trainedSteps, ckptSteps atomic.Int64
	// trainerDone is closed once the training goroutine (if any) has
	// saved its shutdown checkpoint; main waits on it before exiting.
	trainerDone := make(chan struct{})
	close(trainerDone) // replaced by a live channel when a trainer runs

	role := "standalone"
	follower := *peerList != ""
	if follower {
		role = "follower"
	} else if *gossipAddr != "" {
		role = "trainer"
	}

	// Trainer-cluster wiring: -cluster-size or -cluster-peers turns the
	// trainer into one member of a lockstep trainer cluster. A bare
	// -trainer-id keeps the legacy training path verbatim and only
	// surfaces the cluster identity fields on /healthz.
	var bootPeers []string
	for _, a := range strings.Split(*clusterPeers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			bootPeers = append(bootPeers, a)
		}
	}
	clusterMode := *clusterSize > 0 || len(bootPeers) > 0
	clusterT := *clusterSize
	if t := 1 + len(bootPeers); t > clusterT {
		clusterT = t
	}
	if clusterMode {
		if follower {
			log.Fatalf("dmfserve: -cluster-size/-cluster-peers describe a trainer role; drop -peer")
		}
		if *trainerID < 0 || *trainerID >= clusterT {
			log.Fatalf("dmfserve: a cluster of %d trainers needs -trainer-id in [0,%d), got %d",
				clusterT, clusterT, *trainerID)
		}
		role = "cluster-trainer"
	}
	var clusterTr *cluster.Trainer
	// selfInc numbers this process lifetime of the trainer identity: the
	// persisted checkpoint incarnation plus one, so the restarted
	// lineage's vector-clock entries dominate everything the previous
	// life wrote. 0 on a fresh start.
	var selfInc uint32
	soloShards := 0 // store shard count, for the legacy-path /healthz fields

	// The replication peer (nil when the tier is disabled) and its
	// transport.
	var repPeer *replica.Peer
	startPeer := func(listen string, peers []string, source bool, onState func(*replica.State)) *transport.TCP {
		tr, err := transport.ListenTCP(listen)
		if err != nil {
			log.Fatalf("dmfserve: %v", err)
		}
		// A stable -trainer-id (rather than the pid) keeps the gossip
		// identity attached to the incarnation lineage across restarts, so
		// followers re-admit a restarted trainer instead of blackholing it.
		id := uint32(os.Getpid())
		if *trainerID >= 0 {
			id = uint32(*trainerID)
		}
		repPeer = replica.NewPeer(replica.Config{
			ID:          id,
			Incarnation: selfInc,
			Transport:   tr,
			Peers:       peers,
			Interval:    *gossipEvery,
			Seed:        *seed,
			Source:      source,
			OnState:     onState,
			Logf:        log.Printf,
		})
		go repPeer.Run(ctx)
		log.Printf("replication: %s gossiping on %s (interval %v)", role, tr.Addr(), *gossipEvery)
		return tr
	}

	dsLabel := *dsName
	if follower {
		// Read replica: no dataset, no training. State arrives over
		// gossip; each applied delta publishes a fresh serving snapshot.
		dsLabel = "replicated"
		listen := *gossipAddr
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		// Peek the persisted incarnation before gossip starts, so this
		// lifetime announces itself one past the previous one. LoadChain
		// (not ReadFile) so an incarnation recorded by a delta save after
		// the last base roll is not missed.
		if *ckptPath != "" {
			if c, _, err := ckpt.LoadChain(*ckptPath); err == nil {
				selfInc = c.Incarnation + 1
			}
		}
		// Publish serves directly over the replicated state's immutable
		// per-shard blocks: no 2·n·r flatten per applied delta, and blocks
		// shared with the previously published snapshot skip re-validation,
		// so the per-delta cost is proportional to the shards that advanced.
		// The mutex orders the checkpoint-bootstrap publish against the
		// gossip loop's.
		var pubMu sync.Mutex
		var pubPrev *dmfsgd.Snapshot
		publishState := func(st *replica.State) {
			pubMu.Lock()
			defer pubMu.Unlock()
			bu, bv := st.Blocks()
			snap, err := dmfsgd.NewSnapshotBlocks(dmfsgd.Metric(st.Meta.Metric), st.Meta.Tau,
				int(st.Meta.Steps), st.Rank, st.N, st.Shards, bu, bv, st.Vers(), pubPrev)
			if err != nil {
				log.Printf("dmfserve: replicated state rejected: %v", err)
				return
			}
			pubPrev = snap
			serving.Store(snap)
			trainedSteps.Store(int64(st.Meta.Steps))
		}
		tr := startPeer(listen, strings.Split(*peerList, ","), false, publishState)
		defer tr.Close()

		if *ckptPath != "" {
			// Bootstrap from the local checkpoint chain when one exists —
			// the full base plus every delta save that extends it: the
			// replica serves immediately, and the restored version vector
			// makes gossip pull only the shards that advanced while it was
			// down — not the whole state.
			cw := ckpt.NewChainWriter(*ckptPath, *ckptBaseEvery)
			if c, deltas, err := ckpt.LoadChain(*ckptPath); err == nil {
				vers := append([]uint64(nil), c.Vers...)
				st, err := replica.FromCheckpoint(c)
				if err != nil {
					log.Fatalf("dmfserve: checkpoint %s: %v", *ckptPath, err)
				}
				// The gossip loop is already running, so a bootstrap pull
				// may have landed fresher state: SetState never goes
				// backwards, and publishing the peer's current state (not
				// the checkpoint's) keeps the serving snapshot on
				// whichever won.
				repPeer.SetState(st)
				if cur := repPeer.State(); cur != nil {
					publishState(cur)
				}
				ckptSteps.Store(int64(st.Meta.Steps))
				cw.Resume(vers, deltas)
				log.Printf("checkpoint restored: %d updates (base + %d deltas), serving before first gossip pull", st.Meta.Steps, deltas)
			} else if !errors.Is(err, os.ErrNotExist) {
				log.Fatalf("dmfserve: checkpoint %s: %v", *ckptPath, err)
			}
			// Persist whatever state gossip converges to, writing only the
			// shards that advanced since the previous save.
			saveState := func() {
				st := repPeer.State()
				if st == nil || uint64(ckptSteps.Load()) == st.Meta.Steps {
					return
				}
				if _, err := cw.Save(st.Checkpoint()); err != nil {
					log.Printf("dmfserve: checkpoint save: %v", err)
					return
				}
				ckptSteps.Store(int64(st.Meta.Steps))
			}
			done := make(chan struct{})
			trainerDone = done // main waits for the shutdown save
			go func() {
				defer close(done)
				tick := time.NewTicker(*ckptEvery)
				defer tick.Stop()
				for {
					select {
					case <-ctx.Done():
						saveState()
						return
					case <-tick.C:
						saveState()
					}
				}
			}()
		}
	} else {
		var ds *dmfsgd.Dataset
		switch *dsName {
		case "meridian":
			ds = dmfsgd.NewMeridianDataset(*n, *seed)
		case "harvard":
			ds = dmfsgd.NewHarvardDataset(*n, 0, *seed)
		case "hps3":
			ds = dmfsgd.NewHPS3Dataset(*n, *seed)
		default:
			log.Fatalf("dmfserve: unknown dataset %q (want meridian, harvard or hps3)", *dsName)
		}

		opts := []dmfsgd.Option{
			dmfsgd.WithSeed(*seed),
			dmfsgd.WithRank(*rank),
		}
		if *k > 0 {
			opts = append(opts, dmfsgd.WithK(*k))
		}
		if *shards > 0 {
			opts = append(opts, dmfsgd.WithShards(*shards))
		}
		if *workers > 0 {
			opts = append(opts, dmfsgd.WithWorkers(*workers))
		}

		// Durability wiring: a WAL file tees the canonical measurement
		// stream, and an existing checkpoint resumes the session instead
		// of retraining — the WAL tail replays what the previous process
		// applied after its last checkpoint barrier.
		var sess *dmfsgd.Session
		var err error
		resume := false
		if *ckptPath != "" {
			if _, statErr := os.Stat(*ckptPath); statErr == nil {
				resume = true
			}
		}
		if *trainerID >= 0 && resume {
			// The restart contract: resume one past the persisted
			// incarnation, and record the bumped value in every checkpoint
			// this lifetime writes. LoadChain so an incarnation recorded
			// by a delta save after the last base roll is not missed.
			c, _, peekErr := ckpt.LoadChain(*ckptPath)
			if peekErr != nil {
				log.Fatalf("dmfserve: checkpoint %s: %v", *ckptPath, peekErr)
			}
			selfInc = c.Incarnation + 1
			opts = append(opts, dmfsgd.WithIncarnation(selfInc))
		}
		segmented := *walPath != "" && *walSegBytes > 0
		// No checkpoint but a non-empty WAL: the process died before its
		// first save. The log's committed entries are still replayable
		// into a fresh session (cold replay) — don't throw them away.
		coldWAL := false
		if !resume && *walPath != "" {
			if segmented {
				if idxs, lerr := dataset.ListWALSegments(*walPath); lerr == nil && len(idxs) > 0 {
					coldWAL = true
				}
			} else if fi, statErr := os.Stat(*walPath); statErr == nil && fi.Size() > 0 {
				coldWAL = true
			}
		}
		// dropWAL discards an unreplayable log: truncate the single file,
		// or delete every segment of a rotating directory.
		dropWAL := func(src dmfsgd.Source) {
			if segmented {
				idxs, lerr := dataset.ListWALSegments(*walPath)
				if lerr != nil {
					log.Fatalf("dmfserve: WAL dir %s: %v", *walPath, lerr)
				}
				for _, idx := range idxs {
					if rerr := os.Remove(filepath.Join(*walPath, dataset.WALSegmentName(idx))); rerr != nil {
						log.Fatalf("dmfserve: WAL dir %s: %v", *walPath, rerr)
					}
				}
				return
			}
			if ws, ok := src.(*dmfsgd.WALSource); ok {
				if f, ok := ws.Sink().(*os.File); ok {
					f.Truncate(0)
					f.Close()
				}
			}
		}
		mkSource := func() (dmfsgd.Source, error) {
			var src dmfsgd.Source
			var err error
			if ds.Trace != nil {
				src, err = dmfsgd.NewTraceSource(ds)
			} else {
				src, err = dmfsgd.NewMatrixSource(ds, *k, *seed)
			}
			if err != nil || *walPath == "" {
				return src, err
			}
			if segmented {
				// The directory belongs to the log: with neither a
				// checkpoint nor replayable entries, leftover segments are
				// a stale run's and would contradict the fresh one.
				if !resume && !coldWAL {
					if idxs, lerr := dataset.ListWALSegments(*walPath); lerr == nil && len(idxs) > 0 {
						dropWAL(nil)
					}
				}
				return dmfsgd.WithWALDir(src, *walPath, *walSegBytes)
			}
			// With neither a checkpoint nor replayable entries, a
			// leftover WAL is garbage: truncate it, or fresh records
			// would overwrite a longer stale log in place and leave its
			// tail behind.
			flags := os.O_RDWR | os.O_CREATE
			if !resume && !coldWAL {
				flags |= os.O_TRUNC
			}
			walF, err := os.OpenFile(*walPath, flags, 0o644)
			if err != nil {
				return nil, err
			}
			return dmfsgd.WithWAL(src, walF), nil
		}
		// walFile extracts the *os.File behind the chain's WAL decorator:
		// replaying from the same handle lets resume truncate the
		// discarded tail in place and continue appending.
		walFile := func(src dmfsgd.Source) *os.File {
			if ws, ok := src.(*dmfsgd.WALSource); ok {
				if f, ok := ws.Sink().(*os.File); ok {
					return f
				}
			}
			return nil
		}
		// The chain is the save policy for every checkpoint this process
		// writes: -checkpoint-base-every 0 degenerates to a full rewrite
		// per save, exactly the old behavior.
		var chain *dmfsgd.CheckpointChain
		if *ckptPath != "" {
			chain = dmfsgd.NewCheckpointChain(*ckptPath, *ckptBaseEvery)
		}
		src, err := mkSource()
		if err != nil {
			log.Fatalf("dmfserve: %v", err)
		}
		switch {
		case resume:
			// Chain resume: base + deltas folded into one state, the
			// single-file WAL tail (or the rotating segment chain, found
			// from the source's own directory) replayed past its barrier.
			var walR io.Reader
			if f := walFile(src); f != nil {
				walR = f
			}
			sess, err = chain.Resume(ds, src, walR, opts...)
			if err != nil {
				log.Fatalf("dmfserve: resume from %s: %v (if -wal was added or removed since the checkpoint was written, restart with the original flags, or delete the checkpoint and WAL to retrain)", *ckptPath, err)
			}
			log.Printf("checkpoint restored: %d updates already trained", sess.Steps())
		case coldWAL:
			var walR io.Reader
			if f := walFile(src); f != nil {
				walR = f
			}
			sess, err = dmfsgd.ResumeSessionFromSource(ds, src, nil, walR, opts...)
			if err != nil {
				// The log belongs to a different configuration (or was
				// already truncated at a barrier whose checkpoint is
				// gone): start fresh rather than crash-loop.
				log.Printf("dmfserve: WAL %s not replayable into this configuration (%v); starting fresh", *walPath, err)
				dropWAL(src)
				if src, err = mkSource(); err != nil {
					log.Fatalf("dmfserve: %v", err)
				}
				if sess, err = dmfsgd.NewSessionFromSource(ds, src, opts...); err != nil {
					log.Fatalf("dmfserve: %v", err)
				}
			} else {
				log.Printf("WAL replayed cold: %d updates recovered without a checkpoint", sess.Steps())
			}
		default:
			sess, err = dmfsgd.NewSessionFromSource(ds, src, opts...)
			if err != nil {
				log.Fatalf("dmfserve: %v", err)
			}
		}
		defer sess.Close()
		trainedSteps.Store(int64(sess.Steps()))
		if eng := sess.Engine(); eng != nil {
			soloShards = eng.Store().Shards()
		}

		if clusterMode {
			listen := *clusterAddr
			if listen == "" {
				listen = "127.0.0.1:0"
			}
			ctr, lerr := transport.ListenTCPStream(listen)
			if lerr != nil {
				log.Fatalf("dmfserve: cluster listener: %v", lerr)
			}
			// The membership mux splits the cluster lane: Join/Peers frames
			// feed the discovery directory, everything else (routed updates,
			// clock deltas, ownership maps) flows to the trainer's Step loop.
			cmux := member.NewMux(ctr)
			defer cmux.Close()
			roster := make([]uint32, clusterT)
			for i := range roster {
				roster[i] = uint32(i)
			}
			clusterTr, err = cluster.New(cluster.Config{
				ID:          uint32(*trainerID),
				Incarnation: sess.Incarnation(),
				Trainers:    roster,
				Transport:   cmux,
				Engine:      sess.Engine(),
				Timeout:     *clusterTimeout,
				Logf:        log.Printf,
			})
			if err != nil {
				log.Fatalf("dmfserve: %v", err)
			}
			dir := member.NewDirectory(uint32(*trainerID), cmux, *seed)
			dir.OnPeer(func(p member.Peer) { clusterTr.AddPeer(p.ID, p.Addr) })
			go dir.Run(ctx, 500*time.Millisecond)
			// Re-Join the bootstrap addresses until the roster is complete:
			// peers started in any order race each other's listeners, and a
			// refused first dial would otherwise leave the directory empty
			// with no one to gossip with.
			go func() {
				tick := time.NewTicker(200 * time.Millisecond)
				defer tick.Stop()
				for {
					if len(dir.Peers()) >= clusterT-1 {
						return
					}
					for _, b := range bootPeers {
						_ = dir.Join(b)
					}
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
					}
				}
			}()
			log.Printf("cluster: trainer %d of %d (incarnation %d) on %s",
				*trainerID, clusterT, sess.Incarnation(), cmux.Addr())
			if werr := clusterTr.WaitRoster(ctx); werr != nil {
				log.Fatalf("dmfserve: waiting for the cluster roster: %v", werr)
			}
		}
		// runTraining drains total successful updates through whichever
		// training path is active: lockstep cluster rounds or the local
		// sequential loop.
		runTraining := func(total int) error {
			if clusterTr != nil {
				return sess.RunCluster(ctx, clusterTr, total, 0)
			}
			return sess.Run(ctx, total)
		}

		saveCkpt := func() {
			if chain == nil {
				return
			}
			if err := chain.Save(sess); err != nil {
				log.Printf("dmfserve: checkpoint save: %v", err)
				return
			}
			ckptSteps.Store(int64(sess.Steps()))
		}

		resolvedBudget := *budget
		if resolvedBudget <= 0 {
			resolvedBudget = sess.DefaultBudget()
		}
		log.Printf("training: %s, %d nodes, k=%d, tau=%.2f", ds.Name, sess.N(), sess.K(), sess.Tau())
		start := time.Now()
		if remaining := resolvedBudget - sess.Steps(); remaining > 0 {
			if err := runTraining(remaining); err != nil {
				if errors.Is(err, cluster.ErrEvicted) {
					// The surviving cluster reassigned our shards; the local
					// mirror is still a complete coordinate view as of the
					// last finished round, so keep serving it frozen.
					log.Printf("dmfserve: evicted from the trainer cluster; serving the last mirrored state")
				} else {
					// Make the interrupted progress durable before exiting: a
					// SIGTERM mid-burst must not discard hours of training.
					saveCkpt()
					log.Fatalf("dmfserve: training interrupted: %v", err)
				}
			} else {
				log.Printf("trained: %d updates in %.1fs", sess.Steps(), time.Since(start).Seconds())
			}
		} else {
			log.Printf("budget of %d already met by the checkpoint (%d updates): nothing to retrain", resolvedBudget, sess.Steps())
		}
		trainedSteps.Store(int64(sess.Steps()))
		saveCkpt()

		// Trainer-side replication state: rebuilt incrementally from each
		// snapshot's version vector — only shards that advanced since the
		// previous capture are re-packed. Written by one goroutine (main
		// at startup, then the refresher).
		var repState *replica.State
		var lastPublished *dmfsgd.Snapshot
		publish := func(snap *dmfsgd.Snapshot) {
			if snap == lastPublished {
				// Session.Snapshot memoizes at quiescence; nothing moved,
				// so skip the flat-copy capture entirely.
				return
			}
			lastPublished = snap
			serving.Store(snap)
			if repPeer == nil {
				return
			}
			u, v := snap.Flat()
			st, err := replica.Update(repState, snap.N(), snap.Dim(), snap.StoreShards(),
				replica.Meta{Steps: uint64(snap.Steps()), Tau: snap.Tau(), Metric: uint8(ds.Metric)},
				snap.Versions(), u, v)
			if err != nil {
				log.Printf("dmfserve: replica capture: %v", err)
				return
			}
			repState = st
			repPeer.SetState(st)
		}

		if *gossipAddr != "" {
			tr := startPeer(*gossipAddr, nil, true, nil)
			defer tr.Close()
		}
		publish(sess.Snapshot())

		if *refresh > 0 {
			done := make(chan struct{})
			trainerDone = done
			go func() {
				defer close(done)
				tick := time.NewTicker(*refresh)
				defer tick.Stop()
				lastSave := time.Now()
				for {
					select {
					case <-ctx.Done():
						// Shutdown barrier: make everything trained since the
						// last save durable before the process exits.
						saveCkpt()
						return
					case <-tick.C:
					}
					// One k·n increment of training, then publish. Only this
					// goroutine touches the session after startup; handlers
					// read immutable snapshots.
					if err := runTraining(sess.N() * sess.K()); err != nil {
						if errors.Is(err, cluster.ErrEvicted) {
							log.Printf("dmfserve: evicted from the trainer cluster; refresh loop stopping")
						}
						saveCkpt()
						return
					}
					snap := sess.Snapshot()
					publish(snap)
					trainedSteps.Store(int64(sess.Steps()))
					if *ckptPath != "" && time.Since(lastSave) >= *ckptEvery {
						saveCkpt()
						lastSave = time.Now()
					}
					log.Printf("snapshot refreshed at %d updates", snap.Steps())
				}
			}()
		} else if clusterTr != nil {
			// No refresh loop: keep the cluster's failure detection live
			// with heartbeat rounds — pure barrier exchanges that move no
			// state — so a dead peer's shards are failed over even while no
			// trainer is ingesting measurements.
			hb := *clusterTimeout / 2
			if hb > time.Second {
				hb = time.Second
			}
			go func() {
				tick := time.NewTicker(hb)
				defer tick.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
					}
					if _, err := clusterTr.Step(ctx, nil); err != nil {
						if errors.Is(err, cluster.ErrEvicted) {
							log.Printf("dmfserve: evicted from the trainer cluster; heartbeats stopping")
							return
						}
						if ctx.Err() != nil {
							return
						}
						// ErrRoundAborted: ownership changed under us; keep
						// heartbeating under the new map.
					}
				}
			}()
		}
	}

	// loadSnap answers 503 while a follower has not bootstrapped yet.
	loadSnap := func(w http.ResponseWriter) (*dmfsgd.Snapshot, bool) {
		snap := serving.Load()
		if snap == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "replica syncing: no snapshot yet"})
			return nil, false
		}
		return snap, true
	}

	// Re-express the /healthz quantities as gauges on the shared registry:
	// one bookkeeping path feeds both surfaces (healthReply documents the
	// correspondence). Cluster and replica internals already publish their
	// own gauges (dmf_cluster_clock_lag, dmf_replica_lag_steps).
	reg := metrics.Default()
	reg.GaugeFunc("dmf_serving_ready",
		"1 once a serving snapshot is published (healthz status=ok).",
		func() float64 {
			if serving.Load() != nil {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dmf_serving_steps",
		"Updates folded into the serving snapshot (healthz steps).",
		func() float64 {
			if s := serving.Load(); s != nil {
				return float64(s.Steps())
			}
			return 0
		})
	if *ckptPath != "" {
		reg.GaugeFunc("dmf_ckpt_covered_steps",
			"Updates covered by the latest durable checkpoint (healthz checkpoint_steps).",
			func() float64 { return float64(ckptSteps.Load()) })
		reg.GaugeFunc("dmf_wal_lag_steps",
			"Applied updates not yet covered by a durable checkpoint (healthz wal_lag).",
			func() float64 { return float64(trainedSteps.Load() - ckptSteps.Load()) })
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := serving.Load()
		resp := healthReply{Status: "ok", Role: role}
		if snap == nil {
			resp.Status = "syncing"
		} else {
			resp.Steps = int64(snap.Steps())
		}
		if clusterTr != nil {
			cs := clusterTr.Status()
			resp.clusterHealth = &clusterHealth{
				TrainerID:   cs.ID,
				Incarnation: cs.Incarnation,
				Epoch:       cs.Epoch,
				Round:       cs.Round,
				Shards:      cs.Shards,
				OwnedShards: cs.OwnedShards,
				Owners:      cs.Owners,
				Live:        cs.Live,
				ClockLag:    cs.ClockLag,
			}
		} else if *trainerID >= 0 {
			// Legacy single-trainer path with a cluster identity: report it
			// as the degenerate cluster of one — every shard owned here,
			// no peers to lag behind.
			owners := make([]uint32, soloShards)
			for i := range owners {
				owners[i] = uint32(*trainerID)
			}
			resp.clusterHealth = &clusterHealth{
				TrainerID:   uint32(*trainerID),
				Incarnation: selfInc,
				Shards:      soloShards,
				OwnedShards: soloShards,
				Owners:      owners,
				Live:        []uint32{uint32(*trainerID)},
			}
		}
		if repPeer != nil {
			lag := repPeer.Lag()
			rh := &replicaHealth{LagSteps: lag.StepsBehind, StaleShards: lag.StaleShards}
			if !lag.LastAdvance.IsZero() {
				ms := time.Since(lag.LastAdvance).Milliseconds()
				rh.SinceAdvanceMS = &ms
			}
			resp.replicaHealth = rh
		}
		if *ckptPath != "" {
			// Durability lag: applied updates not yet covered by a durable
			// checkpoint. Zero means a restart loses nothing (and, with a
			// WAL, nonzero values are replayable anyway).
			resp.durabilityHealth = &durabilityHealth{
				CheckpointSteps: ckptSteps.Load(),
				WALLag:          trainedSteps.Load() - ckptSteps.Load(),
			}
		}
		status := http.StatusOK
		if snap == nil {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, resp)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		// Snapshot metadata only: the session itself may be training in
		// the background and is not safe to read concurrently.
		snap, ok := loadSnap(w)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"dataset":        dsLabel,
			"role":           role,
			"nodes":          snap.N(),
			"dim":            snap.Dim(),
			"tau":            snap.Tau(),
			"snapshot_steps": snap.Steps(),
		})
	})
	// Hot serving paths: pooled request/response buffers, hand-built JSON,
	// RankInto — zero steady-state allocations (see handlers.go), including
	// the per-endpoint metric observations (metrics.go).
	mux.HandleFunc("GET /predict", instrument(epPredictGet, handlePredictGet(loadSnap)))
	mux.HandleFunc("POST /predict", instrument(epPredictPost, handlePredictPost(loadSnap)))
	mux.HandleFunc("GET /rank", instrument(epRank, handleRank(loadSnap)))
	// Prometheus text exposition for every series the process touches:
	// serving, engine, cluster, replica, transport, durability (§12).
	mux.HandleFunc("GET /metrics", metrics.Default().Handler())

	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	log.Printf("serving on %s (role=%s, refresh=%v)", *addr, role, *refresh)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("dmfserve: %v", err)
	}
	// Wait for the trainer's shutdown checkpoint before exiting.
	<-trainerDone
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}
