package main

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// TestHealthReplySchema pins the /healthz wire schema: the exact key
// set a fully-populated reply renders, and the groups a minimal reply
// omits. Adding or renaming a field is a deliberate schema change —
// update healthReply's doc comment and this list together.
func TestHealthReplySchema(t *testing.T) {
	ms := int64(5)
	full := healthReply{
		Status: "ok",
		Role:   "cluster-trainer",
		Steps:  42,
		clusterHealth: &clusterHealth{
			TrainerID: 1, Incarnation: 2, Epoch: 3, Round: 4,
			Shards: 8, OwnedShards: 4,
			Owners: []uint32{0, 1}, Live: []uint32{0, 1}, ClockLag: 7,
		},
		replicaHealth:    &replicaHealth{LagSteps: 9, StaleShards: 1, SinceAdvanceMS: &ms},
		durabilityHealth: &durabilityHealth{CheckpointSteps: 40, WALLag: 2},
	}
	keys := jsonKeys(t, full)
	want := []string{
		"status", "role", "steps",
		"trainer_id", "incarnation", "epoch", "round", "shards",
		"owned_shards", "owners", "live", "clock_lag",
		"lag_steps", "stale_shards", "since_advance_ms",
		"checkpoint_steps", "wal_lag",
	}
	sort.Strings(want)
	if got := strings.Join(keys, ","); got != strings.Join(want, ",") {
		t.Errorf("full healthz keys = %v\nwant %v", keys, want)
	}

	// A standalone serving process exposes exactly the core triple: the
	// nil embedded group pointers must vanish from the wire.
	keys = jsonKeys(t, healthReply{Status: "ok", Role: "standalone", Steps: 1})
	if got := strings.Join(keys, ","); got != "role,status,steps" {
		t.Errorf("minimal healthz keys = %v, want [role status steps]", keys)
	}
}

// TestHealthReplyWALLagZero: a durable process with nothing to replay
// must still render "wal_lag":0 — the CI smokes grep for it.
func TestHealthReplyWALLagZero(t *testing.T) {
	b, err := json.Marshal(healthReply{
		Status: "ok", Role: "trainer", Steps: 10,
		durabilityHealth: &durabilityHealth{CheckpointSteps: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"wal_lag":0`) {
		t.Errorf("zero wal_lag not rendered: %s", b)
	}
}

// TestHealthReplySinceAdvanceOmitted: the only optional field inside a
// group is since_advance_ms (nil before the first applied delta).
func TestHealthReplySinceAdvanceOmitted(t *testing.T) {
	b, err := json.Marshal(healthReply{
		Status: "syncing", Role: "follower",
		replicaHealth: &replicaHealth{LagSteps: 3, StaleShards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "since_advance_ms") {
		t.Errorf("nil since_advance_ms rendered: %s", b)
	}
	if !strings.Contains(string(b), `"lag_steps":3`) {
		t.Errorf("lag_steps missing: %s", b)
	}
}

func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
