package main

import (
	"net/http"
	"time"

	"dmfsgd/internal/metrics"
)

// Serving-tier series (DESIGN.md §12). The label children are
// pre-registered here — one per hot endpoint — so the handler path
// observes through plain *Counter/*Histogram pointers: no map lookup,
// no label rendering, no allocation per request. The zero-alloc pin
// lives in handlers_metrics_test.go.
var (
	reqLatency = metrics.Default().HistogramVec("dmf_http_request_seconds",
		"Hot-endpoint request latency, handler entry to response written.",
		metrics.LatencyBuckets, "endpoint")
	respBytes = metrics.Default().HistogramVec("dmf_http_response_bytes",
		"Hot-endpoint response body size.",
		metrics.SizeBuckets, "endpoint")
	reqTotal = metrics.Default().CounterVec("dmf_http_requests_total",
		"Hot-endpoint requests handled (errors included).", "endpoint")
)

// endpointMetrics is one endpoint's pre-resolved series set.
type endpointMetrics struct {
	lat  *metrics.Histogram
	size *metrics.Histogram
	reqs *metrics.Counter
}

func endpoint(name string) *endpointMetrics {
	return &endpointMetrics{
		lat:  reqLatency.With(name),
		size: respBytes.With(name),
		reqs: reqTotal.With(name),
	}
}

var (
	epPredictGet  = endpoint("GET /predict")
	epPredictPost = endpoint("POST /predict")
	epRank        = endpoint("GET /rank")
)

// instrument wraps a hot handler with its endpoint's latency histogram
// and request counter. The closure is built once at mux registration;
// per request it performs only two atomic observations. Response size
// is observed inside the handler (writeSized), where the body length
// is known.
func instrument(ep *endpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Counted on entry, not exit: a scraper that saw the response go
		// by must also see it counted.
		ep.reqs.Inc()
		t0 := time.Now()
		h(w, r)
		ep.lat.Observe(time.Since(t0).Seconds())
	}
}
