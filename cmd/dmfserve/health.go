// The unified /healthz schema. Every dmfserve role — standalone
// trainer, cluster trainer, gossip source, read replica — answers
// /healthz with one healthReply; the optional field groups are embedded
// struct pointers that encoding/json omits entirely when nil, so the
// wire keys stay flat and each role exposes exactly the groups that
// apply to it. TestHealthReplySchema pins the field set.
package main

// healthReply is the /healthz response body.
//
//	status  "ok" once a serving snapshot exists, "syncing" before
//	        (a follower still bootstrapping answers 503 + "syncing")
//	role    standalone | trainer | cluster-trainer | follower
//	steps   updates folded into the serving snapshot (0 while syncing)
//
// The same quantities are exported as gauges on /metrics
// (dmf_serving_ready, dmf_serving_steps, dmf_wal_lag_steps, ...) from
// the same underlying state — /healthz is for humans and orchestration
// probes, /metrics for scrapers.
type healthReply struct {
	Status string `json:"status"`
	Role   string `json:"role"`
	Steps  int64  `json:"steps"`

	*clusterHealth
	*replicaHealth
	*durabilityHealth
}

// clusterHealth is present whenever the process has a trainer identity
// (-trainer-id), including the degenerate cluster of one on the legacy
// single-trainer path (where round stays 0 and every shard is owned
// locally).
type clusterHealth struct {
	TrainerID   uint32   `json:"trainer_id"`
	Incarnation uint32   `json:"incarnation"`
	Epoch       uint64   `json:"epoch"`
	Round       uint64   `json:"round"`
	Shards      int      `json:"shards"`
	OwnedShards int      `json:"owned_shards"`
	Owners      []uint32 `json:"owners"`
	Live        []uint32 `json:"live"`
	ClockLag    uint64   `json:"clock_lag"`
}

// replicaHealth is present when the replication tier is active (either
// side of gossip): how far the local mirror trails the freshest state
// it has heard of.
type replicaHealth struct {
	LagSteps    uint64 `json:"lag_steps"`
	StaleShards int    `json:"stale_shards"`
	// SinceAdvanceMS is nil until the first applied delta.
	SinceAdvanceMS *int64 `json:"since_advance_ms,omitempty"`
}

// durabilityHealth is present when -checkpoint is configured: wal_lag
// counts applied updates not yet covered by a durable checkpoint (they
// live only in the WAL or, without one, would retrain on restart).
type durabilityHealth struct {
	CheckpointSteps int64 `json:"checkpoint_steps"`
	WALLag          int64 `json:"wal_lag"`
}
