package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dmfsgd"
	"dmfsgd/internal/metrics"
)

// Allocation pins for the instrumented hot handlers: per-endpoint
// latency/size histograms and request counters must ride the request
// path for free. The ResponseWriter here is a reusable discard sink —
// httptest.ResponseRecorder allocates a body buffer per request, which
// would drown the signal.

type discardRW struct {
	h http.Header
}

func (d *discardRW) Header() http.Header         { return d.h }
func (d *discardRW) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardRW) WriteHeader(int)             {}

func testSnapshot(t *testing.T) *dmfsgd.Snapshot {
	t.Helper()
	ds := dmfsgd.NewMeridianDataset(60, 7)
	sess, err := dmfsgd.NewSession(ds, dmfsgd.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	return sess.Snapshot()
}

func TestInstrumentedHandlersZeroAllocs(t *testing.T) {
	snap := testSnapshot(t)
	load := func(w http.ResponseWriter) (*dmfsgd.Snapshot, bool) { return snap, true }
	w := &discardRW{h: make(http.Header)}

	get := instrument(epPredictGet, handlePredictGet(load))
	rGet := httptest.NewRequest("GET", "/predict?i=1&j=2", nil)
	get(w, rGet) // warm the scratch pool and the Content-Type slot
	if avg := testing.AllocsPerRun(300, func() { get(w, rGet) }); avg != 0 {
		t.Errorf("instrumented GET /predict: %v allocs/op, want 0", avg)
	}

	rank := instrument(epRank, handleRank(load))
	rRank := httptest.NewRequest("GET", "/rank?i=0&candidates=1,2,3,4,5", nil)
	rank(w, rRank)
	if avg := testing.AllocsPerRun(300, func() { rank(w, rRank) }); avg != 0 {
		t.Errorf("instrumented GET /rank: %v allocs/op, want 0", avg)
	}
}

// TestEndpointSeriesExposed: the pre-registered endpoint children show
// up in the exposition with their observations after a request flows
// through the instrumented handlers.
func TestEndpointSeriesExposed(t *testing.T) {
	snap := testSnapshot(t)
	load := func(w http.ResponseWriter) (*dmfsgd.Snapshot, bool) { return snap, true }
	get := instrument(epPredictGet, handlePredictGet(load))
	get(httptest.NewRecorder(), httptest.NewRequest("GET", "/predict?i=3&j=4", nil))

	rec := httptest.NewRecorder()
	metrics.Default().Handler()(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, series := range []string{
		`dmf_http_requests_total{endpoint="GET /predict"}`,
		`dmf_http_request_seconds_count{endpoint="GET /predict"}`,
		`dmf_http_response_bytes_count{endpoint="GET /predict"}`,
		`dmf_http_requests_total{endpoint="GET /rank"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("exposition Content-Type = %q", ct)
	}
}
