package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanPackage pins exit 0 on a clean package of the real tree.
func TestRunCleanPackage(t *testing.T) {
	code, err := run([]string{"./internal/analysis"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean package returned exit %d", code)
	}
}

// TestRunFindingsExitNonzero pins exit 1 when findings survive: a
// throwaway module whose only content is a malformed //dmf:allow
// directive (a finding in any package, no config needed).
func TestRunFindingsExitNonzero(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpfix\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "// Package tmpfix is a dmfvet exit-code fixture.\npackage tmpfix\n\n//dmf:allow detorder\nvar x int\n"
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	var out strings.Builder
	code, err := run(nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("tree with a finding returned exit %d; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "malformed //dmf:allow") {
		t.Errorf("finding not printed:\n%s", out.String())
	}
}

// TestResolveArgs pins the pattern grammar.
func TestResolveArgs(t *testing.T) {
	got, err := resolveArgs([]string{".", "./internal/wire", "dmfsgd/internal/ckpt", "internal/wire"}, "/r", "dmfsgd")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"dmfsgd", "dmfsgd/internal/wire", "dmfsgd/internal/ckpt"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := resolveArgs([]string{"../escape"}, "/r", "dmfsgd"); err == nil {
		t.Error("escaping pattern should be rejected")
	}
}
