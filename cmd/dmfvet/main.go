// Command dmfvet runs the project's static-analysis tier (DESIGN.md
// §13) over the module: determinism (detorder, noclock), metric-name
// hygiene (metricname), never-over-allocate decodes (wirebound), and
// the zero-alloc hot-path contract (zeroalloc).
//
// Usage:
//
//	go run ./cmd/dmfvet ./...
//	go run ./cmd/dmfvet ./internal/wire ./internal/ckpt
//
// Arguments are package directories relative to the module root;
// "./..." expands to every package in the module. Findings print one
// per line in file:line:col form and the exit status is 1 if any
// survive //dmf:allow suppression, so the command slots directly into
// CI.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dmfsgd/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run loads the requested packages, applies the suite, and writes
// findings to w. It returns 0 when the tree is clean, 1 when findings
// survive, and an error for load failures (exit 2 in main) — a package
// that fails to type-check must fail the build loudly, not pass
// silently.
func run(args []string, w io.Writer) (int, error) {
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	modRoot, modPath, err := analysis.FindModuleRoot(wd)
	if err != nil {
		return 0, err
	}
	paths, err := resolveArgs(args, modRoot, modPath)
	if err != nil {
		return 0, err
	}
	loader := analysis.NewLoader(modRoot, modPath)
	var pkgs []*analysis.Pkg
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return 0, fmt.Errorf("load %s: %w", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings := analysis.RunPackages(pkgs, analysis.DefaultConfig())
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Fprintln(w, rel.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(w, "dmfvet: %d finding(s)\n", len(findings))
		return 1, nil
	}
	return 0, nil
}

// resolveArgs turns command-line package patterns into module import
// paths. Supported forms: "./..." (whole module), "./dir" or "dir"
// (one package directory), and full import paths under the module.
func resolveArgs(args []string, modRoot, modPath string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, a := range args {
		switch {
		case a == "./..." || a == "...":
			all, err := analysis.ModulePackages(modRoot, modPath)
			if err != nil {
				return nil, err
			}
			for _, p := range all {
				add(p)
			}
		case a == "." || a == "./":
			add(modPath)
		case strings.HasPrefix(a, modPath):
			add(a)
		default:
			rel := strings.TrimPrefix(a, "./")
			rel = filepath.ToSlash(filepath.Clean(rel))
			if rel == "." {
				add(modPath)
				continue
			}
			if strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("package pattern %q escapes the module", a)
			}
			add(modPath + "/" + rel)
		}
	}
	return out, nil
}
