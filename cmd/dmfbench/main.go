// Command dmfbench regenerates the tables and figures of the paper's
// evaluation section (§6) from synthetic datasets and prints them as
// aligned ASCII tables.
//
// Usage:
//
//	dmfbench                  # run every experiment at default scale
//	dmfbench -exp fig5        # one experiment (see -list)
//	dmfbench -full            # paper-scale datasets (Meridian 2500 nodes)
//	dmfbench -seed 7          # different random universe
//
// The experiment IDs map one-to-one to the paper's tables and figures; see
// DESIGN.md §4 for the index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmfsgd/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID to run (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		full    = flag.Bool("full", false, "paper-scale datasets (slow: Meridian 2500 nodes)")
		quick   = flag.Bool("quick", false, "small datasets (fast smoke run)")
		seed    = flag.Int64("seed", 1, "random seed for all generators and runs")
		merN    = flag.Int("meridian-n", 0, "override Meridian node count")
		harN    = flag.Int("harvard-n", 0, "override Harvard node count")
		hpN     = flag.Int("hps3-n", 0, "override HP-S3 node count")
		harMeas = flag.Int("harvard-measurements", 0, "override Harvard trace length")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	opts := experiments.Default()
	if *full {
		opts = experiments.Full()
	}
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed
	if *merN > 0 {
		opts.MeridianN = *merN
	}
	if *harN > 0 {
		opts.HarvardN = *harN
	}
	if *hpN > 0 {
		opts.HPS3N = *hpN
	}
	if *harMeas > 0 {
		opts.HarvardMeasurements = *harMeas
	}

	bundle := experiments.NewBundle(opts)

	run := func(id string, fn func(*experiments.Bundle) []experiments.Table) {
		start := time.Now()
		tables := fn(bundle)
		fmt.Printf("== %s (%.1fs) ==\n\n", id, time.Since(start).Seconds())
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}

	if *exp == "all" {
		for _, e := range experiments.Registry() {
			run(e.ID, e.Run)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		fn, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "dmfbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		run(id, fn)
	}
}
