// Command dmfnode runs one DMFSGD node over real UDP: it joins a swarm
// through any known peer, discovers neighbors via the membership protocol,
// probes them periodically, and refines its coordinates from the replies.
//
// Start a bootstrap node, then join others to it:
//
//	dmfnode -id 1 -listen 127.0.0.1:9001
//	dmfnode -id 2 -listen 127.0.0.1:9002 -join 127.0.0.1:9001
//	dmfnode -id 3 -listen 127.0.0.1:9003 -join 127.0.0.1:9001
//
// Each node prints its status once per second: neighbor count, probes,
// updates, and its current coordinates' norm. RTTs are measured by wall
// clock (localhost RTTs are sub-millisecond, so with the default τ of
// 1ms everything on one machine classifies "good"; use -tau to
// experiment, or -delay-ms to have this node delay its replies and appear
// slow to its peers).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/member"
	"dmfsgd/internal/runtime"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/transport"
	"dmfsgd/internal/vec"
)

func main() {
	var (
		id       = flag.Uint("id", 0, "node ID (unique in the swarm, required)")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		join     = flag.String("join", "", "bootstrap peer address (empty = first node)")
		tau      = flag.Float64("tau", 1.0, "RTT classification threshold (ms)")
		rank     = flag.Int("rank", 10, "factorization rank r")
		eta      = flag.Float64("eta", 0.1, "SGD learning rate")
		lambda   = flag.Float64("lambda", 0.1, "regularization coefficient")
		k        = flag.Int("k", 32, "maximum neighbor count")
		interval = flag.Duration("interval", 100*time.Millisecond, "probe interval")
		delayMS  = flag.Float64("delay-ms", 0, "artificial reply delay in ms (simulates a slow node)")
		duration = flag.Duration("duration", 0, "exit after this long (0 = run until signal)")
	)
	flag.Parse()
	if *id == 0 {
		fmt.Fprintln(os.Stderr, "dmfnode: -id is required and must be nonzero")
		os.Exit(2)
	}

	udp, err := transport.ListenUDP(*listen)
	if err != nil {
		fatal(err)
	}
	defer udp.Close()

	var tr transport.Transport = udp
	if *delayMS > 0 {
		tr = &delayedTransport{Transport: udp, delay: time.Duration(*delayMS * float64(time.Millisecond))}
	}
	mux := member.NewMux(tr)

	cfg := sgd.Config{Rank: *rank, LearningRate: *eta, Lambda: *lambda, Loss: sgd.Defaults().Loss}
	node, err := runtime.NewNode(runtime.Config{
		ID:            uint32(*id),
		Metric:        dataset.RTT,
		SGD:           cfg,
		Tau:           *tau,
		Neighbors:     map[uint32]string{},
		ProbeInterval: *interval,
		AllowDynamic:  true,
		MaxNeighbors:  *k,
		Seed:          int64(*id),
	}, mux)
	if err != nil {
		fatal(err)
	}

	dir := member.NewDirectory(uint32(*id), mux, int64(*id))
	dir.OnPeer(func(p member.Peer) {
		if node.AddNeighbor(p.ID, p.Addr) {
			fmt.Printf("dmfnode: learned peer %d at %s\n", p.ID, p.Addr)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *duration > 0 {
		go func() {
			time.Sleep(*duration)
			cancel()
		}()
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case <-sig:
			cancel()
		case <-ctx.Done():
		}
	}()

	go dir.Run(ctx, 2*time.Second)
	if *join != "" {
		if err := dir.Join(*join); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("dmfnode: id=%d listening on %s (tau=%.2fms, rank=%d)\n", *id, udp.Addr(), *tau, *rank)

	go statusLoop(ctx, node)
	node.Run(ctx)
	st := node.Stats()
	fmt.Printf("dmfnode: done. probes=%d replies=%d updates=%d rejected=%d stale=%d decode-errors=%d\n",
		st.ProbesSent, st.RepliesReceived, st.Updates, st.Rejected, st.Stale, st.DecodeErrors)
}

func statusLoop(ctx context.Context, node *runtime.Node) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st := node.Stats()
			c := node.Coordinates()
			fmt.Printf("dmfnode: neighbors=%d probes=%d updates=%d |u|=%.3f |v|=%.3f\n",
				node.NeighborCount(), st.ProbesSent, st.Updates,
				vec.Norm2(c.U), vec.Norm2(c.V))
		}
	}
}

// delayedTransport delays outgoing probe replies so this node appears
// distant to its peers (wall-clock RTT measurement sees the delay).
type delayedTransport struct {
	transport.Transport
	delay time.Duration
}

func (d *delayedTransport) Send(to string, data []byte) error {
	time.Sleep(d.delay)
	return d.Transport.Send(to, data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmfnode:", err)
	os.Exit(1)
}
