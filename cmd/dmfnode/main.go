// Command dmfnode runs one DMFSGD node over real UDP: it joins a swarm
// through any known peer, discovers neighbors via the membership protocol,
// probes them periodically, and refines its coordinates from the replies.
//
// Start a bootstrap node, then join others to it:
//
//	dmfnode -id 1 -listen 127.0.0.1:9001
//	dmfnode -id 2 -listen 127.0.0.1:9002 -join 127.0.0.1:9001
//	dmfnode -id 3 -listen 127.0.0.1:9003 -join 127.0.0.1:9001
//
// Each node prints its status once per second: neighbor count, probes,
// updates, and its current coordinates' norm. RTTs are measured by wall
// clock (localhost RTTs are sub-millisecond, so with the default τ of
// 1ms everything on one machine classifies "good"; use -tau to
// experiment, or -delay-ms to have this node delay its replies and appear
// slow to its peers).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmfsgd/internal/ckpt"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/member"
	"dmfsgd/internal/metrics"
	"dmfsgd/internal/runtime"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/transport"
	"dmfsgd/internal/vec"
)

func main() {
	var (
		id       = flag.Uint("id", 0, "node ID (unique in the swarm, required)")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		join     = flag.String("join", "", "bootstrap peer address (empty = first node)")
		tau      = flag.Float64("tau", 1.0, "RTT classification threshold (ms)")
		rank     = flag.Int("rank", 10, "factorization rank r")
		eta      = flag.Float64("eta", 0.1, "SGD learning rate")
		lambda   = flag.Float64("lambda", 0.1, "regularization coefficient")
		k        = flag.Int("k", 32, "maximum neighbor count")
		interval = flag.Duration("interval", 100*time.Millisecond, "probe interval")
		delayMS  = flag.Float64("delay-ms", 0, "artificial reply delay in ms (simulates a slow node)")
		duration = flag.Duration("duration", 0, "exit after this long (0 = run until signal)")

		ckptPath  = flag.String("checkpoint", "", "coordinate checkpoint file: restored at startup (the node rejoins with warm coordinates instead of relearning), saved periodically and at exit via atomic rename")
		ckptEvery = flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint save period")

		metricsAddr = flag.String("metrics", "", "observability: expose GET /metrics (Prometheus text) and GET /healthz on this HTTP address, e.g. 127.0.0.1:6070; empty = off")
		tracePath   = flag.String("trace", "", "observability: append NDJSON trace events ("+metrics.TraceSchema+") to this file; empty = off")
	)
	flag.Parse()
	if *id == 0 {
		fmt.Fprintln(os.Stderr, "dmfnode: -id is required and must be nonzero")
		os.Exit(2)
	}

	if *tracePath != "" {
		tw, err := metrics.OpenTraceFile(*tracePath)
		if err != nil {
			fatal(err)
		}
		metrics.SetTrace(tw)
		defer tw.Close()
	}

	udp, err := transport.ListenUDP(*listen)
	if err != nil {
		fatal(err)
	}
	defer udp.Close()

	var tr transport.Transport = udp
	if *delayMS > 0 {
		tr = &delayedTransport{Transport: udp, delay: time.Duration(*delayMS * float64(time.Millisecond))}
	}
	mux := member.NewMux(tr)

	cfg := sgd.Config{Rank: *rank, LearningRate: *eta, Lambda: *lambda, Loss: sgd.Defaults().Loss}
	node, err := runtime.NewNode(runtime.Config{
		ID:            uint32(*id),
		Metric:        dataset.RTT,
		SGD:           cfg,
		Tau:           *tau,
		Neighbors:     map[uint32]string{},
		ProbeInterval: *interval,
		AllowDynamic:  true,
		MaxNeighbors:  *k,
		Seed:          int64(*id),
	}, mux)
	if err != nil {
		fatal(err)
	}

	// Durability: one node's state is its (U, V) pair — an n=1 checkpoint.
	// Restored before probing starts, so a restarted node serves and
	// refines warm coordinates instead of relearning from random init.
	// baseSteps carries the update history restored from a previous
	// checkpoint, so saves accumulate across restarts instead of
	// resetting the counter to this process's own update count.
	var baseSteps uint64
	saveCkpt := func() {
		if *ckptPath == "" {
			return
		}
		c := node.Coordinates()
		steps := baseSteps + uint64(node.Stats().Updates)
		err := ckpt.WriteFile(*ckptPath, &ckpt.Checkpoint{
			N: 1, Rank: *rank, Shards: 1,
			Steps: steps,
			Tau:   *tau, Eta: *eta, Lambda: *lambda,
			Metric: uint8(dataset.RTT),
			Vers:   []uint64{steps},
			U:      c.U, V: c.V,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmfnode: checkpoint save: %v\n", err)
		}
	}
	if *ckptPath != "" {
		c, err := ckpt.ReadFile(*ckptPath)
		switch {
		case err == nil:
			if c.N != 1 || c.Rank != *rank {
				fatal(fmt.Errorf("checkpoint %s holds n=%d rank=%d state, this node wants n=1 rank=%d", *ckptPath, c.N, c.Rank, *rank))
			}
			node.Ref().Set(&sgd.Coordinates{U: c.U, V: c.V})
			baseSteps = c.Steps
			fmt.Printf("dmfnode: coordinates restored from %s (%d updates of history)\n", *ckptPath, c.Steps)
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to restore.
		default:
			fatal(err)
		}
	}

	// Observability listener: the swarm node speaks UDP only, so /metrics
	// and /healthz get their own small HTTP endpoint. The node gauges are
	// GaugeFuncs over the same Stats() the status line prints.
	if *metricsAddr != "" {
		reg := metrics.Default()
		reg.GaugeFunc("dmf_node_neighbors",
			"Current neighbor count.",
			func() float64 { return float64(node.NeighborCount()) })
		reg.GaugeFunc("dmf_node_probes_sent",
			"Probes sent since start.",
			func() float64 { return float64(node.Stats().ProbesSent) })
		reg.GaugeFunc("dmf_node_updates",
			"Coordinate updates applied since start.",
			func() float64 { return float64(node.Stats().Updates) })
		hm := http.NewServeMux()
		hm.HandleFunc("GET /metrics", reg.Handler())
		hm.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			st := node.Stats()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"status\":\"ok\",\"id\":%d,\"neighbors\":%d,\"probes_sent\":%d,\"updates\":%d}\n",
				*id, node.NeighborCount(), st.ProbesSent, st.Updates)
		})
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dmfnode: metrics on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, hm)
	}

	dir := member.NewDirectory(uint32(*id), mux, int64(*id))
	dir.OnPeer(func(p member.Peer) {
		if node.AddNeighbor(p.ID, p.Addr) {
			fmt.Printf("dmfnode: learned peer %d at %s\n", p.ID, p.Addr)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *duration > 0 {
		go func() {
			time.Sleep(*duration)
			cancel()
		}()
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case <-sig:
			cancel()
		case <-ctx.Done():
		}
	}()

	go dir.Run(ctx, 2*time.Second)
	if *join != "" {
		if err := dir.Join(*join); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("dmfnode: id=%d listening on %s (tau=%.2fms, rank=%d)\n", *id, udp.Addr(), *tau, *rank)

	// The periodic saver is joined before the final shutdown save, so a
	// stale in-flight periodic capture cannot rename over it.
	saverDone := make(chan struct{})
	if *ckptPath != "" {
		go func() {
			defer close(saverDone)
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					saveCkpt()
				}
			}
		}()
	} else {
		close(saverDone)
	}

	go statusLoop(ctx, node)
	node.Run(ctx)
	cancel() // node.Run can also end by -duration; release the saver either way
	<-saverDone
	saveCkpt()
	st := node.Stats()
	fmt.Printf("dmfnode: done. probes=%d replies=%d updates=%d rejected=%d stale=%d decode-errors=%d\n",
		st.ProbesSent, st.RepliesReceived, st.Updates, st.Rejected, st.Stale, st.DecodeErrors)
}

func statusLoop(ctx context.Context, node *runtime.Node) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st := node.Stats()
			c := node.Coordinates()
			fmt.Printf("dmfnode: neighbors=%d probes=%d updates=%d |u|=%.3f |v|=%.3f\n",
				node.NeighborCount(), st.ProbesSent, st.Updates,
				vec.Norm2(c.U), vec.Norm2(c.V))
		}
	}
}

// delayedTransport delays outgoing probe replies so this node appears
// distant to its peers (wall-clock RTT measurement sees the delay).
type delayedTransport struct {
	transport.Transport
	delay time.Duration
}

func (d *delayedTransport) Send(to string, data []byte) error {
	time.Sleep(d.delay)
	return d.Transport.Send(to, data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmfnode:", err)
	os.Exit(1)
}
