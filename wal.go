package dmfsgd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"dmfsgd/internal/dataset"
)

// WALSource tees every measurement a source emits into an NDJSON
// write-ahead log before the session applies it — the durability half
// of the ingestion seam. Wrap the OUTERMOST layer of a source chain
// (the session consumes exactly what the WAL records, so decorators
// must sit underneath) and train as usual:
//
//	src, _ := dmfsgd.NewMatrixSource(ds, 0, seed)
//	wal, _ := os.OpenFile("train.wal", os.O_RDWR|os.O_CREATE, 0o644)
//	sess, _ := dmfsgd.NewSessionFromSource(ds, dmfsgd.WithWAL(src, wal), opts...)
//
// The session writes a commit barrier after every batch it applies
// (sequential chunk or epoch group), recording the step counter, the
// master-RNG position and the source-chain cursors at that point. A
// checkpoint (Session.Checkpoint / SaveCheckpoint) records the WAL
// sequence it covers and truncates the log at that barrier; on restart,
// ResumeSession restores the checkpoint and replays only the WAL tail —
// entries already folded into the checkpoint are skipped by sequence
// number, so replay at the barrier is idempotent. Measurements after
// the last commit (a torn tail — the crash interrupted their
// application) are discarded; the resumed source re-emits them
// deterministically.
//
// Once a WAL is attached, training refuses to outrun it: a failed log
// write aborts the run with ErrWAL rather than silently training
// unlogged measurements.
type WALSource struct {
	src Source
	w   io.Writer   // single-file (or arbitrary-sink) mode; nil in dir mode
	rot *walRotator // rotating-segment mode; nil in single-file mode

	seq       uint64 // measurements written to the log, ever
	commitSeq uint64 // sequence of the last commit barrier
	headered  bool   // current segment has its header line
	err       error  // sticky write failure
}

// WithWAL decorates src so every emitted measurement is appended to w
// before the consumer sees it. See WALSource for the full contract.
func WithWAL(src Source, w io.Writer) *WALSource {
	if src == nil || w == nil {
		panic("dmfsgd: WithWAL needs a source and a writer")
	}
	return &WALSource{src: src, w: w}
}

// DefaultWALSegmentBytes is the rotation threshold WithWALDir applies
// when the caller passes segmentBytes ≤ 0.
const DefaultWALSegmentBytes = 64 << 20

// WithWALDir decorates src with a rotating write-ahead log: NDJSON
// segments under dir (wal-000001.ndjson, wal-000002.ndjson, …), a new
// segment once the active one reaches segmentBytes, one header line per
// segment. Checkpoint barriers delete the covered segments outright
// instead of truncating one growing file, so long-running trainers keep
// bounded log footprint; resume replays the ordered segment chain
// (ResumeSession / CheckpointChain.Resume with a nil WAL reader).
//
// The directory belongs to the log: any segments already present are
// treated as the previous run's chain — a fresh (non-resume) run must
// start with an empty directory, or the leftover segments will
// contradict the new run at replay.
func WithWALDir(src Source, dir string, segmentBytes int64) (*WALSource, error) {
	if src == nil {
		panic("dmfsgd: WithWALDir needs a source")
	}
	if segmentBytes <= 0 {
		segmentBytes = DefaultWALSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: segment dir: %v", ErrWAL, err)
	}
	idxs, err := dataset.ListWALSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: segment dir: %v", ErrWAL, err)
	}
	rot := &walRotator{dir: dir, limit: segmentBytes, live: idxs}
	if len(idxs) > 0 {
		rot.index = idxs[len(idxs)-1]
	}
	return &WALSource{src: src, rot: rot}, nil
}

// walRotator manages the segment files of a dir-mode WAL: the active
// file with its byte count, the monotone segment index, and the set of
// segments currently on disk (for barrier compaction).
type walRotator struct {
	dir   string
	limit int64
	f     *os.File
	index int   // last segment index opened (monotone across barriers)
	size  int64 // bytes written to the active segment
	live  []int // segment indices currently on disk, ascending
}

// segPath names segment idx's file.
func (r *walRotator) segPath(idx int) string {
	return filepath.Join(r.dir, dataset.WALSegmentName(idx))
}

// roll returns the active segment's writer, opening the next segment
// first when there is none or the active one is full. fresh reports
// that a new segment started (the caller must re-header).
func (r *walRotator) roll() (w io.Writer, fresh bool, err error) {
	if r.f != nil && r.size < r.limit {
		return countingWriter{r}, false, nil
	}
	if r.f != nil {
		if err := r.f.Close(); err != nil {
			return nil, false, err
		}
		r.f = nil
	}
	f, err := os.OpenFile(r.segPath(r.index+1), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, false, err
	}
	r.index++
	r.f = f
	r.size = 0
	r.live = append(r.live, r.index)
	mWALSegments.Inc()
	return countingWriter{r}, true, nil
}

// reset deletes every live segment after a checkpoint barrier covered
// the whole log. The next append opens a fresh segment (at the next
// index — indices never rewind, so a crash can never confuse an old
// segment for a new one).
func (r *walRotator) reset() error {
	if r.f != nil {
		if err := r.f.Close(); err != nil {
			return err
		}
		r.f = nil
	}
	for _, idx := range r.live {
		if err := os.Remove(r.segPath(idx)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	r.live = nil
	r.size = 0
	return nil
}

// countingWriter tallies bytes into the rotator's active-segment size.
type countingWriter struct{ r *walRotator }

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.r.f.Write(p)
	cw.r.size += int64(n)
	return n, err
}

// Unwrap returns the decorated source.
func (ws *WALSource) Unwrap() Source { return ws.src }

// Seq returns the log's measurement sequence number: the count of
// measurements ever written (across truncations).
func (ws *WALSource) Seq() uint64 { return ws.seq }

// Sink returns the writer the log is appended to, or nil in dir
// (rotating-segment) mode, where the log manages its own files.
// Callers resuming from a single file use it to hand the same *os.File
// to ResumeSession as the replay reader, which lets resume truncate the
// discarded tail in place and continue appending; dir-mode resume finds
// and aligns the segment chain itself (pass a nil reader).
func (ws *WALSource) Sink() io.Writer { return ws.w }

// SegmentDir returns the rotating log's directory, or "" in
// single-file mode.
func (ws *WALSource) SegmentDir() string {
	if ws.rot != nil {
		return ws.rot.dir
	}
	return ""
}

// setSeq restores the log sequence on a fresh decorator (resume): the
// next segment header records it as the base, so sequence numbering
// continues across the restart. Deliberately NOT a CursorSource: the
// sequence travels in the checkpoint's WALSeq field and in every
// commit barrier, so the chain-shape contract stays the same whether
// or not a WAL is attached — a checkpoint from a WAL-attached session
// resumes into a chain without one (and vice versa).
func (ws *WALSource) setSeq(seq uint64) {
	ws.seq = seq
	ws.commitSeq = seq
}

// NextBatch pulls from the decorated source and logs what it got. A
// log-write failure is returned (wrapping ErrWAL) with n = 0: the
// fetched measurements are not handed to the consumer, so nothing
// unlogged trains. When the inner source reported a terminal condition
// (io.EOF, a decode error) in the same call, the two errors are joined
// rather than the source's being dropped — errors.Is finds both ErrWAL
// and the terminal error, so a consumer can still tell end-of-stream
// from mid-stream log failure.
func (ws *WALSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	if ws.err != nil {
		return 0, ws.err
	}
	n, err := ws.src.NextBatch(ctx, buf)
	if n > 0 {
		if werr := ws.append(buf[:n]); werr != nil {
			ws.err = werr
			if err != nil {
				return 0, errors.Join(werr, err)
			}
			return 0, werr
		}
	}
	return n, err
}

// loggable reports whether the WAL line format can represent m — the
// same validation the scanner enforces on read. Unrepresentable
// records (negative ids, self-pairs, non-finite fields) are exactly
// the ones no session ever applies, so omitting them from the log
// keeps it parseable without losing any applied measurement.
func loggable(m Measurement) bool {
	return m.I >= 0 && m.J >= 0 && m.I != m.J &&
		!math.IsNaN(m.T) && !math.IsInf(m.T, 0) &&
		!math.IsNaN(m.Value) && !math.IsInf(m.Value, 0)
}

// append writes one batch of measurement lines, opening the segment
// with a header line when needed. Records the line format cannot
// represent are dropped (see loggable); a hostile or buggy custom
// source must not be able to poison the log for the whole run.
func (ws *WALSource) append(ms []Measurement) error {
	keep := ms
	for i, m := range ms {
		if !loggable(m) {
			keep = make([]Measurement, 0, len(ms)-1)
			keep = append(keep, ms[:i]...)
			for _, rest := range ms[i+1:] {
				if loggable(rest) {
					keep = append(keep, rest)
				}
			}
			break
		}
	}
	if len(keep) == 0 {
		return nil
	}
	w := ws.w
	if ws.rot != nil {
		// Rotation happens only at batch boundaries, so a batch and the
		// commit that covers it land in the same segment (the commit may
		// trail measurements from an earlier segment — replay reads the
		// chain as one logical stream, so that is fine).
		nw, fresh, err := ws.rot.roll()
		if err != nil {
			return fmt.Errorf("%w: segment: %v", ErrWAL, err)
		}
		if fresh {
			ws.headered = false
		}
		w = nw
	}
	if !ws.headered {
		if err := dataset.WriteWALHeader(w, ws.seq); err != nil {
			return fmt.Errorf("%w: header: %v", ErrWAL, err)
		}
		ws.headered = true
	}
	if err := dataset.WriteStream(w, keep); err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	ws.seq += uint64(len(keep))
	mWALRecords.Add(uint64(len(keep)))
	return nil
}

// commit writes a barrier covering every measurement logged so far.
// The session calls it after applying (or, for Skip barriers,
// discarding) each batch; a no-op when nothing was logged since the
// last barrier.
func (ws *WALSource) commit(c dataset.WALCommit) error {
	if ws.err != nil {
		return ws.err
	}
	if ws.seq == ws.commitSeq {
		return nil
	}
	c.Seq = ws.seq
	w := ws.w
	if ws.rot != nil {
		// seq > commitSeq implies an append opened the active segment.
		w = countingWriter{ws.rot}
	}
	if err := dataset.WriteWALCommit(w, c); err != nil {
		ws.err = fmt.Errorf("%w: commit: %v", ErrWAL, err)
		return ws.err
	}
	ws.commitSeq = ws.seq
	mWALCommits.Inc()
	return nil
}

// walTruncater is what a WAL sink must additionally implement for
// truncate-at-barrier to apply (an *os.File does).
type walTruncater interface {
	io.Writer
	io.Seeker
	Truncate(size int64) error
}

// truncateBarrier empties the log after a durable checkpoint captured
// everything in it. In dir mode the fully-covered segment files are
// deleted outright. On single-file sinks that cannot truncate (a pipe,
// a plain buffer) it is a no-op — replay skips the already-covered
// entries by sequence number, so an untruncated log stays correct, just
// longer.
func (ws *WALSource) truncateBarrier() error {
	if ws.err != nil {
		return ws.err
	}
	if ws.rot != nil {
		if err := ws.rot.reset(); err != nil {
			return fmt.Errorf("%w: segment compaction: %v", ErrWAL, err)
		}
		ws.headered = false
		return nil
	}
	tw, ok := ws.w.(walTruncater)
	if !ok {
		return nil
	}
	if err := tw.Truncate(0); err != nil {
		return fmt.Errorf("%w: truncate: %v", ErrWAL, err)
	}
	if _, err := tw.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("%w: truncate seek: %v", ErrWAL, err)
	}
	// The next append opens a fresh segment whose header carries the
	// current sequence as its base.
	ws.headered = false
	return nil
}
