package dmfsgd

import (
	"context"
	"fmt"
	"io"
	"math"

	"dmfsgd/internal/dataset"
)

// WALSource tees every measurement a source emits into an NDJSON
// write-ahead log before the session applies it — the durability half
// of the ingestion seam. Wrap the OUTERMOST layer of a source chain
// (the session consumes exactly what the WAL records, so decorators
// must sit underneath) and train as usual:
//
//	src, _ := dmfsgd.NewMatrixSource(ds, 0, seed)
//	wal, _ := os.OpenFile("train.wal", os.O_RDWR|os.O_CREATE, 0o644)
//	sess, _ := dmfsgd.NewSessionFromSource(ds, dmfsgd.WithWAL(src, wal), opts...)
//
// The session writes a commit barrier after every batch it applies
// (sequential chunk or epoch group), recording the step counter, the
// master-RNG position and the source-chain cursors at that point. A
// checkpoint (Session.Checkpoint / SaveCheckpoint) records the WAL
// sequence it covers and truncates the log at that barrier; on restart,
// ResumeSession restores the checkpoint and replays only the WAL tail —
// entries already folded into the checkpoint are skipped by sequence
// number, so replay at the barrier is idempotent. Measurements after
// the last commit (a torn tail — the crash interrupted their
// application) are discarded; the resumed source re-emits them
// deterministically.
//
// Once a WAL is attached, training refuses to outrun it: a failed log
// write aborts the run with ErrWAL rather than silently training
// unlogged measurements.
type WALSource struct {
	src Source
	w   io.Writer

	seq       uint64 // measurements written to the log, ever
	commitSeq uint64 // sequence of the last commit barrier
	headered  bool   // current segment has its header line
	err       error  // sticky write failure
}

// WithWAL decorates src so every emitted measurement is appended to w
// before the consumer sees it. See WALSource for the full contract.
func WithWAL(src Source, w io.Writer) *WALSource {
	if src == nil || w == nil {
		panic("dmfsgd: WithWAL needs a source and a writer")
	}
	return &WALSource{src: src, w: w}
}

// Unwrap returns the decorated source.
func (ws *WALSource) Unwrap() Source { return ws.src }

// Seq returns the log's measurement sequence number: the count of
// measurements ever written (across truncations).
func (ws *WALSource) Seq() uint64 { return ws.seq }

// Sink returns the writer the log is appended to. Callers resuming
// from a file use it to hand the same *os.File to ResumeSession as the
// replay reader, which lets resume truncate the discarded tail in
// place and continue appending.
func (ws *WALSource) Sink() io.Writer { return ws.w }

// setSeq restores the log sequence on a fresh decorator (resume): the
// next segment header records it as the base, so sequence numbering
// continues across the restart. Deliberately NOT a CursorSource: the
// sequence travels in the checkpoint's WALSeq field and in every
// commit barrier, so the chain-shape contract stays the same whether
// or not a WAL is attached — a checkpoint from a WAL-attached session
// resumes into a chain without one (and vice versa).
func (ws *WALSource) setSeq(seq uint64) {
	ws.seq = seq
	ws.commitSeq = seq
}

// NextBatch pulls from the decorated source and logs what it got. A
// log-write failure is returned (wrapping ErrWAL) with n = 0: the
// fetched measurements are not handed to the consumer, so nothing
// unlogged trains.
func (ws *WALSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	if ws.err != nil {
		return 0, ws.err
	}
	n, err := ws.src.NextBatch(ctx, buf)
	if n > 0 {
		if werr := ws.append(buf[:n]); werr != nil {
			ws.err = werr
			return 0, werr
		}
	}
	return n, err
}

// loggable reports whether the WAL line format can represent m — the
// same validation the scanner enforces on read. Unrepresentable
// records (negative ids, self-pairs, non-finite fields) are exactly
// the ones no session ever applies, so omitting them from the log
// keeps it parseable without losing any applied measurement.
func loggable(m Measurement) bool {
	return m.I >= 0 && m.J >= 0 && m.I != m.J &&
		!math.IsNaN(m.T) && !math.IsInf(m.T, 0) &&
		!math.IsNaN(m.Value) && !math.IsInf(m.Value, 0)
}

// append writes one batch of measurement lines, opening the segment
// with a header line when needed. Records the line format cannot
// represent are dropped (see loggable); a hostile or buggy custom
// source must not be able to poison the log for the whole run.
func (ws *WALSource) append(ms []Measurement) error {
	keep := ms
	for i, m := range ms {
		if !loggable(m) {
			keep = make([]Measurement, 0, len(ms)-1)
			keep = append(keep, ms[:i]...)
			for _, rest := range ms[i+1:] {
				if loggable(rest) {
					keep = append(keep, rest)
				}
			}
			break
		}
	}
	if len(keep) == 0 {
		return nil
	}
	if !ws.headered {
		if err := dataset.WriteWALHeader(ws.w, ws.seq); err != nil {
			return fmt.Errorf("%w: header: %v", ErrWAL, err)
		}
		ws.headered = true
	}
	if err := dataset.WriteStream(ws.w, keep); err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	ws.seq += uint64(len(keep))
	mWALRecords.Add(uint64(len(keep)))
	return nil
}

// commit writes a barrier covering every measurement logged so far.
// The session calls it after applying (or, for Skip barriers,
// discarding) each batch; a no-op when nothing was logged since the
// last barrier.
func (ws *WALSource) commit(c dataset.WALCommit) error {
	if ws.err != nil {
		return ws.err
	}
	if ws.seq == ws.commitSeq {
		return nil
	}
	c.Seq = ws.seq
	if err := dataset.WriteWALCommit(ws.w, c); err != nil {
		ws.err = fmt.Errorf("%w: commit: %v", ErrWAL, err)
		return ws.err
	}
	ws.commitSeq = ws.seq
	mWALCommits.Inc()
	return nil
}

// walTruncater is what a WAL sink must additionally implement for
// truncate-at-barrier to apply (an *os.File does).
type walTruncater interface {
	io.Writer
	io.Seeker
	Truncate(size int64) error
}

// truncateBarrier empties the log after a durable checkpoint captured
// everything in it. On sinks that cannot truncate (a pipe, a plain
// buffer) it is a no-op — replay skips the already-covered entries by
// sequence number, so an untruncated log stays correct, just longer.
func (ws *WALSource) truncateBarrier() error {
	if ws.err != nil {
		return ws.err
	}
	tw, ok := ws.w.(walTruncater)
	if !ok {
		return nil
	}
	if err := tw.Truncate(0); err != nil {
		return fmt.Errorf("%w: truncate: %v", ErrWAL, err)
	}
	if _, err := tw.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("%w: truncate seek: %v", ErrWAL, err)
	}
	// The next append opens a fresh segment whose header carries the
	// current sequence as its base.
	ws.headered = false
	return nil
}
