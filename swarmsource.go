package dmfsgd

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"dmfsgd/internal/dataset"
)

// SwarmSource captures the measurement stream of a live session: every
// RTT a swarm node measures is timestamped (seconds since the swarm
// started) and buffered for NextBatch. It is the capture half of the
// replay story — write what it observes with WriteMeasurements and a
// live run becomes a deterministic NDJSON replay (NewStreamSource)
// that any deterministic session, benchmark or regression test can
// consume:
//
//	sess, _ := dmfsgd.NewSession(ds, dmfsgd.WithLive())
//	cap, _ := dmfsgd.NewSwarmSource(sess, 0)
//	defer cap.Close()
//	buf := make([]dmfsgd.Measurement, 1024)
//	n, _ := cap.NextBatch(ctx, buf)        // blocks for live probes
//	_ = dmfsgd.WriteMeasurements(w, buf[:n])
//
// The tap is lossy by design: a reader that falls behind the probe rate
// loses the oldest unread measurements (Dropped counts them) rather
// than stalling the swarm. The stream ends with io.EOF when the session
// closes. ABW sessions are rejected: Algorithm 2 targets infer classes
// and no bandwidth quantity ever exists on the wire, so there is
// nothing to capture.
type SwarmSource struct {
	sess    *Session
	ch      chan Measurement
	detach  func()
	dropped atomic.Int64
}

// NewSwarmSource taps a live session's measurement stream. buffer is
// the capture buffer size in measurements (0 = 4096); at most one tap
// is active per session — a new one replaces the previous. Returns an
// error wrapping ErrInvalidConfig for deterministic sessions (their
// sources are already replayable) and for ABW sessions.
func NewSwarmSource(s *Session, buffer int) (*SwarmSource, error) {
	if s == nil || s.swarm == nil {
		return nil, fmt.Errorf("%w: swarm capture needs a live session (WithLive)", ErrInvalidConfig)
	}
	if s.Metric() != RTT {
		return nil, fmt.Errorf("%w: ABW swarms exchange classes, not quantities; there is no stream to capture", ErrInvalidConfig)
	}
	if buffer <= 0 {
		buffer = 4096
	}
	ss := &SwarmSource{sess: s, ch: make(chan Measurement, buffer)}
	ss.detach = s.swarm.Observe(func(m dataset.Measurement) {
		select {
		case ss.ch <- m:
		default:
			// Reader behind: drop the measurement, never block a node.
			ss.dropped.Add(1)
		}
	})
	return ss, nil
}

// Dropped returns how many measurements were lost because the reader
// fell behind the probe rate.
func (ss *SwarmSource) Dropped() int64 { return ss.dropped.Load() }

// NextBatch blocks until at least one captured measurement is
// available (or ctx is cancelled, or the session closes — io.EOF once
// the remaining buffer is drained), then greedily drains up to
// len(buf) buffered measurements without blocking further.
func (ss *SwarmSource) NextBatch(ctx context.Context, buf []Measurement) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	select {
	case m := <-ss.ch:
		buf[0] = m
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-ss.sess.done:
		// Session closed: drain what was already captured, then EOF.
		select {
		case m := <-ss.ch:
			buf[0] = m
		default:
			return 0, io.EOF
		}
	}
	filled := 1
	for filled < len(buf) {
		select {
		case m := <-ss.ch:
			buf[filled] = m
			filled++
		default:
			return filled, nil
		}
	}
	return filled, nil
}

// Close detaches the tap from the swarm (a no-op if a newer tap has
// already replaced it — closing a stale tap never silences the active
// one). Buffered measurements remain readable; the stream then reports
// io.EOF once the session closes.
func (ss *SwarmSource) Close() { ss.detach() }
