// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment, quick-scale datasets) plus the ablation studies from
// DESIGN.md §5. Each benchmark measures the wall-clock cost of the full
// experiment and, where a single quality number is meaningful, reports it
// via b.ReportMetric (auc, accuracy, stretch).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The printable tables themselves come from cmd/dmfbench; these benches
// exist so `go test -bench` exercises every experiment end-to-end.
package dmfsgd_test

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dmfsgd"
	"dmfsgd/internal/batch"
	"dmfsgd/internal/ckpt"
	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/engine"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/experiments"
	"dmfsgd/internal/loss"
	"dmfsgd/internal/multiclass"
	"dmfsgd/internal/replica"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
	"dmfsgd/internal/wire"
)

// percentileOf computes a percentile over a copy of vals.
func percentileOf(vals []float64, p float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

var (
	benchBundleOnce sync.Once
	benchBundle     *experiments.Bundle
)

// bundle returns the shared quick-scale dataset bundle. Dataset generation
// happens once, outside any timed region.
func bundle(b *testing.B) *experiments.Bundle {
	benchBundleOnce.Do(func() {
		benchBundle = experiments.NewBundle(experiments.Quick())
		benchBundle.Harvard()
		benchBundle.Meridian()
		benchBundle.HPS3()
	})
	return benchBundle
}

// lastCell parses the last column of the last row of a table as a float —
// the convention all experiment tables follow for their "final" value.
func lastCell(b *testing.B, t experiments.Table) float64 {
	row := t.Rows[len(t.Rows)-1]
	s := strings.TrimSuffix(row[len(row)-1], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func BenchmarkFigure1(b *testing.B) {
	bb := bundle(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := experiments.Figure1(bb)
		if len(tables[0].Rows) != 20 {
			b.Fatal("unexpected spectrum length")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure3(bb)
	}
}

func BenchmarkFigure4a(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure4a(bb)
	}
}

func BenchmarkFigure4b(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure4b(bb)
	}
}

func BenchmarkFigure4c(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure4c(bb)
	}
}

func BenchmarkFigure5(b *testing.B) {
	bb := bundle(b)
	var finalAUC float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := experiments.Figure5(bb)
		finalAUC = lastCell(b, tables[2]) // hp-s3 AUC at 50×k
	}
	b.ReportMetric(finalAUC, "auc")
}

func BenchmarkFigure6(b *testing.B) {
	bb := bundle(b)
	var auc15 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := experiments.Figure6(bb)
		auc15 = lastCell(b, tables[0]) // harvard, good-to-bad at 15%
	}
	b.ReportMetric(auc15, "auc-at-15pct-errors")
}

func BenchmarkFigure7(b *testing.B) {
	bb := bundle(b)
	var noisyUnsat float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := experiments.Figure7(bb)
		noisyUnsat = lastCell(b, tables[1]) // harvard satisfaction, noisy cls
	}
	b.ReportMetric(noisyUnsat, "unsat-pct")
}

func BenchmarkTable1(b *testing.B) {
	bb := bundle(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1(bb)
	}
}

func BenchmarkTable2(b *testing.B) {
	bb := bundle(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table2(bb)
	}
}

func BenchmarkTable3(b *testing.B) {
	bb := bundle(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table3(bb)
	}
}

// --- Ablations (DESIGN.md §5) ---

// ablationAUC trains one spec on Meridian and reports the test AUC.
func ablationAUC(b *testing.B, mutate func(*experiments.RunSpec)) {
	bb := bundle(b)
	ds := bb.Meridian()
	var auc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := experiments.RunSpec{DS: ds, Seed: int64(i)}
		if mutate != nil {
			mutate(&spec)
		}
		drv, err := bb.Train(spec)
		if err != nil {
			b.Fatal(err)
		}
		auc = drv.AUCSample(bb.O.EvalPairs)
	}
	b.ReportMetric(auc, "auc")
}

func BenchmarkAblationLossLogistic(b *testing.B) {
	ablationAUC(b, nil)
}

func BenchmarkAblationLossHinge(b *testing.B) {
	ablationAUC(b, func(s *experiments.RunSpec) {
		s.SGD = simDefaults()
		s.SGD.Loss = loss.Hinge
	})
}

func BenchmarkAblationLossL2OnClasses(b *testing.B) {
	ablationAUC(b, func(s *experiments.RunSpec) {
		s.SGD = simDefaults()
		s.SGD.Loss = loss.L2
	})
}

func BenchmarkAblationLambdaZero(b *testing.B) {
	ablationAUC(b, func(s *experiments.RunSpec) {
		s.SGD = simDefaults()
		s.SGD.Lambda = 0
		s.SGD.MaxCoord = 1e6
	})
}

func BenchmarkAblationSymmetry(b *testing.B) {
	ablationAUC(b, func(s *experiments.RunSpec) { s.ForceAsymmetric = true })
}

func BenchmarkAblationClassVsQuantity(b *testing.B) {
	// Quantity-based training at the same budget; AUC computed by the
	// ablation table (rank direction corrected there), so here we report
	// the run cost plus raw driver AUC on negated scores.
	bb := bundle(b)
	ds := bb.Meridian()
	var auc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := experiments.RunSpec{DS: ds, Quantity: true, Seed: int64(i)}
		spec.SGD = simDefaults()
		spec.SGD.Loss = loss.L2
		drv, err := bb.Train(spec)
		if err != nil {
			b.Fatal(err)
		}
		labels, scores := drv.EvalSet(bb.O.EvalPairs)
		for k := range scores {
			scores[k] = -scores[k] // RTT: low quantity = good
		}
		auc = aucOf(labels, scores)
	}
	b.ReportMetric(auc, "auc")
}

func BenchmarkBaselineVivaldi(b *testing.B) {
	bb := bundle(b)
	var tbl []experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = experiments.Ablations(bb)
	}
	b.ReportMetric(lastCell(b, tbl[0]), "vivaldi-auc")
}

func BenchmarkConsensusFilter(b *testing.B) {
	bb := bundle(b)
	var plain, filtered float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain, filtered = experiments.ConsensusAblation(bb, 0.30, 9)
	}
	b.ReportMetric(plain, "auc-unfiltered")
	b.ReportMetric(filtered, "auc-filtered")
}

func BenchmarkDynamicsTracking(b *testing.B) {
	bb := bundle(b)
	var recovered float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := experiments.DynamicsTracking(bb)
		recovered = lastCell(b, tables[0]) // AUC vs new truth at the end
	}
	b.ReportMetric(recovered, "auc-after-recovery")
}

func BenchmarkMulticlass(b *testing.B) {
	bb := bundle(b)
	ds := bb.Meridian()
	vals := ds.Values()
	cfg := multiclass.Config{
		SGD: sgd.Defaults(),
		Thresholds: []float64{
			percentileOf(vals, 25), percentileOf(vals, 50), percentileOf(vals, 75),
		},
		Metric: ds.Metric,
	}
	var exact float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := multiclass.RunSim(ds, cfg, bb.K(ds), 20, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		exact = res.Accuracy.Exact
	}
	b.ReportMetric(exact, "exact-accuracy")
}

func BenchmarkCentralizedBaseline(b *testing.B) {
	// Cost of the centralized architecture the paper decentralizes
	// (§4.3): full batch factorization over the same observed entries.
	bb := bundle(b)
	ds := bb.Meridian()
	labels := classify.Matrix(ds, ds.Median())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := batch.Defaults()
		cfg.Seed = int64(i)
		if _, err := batch.Fit(labels, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core protocol micro-benchmarks ---

func BenchmarkProtocolStepRTT(b *testing.B) {
	bb := bundle(b)
	ds := bb.Meridian()
	drv, err := bb.Train(experiments.RunSpec{DS: ds, BudgetPerNode: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.Step()
	}
}

func BenchmarkProtocolStepABW(b *testing.B) {
	bb := bundle(b)
	ds := bb.HPS3()
	drv, err := bb.Train(experiments.RunSpec{DS: ds, BudgetPerNode: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.Step()
	}
}

// --- Engine benchmarks (sharded parallel epoch training + evaluation) ---
//
// These track the perf trajectory of the internal/engine layer at
// Meridian scale: the same epoch budget and the same evaluation sweep at
// shard counts 1/4/8. On a multi-core host the 4- and 8-shard variants
// must beat the single shard; results are bit-identical across shard
// counts at fixed seed, so quality never enters the comparison.

var (
	benchMeridianMu sync.Mutex
	benchMeridian   = map[int]*dataset.Dataset{}
)

// meridianSized returns a cached Meridian dataset with n nodes (generated
// once per process, outside any timed region).
func meridianSized(n int) *dataset.Dataset {
	benchMeridianMu.Lock()
	defer benchMeridianMu.Unlock()
	ds, ok := benchMeridian[n]
	if !ok {
		ds = dataset.Meridian(dataset.MeridianConfig{N: n, Seed: 1})
		benchMeridian[n] = ds
	}
	return ds
}

// engineDriver builds a Meridian class driver with the given parallelism.
func engineDriver(b *testing.B, n, shards int) *sim.Driver {
	b.Helper()
	ds := meridianSized(n)
	drv, err := sim.ClassDriver(ds, ds.Median(), sim.Config{
		SGD:     sgd.Defaults(),
		K:       32,
		Shards:  shards,
		Workers: shards,
		Seed:    1,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return drv
}

// benchEngineEpoch measures one full training epoch (32 probes per node)
// across the shard pool.
func benchEngineEpoch(b *testing.B, n, shards int) {
	drv := engineDriver(b, n, shards)
	drv.RunEpochs(1, 1) // warm the per-node RNG streams and snapshot buffers
	warm := drv.Steps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.RunEpochs(1, 32)
	}
	b.ReportMetric(float64(drv.Steps()-warm)/b.Elapsed().Seconds(), "updates/s")
}

func BenchmarkEngineEpochMeridian1000Shards1(b *testing.B) { benchEngineEpoch(b, 1000, 1) }
func BenchmarkEngineEpochMeridian1000Shards4(b *testing.B) { benchEngineEpoch(b, 1000, 4) }
func BenchmarkEngineEpochMeridian1000Shards8(b *testing.B) { benchEngineEpoch(b, 1000, 8) }
func BenchmarkEngineEpochMeridian2500Shards1(b *testing.B) { benchEngineEpoch(b, 2500, 1) }
func BenchmarkEngineEpochMeridian2500Shards4(b *testing.B) { benchEngineEpoch(b, 2500, 4) }
func BenchmarkEngineEpochMeridian2500Shards8(b *testing.B) { benchEngineEpoch(b, 2500, 8) }

// benchEngineEval measures one full evaluation sweep (label + score for
// every held-out pair, block-parallel) after a single training epoch.
func benchEngineEval(b *testing.B, n, shards int) {
	drv := engineDriver(b, n, shards)
	drv.RunEpochs(1, 32)
	b.ReportAllocs()
	b.ResetTimer()
	var pairs int
	for i := 0; i < b.N; i++ {
		labels, _ := drv.EvalSet(0)
		pairs = len(labels)
	}
	b.ReportMetric(float64(pairs)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

func BenchmarkEngineEvalMeridian1000Workers1(b *testing.B) { benchEngineEval(b, 1000, 1) }
func BenchmarkEngineEvalMeridian1000Workers4(b *testing.B) { benchEngineEval(b, 1000, 4) }
func BenchmarkEngineEvalMeridian1000Workers8(b *testing.B) { benchEngineEval(b, 1000, 8) }
func BenchmarkEngineEvalMeridian2500Workers1(b *testing.B) { benchEngineEval(b, 2500, 1) }
func BenchmarkEngineEvalMeridian2500Workers4(b *testing.B) { benchEngineEval(b, 2500, 4) }
func BenchmarkEngineEvalMeridian2500Workers8(b *testing.B) { benchEngineEval(b, 2500, 8) }

// --- Snapshot serving benchmarks (PredictBatch / Rank throughput) ---
//
// The serving path of the Session API: an immutable Snapshot answers
// batch predictions and peer rankings with zero lock acquisitions, so
// throughput must scale with reader goroutines until memory bandwidth.
// These join the engine benchmarks as the perf trajectory of the serving
// tier (pairs/s and ranked candidates/s at 1/4/8 concurrent readers).

var (
	servingSnapOnce sync.Once
	servingSnap     *dmfsgd.Snapshot
)

// snapshotForServing trains one Meridian-1000 session with the parallel
// epoch engine and freezes it (done once, outside every timed region).
func snapshotForServing(b *testing.B) *dmfsgd.Snapshot {
	b.Helper()
	servingSnapOnce.Do(func() {
		ds := meridianSized(1000)
		sess, err := dmfsgd.NewSession(ds,
			dmfsgd.WithK(32),
			dmfsgd.WithShards(8),
			dmfsgd.WithSeed(1),
		)
		if err != nil {
			panic(err)
		}
		defer sess.Close()
		if _, err := sess.RunEpochs(context.Background(), 20, 32); err != nil {
			panic(err)
		}
		servingSnap = sess.Snapshot()
	})
	return servingSnap
}

// benchSnapshotPredictBatch measures batch-prediction throughput with the
// given number of concurrent reader goroutines, each scoring its own
// random pair batch into a caller-owned buffer (no allocations, no
// locks — contention can only come from the memory system).
func benchSnapshotPredictBatch(b *testing.B, readers int) {
	snap := snapshotForServing(b)
	const batchLen = 8192
	pairs := make([][]dmfsgd.PathPair, readers)
	scores := make([][]float64, readers)
	for r := range pairs {
		rng := rand.New(rand.NewSource(int64(r + 1)))
		pairs[r] = make([]dmfsgd.PathPair, batchLen)
		for k := range pairs[r] {
			pairs[r][k] = dmfsgd.PathPair{I: rng.Intn(snap.N()), J: rng.Intn(snap.N())}
		}
		scores[r] = make([]float64, batchLen)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				snap.PredictBatch(pairs[r], scores[r])
			}(r)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.N)*float64(readers)*batchLen/b.Elapsed().Seconds(), "pairs/s")
}

func BenchmarkSnapshotPredictBatchReaders1(b *testing.B) { benchSnapshotPredictBatch(b, 1) }
func BenchmarkSnapshotPredictBatchReaders4(b *testing.B) { benchSnapshotPredictBatch(b, 4) }
func BenchmarkSnapshotPredictBatchReaders8(b *testing.B) { benchSnapshotPredictBatch(b, 8) }

// benchSnapshotRank measures the §6.4 peer-ranking primitive: each reader
// repeatedly ranks a 256-candidate set for a rotating source node.
func benchSnapshotRank(b *testing.B, readers int) {
	snap := snapshotForServing(b)
	const candidateCount = 256
	candidates := make([][]int, readers)
	for r := range candidates {
		rng := rand.New(rand.NewSource(int64(100 + r)))
		candidates[r] = make([]int, candidateCount)
		for k := range candidates[r] {
			candidates[r][k] = rng.Intn(snap.N())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				snap.Rank((i+r)%snap.N(), candidates[r])
			}(r)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.N)*float64(readers)*candidateCount/b.Elapsed().Seconds(), "candidates/s")
}

func BenchmarkSnapshotRankReaders1(b *testing.B) { benchSnapshotRank(b, 1) }
func BenchmarkSnapshotRankReaders4(b *testing.B) { benchSnapshotRank(b, 4) }
func BenchmarkSnapshotRankReaders8(b *testing.B) { benchSnapshotRank(b, 8) }

// BenchmarkEvalPairCache measures the cached evaluation sweep: after the
// first call the ~n² pair list AND the ±1 label list are reused, so
// per-call allocations drop from ~150MB (Meridian-2500 scale) to the
// score output only.
func BenchmarkEvalPairCache(b *testing.B) {
	drv := engineDriver(b, 1000, 4)
	drv.RunEpochs(1, 8)
	drv.EvalSet(0) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.EvalSet(0)
	}
}

// --- Replication tier benchmarks (delta vs full snapshot refresh) ---
//
// The follower refresh path of internal/replica at Meridian-2500 scale:
// decode an inbound wire.Delta and materialize the next immutable state.
// The delta variant ships and re-attaches one advanced shard of eight and
// shares the other seven blocks; the full variant rebuilds everything (the
// PR 2 behavior, and still the bootstrap cost). On any host the delta
// refresh must move ~1/8 of the bytes and allocations of the full one.

// replicaBenchSetup builds a 2500-node 8-shard state, advances one shard,
// and returns the base state plus the encoded delta and full refreshes.
func replicaBenchSetup(b *testing.B) (base *replica.State, deltaBuf, fullBuf []byte) {
	b.Helper()
	const n, rank, shards = 2500, 10, 8
	store := engine.NewStore(n, rank, shards)
	store.InitUniform(rand.New(rand.NewSource(1)))
	capture := func(prev *replica.State, steps uint64) *replica.State {
		u, v := store.SnapshotFlat()
		st, err := replica.Update(prev, n, rank, shards,
			replica.Meta{Steps: steps, Tau: 50}, store.Versions(nil), u, v)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	base = capture(nil, 1)
	// Advance shard 3 only, as a quiet serving tier between refreshes would.
	store.Ref(3).Update(func(c *sgd.Coordinates) bool { c.U[0] += 0.5; return true })
	next := capture(base, 2)
	var err error
	if deltaBuf, err = wire.AppendDelta(nil, next.DeltaFor(1, []uint16{3})); err != nil {
		b.Fatal(err)
	}
	all := make([]uint16, shards)
	for p := range all {
		all[p] = uint16(p)
	}
	if fullBuf, err = wire.AppendDelta(nil, next.DeltaFor(1, all)); err != nil {
		b.Fatal(err)
	}
	return base, deltaBuf, fullBuf
}

func BenchmarkSnapshotDeltaRefresh(b *testing.B) {
	base, deltaBuf, _ := replicaBenchSetup(b)
	b.SetBytes(int64(len(deltaBuf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var d wire.Delta
		if err := wire.DecodeDelta(deltaBuf, &d); err != nil {
			b.Fatal(err)
		}
		if _, applied, err := replica.Apply(base, &d); err != nil || applied != 1 {
			b.Fatalf("applied=%d err=%v", applied, err)
		}
	}
}

func BenchmarkSnapshotFullRefresh(b *testing.B) {
	_, _, fullBuf := replicaBenchSetup(b)
	b.SetBytes(int64(len(fullBuf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var d wire.Delta
		if err := wire.DecodeDelta(fullBuf, &d); err != nil {
			b.Fatal(err)
		}
		if _, applied, err := replica.Apply(nil, &d); err != nil || applied != 8 {
			b.Fatalf("applied=%d err=%v", applied, err)
		}
	}
}

// --- Checkpoint save benchmarks (full record vs delta record) ---
//
// What a periodic checkpoint costs a long-running trainer at
// Meridian-2500 scale when little moved between saves: the full
// variant rewrites the entire 2·n·r state every time (SaveCheckpoint),
// the delta variant writes only the shards whose version advanced —
// here 1 of 8, the quiet-trainer shape a CheckpointChain is built for.

// checkpointBenchSetup builds consecutive 2500-node 8-shard captures
// with one advanced shard between them.
func checkpointBenchSetup(b *testing.B) (next *ckpt.Checkpoint, prevVers []uint64) {
	b.Helper()
	const n, rank, shards = 2500, 10, 8
	store := engine.NewStore(n, rank, shards)
	store.InitUniform(rand.New(rand.NewSource(1)))
	prevVers = store.Versions(nil)
	store.Ref(3).Update(func(c *sgd.Coordinates) bool { c.U[0] += 0.5; return true })
	u, v := store.SnapshotFlat()
	next = &ckpt.Checkpoint{
		N: n, Rank: rank, Shards: shards, K: 32,
		Steps: 2, Seed: 1, Draws: 9, Tau: 50,
		Eta: 0.05, Lambda: 0.01,
		Vers: store.Versions(nil),
		U:    u, V: v,
	}
	return next, prevVers
}

func BenchmarkCheckpointFull(b *testing.B) {
	next, _ := checkpointBenchSetup(b)
	var buf bytes.Buffer
	if err := ckpt.Write(&buf, next); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := ckpt.Write(&buf, next); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointDelta(b *testing.B) {
	next, prevVers := checkpointBenchSetup(b)
	var full, buf bytes.Buffer
	if err := ckpt.Write(&full, next); err != nil {
		b.Fatal(err)
	}
	if err := ckpt.WriteDelta(&buf, next, prevVers); err != nil {
		b.Fatal(err)
	}
	// The point of the delta format: a quiet save (1 of 8 shards
	// advanced) writes a small fraction of the full record.
	if buf.Len()*5 > full.Len() {
		b.Fatalf("delta record %d bytes vs full %d: expected ≥5x savings", buf.Len(), full.Len())
	}
	b.ReportMetric(float64(full.Len())/float64(buf.Len()), "full/delta-bytes")
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := ckpt.WriteDelta(&buf, next, prevVers); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Follower publish benchmarks (full flatten vs block-backed) ---
//
// What a dmfserve follower pays to publish a fresh serving snapshot
// after applying one gossip delta (1 of 8 shards advanced) at
// Meridian-2500 scale. The full variant is the old path: flatten the
// entire 2·n·r state and re-validate it in NewSnapshotFlat. The delta
// variant is the current path: alias the state's immutable per-shard
// blocks and re-validate only the blocks not shared with the previously
// published snapshot — O(advanced shards) instead of O(n).

// followerPublishSetup builds consecutive 2500-node 8-shard states with
// one advanced shard, plus the snapshot published from the base state.
func followerPublishSetup(b *testing.B) (base, next *replica.State, prevSnap *dmfsgd.Snapshot) {
	b.Helper()
	const n, rank, shards = 2500, 10, 8
	store := engine.NewStore(n, rank, shards)
	store.InitUniform(rand.New(rand.NewSource(1)))
	capture := func(prev *replica.State, steps uint64) *replica.State {
		u, v := store.SnapshotFlat()
		st, err := replica.Update(prev, n, rank, shards,
			replica.Meta{Steps: steps, Tau: 50}, store.Versions(nil), u, v)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	base = capture(nil, 1)
	store.Ref(3).Update(func(c *sgd.Coordinates) bool { c.U[0] += 0.5; return true })
	next = capture(base, 2)
	bu, bv := base.Blocks()
	snap, err := dmfsgd.NewSnapshotBlocks(dmfsgd.Metric(base.Meta.Metric), base.Meta.Tau,
		int(base.Meta.Steps), rank, n, shards, bu, bv, base.Vers(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return base, next, snap
}

func BenchmarkFollowerPublishFull(b *testing.B) {
	_, next, _ := followerPublishSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := next.Flatten()
		if _, err := dmfsgd.NewSnapshotFlat(dmfsgd.Metric(next.Meta.Metric), next.Meta.Tau,
			int(next.Meta.Steps), next.Rank, u, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFollowerPublishDelta(b *testing.B) {
	_, next, prevSnap := followerPublishSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu, bv := next.Blocks()
		if _, err := dmfsgd.NewSnapshotBlocks(dmfsgd.Metric(next.Meta.Metric), next.Meta.Tau,
			int(next.Meta.Steps), next.Rank, next.N, next.Shards, bu, bv, next.Vers(), prevSnap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionSnapshotQuiescent measures the version-aware Snapshot
// path with nothing to refresh: the session returns the previously
// materialized snapshot after comparing version vectors — zero copying,
// which is what makes per-request snapshotting viable for serving loops.
func BenchmarkSessionSnapshotQuiescent(b *testing.B) {
	ds := meridianSized(1000)
	sess, err := dmfsgd.NewSession(ds, dmfsgd.WithK(32), dmfsgd.WithShards(8), dmfsgd.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.RunEpochs(context.Background(), 2, 32); err != nil {
		b.Fatal(err)
	}
	sess.Snapshot() // materialize once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sess.Snapshot() == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// --- Ingest benchmarks (Source → engine measurement throughput) ---
//
// The ingestion trajectory: measurements per second through the full
// seam — source sampling or NDJSON parsing, topology filter, label
// classification, and the engine's sharded batch apply — at Meridian
// 1000/2500 across 1/4/8 shards. These extend the engine-epoch series
// with the cost of the stream in front of the engine.

// benchEpochBatches drains count measurements from src into epoch-sized
// engine batches (n·32 samples each) through the same filter+classify
// path Session uses, returning the batches.
func benchEpochBatches(b *testing.B, drv *sim.Driver, ds *dataset.Dataset, src dmfsgd.Source, count int) [][]engine.Sample {
	b.Helper()
	tau := ds.Median()
	epoch := ds.N() * 32
	buf := make([]dmfsgd.Measurement, 8192)
	var batches [][]engine.Sample
	batch := make([]engine.Sample, 0, epoch)
	drained := 0
	for drained < count {
		want := len(buf)
		if r := count - drained; r < want {
			want = r
		}
		k, err := src.NextBatch(context.Background(), buf[:want])
		if err != nil {
			b.Fatal(err)
		}
		drained += k
		for _, m := range buf[:k] {
			if !drv.IsNeighbor(m.I, m.J) {
				continue
			}
			batch = append(batch, engine.Sample{I: m.I, J: m.J, Label: classify.Of(ds.Metric, m.Value, tau).Value()})
			if len(batch) == epoch {
				batches = append(batches, batch)
				batch = make([]engine.Sample, 0, epoch)
			}
		}
	}
	if len(batch) > 0 {
		batches = append(batches, batch)
	}
	return batches
}

// benchSourceMatrix: endless matrix sampling drained into epoch batches
// and applied through the sharded batch path, end to end per iteration.
func benchSourceMatrix(b *testing.B, n, shards int) {
	ds := meridianSized(n)
	drv := engineDriver(b, n, shards)
	src, err := dmfsgd.NewMatrixSource(ds, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	drv.RunEpochs(1, 1) // warm the epoch state outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		for _, batch := range benchEpochBatches(b, drv, ds, src, n*32) {
			applied, err := drv.ApplyBatchCtx(context.Background(), batch)
			if err != nil {
				b.Fatal(err)
			}
			total += applied
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "meas/s")
}

func BenchmarkSourceMatrixMeridian1000Shards1(b *testing.B) { benchSourceMatrix(b, 1000, 1) }
func BenchmarkSourceMatrixMeridian1000Shards4(b *testing.B) { benchSourceMatrix(b, 1000, 4) }
func BenchmarkSourceMatrixMeridian1000Shards8(b *testing.B) { benchSourceMatrix(b, 1000, 8) }
func BenchmarkSourceMatrixMeridian2500Shards1(b *testing.B) { benchSourceMatrix(b, 2500, 1) }
func BenchmarkSourceMatrixMeridian2500Shards4(b *testing.B) { benchSourceMatrix(b, 2500, 4) }
func BenchmarkSourceMatrixMeridian2500Shards8(b *testing.B) { benchSourceMatrix(b, 2500, 8) }

var (
	benchStreamMu sync.Mutex
	benchStream   = map[int][]byte{}
)

// benchStreamNDJSON caches one epoch's worth of captured measurements
// (n·32 records) as NDJSON per node count, generated once outside every
// timed region.
func benchStreamNDJSON(b *testing.B, n int) []byte {
	b.Helper()
	benchStreamMu.Lock()
	defer benchStreamMu.Unlock()
	if data, ok := benchStream[n]; ok {
		return data
	}
	ds := meridianSized(n)
	src, err := dmfsgd.NewMatrixSource(ds, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]dmfsgd.Measurement, n*32)
	if _, err := src.NextBatch(context.Background(), buf); err != nil {
		b.Fatal(err)
	}
	var out bytes.Buffer
	if err := dmfsgd.WriteMeasurements(&out, buf); err != nil {
		b.Fatal(err)
	}
	benchStream[n] = out.Bytes()
	return benchStream[n]
}

// benchSourceReplay: a captured NDJSON stream parsed, filtered and
// applied through the sharded batch path — the deterministic-replay
// ingest pipeline, end to end per iteration.
func benchSourceReplay(b *testing.B, n, shards int) {
	ds := meridianSized(n)
	drv := engineDriver(b, n, shards)
	data := benchStreamNDJSON(b, n)
	drv.RunEpochs(1, 1) // warm the epoch state outside the timed region
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		src := dmfsgd.NewStreamSource(bytes.NewReader(data))
		for _, batch := range benchEpochBatches(b, drv, ds, src, n*32) {
			applied, err := drv.ApplyBatchCtx(context.Background(), batch)
			if err != nil {
				b.Fatal(err)
			}
			total += applied
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "meas/s")
}

func BenchmarkSourceReplayMeridian1000Shards1(b *testing.B) { benchSourceReplay(b, 1000, 1) }
func BenchmarkSourceReplayMeridian1000Shards4(b *testing.B) { benchSourceReplay(b, 1000, 4) }
func BenchmarkSourceReplayMeridian1000Shards8(b *testing.B) { benchSourceReplay(b, 1000, 8) }
func BenchmarkSourceReplayMeridian2500Shards1(b *testing.B) { benchSourceReplay(b, 2500, 1) }
func BenchmarkSourceReplayMeridian2500Shards4(b *testing.B) { benchSourceReplay(b, 2500, 4) }
func BenchmarkSourceReplayMeridian2500Shards8(b *testing.B) { benchSourceReplay(b, 2500, 8) }

// simDefaults returns the paper-default SGD configuration.
func simDefaults() sgd.Config { return sgd.Defaults() }

// aucOf delegates to the evaluation package.
func aucOf(labels, scores []float64) float64 { return eval.AUC(labels, scores) }
