package dmfsgd

import (
	"context"
	"math"
	"testing"
)

// Allocation regression tests for the zero-alloc serving contract: the
// snapshot hot paths must not allocate in steady state. These pin the
// behavior the dmfserve handlers and the dmfload in-process target rely
// on — a regression here shows up as GC pressure scaling with serving
// throughput.

// allocSnapshot trains a small session once and freezes it.
func allocSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	ds := NewMeridianDataset(80, 31)
	sess, err := NewSession(ds, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 4000); err != nil {
		t.Fatal(err)
	}
	return sess.Snapshot()
}

// TestPredictBatchZeroAllocs: scoring into a caller-owned buffer must
// not allocate.
func TestPredictBatchZeroAllocs(t *testing.T) {
	snap := allocSnapshot(t)
	pairs := make([]PathPair, 64)
	for k := range pairs {
		pairs[k] = PathPair{I: k % snap.N(), J: (k*7 + 1) % snap.N()}
	}
	scores := make([]float64, len(pairs))
	avg := testing.AllocsPerRun(200, func() {
		snap.PredictBatch(pairs, scores)
	})
	if avg != 0 {
		t.Errorf("PredictBatch with caller buffer: %v allocs/op, want 0", avg)
	}
}

// TestRankIntoZeroAllocs: ranking through the pooled keyed scratch must
// not allocate in steady state.
func TestRankIntoZeroAllocs(t *testing.T) {
	snap := allocSnapshot(t)
	candidates := make([]int, 48)
	for k := range candidates {
		candidates[k] = (k*3 + 1) % snap.N()
	}
	out := make([]int, len(candidates))
	snap.RankInto(0, candidates, out) // warm the pool outside the measurement
	avg := testing.AllocsPerRun(200, func() {
		snap.RankInto(1, candidates, out)
	})
	if avg != 0 {
		t.Errorf("RankInto: %v allocs/op, want 0", avg)
	}
}

// TestWALMetricObservationZeroAllocs: the metric observations riding
// the WAL append/commit path (and by extension every hot-path
// observation in the tree — same Counter/Histogram cells) must be
// allocation-free; internal/metrics pins the primitives, this pins the
// wired-up instances.
func TestWALMetricObservationZeroAllocs(t *testing.T) {
	avg := testing.AllocsPerRun(200, func() {
		mWALRecords.Add(3)
		mWALCommits.Inc()
		mWALReplayed.Add(1)
	})
	if avg != 0 {
		t.Errorf("WAL metric observation: %v allocs/op, want 0", avg)
	}
}

// TestSessionSnapshotQuiescentZeroAllocs: with no training in flight,
// Session.Snapshot returns the memoized snapshot without copying —
// which is what makes per-request snapshotting viable in serving loops.
func TestSessionSnapshotQuiescentZeroAllocs(t *testing.T) {
	ds := NewMeridianDataset(80, 32)
	sess, err := NewSession(ds, WithSeed(32))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 4000); err != nil {
		t.Fatal(err)
	}
	sess.Snapshot() // materialize once
	avg := testing.AllocsPerRun(200, func() {
		if sess.Snapshot() == nil {
			t.Fatal("nil snapshot")
		}
	})
	if avg != 0 {
		t.Errorf("quiescent Session.Snapshot: %v allocs/op, want 0", avg)
	}
}

// blocksOf slices flat row-major arrays into per-shard blocks with the
// store's node partition (node i → shard i mod P, ascending).
func blocksOf(u, v []float64, n, rank, shards int) (bu, bv [][]float64) {
	bu = make([][]float64, shards)
	bv = make([][]float64, shards)
	for p := 0; p < shards; p++ {
		rows := (n - p + shards - 1) / shards
		bu[p] = make([]float64, 0, rows*rank)
		bv[p] = make([]float64, 0, rows*rank)
		for li := 0; li < rows; li++ {
			i := p + li*shards
			bu[p] = append(bu[p], u[i*rank:(i+1)*rank]...)
			bv[p] = append(bv[p], v[i*rank:(i+1)*rank]...)
		}
	}
	return bu, bv
}

// TestSnapshotBlocksEquivalence: a block-backed snapshot must answer
// every query bit-identically to a flat snapshot over the same
// coordinates — Predict, PredictBatch, Rank and Flat.
func TestSnapshotBlocksEquivalence(t *testing.T) {
	flat := allocSnapshot(t)
	n, rank := flat.N(), flat.Dim()
	fu, fv := flat.Flat()
	for _, shards := range []int{1, 3, 8} {
		bu, bv := blocksOf(fu, fv, n, rank, shards)
		vers := make([]uint64, shards)
		for p := range vers {
			vers[p] = uint64(p + 1)
		}
		blk, err := NewSnapshotBlocks(flat.Metric(), flat.Tau(), flat.Steps(), rank, n, shards, bu, bv, vers, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if blk.N() != n || blk.Dim() != rank || blk.StoreShards() != shards || blk.Steps() != flat.Steps() {
			t.Fatalf("shards=%d: metadata n=%d dim=%d shards=%d", shards, blk.N(), blk.Dim(), blk.StoreShards())
		}
		gv := blk.Versions()
		if len(gv) != shards || gv[0] != 1 {
			t.Fatalf("shards=%d: versions %v", shards, gv)
		}
		var pairs []PathPair
		for i := 0; i < n; i += 7 {
			for j := 0; j < n; j += 5 {
				pairs = append(pairs, PathPair{I: i, J: j})
			}
		}
		want := flat.PredictBatch(pairs, nil)
		got := blk.PredictBatch(pairs, nil)
		for k := range pairs {
			if got[k] != want[k] {
				t.Fatalf("shards=%d: PredictBatch(%v) = %v, flat %v", shards, pairs[k], got[k], want[k])
			}
			if blk.Predict(pairs[k].I, pairs[k].J) != want[k] {
				t.Fatalf("shards=%d: Predict(%v) differs from flat", shards, pairs[k])
			}
		}
		cands := []int{5, 17, 31, 42, 60, 79, 2, 11}
		fr := flat.Rank(3, cands)
		br := blk.Rank(3, cands)
		for k := range fr {
			if fr[k] != br[k] {
				t.Fatalf("shards=%d: Rank = %v, flat %v", shards, br, fr)
			}
		}
		gu, gvv := blk.Flat()
		for k := range fu {
			if gu[k] != fu[k] || gvv[k] != fv[k] {
				t.Fatalf("shards=%d: Flat differs at %d", shards, k)
			}
		}
	}
}

// TestNewSnapshotBlocksValidation: geometry, block lengths, version
// vector length and non-finite values are all rejected.
func TestNewSnapshotBlocksValidation(t *testing.T) {
	const n, rank, shards = 5, 2, 2
	u := make([]float64, n*rank)
	v := make([]float64, n*rank)
	bu, bv := blocksOf(u, v, n, rank, shards)

	if _, err := NewSnapshotBlocks(RTT, 50, 0, 0, n, shards, bu, bv, nil, nil); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := NewSnapshotBlocks(RTT, 50, 0, rank, n, n+1, bu, bv, nil, nil); err == nil {
		t.Error("shards > n accepted")
	}
	if _, err := NewSnapshotBlocks(RTT, 50, 0, rank, n, shards, bu[:1], bv, nil, nil); err == nil {
		t.Error("missing block accepted")
	}
	if _, err := NewSnapshotBlocks(RTT, 50, 0, rank, n, shards, bu, bv, []uint64{1}, nil); err == nil {
		t.Error("short version vector accepted")
	}
	short := [][]float64{bu[0][:2], bu[1]}
	if _, err := NewSnapshotBlocks(RTT, 50, 0, rank, n, shards, short, bv, nil, nil); err == nil {
		t.Error("short block accepted")
	}
	bad := blocksCopy(bu)
	bad[1][0] = math.NaN()
	if _, err := NewSnapshotBlocks(RTT, 50, 0, rank, n, shards, bad, bv, nil, nil); err == nil {
		t.Error("NaN accepted")
	}
}

func blocksCopy(b [][]float64) [][]float64 {
	out := make([][]float64, len(b))
	for p := range b {
		out[p] = append([]float64(nil), b[p]...)
	}
	return out
}

// TestNewSnapshotBlocksPrevSkipsValidation: blocks pointer-shared with
// the previously published snapshot skip the finiteness re-scan — the
// property that makes per-delta publishing O(advanced shards). Verified
// observably: a NaN smuggled into a shared block is accepted (skip
// happened), while the same NaN in a fresh block is rejected.
func TestNewSnapshotBlocksPrevSkipsValidation(t *testing.T) {
	const n, rank, shards = 6, 2, 2
	u := make([]float64, n*rank)
	v := make([]float64, n*rank)
	bu, bv := blocksOf(u, v, n, rank, shards)
	prev, err := NewSnapshotBlocks(RTT, 50, 1, rank, n, shards, bu, bv, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Violate the immutability contract deliberately: the NaN must be
	// invisible to the prev-sharing fast path.
	bu[1][0] = math.NaN()
	if _, err := NewSnapshotBlocks(RTT, 50, 2, rank, n, shards, bu, bv, nil, prev); err != nil {
		t.Errorf("shared block re-validated: %v", err)
	}
	if _, err := NewSnapshotBlocks(RTT, 50, 2, rank, n, shards, bu, bv, nil, nil); err == nil {
		t.Error("fresh block with NaN accepted")
	}
	// A geometry mismatch must disable the fast path entirely.
	if _, err := NewSnapshotBlocks(RTT, 50, 2, rank, n, shards, bu, bv, nil, allocSnapshotFlatDummy()); err == nil {
		t.Error("NaN accepted with a non-block prev")
	}
	bu[1][0] = 0
}

// allocSnapshotFlatDummy builds a minimal flat snapshot (not
// block-backed) to exercise the prev-compatibility check.
func allocSnapshotFlatDummy() *Snapshot {
	sn, err := NewSnapshotFlat(RTT, 50, 0, 2, make([]float64, 12), make([]float64, 12))
	if err != nil {
		panic(err)
	}
	return sn
}
