// Package eval implements the evaluation criteria of §6.1: ROC curves and
// the area under them (AUC), precision-recall curves, and the confusion
// matrices / accuracy rates of Table 2.
//
// All functions take parallel slices: labels (±1 ground-truth classes) and
// scores (the real-valued predictions x̂ᵢⱼ = uᵢ·vⱼᵀ). The ROC and
// precision-recall curves are obtained by sweeping a discrimination
// threshold τc over the scores, exactly as the paper describes: "for a
// given τc, x̂ᵢⱼ is turned into 1 if x̂ᵢⱼ > τc and into −1 otherwise".
package eval

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Point is one point of a ROC curve.
type Point struct {
	// FPR is the false positive rate at this threshold.
	FPR float64
	// TPR is the true positive rate (recall) at this threshold.
	TPR float64
	// Threshold is the τc that produced this point.
	Threshold float64
}

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	// Recall is the true positive rate.
	Recall float64
	// Precision is TP / (TP + FP).
	Precision float64
	// Threshold is the τc that produced this point.
	Threshold float64
}

// checkInput validates parallel label/score slices.
func checkInput(labels, scores []float64) {
	if len(labels) != len(scores) {
		panic(fmt.Sprintf("eval: %d labels vs %d scores", len(labels), len(scores)))
	}
	for i, l := range labels {
		if l != 1 && l != -1 {
			panic(fmt.Sprintf("eval: label[%d] = %v, want ±1", i, l))
		}
		if math.IsNaN(scores[i]) {
			panic(fmt.Sprintf("eval: score[%d] is NaN", i))
		}
	}
}

// counts returns the number of positive and negative labels.
func counts(labels []float64) (pos, neg int) {
	for _, l := range labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

// AUC returns the area under the ROC curve, computed as the normalized
// Mann-Whitney U statistic with midrank tie correction: the probability
// that a random positive scores above a random negative (ties count ½).
// Returns NaN when either class is absent.
func AUC(labels, scores []float64) float64 {
	checkInput(labels, scores)
	pos, neg := counts(labels)
	if pos == 0 || neg == 0 {
		return math.NaN()
	}
	type ls struct {
		score float64
		label float64
	}
	items := make([]ls, len(labels))
	for i := range labels {
		items[i] = ls{scores[i], labels[i]}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].score < items[b].score })

	// Sum of midranks of the positive samples.
	var rankSum float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			j++
		}
		// items[i:j] are tied; midrank is the average of 1-based ranks.
		midrank := float64(i+j+1) / 2
		for t := i; t < j; t++ {
			if items[t].label == 1 {
				rankSum += midrank
			}
		}
		i = j
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// ROC returns the ROC curve points ordered from (0,0) to (1,1), one point
// per distinct score threshold plus the two endpoints.
func ROC(labels, scores []float64) []Point {
	checkInput(labels, scores)
	pos, neg := counts(labels)
	if pos == 0 || neg == 0 {
		return nil
	}
	idx := sortedByScoreDesc(scores)

	out := make([]Point, 0, len(idx)+2)
	out = append(out, Point{FPR: 0, TPR: 0, Threshold: math.Inf(1)})
	var tp, fp int
	i := 0
	for i < len(idx) {
		j := i
		thr := scores[idx[i]]
		for j < len(idx) && scores[idx[j]] == thr {
			if labels[idx[j]] == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		out = append(out, Point{
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
			Threshold: thr,
		})
		i = j
	}
	return out
}

// AUCFromROC integrates a ROC curve with the trapezoid rule. Primarily a
// cross-check for AUC; the two agree up to floating point.
func AUCFromROC(curve []Point) float64 {
	if len(curve) < 2 {
		return math.NaN()
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// PrecisionRecall returns the precision-recall curve ordered by increasing
// recall, one point per distinct threshold.
func PrecisionRecall(labels, scores []float64) []PRPoint {
	checkInput(labels, scores)
	pos, _ := counts(labels)
	if pos == 0 {
		return nil
	}
	idx := sortedByScoreDesc(scores)

	out := make([]PRPoint, 0, len(idx))
	var tp, fp int
	i := 0
	for i < len(idx) {
		j := i
		thr := scores[idx[i]]
		for j < len(idx) && scores[idx[j]] == thr {
			if labels[idx[j]] == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		out = append(out, PRPoint{
			Recall:    float64(tp) / float64(pos),
			Precision: float64(tp) / float64(tp+fp),
			Threshold: thr,
		})
		i = j
	}
	return out
}

func sortedByScoreDesc(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

// Confusion is a 2×2 confusion matrix for binary classes.
type Confusion struct {
	// TP: actual good, predicted good. FN: actual good, predicted bad.
	// FP: actual bad, predicted good. TN: actual bad, predicted bad.
	TP, FN, FP, TN int
}

// ConfusionAt builds the confusion matrix for the decision rule
// "predict good iff score > threshold". Table 2 uses threshold 0
// ("computed by taking the sign of x̂ᵢⱼ").
func ConfusionAt(labels, scores []float64, threshold float64) Confusion {
	checkInput(labels, scores)
	var c Confusion
	for i, l := range labels {
		predGood := scores[i] > threshold
		if l == 1 {
			if predGood {
				c.TP++
			} else {
				c.FN++
			}
		} else {
			if predGood {
				c.FP++
			} else {
				c.TN++
			}
		}
	}
	return c
}

// ConfusionAtParallel computes the same matrix as ConfusionAt, spreading
// the accumulation over contiguous blocks of the sample set on up to
// workers goroutines (0 = GOMAXPROCS) and summing the per-block partial
// matrices. Counts are integers, so the result is exactly ConfusionAt's
// for every worker count.
func ConfusionAtParallel(labels, scores []float64, threshold float64, workers int) Confusion {
	const minBlock = 4096 // below this, goroutine overhead dominates
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(labels)/minBlock {
		workers = len(labels) / minBlock
	}
	if workers <= 1 {
		return ConfusionAt(labels, scores, threshold)
	}
	parts := make([]Confusion, workers)
	block := (len(labels) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * block
		hi := lo + block
		if hi > len(labels) {
			hi = len(labels)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = ConfusionAt(labels[lo:hi], scores[lo:hi], threshold)
		}(w, lo, hi)
	}
	wg.Wait()
	var total Confusion
	for _, p := range parts {
		total.TP += p.TP
		total.FN += p.FN
		total.FP += p.FP
		total.TN += p.TN
	}
	return total
}

// Total returns the number of samples.
func (c Confusion) Total() int { return c.TP + c.FN + c.FP + c.TN }

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return math.NaN()
	}
	return float64(c.TP+c.TN) / float64(t)
}

// TPR returns the true positive rate TP/(TP+FN) — the "Good predicted
// Good" cell of Table 2.
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// FNR returns FN/(TP+FN) — "Good predicted Bad".
func (c Confusion) FNR() float64 { return ratio(c.FN, c.TP+c.FN) }

// FPR returns FP/(FP+TN) — "Bad predicted Good".
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// TNR returns TN/(FP+TN) — "Bad predicted Bad".
func (c Confusion) TNR() float64 { return ratio(c.TN, c.FP+c.TN) }

// Precision returns TP/(TP+FP).
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

func ratio(num, den int) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}
