package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUCPerfect(t *testing.T) {
	labels := []float64{1, 1, -1, -1}
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	if got := AUC(labels, scores); got != 1 {
		t.Errorf("perfect AUC = %v, want 1", got)
	}
}

func TestAUCAntiPerfect(t *testing.T) {
	labels := []float64{1, 1, -1, -1}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if got := AUC(labels, scores); got != 0 {
		t.Errorf("anti-perfect AUC = %v, want 0", got)
	}
}

func TestAUCRandomTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 (ties count half).
	labels := []float64{1, -1, 1, -1, 1}
	scores := []float64{3, 3, 3, 3, 3}
	if got := AUC(labels, scores); got != 0.5 {
		t.Errorf("all-tied AUC = %v, want 0.5", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// Hand-computed: pos scores {0.8, 0.4}, neg scores {0.6, 0.2}.
	// Pairs: (0.8>0.6)+(0.8>0.2)+(0.4<0.6 → 0)+(0.4>0.2) = 3 of 4 → 0.75.
	labels := []float64{1, -1, 1, -1}
	scores := []float64{0.8, 0.6, 0.4, 0.2}
	if got := AUC(labels, scores); got != 0.75 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if !math.IsNaN(AUC([]float64{1, 1}, []float64{0.5, 0.6})) {
		t.Error("single-class AUC should be NaN")
	}
	if !math.IsNaN(AUC([]float64{-1}, []float64{0.5})) {
		t.Error("single-class AUC should be NaN")
	}
}

func TestAUCPanics(t *testing.T) {
	cases := []struct {
		name           string
		labels, scores []float64
	}{
		{"length mismatch", []float64{1}, []float64{1, 2}},
		{"bad label", []float64{0.5}, []float64{1}},
		{"nan score", []float64{1}, []float64{math.NaN()}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			AUC(tt.labels, tt.scores)
		})
	}
}

func TestROCEndpointsAndMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	labels := make([]float64, 200)
	scores := make([]float64, 200)
	for i := range labels {
		if rng.Intn(2) == 0 {
			labels[i] = 1
			scores[i] = rng.NormFloat64() + 1
		} else {
			labels[i] = -1
			scores[i] = rng.NormFloat64()
		}
	}
	curve := ROC(labels, scores)
	if len(curve) < 2 {
		t.Fatal("curve too short")
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve must start at origin, got %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve must end at (1,1), got %+v", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d", i)
		}
		if curve[i].Threshold > curve[i-1].Threshold {
			t.Fatalf("thresholds not decreasing at %d", i)
		}
	}
}

func TestROCDegenerate(t *testing.T) {
	if ROC([]float64{1, 1}, []float64{1, 2}) != nil {
		t.Error("single-class ROC should be nil")
	}
}

func TestAUCFromROCAgreesWithRankAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(100)
		labels := make([]float64, n)
		scores := make([]float64, n)
		for i := range labels {
			if rng.Intn(2) == 0 {
				labels[i] = 1
				scores[i] = rng.NormFloat64() + 0.5
			} else {
				labels[i] = -1
				scores[i] = rng.NormFloat64()
			}
		}
		// Quantize scores to force some ties.
		for i := range scores {
			scores[i] = math.Round(scores[i]*4) / 4
		}
		a1 := AUC(labels, scores)
		a2 := AUCFromROC(ROC(labels, scores))
		if math.Abs(a1-a2) > 1e-9 {
			t.Fatalf("trial %d: rank AUC %v != trapezoid AUC %v", trial, a1, a2)
		}
	}
}

func TestAUCFromROCDegenerate(t *testing.T) {
	if !math.IsNaN(AUCFromROC(nil)) {
		t.Error("nil curve should give NaN")
	}
}

func TestPrecisionRecall(t *testing.T) {
	labels := []float64{1, -1, 1, -1}
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	pr := PrecisionRecall(labels, scores)
	// Thresholds descending: 0.9 → TP=1 FP=0 (P=1, R=0.5);
	// 0.8 → TP=1 FP=1 (P=0.5, R=0.5); 0.7 → TP=2 FP=1 (P=2/3, R=1);
	// 0.1 → TP=2 FP=2 (P=0.5, R=1).
	want := []PRPoint{
		{Recall: 0.5, Precision: 1, Threshold: 0.9},
		{Recall: 0.5, Precision: 0.5, Threshold: 0.8},
		{Recall: 1, Precision: 2.0 / 3, Threshold: 0.7},
		{Recall: 1, Precision: 0.5, Threshold: 0.1},
	}
	if len(pr) != len(want) {
		t.Fatalf("got %d points, want %d", len(pr), len(want))
	}
	for i := range want {
		if math.Abs(pr[i].Recall-want[i].Recall) > 1e-12 ||
			math.Abs(pr[i].Precision-want[i].Precision) > 1e-12 {
			t.Errorf("point %d = %+v, want %+v", i, pr[i], want[i])
		}
	}
}

func TestPrecisionRecallDegenerate(t *testing.T) {
	if PrecisionRecall([]float64{-1}, []float64{1}) != nil {
		t.Error("no positives should give nil")
	}
}

func TestConfusionAt(t *testing.T) {
	labels := []float64{1, 1, -1, -1, 1}
	scores := []float64{0.5, -0.5, 0.5, -0.5, 0.1}
	c := ConfusionAt(labels, scores, 0)
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Errorf("confusion = %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.6", got)
	}
	if got := c.TPR(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("TPR = %v", got)
	}
	if got := c.FNR(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("FNR = %v", got)
	}
	if got := c.FPR(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FPR = %v", got)
	}
	if got := c.TNR(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TNR = %v", got)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
}

func TestConfusionZeroDenominators(t *testing.T) {
	var c Confusion
	if !math.IsNaN(c.Accuracy()) || !math.IsNaN(c.TPR()) || !math.IsNaN(c.FPR()) || !math.IsNaN(c.Precision()) {
		t.Error("empty confusion rates should be NaN")
	}
}

func TestConfusionRowsSumToOne(t *testing.T) {
	labels := []float64{1, 1, 1, -1, -1}
	scores := []float64{1, -1, 1, 1, -1}
	c := ConfusionAt(labels, scores, 0)
	if math.Abs(c.TPR()+c.FNR()-1) > 1e-12 {
		t.Error("TPR+FNR != 1")
	}
	if math.Abs(c.FPR()+c.TNR()-1) > 1e-12 {
		t.Error("FPR+TNR != 1")
	}
}

// Property: AUC is in [0,1] and flipping all scores' signs with labels
// reversed gives the same AUC (symmetry).
func TestAUCPropertyRangeAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		labels := make([]float64, n)
		scores := make([]float64, n)
		labels[0], labels[1] = 1, -1 // guarantee both classes
		scores[0], scores[1] = rng.NormFloat64(), rng.NormFloat64()
		for i := 2; i < n; i++ {
			if rng.Intn(2) == 0 {
				labels[i] = 1
			} else {
				labels[i] = -1
			}
			scores[i] = rng.NormFloat64()
		}
		a := AUC(labels, scores)
		if a < 0 || a > 1 || math.IsNaN(a) {
			return false
		}
		// Negate scores and labels: AUC invariant.
		nl := make([]float64, n)
		ns := make([]float64, n)
		for i := range labels {
			nl[i] = -labels[i]
			ns[i] = -scores[i]
		}
		b := AUC(nl, ns)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: AUC is invariant under any strictly monotone transform of the
// scores (it only depends on the ranking).
func TestAUCPropertyMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		labels := make([]float64, n)
		scores := make([]float64, n)
		labels[0], labels[1] = 1, -1
		scores[0], scores[1] = rng.NormFloat64(), rng.NormFloat64()
		for i := 2; i < n; i++ {
			if rng.Intn(2) == 0 {
				labels[i] = 1
			} else {
				labels[i] = -1
			}
			scores[i] = rng.NormFloat64()
		}
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(s/2) + 3
		}
		return math.Abs(AUC(labels, scores)-AUC(labels, transformed)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: accuracy from ConfusionAt(0) equals direct sign-match counting.
func TestConfusionPropertyAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		labels := make([]float64, n)
		scores := make([]float64, n)
		var correct int
		for i := range labels {
			if rng.Intn(2) == 0 {
				labels[i] = 1
			} else {
				labels[i] = -1
			}
			scores[i] = rng.NormFloat64()
			pred := -1.0
			if scores[i] > 0 {
				pred = 1
			}
			if pred == labels[i] {
				correct++
			}
		}
		c := ConfusionAt(labels, scores, 0)
		return math.Abs(c.Accuracy()-float64(correct)/float64(n)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAUC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	labels := make([]float64, n)
	scores := make([]float64, n)
	for i := range labels {
		if rng.Intn(2) == 0 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
		scores[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AUC(labels, scores)
	}
}

// TestConfusionAtParallelEquivalence: the block-parallel accumulator is
// exactly ConfusionAt for every worker count, including sets large enough
// to actually fan out.
func TestConfusionAtParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 50_000
	labels := make([]float64, n)
	scores := make([]float64, n)
	for i := range labels {
		if rng.Float64() < 0.6 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
		scores[i] = rng.NormFloat64()
	}
	want := ConfusionAt(labels, scores, 0.1)
	for _, workers := range []int{0, 1, 2, 4, 8} {
		if got := ConfusionAtParallel(labels, scores, 0.1, workers); got != want {
			t.Fatalf("workers=%d: %+v, want %+v", workers, got, want)
		}
	}
}
