package experiments

import (
	"fmt"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
)

// DynamicsTracking probes the paper's claim that DMFSGD is "suitable for
// dealing with dynamic measurements in large-scale networks" (§1, §7):
// after the system converges, a fraction of nodes "move" (their rows and
// columns of the ground truth change — new provider, new route), and the
// nodes simply keep probing. The experiment reports the AUC against the
// *new* ground truth before the change, right after it, and as the system
// re-converges, all without any restart or re-initialization.
//
// This is an extension experiment (not a figure in the paper); it is
// registered as "dynamics" in cmd/dmfbench and exercised by
// BenchmarkDynamicsTracking.
func DynamicsTracking(b *Bundle) []Table {
	before := b.Meridian()
	after, moved := moveNodes(before, 0.2, b.O.Seed+31)
	tau := before.Median()

	k := b.K(before)
	cfg := sim.Config{SGD: sgd.Defaults(), K: k, Tau: tau, Seed: b.O.Seed}
	drv, err := sim.New(before, classify.Matrix(before, tau), cfg)
	if err != nil {
		panic(err)
	}

	evalAgainst := func(truth *dataset.Dataset) float64 {
		labels, scores := drv.EvalSet(b.O.EvalPairs)
		// EvalSet labels come from the driver's dataset; recompute against
		// the requested truth over the same deterministic pair sample.
		_ = labels
		pairs := samplePairs(drv, truth, b.O.EvalPairs)
		ls := make([]float64, len(pairs))
		ss := make([]float64, len(pairs))
		for idx, p := range pairs {
			ls[idx] = classify.Of(truth.Metric, truth.Matrix.At(p.I, p.J), tau).Value()
			ss[idx] = drv.Predict(p.I, p.J)
		}
		_ = scores
		return eval.AUC(ls, ss)
	}

	t := Table{
		Title: fmt.Sprintf("Dynamics: %d%% of nodes change paths after convergence (moved=%d)",
			20, moved),
		Header: []string{"phase", "meas/node (xk)", "AUC vs old truth", "AUC vs new truth"},
	}

	budget := b.O.BudgetPerNode * k * before.N()
	drv.Run(budget)
	t.AddRow("converged", fmt.Sprintf("%d", b.O.BudgetPerNode), f(evalAgainst(before)), f(evalAgainst(after)))

	// The network changes: from now on measurements come from the new
	// ground truth.
	drv.SwapLabels(classify.Matrix(after, tau))
	for _, extra := range []int{2, 5, 10, 20} {
		target := (b.O.BudgetPerNode + extra) * k * before.N()
		drv.Run(target - drv.Steps())
		t.AddRow(fmt.Sprintf("+%d xk after change", extra), fmt.Sprintf("%d", b.O.BudgetPerNode+extra),
			f(evalAgainst(before)), f(evalAgainst(after)))
	}
	return []Table{t}
}

// samplePairs returns the deterministic evaluation pair sample shared by
// both truth matrices (pairs must exist in both).
func samplePairs(drv *sim.Driver, truth *dataset.Dataset, maxPairs int) []mat.Pair {
	test := drv.TrainMask().Complement()
	pairs := test.Pairs()
	kept := pairs[:0]
	for _, p := range pairs {
		if !truth.Matrix.IsMissing(p.I, p.J) {
			kept = append(kept, p)
		}
	}
	pairs = kept
	if maxPairs > 0 && len(pairs) > maxPairs {
		pairs = pairs[:maxPairs]
	}
	return pairs
}

// moveNodes returns a copy of ds where a fraction of nodes have new
// rows/columns, drawn from an independently generated network of the same
// size. Returns the new dataset and the number of moved nodes.
func moveNodes(ds *dataset.Dataset, fraction float64, seed int64) (*dataset.Dataset, int) {
	other := dataset.Meridian(dataset.MeridianConfig{N: ds.N(), Seed: seed})
	out := ds.Matrix.Clone()
	n := ds.N()
	moved := 0
	step := int(1 / fraction)
	for i := 0; i < n; i += step {
		moved++
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := other.Matrix.At(i, j)
			out.Set(i, j, v)
			out.Set(j, i, v) // RTT symmetry
		}
	}
	return dataset.FromMatrix(ds.Name+"-moved", ds.Metric, out, ds.DefaultK), moved
}
