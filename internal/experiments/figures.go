package experiments

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/corrupt"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/loss"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/peersel"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
	"dmfsgd/internal/svd"
)

// Figure1 reproduces the singular-value plot: the top-20 normalized
// singular values of the RTT (Meridian) and ABW (HP-S3) matrices and of
// their binary class matrices, thresholded at the median. The fast decay
// of all four spectra is the premise of the whole paper (§4.1).
func Figure1(b *Bundle) []Table {
	rtt := b.Meridian()
	abw := b.HPS3()
	tauR := rtt.Median()
	tauA := abw.Median()

	const topK = 20
	specOf := func(m *mat.Dense, seed int64) []float64 {
		dense := ImputeColumnMedian(m)
		return svd.Normalize(svd.TopK(dense, topK, rand.New(rand.NewSource(seed))))
	}
	sR := specOf(rtt.Matrix, b.O.Seed+11)
	sRC := specOf(classify.Matrix(rtt, tauR), b.O.Seed+12)
	sA := specOf(abw.Matrix, b.O.Seed+13)
	sAC := specOf(classify.Matrix(abw, tauA), b.O.Seed+14)

	t := Table{
		Title:  "Figure 1: normalized singular values (top 20), tau = dataset median",
		Header: []string{"#", "RTT", "RTT class", "ABW", "ABW class"},
	}
	at := func(s []float64, i int) string {
		if i < len(s) {
			return f(s[i])
		}
		return "-"
	}
	for i := 0; i < topK; i++ {
		t.AddRow(fmt.Sprintf("%d", i+1), at(sR, i), at(sRC, i), at(sA, i), at(sAC, i))
	}
	return []Table{t}
}

// ImputeColumnMedian fills missing entries with their column median (the
// preprocessing applied before SVD; diagonals and HP-S3 holes).
func ImputeColumnMedian(m *mat.Dense) *mat.Dense {
	out := m.Clone()
	for j := 0; j < m.Cols(); j++ {
		var col []float64
		for i := 0; i < m.Rows(); i++ {
			if !m.IsMissing(i, j) {
				col = append(col, m.At(i, j))
			}
		}
		fill := 0.0
		if len(col) > 0 {
			fill = mat.Median(col)
		}
		for i := 0; i < m.Rows(); i++ {
			if out.IsMissing(i, j) {
				out.Set(i, j, fill)
			}
		}
	}
	return out
}

// sweepValues are the η and λ grids of Figure 3.
var sweepValues = []float64{0.001, 0.01, 0.1, 1.0}

// Figure3 reproduces the AUC-vs-η (λ=0.1) and AUC-vs-λ (η=0.1) sweeps for
// the hinge and logistic losses on all three datasets.
func Figure3(b *Bundle) []Table {
	mkTable := func(param string, set func(*RunSpec, float64)) Table {
		t := Table{
			Title: fmt.Sprintf("Figure 3: AUC vs %s (r=10, other params at defaults)", param),
			Header: []string{
				param,
				"harvard/logistic", "harvard/hinge",
				"meridian/logistic", "meridian/hinge",
				"hp-s3/logistic", "hp-s3/hinge",
			},
		}
		for _, v := range sweepValues {
			row := []string{fmt.Sprintf("%.3f", v)}
			for _, ds := range b.All() {
				for _, lk := range []loss.Kind{loss.Logistic, loss.Hinge} {
					spec := RunSpec{DS: ds}
					spec.SGD = defaultSGD()
					spec.SGD.Loss = lk
					set(&spec, v)
					drv, err := b.Train(spec)
					if err != nil {
						panic(err)
					}
					row = append(row, f(drv.AUCSample(b.O.EvalPairs)))
				}
			}
			t.AddRow(row...)
		}
		return t
	}
	eta := mkTable("eta", func(s *RunSpec, v float64) { s.SGD.LearningRate = v })
	lambda := mkTable("lambda", func(s *RunSpec, v float64) { s.SGD.Lambda = v })
	return []Table{eta, lambda}
}

// Figure4a reproduces the AUC-vs-rank sweep (r ∈ {3, 10, 20, 100}).
func Figure4a(b *Bundle) []Table {
	t := Table{
		Title:  "Figure 4(a): AUC vs rank r (k at dataset defaults, tau = median)",
		Header: []string{"r", "harvard", "meridian", "hp-s3"},
	}
	for _, r := range []int{3, 10, 20, 100} {
		row := []string{fmt.Sprintf("%d", r)}
		for _, ds := range b.All() {
			spec := RunSpec{DS: ds}
			spec.SGD = defaultSGD()
			spec.SGD.Rank = r
			drv, err := b.Train(spec)
			if err != nil {
				panic(err)
			}
			row = append(row, f(drv.AUCSample(b.O.EvalPairs)))
		}
		t.AddRow(row...)
	}
	return []Table{t}
}

// Figure4b reproduces the AUC-vs-k sweep: k ∈ {5,10,30,50} for Harvard and
// HP-S3, {16,32,64,128} for Meridian (scaled down proportionally when the
// Options shrink the datasets).
func Figure4b(b *Bundle) []Table {
	t := Table{
		Title:  "Figure 4(b): AUC vs neighbor count k (r=10, tau = median)",
		Header: []string{"k-index", "harvard (k)", "AUC", "meridian (k)", "AUC", "hp-s3 (k)", "AUC"},
	}
	kFor := func(ds *dataset.Dataset, idx int) int {
		var ks []int
		if ds.Name == "meridian" {
			ks = []int{16, 32, 64, 128}
		} else {
			ks = []int{5, 10, 30, 50}
		}
		k := ks[idx]
		if k >= ds.N() {
			k = ds.N() / 2
		}
		return k
	}
	for idx := 0; idx < 4; idx++ {
		row := []string{fmt.Sprintf("k%d", idx+1)}
		for _, ds := range b.All() {
			k := kFor(ds, idx)
			spec := RunSpec{DS: ds, K: k}
			drv, err := b.Train(spec)
			if err != nil {
				panic(err)
			}
			row = append(row, fmt.Sprintf("%d", k), f(drv.AUCSample(b.O.EvalPairs)))
		}
		t.AddRow(row...)
	}
	return []Table{t}
}

// Figure4c reproduces the AUC-vs-τ sweep at good-path portions
// {10, 25, 50, 75, 90}%.
func Figure4c(b *Bundle) []Table {
	t := Table{
		Title:  "Figure 4(c): AUC vs classification threshold (portion of good paths)",
		Header: []string{"good%", "harvard", "meridian", "hp-s3"},
	}
	for _, portion := range []float64{0.10, 0.25, 0.50, 0.75, 0.90} {
		row := []string{pct(portion)}
		for _, ds := range b.All() {
			tau := ds.TauForGoodPortion(portion)
			drv, err := b.Train(RunSpec{DS: ds, Tau: tau})
			if err != nil {
				panic(err)
			}
			row = append(row, f(drv.AUCSample(b.O.EvalPairs)))
		}
		t.AddRow(row...)
	}
	return []Table{t}
}

// Figure5 reproduces the default-configuration accuracy plots: the ROC
// curves (a), the precision-recall curves (b), both downsampled to 21
// points, and the AUC-vs-measurement-count convergence curves (c).
func Figure5(b *Bundle) []Table {
	roc := Table{
		Title:  "Figure 5(a): ROC points under default parameters",
		Header: []string{"FPR@", "harvard TPR", "meridian TPR", "hp-s3 TPR"},
	}
	pr := Table{
		Title:  "Figure 5(b): precision-recall points under default parameters",
		Header: []string{"recall@", "harvard prec", "meridian prec", "hp-s3 prec"},
	}
	conv := Table{
		Title:  "Figure 5(c): AUC vs average measurements per node (in units of k)",
		Header: []string{"meas (xk)", "harvard", "meridian", "hp-s3"},
	}

	type curves struct {
		rocT []float64 // TPR at FPR grid
		prP  []float64 // precision at recall grid
		conv []float64 // AUC at checkpoints
	}
	grid := gridPoints()
	checkpoints := convergenceCheckpoints()
	var all []curves

	for _, ds := range b.All() {
		drv, aucs := b.trainWithConvergence(ds, checkpoints)
		labels, scores := drv.EvalSet(b.O.EvalPairs)
		rocCurve := eval.ROC(labels, scores)
		prCurve := eval.PrecisionRecall(labels, scores)

		var c curves
		for _, g := range grid {
			c.rocT = append(c.rocT, interpROC(rocCurve, g))
			c.prP = append(c.prP, interpPR(prCurve, g))
		}
		c.conv = aucs
		all = append(all, c)
	}
	for gi, g := range grid {
		roc.AddRow(f(g), f(all[0].rocT[gi]), f(all[1].rocT[gi]), f(all[2].rocT[gi]))
		pr.AddRow(f(g), f(all[0].prP[gi]), f(all[1].prP[gi]), f(all[2].prP[gi]))
	}
	for ci, cp := range checkpoints {
		conv.AddRow(fmt.Sprintf("%d", cp), f(all[0].conv[ci]), f(all[1].conv[ci]), f(all[2].conv[ci]))
	}
	return []Table{roc, pr, conv}
}

func gridPoints() []float64 {
	var g []float64
	for v := 0.0; v <= 1.0001; v += 0.05 {
		g = append(g, v)
	}
	return g
}

// convergenceCheckpoints returns the measurement budgets (in units of k per
// node) at which Fig 5(c) samples the AUC.
func convergenceCheckpoints() []int {
	return []int{1, 2, 5, 10, 20, 30, 40, 50}
}

// trainWithConvergence trains to the last checkpoint, recording AUC at each.
func (b *Bundle) trainWithConvergence(ds *dataset.Dataset, checkpoints []int) (*sim.Driver, []float64) {
	spec := RunSpec{DS: ds}
	spec.SGD = defaultSGD()
	k := b.K(ds)
	tau := ds.Median()
	cfg := sim.Config{SGD: spec.SGD, K: k, Tau: tau, Seed: b.O.Seed}
	drv, err := sim.ClassDriver(ds, tau, cfg, nil)
	if err != nil {
		panic(err)
	}
	var aucs []float64
	if ds.Trace != nil {
		tc := classify.NewTraceClassifier(ds.Metric, tau)
		label := func(m dataset.Measurement) (float64, bool) { return tc.Classify(m).Value(), true }
		pos := 0
		for _, cp := range checkpoints {
			target := cp * k * ds.N()
			need := target - drv.Steps()
			if need > 0 && pos < len(ds.Trace) {
				_, scanned := drv.ReplayTrace(ds.Trace[pos:], label, need)
				pos += scanned
			}
			aucs = append(aucs, drv.AUCSample(b.O.EvalPairs))
		}
	} else {
		for _, cp := range checkpoints {
			target := cp * k * ds.N()
			if need := target - drv.Steps(); need > 0 {
				drv.Run(need)
			}
			aucs = append(aucs, drv.AUCSample(b.O.EvalPairs))
		}
	}
	return drv, aucs
}

// interpROC returns the TPR at a given FPR by linear interpolation.
func interpROC(curve []eval.Point, fpr float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR >= fpr {
			a, bb := curve[i-1], curve[i]
			if bb.FPR == a.FPR {
				return bb.TPR
			}
			frac := (fpr - a.FPR) / (bb.FPR - a.FPR)
			return a.TPR + frac*(bb.TPR-a.TPR)
		}
	}
	return curve[len(curve)-1].TPR
}

// interpPR returns the precision at a given recall (nearest achievable).
func interpPR(curve []eval.PRPoint, recall float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	for i := 0; i < len(curve); i++ {
		if curve[i].Recall >= recall {
			return curve[i].Precision
		}
	}
	return curve[len(curve)-1].Precision
}

// Figure6 reproduces the robustness study: AUC under 0/5/10/15% erroneous
// labels. Types 1 and 4 run on every dataset; Types 2 and 3 only on HP-S3,
// matching the paper's threat model.
func Figure6(b *Bundle) []Table {
	var tables []Table
	levels := []float64{0, 0.05, 0.10, 0.15}
	for _, ds := range b.All() {
		types := []corrupt.Type{corrupt.FlipNearTau, corrupt.GoodToBad}
		if ds.Metric == dataset.ABW {
			types = []corrupt.Type{corrupt.FlipNearTau, corrupt.Underestimation, corrupt.FlipRandom, corrupt.GoodToBad}
		}
		t := Table{
			Title:  fmt.Sprintf("Figure 6 (%s): AUC vs erroneous label percentage", ds.Name),
			Header: append([]string{"error%"}, typeNames(types)...),
		}
		tau := ds.Median()
		clean := classify.Matrix(ds, tau)
		for _, level := range levels {
			row := []string{pct(level)}
			for _, typ := range types {
				labels := clean
				if level > 0 {
					labels = corruptedLabels(b, ds, clean, typ, tau, level)
				}
				drv, err := b.Train(RunSpec{DS: ds, Tau: tau, Labels: labels})
				if err != nil {
					panic(err)
				}
				row = append(row, f(drv.AUCSample(b.O.EvalPairs)))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

func typeNames(types []corrupt.Type) []string {
	var out []string
	for _, typ := range types {
		out = append(out, typ.String())
	}
	return out
}

func corruptedLabels(b *Bundle, ds *dataset.Dataset, clean *mat.Dense, typ corrupt.Type, tau, level float64) *mat.Dense {
	p := corrupt.Params{Type: typ, Tau: tau, Level: level}
	switch typ {
	case corrupt.FlipNearTau, corrupt.Underestimation:
		p.Delta = corrupt.CalibrateDelta(ds, typ, tau, level)
	}
	return corrupt.Apply(ds, clean, p, rand.New(rand.NewSource(b.O.Seed+int64(typ)*1000+int64(level*100))))
}

// Figure7 reproduces the peer-selection study: mean stretch (optimality)
// and unsatisfied-node percentage (satisfaction) versus peer-set size, for
// Random / Classification / Regression / Classification-with-noise (10%
// Type-1 + 5% Type-4 errors ≈ 15% total).
func Figure7(b *Bundle) []Table {
	var tables []Table
	peerCounts := []int{10, 20, 30, 40, 50, 60}
	for _, ds := range b.All() {
		tau := ds.Median()
		clean := classify.Matrix(ds, tau)

		// Train the three predictors once per dataset.
		clsDrv, err := b.Train(RunSpec{DS: ds, Tau: tau})
		if err != nil {
			panic(err)
		}
		qSpec := RunSpec{DS: ds, Tau: tau, Quantity: true}
		qSpec.SGD = defaultSGD()
		qSpec.SGD.Loss = loss.L2
		qDrv, err := b.Train(qSpec)
		if err != nil {
			panic(err)
		}
		noisy := corruptedLabels(b, ds, clean, corrupt.FlipNearTau, tau, 0.10)
		noisy = corrupt.Apply(ds, noisy, corrupt.Params{Type: corrupt.GoodToBad, Tau: tau, Level: 0.05},
			rand.New(rand.NewSource(b.O.Seed+555)))
		noisyDrv, err := b.Train(RunSpec{DS: ds, Tau: tau, Labels: noisy})
		if err != nil {
			panic(err)
		}

		stretch := Table{
			Title:  fmt.Sprintf("Figure 7 (%s, top): mean stretch vs peer-set size", ds.Name),
			Header: []string{"peers", "random", "classification", "regression", "classification+noise"},
		}
		satisf := Table{
			Title:  fmt.Sprintf("Figure 7 (%s, bottom): unsatisfied node %% vs peer-set size", ds.Name),
			Header: []string{"peers", "random", "classification", "regression", "classification+noise"},
		}
		for _, m := range peerCounts {
			if m >= ds.N()-b.K(ds) {
				continue // peer set cannot exceed the non-neighbor population
			}
			cfg := peersel.Config{
				PeerSetSize: m,
				Tau:         tau,
				Exclude:     peersel.NeighborExclusion(ds.N(), clsDrv.Neighbors),
				Seed:        b.O.Seed + int64(m),
			}
			sets := peersel.BuildPeerSets(ds, cfg)
			rnd := peersel.Evaluate(ds, sets, peersel.Random, nil, cfg)
			cls := peersel.Evaluate(ds, sets, peersel.ClassBased, clsDrv, cfg)
			qnt := peersel.Evaluate(ds, sets, peersel.QuantityBased, qDrv, cfg)
			nzy := peersel.Evaluate(ds, sets, peersel.ClassBased, noisyDrv, cfg)
			stretch.AddRow(fmt.Sprintf("%d", m),
				f(rnd.MeanStretch), f(cls.MeanStretch), f(qnt.MeanStretch), f(nzy.MeanStretch))
			satisf.AddRow(fmt.Sprintf("%d", m),
				pct(rnd.Unsatisfied), pct(cls.Unsatisfied), pct(qnt.Unsatisfied), pct(nzy.Unsatisfied))
		}
		tables = append(tables, stretch, satisf)
	}
	return tables
}

func defaultSGD() sgd.Config { return sgd.Defaults() }
