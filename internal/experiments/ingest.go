package experiments

import (
	"context"
	"fmt"

	"dmfsgd"
)

// Ingest exercises the streaming ingestion layer end to end: the same
// Meridian workload trained through composed measurement-stream
// scenarios (clean sampling, tool noise, measurement loss, node churn,
// metric drift, and everything at once), reporting how each scenario
// moves the AUC over the unmeasured pairs. Every source is seeded, so
// the table is deterministic for a fixed -seed.
//
// Stream time for a matrix source advances by one unit per probing
// round (n measurements), so the scenario windows below are expressed
// in rounds: the full run is budget·k rounds, churn and drift switch on
// a quarter of the way in.
func Ingest(b *Bundle) []Table {
	ds := b.Meridian()
	k := b.K(ds)
	seed := b.O.Seed
	budget := b.O.BudgetPerNode * k * ds.N()
	rounds := float64(b.O.BudgetPerNode * k)

	churn := dmfsgd.ChurnConfig{
		Start:    rounds / 4,
		MeanUp:   rounds / 8,
		MeanDown: rounds / 8,
		Fraction: 0.3,
		Seed:     seed + 101,
	}
	drift := dmfsgd.DriftConfig{
		Rate:     2 / rounds, // ≈ e² ≈ 7× inflation by the end of the run
		Start:    rounds / 4,
		Fraction: 0.3,
		Seed:     seed + 102,
	}

	scenarios := []struct {
		name string
		wrap func(dmfsgd.Source) dmfsgd.Source
	}{
		{"clean", nil},
		{"noise sigma=0.3", func(s dmfsgd.Source) dmfsgd.Source { return dmfsgd.WithNoise(s, 0.3, seed+103) }},
		{"drop 20%", func(s dmfsgd.Source) dmfsgd.Source { return dmfsgd.WithDrop(s, 0.2, seed+104) }},
		{"churn 30% of nodes", func(s dmfsgd.Source) dmfsgd.Source { return dmfsgd.WithChurn(s, churn) }},
		{"drift 30% of nodes", func(s dmfsgd.Source) dmfsgd.Source { return dmfsgd.WithDrift(s, drift) }},
		{"churn+drift+noise", func(s dmfsgd.Source) dmfsgd.Source {
			return dmfsgd.WithNoise(dmfsgd.WithDrift(dmfsgd.WithChurn(s, churn), drift), 0.3, seed+105)
		}},
	}

	t := Table{
		Title:  "Ingestion scenarios — Meridian through composed measurement sources, equal budget",
		Header: []string{"scenario", "measurements", "auc"},
	}
	ctx := context.Background()
	for _, sc := range scenarios {
		src, err := dmfsgd.NewMatrixSource(ds, k, seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: ingest: %v", err))
		}
		var stream dmfsgd.Source = src
		if sc.wrap != nil {
			stream = sc.wrap(src)
		}
		sess, err := dmfsgd.NewSessionFromSource(ds, stream, dmfsgd.WithK(k), dmfsgd.WithSeed(seed))
		if err != nil {
			panic(fmt.Sprintf("experiments: ingest: %v", err))
		}
		if err := sess.Run(ctx, budget); err != nil {
			panic(fmt.Sprintf("experiments: ingest: %v", err))
		}
		auc, err := sess.AUC(ctx, b.O.EvalPairs)
		if err != nil {
			panic(fmt.Sprintf("experiments: ingest: %v", err))
		}
		t.AddRow(sc.name, fmt.Sprintf("%d", sess.Steps()), f(auc))
		sess.Close()
	}
	return []Table{t}
}
