// Package experiments regenerates every table and figure of the paper's
// evaluation section (§6) from the synthetic datasets. Each experiment is
// a pure function of an Options value and returns printable Tables whose
// rows/series correspond to what the paper plots.
//
// The per-experiment index lives in DESIGN.md §4; cmd/dmfbench prints the
// tables.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
)

// Options sizes the experiments. The paper's datasets are large (Meridian
// has 2500 nodes); Default keeps wall-clock reasonable while preserving
// every qualitative result, and Full restores paper-scale sizes.
type Options struct {
	// HarvardN, MeridianN, HPS3N are the node counts.
	HarvardN, MeridianN, HPS3N int
	// HarvardMeasurements sizes the dynamic trace.
	HarvardMeasurements int
	// HarvardK, MeridianK, HPS3K are the neighbor counts (paper defaults
	// 10/32/10).
	HarvardK, MeridianK, HPS3K int
	// BudgetPerNode is the number of measurements consumed per node, in
	// units of k (paper: converged by 20).
	BudgetPerNode int
	// EvalPairs caps the evaluation set for sweep points (0 = all pairs).
	EvalPairs int
	// Seed drives everything.
	Seed int64
}

// Default returns the standard scaled-down options used by cmd/dmfbench.
func Default() Options {
	return Options{
		HarvardN: 226, MeridianN: 400, HPS3N: 231,
		HarvardMeasurements: 1_000_000,
		HarvardK:            10, MeridianK: 32, HPS3K: 10,
		BudgetPerNode: 20,
		EvalPairs:     50_000,
		Seed:          1,
	}
}

// Quick returns small options for unit tests and testing.B benchmarks.
func Quick() Options {
	return Options{
		HarvardN: 80, MeridianN: 120, HPS3N: 80,
		HarvardMeasurements: 120_000,
		HarvardK:            8, MeridianK: 16, HPS3K: 8,
		BudgetPerNode: 20,
		EvalPairs:     20_000,
		Seed:          1,
	}
}

// Full returns paper-scale options (Meridian 2500 nodes; expect long runs).
func Full() Options {
	o := Default()
	o.MeridianN = 2500
	o.HarvardMeasurements = 2_492_546
	return o
}

// Bundle caches the generated datasets for one Options value so the three
// generators run once per invocation of the harness.
type Bundle struct {
	O Options

	once [3]sync.Once
	ds   [3]*dataset.Dataset
}

// NewBundle creates a dataset cache.
func NewBundle(o Options) *Bundle { return &Bundle{O: o} }

// Harvard returns the Harvard-like dynamic RTT dataset.
func (b *Bundle) Harvard() *dataset.Dataset {
	b.once[0].Do(func() {
		b.ds[0] = dataset.Harvard(dataset.HarvardConfig{
			N:            b.O.HarvardN,
			Measurements: b.O.HarvardMeasurements,
			Seed:         b.O.Seed,
		})
	})
	return b.ds[0]
}

// Meridian returns the Meridian-like static RTT dataset.
func (b *Bundle) Meridian() *dataset.Dataset {
	b.once[1].Do(func() {
		b.ds[1] = dataset.Meridian(dataset.MeridianConfig{N: b.O.MeridianN, Seed: b.O.Seed})
	})
	return b.ds[1]
}

// HPS3 returns the HP-S3-like ABW dataset.
func (b *Bundle) HPS3() *dataset.Dataset {
	b.once[2].Do(func() {
		b.ds[2] = dataset.HPS3(dataset.HPS3Config{N: b.O.HPS3N, Seed: b.O.Seed})
	})
	return b.ds[2]
}

// All returns the three datasets in paper order.
func (b *Bundle) All() []*dataset.Dataset {
	return []*dataset.Dataset{b.Harvard(), b.Meridian(), b.HPS3()}
}

// K returns the default neighbor count for a dataset.
func (b *Bundle) K(ds *dataset.Dataset) int {
	switch ds.Name {
	case "harvard":
		return b.O.HarvardK
	case "meridian":
		return b.O.MeridianK
	case "hp-s3":
		return b.O.HPS3K
	default:
		return ds.DefaultK
	}
}

// RunSpec fully describes one training run.
type RunSpec struct {
	// DS is the dataset.
	DS *dataset.Dataset
	// SGD overrides the hyper-parameters (zero value = paper defaults).
	SGD sgd.Config
	// K is the neighbor count (0 = bundle default).
	K int
	// Tau is the threshold (0 = dataset median).
	Tau float64
	// Labels overrides the training class matrix (corrupted labels); nil
	// trains on clean classes.
	Labels *mat.Dense
	// Quantity trains on raw values with scaling (regression mode).
	Quantity bool
	// ForceAsymmetric disables the symmetric RTT update (ablation).
	ForceAsymmetric bool
	// BudgetPerNode overrides Options.BudgetPerNode when positive.
	BudgetPerNode int
	// Seed offsets the bundle seed so repeated runs differ deliberately.
	Seed int64
}

// Train builds and runs a driver to the configured budget. Harvard runs
// replay the trace in time order; static datasets consume measurements in
// random order (§6.1).
func (b *Bundle) Train(spec RunSpec) (*sim.Driver, error) {
	ds := spec.DS
	if spec.SGD.Rank == 0 {
		spec.SGD = sgd.Defaults()
	}
	if spec.K == 0 {
		spec.K = b.K(ds)
	}
	if spec.Tau == 0 {
		spec.Tau = ds.Median()
	}
	budget := b.O.BudgetPerNode
	if spec.BudgetPerNode > 0 {
		budget = spec.BudgetPerNode
	}
	cfg := sim.Config{
		SGD:             spec.SGD,
		K:               spec.K,
		Tau:             spec.Tau,
		Seed:            b.O.Seed + spec.Seed,
		ForceAsymmetric: spec.ForceAsymmetric,
	}

	var drv *sim.Driver
	var err error
	switch {
	case spec.Quantity:
		drv, err = sim.QuantityDriver(ds, spec.Tau, cfg)
	case spec.Labels != nil:
		cfg.Tau = spec.Tau
		drv, err = sim.New(ds, spec.Labels, cfg)
	default:
		drv, err = sim.ClassDriver(ds, spec.Tau, cfg, nil)
	}
	if err != nil {
		return nil, err
	}

	total := budget * spec.K * ds.N()
	if ds.Trace != nil {
		// Time-ordered replay; labels come from the measurement stream
		// (or the persistent corrupted label matrix when provided).
		drv.ReplayTrace(ds.Trace, b.traceLabeler(spec, ds), total)
	} else {
		drv.Run(total)
	}
	return drv, nil
}

// traceLabeler builds the per-measurement label function for replay.
func (b *Bundle) traceLabeler(spec RunSpec, ds *dataset.Dataset) func(dataset.Measurement) (float64, bool) {
	switch {
	case spec.Quantity:
		return func(m dataset.Measurement) (float64, bool) { return m.Value, true }
	case spec.Labels != nil:
		labels := spec.Labels
		return func(m dataset.Measurement) (float64, bool) {
			if labels.IsMissing(m.I, m.J) {
				return 0, false
			}
			return labels.At(m.I, m.J), true
		}
	default:
		tc := classify.NewTraceClassifier(ds.Metric, spec.Tau)
		return func(m dataset.Measurement) (float64, bool) {
			return tc.Classify(m).Value(), true
		}
	}
}

// Table is a printable experiment result: a title, a header row, and data
// rows. String renders aligned ASCII.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// f formats a float at sensible precision for tables.
func f(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// f1 formats with one decimal (thresholds, deltas).
func f1(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", v)
}

// pct formats a fraction as a percentage.
func pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}
