package experiments

import (
	"math"
	"testing"

	"dmfsgd/internal/eval"
	"dmfsgd/internal/mat"
)

func TestImputeColumnMedian(t *testing.T) {
	m := mat.NewMissing(3, 2)
	m.Set(0, 0, 1)
	m.Set(1, 0, 3)
	// column 0: median of {1,3} = 2 fills row 2; column 1 all missing → 0.
	out := ImputeColumnMedian(m)
	if out.At(2, 0) != 2 {
		t.Errorf("imputed (2,0) = %v, want 2", out.At(2, 0))
	}
	if out.At(0, 1) != 0 {
		t.Errorf("all-missing column should impute 0, got %v", out.At(0, 1))
	}
	// present entries untouched; input unmodified.
	if out.At(0, 0) != 1 || !m.IsMissing(2, 0) {
		t.Error("Impute modified present entries or its input")
	}
}

func TestInterpROC(t *testing.T) {
	curve := []eval.Point{
		{FPR: 0, TPR: 0},
		{FPR: 0.5, TPR: 0.8},
		{FPR: 1, TPR: 1},
	}
	if got := interpROC(curve, 0); got != 0 {
		t.Errorf("at 0: %v", got)
	}
	if got := interpROC(curve, 0.25); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("at 0.25: %v, want 0.4", got)
	}
	if got := interpROC(curve, 1); got != 1 {
		t.Errorf("at 1: %v", got)
	}
	if got := interpROC(nil, 0.5); got != 0 {
		t.Errorf("empty curve: %v", got)
	}
	// Vertical segment (same FPR twice): returns the best achievable TPR
	// at that FPR (the upper point).
	vert := []eval.Point{{FPR: 0, TPR: 0}, {FPR: 0, TPR: 0.5}, {FPR: 1, TPR: 1}}
	if got := interpROC(vert, 0); got != 0.5 {
		t.Errorf("vertical at 0: %v, want 0.5", got)
	}
}

func TestInterpPR(t *testing.T) {
	curve := []eval.PRPoint{
		{Recall: 0.2, Precision: 1},
		{Recall: 0.6, Precision: 0.8},
		{Recall: 1, Precision: 0.5},
	}
	if got := interpPR(curve, 0.1); got != 1 {
		t.Errorf("below first recall: %v", got)
	}
	if got := interpPR(curve, 0.5); got != 0.8 {
		t.Errorf("mid: %v", got)
	}
	if got := interpPR(curve, 1); got != 0.5 {
		t.Errorf("end: %v", got)
	}
	if got := interpPR(nil, 0.5); got != 0 {
		t.Errorf("empty: %v", got)
	}
}

func TestConvergenceCheckpoints(t *testing.T) {
	cps := convergenceCheckpoints()
	if cps[len(cps)-1] != 50 {
		t.Errorf("last checkpoint = %d, want 50 (Fig 5c x-axis)", cps[len(cps)-1])
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Error("checkpoints must increase")
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if f(math.NaN()) != "n/a" || f1(math.NaN()) != "n/a" || pct(math.NaN()) != "n/a" {
		t.Error("NaN formatting")
	}
	if f(0.12345) != "0.123" {
		t.Errorf("f = %q", f(0.12345))
	}
	if f1(12.34) != "12.3" {
		t.Errorf("f1 = %q", f1(12.34))
	}
	if pct(0.123) != "12.3%" {
		t.Errorf("pct = %q", pct(0.123))
	}
}

func TestMoveNodes(t *testing.T) {
	ds := sharedBundle.Meridian()
	after, moved := moveNodes(ds, 0.2, 99)
	if moved < ds.N()/6 || moved > ds.N()/3 {
		t.Errorf("moved = %d of %d, want ≈20%%", moved, ds.N())
	}
	// Changed rows must stay symmetric; unchanged rows identical.
	changed := 0
	for i := 0; i < ds.N(); i++ {
		for j := i + 1; j < ds.N(); j++ {
			if after.Matrix.At(i, j) != after.Matrix.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
			if after.Matrix.At(i, j) != ds.Matrix.At(i, j) {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Error("moveNodes changed nothing")
	}
	// Original untouched.
	if ds.Matrix.At(0, 1) != sharedBundle.Meridian().Matrix.At(0, 1) {
		t.Error("moveNodes mutated the source dataset")
	}
}
