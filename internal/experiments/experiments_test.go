package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// quickBundle shares datasets across tests in this package.
var sharedBundle = NewBundle(Quick())

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	out := tbl.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Errorf("table render:\n%s", out)
	}
}

func TestOptionsPresets(t *testing.T) {
	d, q, full := Default(), Quick(), Full()
	if d.MeridianN <= q.MeridianN {
		t.Error("default should exceed quick")
	}
	if full.MeridianN != 2500 {
		t.Errorf("full Meridian = %d, want paper's 2500", full.MeridianN)
	}
}

func TestBundleCachesDatasets(t *testing.T) {
	b := NewBundle(Quick())
	if b.Meridian() != b.Meridian() {
		t.Error("dataset not cached")
	}
	if b.K(b.Meridian()) != Quick().MeridianK {
		t.Error("K lookup")
	}
	if len(b.All()) != 3 {
		t.Error("All should return three datasets")
	}
}

func TestFigure1SpectraDecay(t *testing.T) {
	tables := Figure1(sharedBundle)
	if len(tables) != 1 {
		t.Fatal("one table expected")
	}
	tbl := tables[0]
	if len(tbl.Rows) != 20 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// All four spectra start at 1 and decay fast: by index 10 every
	// spectrum must be below 0.5 (the paper's plot collapses by ~5).
	for col := 1; col <= 4; col++ {
		first := parse(t, tbl.Rows[0][col])
		if math.Abs(first-1) > 1e-9 {
			t.Errorf("col %d: first singular value %v, want 1 (normalized)", col, first)
		}
		tenth := parse(t, tbl.Rows[9][col])
		if tenth > 0.5 {
			t.Errorf("col %d: 10th singular value %v, spectrum not low-rank", col, tenth)
		}
		// Monotone non-increasing.
		prev := first
		for r := 1; r < 20; r++ {
			v := parse(t, tbl.Rows[r][col])
			if v > prev+1e-9 {
				t.Errorf("col %d: spectrum not sorted at row %d", col, r)
			}
			prev = v
		}
	}
}

func TestFigure3DefaultsNearOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	tables := Figure3(sharedBundle)
	if len(tables) != 2 {
		t.Fatal("two tables expected")
	}
	// In each sweep, the η=0.1 / λ=0.1 row (index 2) must be within 0.08
	// AUC of the column max — "λ = 0.1 and η = 0.1 work well for all
	// three datasets".
	for ti, tbl := range tables {
		if len(tbl.Rows) != 4 {
			t.Fatalf("table %d rows = %d", ti, len(tbl.Rows))
		}
		for col := 1; col < len(tbl.Header); col++ {
			best := 0.0
			for _, row := range tbl.Rows {
				if v := parse(t, row[col]); v > best {
					best = v
				}
			}
			def := parse(t, tbl.Rows[2][col])
			if def < best-0.08 {
				t.Errorf("table %d col %s: default 0.1 gives %v, best %v",
					ti, tbl.Header[col], def, best)
			}
		}
	}
}

func TestFigure4aRankTenSufficient(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	tbl := Figure4a(sharedBundle)[0]
	// r=10 (row 1) must be within 0.05 of the best rank for every dataset
	// ("a pair of relatively small k and r can already provide sufficient
	// classification accuracy").
	for col := 1; col <= 3; col++ {
		best := 0.0
		for _, row := range tbl.Rows {
			if v := parse(t, row[col]); v > best {
				best = v
			}
		}
		r10 := parse(t, tbl.Rows[1][col])
		if r10 < best-0.05 {
			t.Errorf("col %d: r=10 gives %v, best %v", col, r10, best)
		}
	}
}

func TestFigure4bMoreNeighborsHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	tbl := Figure4b(sharedBundle)[0]
	// Largest k must beat smallest k on every dataset (AUC columns are
	// 2, 4, 6).
	for _, col := range []int{2, 4, 6} {
		lo := parse(t, tbl.Rows[0][col])
		hi := parse(t, tbl.Rows[len(tbl.Rows)-1][col])
		if hi < lo-0.02 {
			t.Errorf("col %d: k-max AUC %v worse than k-min %v", col, hi, lo)
		}
	}
}

func TestFigure4cRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	tbl := Figure4c(sharedBundle)[0]
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Every cell is a valid AUC above chance.
	for _, row := range tbl.Rows {
		for col := 1; col <= 3; col++ {
			v := parse(t, row[col])
			if v < 0.55 || v > 1 {
				t.Errorf("portion %s col %d: AUC %v out of plausible band", row[0], col, v)
			}
		}
	}
}

func TestFigure5CurvesAndConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	tables := Figure5(sharedBundle)
	if len(tables) != 3 {
		t.Fatal("three tables expected")
	}
	roc, _, conv := tables[0], tables[1], tables[2]
	// ROC: TPR at FPR=1 must be 1; TPR non-decreasing in FPR.
	for col := 1; col <= 3; col++ {
		last := parse(t, roc.Rows[len(roc.Rows)-1][col])
		if math.Abs(last-1) > 1e-6 {
			t.Errorf("ROC col %d must reach TPR 1, got %v", col, last)
		}
		prev := -1.0
		for _, row := range roc.Rows {
			v := parse(t, row[col])
			if v < prev-1e-9 {
				t.Errorf("ROC col %d not monotone", col)
				break
			}
			prev = v
		}
	}
	// Convergence: final AUC >= first AUC and >= 0.75 everywhere
	// ("converges fast after ... no more than 20×k measurements").
	for col := 1; col <= 3; col++ {
		first := parse(t, conv.Rows[0][col])
		final := parse(t, conv.Rows[len(conv.Rows)-1][col])
		if final < first-0.02 {
			t.Errorf("conv col %d: AUC fell %v -> %v", col, first, final)
		}
		if final < 0.75 {
			t.Errorf("conv col %d: final AUC %v too low", col, final)
		}
	}
}

func TestFigure6RandomErrorsHurtMore(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	tables := Figure6(sharedBundle)
	if len(tables) != 3 {
		t.Fatal("three tables expected")
	}
	for _, tbl := range tables {
		// AUC at 0% error must be the column max (within noise), and the
		// near-τ flip column must degrade less at 15% than good-to-bad
		// (the paper's main robustness finding).
		nearCol, g2bCol := 1, len(tbl.Header)-1
		clean := parse(t, tbl.Rows[0][nearCol])
		near15 := parse(t, tbl.Rows[len(tbl.Rows)-1][nearCol])
		g2b15 := parse(t, tbl.Rows[len(tbl.Rows)-1][g2bCol])
		if near15 < g2b15-0.03 {
			t.Errorf("%s: near-τ flips (%v) hurt more than good-to-bad (%v)",
				tbl.Title, near15, g2b15)
		}
		if clean < near15-0.02 {
			t.Errorf("%s: clean AUC %v below corrupted %v", tbl.Title, clean, near15)
		}
	}
}

func TestFigure7SelectionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	tables := Figure7(sharedBundle)
	if len(tables) != 6 {
		t.Fatalf("tables = %d, want 6 (stretch+satisfaction × 3 datasets)", len(tables))
	}
	for i := 0; i < len(tables); i += 2 {
		stretch, satisf := tables[i], tables[i+1]
		isABW := strings.Contains(stretch.Title, "hp-s3")
		for _, row := range satisf.Rows {
			rnd := parse(t, row[1])
			cls := parse(t, row[2])
			if cls > rnd+2 { // percentage points
				t.Errorf("%s peers=%s: classification unsatisfied %v%% worse than random %v%%",
					satisf.Title, row[0], cls, rnd)
			}
		}
		// Stretch: regression (col 3) at the largest peer count must beat
		// random (col 1).
		last := stretch.Rows[len(stretch.Rows)-1]
		rnd, reg := parse(t, last[1]), parse(t, last[3])
		if isABW {
			if reg < rnd-0.02 {
				t.Errorf("%s: ABW regression stretch %v below random %v", stretch.Title, reg, rnd)
			}
		} else if reg > rnd+0.02 {
			t.Errorf("%s: RTT regression stretch %v above random %v", stretch.Title, reg, rnd)
		}
	}
}

func TestTable1MatchesDatasetPercentiles(t *testing.T) {
	tbl := Table1(sharedBundle)[0]
	if len(tbl.Rows) != 5 {
		t.Fatal("five portions expected")
	}
	// RTT thresholds ascend with portion; ABW thresholds descend.
	prevH, prevM, prevA := -1.0, -1.0, math.Inf(1)
	for _, row := range tbl.Rows {
		h, m, a := parse(t, row[1]), parse(t, row[2]), parse(t, row[3])
		if h < prevH || m < prevM {
			t.Error("RTT thresholds must ascend with portion")
		}
		if a > prevA {
			t.Error("ABW thresholds must descend with portion")
		}
		prevH, prevM, prevA = h, m, a
	}
}

func TestTable2AccuracyAboveChance(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs")
	}
	tables := Table2(sharedBundle)
	if len(tables) != 3 {
		t.Fatal("three confusion matrices expected")
	}
	for _, tbl := range tables {
		// Diagonal cells (TPR, TNR) must dominate their rows.
		tpr := parse(t, tbl.Rows[0][1])
		fnr := parse(t, tbl.Rows[0][2])
		fpr := parse(t, tbl.Rows[1][1])
		tnr := parse(t, tbl.Rows[1][2])
		if tpr < fnr || tnr < fpr {
			t.Errorf("%s: confusion diagonal does not dominate: %v/%v %v/%v",
				tbl.Title, tpr, fnr, fpr, tnr)
		}
		if math.Abs(tpr+fnr-100) > 0.2 || math.Abs(fpr+tnr-100) > 0.2 {
			t.Errorf("%s: confusion rows must sum to 100%%", tbl.Title)
		}
	}
}

func TestTable3DeltasGrowWithLevel(t *testing.T) {
	tbl := Table3(sharedBundle)[0]
	if len(tbl.Rows) != 3 {
		t.Fatal("three levels expected")
	}
	for col := 1; col < len(tbl.Header); col++ {
		prev := -1.0
		for _, row := range tbl.Rows {
			v := parse(t, row[col])
			if v < prev {
				t.Errorf("col %d: delta not monotone in error level", col)
			}
			prev = v
		}
	}
}

func TestAblationsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs")
	}
	tbl := Ablations(sharedBundle)[0]
	get := func(name string) float64 {
		for _, row := range tbl.Rows {
			if row[0] == name {
				return parse(t, row[1])
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	def := get("logistic (default)")
	if def < 0.8 {
		t.Errorf("default AUC %v too low", def)
	}
	if asym := get("asymmetric updates only"); asym > def+0.03 {
		t.Errorf("symmetric trick should not hurt: sym %v vs asym %v", def, asym)
	}
	if viv := get("vivaldi baseline"); viv < 0.6 {
		t.Errorf("vivaldi baseline AUC %v implausibly low", viv)
	}
}

func TestConsensusAblationHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs")
	}
	plain, filtered := ConsensusAblation(sharedBundle, 0.30, 9)
	if filtered < plain {
		t.Errorf("consensus filter should help: plain %v filtered %v", plain, filtered)
	}
	if filtered < 0.8 {
		t.Errorf("filtered AUC %v too low", filtered)
	}
}

func TestDynamicsTrackingRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs")
	}
	tbl := DynamicsTracking(sharedBundle)[0]
	if len(tbl.Rows) < 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Row 0: converged on the old truth — high vs old, lower vs new.
	oldAUC0 := parse(t, tbl.Rows[0][2])
	newAUC0 := parse(t, tbl.Rows[0][3])
	if oldAUC0 < 0.85 {
		t.Errorf("pre-change AUC vs old truth = %v", oldAUC0)
	}
	if newAUC0 >= oldAUC0 {
		t.Errorf("moved nodes should hurt new-truth AUC: old %v new %v", oldAUC0, newAUC0)
	}
	// Final row: recovering on the new truth without restart, while the
	// stale model decays.
	last := tbl.Rows[len(tbl.Rows)-1]
	newAUCEnd := parse(t, last[3])
	oldAUCEnd := parse(t, last[2])
	if newAUCEnd < newAUC0+0.02 {
		t.Errorf("no recovery: %v -> %v", newAUC0, newAUCEnd)
	}
	if newAUCEnd < 0.8 {
		t.Errorf("recovered AUC %v too low", newAUCEnd)
	}
	if oldAUCEnd >= oldAUC0 {
		t.Errorf("old-truth AUC should decay after the change: %v -> %v", oldAUC0, oldAUCEnd)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig3", "fig4a", "fig4b", "fig4c", "fig5", "fig6", "fig7", "table1", "table2", "table3", "ablation", "dynamics", "engine", "ingest"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries", len(reg))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, ok := Lookup("fig5"); !ok {
		t.Error("Lookup(fig5) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}
