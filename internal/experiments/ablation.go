package experiments

import (
	"math/rand"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/loss"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/vivaldi"
)

// Ablations quantifies the design choices DESIGN.md §5 calls out, on the
// Meridian dataset (the largest static one):
//
//   - loss function: logistic vs hinge vs L2-on-classes;
//   - regularization: λ = 0.1 vs λ = 0 (coordinate drift);
//   - RTT symmetry trick: Algorithm-1 double update vs one-sided updates;
//   - class-based inputs vs quantity-based inputs at equal budget;
//   - DMFSGD vs the Vivaldi baseline (metric-space embedding).
func Ablations(b *Bundle) []Table {
	ds := b.Meridian()
	tau := ds.Median()

	t := Table{
		Title:  "Ablations (meridian, defaults unless noted): test AUC",
		Header: []string{"variant", "AUC"},
	}

	run := func(name string, mutate func(*RunSpec)) {
		spec := RunSpec{DS: ds, Tau: tau}
		spec.SGD = defaultSGD()
		if mutate != nil {
			mutate(&spec)
		}
		drv, err := b.Train(spec)
		if err != nil {
			panic(err)
		}
		auc := drv.AUCSample(b.O.EvalPairs)
		if spec.Quantity {
			// Quantity predictions rank in metric units: negate for RTT so
			// larger score = better, as the AUC convention expects.
			labels, scores := drv.EvalSet(b.O.EvalPairs)
			if ds.Metric.GoodIsLow() {
				for i := range scores {
					scores[i] = -scores[i]
				}
			}
			auc = eval.AUC(labels, scores)
		}
		t.AddRow(name, f(auc))
	}

	run("logistic (default)", nil)
	run("hinge", func(s *RunSpec) { s.SGD.Loss = loss.Hinge })
	run("l2 on classes", func(s *RunSpec) { s.SGD.Loss = loss.L2 })
	run("lambda=0 (no regularization)", func(s *RunSpec) {
		s.SGD.Lambda = 0
		s.SGD.MaxCoord = 1e6
	})
	run("asymmetric updates only", func(s *RunSpec) { s.ForceAsymmetric = true })
	run("quantity-based (L2 on raw values)", func(s *RunSpec) {
		s.Quantity = true
		s.SGD.Loss = loss.L2
	})
	t.AddRow("vivaldi baseline", f(vivaldiAUC(b, ds, tau)))
	return []Table{t}
}

// vivaldiAUC trains a Vivaldi system with the same neighbor budget and
// evaluates its RTT predictions as a classifier at τ.
func vivaldiAUC(b *Bundle, ds *dataset.Dataset, tau float64) float64 {
	cfg := vivaldi.Defaults()
	rng := rand.New(rand.NewSource(b.O.Seed + 999))
	k := b.K(ds)
	_, neighbors := mat.NeighborMask(ds.N(), k, true, rng)
	nodes := make([]*vivaldi.Coordinates, ds.N())
	for i := range nodes {
		nodes[i] = vivaldi.NewCoordinates(cfg, rng)
	}
	budget := b.O.BudgetPerNode * k * ds.N()
	for step := 0; step < budget; step++ {
		i := rng.Intn(ds.N())
		j := neighbors[i][rng.Intn(k)]
		if ds.Matrix.IsMissing(i, j) {
			continue
		}
		cfg.Update(nodes[i], nodes[j], ds.Matrix.At(i, j))
	}
	// Evaluate on random non-neighbor pairs: score = −predicted RTT.
	var labels, scores []float64
	sub := rand.New(rand.NewSource(b.O.Seed + 998))
	target := b.O.EvalPairs
	if target <= 0 {
		target = 50000
	}
	for len(labels) < target {
		i, j := sub.Intn(ds.N()), sub.Intn(ds.N())
		if i == j || ds.Matrix.IsMissing(i, j) {
			continue
		}
		labels = append(labels, classify.Of(ds.Metric, ds.Matrix.At(i, j), tau).Value())
		scores = append(scores, -vivaldi.Predict(nodes[i], nodes[j]))
	}
	return eval.AUC(labels, scores)
}

// ConsensusAblation measures the benefit of the §6.3 consensus heuristic
// under per-probe malicious flips: the same training run with and without
// a majority filter in front of the labels. Returns (withoutFilter,
// withFilter) AUC. Exposed for the ablation benchmark.
func ConsensusAblation(b *Bundle, flipRate float64, window int) (plain, filtered float64) {
	ds := b.Meridian()
	tau := ds.Median()
	run := func(useFilter bool) float64 {
		drv, err := b.Train(RunSpec{DS: ds, Tau: tau, Labels: flippedLabels(b, ds, tau, flipRate, useFilter, window)})
		if err != nil {
			panic(err)
		}
		return drv.AUCSample(b.O.EvalPairs)
	}
	return run(false), run(true)
}

// flippedLabels simulates per-pair malicious flips and optional majority
// recovery: with a filter of window W observing each pair multiple times,
// the recovered label matrix approaches the truth; without it, flipped
// labels persist. The simulation draws W observations per pair and applies
// the majority (W=1 without filter).
func flippedLabels(b *Bundle, ds *dataset.Dataset, tau, flipRate float64, useFilter bool, window int) *mat.Dense {
	clean := classify.Matrix(ds, tau)
	out := clean.Clone()
	rng := rand.New(rand.NewSource(b.O.Seed + 777))
	w := 1
	if useFilter {
		w = window
	}
	out.Apply(func(i, j int, v float64) float64 {
		votes := 0
		for o := 0; o < w; o++ {
			x := v
			if rng.Float64() < flipRate {
				x = -x
			}
			votes += int(x)
		}
		if votes > 0 {
			return 1
		}
		return -1
	})
	return out
}
