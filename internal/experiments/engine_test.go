package experiments

import "testing"

// TestEngineScalingDeterministicAcrossShards: every shard count reports
// the same updates and AUC — the user-visible witness of the scheduler's
// P-independence.
func TestEngineScalingDeterministicAcrossShards(t *testing.T) {
	b := NewBundle(Quick())
	tables := EngineScaling(b)
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows[1:] {
		if row[3] != rows[0][3] || row[4] != rows[0][4] {
			t.Errorf("shard count %s diverges: updates %s vs %s, auc %s vs %s",
				row[0], row[3], rows[0][3], row[4], rows[0][4])
		}
	}
}
