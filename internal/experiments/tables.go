package experiments

import (
	"fmt"

	"dmfsgd/internal/corrupt"
	"dmfsgd/internal/dataset"
)

// Table1 reproduces the paper's Table 1: the classification thresholds τ
// that produce 10/25/50/75/90% portions of "good" paths in each dataset.
// (Paper values for reference: Harvard 27.5/59.9/131.6/249.6/324.2 ms,
// Meridian 19.4/36.2/56.4/88.1/155.2 ms, HP-S3 88.2/72.2/43.1/14.4/10.4
// Mbps.)
func Table1(b *Bundle) []Table {
	t := Table{
		Title:  "Table 1: tau for given portions of good paths",
		Header: []string{"good%", "harvard (ms)", "meridian (ms)", "hp-s3 (Mbps)"},
	}
	for _, portion := range []float64{0.10, 0.25, 0.50, 0.75, 0.90} {
		row := []string{pct(portion)}
		for _, ds := range b.All() {
			row = append(row, f1(ds.TauForGoodPortion(portion)))
		}
		t.AddRow(row...)
	}
	return []Table{t}
}

// Table2 reproduces the accuracy rates and confusion matrices under the
// default parameters, decided by sign(x̂). (Paper: accuracy 89.4% Harvard,
// 85.4% Meridian, 87.3% HP-S3.)
func Table2(b *Bundle) []Table {
	var tables []Table
	for _, ds := range b.All() {
		drv, err := b.Train(RunSpec{DS: ds})
		if err != nil {
			panic(err)
		}
		c := drv.Confusion()
		t := Table{
			Title:  fmt.Sprintf("Table 2 (%s): accuracy = %s", ds.Name, pct(c.Accuracy())),
			Header: []string{"actual \\ predicted", "good", "bad"},
		}
		t.AddRow("good", pct(c.TPR()), pct(c.FNR()))
		t.AddRow("bad", pct(c.FPR()), pct(c.TNR()))
		tables = append(tables, t)
	}
	return tables
}

// Table3 reproduces the δ calibration table: the δ values that produce
// 5/10/15% erroneous labels for Type-1 errors (all datasets) and Type-2
// errors (HP-S3). (Paper: e.g. Harvard Type 1 at 5% → δ=24.4 ms; HP-S3
// Type 2 at 15% → δ=10.0 Mbps.)
func Table3(b *Bundle) []Table {
	t := Table{
		Title: "Table 3: delta producing each error level (tau = median)",
		Header: []string{
			"error%",
			"harvard type1 (ms)", "meridian type1 (ms)",
			"hp-s3 type1 (Mbps)", "hp-s3 type2 (Mbps)",
		},
	}
	for _, level := range []float64{0.05, 0.10, 0.15} {
		row := []string{pct(level)}
		for _, ds := range b.All() {
			tau := ds.Median()
			row = append(row, f1(corrupt.CalibrateDelta(ds, corrupt.FlipNearTau, tau, level)))
			if ds.Metric == dataset.ABW {
				row = append(row, f1(corrupt.CalibrateDelta(ds, corrupt.Underestimation, tau, level)))
			}
		}
		t.AddRow(row...)
	}
	return []Table{t}
}

// Registry maps experiment IDs (as accepted by cmd/dmfbench -exp) to their
// runners, in paper order.
func Registry() []struct {
	ID  string
	Run func(*Bundle) []Table
} {
	return []struct {
		ID  string
		Run func(*Bundle) []Table
	}{
		{"fig1", Figure1},
		{"fig3", Figure3},
		{"fig4a", Figure4a},
		{"fig4b", Figure4b},
		{"fig4c", Figure4c},
		{"fig5", Figure5},
		{"fig6", Figure6},
		{"fig7", Figure7},
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"ablation", Ablations},
		{"dynamics", DynamicsTracking},
		{"engine", EngineScaling},
		{"ingest", Ingest},
	}
}

// Lookup finds one experiment runner by ID.
func Lookup(id string) (func(*Bundle) []Table, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}
