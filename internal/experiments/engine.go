package experiments

import (
	"fmt"

	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
)

// EngineScaling exercises the sharded parallel engine on the Meridian
// workload: the same epoch-training budget executed on 1, 2, 4 and 8
// shards. The AUC column is the determinism witness — the scheduler
// guarantees bit-identical coordinates for every shard count at a fixed
// seed, so every row must report the same value while wall-clock drops
// with cores (measured by the engine benchmarks, not here: table output
// stays deterministic).
func EngineScaling(b *Bundle) []Table {
	ds := b.Meridian()
	k := b.K(ds)
	t := Table{
		Title:  "Engine scaling — Meridian epoch training, fixed seed across shard counts",
		Header: []string{"shards", "epochs", "probes/node", "updates", "auc"},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := sim.Config{
			SGD:     sgd.Defaults(),
			K:       k,
			Shards:  shards,
			Workers: shards,
			Seed:    b.O.Seed,
		}
		drv, err := sim.ClassDriver(ds, ds.Median(), cfg, nil)
		if err != nil {
			panic(fmt.Sprintf("experiments: engine scaling: %v", err))
		}
		updates := drv.RunEpochs(b.O.BudgetPerNode, k)
		t.AddRow(
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", b.O.BudgetPerNode),
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", updates),
			f(drv.AUCSample(b.O.EvalPairs)),
		)
	}
	return []Table{t}
}
