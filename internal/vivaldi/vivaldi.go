// Package vivaldi implements the Vivaldi decentralized network coordinate
// system (Dabek et al., SIGCOMM 2004 — reference [7] of the paper) with
// the height-vector model and adaptive timestep.
//
// The paper's DMFSGD "has the same architecture as Vivaldi" (§5.3): each
// node keeps a small coordinate, picks k random neighbors, and updates from
// one measurement at a time. Vivaldi is therefore the natural quantity-based
// baseline for the ablation benchmarks: it embeds RTTs into a metric space
// (so it cannot represent triangle-inequality violations or asymmetry,
// which matrix factorization can), and it predicts quantities rather than
// classes.
package vivaldi

import (
	"fmt"
	"math"
	"math/rand"

	"dmfsgd/internal/vec"
)

// Config carries the Vivaldi parameters. Defaults (from the paper [7]):
// Dim 5 coordinates + height, Ce = Cc = 0.25.
type Config struct {
	// Dim is the Euclidean coordinate dimensionality.
	Dim int
	// Ce scales the adaptive timestep.
	Ce float64
	// Cc scales the error-estimate update.
	Cc float64
	// MinHeight floors the height component (heights are non-negative).
	MinHeight float64
}

// Defaults returns the standard Vivaldi configuration.
func Defaults() Config {
	return Config{Dim: 5, Ce: 0.25, Cc: 0.25, MinHeight: 0}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("vivaldi: dim must be positive, got %d", c.Dim)
	}
	if c.Ce <= 0 || c.Ce > 1 || c.Cc <= 0 || c.Cc > 1 {
		return fmt.Errorf("vivaldi: Ce/Cc must be in (0,1], got %v/%v", c.Ce, c.Cc)
	}
	return nil
}

// Coordinates is one node's Vivaldi state: position, height (modeling the
// access-link delay that every path in and out of the node crosses), and
// the node's confidence-weighted error estimate.
type Coordinates struct {
	// Pos is the Euclidean position.
	Pos []float64
	// Height is the access-delay component (ms).
	Height float64
	// Error is the node's relative error estimate in [0, 1+]; starts at 1
	// (no confidence).
	Error float64
}

// NewCoordinates creates a starting state: a tiny random position (to break
// symmetry, as all-zeros would trap nodes at the origin), zero height, and
// error 1.
func NewCoordinates(cfg Config, rng *rand.Rand) *Coordinates {
	pos := make([]float64, cfg.Dim)
	for i := range pos {
		pos[i] = rng.NormFloat64() * 1e-3
	}
	return &Coordinates{Pos: pos, Height: 0, Error: 1}
}

// Clone returns a deep copy.
func (c *Coordinates) Clone() *Coordinates {
	return &Coordinates{Pos: vec.Copy(c.Pos), Height: c.Height, Error: c.Error}
}

// Predict returns the estimated RTT between two coordinate sets:
// ‖posᵢ − posⱼ‖ + hᵢ + hⱼ.
func Predict(a, b *Coordinates) float64 {
	return vec.Dist(a.Pos, b.Pos) + a.Height + b.Height
}

// Update moves self toward (or away from) the peer's coordinates so the
// predicted distance approaches the measured RTT, with the classic
// confidence-weighted adaptive timestep:
//
//	w     = eᵢ / (eᵢ + eⱼ)
//	es    = |‖xᵢ−xⱼ‖ − rtt| / rtt        (relative error of this sample)
//	eᵢ    ← es·Cc·w + eᵢ·(1 − Cc·w)
//	δ     = Ce·w
//	xᵢ    ← xᵢ + δ·(rtt − ‖xᵢ−xⱼ‖)·u(xᵢ−xⱼ)
//
// where u is the unit vector and the height component receives the same
// force with opposite sign convention (pushing heights up when the
// prediction is too short). Invalid measurements (rtt <= 0, NaN) are
// rejected.
func (cfg Config) Update(self, peer *Coordinates, rtt float64) bool {
	if rtt <= 0 || math.IsNaN(rtt) || math.IsInf(rtt, 0) {
		return false
	}
	if vec.HasNaN(peer.Pos) || math.IsNaN(peer.Height) || math.IsNaN(peer.Error) {
		return false
	}
	w := 0.5
	if self.Error+peer.Error > 0 {
		w = self.Error / (self.Error + peer.Error)
	}
	pred := Predict(self, peer)
	sampleErr := math.Abs(pred-rtt) / rtt
	self.Error = sampleErr*cfg.Cc*w + self.Error*(1-cfg.Cc*w)
	if self.Error > 2 {
		self.Error = 2
	}

	delta := cfg.Ce * w
	force := rtt - pred

	// Direction: unit vector from peer to self; random direction when
	// colocated.
	dir := vec.Sub(self.Pos, peer.Pos)
	norm := vec.Norm2(dir)
	if norm < 1e-9 {
		for i := range dir {
			dir[i] = math.Sin(float64(i)*12.9898+rtt) * 1e-3
		}
		norm = vec.Norm2(dir)
		if norm == 0 {
			return false
		}
	}
	vec.Scale(1/norm, dir)
	// Positions absorb the planar share of the force; the height absorbs
	// the rest, as in the height-vector model.
	vec.Axpy(delta*force, dir, self.Pos)
	self.Height += delta * force * 0.5
	if self.Height < cfg.MinHeight {
		self.Height = cfg.MinHeight
	}
	return true
}
