package vivaldi

import (
	"math"
	"math/rand"
	"testing"

	"dmfsgd/internal/dataset"
)

func TestConfigValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Config{
		{Dim: 0, Ce: 0.25, Cc: 0.25},
		{Dim: 3, Ce: 0, Cc: 0.25},
		{Dim: 3, Ce: 0.25, Cc: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCoordinates(Defaults(), rng)
	if len(c.Pos) != 5 || c.Error != 1 || c.Height != 0 {
		t.Errorf("fresh coordinates: %+v", c)
	}
	d := c.Clone()
	d.Pos[0] = 99
	if c.Pos[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestPredictSymmetric(t *testing.T) {
	a := &Coordinates{Pos: []float64{0, 0}, Height: 5}
	b := &Coordinates{Pos: []float64{3, 4}, Height: 7}
	if got := Predict(a, b); got != 17 { // 5 + 5 + 7
		t.Errorf("Predict = %v, want 17", got)
	}
	if Predict(a, b) != Predict(b, a) {
		t.Error("prediction must be symmetric")
	}
}

func TestUpdateRejectsBadInput(t *testing.T) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(2))
	self := NewCoordinates(cfg, rng)
	peer := NewCoordinates(cfg, rng)
	for _, rtt := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if cfg.Update(self, peer, rtt) {
			t.Errorf("accepted rtt %v", rtt)
		}
	}
	poisoned := peer.Clone()
	poisoned.Pos[0] = math.NaN()
	if cfg.Update(self, poisoned, 10) {
		t.Error("accepted NaN peer")
	}
}

func TestUpdateReducesSampleError(t *testing.T) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(3))
	self := NewCoordinates(cfg, rng)
	peer := NewCoordinates(cfg, rng)
	peer.Pos = []float64{10, 0, 0, 0, 0}
	const rtt = 50.0
	before := math.Abs(Predict(self, peer) - rtt)
	for i := 0; i < 100; i++ {
		cfg.Update(self, peer, rtt)
	}
	after := math.Abs(Predict(self, peer) - rtt)
	if after >= before {
		t.Errorf("error did not shrink: %v -> %v", before, after)
	}
	if after > 2 {
		t.Errorf("residual error %v too large", after)
	}
}

func TestErrorEstimateConverges(t *testing.T) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(4))
	self := NewCoordinates(cfg, rng)
	peer := NewCoordinates(cfg, rng)
	peer.Pos = []float64{20, 0, 0, 0, 0}
	peer.Error = 0.1
	for i := 0; i < 200; i++ {
		cfg.Update(self, peer, 20)
	}
	if self.Error > 0.5 {
		t.Errorf("error estimate = %v, should fall with consistent samples", self.Error)
	}
}

// Integration: a small all-pairs Vivaldi system on a synthetic RTT matrix
// must reach a usable relative prediction error.
func TestSystemConvergesOnRTTMatrix(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 40, Seed: 71})
	cfg := Defaults()
	rng := rand.New(rand.NewSource(5))
	nodes := make([]*Coordinates, ds.N())
	for i := range nodes {
		nodes[i] = NewCoordinates(cfg, rng)
	}
	k := 8
	neighbors := make([][]int, ds.N())
	for i := range neighbors {
		for len(neighbors[i]) < k {
			j := rng.Intn(ds.N())
			if j != i {
				neighbors[i] = append(neighbors[i], j)
			}
		}
	}
	for step := 0; step < 40*k*ds.N(); step++ {
		i := rng.Intn(ds.N())
		j := neighbors[i][rng.Intn(k)]
		cfg.Update(nodes[i], nodes[j], ds.Matrix.At(i, j))
	}
	// Median relative error over random pairs.
	var errs []float64
	for trial := 0; trial < 2000; trial++ {
		i, j := rng.Intn(ds.N()), rng.Intn(ds.N())
		if i == j {
			continue
		}
		truth := ds.Matrix.At(i, j)
		pred := Predict(nodes[i], nodes[j])
		errs = append(errs, math.Abs(pred-truth)/truth)
	}
	med := median(errs)
	if med > 0.5 {
		t.Errorf("median relative error = %v, want <= 0.5", med)
	}
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestHeightNeverNegative(t *testing.T) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(6))
	self := NewCoordinates(cfg, rng)
	peer := NewCoordinates(cfg, rng)
	peer.Pos = []float64{100, 0, 0, 0, 0}
	for i := 0; i < 500; i++ {
		cfg.Update(self, peer, 1) // tiny RTT pulls heights down
		if self.Height < cfg.MinHeight {
			t.Fatalf("height %v below floor", self.Height)
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(1))
	self := NewCoordinates(cfg, rng)
	peer := NewCoordinates(cfg, rng)
	peer.Pos = []float64{10, 5, 3, 1, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Update(self, peer, 42)
	}
}
