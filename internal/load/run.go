package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dmfsgd"
)

// Scratch is per-client reusable working memory; Do implementations use
// it so the steady-state measurement loop does not allocate.
type Scratch struct {
	Scores []float64
	Ranked []int
	buf    []byte
}

// Target consumes one expanded request. Do is called concurrently from
// many clients, each with its own Scratch.
type Target interface {
	Do(req *Request, sc *Scratch) error
}

// SnapshotTarget drives an in-process Snapshot — the serving hot path
// without the HTTP layer, the configuration alloc regressions are
// measured against.
type SnapshotTarget struct {
	Snap *dmfsgd.Snapshot
}

// Do dispatches one request against the snapshot.
func (t *SnapshotTarget) Do(req *Request, sc *Scratch) error {
	switch req.Kind {
	case KindPredict:
		_ = t.Snap.Predict(req.I, req.J)
	case KindPredictBatch:
		if cap(sc.Scores) < len(req.Pairs) {
			sc.Scores = make([]float64, len(req.Pairs))
		}
		t.Snap.PredictBatch(req.Pairs, sc.Scores[:len(req.Pairs)])
	case KindRank:
		if cap(sc.Ranked) < len(req.Cands) {
			sc.Ranked = make([]int, len(req.Cands))
		}
		t.Snap.RankInto(req.I, req.Cands, sc.Ranked[:len(req.Cands)])
	default:
		return fmt.Errorf("load: unknown kind %v", req.Kind)
	}
	return nil
}

// HTTPTarget drives a dmfserve endpoint. All clients share the one
// http.Client: its transport keeps an idle connection pool sized to the
// client count (MaxIdleConnsPerHost), so the steady state reuses
// connections instead of re-dialing per request — without this the
// generator itself becomes the bottleneck (and exhausts ephemeral
// ports) long before the server does.
type HTTPTarget struct {
	Base   string
	Client *http.Client
}

// NewHTTPTarget builds a target with a connection pool sized for
// maxConns concurrent clients.
func NewHTTPTarget(base string, maxConns int) *HTTPTarget {
	if maxConns < 2 {
		maxConns = 2
	}
	tr := &http.Transport{
		MaxIdleConns:        maxConns,
		MaxIdleConnsPerHost: maxConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPTarget{
		Base:   base,
		Client: &http.Client{Transport: tr, Timeout: 30 * time.Second},
	}
}

// Do issues one HTTP request and fully drains the response so the
// connection returns to the pool.
func (t *HTTPTarget) Do(req *Request, sc *Scratch) error {
	b := sc.buf[:0]
	var (
		hreq *http.Request
		err  error
	)
	switch req.Kind {
	case KindPredict:
		b = append(b, t.Base...)
		b = append(b, "/predict?i="...)
		b = strconv.AppendInt(b, int64(req.I), 10)
		b = append(b, "&j="...)
		b = strconv.AppendInt(b, int64(req.J), 10)
		sc.buf = b
		hreq, err = http.NewRequest(http.MethodGet, string(b), nil)
	case KindPredictBatch:
		b = append(b, `{"pairs":[`...)
		for k, p := range req.Pairs {
			if k > 0 {
				b = append(b, ',')
			}
			b = append(b, '[')
			b = strconv.AppendInt(b, int64(p.I), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(p.J), 10)
			b = append(b, ']')
		}
		b = append(b, ']', '}')
		sc.buf = b
		hreq, err = http.NewRequest(http.MethodPost, t.Base+"/predict", bytes.NewReader(b))
		if hreq != nil {
			hreq.Header.Set("Content-Type", "application/json")
		}
	case KindRank:
		b = append(b, t.Base...)
		b = append(b, "/rank?i="...)
		b = strconv.AppendInt(b, int64(req.I), 10)
		b = append(b, "&candidates="...)
		for k, j := range req.Cands {
			if k > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(j), 10)
		}
		sc.buf = b
		hreq, err = http.NewRequest(http.MethodGet, string(b), nil)
	default:
		return fmt.Errorf("load: unknown kind %v", req.Kind)
	}
	if err != nil {
		return err
	}
	resp, err := t.Client.Do(hreq)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("load: %s: status %d", hreq.URL.Path, resp.StatusCode)
	}
	return nil
}

// FetchNodes asks a dmfserve /stats endpoint for its node count.
func FetchNodes(t *HTTPTarget) (int, error) {
	resp, err := t.Client.Get(t.Base + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Nodes int `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, fmt.Errorf("load: decode /stats: %w", err)
	}
	if st.Nodes < 2 {
		return 0, fmt.Errorf("load: /stats reports %d nodes", st.Nodes)
	}
	return st.Nodes, nil
}

// RunConfig tunes the runner.
type RunConfig struct {
	// MaxInflight caps concurrent open-loop requests (default: the
	// phase's client count). When the target can't keep up the arrival
	// schedule degrades to closed-loop at this concurrency — the error
	// and throughput numbers still hold, the latency tail saturates.
	MaxInflight int
	// Scrape, when non-nil, is called before and after every phase;
	// the cumulative-series deltas land in PhaseResult.ServerDelta.
	// A scrape failure degrades the phase to client-side numbers only
	// (logged via Logf when set), never fails the run.
	Scrape func() (map[string]float64, error)
	// Logf reports non-fatal runner events; nil discards them.
	Logf func(format string, args ...any)
}

// Run drives the workload phase by phase and measures. Request order
// and payloads come entirely from the expansion; the runner adds no
// randomness, so two runs issue identical requests (per-phase counts
// and kind splits are reproducible; latencies are not).
func Run(ctx context.Context, w *Workload, tgt Target, cfg RunConfig) (*Result, error) {
	res := &Result{Phases: make([]PhaseResult, 0, len(w.Phases))}
	for pi := range w.Phases {
		ph := &w.Phases[pi]
		pr, err := runPhase(ctx, ph, tgt, cfg)
		if err != nil {
			return res, fmt.Errorf("load: phase %q: %w", ph.Spec.Name, err)
		}
		res.Phases = append(res.Phases, *pr)
	}
	return res, nil
}

func runPhase(ctx context.Context, ph *Phase, tgt Target, cfg RunConfig) (*PhaseResult, error) {
	reqs := ph.Requests
	lat := make([]int64, len(reqs)) // nanoseconds, indexed by request
	var errs atomic.Int64
	workers := ph.Spec.Clients
	if ph.Spec.Arrival != "closed" {
		if cfg.MaxInflight > 0 {
			workers = cfg.MaxInflight
		}
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}

	var sBefore map[string]float64
	if cfg.Scrape != nil {
		var serr error
		if sBefore, serr = cfg.Scrape(); serr != nil && cfg.Logf != nil {
			cfg.Logf("load: phase %q: pre-phase metrics scrape failed: %v", ph.Spec.Name, serr)
		}
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	var wg sync.WaitGroup
	if ph.Spec.Arrival == "closed" {
		// Closed loop: a fixed pool, each client pulls the next request
		// off a shared cursor as soon as its previous one completes.
		var cursor atomic.Int64
		for c := 0; c < workers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := &Scratch{}
				for {
					idx := int(cursor.Add(1)) - 1
					if idx >= len(reqs) || ctx.Err() != nil {
						return
					}
					t0 := time.Now()
					if err := tgt.Do(&reqs[idx], sc); err != nil {
						errs.Add(1)
					}
					lat[idx] = time.Since(t0).Nanoseconds()
				}
			}()
		}
		wg.Wait()
	} else {
		// Open loop: a dispatcher paces the arrival schedule; a bounded
		// worker pool executes. Workers pull from a channel so each keeps
		// its own Scratch.
		idxCh := make(chan int, workers)
		for c := 0; c < workers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := &Scratch{}
				for idx := range idxCh {
					t0 := time.Now()
					if err := tgt.Do(&reqs[idx], sc); err != nil {
						errs.Add(1)
					}
					lat[idx] = time.Since(t0).Nanoseconds()
				}
			}()
		}
	dispatch:
		for idx := range reqs {
			if d := time.Until(start.Add(reqs[idx].At)); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break dispatch
				}
			}
			select {
			case idxCh <- idx:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(idxCh)
		wg.Wait()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	pr := &PhaseResult{
		Name:     ph.Spec.Name,
		Arrival:  ph.Spec.Arrival,
		Requests: len(reqs),
		Errors:   int(errs.Load()),
		ByKind:   map[string]int{},
	}
	for i := range reqs {
		pr.ByKind[reqs[i].Kind.String()]++
	}
	pr.DurationMS = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		pr.ThroughputRPS = float64(len(reqs)) / elapsed.Seconds()
	}
	// Mallocs delta over the whole phase: for the in-process target this
	// is the serving stack's allocation rate; over HTTP it measures the
	// client side (still useful as a generator-overhead signal).
	pr.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(len(reqs))

	// Server-side story of the same phase: what the target's registry
	// counted while we drove it.
	if cfg.Scrape != nil && sBefore != nil {
		if sAfter, serr := cfg.Scrape(); serr != nil {
			if cfg.Logf != nil {
				cfg.Logf("load: phase %q: post-phase metrics scrape failed: %v", ph.Spec.Name, serr)
			}
		} else {
			pr.ServerDelta = DeltaCounters(sBefore, sAfter)
		}
	}

	sorted := append([]int64(nil), lat...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	pr.P50MS = quantileMS(sorted, 0.50)
	pr.P90MS = quantileMS(sorted, 0.90)
	pr.P99MS = quantileMS(sorted, 0.99)
	pr.MaxMS = float64(sorted[len(sorted)-1]) / 1e6
	return pr, nil
}

// quantileMS reads the q-quantile (nearest-rank) from ascending
// nanosecond latencies.
func quantileMS(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e6
}
