package load

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
)

// TrainResult is one engine-epoch benchmark case: the sharded parallel
// training loop at a given Meridian scale and shard count, measured via
// testing.Benchmark (the same cases bench_test.go tracks, callable from
// the dmfload binary so CI can emit BENCH_train.json without the test
// harness).
type TrainResult struct {
	Name          string  `json:"name"`
	N             int     `json:"n"`
	Shards        int     `json:"shards"`
	ProbesPerNode int     `json:"probes_per_node"`
	Iters         int     `json:"iters"`
	NsPerOp       float64 `json:"ns_per_op"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
}

// TrainCase names one benchmark configuration.
type TrainCase struct {
	N, Shards int
}

// DefaultTrainCases is the standard sweep (matches the
// BenchmarkEngineEpochMeridian* series).
func DefaultTrainCases(full bool) []TrainCase {
	cases := []TrainCase{{1000, 1}, {1000, 4}, {1000, 8}}
	if full {
		cases = append(cases, TrainCase{2500, 1}, TrainCase{2500, 4}, TrainCase{2500, 8})
	}
	return cases
}

// TrainBench runs the engine-epoch benchmark sweep. Each case trains one
// full epoch (probes measurements per node) per iteration on a seeded
// Meridian dataset. Benchstat-compatible lines are streamed to w (pass
// io.Discard to silence), so CI can feed the output straight to
// benchstat while the structured results land in BENCH_train.json.
func TrainBench(cases []TrainCase, probes int, w io.Writer) ([]TrainResult, error) {
	if probes <= 0 {
		probes = 32
	}
	datasets := map[int]*dataset.Dataset{}
	out := make([]TrainResult, 0, len(cases))
	for _, c := range cases {
		ds, ok := datasets[c.N]
		if !ok {
			ds = dataset.Meridian(dataset.MeridianConfig{N: c.N, Seed: 1})
			datasets[c.N] = ds
		}
		drv, err := sim.ClassDriver(ds, ds.Median(), sim.Config{
			SGD:     sgd.Defaults(),
			K:       32,
			Shards:  c.Shards,
			Workers: c.Shards,
			Seed:    1,
		}, nil)
		if err != nil {
			return out, fmt.Errorf("load: train case n=%d shards=%d: %w", c.N, c.Shards, err)
		}
		drv.RunEpochs(1, 1) // warm RNG streams and buffers outside the timed region
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				drv.RunEpochs(1, probes)
			}
		})
		updatesPerOp := float64(c.N * probes)
		nsPerOp := float64(r.NsPerOp())
		tr := TrainResult{
			Name:          fmt.Sprintf("EngineEpochMeridian%dShards%d", c.N, c.Shards),
			N:             c.N,
			Shards:        c.Shards,
			ProbesPerNode: probes,
			Iters:         r.N,
			NsPerOp:       nsPerOp,
			UpdatesPerSec: updatesPerOp / (nsPerOp / 1e9),
			AllocsPerOp:   r.AllocsPerOp(),
			BytesPerOp:    r.AllocedBytesPerOp(),
		}
		out = append(out, tr)
		if w != nil {
			// The standard bench line format benchstat parses.
			fmt.Fprintf(w, "Benchmark%s-%d\t%s\t%s\n", tr.Name, runtime.GOMAXPROCS(0), r.String(), r.MemString())
		}
	}
	return out, nil
}
