// Package load is the macro load harness behind cmd/dmfload: a seeded
// WorkloadSpec expands deterministically into a per-phase request
// sequence (predict / predict-batch / rank with Zipf-skewed node
// popularity), which a Runner drives against a serving target — the
// in-process Snapshot fast path or a dmfserve HTTP endpoint — recording
// per-phase latency percentiles, throughput, allocation rates and error
// counts into a schema-versioned BENCH report. The reports are the
// repo's macro perf trajectory: produced by CI on every run, diffable
// across PRs.
//
// Determinism contract: the same spec and seed expand to the identical
// request sequence (one seeded RNG per phase, consumed in a fixed
// order), so two runs against the same snapshot issue identical
// requests and produce identical per-phase request/response counts.
// Only the measured latencies vary with the host.
package load

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaSpec versions the workload spec format.
const SchemaSpec = "dmfload-spec/v1"

// SchemaBench versions the BENCH_*.json report format.
const SchemaBench = "dmfload-bench/v1"

// WorkloadSpec is the top-level workload description: a seed plus an
// ordered list of phases (multi-period traffic — e.g. a diurnal
// warm/peak/burst cycle is three phases).
type WorkloadSpec struct {
	// Schema must be SchemaSpec (filled by Default; validated on load).
	Schema string `json:"schema"`
	// Name labels the workload in reports.
	Name string `json:"name,omitempty"`
	// Seed drives every random choice of the expansion.
	Seed int64 `json:"seed"`
	// Phases run in order; each is an independent arrival process.
	Phases []PhaseSpec `json:"phases"`
}

// PhaseSpec is one traffic period.
type PhaseSpec struct {
	// Name labels the phase in reports.
	Name string `json:"name"`
	// Requests is the total request count of the phase (scaled by the
	// runner's -scale for quick CI runs).
	Requests int `json:"requests"`
	// Arrival selects the arrival process: "closed" (a fixed client pool,
	// each client issues its next request as soon as the previous
	// completes), "poisson" (open loop, exponential inter-arrivals at
	// RateRPS), or "burst" (open loop, BurstLen back-to-back requests
	// every BurstGapMS).
	Arrival string `json:"arrival"`
	// Clients is the closed-loop pool size (and the open-loop in-flight
	// default).
	Clients int `json:"clients,omitempty"`
	// RateRPS is the open-loop mean arrival rate (poisson).
	RateRPS float64 `json:"rate_rps,omitempty"`
	// BurstLen and BurstGapMS shape the burst arrival: BurstLen requests
	// arrive together, then nothing for BurstGapMS.
	BurstLen   int     `json:"burst_len,omitempty"`
	BurstGapMS float64 `json:"burst_gap_ms,omitempty"`
	// Mix weights the request kinds.
	Mix MixSpec `json:"mix"`
	// BatchSize is the pair count of each predict-batch request
	// (default 16).
	BatchSize int `json:"batch_size,omitempty"`
	// Candidates is the candidate-set size of each rank request
	// (default 64).
	Candidates int `json:"candidates,omitempty"`
	// ZipfS skews node popularity: s > 1 draws node ids from a Zipf(s)
	// distribution over a seeded permutation of [0, n); 0 means uniform.
	ZipfS float64 `json:"zipf_s,omitempty"`
}

// MixSpec weights the request kinds of a phase; weights are relative
// (they need not sum to 1) and at least one must be positive.
type MixSpec struct {
	Predict      float64 `json:"predict"`
	PredictBatch float64 `json:"predict_batch"`
	Rank         float64 `json:"rank"`
}

// Default returns the built-in four-phase diurnal workload: a
// closed-loop warmup, a Poisson open-loop peak with Zipf-skewed
// popularity, a bursty tail, and a closed-loop latency-under-refresh
// guardrail — the spec CI runs. The last phase only measures what its
// name promises when the target keeps retraining under the traffic
// (dmfserve -refresh): its percentiles then price the snapshot-swap
// path — an accidental lock or allocation on the hot path surfaces
// here first, while the three steady phases stay unaffected.
func Default() *WorkloadSpec {
	return &WorkloadSpec{
		Schema: SchemaSpec,
		Name:   "diurnal-default",
		Seed:   1,
		Phases: []PhaseSpec{
			{
				Name:     "warm-closed",
				Requests: 20000,
				Arrival:  "closed",
				Clients:  8,
				Mix:      MixSpec{Predict: 0.7, PredictBatch: 0.2, Rank: 0.1},
			},
			{
				Name:       "peak-poisson",
				Requests:   30000,
				Arrival:    "poisson",
				Clients:    32,
				RateRPS:    15000,
				Mix:        MixSpec{Predict: 0.5, PredictBatch: 0.3, Rank: 0.2},
				BatchSize:  32,
				Candidates: 128,
				ZipfS:      1.2,
			},
			{
				Name:       "night-burst",
				Requests:   10000,
				Arrival:    "burst",
				Clients:    16,
				BurstLen:   200,
				BurstGapMS: 20,
				Mix:        MixSpec{Predict: 0.3, PredictBatch: 0.6, Rank: 0.1},
				BatchSize:  64,
				ZipfS:      1.5,
			},
			{
				Name:       "latency-under-refresh",
				Requests:   20000,
				Arrival:    "closed",
				Clients:    16,
				Mix:        MixSpec{Predict: 0.6, PredictBatch: 0.2, Rank: 0.2},
				BatchSize:  32,
				Candidates: 128,
				ZipfS:      1.2,
			},
		},
	}
}

// Validate checks the spec and fills defaulted fields in place.
func (ws *WorkloadSpec) Validate() error {
	if ws.Schema == "" {
		ws.Schema = SchemaSpec
	}
	if ws.Schema != SchemaSpec {
		return fmt.Errorf("load: spec schema %q, want %q", ws.Schema, SchemaSpec)
	}
	if len(ws.Phases) == 0 {
		return fmt.Errorf("load: spec has no phases")
	}
	for i := range ws.Phases {
		ph := &ws.Phases[i]
		if ph.Name == "" {
			ph.Name = fmt.Sprintf("phase-%d", i)
		}
		if ph.Requests <= 0 {
			return fmt.Errorf("load: phase %q: requests %d, want > 0", ph.Name, ph.Requests)
		}
		switch ph.Arrival {
		case "closed":
			if ph.Clients <= 0 {
				ph.Clients = 8
			}
		case "poisson":
			if ph.RateRPS <= 0 {
				return fmt.Errorf("load: phase %q: poisson arrival needs rate_rps > 0", ph.Name)
			}
			if ph.Clients <= 0 {
				ph.Clients = 64
			}
		case "burst":
			if ph.BurstLen <= 0 {
				return fmt.Errorf("load: phase %q: burst arrival needs burst_len > 0", ph.Name)
			}
			if ph.BurstGapMS < 0 {
				return fmt.Errorf("load: phase %q: burst_gap_ms %v, want ≥ 0", ph.Name, ph.BurstGapMS)
			}
			if ph.Clients <= 0 {
				ph.Clients = 64
			}
		default:
			return fmt.Errorf("load: phase %q: arrival %q, want closed, poisson or burst", ph.Name, ph.Arrival)
		}
		m := ph.Mix
		if m.Predict < 0 || m.PredictBatch < 0 || m.Rank < 0 || m.Predict+m.PredictBatch+m.Rank <= 0 {
			return fmt.Errorf("load: phase %q: mix weights must be ≥ 0 with a positive sum", ph.Name)
		}
		if ph.BatchSize <= 0 {
			ph.BatchSize = 16
		}
		if ph.Candidates <= 1 {
			ph.Candidates = 64
		}
		if ph.ZipfS != 0 && ph.ZipfS <= 1 {
			return fmt.Errorf("load: phase %q: zipf_s %v, want 0 (uniform) or > 1", ph.Name, ph.ZipfS)
		}
	}
	return nil
}

// Scaled returns a deep copy with every phase's request count multiplied
// by f (minimum 1 request per phase) — quick CI runs scale the standard
// spec down rather than maintaining a second spec.
func (ws *WorkloadSpec) Scaled(f float64) *WorkloadSpec {
	out := *ws
	out.Phases = append([]PhaseSpec(nil), ws.Phases...)
	if f == 1 || f <= 0 {
		return &out
	}
	for i := range out.Phases {
		n := int(float64(out.Phases[i].Requests) * f)
		if n < 1 {
			n = 1
		}
		out.Phases[i].Requests = n
	}
	return &out
}

// ReadSpec parses and validates a JSON workload spec.
func ReadSpec(r io.Reader) (*WorkloadSpec, error) {
	var ws WorkloadSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ws); err != nil {
		return nil, fmt.Errorf("load: parse spec: %w", err)
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	return &ws, nil
}
