package load

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Server-side metrics scraping: dmfload brackets every phase with a
// scrape of the target's GET /metrics and embeds the counter deltas in
// the phase's report. The client-side numbers (latency percentiles,
// allocs/op) say how the run felt; the server-side deltas say what it
// cost — requests observed per endpoint, engine steps, gossip bytes,
// checkpoint writes — straight from the registry the serving process
// maintains anyway (DESIGN.md §12).

// ParsePrometheus reads a text exposition (version 0.0.4) and returns
// full series id (name plus rendered labels) → value. Comment and
// blank lines are skipped; a malformed sample line is an error.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value follows the last space: series ids may contain spaces
		// only inside quoted label values, which the encoder escapes, so
		// the final space is always the id/value separator.
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			return nil, fmt.Errorf("load: bad metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("load: bad metrics value in %q: %v", line, err)
		}
		out[strings.TrimSpace(line[:idx])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// cumulativeSeries reports whether a series id names a cumulative
// quantity — a counter (_total) or a histogram's _count/_sum/_bucket —
// for which after-minus-before is meaningful. Gauges are excluded: a
// gauge delta conflates the phase's effect with unrelated drift.
func cumulativeSeries(id string) bool {
	name := id
	if i := strings.IndexByte(id, '{'); i >= 0 {
		name = id[:i]
	}
	return strings.HasSuffix(name, "_total") ||
		strings.HasSuffix(name, "_count") ||
		strings.HasSuffix(name, "_sum") ||
		strings.HasSuffix(name, "_bucket")
}

// DeltaCounters returns after-minus-before for every cumulative series
// present in after, dropping zero deltas and all bucket series (the
// _count/_sum pair carries the phase-level story; per-bucket deltas
// would bloat the report ~15x for no reader).
func DeltaCounters(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for id, av := range after {
		if !cumulativeSeries(id) || strings.Contains(id, "_bucket") {
			continue
		}
		if d := av - before[id]; d != 0 {
			out[id] = d
		}
	}
	return out
}

// ScrapeMetrics fetches and parses the target's GET /metrics.
func (t *HTTPTarget) ScrapeMetrics() (map[string]float64, error) {
	resp, err := t.Client.Get(t.Base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: /metrics: status %d", resp.StatusCode)
	}
	return ParsePrometheus(resp.Body)
}
