package load

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"dmfsgd"
)

// smallSpec is a quick three-phase spec covering every arrival process
// and every request kind.
func smallSpec() *WorkloadSpec {
	return &WorkloadSpec{
		Schema: SchemaSpec,
		Name:   "test",
		Seed:   7,
		Phases: []PhaseSpec{
			{Name: "c", Requests: 300, Arrival: "closed", Clients: 4,
				Mix: MixSpec{Predict: 1, PredictBatch: 1, Rank: 1}, BatchSize: 4, Candidates: 8},
			{Name: "p", Requests: 300, Arrival: "poisson", RateRPS: 1e6, Clients: 4,
				Mix: MixSpec{Predict: 1, PredictBatch: 1, Rank: 1}, ZipfS: 1.3, BatchSize: 4, Candidates: 8},
			{Name: "b", Requests: 300, Arrival: "burst", BurstLen: 50, BurstGapMS: 0.01, Clients: 4,
				Mix: MixSpec{Predict: 2, Rank: 1}, Candidates: 8, ZipfS: 2},
		},
	}
}

// TestExpandDeterministic is the harness's core contract: the same spec,
// seed and node count expand to the identical request sequence.
func TestExpandDeterministic(t *testing.T) {
	a, err := Expand(smallSpec(), 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(smallSpec(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of the same spec differ")
	}
	// And a different seed must actually change the sequence.
	sp := smallSpec()
	sp.Seed = 8
	c, err := Expand(sp, 200)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for pi := range c.Phases {
		if !reflect.DeepEqual(a.Phases[pi].Requests, c.Phases[pi].Requests) {
			same = false
		}
	}
	if same {
		t.Fatal("seed change did not change the expansion")
	}
}

// TestExpandPhaseIndependence: phases draw from independent streams, so
// resizing one phase leaves the others' sequences untouched.
func TestExpandPhaseIndependence(t *testing.T) {
	a, err := Expand(smallSpec(), 200)
	if err != nil {
		t.Fatal(err)
	}
	sp := smallSpec()
	sp.Phases[0].Requests = 10
	b, err := Expand(sp, 200)
	if err != nil {
		t.Fatal(err)
	}
	for pi := 1; pi < len(a.Phases); pi++ {
		if !reflect.DeepEqual(a.Phases[pi].Requests, b.Phases[pi].Requests) {
			t.Fatalf("phase %d changed when phase 0 was resized", pi)
		}
	}
}

// TestExpandShape checks bounds, pair distinctness, candidate
// uniqueness, nondecreasing arrival offsets and mix adherence.
func TestExpandShape(t *testing.T) {
	const n = 150
	w, err := Expand(smallSpec(), n)
	if err != nil {
		t.Fatal(err)
	}
	for pi, ph := range w.Phases {
		if len(ph.Requests) != ph.Spec.Requests {
			t.Fatalf("phase %d: %d requests, want %d", pi, len(ph.Requests), ph.Spec.Requests)
		}
		var prev int64 = -1
		kinds := map[Kind]int{}
		for ri := range ph.Requests {
			req := &ph.Requests[ri]
			kinds[req.Kind]++
			if at := req.At.Nanoseconds(); at < prev {
				t.Fatalf("phase %d req %d: arrival %d before %d", pi, ri, at, prev)
			} else {
				prev = at
			}
			switch req.Kind {
			case KindPredict:
				if req.I == req.J || req.I < 0 || req.I >= n || req.J < 0 || req.J >= n {
					t.Fatalf("phase %d req %d: bad pair (%d,%d)", pi, ri, req.I, req.J)
				}
			case KindPredictBatch:
				if len(req.Pairs) != ph.Spec.BatchSize {
					t.Fatalf("phase %d req %d: %d pairs, want %d", pi, ri, len(req.Pairs), ph.Spec.BatchSize)
				}
				for _, p := range req.Pairs {
					if p.I == p.J || p.I < 0 || p.I >= n || p.J < 0 || p.J >= n {
						t.Fatalf("phase %d req %d: bad pair (%d,%d)", pi, ri, p.I, p.J)
					}
				}
			case KindRank:
				if len(req.Cands) != ph.Spec.Candidates {
					t.Fatalf("phase %d req %d: %d candidates, want %d", pi, ri, len(req.Cands), ph.Spec.Candidates)
				}
				seen := map[int]bool{}
				for _, j := range req.Cands {
					if j == req.I || j < 0 || j >= n || seen[j] {
						t.Fatalf("phase %d req %d: bad candidate %d", pi, ri, j)
					}
					seen[j] = true
				}
			}
		}
		for k, c := range kinds {
			if c == 0 {
				t.Fatalf("phase %d: no %v requests", pi, k)
			}
		}
		if pi == 2 && kinds[KindPredictBatch] != 0 {
			t.Fatalf("phase 2: %d batch requests with zero weight", kinds[KindPredictBatch])
		}
	}
	// Burst structure: requests within a burst share an offset.
	burst := w.Phases[2]
	if burst.Requests[0].At != burst.Requests[49].At {
		t.Fatal("burst 0 not simultaneous")
	}
	if burst.Requests[49].At == burst.Requests[50].At {
		t.Fatal("burst gap missing")
	}
}

// testSnapshot trains a tiny session once for runner tests.
func testSnapshot(t *testing.T, n int) *dmfsgd.Snapshot {
	t.Helper()
	ds := dmfsgd.NewMeridianDataset(n, 1)
	sess, err := dmfsgd.NewSession(ds, dmfsgd.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 2000); err != nil {
		t.Fatal(err)
	}
	return sess.Snapshot()
}

// TestRunCounts: two runs against the same snapshot produce identical
// per-phase request and kind counts, and no errors.
func TestRunCounts(t *testing.T) {
	snap := testSnapshot(t, 120)
	w, err := Expand(smallSpec(), snap.N())
	if err != nil {
		t.Fatal(err)
	}
	tgt := &SnapshotTarget{Snap: snap}
	r1, err := Run(context.Background(), w, tgt, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), w, tgt, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Phases) != len(w.Phases) || len(r2.Phases) != len(w.Phases) {
		t.Fatalf("phase counts %d/%d, want %d", len(r1.Phases), len(r2.Phases), len(w.Phases))
	}
	for pi := range r1.Phases {
		a, b := r1.Phases[pi], r2.Phases[pi]
		if a.Errors != 0 || b.Errors != 0 {
			t.Fatalf("phase %d: errors %d/%d", pi, a.Errors, b.Errors)
		}
		if a.Requests != b.Requests || !reflect.DeepEqual(a.ByKind, b.ByKind) {
			t.Fatalf("phase %d: counts differ between runs: %+v vs %+v", pi, a.ByKind, b.ByKind)
		}
	}
}

// TestRunContextCancel: a canceled context stops the run with its error.
func TestRunContextCancel(t *testing.T) {
	snap := testSnapshot(t, 120)
	w, err := Expand(smallSpec(), snap.N())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, w, &SnapshotTarget{Snap: snap}, RunConfig{}); err == nil {
		t.Fatal("canceled run reported no error")
	}
}

// TestSpecRoundTrip: spec JSON round-trips through ReadSpec, unknown
// fields are rejected, invalid specs fail validation.
func TestSpecRoundTrip(t *testing.T) {
	sp := Default()
	if err := sp.Validate(); err != nil { // fill defaults so the comparison is stable
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(sp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, got) {
		t.Fatal("spec did not round-trip")
	}
	if _, err := ReadSpec(strings.NewReader(`{"schema":"dmfload-spec/v1","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	bad := []string{
		`{"schema":"other/v9","phases":[{"name":"x","requests":1,"arrival":"closed","mix":{"predict":1}}]}`,
		`{"phases":[]}`,
		`{"phases":[{"name":"x","requests":0,"arrival":"closed","mix":{"predict":1}}]}`,
		`{"phases":[{"name":"x","requests":1,"arrival":"warp","mix":{"predict":1}}]}`,
		`{"phases":[{"name":"x","requests":1,"arrival":"poisson","mix":{"predict":1}}]}`,
		`{"phases":[{"name":"x","requests":1,"arrival":"closed","mix":{}}]}`,
		`{"phases":[{"name":"x","requests":1,"arrival":"closed","mix":{"predict":1},"zipf_s":0.5}]}`,
	}
	for _, s := range bad {
		if _, err := ReadSpec(strings.NewReader(s)); err == nil {
			t.Fatalf("bad spec accepted: %s", s)
		}
	}
}

// TestScaled checks count scaling with the 1-request floor.
func TestScaled(t *testing.T) {
	sp := smallSpec()
	sc := sp.Scaled(0.001)
	for i, ph := range sc.Phases {
		if ph.Requests != 1 {
			t.Fatalf("phase %d scaled to %d, want floor 1", i, ph.Requests)
		}
		if sp.Phases[i].Requests != 300 {
			t.Fatal("Scaled mutated the original")
		}
	}
	if sc2 := sp.Scaled(2); sc2.Phases[0].Requests != 600 {
		t.Fatalf("2x scale gave %d", sc2.Phases[0].Requests)
	}
}

// TestReportRoundTrip: reports round-trip through WriteFile/ReadReport
// and schema mismatches are rejected.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_serve.json"
	rep := &Report{
		Kind:   "serve",
		Target: "inproc",
		Nodes:  120,
		Env:    CaptureEnv(),
		Spec:   Default(),
		Phases: []PhaseResult{{Name: "x", Arrival: "closed", Requests: 10,
			ByKind: map[string]int{"predict": 10}, ThroughputRPS: 1000}},
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaBench || got.Phases[0].Requests != 10 || got.Spec.Name != rep.Spec.Name {
		t.Fatalf("report did not round-trip: %+v", got)
	}
	if err := os.WriteFile(path, []byte(`{"schema":"nope/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestTrainBench: one tiny case produces a plausible result and a
// benchstat-parsable line.
func TestTrainBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	var buf bytes.Buffer
	res, err := TrainBench([]TrainCase{{N: 120, Shards: 2}}, 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
	tr := res[0]
	if tr.NsPerOp <= 0 || tr.UpdatesPerSec <= 0 || tr.Iters <= 0 {
		t.Fatalf("implausible result %+v", tr)
	}
	line := buf.String()
	if !strings.HasPrefix(line, "BenchmarkEngineEpochMeridian120Shards2-") || !strings.Contains(line, "ns/op") {
		t.Fatalf("bench line %q", line)
	}
}

// TestHTTPTargetAgainstServer drives every request kind against a stub
// HTTP server and checks error propagation on non-200s.
func TestHTTPTargetAgainstServer(t *testing.T) {
	mux := http.NewServeMux()
	var hits atomic.Int64
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("/rank", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("/fail", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusBadRequest)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"nodes":77}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tgt := NewHTTPTarget(srv.URL, 4)
	n, err := FetchNodes(tgt)
	if err != nil || n != 77 {
		t.Fatalf("FetchNodes = %d, %v", n, err)
	}
	sc := &Scratch{}
	reqs := []Request{
		{Kind: KindPredict, I: 1, J: 2},
		{Kind: KindPredictBatch, Pairs: []dmfsgd.PathPair{{I: 1, J: 2}, {I: 3, J: 4}}},
		{Kind: KindRank, I: 1, Cands: []int{2, 3, 4}},
	}
	for i := range reqs {
		if err := tgt.Do(&reqs[i], sc); err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
	}
	if hits.Load() != 3 {
		t.Fatalf("%d hits, want 3", hits.Load())
	}
	bad := NewHTTPTarget(srv.URL+"/fail", 2)
	if err := bad.Do(&Request{Kind: KindPredict, I: 1, J: 2}, sc); err == nil {
		t.Fatal("non-200 not reported")
	}
}
