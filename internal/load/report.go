package load

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// PhaseResult is one phase's measurements.
type PhaseResult struct {
	Name     string         `json:"name"`
	Arrival  string         `json:"arrival"`
	Requests int            `json:"requests"`
	Errors   int            `json:"errors"`
	ByKind   map[string]int `json:"by_kind"`

	DurationMS    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
	AllocsPerOp   float64 `json:"allocs_per_op"`

	// ServerDelta holds the target's cumulative-series deltas (counter
	// _total, histogram _count/_sum) over this phase, scraped from GET
	// /metrics before and after. HTTP targets only; empty when the
	// server is unreachable or predates the metrics tier.
	ServerDelta map[string]float64 `json:"server_delta,omitempty"`
}

// Result is a completed run's per-phase results.
type Result struct {
	Phases []PhaseResult `json:"phases"`
}

// Env records the machine the numbers were taken on — BENCH files from
// different hosts are not comparable, and the env block makes that
// visible in the diff.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CaptureEnv fills an Env from the running process.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Report is the BENCH_*.json document. Kind is "serve" (dmfload run) or
// "train" (engine benchmark sweep); exactly one of Phases/Train is
// populated per kind.
type Report struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	// Target describes what was driven: "inproc" or the base URL.
	Target string `json:"target,omitempty"`
	// Nodes and SnapshotSteps pin the served model.
	Nodes         int           `json:"nodes,omitempty"`
	SnapshotSteps uint64        `json:"snapshot_steps,omitempty"`
	Env           Env           `json:"env"`
	Spec          *WorkloadSpec `json:"spec,omitempty"`
	Phases        []PhaseResult `json:"phases,omitempty"`
	Train         []TrainResult `json:"train,omitempty"`
}

// WriteFile writes the report as indented JSON with a trailing newline.
func (r *Report) WriteFile(path string) error {
	if r.Schema == "" {
		r.Schema = SchemaBench
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// ReadReport parses a BENCH report and checks its schema version.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("load: parse report %s: %w", path, err)
	}
	if r.Schema != SchemaBench {
		return nil, fmt.Errorf("load: report schema %q, want %q", r.Schema, SchemaBench)
	}
	return &r, nil
}
