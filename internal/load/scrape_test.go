package load

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP dmf_http_requests_total Hot-endpoint requests handled.
# TYPE dmf_http_requests_total counter
dmf_http_requests_total{endpoint="GET /predict"} 120
dmf_http_requests_total{endpoint="GET /rank"} 30
# HELP dmf_http_request_seconds Request latency.
# TYPE dmf_http_request_seconds histogram
dmf_http_request_seconds_bucket{endpoint="GET /predict",le="0.00005"} 10
dmf_http_request_seconds_bucket{endpoint="GET /predict",le="+Inf"} 120
dmf_http_request_seconds_sum{endpoint="GET /predict"} 0.25
dmf_http_request_seconds_count{endpoint="GET /predict"} 120
# HELP dmf_serving_ready 1 once serving.
# TYPE dmf_serving_ready gauge
dmf_serving_ready 1
dmf_engine_steps_total 5000
`

func TestParsePrometheus(t *testing.T) {
	m, err := ParsePrometheus(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`dmf_http_requests_total{endpoint="GET /predict"}`:                   120,
		`dmf_http_request_seconds_sum{endpoint="GET /predict"}`:              0.25,
		`dmf_http_request_seconds_bucket{endpoint="GET /predict",le="+Inf"}`: 120,
		`dmf_serving_ready`:      1,
		`dmf_engine_steps_total`: 5000,
	}
	for id, v := range want {
		if m[id] != v {
			t.Errorf("%s = %v, want %v", id, m[id], v)
		}
	}
	if len(m) != 8 {
		t.Errorf("parsed %d series, want 8: %v", len(m), m)
	}
	if _, err := ParsePrometheus(strings.NewReader("dmf_x notanumber\n")); err == nil {
		t.Error("bad value accepted")
	}
}

func TestDeltaCounters(t *testing.T) {
	before, err := ParsePrometheus(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	after := make(map[string]float64, len(before))
	for k, v := range before {
		after[k] = v
	}
	after[`dmf_http_requests_total{endpoint="GET /predict"}`] += 40
	after[`dmf_http_request_seconds_count{endpoint="GET /predict"}`] += 40
	after[`dmf_http_request_seconds_sum{endpoint="GET /predict"}`] += 0.1
	after[`dmf_http_request_seconds_bucket{endpoint="GET /predict",le="+Inf"}`] += 40
	after[`dmf_serving_ready`] = 0 // gauge moves must not appear
	after[`dmf_new_counter_total`] = 7

	d := DeltaCounters(before, after)
	if d[`dmf_http_requests_total{endpoint="GET /predict"}`] != 40 {
		t.Errorf("requests delta = %v, want 40", d[`dmf_http_requests_total{endpoint="GET /predict"}`])
	}
	if d[`dmf_new_counter_total`] != 7 {
		t.Errorf("new counter delta = %v, want 7 (absent in before)", d[`dmf_new_counter_total`])
	}
	for id := range d {
		if strings.Contains(id, "_bucket") {
			t.Errorf("bucket series leaked into delta: %s", id)
		}
		if id == "dmf_serving_ready" {
			t.Error("gauge leaked into delta")
		}
	}
	// Unmoved counters (dmf_engine_steps_total, GET /rank) are dropped.
	if _, ok := d[`dmf_engine_steps_total`]; ok {
		t.Error("zero-delta counter kept")
	}
}
