package load

import (
	"fmt"
	"math/rand"
	"time"

	"dmfsgd"
)

// Kind is a request kind.
type Kind uint8

const (
	// KindPredict is GET /predict?i=&j= (one pair).
	KindPredict Kind = iota
	// KindPredictBatch is POST /predict with a pair list.
	KindPredictBatch
	// KindRank is GET /rank?i=&candidates=.
	KindRank
)

// String names the kind as it appears in reports.
func (k Kind) String() string {
	switch k {
	case KindPredict:
		return "predict"
	case KindPredictBatch:
		return "predict_batch"
	case KindRank:
		return "rank"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Request is one expanded request. At is the arrival offset from the
// phase start (0 for closed-loop phases, where clients self-pace).
type Request struct {
	At   time.Duration
	Kind Kind
	// I, J are the endpoints of a predict or the source of a rank.
	I, J int
	// Pairs is the predict-batch payload (nil otherwise).
	Pairs []dmfsgd.PathPair
	// Cands is the rank candidate set (nil otherwise).
	Cands []int
}

// Phase is one expanded phase: the (validated, defaulted) spec plus its
// request sequence in arrival order.
type Phase struct {
	Spec     PhaseSpec
	Requests []Request
}

// Workload is a fully expanded spec, bound to a node count.
type Workload struct {
	Spec   *WorkloadSpec
	N      int
	Phases []Phase
}

// nodeSampler draws node ids. The Zipf variant draws ranks from
// Zipf(s) and maps them through a seeded permutation of [0, n), so the
// popular nodes are scattered across the id space (and across store
// shards) instead of clustering at id 0.
type nodeSampler struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	perm []int
	n    int
}

func newNodeSampler(rng *rand.Rand, n int, s float64) *nodeSampler {
	ns := &nodeSampler{rng: rng, n: n}
	if s > 1 {
		ns.zipf = rand.NewZipf(rng, s, 1, uint64(n-1))
		ns.perm = rng.Perm(n)
	}
	return ns
}

func (ns *nodeSampler) next() int {
	if ns.zipf == nil {
		return ns.rng.Intn(ns.n)
	}
	return ns.perm[int(ns.zipf.Uint64())]
}

// nextPair draws an ordered pair of distinct nodes.
func (ns *nodeSampler) nextPair() (int, int) {
	i := ns.next()
	j := ns.next()
	if j == i {
		j = (j + 1) % ns.n
	}
	return i, j
}

// phaseSeed derives the phase's RNG seed: each phase gets an
// independent stream so editing one phase's request count does not
// shift the sequences of the others.
func phaseSeed(seed int64, phase int) int64 {
	return seed ^ int64(uint64(phase+1)*0x9E3779B97F4A7C15)
}

// Expand deterministically expands a validated spec against n nodes.
// The same spec, seed and n always yield the identical request
// sequence: every phase consumes one seeded RNG in a fixed order
// (arrival offsets first per request, then the kind draw, then the node
// draws), and nothing about the expansion depends on time, maps or
// scheduling.
func Expand(spec *WorkloadSpec, n int) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("load: expand against n=%d nodes, want ≥ 2", n)
	}
	w := &Workload{Spec: spec, N: n, Phases: make([]Phase, len(spec.Phases))}
	for pi, ph := range spec.Phases {
		rng := rand.New(rand.NewSource(phaseSeed(spec.Seed, pi)))
		ns := newNodeSampler(rng, n, ph.ZipfS)
		total := ph.Mix.Predict + ph.Mix.PredictBatch + ph.Mix.Rank
		reqs := make([]Request, ph.Requests)
		var at time.Duration
		for ri := range reqs {
			req := &reqs[ri]
			switch ph.Arrival {
			case "poisson":
				at += time.Duration(rng.ExpFloat64() / ph.RateRPS * float64(time.Second))
				req.At = at
			case "burst":
				if ri > 0 && ri%ph.BurstLen == 0 {
					at += time.Duration(ph.BurstGapMS * float64(time.Millisecond))
				}
				req.At = at
			}
			x := rng.Float64() * total
			switch {
			case x < ph.Mix.Predict:
				req.Kind = KindPredict
				req.I, req.J = ns.nextPair()
			case x < ph.Mix.Predict+ph.Mix.PredictBatch:
				req.Kind = KindPredictBatch
				req.Pairs = make([]dmfsgd.PathPair, ph.BatchSize)
				for b := range req.Pairs {
					i, j := ns.nextPair()
					req.Pairs[b] = dmfsgd.PathPair{I: i, J: j}
				}
			default:
				req.Kind = KindRank
				req.I = ns.next()
				k := ph.Candidates
				if k > n-1 {
					k = n - 1
				}
				req.Cands = make([]int, 0, k)
				seen := make(map[int]bool, k)
				for len(req.Cands) < k {
					j := ns.next()
					if j == req.I || seen[j] {
						j = ns.rng.Intn(ns.n) // rejection fallback keeps Zipf cheap
						if j == req.I || seen[j] {
							continue
						}
					}
					seen[j] = true
					req.Cands = append(req.Cands, j)
				}
			}
		}
		w.Phases[pi] = Phase{Spec: spec.Phases[pi], Requests: reqs}
	}
	return w, nil
}
