// Package corrupt injects erroneous class labels into a class matrix,
// implementing the four error types of §6.3:
//
//	Type 1 (FlipNearTau):  flip, with probability 0.5, the labels of paths
//	                       whose quantity lies within [τ−δ, τ+δ]. Models
//	                       inaccurate measurement tools.
//	Type 2 (Underestimation): for ABW, label paths with quantity within
//	                       [τ, τ+δ] as "bad". Models the systematic
//	                       underestimation bias of pathload/pathchirp.
//	Type 3 (FlipRandom):   choose p% of paths at random and flip their
//	                       labels. Models malicious ABW targets that lie in
//	                       both directions.
//	Type 4 (GoodToBad):    choose p% of paths at random among the "good"
//	                       ones and label them "bad". Models anomalies that
//	                       degrade paths.
//
// Corruption is applied to labels, not to probes: a corrupted pair returns
// the same wrong label every time it is measured, which is what "erroneous
// class labels" means in the paper. For symmetric metrics (RTT) a path
// (i,j)/(j,i) is a single label and is corrupted as a unit; for ABW each
// direction is independent.
//
// Error levels are expressed as the fraction of all labels that end up
// wrong (the x-axis of Figure 6). CalibrateDelta inverts the δ parameter of
// Types 1 and 2 to hit a target level, reproducing Table 3.
package corrupt

import (
	"fmt"
	"math"
	"math/rand"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
)

// Type identifies one of the paper's four error models.
type Type uint8

const (
	// FlipNearTau is Type 1.
	FlipNearTau Type = 1
	// Underestimation is Type 2 (ABW only).
	Underestimation Type = 2
	// FlipRandom is Type 3 (ABW only, per the paper's threat model).
	FlipRandom Type = 3
	// GoodToBad is Type 4.
	GoodToBad Type = 4
)

// String names the error type as in the paper.
func (t Type) String() string {
	switch t {
	case FlipNearTau:
		return "type1/flip-near-tau"
	case Underestimation:
		return "type2/underestimation"
	case FlipRandom:
		return "type3/flip-random"
	case GoodToBad:
		return "type4/good-to-bad"
	default:
		return fmt.Sprintf("corrupt.Type(%d)", uint8(t))
	}
}

// Params carries the knobs of one corruption run.
type Params struct {
	// Type selects the error model.
	Type Type
	// Tau is the classification threshold used to build the class matrix.
	Tau float64
	// Delta is the half-width of the perturbation band for Types 1 and 2.
	// Ignored by Types 3 and 4.
	Delta float64
	// Level is the target fraction of erroneous labels for Types 3 and 4.
	// Ignored by Types 1 and 2 (their level is set through Delta).
	Level float64
}

// Apply returns a corrupted copy of the class matrix cm. The dataset
// supplies quantities (for the band types) and metric polarity. rng drives
// the randomness; the input matrices are not modified.
func Apply(d *dataset.Dataset, cm *mat.Dense, p Params, rng *rand.Rand) *mat.Dense {
	out := cm.Clone()
	switch p.Type {
	case FlipNearTau:
		forEachPath(d, func(i, j int) {
			v := d.Matrix.At(i, j)
			if math.Abs(v-p.Tau) <= p.Delta && rng.Float64() < 0.5 {
				flip(out, i, j, d.Metric.Symmetric())
			}
		})
	case Underestimation:
		forEachPath(d, func(i, j int) {
			v := d.Matrix.At(i, j)
			if v >= p.Tau && v <= p.Tau+p.Delta {
				setBad(out, i, j, d.Metric.Symmetric())
			}
		})
	case FlipRandom:
		paths := collectPaths(d, out, nil)
		n := int(math.Round(p.Level * float64(len(paths))))
		for _, idx := range rng.Perm(len(paths))[:min(n, len(paths))] {
			pp := paths[idx]
			flip(out, pp.I, pp.J, d.Metric.Symmetric())
		}
	case GoodToBad:
		good := collectPaths(d, out, func(i, j int) bool {
			return out.At(i, j) == classify.Good.Value()
		})
		total := len(collectPaths(d, out, nil))
		n := int(math.Round(p.Level * float64(total)))
		if n > len(good) {
			n = len(good)
		}
		for _, idx := range rng.Perm(len(good))[:n] {
			pp := good[idx]
			setBad(out, pp.I, pp.J, d.Metric.Symmetric())
		}
	default:
		panic(fmt.Sprintf("corrupt: unknown type %v", p.Type))
	}
	return out
}

// forEachPath visits each label unit once: undirected pairs for symmetric
// metrics, directed pairs otherwise. Missing entries are skipped.
func forEachPath(d *dataset.Dataset, fn func(i, j int)) {
	n := d.N()
	sym := d.Metric.Symmetric()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || d.Matrix.IsMissing(i, j) {
				continue
			}
			if sym && j < i {
				continue
			}
			fn(i, j)
		}
	}
}

func collectPaths(d *dataset.Dataset, cm *mat.Dense, keep func(i, j int) bool) []mat.Pair {
	var out []mat.Pair
	forEachPath(d, func(i, j int) {
		if cm.IsMissing(i, j) {
			return
		}
		if keep == nil || keep(i, j) {
			out = append(out, mat.Pair{I: i, J: j})
		}
	})
	return out
}

func flip(cm *mat.Dense, i, j int, symmetric bool) {
	cm.Set(i, j, -cm.At(i, j))
	if symmetric {
		cm.Set(j, i, -cm.At(j, i))
	}
}

func setBad(cm *mat.Dense, i, j int, symmetric bool) {
	cm.Set(i, j, classify.Bad.Value())
	if symmetric {
		cm.Set(j, i, classify.Bad.Value())
	}
}

// ErrorRate returns the fraction of present off-diagonal labels on which
// the two class matrices disagree.
func ErrorRate(clean, corrupted *mat.Dense) float64 {
	if clean.Rows() != corrupted.Rows() || clean.Cols() != corrupted.Cols() {
		panic("corrupt: dimension mismatch")
	}
	var diff, total int
	for i := 0; i < clean.Rows(); i++ {
		for j := 0; j < clean.Cols(); j++ {
			if i == j || clean.IsMissing(i, j) || corrupted.IsMissing(i, j) {
				continue
			}
			total++
			if clean.At(i, j) != corrupted.At(i, j) {
				diff++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diff) / float64(total)
}

// CalibrateDelta returns the δ that makes the *expected* erroneous-label
// fraction equal to level for band-based error types:
//
//   - Type 1 flips paths in [τ−δ, τ+δ] with probability ½, so δ is chosen
//     to put a 2·level mass of paths inside the band;
//   - Type 2 mislabels the good paths in [τ, τ+δ], so δ is chosen to put a
//     level mass of paths inside that band.
//
// This reproduces Table 3 of the paper, which lists the δ values that lead
// to 5/10/15% error levels on each dataset. Deltas are found by bisection
// over the empirical quantity distribution.
func CalibrateDelta(d *dataset.Dataset, typ Type, tau, level float64) float64 {
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("corrupt: level %v out of (0,1)", level))
	}
	var targetMass float64
	var massAt func(delta float64) float64
	vals := pathValues(d)
	switch typ {
	case FlipNearTau:
		targetMass = 2 * level
		massAt = func(delta float64) float64 {
			var c int
			for _, v := range vals {
				if math.Abs(v-tau) <= delta {
					c++
				}
			}
			return float64(c) / float64(len(vals))
		}
	case Underestimation:
		targetMass = level
		massAt = func(delta float64) float64 {
			var c int
			for _, v := range vals {
				if v >= tau && v <= tau+delta {
					c++
				}
			}
			return float64(c) / float64(len(vals))
		}
	default:
		panic(fmt.Sprintf("corrupt: CalibrateDelta undefined for %v", typ))
	}
	lo, hi := 0.0, d.Matrix.MaxAbs()
	if massAt(hi) < targetMass {
		return hi // not enough mass even with the whole range
	}
	for it := 0; it < 80; it++ {
		mid := (lo + hi) / 2
		if massAt(mid) < targetMass {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// pathValues lists one quantity per label unit (undirected for RTT).
func pathValues(d *dataset.Dataset) []float64 {
	var out []float64
	forEachPath(d, func(i, j int) {
		out = append(out, d.Matrix.At(i, j))
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
