package corrupt

import (
	"math"
	"math/rand"
	"testing"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
)

func rttDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Meridian(dataset.MeridianConfig{N: 60, Seed: 31})
}

func abwDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.HPS3(dataset.HPS3Config{N: 60, Seed: 31})
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		FlipNearTau:     "type1/flip-near-tau",
		Underestimation: "type2/underestimation",
		FlipRandom:      "type3/flip-random",
		GoodToBad:       "type4/good-to-bad",
		Type(9):         "corrupt.Type(9)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestFlipNearTauOnlyPerturbsBand(t *testing.T) {
	d := rttDS(t)
	tau := d.Median()
	cm := classify.Matrix(d, tau)
	delta := CalibrateDelta(d, FlipNearTau, tau, 0.10)
	out := Apply(d, cm, Params{Type: FlipNearTau, Tau: tau, Delta: delta}, rand.New(rand.NewSource(1)))

	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			if i == j || cm.IsMissing(i, j) {
				continue
			}
			if out.At(i, j) != cm.At(i, j) {
				v := d.Matrix.At(i, j)
				if math.Abs(v-tau) > delta+1e-9 {
					t.Fatalf("flip outside band at (%d,%d): v=%v tau=%v delta=%v", i, j, v, tau, delta)
				}
			}
		}
	}
	// Input untouched.
	if ErrorRate(cm, classify.Matrix(d, tau)) != 0 {
		t.Error("Apply mutated its input")
	}
}

func TestFlipNearTauHitsTargetLevel(t *testing.T) {
	d := rttDS(t)
	tau := d.Median()
	cm := classify.Matrix(d, tau)
	for _, level := range []float64{0.05, 0.10, 0.15} {
		delta := CalibrateDelta(d, FlipNearTau, tau, level)
		// Average realized error over several seeds (flips are Bernoulli ½).
		var sum float64
		const trials = 10
		for s := int64(0); s < trials; s++ {
			out := Apply(d, cm, Params{Type: FlipNearTau, Tau: tau, Delta: delta}, rand.New(rand.NewSource(s)))
			sum += ErrorRate(cm, out)
		}
		got := sum / trials
		if math.Abs(got-level) > 0.03 {
			t.Errorf("level %v: realized error %v", level, got)
		}
	}
}

func TestCalibrateDeltaMonotone(t *testing.T) {
	d := rttDS(t)
	tau := d.Median()
	d5 := CalibrateDelta(d, FlipNearTau, tau, 0.05)
	d10 := CalibrateDelta(d, FlipNearTau, tau, 0.10)
	d15 := CalibrateDelta(d, FlipNearTau, tau, 0.15)
	if !(d5 < d10 && d10 < d15) {
		t.Errorf("delta not monotone in level: %v %v %v", d5, d10, d15)
	}
	if d5 <= 0 {
		t.Errorf("delta should be positive, got %v", d5)
	}
}

func TestUnderestimationOnlyGoodToBadInBand(t *testing.T) {
	d := abwDS(t)
	tau := d.Median()
	cm := classify.Matrix(d, tau)
	delta := CalibrateDelta(d, Underestimation, tau, 0.10)
	out := Apply(d, cm, Params{Type: Underestimation, Tau: tau, Delta: delta}, rand.New(rand.NewSource(2)))

	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			if i == j || cm.IsMissing(i, j) {
				continue
			}
			if out.At(i, j) != cm.At(i, j) {
				// Changed labels must be good→bad with quantity in [τ, τ+δ].
				if cm.At(i, j) != classify.Good.Value() || out.At(i, j) != classify.Bad.Value() {
					t.Fatalf("non good→bad change at (%d,%d)", i, j)
				}
				v := d.Matrix.At(i, j)
				if v < tau-1e-9 || v > tau+delta+1e-9 {
					t.Fatalf("change outside [τ,τ+δ] at (%d,%d): v=%v", i, j, v)
				}
			}
		}
	}
	got := ErrorRate(cm, out)
	if math.Abs(got-0.10) > 0.02 {
		t.Errorf("realized error %v, want ≈0.10", got)
	}
}

func TestFlipRandomHitsExactLevel(t *testing.T) {
	d := abwDS(t)
	tau := d.Median()
	cm := classify.Matrix(d, tau)
	for _, level := range []float64{0.05, 0.10, 0.15} {
		out := Apply(d, cm, Params{Type: FlipRandom, Tau: tau, Level: level}, rand.New(rand.NewSource(3)))
		got := ErrorRate(cm, out)
		if math.Abs(got-level) > 0.005 {
			t.Errorf("level %v: realized %v", level, got)
		}
	}
}

func TestGoodToBadOnlyDegradesGood(t *testing.T) {
	d := abwDS(t)
	tau := d.Median()
	cm := classify.Matrix(d, tau)
	out := Apply(d, cm, Params{Type: GoodToBad, Tau: tau, Level: 0.10}, rand.New(rand.NewSource(4)))
	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			if i == j || cm.IsMissing(i, j) {
				continue
			}
			if out.At(i, j) != cm.At(i, j) {
				if cm.At(i, j) != classify.Good.Value() {
					t.Fatalf("bad label changed at (%d,%d)", i, j)
				}
				if out.At(i, j) != classify.Bad.Value() {
					t.Fatalf("good label not set to bad at (%d,%d)", i, j)
				}
			}
		}
	}
	got := ErrorRate(cm, out)
	if math.Abs(got-0.10) > 0.01 {
		t.Errorf("realized error %v, want ≈0.10", got)
	}
}

func TestGoodToBadCapsAtGoodCount(t *testing.T) {
	// Requesting more errors than there are good paths must not panic.
	d := abwDS(t)
	tau := d.TauForGoodPortion(0.10) // only 10% good
	cm := classify.Matrix(d, tau)
	out := Apply(d, cm, Params{Type: GoodToBad, Tau: tau, Level: 0.5}, rand.New(rand.NewSource(5)))
	if got := ErrorRate(cm, out); got > 0.11 {
		t.Errorf("error rate %v exceeds available good paths", got)
	}
}

func TestSymmetricCorruptionKeepsSymmetry(t *testing.T) {
	d := rttDS(t)
	tau := d.Median()
	cm := classify.Matrix(d, tau)
	for _, p := range []Params{
		{Type: FlipNearTau, Tau: tau, Delta: CalibrateDelta(d, FlipNearTau, tau, 0.1)},
		{Type: GoodToBad, Tau: tau, Level: 0.1},
	} {
		out := Apply(d, cm, p, rand.New(rand.NewSource(6)))
		for i := 0; i < d.N(); i++ {
			for j := i + 1; j < d.N(); j++ {
				if out.IsMissing(i, j) {
					continue
				}
				if out.At(i, j) != out.At(j, i) {
					t.Fatalf("%v broke symmetry at (%d,%d)", p.Type, i, j)
				}
			}
		}
	}
}

func TestApplyPanicsOnUnknownType(t *testing.T) {
	d := rttDS(t)
	cm := classify.Matrix(d, d.Median())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Apply(d, cm, Params{Type: Type(77)}, rand.New(rand.NewSource(1)))
}

func TestCalibrateDeltaPanics(t *testing.T) {
	d := rttDS(t)
	for _, level := range []float64{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level %v should panic", level)
				}
			}()
			CalibrateDelta(d, FlipNearTau, d.Median(), level)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Type 3 calibration should panic")
			}
		}()
		CalibrateDelta(d, FlipRandom, d.Median(), 0.1)
	}()
}

func TestErrorRateIdentity(t *testing.T) {
	d := rttDS(t)
	cm := classify.Matrix(d, d.Median())
	if got := ErrorRate(cm, cm); got != 0 {
		t.Errorf("self error rate = %v", got)
	}
}

func TestErrorRateDimensionMismatchPanics(t *testing.T) {
	d := rttDS(t)
	cm := classify.Matrix(d, d.Median())
	small := classify.Matrix(dataset.Meridian(dataset.MeridianConfig{N: 10, Seed: 1}), 50)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ErrorRate(cm, small)
}
