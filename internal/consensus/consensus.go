// Package consensus implements the history-based label filter sketched in
// §6.3: random label errors ("flip randomly", "Good-to-Bad") come mostly
// from network anomalies and malicious nodes, and the paper notes they
// "can be addressed by incorporating heuristics such as inferring the
// class labels using some consensus based on recorded historical
// measurements".
//
// The filter keeps, per peer, a sliding window of the last W observed
// labels and reports the window majority. A malicious target that flips a
// fraction p < ½ of its responses is outvoted once the window fills;
// honest label changes (a path genuinely degrading) still propagate after
// ~W/2 observations, trading detection latency for robustness.
package consensus

import (
	"fmt"

	"dmfsgd/internal/classify"
)

// Filter maintains per-peer observation windows. Not safe for concurrent
// use; each node owns one Filter.
type Filter struct {
	window int
	hist   map[int]*ring
}

// ring is a fixed-capacity circular buffer of ±1 labels with a running sum.
type ring struct {
	buf  []int8
	next int
	n    int
	sum  int
}

// NewFilter creates a filter with the given window size (odd sizes avoid
// ties; even sizes break ties toward "bad", the conservative choice for
// peer selection).
func NewFilter(window int) *Filter {
	if window < 1 {
		panic(fmt.Sprintf("consensus: window %d must be >= 1", window))
	}
	return &Filter{window: window, hist: make(map[int]*ring)}
}

// Window returns the configured window size.
func (f *Filter) Window() int { return f.window }

// Observe records one measured label for a peer and returns the filtered
// (majority) label to use for the SGD update.
func (f *Filter) Observe(peer int, c classify.Class) classify.Class {
	r := f.hist[peer]
	if r == nil {
		r = &ring{buf: make([]int8, f.window)}
		f.hist[peer] = r
	}
	v := int8(c)
	if r.n == f.window {
		r.sum -= int(r.buf[r.next])
	} else {
		r.n++
	}
	r.buf[r.next] = v
	r.sum += int(v)
	r.next = (r.next + 1) % f.window
	return f.Current(peer)
}

// Current returns the majority label for a peer from its recorded history,
// or Bad when the peer was never observed (conservative default). Exact
// ties also resolve to Bad.
func (f *Filter) Current(peer int) classify.Class {
	r := f.hist[peer]
	if r == nil || r.n == 0 {
		return classify.Bad
	}
	if r.sum > 0 {
		return classify.Good
	}
	return classify.Bad
}

// Observations returns how many labels are recorded for a peer.
func (f *Filter) Observations(peer int) int {
	if r := f.hist[peer]; r != nil {
		return r.n
	}
	return 0
}

// Reset drops a peer's history (e.g. after the peer rejoins with a new
// identity).
func (f *Filter) Reset(peer int) { delete(f.hist, peer) }

// Peers returns the number of peers with recorded history.
func (f *Filter) Peers() int { return len(f.hist) }
