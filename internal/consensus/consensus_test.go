package consensus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmfsgd/internal/classify"
)

func TestNewFilterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFilter(0)
}

func TestUnknownPeerIsBad(t *testing.T) {
	f := NewFilter(5)
	if f.Current(42) != classify.Bad {
		t.Error("unknown peer should default to Bad")
	}
	if f.Observations(42) != 0 {
		t.Error("unknown peer has observations")
	}
}

func TestMajorityBasic(t *testing.T) {
	f := NewFilter(5)
	f.Observe(1, classify.Good)
	f.Observe(1, classify.Good)
	got := f.Observe(1, classify.Bad)
	if got != classify.Good {
		t.Errorf("2G+1B majority = %v, want good", got)
	}
	f.Observe(1, classify.Bad)
	if f.Current(1) != classify.Bad { // 2-2 tie resolves conservative
		t.Error("tie should resolve to Bad")
	}
	f.Observe(1, classify.Bad)
	if f.Current(1) != classify.Bad {
		t.Error("majority bad")
	}
	if f.Observations(1) != 5 {
		t.Errorf("observations = %d", f.Observations(1))
	}
}

func TestWindowSlides(t *testing.T) {
	f := NewFilter(3)
	for i := 0; i < 3; i++ {
		f.Observe(1, classify.Bad)
	}
	if f.Current(1) != classify.Bad {
		t.Fatal("all-bad window")
	}
	// Three fresh goods push all bads out.
	f.Observe(1, classify.Good)
	f.Observe(1, classify.Good)
	if f.Current(1) != classify.Good { // 2G 1B
		t.Error("sliding window did not update majority")
	}
	f.Observe(1, classify.Good)
	if f.Current(1) != classify.Good {
		t.Error("full good window")
	}
	if f.Observations(1) != 3 {
		t.Errorf("window should cap at 3, got %d", f.Observations(1))
	}
}

func TestPerPeerIsolation(t *testing.T) {
	f := NewFilter(3)
	f.Observe(1, classify.Good)
	f.Observe(2, classify.Bad)
	if f.Current(1) != classify.Good || f.Current(2) != classify.Bad {
		t.Error("peer histories leaked")
	}
	if f.Peers() != 2 {
		t.Errorf("Peers = %d", f.Peers())
	}
	f.Reset(1)
	if f.Current(1) != classify.Bad || f.Peers() != 1 {
		t.Error("Reset failed")
	}
}

// The core robustness claim: a malicious peer flipping 20% of its labels
// is outvoted — after a window of 15 fills, the majority is wrong only
// when ≥8 of 15 observations flipped, P ≈ 0.004 for Binomial(15, 0.2).
func TestOutvotesMinorityFlips(t *testing.T) {
	const window = 15
	f := NewFilter(window)
	rng := rand.New(rand.NewSource(91))
	truth := classify.Good
	wrong := 0
	const total = 5000
	for i := 0; i < total; i++ {
		obs := truth
		if rng.Float64() < 0.2 {
			obs = -truth
		}
		got := f.Observe(7, obs)
		if i >= window && got != truth {
			wrong++
		}
	}
	if rate := float64(wrong) / total; rate > 0.02 {
		t.Errorf("filtered error rate %v, want < 0.02", rate)
	}
	// Contrast: the unfiltered error rate would be ≈0.2.
}

func TestTracksHonestChange(t *testing.T) {
	// A genuine label change must propagate within ~window observations.
	f := NewFilter(5)
	for i := 0; i < 5; i++ {
		f.Observe(1, classify.Good)
	}
	flipAfter := -1
	for i := 0; i < 5; i++ {
		if f.Observe(1, classify.Bad) == classify.Bad {
			flipAfter = i + 1
			break
		}
	}
	if flipAfter < 0 {
		t.Fatal("filter never tracked the honest change")
	}
	if flipAfter > 3 {
		t.Errorf("change took %d observations, want <= 3 (window 5)", flipAfter)
	}
}

// Property: Current always equals the sign of the window sum, computed
// independently.
func TestPropertyMajorityMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(8)
		flt := NewFilter(w)
		var window []int8
		for i := 0; i < 50; i++ {
			c := classify.Good
			if rng.Intn(2) == 0 {
				c = classify.Bad
			}
			flt.Observe(3, c)
			window = append(window, int8(c))
			if len(window) > w {
				window = window[1:]
			}
			sum := 0
			for _, v := range window {
				sum += int(v)
			}
			want := classify.Bad
			if sum > 0 {
				want = classify.Good
			}
			if flt.Current(3) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	f := NewFilter(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := classify.Good
		if i&3 == 0 {
			c = classify.Bad
		}
		f.Observe(i%64, c)
	}
}
