package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame is the largest length-prefixed frame the TCP transport accepts.
// Replication deltas are the biggest messages in the protocol; the wire
// layer bounds a full-state delta to 16·wire.MaxStateFloats coordinate
// bytes (~32 MiB) plus small headers, so every valid message fits.
const MaxFrame = 1 << 26 // 64 MiB

// tcpDialTimeout bounds connection establishment and frame writes.
const tcpDialTimeout = 3 * time.Second

// TCP is a Transport over TCP with 4-byte big-endian length-prefixed
// frames — datagram semantics on a stream. It exists for the replication
// tier (internal/replica), whose Delta messages exceed UDP datagram
// limits; probe traffic should keep using UDP or the in-memory Network.
//
// Send dials the destination, writes one frame and closes — gossip traffic
// is sparse (one exchange per interval), so connection reuse is not worth
// its bookkeeping. Delivery is best-effort like the other transports: a
// peer that is down is a returned error the caller may ignore.
//
// Because frames arrive over short-lived inbound connections, a Packet's
// From field is the remote's ephemeral address, not its listen address;
// replication messages therefore carry the sender's listen address in the
// payload (wire.VersionVec.Addr, wire.DeltaRequest.Addr).
type TCP struct {
	ln     net.Listener
	recv   chan Packet
	stream bool // persistent per-destination connections (FIFO per pair)

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{} // open inbound connections, closed by Close
	outs   map[string]*outConn   // stream mode: cached outbound connections
	wg     sync.WaitGroup
}

// outConn serializes writers on one cached outbound connection.
type outConn struct {
	mu     sync.Mutex
	conn   net.Conn
	dialed bool // a connection was established before (next dial is a redial)
}

var _ Transport = (*TCP)(nil)

// ListenTCP opens a TCP endpoint on addr (e.g. "127.0.0.1:0") and starts
// its accept loop.
func ListenTCP(addr string) (*TCP, error) {
	return listenTCP(addr, false)
}

// ListenTCPStream is ListenTCP with one persistent connection per
// destination instead of a dial per frame. Frames to the same peer ride
// one ordered byte stream and are read back by one goroutine, so
// delivery is FIFO per peer pair — the ordering the trainer-cluster
// protocol (internal/cluster) requires, which dial-per-send cannot give:
// a small frame on a fresh connection can overtake a large one still in
// flight. Idle connections are kept open (no read deadline) until either
// side closes; a write error drops the cached connection, and the next
// Send redials.
func ListenTCPStream(addr string) (*TCP, error) {
	return listenTCP(addr, true)
}

func listenTCP(addr string, stream bool) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	t := &TCP{
		ln:     ln,
		recv:   make(chan Packet, 256),
		stream: stream,
		conns:  make(map[net.Conn]struct{}),
		outs:   make(map[string]*outConn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // closed or fatal; Close closes recv after the wait
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.readConn(conn)
		}()
	}
}

// readConn reads frames from one inbound connection until EOF or error.
func (t *TCP) readConn(conn net.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	from := conn.RemoteAddr().String()
	var lenBuf [4]byte
	for {
		if !t.stream {
			// Gossip connections are one frame and gone; an idle one is
			// dead weight. Stream connections idle between lockstep rounds
			// by design and stay open.
			conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		}
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > MaxFrame {
			return // malformed peer: drop the connection
		}
		// Grow the buffer as payload bytes actually arrive rather than
		// trusting the attacker-controlled length prefix: a client
		// claiming MaxFrame and sending nothing pins one chunk, not
		// 64 MiB, per connection.
		const chunk = 1 << 20
		data := make([]byte, 0, min(int(n), chunk))
		for len(data) < int(n) {
			step := min(int(n)-len(data), chunk)
			data = append(data, make([]byte, step)...)
			if _, err := io.ReadFull(conn, data[len(data)-step:]); err != nil {
				return
			}
		}
		mFramesRecv.Inc()
		mBytesRecv.Add(uint64(n))
		t.push(Packet{From: from, Data: data})
	}
}

// push enqueues a packet, dropping on overflow or after close (matching
// the datagram transports).
func (t *TCP) push(pkt Packet) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	select {
	case t.recv <- pkt:
	default:
	}
}

// Addr implements Transport.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Send implements Transport. Gossip mode: dial, write one frame, close.
// Stream mode: write the frame to the destination's persistent
// connection, dialing (or redialing after an error) as needed.
func (t *TCP) Send(to string, data []byte) error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(data), MaxFrame)
	}
	if t.stream {
		return t.sendStream(to, data)
	}
	conn, err := net.DialTimeout("tcp", to, tcpDialTimeout)
	if err != nil {
		mDialErrors.Inc()
		return fmt.Errorf("transport: dial %q: %w", to, err)
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(tcpDialTimeout))
	if err := writeFrame(conn, data); err != nil {
		return err
	}
	mFramesSent.Inc()
	mBytesSent.Add(uint64(len(data)))
	return nil
}

func writeFrame(conn net.Conn, data []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := conn.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := conn.Write(data)
	return err
}

// sendStream writes one frame to the cached connection for to. The
// per-destination mutex both serializes concurrent senders (frames must
// not interleave on the stream) and preserves their order end to end.
func (t *TCP) sendStream(to string, data []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	oc := t.outs[to]
	if oc == nil {
		oc = &outConn{}
		t.outs[to] = oc
	}
	t.mu.Unlock()

	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.conn == nil {
		conn, err := net.DialTimeout("tcp", to, tcpDialTimeout)
		if err != nil {
			mDialErrors.Inc()
			return fmt.Errorf("transport: dial %q: %w", to, err)
		}
		if oc.dialed {
			mRedials.Inc()
		}
		oc.dialed = true
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		oc.conn = conn
	}
	oc.conn.SetWriteDeadline(time.Now().Add(tcpDialTimeout))
	if err := writeFrame(oc.conn, data); err != nil {
		// The stream is corrupt past a partial write: drop the connection
		// and let the next Send redial.
		oc.conn.Close()
		t.mu.Lock()
		delete(t.conns, oc.conn)
		t.mu.Unlock()
		oc.conn = nil
		return err
	}
	mFramesSent.Inc()
	mBytesSent.Add(uint64(len(data)))
	return nil
}

// Recv implements Transport.
func (t *TCP) Recv() <-chan Packet { return t.recv }

// Close implements Transport: stops the accept loop, waits for in-flight
// reader goroutines, and closes the Recv channel.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for conn := range t.conns {
		conn.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	close(t.recv)
	return err
}
