package transport

import (
	"bytes"
	"testing"
	"time"
)

func TestTCPSendRecv(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	payload := bytes.Repeat([]byte{0xD3, 0x01, 0x07}, 1000) // > one MTU
	if err := a.Send(b.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-b.Recv():
		if !bytes.Equal(pkt.Data, payload) {
			t.Errorf("payload corrupted: %d bytes, want %d", len(pkt.Data), len(payload))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for frame")
	}
}

// TestTCPStreamFIFO pins the ordering guarantee the trainer-cluster
// protocol builds on: frames to one peer arrive in send order even when
// a large frame is chased by a tiny one. Dial-per-frame gossip TCP has
// no such guarantee (the tiny frame's fresh connection can win the
// race), which is exactly the bug that motivated the stream variant.
func TestTCPStreamFIFO(t *testing.T) {
	a, err := ListenTCPStream("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCPStream("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const frames = 50
	for i := 0; i < frames; i++ {
		size := 1 << 20 // a big frame…
		if i%2 == 1 {
			size = 8 // …chased by a tiny one
		}
		payload := bytes.Repeat([]byte{byte(i)}, size)
		if err := a.Send(b.Addr(), payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		select {
		case pkt := <-b.Recv():
			if pkt.Data[0] != byte(i) {
				t.Fatalf("frame %d arrived where %d belongs: reordered", pkt.Data[0], i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timeout waiting for frame %d", i)
		}
	}
}

// TestTCPStreamRedialAfterPeerRestart: a write error drops the cached
// connection and the next Send redials, so a restarted peer is
// reachable again without any transport-level reset.
func TestTCPStreamRedialAfterPeerRestart(t *testing.T) {
	a, err := ListenTCPStream("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCPStream("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	if err := a.Send(addr, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if pkt := <-b.Recv(); string(pkt.Data) != "one" {
		t.Fatalf("got %q", pkt.Data)
	}
	b.Close()

	// The peer restarts on the same address. The first sends may land in
	// the dead connection's buffer or error; within a few attempts the
	// transport must redial and deliver.
	b2, err := ListenTCPStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	deadline := time.After(10 * time.Second)
	for delivered := false; !delivered; {
		_ = a.Send(addr, []byte("two"))
		select {
		case pkt := <-b2.Recv():
			if string(pkt.Data) != "two" {
				t.Fatalf("got %q", pkt.Data)
			}
			delivered = true
		case <-time.After(50 * time.Millisecond):
		case <-deadline:
			t.Fatal("restarted peer never reachable")
		}
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(addr, []byte("x")); err == nil {
		t.Error("send after close succeeded")
	}
	// Recv must be closed.
	if _, ok := <-a.Recv(); ok {
		t.Error("recv channel still open after close")
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPSendToDownPeer(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := b.Addr()
	b.Close()
	if err := a.Send(dead, []byte("x")); err == nil {
		t.Error("send to closed listener succeeded")
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(a.Addr(), make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized frame accepted")
	}
}
