package transport

import (
	"bytes"
	"testing"
	"time"
)

func TestTCPSendRecv(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	payload := bytes.Repeat([]byte{0xD3, 0x01, 0x07}, 1000) // > one MTU
	if err := a.Send(b.Addr(), payload); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-b.Recv():
		if !bytes.Equal(pkt.Data, payload) {
			t.Errorf("payload corrupted: %d bytes, want %d", len(pkt.Data), len(payload))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for frame")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(addr, []byte("x")); err == nil {
		t.Error("send after close succeeded")
	}
	// Recv must be closed.
	if _, ok := <-a.Recv(); ok {
		t.Error("recv channel still open after close")
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPSendToDownPeer(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := b.Addr()
	b.Close()
	if err := a.Send(dead, []byte("x")); err == nil {
		t.Error("send to closed listener succeeded")
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(a.Addr(), make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized frame accepted")
	}
}
