package transport

import "dmfsgd/internal/metrics"

// Process-wide transport counters (DESIGN.md §12). Registered once at
// init into the default registry; both gossip and stream TCP endpoints
// in a process accumulate into the same cells.
var (
	mFramesSent = metrics.Default().Counter("dmf_transport_frames_sent_total",
		"TCP frames written (gossip and stream lanes).")
	mBytesSent = metrics.Default().Counter("dmf_transport_bytes_sent_total",
		"TCP payload bytes written, excluding the 4-byte length prefix.")
	mFramesRecv = metrics.Default().Counter("dmf_transport_frames_recv_total",
		"TCP frames read and enqueued.")
	mBytesRecv = metrics.Default().Counter("dmf_transport_bytes_recv_total",
		"TCP payload bytes read.")
	mDialErrors = metrics.Default().Counter("dmf_transport_dial_errors_total",
		"Outbound dials that failed.")
	mRedials = metrics.Default().Counter("dmf_transport_redials_total",
		"Stream-lane dials replacing a connection dropped after an error.")
)
