package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMemSendRecv(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	a := n.Attach("a")
	b := n.Attach("b")
	defer a.Close()
	defer b.Close()

	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-b.Recv():
		if pkt.From != "a" || string(pkt.Data) != "hello" {
			t.Errorf("got %+v", pkt)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestMemUnknownAddr(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	a := n.Attach("a")
	defer a.Close()
	if err := a.Send("nope", []byte("x")); err == nil {
		t.Error("send to unknown address should fail")
	}
}

func TestMemDuplicateAttachPanics(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	n.Attach("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Attach("a")
}

func TestMemSendAfterClose(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	a := n.Attach("a")
	n.Attach("b")
	a.Close()
	if err := a.Send("b", []byte("x")); err != ErrClosed {
		t.Errorf("got %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemLatePacketToClosedEndpoint(t *testing.T) {
	n := NewNetwork(NetworkConfig{
		Delay: func(from, to string) time.Duration { return 10 * time.Millisecond },
	})
	a := n.Attach("a")
	b := n.Attach("b")
	if err := a.Send("b", []byte("late")); err != nil {
		t.Fatal(err)
	}
	b.Close() // close before delivery fires
	n.Wait()  // delivery must not panic on the closed channel
	a.Close()
}

func TestMemDelay(t *testing.T) {
	const d = 30 * time.Millisecond
	n := NewNetwork(NetworkConfig{
		Delay: func(from, to string) time.Duration { return d },
	})
	a := n.Attach("a")
	b := n.Attach("b")
	defer a.Close()
	defer b.Close()

	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		if elapsed := time.Since(start); elapsed < d {
			t.Errorf("delivered after %v, want >= %v", elapsed, d)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestMemDropRate(t *testing.T) {
	n := NewNetwork(NetworkConfig{DropRate: 0.5, Seed: 1})
	a := n.Attach("a")
	b := n.Attach("b")
	defer a.Close()
	defer b.Close()

	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n.Wait()
	got := len(b.Recv())
	if got < total/2-150 || got > total/2+150 {
		t.Errorf("received %d of %d with 50%% drop", got, total)
	}
}

func TestMemDupRate(t *testing.T) {
	n := NewNetwork(NetworkConfig{DupRate: 0.5, Seed: 2, QueueLen: 4096})
	a := n.Attach("a")
	b := n.Attach("b")
	defer a.Close()
	defer b.Close()

	const total = 1000
	for i := 0; i < total; i++ {
		if err := a.Send("b", []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	n.Wait()
	got := len(b.Recv())
	if got < total+total/2-100 || got > total+total/2+100 {
		t.Errorf("received %d of %d with 50%% dup", got, total)
	}
}

func TestMemQueueOverflowDrops(t *testing.T) {
	n := NewNetwork(NetworkConfig{QueueLen: 4})
	a := n.Attach("a")
	b := n.Attach("b")
	defer a.Close()
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(b.Recv()); got != 4 {
		t.Errorf("queue holds %d, want 4", got)
	}
}

func TestMemPayloadIsolation(t *testing.T) {
	// Mutating the sender's buffer after Send must not affect delivery.
	n := NewNetwork(NetworkConfig{})
	a := n.Attach("a")
	b := n.Attach("b")
	defer a.Close()
	defer b.Close()

	buf := []byte("abc")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	pkt := <-b.Recv()
	if string(pkt.Data) != "abc" {
		t.Errorf("payload aliased sender buffer: %q", pkt.Data)
	}
}

func TestMemConcurrentSenders(t *testing.T) {
	n := NewNetwork(NetworkConfig{QueueLen: 100000})
	hub := n.Attach("hub")
	defer hub.Close()
	const senders, each = 16, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		m := n.Attach(fmt.Sprintf("s%d", s))
		wg.Add(1)
		go func(m *Mem) {
			defer wg.Done()
			defer m.Close()
			for i := 0; i < each; i++ {
				if err := m.Send("hub", []byte{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(m)
	}
	wg.Wait()
	n.Wait()
	if got := len(hub.Recv()); got != senders*each {
		t.Errorf("received %d, want %d", got, senders*each)
	}
}

func TestNetworkConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad drop rate")
		}
	}()
	NewNetwork(NetworkConfig{DropRate: 1.5})
}

func TestUDPLoopback(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-b.Recv():
		if string(pkt.Data) != "ping" {
			t.Errorf("got %q", pkt.Data)
		}
		if pkt.From != a.Addr() {
			t.Errorf("from = %q, want %q", pkt.From, a.Addr())
		}
		// Reply using the observed source address.
		if err := b.Send(pkt.From, []byte("pong")); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for ping")
	}
	select {
	case pkt := <-a.Recv():
		if string(pkt.Data) != "pong" {
			t.Errorf("got %q", pkt.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for pong")
	}
}

func TestUDPSendAfterClose(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	a.Close()
	if err := a.Send(addr, []byte("x")); err != ErrClosed {
		t.Errorf("got %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	// Recv channel must be closed.
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Error("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Error("recv channel not closed")
	}
}

func TestUDPBadAddress(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("not-an-address", []byte("x")); err == nil {
		t.Error("bad address should fail")
	}
}

func BenchmarkMemRoundTrip(b *testing.B) {
	n := NewNetwork(NetworkConfig{})
	x := n.Attach("x")
	y := n.Attach("y")
	defer x.Close()
	defer y.Close()
	payload := make([]byte, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Send("y", payload); err != nil {
			b.Fatal(err)
		}
		<-y.Recv()
	}
}
