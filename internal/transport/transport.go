// Package transport moves wire-encoded datagrams between DMFSGD nodes.
//
// Two implementations are provided behind one interface:
//
//   - Mem / Network: an in-process hub connecting goroutine nodes, with
//     configurable per-pair delivery delay (driven by the ground-truth RTT
//     of a simulated topology), probabilistic loss and duplication. This is
//     the substrate for the concurrent-runtime experiments and for failure
//     injection tests.
//   - UDP: a thin wrapper over net.UDPConn for real deployments
//     (cmd/dmfnode, examples/livenet).
//
// Both are datagram-oriented and unreliable by design — the DMFSGD
// protocol tolerates loss (a lost probe is simply a missed update), so the
// transport does not retry.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Packet is one received datagram.
type Packet struct {
	// From is the sender's transport address.
	From string
	// Data is the datagram payload. The receiver owns it.
	Data []byte
}

// Transport sends and receives datagrams.
type Transport interface {
	// Addr returns this endpoint's address.
	Addr() string
	// Send transmits data to the given address. Delivery is best-effort.
	Send(to string, data []byte) error
	// Recv returns the channel of inbound packets. It is closed by Close.
	Recv() <-chan Packet
	// Close releases resources and closes the Recv channel.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownAddr is returned by the in-memory network for unattached
// destinations.
var ErrUnknownAddr = errors.New("transport: unknown address")

// NetworkConfig tunes the in-memory hub.
type NetworkConfig struct {
	// Delay returns the one-way delivery delay from one address to
	// another. Nil means instant delivery. Typical wiring: half the
	// ground-truth RTT, scaled down for test speed.
	Delay func(from, to string) time.Duration
	// DropRate is the probability a datagram is silently lost.
	DropRate float64
	// DupRate is the probability a datagram is delivered twice.
	DupRate float64
	// QueueLen is the per-node inbound queue length (default 1024).
	// Overflow drops the datagram, like a full socket buffer.
	QueueLen int
	// Seed drives loss/duplication randomness.
	Seed int64
}

// Network is the in-memory hub. Attach endpoints, then exchange datagrams.
// All methods are safe for concurrent use.
type Network struct {
	cfg NetworkConfig

	mu    sync.Mutex
	nodes map[string]*Mem
	rng   *rand.Rand
	// pending counts in-flight AfterFunc deliveries so Close can be clean
	// in tests.
	wg sync.WaitGroup
}

// NewNetwork creates a hub.
func NewNetwork(cfg NetworkConfig) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 || cfg.DupRate < 0 || cfg.DupRate >= 1 {
		panic(fmt.Sprintf("transport: rates out of [0,1): drop=%v dup=%v", cfg.DropRate, cfg.DupRate))
	}
	return &Network{
		cfg:   cfg,
		nodes: make(map[string]*Mem),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Attach creates an endpoint with the given address. Panics if the address
// is taken.
func (n *Network) Attach(addr string) *Mem {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; ok {
		panic(fmt.Sprintf("transport: address %q already attached", addr))
	}
	m := &Mem{
		net:  n,
		addr: addr,
		recv: make(chan Packet, n.cfg.QueueLen),
	}
	n.nodes[addr] = m
	return m
}

// Wait blocks until all in-flight delayed deliveries have fired. Useful at
// the end of tests.
func (n *Network) Wait() { n.wg.Wait() }

// deliver routes one datagram, applying loss, duplication and delay.
func (n *Network) deliver(from, to string, data []byte) error {
	n.mu.Lock()
	dst, ok := n.nodes[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}
	drop := n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate
	dup := n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate
	n.mu.Unlock()

	if drop {
		return nil // silently lost, like the real network
	}
	copies := 1
	if dup {
		copies = 2
	}
	var delay time.Duration
	if n.cfg.Delay != nil {
		delay = n.cfg.Delay(from, to)
	}
	for c := 0; c < copies; c++ {
		payload := append([]byte(nil), data...)
		pkt := Packet{From: from, Data: payload}
		if delay <= 0 {
			dst.push(pkt)
			continue
		}
		n.wg.Add(1)
		time.AfterFunc(delay, func() {
			defer n.wg.Done()
			dst.push(pkt)
		})
	}
	return nil
}

// Mem is an in-memory endpoint created by Network.Attach.
type Mem struct {
	net  *Network
	addr string

	mu     sync.Mutex
	closed bool
	recv   chan Packet
}

var _ Transport = (*Mem)(nil)

// Addr implements Transport.
func (m *Mem) Addr() string { return m.addr }

// Send implements Transport.
func (m *Mem) Send(to string, data []byte) error {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return m.net.deliver(m.addr, to, data)
}

// Recv implements Transport.
func (m *Mem) Recv() <-chan Packet { return m.recv }

// Close implements Transport. The endpoint stays attached (late packets to
// it are dropped) so concurrent senders never see a missing address
// mid-shutdown.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	close(m.recv)
	return nil
}

// push enqueues a packet, dropping on overflow or after close.
func (m *Mem) push(pkt Packet) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	select {
	case m.recv <- pkt:
	default:
		// Queue overflow: drop, as a kernel socket buffer would.
	}
}

// UDP is a Transport over a real UDP socket.
type UDP struct {
	conn *net.UDPConn
	recv chan Packet

	mu     sync.Mutex
	closed bool
}

var _ Transport = (*UDP)(nil)

// MaxDatagram is the largest datagram the UDP transport accepts.
const MaxDatagram = 64 * 1024

// ListenUDP opens a UDP endpoint on addr (e.g. "127.0.0.1:0") and starts
// its reader goroutine.
func ListenUDP(addr string) (*UDP, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	u := &UDP{
		conn: conn,
		recv: make(chan Packet, 1024),
	}
	go u.readLoop()
	return u, nil
}

func (u *UDP) readLoop() {
	defer close(u.recv)
	buf := make([]byte, MaxDatagram)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed or fatal; channel close signals consumers
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		select {
		case u.recv <- Packet{From: from.String(), Data: data}:
		default:
			// Consumer too slow: drop, matching UDP semantics.
		}
	}
}

// Addr implements Transport.
func (u *UDP) Addr() string { return u.conn.LocalAddr().String() }

// Send implements Transport.
func (u *UDP) Send(to string, data []byte) error {
	u.mu.Lock()
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return ErrClosed
	}
	ua, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return fmt.Errorf("transport: resolve %q: %w", to, err)
	}
	_, err = u.conn.WriteToUDP(data, ua)
	return err
}

// Recv implements Transport.
func (u *UDP) Recv() <-chan Packet { return u.recv }

// Close implements Transport.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	return u.conn.Close()
}
