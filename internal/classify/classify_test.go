package classify

import (
	"math"
	"math/rand"
	"testing"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
)

func TestClassBasics(t *testing.T) {
	if Good.Value() != 1 || Bad.Value() != -1 {
		t.Error("class numeric labels must be ±1")
	}
	if Good.String() != "good" || Bad.String() != "bad" {
		t.Error("class names")
	}
	if FromValue(0.3) != Good || FromValue(-2) != Bad || FromValue(0) != Bad {
		t.Error("FromValue sign rule")
	}
}

func TestOfPolarity(t *testing.T) {
	// RTT: small is good.
	if Of(dataset.RTT, 50, 100) != Good || Of(dataset.RTT, 150, 100) != Bad {
		t.Error("RTT polarity")
	}
	// ABW: large is good.
	if Of(dataset.ABW, 50, 40) != Good || Of(dataset.ABW, 30, 40) != Bad {
		t.Error("ABW polarity")
	}
}

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Meridian(dataset.MeridianConfig{N: 30, Seed: 21})
}

func TestMatrix(t *testing.T) {
	d := testDataset(t)
	tau := d.Median()
	cm := Matrix(d, tau)
	if cm.Rows() != d.N() {
		t.Fatal("dims")
	}
	var good, bad int
	for i := 0; i < cm.Rows(); i++ {
		for j := 0; j < cm.Cols(); j++ {
			if i == j {
				if !cm.IsMissing(i, j) {
					t.Fatal("diagonal must stay missing")
				}
				continue
			}
			switch cm.At(i, j) {
			case 1:
				good++
			case -1:
				bad++
			default:
				t.Fatalf("entry (%d,%d) = %v not ±1", i, j, cm.At(i, j))
			}
		}
	}
	// τ = median → roughly balanced classes.
	total := good + bad
	if math.Abs(float64(good)/float64(total)-0.5) > 0.05 {
		t.Errorf("median threshold should balance classes: %d good / %d bad", good, bad)
	}
	// Original dataset must be untouched.
	if d.Matrix.At(0, 1) == 1 || d.Matrix.At(0, 1) == -1 {
		t.Error("Matrix mutated the dataset")
	}
}

func TestExactProber(t *testing.T) {
	d := testDataset(t)
	tau := d.Median()
	p := NewExactProber(d, tau)
	if p.Tau() != tau {
		t.Error("Tau accessor")
	}
	cm := Matrix(d, tau)
	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			c, ok := p.ProbeClass(i, j)
			if i == j {
				if ok {
					t.Fatal("diagonal should be unmeasurable")
				}
				continue
			}
			if !ok {
				t.Fatalf("pair (%d,%d) unmeasurable", i, j)
			}
			if c.Value() != cm.At(i, j) {
				t.Fatalf("prober disagrees with Matrix at (%d,%d)", i, j)
			}
		}
	}
}

func TestExactProberMissing(t *testing.T) {
	d := dataset.HPS3(dataset.HPS3Config{N: 40, MissingFraction: 0.2, Seed: 2})
	p := NewExactProber(d, d.Median())
	var missing int
	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			if i == j {
				continue
			}
			if _, ok := p.ProbeClass(i, j); !ok {
				missing++
				if !d.Matrix.IsMissing(i, j) {
					t.Fatal("prober reported missing for present entry")
				}
			}
		}
	}
	if missing == 0 {
		t.Error("expected some missing pairs")
	}
}

func TestNoisyProberErrorLocalization(t *testing.T) {
	// Errors must concentrate near τ: paths at τ flip ~50% of the time,
	// paths far away essentially never.
	d := testDataset(t)
	tau := d.Median()
	rng := rand.New(rand.NewSource(33))
	p := NewNoisyProber(d, tau, 0.1, rng)

	var nearFlips, nearTotal, farFlips, farTotal int
	for trial := 0; trial < 200; trial++ {
		for i := 0; i < d.N(); i++ {
			for j := 0; j < d.N(); j++ {
				if i == j {
					continue
				}
				v := d.Matrix.At(i, j)
				rel := math.Abs(v-tau) / tau
				truth := Of(d.Metric, v, tau)
				got, ok := p.ProbeClass(i, j)
				if !ok {
					continue
				}
				if rel < 0.02 {
					nearTotal++
					if got != truth {
						nearFlips++
					}
				} else if rel > 1.0 {
					farTotal++
					if got != truth {
						farFlips++
					}
				}
			}
		}
	}
	if nearTotal > 0 {
		rate := float64(nearFlips) / float64(nearTotal)
		if rate < 0.3 || rate > 0.6 {
			t.Errorf("near-τ flip rate = %v, want ≈0.5", rate)
		}
	}
	if farTotal > 0 {
		rate := float64(farFlips) / float64(farTotal)
		if rate > 0.01 {
			t.Errorf("far-from-τ flip rate = %v, want ≈0", rate)
		}
	}
}

func TestNoisyProberPanicsOnBadWidth(t *testing.T) {
	d := testDataset(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNoisyProber(d, 50, 0, rand.New(rand.NewSource(1)))
}

func TestTraceClassifier(t *testing.T) {
	tc := NewTraceClassifier(dataset.RTT, 100)
	if tc.Classify(dataset.Measurement{Value: 50}) != Good {
		t.Error("fast RTT should be good")
	}
	if tc.Classify(dataset.Measurement{Value: 200}) != Bad {
		t.Error("slow RTT should be bad")
	}
	tcA := NewTraceClassifier(dataset.ABW, 40)
	if tcA.Classify(dataset.Measurement{Value: 50}) != Good {
		t.Error("high ABW should be good")
	}
}

func TestMatrixPreservesMissing(t *testing.T) {
	m := mat.NewMissing(3, 3)
	m.Set(0, 1, 10)
	d := dataset.FromMatrix("t", dataset.RTT, m, 2)
	cm := Matrix(d, 20)
	if cm.At(0, 1) != 1 {
		t.Error("present entry should classify")
	}
	if !cm.IsMissing(1, 2) {
		t.Error("missing entry should stay missing")
	}
}
