// Package classify turns metric quantities into binary performance classes
// (§3.2 of the paper): a path is "good" (+1) or "bad" (−1) relative to a
// classification threshold τ chosen by the application.
//
// For RTT the class is obtained by thresholding a cheap ping measurement.
// For ABW the class can be measured *directly* without estimating the
// quantity: send one UDP train at rate τ and observe whether the path
// congests (pathload-style), or run a shortened pathchirp and threshold its
// rough estimate. Package classify models both, including their
// characteristic inaccuracy on paths whose quantity lies near τ.
package classify

import (
	"fmt"
	"math"
	"math/rand"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
)

// Class is a binary performance class.
type Class int8

const (
	// Good marks a well-performing path (+1 in the paper's matrices).
	Good Class = 1
	// Bad marks a poorly-performing path (−1).
	Bad Class = -1
)

// String returns "good" or "bad".
func (c Class) String() string {
	switch c {
	case Good:
		return "good"
	case Bad:
		return "bad"
	default:
		return fmt.Sprintf("classify.Class(%d)", int8(c))
	}
}

// Value returns the numeric label (+1 / −1) used by the SGD losses.
func (c Class) Value() float64 { return float64(c) }

// FromValue converts a ±1 (or any signed) numeric label to a Class.
// Zero maps to Bad, matching sign-based decisions where x̂ must be
// strictly positive to be called good.
func FromValue(v float64) Class {
	if v > 0 {
		return Good
	}
	return Bad
}

// Of classifies a metric quantity against threshold tau under the metric's
// polarity: RTT ≤ τ is good; ABW ≥ τ is good.
func Of(m dataset.Metric, value, tau float64) Class {
	if dataset.IsGood(m, value, tau) {
		return Good
	}
	return Bad
}

// Matrix builds the class matrix of a ground-truth quantity matrix:
// entry (i,j) is +1/−1 by thresholding at tau; missing entries stay NaN.
// This is the matrix X of Fig. 2.
func Matrix(d *dataset.Dataset, tau float64) *mat.Dense {
	out := d.Matrix.Clone()
	out.Apply(func(i, j int, v float64) float64 {
		return Of(d.Metric, v, tau).Value()
	})
	return out
}

// Prober produces class measurements for node pairs. Implementations model
// the measurement tools of §3.2.
type Prober interface {
	// ProbeClass returns the measured class of the path i→j under the
	// prober's threshold, and false if the pair cannot be measured (missing
	// ground truth).
	ProbeClass(i, j int) (Class, bool)
}

// ExactProber returns the true class of each pair: ideal measurement with
// no tool error. The erroneous-measurement experiments (§6.3) layer
// corruption on top of this via package corrupt.
type ExactProber struct {
	ds  *dataset.Dataset
	tau float64
}

// NewExactProber builds an ExactProber with threshold tau.
func NewExactProber(ds *dataset.Dataset, tau float64) *ExactProber {
	return &ExactProber{ds: ds, tau: tau}
}

// Tau returns the classification threshold.
func (p *ExactProber) Tau() float64 { return p.tau }

// ProbeClass implements Prober.
func (p *ExactProber) ProbeClass(i, j int) (Class, bool) {
	if p.ds.Matrix.IsMissing(i, j) {
		return Bad, false
	}
	return Of(p.ds.Metric, p.ds.Matrix.At(i, j), p.tau), true
}

// NoisyProber models a real measurement tool: paths whose quantity lies
// near τ are misclassified with a probability that decays with distance
// from τ (§3.2: "directly measured performance classes may be inaccurate
// especially for those paths with metric quantities close to τ").
//
// The error model is P(flip) = 0.5·exp(−|v−τ| / (Width·τ)): a path exactly
// at τ is a coin flip, a path far from τ is essentially never wrong. Width
// expresses the tool's resolution as a fraction of τ; pathload-style
// single-train probes have larger Width than full-length runs, which is the
// cost/accuracy dilemma the paper describes.
type NoisyProber struct {
	ds    *dataset.Dataset
	tau   float64
	width float64
	rng   *rand.Rand
}

// NewNoisyProber builds a NoisyProber. width must be positive; typical
// values are 0.05 (careful tool) to 0.3 (single short train).
func NewNoisyProber(ds *dataset.Dataset, tau, width float64, rng *rand.Rand) *NoisyProber {
	if width <= 0 {
		panic(fmt.Sprintf("classify: width must be positive, got %v", width))
	}
	return &NoisyProber{ds: ds, tau: tau, width: width, rng: rng}
}

// ProbeClass implements Prober.
func (p *NoisyProber) ProbeClass(i, j int) (Class, bool) {
	if p.ds.Matrix.IsMissing(i, j) {
		return Bad, false
	}
	v := p.ds.Matrix.At(i, j)
	c := Of(p.ds.Metric, v, p.tau)
	if p.rng.Float64() < p.flipProb(v) {
		c = -c
	}
	return c, true
}

func (p *NoisyProber) flipProb(v float64) float64 {
	scale := p.width * math.Abs(p.tau)
	if scale == 0 {
		return 0
	}
	return 0.5 * math.Exp(-math.Abs(v-p.tau)/scale)
}

// TraceClassifier converts dynamic quantity measurements (the Harvard
// trace) to class measurements on the fly.
type TraceClassifier struct {
	metric dataset.Metric
	tau    float64
}

// NewTraceClassifier builds a classifier for trace replay.
func NewTraceClassifier(metric dataset.Metric, tau float64) *TraceClassifier {
	return &TraceClassifier{metric: metric, tau: tau}
}

// Classify returns the class of one trace measurement.
func (tc *TraceClassifier) Classify(m dataset.Measurement) Class {
	return Of(tc.metric, m.Value, tc.tau)
}
