// Package oracle provides the measurement ground truth for simulated
// deployments: when a runtime node "pings" a peer or "sends a UDP train at
// rate τ", an oracle backed by a dataset decides what the tool would have
// observed.
//
// This is the substitution for real measurement tools (ping, pathload,
// pathchirp) described in DESIGN.md: the paper's §3.2 reduces the tools to
// their observable behavior — a quantity with noise, or a binary
// congestion response that is unreliable near τ — and that is exactly what
// these oracles produce. All oracles are safe for concurrent use by many
// node goroutines.
package oracle

import (
	"math"
	"math/rand"
	"sync"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
)

// RTT serves round-trip-time measurements from a ground-truth matrix with
// optional lognormal noise (ping jitter).
type RTT struct {
	m     *mat.Dense
	sigma float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRTT builds an RTT oracle over matrix m (ms). sigma is the lognormal
// noise parameter; 0 disables noise.
func NewRTT(m *mat.Dense, sigma float64, seed int64) *RTT {
	return &RTT{m: m, sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// MeasureRTT returns one measured RTT from i to j, or false when the pair
// has no ground truth.
func (o *RTT) MeasureRTT(i, j int) (float64, bool) {
	if i < 0 || j < 0 || i >= o.m.Rows() || j >= o.m.Cols() || o.m.IsMissing(i, j) {
		return 0, false
	}
	v := o.m.At(i, j)
	if o.sigma > 0 {
		o.mu.Lock()
		n := o.rng.NormFloat64()
		o.mu.Unlock()
		v *= math.Exp(n*o.sigma - o.sigma*o.sigma/2)
	}
	return v, true
}

// ABWClass serves the binary congestion responses of a pathload-style
// probe: "did a UDP train at rate τ congest the path i→j?" The answer is
// derived from ground-truth ABW, optionally with the near-τ flip noise of
// real tools.
type ABWClass struct {
	ds    *dataset.Dataset
	width float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewABWClass builds the oracle. width > 0 enables near-τ measurement
// error with the given relative resolution (see classify.NoisyProber);
// width = 0 gives exact responses.
func NewABWClass(ds *dataset.Dataset, width float64, seed int64) *ABWClass {
	return &ABWClass{ds: ds, width: width, rng: rand.New(rand.NewSource(seed))}
}

// MeasureClass returns the class the target of path sender→target would
// infer when probed at the given rate, or false for unmeasurable pairs.
func (o *ABWClass) MeasureClass(sender, target int, rate float64) (classify.Class, bool) {
	m := o.ds.Matrix
	if sender < 0 || target < 0 || sender >= m.Rows() || target >= m.Cols() || m.IsMissing(sender, target) {
		return classify.Bad, false
	}
	v := m.At(sender, target)
	c := classify.Of(dataset.ABW, v, rate)
	if o.width > 0 {
		scale := o.width * math.Abs(rate)
		if scale > 0 {
			p := 0.5 * math.Exp(-math.Abs(v-rate)/scale)
			o.mu.Lock()
			flip := o.rng.Float64() < p
			o.mu.Unlock()
			if flip {
				c = -c
			}
		}
	}
	return c, true
}

// ClassMatrix serves persistent class labels from a precomputed (possibly
// corrupted) class matrix. Unlike ABWClass, repeated probes of a pair
// always return the same label — this is how the erroneous-label
// experiments (§6.3) are wired into the concurrent runtime.
type ClassMatrix struct {
	m *mat.Dense
}

// NewClassMatrix wraps a ±1 class matrix.
func NewClassMatrix(m *mat.Dense) *ClassMatrix { return &ClassMatrix{m: m} }

// MeasureClass returns the stored label of (sender, target); rate is
// ignored (labels are pre-thresholded).
func (o *ClassMatrix) MeasureClass(sender, target int, rate float64) (classify.Class, bool) {
	if sender < 0 || target < 0 || sender >= o.m.Rows() || target >= o.m.Cols() || o.m.IsMissing(sender, target) {
		return classify.Bad, false
	}
	return classify.FromValue(o.m.At(sender, target)), true
}
