package oracle

import (
	"math"
	"sync"
	"testing"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
)

func TestRTTExact(t *testing.T) {
	m := mat.NewMissing(3, 3)
	m.Set(0, 1, 100)
	o := NewRTT(m, 0, 1)
	v, ok := o.MeasureRTT(0, 1)
	if !ok || v != 100 {
		t.Errorf("MeasureRTT = %v, %v", v, ok)
	}
	if _, ok := o.MeasureRTT(1, 2); ok {
		t.Error("missing pair should be unmeasurable")
	}
	if _, ok := o.MeasureRTT(-1, 0); ok {
		t.Error("out of range should be unmeasurable")
	}
	if _, ok := o.MeasureRTT(0, 5); ok {
		t.Error("out of range should be unmeasurable")
	}
}

func TestRTTNoiseUnbiased(t *testing.T) {
	m := mat.NewMissing(2, 2)
	m.Set(0, 1, 100)
	o := NewRTT(m, 0.2, 7)
	var sum float64
	const n = 20000
	seenDifferent := false
	var prev float64
	for i := 0; i < n; i++ {
		v, ok := o.MeasureRTT(0, 1)
		if !ok {
			t.Fatal("measurable pair failed")
		}
		if i > 0 && v != prev {
			seenDifferent = true
		}
		prev = v
		sum += v
	}
	if !seenDifferent {
		t.Error("noise produced identical samples")
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Errorf("noisy mean = %v, want ≈100 (lognormal corrected)", mean)
	}
}

func TestRTTConcurrentSafety(t *testing.T) {
	m := mat.NewMissing(2, 2)
	m.Set(0, 1, 50)
	o := NewRTT(m, 0.1, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, ok := o.MeasureRTT(0, 1); !ok {
					t.Error("measure failed")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestABWClassExact(t *testing.T) {
	ds := dataset.HPS3(dataset.HPS3Config{N: 30, Seed: 5})
	o := NewABWClass(ds, 0, 1)
	tau := ds.Median()
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if i == j || ds.Matrix.IsMissing(i, j) {
				if i != j {
					continue
				}
				if _, ok := o.MeasureClass(i, j, tau); ok {
					t.Fatal("diagonal measurable")
				}
				continue
			}
			c, ok := o.MeasureClass(i, j, tau)
			if !ok {
				t.Fatalf("pair (%d,%d) unmeasurable", i, j)
			}
			want := classify.Of(dataset.ABW, ds.Matrix.At(i, j), tau)
			if c != want {
				t.Fatalf("class mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestABWClassNoiseNearTau(t *testing.T) {
	ds := dataset.HPS3(dataset.HPS3Config{N: 40, Seed: 6})
	tau := ds.Median()
	o := NewABWClass(ds, 0.15, 9)
	// Find a pair essentially at tau and one far away.
	nearI, nearJ, farI, farJ := -1, -1, -1, -1
	for i := 0; i < 40 && (nearI < 0 || farI < 0); i++ {
		for j := 0; j < 40; j++ {
			if i == j || ds.Matrix.IsMissing(i, j) {
				continue
			}
			v := ds.Matrix.At(i, j)
			rel := math.Abs(v-tau) / tau
			if rel < 0.03 && nearI < 0 {
				nearI, nearJ = i, j
			}
			if rel > 1.5 && farI < 0 {
				farI, farJ = i, j
			}
		}
	}
	if nearI < 0 || farI < 0 {
		t.Skip("dataset instance lacks suitable pairs")
	}
	flips := func(i, j int) float64 {
		truth := classify.Of(dataset.ABW, ds.Matrix.At(i, j), tau)
		n := 0
		const trials = 3000
		for k := 0; k < trials; k++ {
			c, _ := o.MeasureClass(i, j, tau)
			if c != truth {
				n++
			}
		}
		return float64(n) / trials
	}
	if f := flips(nearI, nearJ); f < 0.2 {
		t.Errorf("near-τ flip rate %v too low", f)
	}
	if f := flips(farI, farJ); f > 0.02 {
		t.Errorf("far-τ flip rate %v too high", f)
	}
}

func TestClassMatrix(t *testing.T) {
	m := mat.NewMissing(3, 3)
	m.Set(0, 1, 1)
	m.Set(1, 0, -1)
	o := NewClassMatrix(m)
	if c, ok := o.MeasureClass(0, 1, 99); !ok || c != classify.Good {
		t.Errorf("got %v %v", c, ok)
	}
	if c, ok := o.MeasureClass(1, 0, 0); !ok || c != classify.Bad {
		t.Errorf("got %v %v", c, ok)
	}
	if _, ok := o.MeasureClass(2, 1, 0); ok {
		t.Error("missing entry measurable")
	}
	if _, ok := o.MeasureClass(5, 0, 0); ok {
		t.Error("out of range measurable")
	}
}

func TestClassMatrixStability(t *testing.T) {
	// Labels must be persistent: same answer every probe.
	m := mat.NewMissing(2, 2)
	m.Set(0, 1, -1)
	o := NewClassMatrix(m)
	for i := 0; i < 100; i++ {
		c, _ := o.MeasureClass(0, 1, 0)
		if c != classify.Bad {
			t.Fatal("label changed between probes")
		}
	}
}
