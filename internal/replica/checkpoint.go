package replica

import (
	"fmt"

	"dmfsgd/internal/ckpt"
)

// FromCheckpoint materializes a replica State from a decoded checkpoint
// — the follower bootstrap path: a serving replica that saved its state
// before a restart starts from the local file instead of a full remote
// pull, and the restored version vector makes the anti-entropy exchange
// ship only the shards that advanced while the replica was down.
// Works with any checkpoint (a trainer session's or a follower's own):
// only the coordinates, version vector and serving metadata are used.
func FromCheckpoint(c *ckpt.Checkpoint) (*State, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	return Update(nil, c.N, c.Rank, c.Shards,
		Meta{Steps: c.Steps, Tau: c.Tau, Metric: c.Metric},
		c.Vers, c.U, c.V)
}

// Checkpoint captures the state in the durable checkpoint format. A
// replica state carries no topology or RNG streams, so the counters a
// trainer session records are zero: the resulting file bootstraps
// serving replicas (FromCheckpoint) but is not a training resume point
// (ResumeSession rejects its k=0 topology).
func (st *State) Checkpoint() *ckpt.Checkpoint {
	u, v := st.Flatten()
	return &ckpt.Checkpoint{
		N: st.N, Rank: st.Rank, Shards: st.Shards,
		Steps:  st.Meta.Steps,
		Tau:    st.Meta.Tau,
		Metric: st.Meta.Metric,
		Vers:   append([]uint64(nil), st.vers...),
		U:      u, V: v,
	}
}
