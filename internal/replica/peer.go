package replica

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"dmfsgd/internal/metrics"
	"dmfsgd/internal/transport"
	"dmfsgd/internal/wire"
)

// Config parameterizes a gossip Peer.
type Config struct {
	// ID identifies this replica in replication messages.
	ID uint32
	// Transport carries the gossip traffic (in-memory Network in tests,
	// transport.TCP in real deployments — replication deltas exceed UDP
	// datagram limits).
	Transport transport.Transport
	// Peers are bootstrap gossip addresses; more are learned from inbound
	// messages (push/pull anti-entropy, like internal/member). Bootstrap
	// addresses are permanent; learned ones are evicted when a send to
	// them fails (they are re-learned from their next inbound message).
	Peers []string
	// Source marks the tier's writer: a source peer never pulls remote
	// state (its local state is authoritative, fed through SetState,
	// which replaces unconditionally) and ignores inbound deltas. This is
	// what keeps a restarted trainer — whose counters restart low — from
	// adopting a follower's stale pre-restart state and then refusing its
	// own fresh snapshots.
	Source bool
	// Incarnation is this replica's lineage counter, stamped on outgoing
	// version vectors and deltas. A source that restarts from a
	// checkpoint bumps it past the checkpoint's recorded incarnation;
	// followers that see a known sender return with a higher incarnation
	// drop the old lineage's state and re-bootstrap instead of
	// blackholing the sender behind a stale version high-water mark.
	Incarnation uint32
	// Interval is the gossip period (default 500ms): every tick the peer
	// announces its version vector to one random known peer.
	Interval time.Duration
	// Seed drives peer selection.
	Seed int64
	// OnState, when set, is invoked (outside the peer's lock, on the Run
	// goroutine) every time the local state advances by an applied delta —
	// the hook serving replicas use to publish a fresh Snapshot.
	OnState func(*State)
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)
}

// Lag describes how far the local state trails the newest remote state
// this replica has heard of — the replication lag a serving replica
// publishes on /healthz.
type Lag struct {
	// HasState is false until the first state lands (bootstrap).
	HasState bool
	// StepsBehind is the newest advertised training step counter minus the
	// local one.
	StepsBehind uint64
	// StaleShards counts shards the newest advertised vector has ahead of
	// the local one.
	StaleShards int
	// LastAdvance is when the local state last moved (zero before the
	// first delta).
	LastAdvance time.Time
}

// Peer is one replication endpoint: it gossips its version vector,
// answers pulls from its state, and pulls stale shards from newer peers.
// A trainer replica feeds it through SetState; serving replicas receive
// through OnState. All exported methods are safe for concurrent use with
// a running Run loop.
type Peer struct {
	cfg Config

	mu          sync.Mutex
	st          *State
	peers       map[string]struct{}
	seeds       map[string]struct{} // configured bootstrap addresses, never evicted
	incs        map[uint32]uint32   // newest incarnation seen per sender id
	remoteSteps uint64              // newest advertised step counter
	remoteVers  []uint64            // element-wise max of advertised vectors
	lastAdvance time.Time           // when the local state last moved
	rng         *rand.Rand

	// deltaSem caps concurrent delta encodes: a delta response copies
	// megabytes, and inbound DeltaRequests are unauthenticated, so
	// excess requests are dropped (the requester's anti-entropy loop
	// retries) instead of amplified into unbounded allocation.
	deltaSem chan struct{}
}

// NewPeer builds a peer (does not start it — call Run).
func NewPeer(cfg Config) *Peer {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	p := &Peer{
		cfg:      cfg,
		peers:    make(map[string]struct{}),
		seeds:    make(map[string]struct{}),
		incs:     make(map[uint32]uint32),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		deltaSem: make(chan struct{}, 4),
	}
	for _, a := range cfg.Peers {
		if a != "" && a != cfg.Transport.Addr() {
			p.peers[a] = struct{}{}
			p.seeds[a] = struct{}{}
		}
	}
	return p
}

func (p *Peer) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// SetState publishes a locally produced state (the trainer path). On a
// Source peer the new state always replaces the old (the local producer
// is authoritative); otherwise SetState never goes backwards in steps.
func (p *Peer) SetState(st *State) {
	p.mu.Lock()
	if p.cfg.Source || p.st == nil || st.Meta.Steps >= p.st.Meta.Steps {
		p.st = st
		//dmf:allow noclock liveness bookkeeping is inherently wall-clock and never feeds training state
		p.lastAdvance = time.Now()
	}
	p.mu.Unlock()
}

// State returns the current local state (nil before bootstrap).
func (p *Peer) State() *State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// Lag reports the current replication lag.
func (p *Peer) Lag() Lag {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := Lag{HasState: p.st.Complete(), LastAdvance: p.lastAdvance}
	if p.st == nil {
		l.StepsBehind = p.remoteSteps
		l.StaleShards = len(p.remoteVers)
		return l
	}
	if p.remoteSteps > p.st.Meta.Steps {
		l.StepsBehind = p.remoteSteps - p.st.Meta.Steps
	}
	if len(p.remoteVers) == p.st.Shards {
		for i, rv := range p.remoteVers {
			if rv > p.st.vers[i] {
				l.StaleShards++
			}
		}
	}
	return l
}

// Run processes gossip until ctx is done or the transport closes. Every
// Interval the peer announces its version vector to one random known
// peer; inbound vectors trigger pulls for stale shards, inbound pulls are
// answered from the local state, and inbound deltas advance it.
func (p *Peer) Run(ctx context.Context) {
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	p.gossip() // announce immediately so followers bootstrap fast
	for {
		select {
		case <-ctx.Done():
			return
		case pkt, ok := <-p.cfg.Transport.Recv():
			if !ok {
				return
			}
			p.handle(pkt)
		case <-tick.C:
			p.gossip()
		}
	}
}

// gossip announces the local version vector to one random known peer.
func (p *Peer) gossip() {
	p.mu.Lock()
	var target string
	if len(p.peers) > 0 {
		k := p.rng.Intn(len(p.peers))
		//dmf:allow detorder target choice is already randomized by the seeded rng; map order only permutes which peer k lands on
		for a := range p.peers {
			if k == 0 {
				target = a
				break
			}
			k--
		}
	}
	vv := p.versionVecLocked()
	p.mu.Unlock()
	if target == "" {
		return
	}
	p.sendVersionVec(target, vv)
}

// versionVecLocked builds the announcement for the current state (an
// empty-state hello when there is none). Callers hold p.mu.
func (p *Peer) versionVecLocked() *wire.VersionVec {
	vv := &wire.VersionVec{From: p.cfg.ID, Inc: p.cfg.Incarnation, Addr: p.cfg.Transport.Addr()}
	if p.st != nil {
		sv := p.st.VersionVec(p.cfg.ID, vv.Addr)
		sv.Inc = p.cfg.Incarnation
		return sv
	}
	return vv
}

// admitLocked reconciles an inbound message's lineage with what is known
// about its sender. A higher incarnation than recorded starts a new
// lineage: on a non-source peer the held state — built from the old
// lineage — is dropped along with the remote high-water marks, so the
// returned sender is re-admitted and re-bootstrapped instead of being
// blackholed behind versions its restart can never outrun. A lower
// incarnation is a straggler from a dead lineage and its message is
// dropped (returns false). Pre-incarnation senders always stamp 0, which
// degenerates to today's behavior. Callers hold p.mu.
func (p *Peer) admitLocked(from, inc uint32) bool {
	known, seen := p.incs[from]
	if inc < known {
		return false
	}
	if seen && inc > known && !p.cfg.Source && p.st != nil {
		p.logf("replica: peer %d returned with incarnation %d (had %d): dropping old lineage", from, inc, known)
		p.st = nil
		p.remoteVers = nil
		p.remoteSteps = 0
	}
	p.incs[from] = inc
	return true
}

// send ships one encoded message on its own goroutine: a Transport.Send
// can block for seconds (TCP dial timeout to a blackholed peer), and the
// Run loop must keep serving other peers meanwhile. Encoded buffers are
// never reused, so the goroutine owns buf outright; lifetime is bounded
// by the transport's dial/write deadlines. A failed send to a learned
// (non-seed) address evicts it, so churned-away followers on ephemeral
// ports stop soaking up gossip ticks; live peers re-learn themselves
// with their next inbound message.
func (p *Peer) send(to string, buf []byte, what string) {
	go func() {
		if err := p.cfg.Transport.Send(to, buf); err != nil {
			p.logf("replica: %s to %s: %v", what, to, err)
			p.forget(to)
		}
	}()
}

// forget evicts a learned peer address; configured seeds are kept.
func (p *Peer) forget(addr string) {
	p.mu.Lock()
	if _, seed := p.seeds[addr]; !seed {
		if _, known := p.peers[addr]; known {
			mEvictions.Inc()
		}
		delete(p.peers, addr)
	}
	p.mu.Unlock()
}

// updateLagLocked refreshes the replication-lag gauges from the same
// comparison Lag() reports — /healthz and /metrics read one source.
// Callers hold p.mu.
func (p *Peer) updateLagLocked() {
	if p.st == nil {
		mLagSteps.SetInt(int64(p.remoteSteps))
		mStaleShards.SetInt(int64(len(p.remoteVers)))
		return
	}
	var behind uint64
	if p.remoteSteps > p.st.Meta.Steps {
		behind = p.remoteSteps - p.st.Meta.Steps
	}
	stale := 0
	if len(p.remoteVers) == p.st.Shards {
		for i, rv := range p.remoteVers {
			if rv > p.st.vers[i] {
				stale++
			}
		}
	}
	mLagSteps.SetInt(int64(behind))
	mStaleShards.SetInt(int64(stale))
}

func (p *Peer) sendVersionVec(to string, vv *wire.VersionVec) {
	buf, err := wire.AppendVersionVec(nil, vv)
	if err != nil {
		p.logf("replica: encode version vec: %v", err)
		return
	}
	mPushes.Inc()
	mGossipBytesSent.Add(uint64(len(buf)))
	p.send(to, buf, "push")
}

// learn records a peer address discovered from inbound traffic.
func (p *Peer) learn(addr string) {
	if addr == "" || addr == p.cfg.Transport.Addr() {
		return
	}
	p.mu.Lock()
	p.peers[addr] = struct{}{}
	p.mu.Unlock()
}

// replyAddr resolves where to answer a message: the advertised listen
// address when present, else the observed source (in-memory transports
// observe listen addresses; TCP does not).
func replyAddr(advertised, observed string) string {
	if advertised != "" {
		return advertised
	}
	return observed
}

func (p *Peer) handle(pkt transport.Packet) {
	typ, err := wire.PeekType(pkt.Data)
	if err != nil {
		return
	}
	mGossipBytesRecv.Add(uint64(len(pkt.Data)))
	switch typ {
	case wire.TypeVersionVec:
		var vv wire.VersionVec
		if err := wire.DecodeVersionVec(pkt.Data, &vv); err != nil {
			return
		}
		p.handleVersionVec(&vv, replyAddr(vv.Addr, pkt.From))
	case wire.TypeDeltaRequest:
		var req wire.DeltaRequest
		if err := wire.DecodeDeltaRequest(pkt.Data, &req); err != nil {
			return
		}
		p.handleDeltaRequest(&req, replyAddr(req.Addr, pkt.From))
	case wire.TypeDelta:
		var d wire.Delta
		if err := wire.DecodeDelta(pkt.Data, &d); err != nil {
			return
		}
		p.handleDelta(&d)
	}
}

// handleVersionVec is the anti-entropy comparison: pull what the remote
// has newer, and push our own vector back when we are the newer side (the
// remote will pull in turn).
func (p *Peer) handleVersionVec(vv *wire.VersionVec, from string) {
	p.learn(from)
	p.mu.Lock()
	if !p.admitLocked(vv.From, vv.Inc) {
		p.mu.Unlock()
		return
	}
	if vv.Steps > p.remoteSteps {
		p.remoteSteps = vv.Steps
	}
	if vv.N > 0 {
		if len(p.remoteVers) != int(vv.Shards) {
			p.remoteVers = append([]uint64(nil), vv.Vers...)
		} else {
			for i, rv := range vv.Vers {
				if rv > p.remoteVers[i] {
					p.remoteVers[i] = rv
				}
			}
		}
	}
	st := p.st
	stale := st.StaleShards(vv)
	if p.cfg.Source {
		stale = nil // the writer never pulls: its own state is the truth
	}
	newer := st.NewerThan(vv)
	reply := p.versionVecLocked()
	p.updateLagLocked()
	p.mu.Unlock()

	if len(stale) > 0 {
		req := &wire.DeltaRequest{From: p.cfg.ID, Addr: p.cfg.Transport.Addr(), Shards: stale}
		if buf, err := wire.AppendDeltaRequest(nil, req); err == nil {
			mPulls.Inc()
			mGossipBytesSent.Add(uint64(len(buf)))
			p.send(from, buf, "pull")
		}
		return
	}
	if newer {
		// Strictly newer somewhere and nothing to pull: advertise back so
		// the remote pulls from us. The exchange terminates once vectors
		// match (neither side is newer).
		p.sendVersionVec(from, reply)
	}
}

// handleDeltaRequest answers a pull from the local state. Encoding a
// multi-shard delta copies megabytes, so it runs on a send goroutine —
// DeltaFor only aliases the immutable state, which makes that safe — and
// deltaSem caps how many encodes run at once; beyond the cap the request
// is dropped and the puller's next anti-entropy round retries.
func (p *Peer) handleDeltaRequest(req *wire.DeltaRequest, from string) {
	p.learn(from)
	p.mu.Lock()
	st := p.st
	p.mu.Unlock()
	if st == nil {
		return
	}
	frames, err := st.DeltasFor(p.cfg.ID, req.Shards, wire.MaxStateFloats)
	if err != nil {
		p.logf("replica: delta to %s: %v", from, err)
		return
	}
	if len(frames) == 0 {
		return
	}
	select {
	case p.deltaSem <- struct{}{}:
	default:
		p.logf("replica: delta to %s dropped (at concurrency cap)", from)
		return
	}
	go func() {
		defer func() { <-p.deltaSem }()
		for _, d := range frames {
			d.Inc = p.cfg.Incarnation
			buf, err := wire.AppendDelta(nil, d)
			if err != nil {
				p.logf("replica: encode delta: %v", err)
				return
			}
			if err := p.cfg.Transport.Send(from, buf); err != nil {
				p.logf("replica: delta to %s: %v", from, err)
				p.forget(from)
				return
			}
			mDeltaFrames.Inc()
			mGossipBytesSent.Add(uint64(len(buf)))
		}
	}()
}

// handleDelta applies an inbound delta and fires OnState when the state
// advanced to a complete snapshot — a multi-frame bootstrap stays
// unpublished (and unserved) until its last hole fills. Source peers
// ignore deltas outright.
func (p *Peer) handleDelta(d *wire.Delta) {
	if p.cfg.Source {
		return
	}
	p.mu.Lock()
	if !p.admitLocked(d.From, d.Inc) {
		p.mu.Unlock()
		return
	}
	bootstrap := p.st == nil
	next, applied, err := Apply(p.st, d)
	if err == nil && applied > 0 {
		p.st = next
		//dmf:allow noclock liveness bookkeeping is inherently wall-clock and never feeds training state
		p.lastAdvance = time.Now()
		if bootstrap {
			mShardsFull.Add(uint64(applied))
		} else {
			mShardsDelta.Add(uint64(applied))
		}
		p.updateLagLocked()
	}
	p.mu.Unlock()
	if err != nil {
		p.logf("replica: apply delta from %d: %v", d.From, err)
		return
	}
	if applied > 0 {
		metrics.Emit("gossip_delta", 0,
			metrics.KV{K: "from", V: int64(d.From)},
			metrics.KV{K: "shards", V: int64(applied)},
			metrics.KV{K: "steps", V: int64(next.Meta.Steps)})
	}
	if applied > 0 && next.Complete() && p.cfg.OnState != nil {
		p.cfg.OnState(next)
	}
}
