package replica

import "dmfsgd/internal/metrics"

// Gossip-tier series (DESIGN.md §12). Bytes are message payloads at
// the replica layer (the transport counts its own frame totals, so the
// two can be compared to spot non-gossip traffic on a shared lane).
var (
	mPushes = metrics.Default().Counter("dmf_replica_gossip_push_total",
		"Version-vector announcements sent (gossip ticks and reply pushes).")
	mPulls = metrics.Default().Counter("dmf_replica_gossip_pull_total",
		"Delta requests sent for stale shards.")
	mDeltaFrames = metrics.Default().Counter("dmf_replica_delta_frames_sent_total",
		"Delta frames encoded and sent answering pulls.")
	mGossipBytes = metrics.Default().CounterVec("dmf_replica_gossip_bytes_total",
		"Replication message bytes by direction.", "dir")
	mGossipBytesSent = mGossipBytes.With("sent")
	mGossipBytesRecv = mGossipBytes.With("recv")
	mShardsApplied   = metrics.Default().CounterVec("dmf_replica_shards_applied_total",
		"Delta shards applied to local state: full = bootstrap into an empty state, delta = incremental.", "kind")
	mShardsFull  = mShardsApplied.With("full")
	mShardsDelta = mShardsApplied.With("delta")
	mEvictions   = metrics.Default().Counter("dmf_replica_peer_evictions_total",
		"Learned peer addresses evicted after a failed send.")
	mLagSteps = metrics.Default().Gauge("dmf_replica_lag_steps",
		"Training steps the local state trails the newest advertised remote state.")
	mStaleShards = metrics.Default().Gauge("dmf_replica_stale_shards",
		"Shards the newest advertised remote vector has ahead of the local one.")
)
