// Package replica turns the single-process serving tier into a cluster of
// eventually-consistent read replicas. It builds on three pieces:
//
//   - versioned state: State is an immutable snapshot of every node's
//     coordinates, structured as one contiguous block per shard with the
//     store's per-shard version counters attached;
//   - snapshot deltas: a State diffs against a remote version vector and
//     ships only the shards that advanced (wire.Delta); Apply materializes
//     a fresh State from a base plus a delta, sharing the blocks of
//     untouched shards instead of re-copying them;
//   - gossip anti-entropy: Peer exchanges version vectors with random
//     peers over any transport.Transport and pulls only stale shards.
//
// The consistency model is eventual with a single writer: one trainer
// replica advances the versions, any number of serving replicas converge
// to it. Reads never block — replicas serve whatever immutable State they
// hold while newer shards stream in.
//
// Trust model: inbound messages are untrusted for safety (the wire layer
// bounds every allocation) but trusted for authenticity, like the probe
// protocol — run the gossip tier on a private network. See DESIGN.md §7.
package replica

import (
	"errors"
	"fmt"

	"dmfsgd/internal/wire"
)

// ErrShardTooLarge marks a chunked-bootstrap request whose per-frame
// budget cannot fit even one shard block: shard granularity is the
// chunking floor, so the state must be sharded finer (or the budget
// raised) before it can be served.
var ErrShardTooLarge = errors.New("replica: shard block exceeds the per-frame budget")

// Meta is the serving metadata replicated alongside the coordinates.
type Meta struct {
	// Steps is the trainer's cumulative update counter at capture.
	Steps uint64
	// Tau is the classification threshold the coordinates were trained
	// against; Metric the measured quantity (dataset.Metric).
	Tau    float64
	Metric uint8
}

// State is one immutable versioned coordinate snapshot. Shard p owns nodes
// p, p+P, p+2P, … (the store's assignment); each shard's U and V rows live
// in one contiguous block, ascending by global node id. Immutability is
// what makes block sharing across states safe: Apply and Update reuse the
// blocks of shards whose version did not advance.
type State struct {
	// N, Rank and Shards fix the geometry.
	N, Rank, Shards int
	// Meta carries steps, τ and the metric.
	Meta Meta

	vers   []uint64
	blocks []coordBlock
}

type coordBlock struct{ u, v []float64 }

// rowsOf returns the node count of shard p.
func (st *State) rowsOf(p int) int { return wire.ShardNodes(st.N, p, st.Shards) }

// Vers returns the per-shard version vector (shared; do not modify).
func (st *State) Vers() []uint64 { return st.vers }

// Update materializes a state from flat row-major coordinate arrays (node
// i's rows at [i·rank, (i+1)·rank), as produced by engine.Store snapshot
// paths) and the store's per-shard version vector. When base has the same
// geometry, the blocks of shards whose version is unchanged are shared
// from base instead of re-copied — the trainer-side delta capture. vers,
// u and v are copied as needed and may be reused by the caller.
func Update(base *State, n, rank, shards int, meta Meta, vers []uint64, u, v []float64) (*State, error) {
	if n < 1 || rank < 1 || shards < 1 || shards > n {
		return nil, fmt.Errorf("replica: bad geometry n=%d rank=%d shards=%d", n, rank, shards)
	}
	if len(vers) != shards {
		return nil, fmt.Errorf("replica: version vector length %d, want %d", len(vers), shards)
	}
	if len(u) != n*rank || len(v) != n*rank {
		return nil, fmt.Errorf("replica: flat arrays %d/%d, want %d", len(u), len(v), n*rank)
	}
	if base != nil && (base.N != n || base.Rank != rank || base.Shards != shards) {
		base = nil // geometry changed: full rebuild
	}
	st := &State{
		N: n, Rank: rank, Shards: shards,
		Meta:   meta,
		vers:   append([]uint64(nil), vers...),
		blocks: make([]coordBlock, shards),
	}
	for p := 0; p < shards; p++ {
		if base != nil && base.vers[p] == vers[p] {
			st.blocks[p] = base.blocks[p]
			continue
		}
		st.blocks[p] = packShard(n, rank, shards, p, u, v)
	}
	return st, nil
}

// packShard copies shard p's rows out of flat row-major arrays into one
// contiguous block.
func packShard(n, rank, shards, p int, u, v []float64) coordBlock {
	rows := wire.ShardNodes(n, p, shards)
	b := coordBlock{
		u: make([]float64, rows*rank),
		v: make([]float64, rows*rank),
	}
	for li := 0; li < rows; li++ {
		i := p + li*shards
		copy(b.u[li*rank:(li+1)*rank], u[i*rank:(i+1)*rank])
		copy(b.v[li*rank:(li+1)*rank], v[i*rank:(i+1)*rank])
	}
	return b
}

// Row returns node i's U and V rows (views into the state; do not modify).
func (st *State) Row(i int) (u, v []float64) {
	if i < 0 || i >= st.N {
		panic(fmt.Sprintf("replica: row %d out of [0,%d)", i, st.N))
	}
	p, li := i%st.Shards, i/st.Shards
	b := st.blocks[p]
	return b.u[li*st.Rank : (li+1)*st.Rank], b.v[li*st.Rank : (li+1)*st.Rank]
}

// Blocks returns the per-shard coordinate blocks: block p holds the rows
// of nodes p, p+P, 2P+p, … ascending, Rank values per row — the layout
// NewSnapshotBlocks serves from directly. The returned outer slices are
// freshly allocated; the blocks themselves are views into the immutable
// state and must not be modified. Blocks of shards a delta did not
// advance are shared (pointer-identical) with the previous state's, which
// is what lets a serving-snapshot publish skip re-validating them.
func (st *State) Blocks() (u, v [][]float64) {
	u = make([][]float64, st.Shards)
	v = make([][]float64, st.Shards)
	for p := range st.blocks {
		u[p] = st.blocks[p].u
		v[p] = st.blocks[p].v
	}
	return u, v
}

// Flatten returns freshly allocated flat row-major copies of U and V —
// the input NewSnapshotFlat wants for a serving snapshot.
func (st *State) Flatten() (u, v []float64) {
	u = make([]float64, st.N*st.Rank)
	v = make([]float64, st.N*st.Rank)
	for p := 0; p < st.Shards; p++ {
		b := st.blocks[p]
		rows := st.rowsOf(p)
		for li := 0; li < rows; li++ {
			i := p + li*st.Shards
			copy(u[i*st.Rank:(i+1)*st.Rank], b.u[li*st.Rank:(li+1)*st.Rank])
			copy(v[i*st.Rank:(i+1)*st.Rank], b.v[li*st.Rank:(li+1)*st.Rank])
		}
	}
	return u, v
}

// VersionVec builds the anti-entropy announcement for this state.
func (st *State) VersionVec(from uint32, addr string) *wire.VersionVec {
	return &wire.VersionVec{
		From: from, Addr: addr,
		N: uint32(st.N), Rank: uint16(st.Rank), Shards: uint16(st.Shards),
		Steps: st.Meta.Steps,
		Vers:  st.vers,
	}
}

// DeltaFor builds a delta carrying the requested shards. Unknown shard
// ids and holes (shards an incomplete state has not received yet) are
// skipped. The block slices alias the state (immutable), so encoding
// needs no extra copies.
func (st *State) DeltaFor(from uint32, shards []uint16) *wire.Delta {
	d := st.deltaHeader(from)
	for _, s := range shards {
		p := int(s)
		if p < 0 || p >= st.Shards || st.blocks[p].u == nil {
			continue
		}
		d.Blocks = append(d.Blocks, wire.DeltaBlock{
			Shard: s,
			Ver:   st.vers[p],
			U:     st.blocks[p].u,
			V:     st.blocks[p].v,
		})
	}
	return d
}

func (st *State) deltaHeader(from uint32) *wire.Delta {
	return &wire.Delta{
		From: from,
		N:    uint32(st.N), Rank: uint16(st.Rank), Shards: uint16(st.Shards),
		Steps:  st.Meta.Steps,
		Tau:    st.Meta.Tau,
		Metric: st.Meta.Metric,
	}
}

// DeltasFor builds the requested shards' blocks chunked greedily into
// frames of at most budget floats per coordinate side (0 means
// wire.MaxStateFloats) — the chunked bootstrap path for states whose
// full geometry exceeds one frame. Unknown shard ids and holes are
// skipped. A single shard block larger than the budget is detected up
// front and returns ErrShardTooLarge — shard granularity is the
// chunking floor, so no frame the budget permits could carry it, and
// failing here beats emitting a frame that dies at encode. Each frame
// repeats the header; Apply attaches frames in any order, so losing
// one frame costs one re-pull, not the bootstrap.
func (st *State) DeltasFor(from uint32, shards []uint16, budget int) ([]*wire.Delta, error) {
	if budget <= 0 {
		budget = wire.MaxStateFloats
	}
	var out []*wire.Delta
	cur := st.deltaHeader(from)
	total := 0
	for _, s := range shards {
		p := int(s)
		if p < 0 || p >= st.Shards || st.blocks[p].u == nil {
			continue
		}
		want := len(st.blocks[p].u)
		if want > budget {
			return nil, fmt.Errorf("%w: shard %d carries %d floats per side, budget %d (shard the state finer)",
				ErrShardTooLarge, p, want, budget)
		}
		if len(cur.Blocks) > 0 && total+want > budget {
			out = append(out, cur)
			cur = st.deltaHeader(from)
			total = 0
		}
		cur.Blocks = append(cur.Blocks, wire.DeltaBlock{
			Shard: s,
			Ver:   st.vers[p],
			U:     st.blocks[p].u,
			V:     st.blocks[p].v,
		})
		total += want
	}
	if len(cur.Blocks) > 0 {
		out = append(out, cur)
	}
	return out, nil
}

// Complete reports whether every shard's block has landed. States built
// by Update are always complete; states materialized by Apply from a
// partial bootstrap have holes until every shard's frame arrives. An
// incomplete state advertises version 0 for its holes (so anti-entropy
// keeps pulling them) and must not be served (Row panics on a hole).
func (st *State) Complete() bool {
	if st == nil {
		return false
	}
	for p := range st.blocks {
		if st.blocks[p].u == nil {
			return false
		}
	}
	return true
}

// StaleShards returns the shard ids where the remote vector is newer than
// this state — the shards to pull. A nil receiver (no local state yet) is
// stale on every remote shard. A remote vector with mismatched geometry
// yields nil: it describes an incompatible snapshot.
func (st *State) StaleShards(vv *wire.VersionVec) []uint16 {
	if vv.N == 0 {
		return nil
	}
	if st == nil {
		out := make([]uint16, vv.Shards)
		for p := range out {
			out[p] = uint16(p)
		}
		return out
	}
	if int(vv.N) != st.N || int(vv.Rank) != st.Rank || int(vv.Shards) != st.Shards {
		return nil
	}
	var out []uint16
	for p := 0; p < st.Shards; p++ {
		if vv.Vers[p] > st.vers[p] {
			out = append(out, uint16(p))
		}
	}
	return out
}

// NewerThan reports whether this state holds at least one shard strictly
// newer than the remote vector (or the remote has no state at all) —
// the "you should pull from me" half of the exchange. A nil receiver is
// never newer.
func (st *State) NewerThan(vv *wire.VersionVec) bool {
	if st == nil {
		return false
	}
	if vv.N == 0 {
		return true
	}
	if int(vv.N) != st.N || int(vv.Rank) != st.Rank || int(vv.Shards) != st.Shards {
		return false
	}
	for p := 0; p < st.Shards; p++ {
		if st.vers[p] > vv.Vers[p] {
			return true
		}
	}
	return false
}

// Apply materializes a fresh state from base plus a delta, sharing the
// blocks of every shard the delta does not advance — only shards whose
// version moved are (re)attached, and those alias the delta's decoded
// blocks, so nothing is re-copied. Blocks whose version is not newer than
// base's are skipped (stale gossip); a hole — a shard a partial bootstrap
// has not filled yet — accepts any version. A nil base materializes an
// incomplete state holding whatever shards the delta carries (the
// chunked bootstrap: frames attach in any order, Complete reports when
// the last hole fills). Returns the new state (base itself when nothing
// applied) and the number of blocks applied.
//
// Apply takes ownership of the delta's block slices; do not reuse d after
// a successful call.
func Apply(base *State, d *wire.Delta) (*State, int, error) {
	n, rank, shards := int(d.N), int(d.Rank), int(d.Shards)
	if base != nil && (base.N != n || base.Rank != rank || base.Shards != shards) {
		return base, 0, fmt.Errorf("replica: delta geometry %d/%d/%d against state %d/%d/%d",
			n, rank, shards, base.N, base.Rank, base.Shards)
	}
	applied := 0
	for _, b := range d.Blocks {
		p := int(b.Shard)
		if base == nil || base.blocks[p].u == nil || b.Ver > base.vers[p] {
			applied++
		}
	}
	if applied == 0 {
		if base == nil {
			return nil, 0, fmt.Errorf("replica: bootstrap delta carries no blocks")
		}
		return base, 0, nil
	}
	st := &State{
		N: n, Rank: rank, Shards: shards,
		Meta:   Meta{Tau: d.Tau, Metric: d.Metric, Steps: d.Steps},
		vers:   make([]uint64, shards),
		blocks: make([]coordBlock, shards),
	}
	if base != nil {
		copy(st.vers, base.vers)
		copy(st.blocks, base.blocks)
		if base.Meta.Steps > st.Meta.Steps {
			st.Meta = base.Meta // the delta was older than what we hold
		}
	}
	for _, b := range d.Blocks {
		p := int(b.Shard)
		if st.blocks[p].u != nil && b.Ver <= st.vers[p] {
			continue
		}
		st.vers[p] = b.Ver
		st.blocks[p] = coordBlock{u: b.U, v: b.V}
	}
	return st, applied, nil
}
