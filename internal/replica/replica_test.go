package replica

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dmfsgd/internal/engine"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/transport"
	"dmfsgd/internal/wire"
)

// engineCoords shortens the Ref.Update callback signature.
type engineCoords = sgd.Coordinates

// storeState captures a full State from an engine store — the trainer-side
// path the tests and benchmarks share.
func storeState(t testing.TB, base *State, store *engine.Store, meta Meta) *State {
	t.Helper()
	u, v := store.SnapshotFlat()
	st, err := Update(base, store.N(), store.Rank(), store.Shards(), meta, store.Versions(nil), u, v)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// testStore builds an initialized store and a State over it.
func testStore(t testing.TB, n, rank, shards int, seed int64) (*engine.Store, *State) {
	t.Helper()
	store := engine.NewStore(n, rank, shards)
	store.InitUniform(rand.New(rand.NewSource(seed)))
	return store, storeState(t, nil, store, Meta{Steps: 10, Tau: 1.5, Metric: 0})
}

func statesEqual(t *testing.T, a, b *State, ctx string) {
	t.Helper()
	au, av := a.Flatten()
	bu, bv := b.Flatten()
	for k := range au {
		if au[k] != bu[k] || av[k] != bv[k] {
			t.Fatalf("%s: coordinate %d differs", ctx, k)
		}
	}
}

func TestStateRowsMatchStore(t *testing.T) {
	store, st := testStore(t, 11, 3, 4, 1)
	u, v := store.SnapshotFlat()
	for i := 0; i < 11; i++ {
		ru, rv := st.Row(i)
		for r := 0; r < 3; r++ {
			if ru[r] != u[i*3+r] || rv[r] != v[i*3+r] {
				t.Fatalf("node %d row %d differs from store", i, r)
			}
		}
	}
	fu, fv := st.Flatten()
	for k := range fu {
		if fu[k] != u[k] || fv[k] != v[k] {
			t.Fatalf("Flatten differs from store at %d", k)
		}
	}
}

// TestUpdateSharesQuietBlocks: trainer-side incremental capture reuses the
// blocks of shards whose version did not advance.
func TestUpdateSharesQuietBlocks(t *testing.T) {
	store, st := testStore(t, 10, 2, 4, 2)
	// Advance shard 1 only.
	store.Ref(5).Update(func(c *engineCoords) bool { c.U[0] = 42; return true })
	next := storeState(t, st, store, Meta{Steps: 11, Tau: 1.5})
	for p := 0; p < 4; p++ {
		shared := &next.blocks[p].u[0] == &st.blocks[p].u[0]
		if p == 1 && shared {
			t.Error("advanced shard 1 shares its block with the base")
		}
		if p != 1 && !shared {
			t.Errorf("quiet shard %d was re-copied", p)
		}
	}
	ru, _ := next.Row(5)
	if ru[0] != 42 {
		t.Error("advanced shard did not pick up the write")
	}
}

// TestDeltaApplyConvergesAndSharesBlocks is the delta-refresh contract: a
// follower state plus a delta of the advanced shards becomes bit-identical
// to the source, and only the advanced shards' blocks are replaced.
func TestDeltaApplyConvergesAndSharesBlocks(t *testing.T) {
	store, trainer := testStore(t, 13, 3, 4, 3)

	// Bootstrap the follower with a full delta (wire round trip included).
	all := make([]uint16, 4)
	for p := range all {
		all[p] = uint16(p)
	}
	buf, err := wire.AppendDelta(nil, trainer.DeltaFor(1, all))
	if err != nil {
		t.Fatal(err)
	}
	var boot wire.Delta
	if err := wire.DecodeDelta(buf, &boot); err != nil {
		t.Fatal(err)
	}
	follower, applied, err := Apply(nil, &boot)
	if err != nil || applied != 4 {
		t.Fatalf("bootstrap: applied=%d err=%v", applied, err)
	}
	statesEqual(t, trainer, follower, "bootstrap")

	// Advance shards 0 and 2, recapture, ship only the stale shards.
	store.Ref(0).Update(func(c *engineCoords) bool { c.V[1] = -7; return true })
	store.Ref(2).Update(func(c *engineCoords) bool { c.U[2] = 8; return true })
	trainer = storeState(t, trainer, store, Meta{Steps: 20, Tau: 1.5})

	stale := follower.StaleShards(trainer.VersionVec(0, ""))
	if len(stale) != 2 || stale[0] != 0 || stale[1] != 2 {
		t.Fatalf("stale shards = %v, want [0 2]", stale)
	}
	buf, err = wire.AppendDelta(nil, trainer.DeltaFor(1, stale))
	if err != nil {
		t.Fatal(err)
	}
	var d wire.Delta
	if err := wire.DecodeDelta(buf, &d); err != nil {
		t.Fatal(err)
	}
	next, applied, err := Apply(follower, &d)
	if err != nil || applied != 2 {
		t.Fatalf("delta: applied=%d err=%v", applied, err)
	}
	statesEqual(t, trainer, next, "after delta")
	if next.Meta.Steps != 20 {
		t.Errorf("steps = %d, want 20", next.Meta.Steps)
	}
	// Only the advanced shards were replaced; quiet shards share memory
	// with the previous follower state.
	for p := 0; p < 4; p++ {
		shared := &next.blocks[p].u[0] == &follower.blocks[p].u[0]
		if (p == 0 || p == 2) == shared {
			t.Errorf("shard %d sharing = %v", p, shared)
		}
	}

	// Replaying the same delta is a no-op returning the same state.
	buf, _ = wire.AppendDelta(nil, trainer.DeltaFor(1, stale))
	var replay wire.Delta
	if err := wire.DecodeDelta(buf, &replay); err != nil {
		t.Fatal(err)
	}
	again, applied, err := Apply(next, &replay)
	if err != nil || applied != 0 || again != next {
		t.Fatalf("replay: applied=%d same=%v err=%v", applied, again == next, err)
	}
}

func TestApplyValidation(t *testing.T) {
	_, trainer := testStore(t, 6, 2, 2, 4)
	// A partial bootstrap materializes an incomplete state: held, not
	// served, until the remaining frames land.
	d := trainer.DeltaFor(0, []uint16{0})
	partial, applied, err := Apply(nil, d)
	if err != nil || applied != 1 {
		t.Fatalf("partial bootstrap: applied=%d err=%v", applied, err)
	}
	if partial.Complete() {
		t.Error("one-shard bootstrap of a two-shard state reports complete")
	}
	rest, applied, err := Apply(partial, trainer.DeltaFor(0, []uint16{1}))
	if err != nil || applied != 1 || !rest.Complete() {
		t.Fatalf("completing frame: applied=%d complete=%v err=%v", applied, rest.Complete(), err)
	}
	statesEqual(t, trainer, rest, "chunked bootstrap")
	// An empty bootstrap delta yields nothing to hold.
	if _, _, err := Apply(nil, trainer.DeltaFor(0, nil)); err == nil {
		t.Error("empty bootstrap accepted")
	}
	// Geometry mismatches are rejected.
	_, other := testStore(t, 8, 2, 2, 5)
	all := []uint16{0, 1}
	if _, _, err := Apply(other, trainer.DeltaFor(0, all)); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

// TestDeltasForChunking: a bootstrap whose state exceeds the per-frame
// budget splits at shard granularity into multiple frames that attach in
// any order, holes accepting their block exactly once.
func TestDeltasForChunking(t *testing.T) {
	_, trainer := testStore(t, 16, 2, 8, 11)
	all := make([]uint16, 8)
	for p := range all {
		all[p] = uint16(p)
	}
	// Each shard block is 2 nodes × rank 2 = 4 floats per side; a budget
	// of 10 fits two blocks per frame → 4 frames.
	frames, err := trainer.DeltasFor(1, all, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 4", len(frames))
	}
	// Attach in reverse order; completeness flips only on the last frame.
	var follower *State
	for i := len(frames) - 1; i >= 0; i-- {
		buf, err := wire.AppendDelta(nil, frames[i])
		if err != nil {
			t.Fatal(err)
		}
		var d wire.Delta
		if err := wire.DecodeDelta(buf, &d); err != nil {
			t.Fatal(err)
		}
		next, applied, err := Apply(follower, &d)
		if err != nil || applied != 2 {
			t.Fatalf("frame %d: applied=%d err=%v", i, applied, err)
		}
		if complete := next.Complete(); complete != (i == 0) {
			t.Fatalf("frame %d: complete=%v", i, complete)
		}
		follower = next
	}
	statesEqual(t, trainer, follower, "reverse-order chunked bootstrap")
	// A hole-free state re-chunks identically under the default budget.
	refr, err := follower.DeltasFor(2, all, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(refr); got != 1 {
		t.Errorf("full-budget chunking produced %d frames, want 1", got)
	}
	// A budget smaller than a single shard block (4 floats per side) is
	// rejected up front with the typed sentinel instead of emitting a
	// frame doomed to fail at encode.
	if _, err := trainer.DeltasFor(1, all, 3); !errors.Is(err, ErrShardTooLarge) {
		t.Errorf("undersized budget: err=%v, want ErrShardTooLarge", err)
	}
}

// TestPeerPublishGatedOnComplete: a follower fed a multi-frame bootstrap
// publishes OnState exactly once, when the last hole fills.
func TestPeerPublishGatedOnComplete(t *testing.T) {
	_, trainer := testStore(t, 16, 2, 8, 12)
	var published []*State
	follower := NewPeer(Config{
		ID: 2, Transport: recTransport{sent: make(chan []byte, 16)},
		OnState: func(s *State) { published = append(published, s) },
	})
	all := make([]uint16, 8)
	for p := range all {
		all[p] = uint16(p)
	}
	frames, err := trainer.DeltasFor(1, all, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range frames {
		buf, err := wire.AppendDelta(nil, frame)
		if err != nil {
			t.Fatal(err)
		}
		var d wire.Delta
		if err := wire.DecodeDelta(buf, &d); err != nil {
			t.Fatal(err)
		}
		follower.handleDelta(&d)
	}
	if len(published) != 1 {
		t.Fatalf("published %d states, want 1", len(published))
	}
	statesEqual(t, trainer, published[0], "gated publish")
	if lag := follower.Lag(); !lag.HasState {
		t.Error("complete follower reports no state")
	}
}

// TestPeerReadmitsHigherIncarnation models the blackhole fix: a trainer
// that restarts without its old state returns with a bumped incarnation
// and low version counters. The follower must drop the dead lineage and
// re-bootstrap from the returned trainer instead of ignoring it forever
// behind the old high-water mark.
func TestPeerReadmitsHigherIncarnation(t *testing.T) {
	_, oldSt := testStore(t, 8, 2, 2, 13)
	oldSt.Meta.Steps = 1000
	for p := range oldSt.vers {
		oldSt.vers[p] = 500
	}
	sent := make(chan []byte, 16)
	follower := NewPeer(Config{ID: 2, Transport: recTransport{sent: sent}})

	// First life: the follower holds the old lineage's state.
	all := []uint16{0, 1}
	d := oldSt.DeltaFor(1, all)
	d.Inc = 1
	follower.handleDelta(d)
	if follower.State() == nil {
		t.Fatal("follower did not bootstrap from the first lineage")
	}

	// A straggler from a dead lineage (lower inc) is dropped.
	follower.handleVersionVec(&wire.VersionVec{From: 1, Inc: 0, Addr: "old"}, "old")
	if follower.State() == nil {
		t.Fatal("a dead lineage's message reset the follower")
	}

	// The trainer returns reincarnated with fresh low-versioned state:
	// the follower drops the old lineage and pulls everything.
	_, freshSt := testStore(t, 8, 2, 2, 14)
	freshSt.Meta.Steps = 5
	vv := freshSt.VersionVec(1, "new")
	vv.Inc = 2
	follower.handleVersionVec(vv, "new")
	if follower.State() != nil {
		t.Fatal("follower kept the dead lineage's state")
	}
	select {
	case data := <-sent:
		typ, _ := wire.PeekType(data)
		if typ != wire.TypeDeltaRequest {
			t.Fatalf("follower sent %v, want a pull", typ)
		}
		var req wire.DeltaRequest
		if err := wire.DecodeDeltaRequest(data, &req); err != nil {
			t.Fatal(err)
		}
		if len(req.Shards) != 2 {
			t.Fatalf("pull covers %d shards, want 2 (full re-bootstrap)", len(req.Shards))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower never pulled from the reincarnated trainer")
	}
	fresh := freshSt.DeltaFor(1, all)
	fresh.Inc = 2
	follower.handleDelta(fresh)
	if got := follower.State(); got == nil || got.Meta.Steps != 5 {
		t.Fatalf("follower did not adopt the new lineage: %+v", got)
	}
	statesEqual(t, freshSt, follower.State(), "re-admitted lineage")
}

// TestTwoReplicaConvergence runs a trainer peer and a follower peer over
// the in-memory transport: the follower must bootstrap, then converge to
// bit-identical state after each trainer advance, pulling only stale
// shards. Run under -race in CI.
func TestTwoReplicaConvergence(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	trTrainer := net.Attach("trainer")
	trFollower := net.Attach("follower")
	defer trTrainer.Close()
	defer trFollower.Close()

	store, st := testStore(t, 15, 3, 4, 6)

	updates := make(chan *State, 16)
	trainer := NewPeer(Config{
		ID: 1, Transport: trTrainer, Source: true,
		Interval: 5 * time.Millisecond, Seed: 1,
	})
	trainer.SetState(st)
	follower := NewPeer(Config{
		ID: 2, Transport: trFollower,
		Peers:    []string{"trainer"},
		Interval: 5 * time.Millisecond, Seed: 2,
		OnState: func(s *State) {
			select {
			case updates <- s:
			default:
			}
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go trainer.Run(ctx)
	go follower.Run(ctx)

	waitConverged := func(want *State, ctxLabel string) *State {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case got := <-updates:
				match := len(got.Vers()) == len(want.Vers())
				for p := range want.Vers() {
					match = match && got.Vers()[p] == want.Vers()[p]
				}
				if match {
					statesEqual(t, want, got, ctxLabel)
					return got
				}
			case <-deadline:
				t.Fatalf("%s: follower did not converge", ctxLabel)
			}
		}
	}
	first := waitConverged(st, "bootstrap")

	lag := follower.Lag()
	if !lag.HasState || lag.StaleShards != 0 {
		t.Errorf("post-bootstrap lag = %+v", lag)
	}

	// Advance one shard; the follower must converge again, replacing only
	// that shard's block.
	store.Ref(2).Update(func(c *engineCoords) bool { c.U[0] = 123; return true })
	st = storeState(t, st, store, Meta{Steps: 30, Tau: 1.5})
	trainer.SetState(st)

	second := waitConverged(st, "incremental")
	for p := 0; p < 4; p++ {
		shared := &second.blocks[p].u[0] == &first.blocks[p].u[0]
		if (p == 2) == shared {
			t.Errorf("incremental refresh: shard %d sharing = %v", p, shared)
		}
	}
	if got := second.Meta.Steps; got != 30 {
		t.Errorf("follower steps = %d, want 30", got)
	}
}

// TestSourcePeerNeverAdoptsRemoteState models a trainer restart: the
// source's counters restart low while a peer still advertises the old,
// higher-versioned state. The source must neither pull that state nor
// let it veto SetState — its local producer is authoritative.
func TestSourcePeerNeverAdoptsRemoteState(t *testing.T) {
	_, oldSt := testStore(t, 8, 2, 2, 7) // pre-restart state, steps 10
	oldSt.Meta.Steps = 1_000_000
	for p := range oldSt.vers {
		oldSt.vers[p] = 500
	}

	sent := make(chan []byte, 16)
	source := NewPeer(Config{ID: 1, Source: true, Transport: recTransport{sent: sent}, Seed: 1})
	_, freshSt := testStore(t, 8, 2, 2, 8) // post-restart state, low counters
	freshSt.Meta.Steps = 20
	source.SetState(freshSt)

	// An inbound delta carrying the stale high-water state is ignored.
	all := []uint16{0, 1}
	buf, err := wire.AppendDelta(nil, oldSt.DeltaFor(2, all))
	if err != nil {
		t.Fatal(err)
	}
	var d wire.Delta
	if err := wire.DecodeDelta(buf, &d); err != nil {
		t.Fatal(err)
	}
	source.handleDelta(&d)
	if source.State() != freshSt {
		t.Fatal("source adopted a remote delta")
	}
	// An inbound version vector advertising newer shards triggers no pull
	// (sends run on goroutines; give a buggy pull time to surface).
	source.handleVersionVec(oldSt.VersionVec(2, "old"), "old")
	select {
	case data := <-sent:
		typ, _ := wire.PeekType(data)
		t.Fatalf("source sent a %v in response to a newer remote vector", typ)
	case <-time.After(100 * time.Millisecond):
	}

	// SetState keeps replacing even though steps went "backwards"
	// relative to the remote high water.
	_, next := testStore(t, 8, 2, 2, 9)
	next.Meta.Steps = 21
	source.SetState(next)
	if source.State() != next {
		t.Fatal("source rejected its own fresh state")
	}
}

// recTransport records sends for peers that need no live network in a
// test.
type recTransport struct{ sent chan []byte }

func (r recTransport) Addr() string { return "rec" }
func (r recTransport) Send(to string, data []byte) error {
	select {
	case r.sent <- data:
	default:
	}
	return nil
}
func (recTransport) Recv() <-chan transport.Packet { return nil }
func (recTransport) Close() error                  { return nil }

// TestBlocksMatchRowsAndShare: Blocks exposes the per-shard layout
// NewSnapshotBlocks serves from — every node's rows are found at block
// i mod P, local row i div P — and blocks of shards a capture did not
// advance stay pointer-shared with the previous state's, which is what
// lets a serving publish skip re-validating them.
func TestBlocksMatchRowsAndShare(t *testing.T) {
	const n, rank, shards = 11, 3, 4
	store, st := testStore(t, n, rank, shards, 5)
	bu, bv := st.Blocks()
	if len(bu) != shards || len(bv) != shards {
		t.Fatalf("%d/%d blocks, want %d", len(bu), len(bv), shards)
	}
	for i := 0; i < n; i++ {
		ru, rv := st.Row(i)
		p, li := i%shards, i/shards
		for r := 0; r < rank; r++ {
			if bu[p][li*rank+r] != ru[r] || bv[p][li*rank+r] != rv[r] {
				t.Fatalf("node %d: block row differs from Row at %d", i, r)
			}
		}
	}
	// Advance shard 2 only; the other shards' block views must stay
	// pointer-identical across the capture (the skip-validation key).
	store.Ref(2).Update(func(c *engineCoords) bool { c.U[0] = 7; return true })
	next := storeState(t, st, store, Meta{Steps: 11, Tau: 1.5})
	nu, nv := next.Blocks()
	for p := 0; p < shards; p++ {
		shared := &nu[p][0] == &bu[p][0] && &nv[p][0] == &bv[p][0]
		if p == 2 && shared {
			t.Error("advanced shard 2 still shares its block views")
		}
		if p != 2 && !shared {
			t.Errorf("quiet shard %d lost block sharing", p)
		}
	}
}
