package replica

import (
	"bytes"
	"testing"

	"dmfsgd/internal/ckpt"
	"dmfsgd/internal/wire"
)

// TestCheckpointRoundTrip: State → Checkpoint → bytes → FromCheckpoint
// preserves every row, the version vector and the serving metadata.
func TestCheckpointRoundTrip(t *testing.T) {
	const n, rank, shards = 7, 3, 3
	u := make([]float64, n*rank)
	v := make([]float64, n*rank)
	for k := range u {
		u[k] = float64(k) * 0.5
		v[k] = -float64(k) * 0.25
	}
	vers := []uint64{4, 9, 2}
	st, err := Update(nil, n, rank, shards, Meta{Steps: 77, Tau: 95.5, Metric: 1}, vers, u, v)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ckpt.Write(&buf, st.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	c, err := ckpt.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromCheckpoint(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != n || got.Rank != rank || got.Shards != shards {
		t.Fatalf("geometry %d/%d/%d", got.N, got.Rank, got.Shards)
	}
	if got.Meta != st.Meta {
		t.Errorf("meta %+v, want %+v", got.Meta, st.Meta)
	}
	for p, ver := range vers {
		if got.Vers()[p] != ver {
			t.Errorf("shard %d version %d, want %d", p, got.Vers()[p], ver)
		}
	}
	for i := 0; i < n; i++ {
		au, av := st.Row(i)
		bu, bv := got.Row(i)
		for r := 0; r < rank; r++ {
			if au[r] != bu[r] || av[r] != bv[r] {
				t.Fatalf("node %d row drifted", i)
			}
		}
	}
}

// TestCheckpointBootstrapPullsOnlyDelta: a follower restored from a
// local checkpoint must gossip only the shards that advanced while it
// was down — not re-pull its whole state.
func TestCheckpointBootstrapPullsOnlyDelta(t *testing.T) {
	const n, rank, shards = 6, 2, 3
	u := make([]float64, n*rank)
	v := make([]float64, n*rank)
	st, err := Update(nil, n, rank, shards, Meta{Steps: 10}, []uint64{3, 3, 3}, u, v)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := FromCheckpoint(st.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	// The trainer advanced shard 1 while the follower was down.
	remote := &wire.VersionVec{N: n, Rank: rank, Shards: shards, Steps: 12, Vers: []uint64{3, 5, 3}}
	stale := restored.StaleShards(remote)
	if len(stale) != 1 || stale[0] != 1 {
		t.Errorf("stale shards %v, want [1]", stale)
	}
}
