package member

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dmfsgd/internal/transport"
	"dmfsgd/internal/wire"
)

func TestMuxRouting(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	inner := net.Attach("a")
	other := net.Attach("b")
	defer other.Close()

	mux := NewMux(inner)
	defer mux.Close()

	join, _ := wire.AppendJoin(nil, &wire.Join{From: 1, Addr: "b"})
	probe, _ := wire.AppendProbeRequest(nil, &wire.ProbeRequest{Seq: 1, From: 1})
	garbage := []byte{1, 2, 3}

	for _, msg := range [][]byte{join, probe, garbage} {
		if err := other.Send("a", msg); err != nil {
			t.Fatal(err)
		}
	}

	// Membership side gets the join.
	select {
	case pkt := <-mux.Member():
		if typ, _ := wire.PeekType(pkt.Data); typ != wire.TypeJoin {
			t.Errorf("member side got %v", typ)
		}
	case <-time.After(time.Second):
		t.Fatal("join not routed")
	}
	// Main side gets the probe, then the garbage (undecodable stays main;
	// the node counts it as a decode error).
	select {
	case pkt := <-mux.Recv():
		if typ, _ := wire.PeekType(pkt.Data); typ != wire.TypeProbeRequest {
			t.Errorf("main side got %v", typ)
		}
	case <-time.After(time.Second):
		t.Fatal("probe not routed")
	}
	select {
	case pkt := <-mux.Recv():
		if len(pkt.Data) != 3 {
			t.Errorf("expected garbage on main side")
		}
	case <-time.After(time.Second):
		t.Fatal("garbage not routed")
	}
}

func TestMuxSendPassThrough(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	inner := net.Attach("a")
	other := net.Attach("b")
	defer other.Close()
	mux := NewMux(inner)
	defer mux.Close()

	if mux.Addr() != "a" {
		t.Errorf("Addr = %q", mux.Addr())
	}
	if err := mux.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-other.Recv():
		if string(pkt.Data) != "x" {
			t.Error("payload mangled")
		}
	case <-time.After(time.Second):
		t.Fatal("send did not pass through")
	}
}

func TestJoinHandshake(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	muxA := NewMux(net.Attach("a"))
	muxB := NewMux(net.Attach("b"))
	defer muxA.Close()
	defer muxB.Close()

	dirA := NewDirectory(1, muxA, 1)
	dirB := NewDirectory(2, muxB, 2)

	var gotPeer Peer
	peerSeen := make(chan struct{})
	dirB.OnPeer(func(p Peer) {
		gotPeer = p
		close(peerSeen)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go dirA.Run(ctx, 0)
	go dirB.Run(ctx, 0)

	if err := dirA.Join("b"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-peerSeen:
		if gotPeer.ID != 1 || gotPeer.Addr != "a" {
			t.Errorf("B learned %+v", gotPeer)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("B never learned A")
	}
	// A must learn B from the Peers response → Join-back handshake.
	deadline := time.After(2 * time.Second)
	for {
		if ps := dirA.Peers(); len(ps) == 1 && ps[0].ID == 2 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("A never learned B: %+v", dirA.Peers())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestGossipSpreadsMembership(t *testing.T) {
	// A chain join: every node bootstraps off node 0; reannouncement
	// spreads knowledge so late nodes learn more than just the bootstrap.
	net := transport.NewNetwork(transport.NetworkConfig{})
	const n = 6
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	dirs := make([]*Directory, n)
	for i := 0; i < n; i++ {
		mux := NewMux(net.Attach(fmt.Sprintf("n%d", i)))
		defer mux.Close()
		dirs[i] = NewDirectory(uint32(i+1), mux, int64(i))
		go dirs[i].Run(ctx, 20*time.Millisecond)
	}
	for i := 1; i < n; i++ {
		if err := dirs[i].Join("n0"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		allConnected := true
		for i := 0; i < n; i++ {
			if len(dirs[i].Peers()) < n-2 { // nearly full knowledge
				allConnected = false
				break
			}
		}
		if allConnected {
			return
		}
		select {
		case <-deadline:
			for i := 0; i < n; i++ {
				t.Logf("node %d knows %d peers", i, len(dirs[i].Peers()))
			}
			t.Fatal("membership did not converge")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestDirectoryIgnoresSelf(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	mux := NewMux(net.Attach("a"))
	defer mux.Close()
	d := NewDirectory(1, mux, 1)
	d.learn(Peer{ID: 1, Addr: "elsewhere"}) // own ID
	d.learn(Peer{ID: 9, Addr: "a"})         // own addr
	if len(d.Peers()) != 0 {
		t.Errorf("directory learned itself: %+v", d.Peers())
	}
}

func TestDirectoryIgnoresGarbageMembership(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	muxA := NewMux(net.Attach("a"))
	other := net.Attach("b")
	defer muxA.Close()
	defer other.Close()

	d := NewDirectory(1, muxA, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx, 0)

	// Truncated join: header says join, body is cut.
	full, _ := wire.AppendJoin(nil, &wire.Join{From: 2, Addr: "b"})
	if err := other.Send("a", full[:4]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if len(d.Peers()) != 0 {
		t.Error("directory learned from truncated join")
	}
}
