// Package member implements the lightweight membership layer used by UDP
// deployments (cmd/dmfnode, examples/livenet): new nodes announce
// themselves with a Join message to any known peer, receive a Peers list
// back, and gossip onward until their neighbor set reaches the target k.
//
// The DMFSGD protocol itself needs only "a neighbor set of k random
// nodes" (§5.3); this package supplies exactly that and nothing more — no
// failure detector, no ring, no leader. It splits one Transport into a
// membership side and a probe side so runtime.Node stays
// membership-agnostic.
package member

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"dmfsgd/internal/transport"
	"dmfsgd/internal/wire"
)

// Mux splits one Transport's receive stream: membership messages (Join,
// Peers) are consumed by the Directory, everything else flows to the probe
// side returned by Main. Sends pass through unchanged.
type Mux struct {
	inner  transport.Transport
	main   chan transport.Packet
	member chan transport.Packet

	closeOnce sync.Once
}

// NewMux starts the routing goroutine over the inner transport.
func NewMux(inner transport.Transport) *Mux {
	m := &Mux{
		inner:  inner,
		main:   make(chan transport.Packet, 1024),
		member: make(chan transport.Packet, 256),
	}
	go m.route()
	return m
}

func (m *Mux) route() {
	defer close(m.main)
	defer close(m.member)
	for pkt := range m.inner.Recv() {
		typ, err := wire.PeekType(pkt.Data)
		if err == nil && (typ == wire.TypeJoin || typ == wire.TypePeers) {
			select {
			case m.member <- pkt:
			default: // membership overload: drop
			}
			continue
		}
		select {
		case m.main <- pkt:
		default: // probe overload: drop, like a socket buffer
		}
	}
}

// Addr implements transport.Transport.
func (m *Mux) Addr() string { return m.inner.Addr() }

// Send implements transport.Transport.
func (m *Mux) Send(to string, data []byte) error { return m.inner.Send(to, data) }

// Recv implements transport.Transport: the probe-side stream.
func (m *Mux) Recv() <-chan transport.Packet { return m.main }

// Member returns the membership-side stream.
func (m *Mux) Member() <-chan transport.Packet { return m.member }

// Close closes the underlying transport (which ends the router).
func (m *Mux) Close() error { return m.inner.Close() }

var _ transport.Transport = (*Mux)(nil)

// Peer is one known remote node.
type Peer struct {
	ID   uint32
	Addr string
}

// Directory tracks known peers and answers/emits membership traffic.
type Directory struct {
	selfID   uint32
	selfAddr string
	mux      *Mux
	rng      *rand.Rand

	mu    sync.Mutex
	peers map[string]uint32 // addr → id
	// onPeer, when set, is invoked (outside the lock) for each newly
	// discovered peer.
	onPeer func(Peer)
}

// NewDirectory creates a Directory for the node behind mux.
func NewDirectory(selfID uint32, mux *Mux, seed int64) *Directory {
	return &Directory{
		selfID:   selfID,
		selfAddr: mux.Addr(),
		mux:      mux,
		rng:      rand.New(rand.NewSource(seed)),
		peers:    make(map[string]uint32),
	}
}

// OnPeer registers a callback invoked once per newly discovered peer.
// Must be called before Run.
func (d *Directory) OnPeer(fn func(Peer)) { d.onPeer = fn }

// Peers returns a snapshot of known peers.
func (d *Directory) Peers() []Peer {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Peer, 0, len(d.peers))
	for addr, id := range d.peers {
		out = append(out, Peer{ID: id, Addr: addr})
	}
	return out
}

// Join announces this node to a bootstrap address.
func (d *Directory) Join(bootstrap string) error {
	buf, err := wire.AppendJoin(nil, &wire.Join{From: d.selfID, Addr: d.selfAddr})
	if err != nil {
		return err
	}
	return d.mux.Send(bootstrap, buf)
}

// Run processes membership traffic until ctx is done or the mux closes.
// Every reannounceEvery interval the node re-Joins a random known peer, so
// late joiners keep spreading (gossip-style anti-entropy).
func (d *Directory) Run(ctx context.Context, reannounceEvery time.Duration) {
	var tick <-chan time.Time
	if reannounceEvery > 0 {
		t := time.NewTicker(reannounceEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case pkt, ok := <-d.mux.Member():
			if !ok {
				return
			}
			d.handle(pkt)
		case <-tick:
			d.reannounce()
		}
	}
}

func (d *Directory) handle(pkt transport.Packet) {
	typ, err := wire.PeekType(pkt.Data)
	if err != nil {
		return
	}
	switch typ {
	case wire.TypeJoin:
		var j wire.Join
		if err := wire.DecodeJoin(pkt.Data, &j); err != nil {
			return
		}
		addr := j.Addr
		if addr == "" {
			addr = pkt.From // NAT-friendly: trust the observed source
		}
		isNew := d.learn(Peer{ID: j.From, Addr: addr})
		// Answer with a sample of known peers (including ourselves).
		d.sendPeers(addr)
		// Announce back so the joiner learns our ID too. Gated on novelty,
		// which makes the Join exchange terminate: A→B (B learns A, new),
		// B→A (A learns B, new), A→B (B already knows A: no reply).
		if isNew {
			d.announceTo(addr)
		}
	case wire.TypePeers:
		var p wire.Peers
		if err := wire.DecodePeers(pkt.Data, &p); err != nil {
			return
		}
		for _, addr := range p.Addrs {
			if addr == d.selfAddr {
				continue
			}
			// IDs are learned lazily: address-only entries carry ID 0
			// until a Join or probe reveals the real ID; the node layer
			// keys neighbors by ID, so we announce ourselves to them,
			// triggering a Join back.
			d.announceTo(addr)
		}
	}
}

// learn records a peer, fires the callback for new ones, and reports
// whether the peer was previously unknown.
func (d *Directory) learn(p Peer) bool {
	if p.Addr == d.selfAddr || p.ID == d.selfID {
		return false
	}
	d.mu.Lock()
	_, known := d.peers[p.Addr]
	d.peers[p.Addr] = p.ID
	cb := d.onPeer
	d.mu.Unlock()
	if !known && cb != nil {
		cb(p)
	}
	return !known
}

// sendPeers replies with up to wire.MaxPeers known addresses plus our own.
func (d *Directory) sendPeers(to string) {
	d.mu.Lock()
	addrs := make([]string, 0, len(d.peers)+1)
	addrs = append(addrs, d.selfAddr)
	for a := range d.peers {
		if a == to {
			continue
		}
		if len(addrs) >= wire.MaxPeers {
			break
		}
		addrs = append(addrs, a)
	}
	d.mu.Unlock()
	if buf, err := wire.AppendPeers(nil, &wire.Peers{Addrs: addrs}); err == nil {
		_ = d.mux.Send(to, buf)
	}
}

// announceTo sends a Join to a specific address (so the remote learns our
// ID and responds with its peer list).
func (d *Directory) announceTo(addr string) {
	if buf, err := wire.AppendJoin(nil, &wire.Join{From: d.selfID, Addr: d.selfAddr}); err == nil {
		_ = d.mux.Send(addr, buf)
	}
}

// reannounce gossips a Join to one random known peer.
func (d *Directory) reannounce() {
	d.mu.Lock()
	addrs := make([]string, 0, len(d.peers))
	for a := range d.peers {
		addrs = append(addrs, a)
	}
	var target string
	if len(addrs) > 0 {
		target = addrs[d.rng.Intn(len(addrs))]
	}
	d.mu.Unlock()
	if target != "" {
		d.announceTo(target)
	}
}
