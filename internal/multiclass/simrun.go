package multiclass

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
)

// SimResult is the outcome of a multiclass simulation.
type SimResult struct {
	// Accuracy aggregates exact / within-one / MAE over the test pairs.
	Accuracy Accuracy
	// Confusion[t][p] counts test pairs of true class t predicted as p.
	Confusion [][]int
}

// RunSim trains an M-class predictor over a dataset with the k-neighbor
// protocol (random measurement order) and evaluates it on the unmeasured
// pairs. budgetPerNode is in units of k, like the binary experiments
// (paper default: 20).
func RunSim(ds *dataset.Dataset, cfg Config, k, budgetPerNode int, seed int64) (SimResult, error) {
	if err := cfg.Validate(); err != nil {
		return SimResult{}, err
	}
	if k <= 0 || k >= ds.N() {
		return SimResult{}, fmt.Errorf("multiclass: k=%d out of (0,%d)", k, ds.N())
	}
	if budgetPerNode <= 0 {
		budgetPerNode = 20
	}
	rng := rand.New(rand.NewSource(seed))
	trainMask, neighbors := mat.NeighborMask(ds.N(), k, ds.Metric.Symmetric(), rng)
	nodes := make([]*Coordinates, ds.N())
	for i := range nodes {
		nodes[i] = NewCoordinates(cfg, rng)
	}

	total := budgetPerNode * k * ds.N()
	for done := 0; done < total; {
		i := rng.Intn(ds.N())
		j := neighbors[i][rng.Intn(k)]
		if ds.Matrix.IsMissing(i, j) {
			continue
		}
		v := ds.Matrix.At(i, j)
		if ds.Metric.Symmetric() {
			nodes[i].updateRTTAt(cfg, nodes[j], v)
		} else {
			cfg.UpdateABW(nodes[i], nodes[j], v)
		}
		done++
	}

	m := cfg.Classes()
	conf := make([][]int, m)
	for t := range conf {
		conf[t] = make([]int, m)
	}
	var pred, truth []int
	for _, p := range trainMask.Complement().Pairs() {
		if ds.Matrix.IsMissing(p.I, p.J) {
			continue
		}
		pr := cfg.PredictClass(nodes[p.I], nodes[p.J])
		tr := cfg.Label(ds.Matrix.At(p.I, p.J))
		pred = append(pred, pr)
		truth = append(truth, tr)
		conf[tr][pr]++
	}
	return SimResult{Accuracy: Score(pred, truth, m), Confusion: conf}, nil
}

// updateRTTAt applies the Algorithm-1 update at the probing node only
// (matching the information constraint of the decentralized protocol: the
// probed node j is not updated).
func (c *Coordinates) updateRTTAt(cfg Config, peer *Coordinates, value float64) {
	cfg.UpdateRTT(c, peer, value)
}
