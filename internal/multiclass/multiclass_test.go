package multiclass

import (
	"math/rand"
	"testing"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
)

func rttCfg() Config {
	return Config{
		SGD:        sgd.Defaults(),
		Thresholds: []float64{30, 100, 300}, // 4 classes
		Metric:     dataset.RTT,
	}
}

func TestValidate(t *testing.T) {
	if err := rttCfg().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	empty := rttCfg()
	empty.Thresholds = nil
	if err := empty.Validate(); err == nil {
		t.Error("no thresholds accepted")
	}
	unordered := rttCfg()
	unordered.Thresholds = []float64{100, 30}
	if err := unordered.Validate(); err == nil {
		t.Error("descending RTT thresholds accepted")
	}
	abw := Config{SGD: sgd.Defaults(), Thresholds: []float64{100, 40, 10}, Metric: dataset.ABW}
	if err := abw.Validate(); err != nil {
		t.Errorf("valid ABW config rejected: %v", err)
	}
	abwBad := Config{SGD: sgd.Defaults(), Thresholds: []float64{10, 40}, Metric: dataset.ABW}
	if err := abwBad.Validate(); err == nil {
		t.Error("ascending ABW thresholds accepted")
	}
}

func TestLabel(t *testing.T) {
	cfg := rttCfg()
	if cfg.Classes() != 4 {
		t.Fatalf("classes = %d", cfg.Classes())
	}
	tests := []struct {
		value float64
		want  int
	}{
		{10, 0},   // < 30ms: best
		{30, 0},   // boundary good
		{50, 1},   // < 100ms
		{250, 2},  // < 300ms
		{1000, 3}, // worst
	}
	for _, tt := range tests {
		if got := cfg.Label(tt.value); got != tt.want {
			t.Errorf("Label(%v) = %d, want %d", tt.value, got, tt.want)
		}
	}
	// ABW polarity.
	abw := Config{SGD: sgd.Defaults(), Thresholds: []float64{100, 40}, Metric: dataset.ABW}
	if abw.Label(150) != 0 || abw.Label(50) != 1 || abw.Label(10) != 2 {
		t.Error("ABW labels wrong")
	}
}

func TestTwoNodeLearnsClass(t *testing.T) {
	cfg := rttCfg()
	rng := rand.New(rand.NewSource(81))
	for _, trueVal := range []float64{10, 60, 200, 500} {
		a := NewCoordinates(cfg, rng)
		b := NewCoordinates(cfg, rng)
		for i := 0; i < 1500; i++ {
			cfg.UpdateRTT(a, b, trueVal)
			cfg.UpdateRTT(b, a, trueVal)
		}
		want := cfg.Label(trueVal)
		if got := cfg.PredictClass(a, b); got != want {
			t.Errorf("value %v: predicted class %d, want %d", trueVal, got, want)
		}
	}
}

func TestABWUpdateLearns(t *testing.T) {
	cfg := Config{SGD: sgd.Defaults(), Thresholds: []float64{100, 40, 10}, Metric: dataset.ABW}
	rng := rand.New(rand.NewSource(82))
	a := NewCoordinates(cfg, rng)
	b := NewCoordinates(cfg, rng)
	const val = 60.0 // class 1: between 40 and 100
	for i := 0; i < 2500; i++ {
		cfg.UpdateABW(a, b, val)
	}
	if got := cfg.PredictClass(a, b); got != 1 {
		t.Errorf("predicted class %d, want 1", got)
	}
}

// System test: a small network with 4 RTT classes must reach decent
// exact accuracy and near-perfect within-one accuracy on held-out pairs.
func TestSystemMulticlassAccuracy(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 60, Seed: 83})
	vals := ds.Values()
	cfg := Config{
		SGD: sgd.Defaults(),
		Thresholds: []float64{
			mat.Percentile(vals, 25),
			mat.Percentile(vals, 50),
			mat.Percentile(vals, 75),
		},
		Metric: dataset.RTT,
	}
	rng := rand.New(rand.NewSource(84))
	nodes := make([]*Coordinates, ds.N())
	for i := range nodes {
		nodes[i] = NewCoordinates(cfg, rng)
	}
	k := 10
	trainMask, neighbors := mat.NeighborMask(ds.N(), k, true, rng)
	for step := 0; step < 30*k*ds.N(); step++ {
		i := rng.Intn(ds.N())
		j := neighbors[i][rng.Intn(k)]
		cfg.UpdateRTT(nodes[i], nodes[j], ds.Matrix.At(i, j))
	}
	var pred, truth []int
	test := trainMask.Complement()
	for _, p := range test.Pairs() {
		if ds.Matrix.IsMissing(p.I, p.J) {
			continue
		}
		pred = append(pred, cfg.PredictClass(nodes[p.I], nodes[p.J]))
		truth = append(truth, cfg.Label(ds.Matrix.At(p.I, p.J)))
	}
	acc := Score(pred, truth, cfg.Classes())
	if acc.Exact < 0.5 {
		t.Errorf("exact accuracy = %v, want >= 0.5 (4-class chance is 0.25)", acc.Exact)
	}
	if acc.WithinOne < 0.85 {
		t.Errorf("within-one accuracy = %v, want >= 0.85", acc.WithinOne)
	}
	if acc.MAE > 0.8 {
		t.Errorf("MAE = %v, want <= 0.8", acc.MAE)
	}
}

func TestScore(t *testing.T) {
	acc := Score([]int{0, 1, 2, 3}, []int{0, 1, 3, 0}, 4)
	if acc.Exact != 0.5 {
		t.Errorf("Exact = %v", acc.Exact)
	}
	if acc.WithinOne != 0.75 {
		t.Errorf("WithinOne = %v", acc.WithinOne)
	}
	if acc.MAE != 1.0 { // |0|+|0|+|1|+|3| = 4 over 4
		t.Errorf("MAE = %v", acc.MAE)
	}
	empty := Score(nil, nil, 4)
	if empty.Samples != 0 || empty.Exact != 0 {
		t.Error("empty score")
	}
}

func TestScorePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Score([]int{1}, []int{1, 2}, 3)
}

func TestPredictScoresLength(t *testing.T) {
	cfg := rttCfg()
	rng := rand.New(rand.NewSource(85))
	a := NewCoordinates(cfg, rng)
	b := NewCoordinates(cfg, rng)
	if got := cfg.PredictScores(a, b); len(got) != 3 {
		t.Errorf("scores length = %d", len(got))
	}
}
