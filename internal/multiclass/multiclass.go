// Package multiclass extends the paper's binary classification to M > 2
// ordered performance classes — the extension the authors name as future
// work in §7 ("our framework could be extended to the prediction of more
// than two performance classes, i.e., multiclass classification").
//
// The construction follows the standard ordinal-decomposition: M ordered
// classes (best = 0 … worst = M−1) are separated by M−1 thresholds
// τ₁ ≻ τ₂ ≻ … (ordered from strict to lax in the metric's polarity). Each
// threshold level ℓ defines the binary question "is this path at least as
// good as level ℓ demands?", answered by an independent DMFSGD
// factorization. A node therefore keeps M−1 coordinate pairs and updates
// each level from the same measurement — the protocol messages simply carry
// M−1 coordinate blocks instead of one, preserving full decentralization.
//
// The predicted class counts the levels answered positively, with the
// standard monotonic repair (a stricter level answered "good" while a laxer
// one says "bad" is resolved by cumulative voting).
package multiclass

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/sgd"
)

// Config parameterizes a multiclass predictor.
type Config struct {
	// SGD is applied independently at every threshold level.
	SGD sgd.Config
	// Thresholds are the M−1 class boundaries in metric units, ordered
	// from the strictest (hardest to satisfy) to the laxest. For RTT that
	// means ascending values (e.g. 30ms, 100ms, 300ms → classes
	// <30, <100, <300, ≥300); for ABW descending (e.g. 100, 40, 10 Mbps).
	Thresholds []float64
	// Metric fixes the polarity.
	Metric dataset.Metric
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.SGD.Validate(); err != nil {
		return err
	}
	if len(c.Thresholds) < 1 {
		return fmt.Errorf("multiclass: need at least one threshold")
	}
	for i := 1; i < len(c.Thresholds); i++ {
		ascending := c.Thresholds[i] > c.Thresholds[i-1]
		if c.Metric.GoodIsLow() && !ascending {
			return fmt.Errorf("multiclass: RTT thresholds must ascend (strict→lax)")
		}
		if !c.Metric.GoodIsLow() && ascending {
			return fmt.Errorf("multiclass: ABW thresholds must descend (strict→lax)")
		}
	}
	return nil
}

// Classes returns the number of classes (len(Thresholds)+1).
func (c Config) Classes() int { return len(c.Thresholds) + 1 }

// Label maps a metric quantity to its true class index: 0 for paths
// satisfying the strictest threshold, Classes()−1 for paths satisfying
// none.
func (c Config) Label(value float64) int {
	for level, tau := range c.Thresholds {
		if dataset.IsGood(c.Metric, value, tau) {
			return level
		}
	}
	return len(c.Thresholds)
}

// Coordinates is a node's state: one coordinate pair per threshold level.
type Coordinates struct {
	Levels []*sgd.Coordinates
}

// NewCoordinates initializes all levels randomly.
func NewCoordinates(cfg Config, rng *rand.Rand) *Coordinates {
	levels := make([]*sgd.Coordinates, len(cfg.Thresholds))
	for i := range levels {
		levels[i] = sgd.NewCoordinates(cfg.SGD.Rank, rng)
	}
	return &Coordinates{Levels: levels}
}

// UpdateRTT applies the symmetric (Algorithm 1) update at every level,
// deriving each level's binary label from the measured quantity.
func (cfg Config) UpdateRTT(self, peer *Coordinates, value float64) {
	for level, tau := range cfg.Thresholds {
		x := binLabel(cfg.Metric, value, tau)
		cfg.SGD.UpdateRTT(self.Levels[level], peer.Levels[level].U, peer.Levels[level].V, x)
	}
}

// UpdateABW applies the asymmetric (Algorithm 2) update pair at every
// level: target updates its V with the sender's U, sender updates its U
// with the target's (pre-update) V.
func (cfg Config) UpdateABW(sender, target *Coordinates, value float64) {
	for level, tau := range cfg.Thresholds {
		x := binLabel(cfg.Metric, value, tau)
		vPre := append([]float64(nil), target.Levels[level].V...)
		cfg.SGD.UpdateABWTarget(target.Levels[level], sender.Levels[level].U, x)
		cfg.SGD.UpdateABWSender(sender.Levels[level], vPre, x)
	}
}

func binLabel(m dataset.Metric, value, tau float64) float64 {
	if dataset.IsGood(m, value, tau) {
		return 1
	}
	return -1
}

// PredictClass returns the predicted class index for the path from self to
// the peer: cumulative voting over levels. Level ℓ votes "at least this
// good" when its score is positive; the class is the number of leading
// positive votes would be brittle, so instead the standard ordinal sum
// M−1−Σ[scoreℓ>0] is used, which is robust to single-level inversions.
func (cfg Config) PredictClass(self, peer *Coordinates) int {
	votes := 0
	for level := range cfg.Thresholds {
		if sgd.Predict(self.Levels[level].U, peer.Levels[level].V) > 0 {
			votes++
		}
	}
	return len(cfg.Thresholds) - votes
}

// PredictScores returns the raw per-level scores (diagnostics, ROC per
// level).
func (cfg Config) PredictScores(self, peer *Coordinates) []float64 {
	out := make([]float64, len(cfg.Thresholds))
	for level := range cfg.Thresholds {
		out[level] = sgd.Predict(self.Levels[level].U, peer.Levels[level].V)
	}
	return out
}

// Accuracy summarizes a multiclass evaluation: exact-class accuracy,
// within-one-class accuracy, and mean absolute class error.
type Accuracy struct {
	Exact     float64
	WithinOne float64
	MAE       float64
	Samples   int
}

// Score tallies predictions against true classes.
func Score(pred, truth []int, classes int) Accuracy {
	if len(pred) != len(truth) {
		panic("multiclass: length mismatch")
	}
	var acc Accuracy
	acc.Samples = len(pred)
	if acc.Samples == 0 {
		return acc
	}
	var exact, within int
	var absSum float64
	for i := range pred {
		d := pred[i] - truth[i]
		if d < 0 {
			d = -d
		}
		if d == 0 {
			exact++
		}
		if d <= 1 {
			within++
		}
		absSum += float64(d)
	}
	acc.Exact = float64(exact) / float64(acc.Samples)
	acc.WithinOne = float64(within) / float64(acc.Samples)
	acc.MAE = absSum / float64(acc.Samples)
	return acc
}
