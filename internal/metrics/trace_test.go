package metrics

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTraceSchemaAndEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	tr, err := OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Event("round", 2*time.Millisecond, KV{"round", 7}, KV{"batch", 64})
	tr.Event("mark", 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)

	if !sc.Scan() {
		t.Fatal("missing header line")
	}
	var hdr struct {
		Schema      string `json:"schema"`
		StartUnixNS int64  `json:"start_unix_ns"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header not JSON: %v", err)
	}
	if hdr.Schema != TraceSchema || hdr.StartUnixNS == 0 {
		t.Fatalf("bad header %+v", hdr)
	}

	if !sc.Scan() {
		t.Fatal("missing round event")
	}
	var ev struct {
		TNS   int64  `json:"t_ns"`
		Ev    string `json:"ev"`
		DurNS int64  `json:"dur_ns"`
		Round int64  `json:"round"`
		Batch int64  `json:"batch"`
	}
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("event not JSON: %v (%s)", err, sc.Text())
	}
	if ev.Ev != "round" || ev.DurNS != 2e6 || ev.Round != 7 || ev.Batch != 64 || ev.TNS < 0 {
		t.Fatalf("bad event %+v", ev)
	}

	if !sc.Scan() {
		t.Fatal("missing mark event")
	}
	if strings.Contains(sc.Text(), "dur_ns") {
		t.Fatalf("zero-duration event should omit dur_ns: %s", sc.Text())
	}
	if sc.Scan() {
		t.Fatalf("unexpected extra line: %s", sc.Text())
	}
}

func TestEmitNoSinkIsNoop(t *testing.T) {
	SetTrace(nil)
	Emit("orphan", time.Second, KV{"k", 1}) // must not panic
	if TraceEnabled() {
		t.Fatal("TraceEnabled with no sink")
	}
	tr, err := NewTrace(&strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	SetTrace(tr)
	defer SetTrace(nil)
	if !TraceEnabled() {
		t.Fatal("TraceEnabled false with sink installed")
	}
	Emit("ok", 0)
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Event("x", 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
