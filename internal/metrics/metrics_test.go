package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Fatalf("re-registration did not return the same counter")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "", "path")
	a, b := v.With("/a"), v.With("/b")
	if a == b {
		t.Fatal("distinct labels share a child")
	}
	if v.With("/a") != a {
		t.Fatal("same label returned a new child")
	}
	a.Add(3)
	b.Inc()
	if a.Value() != 3 || b.Value() != 1 {
		t.Fatalf("children cross-talk: a=%d b=%d", a.Value(), b.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for v := 0.5; v <= 8; v += 0.5 {
		h.Observe(v)
	}
	if got := h.Count(); got != 16 {
		t.Fatalf("count = %d, want 16", got)
	}
	if got, want := h.Sum(), 68.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	p50 := h.Quantile(0.50)
	if p50 < 2 || p50 > 5 {
		t.Fatalf("p50 = %v, want within [2,5]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 7 || p99 > 8 {
		t.Fatalf("p99 = %v, want within [7,8]", p99)
	}
	if !math.IsNaN(newHistogram([]float64{1}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// Overflow samples clamp to the top finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dmf_test_ops_total", "Ops.").Add(3)
	r.Gauge("dmf_test_depth", "Depth.").Set(1.5)
	r.GaugeFunc("dmf_test_fn", "Fn.", func() float64 { return 9 })
	h := r.HistogramVec("dmf_test_seconds", "Latency.", []float64{0.1, 1}, "path")
	h.With("/a").Observe(0.05)
	h.With("/a").Observe(0.5)
	h.With("/a").Observe(5)
	r.CounterVec("dmf_test_req_total", "Req.", "path").With(`/q"x`).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP dmf_test_ops_total Ops.\n",
		"# TYPE dmf_test_ops_total counter\n",
		"dmf_test_ops_total 3\n",
		"# TYPE dmf_test_depth gauge\n",
		"dmf_test_depth 1.5\n",
		"dmf_test_fn 9\n",
		"# TYPE dmf_test_seconds histogram\n",
		`dmf_test_seconds_bucket{path="/a",le="0.1"} 1` + "\n",
		`dmf_test_seconds_bucket{path="/a",le="1"} 2` + "\n",
		`dmf_test_seconds_bucket{path="/a",le="+Inf"} 3` + "\n",
		`dmf_test_seconds_sum{path="/a"} 5.55` + "\n",
		`dmf_test_seconds_count{path="/a"} 3` + "\n",
		`dmf_test_req_total{path="/q\"x"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must parse as "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", LatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-4)
			}
		}(w)
	}
	// Concurrent scrapes must not race observation.
	for i := 0; i < 4; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d g=%v", c.Value(), h.Count(), g.Value())
	}
}

// The zero-alloc observation contract: Counter.Add, Gauge.Set, and
// Histogram.Observe must not allocate — they run on serving and
// training hot paths.
func TestObservationZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("c_total", "", "path").With("/predict")
	g := r.Gauge("g", "")
	h := r.HistogramVec("h_seconds", "", LatencyBuckets, "path").With("/predict")
	if n := testing.AllocsPerRun(1000, func() { c.Add(2) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3.5) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1e9) }); n != 0 {
		t.Fatalf("Histogram.Observe (+Inf bucket) allocates %v/op", n)
	}
}
