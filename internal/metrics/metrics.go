// Package metrics is the repo's dependency-free observability tier
// (DESIGN.md §12): a registry of atomic counters, gauges, and
// fixed-bucket histograms with a Prometheus-text encoder, plus an
// NDJSON event-trace sink (trace.go).
//
// The design constraint is the same zero-allocation discipline as the
// serving handlers: observation (Counter.Add, Gauge.Set,
// Histogram.Observe) performs no heap allocation, no map lookup, and
// no lock acquisition — only atomic loads/stores/CAS on pre-registered
// cells. All lookup cost (name interning, label resolution) is paid
// once at registration; hot paths hold the returned *Counter /
// *Gauge / *Histogram directly. AllocsPerRun tests pin this contract.
//
// Naming convention: dmf_<subsystem>_<quantity>_<unit>, with counter
// series suffixed _total, durations in seconds, sizes in bytes.
// Labeled families pre-register every label value they will ever use
// (e.g. one child per HTTP endpoint), so the exposition is a fixed,
// enumerable series set.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing cumulative count. The zero
// value is usable but unregistered; obtain registered counters from
// Registry.Counter or CounterVec.With.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
//
//dmf:zeroalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotonic; callers pass non-negative n.
//
//dmf:zeroalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
//
//dmf:zeroalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt replaces the gauge value with an integer.
//
//dmf:zeroalloc
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d (may be negative) with a CAS loop; no allocation.
//
//dmf:zeroalloc
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in increasing order; a final +Inf bucket is implicit.
// Observe is lock-free and allocation-free: one linear scan over the
// (small, fixed) bound slice, three atomic ops.
type Histogram struct {
	bounds []float64       // upper bounds, strictly increasing, no +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
//
//dmf:zeroalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an estimate of the q-quantile (0 < q < 1) by linear
// interpolation inside the bucket that crosses the target rank — the
// standard fixed-bucket estimator (cf. Prometheus histogram_quantile).
// Returns NaN when the histogram is empty. Samples in the +Inf bucket
// clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n upper bounds start, start·factor, start·factor².
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start>0, factor>1, n>=1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Standard bucket layouts. Durations are seconds, sizes bytes.
var (
	// LatencyBuckets spans 50µs..≈26s: HTTP requests, lock waits.
	LatencyBuckets = ExpBuckets(50e-6, 2.5, 15)
	// DurationBuckets spans 1ms..≈8m: epochs, rounds, checkpoints.
	DurationBuckets = ExpBuckets(1e-3, 3, 12)
	// SizeBuckets spans 64B..64MB: frame and response sizes.
	SizeBuckets = ExpBuckets(64, 4, 11)
)

// metricKind discriminates families in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// child is one labeled series inside a family.
type child struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name     string
	help     string
	kind     metricKind
	bounds   []float64 // histograms
	labelKey string    // label name for vec families, "" for scalars
	children []*child
	index    map[string]*child
}

// Registry holds metric families and renders them in registration
// order. Registration is mutex-guarded and idempotent (get-or-create);
// observation on returned cells is lock-free.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that every instrumented
// package registers into and that the /metrics handlers expose.
func Default() *Registry { return defaultRegistry }

func (r *Registry) family(name, help string, kind metricKind, labelKey string, bounds []float64) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, labelKey: labelKey,
			bounds: bounds, index: make(map[string]*child)}
		r.fams = append(r.fams, f)
		r.byName[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as a different kind", name))
	}
	return f
}

func (f *family) get(labels string) *child {
	ch, ok := f.index[labels]
	if !ok {
		ch = &child{labels: labels}
		switch f.kind {
		case kindCounter:
			ch.c = new(Counter)
		case kindGauge:
			ch.g = new(Gauge)
		case kindHistogram:
			ch.h = newHistogram(f.bounds)
		}
		f.index[labels] = ch
		f.children = append(f.children, ch)
	}
	return ch
}

// Counter returns the unlabeled counter with the given name,
// registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, help, kindCounter, "", nil).get("").c
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, help, kindGauge, "", nil).get("").g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the bridge that re-expresses /healthz fields as metrics
// without a second bookkeeping path. Re-registering the same name
// replaces the callback (a restarted server component supersedes the
// old closure).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGaugeFunc, "", nil)
	ch := f.get("")
	ch.gf = fn
}

// Histogram returns the unlabeled histogram with the given name and
// bucket upper bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, help, kindHistogram, "", bounds).get("").h
}

// CounterVec is a counter family with one label dimension whose values
// are pre-registered via With.
type CounterVec struct {
	r *Registry
	f *family
}

// CounterVec returns the labeled counter family with the given name
// and label key.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &CounterVec{r: r, f: r.family(name, help, kindCounter, labelKey, nil)}
}

// With returns (registering on first use) the child counter for the
// given label value. Call once at setup and keep the pointer: With
// takes the registry lock and renders the label string.
func (v *CounterVec) With(value string) *Counter {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.get(renderLabel(v.f.labelKey, value)).c
}

// GaugeVec is a gauge family with one pre-registered label dimension.
type GaugeVec struct {
	r *Registry
	f *family
}

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &GaugeVec{r: r, f: r.family(name, help, kindGauge, labelKey, nil)}
}

// With returns the child gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.get(renderLabel(v.f.labelKey, value)).g
}

// HistogramVec is a histogram family with one pre-registered label
// dimension; all children share the family's bucket layout.
type HistogramVec struct {
	r *Registry
	f *family
}

// HistogramVec returns the labeled histogram family with the given
// name, bucket bounds, and label key.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKey string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &HistogramVec{r: r, f: r.family(name, help, kindHistogram, labelKey, bounds)}
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.get(renderLabel(v.f.labelKey, value)).h
}

// renderLabel builds the `{key="value"}` suffix once, at registration.
func renderLabel(key, value string) string {
	if key == "" {
		return ""
	}
	return `{` + key + `="` + escapeLabel(value) + `"}`
}

func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}
