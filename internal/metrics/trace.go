package metrics

import (
	"bufio"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceSchema versions the NDJSON trace stream, WAL-style: the first
// line is a header record carrying this tag plus the wall-clock start;
// every following line is one event with a monotonic timestamp (t_ns,
// nanoseconds since the header) so offline analysis is immune to
// clock steps. Bump on any incompatible field change.
const TraceSchema = "dmftrace/v1"

// KV is one integer attribute on a trace event.
type KV struct {
	K string
	V int64
}

// Trace is an NDJSON event sink for coarse-grained spans — rounds,
// epochs, gossip exchanges, checkpoints. It is mutex-serialized and
// buffered; events allocate a little, so emit at round/epoch cadence,
// never on the per-request hot path.
type Trace struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	c     io.Closer
	start time.Time
	buf   []byte
}

// NewTrace writes the schema header to w and returns the sink. When w
// is an io.Closer, Close closes it.
func NewTrace(w io.Writer) (*Trace, error) {
	t := &Trace{bw: bufio.NewWriter(w), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	hdr := `{"schema":"` + TraceSchema + `","start_unix_ns":` +
		strconv.FormatInt(t.start.UnixNano(), 10) + "}\n"
	if _, err := t.bw.WriteString(hdr); err != nil {
		return nil, err
	}
	return t, t.bw.Flush()
}

// OpenTraceFile creates (truncating) path and returns a sink over it.
func OpenTraceFile(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t, err := NewTrace(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// Event appends one NDJSON event line and flushes it, so a crash loses
// at most the event being written:
//
//	{"t_ns":123,"ev":"round","dur_ns":456,"batch":64,...}
//
// dur may be 0 for point events. Attribute keys must be plain
// identifiers (no quoting is applied).
func (t *Trace) Event(ev string, dur time.Duration, kvs ...KV) {
	if t == nil {
		return
	}
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf[:0]
	b = append(b, `{"t_ns":`...)
	b = strconv.AppendInt(b, now, 10)
	b = append(b, `,"ev":"`...)
	b = append(b, ev...)
	b = append(b, '"')
	if dur != 0 {
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, dur.Nanoseconds(), 10)
	}
	for _, kv := range kvs {
		b = append(b, ',', '"')
		b = append(b, kv.K...)
		b = append(b, '"', ':')
		b = strconv.AppendInt(b, kv.V, 10)
	}
	b = append(b, '}', '\n')
	t.buf = b
	t.bw.Write(b)
	t.bw.Flush()
}

// Close flushes and closes the underlying writer. Safe to call on nil.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.bw.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// activeTrace is the process-wide sink used by instrumented packages;
// nil (the default) makes Emit a two-instruction no-op.
var activeTrace atomic.Pointer[Trace]

// SetTrace installs (or, with nil, removes) the process-wide trace
// sink that Emit writes to.
func SetTrace(t *Trace) { activeTrace.Store(t) }

// Emit writes an event to the process-wide sink, if one is installed.
func Emit(ev string, dur time.Duration, kvs ...KV) {
	if t := activeTrace.Load(); t != nil {
		t.Event(ev, dur, kvs...)
	}
}

// TraceEnabled reports whether a process-wide sink is installed —
// callers can skip assembling expensive attributes when it is not.
func TraceEnabled() bool { return activeTrace.Load() != nil }
