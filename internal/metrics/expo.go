package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): one # HELP / # TYPE header
// per family, then one line per series in registration order.
// Histograms render cumulative _bucket{le=...} series plus _sum and
// _count. This is the cold path — it allocates freely.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + typ + "\n")
		for _, ch := range f.children {
			switch f.kind {
			case kindCounter:
				writeSeries(bw, f.name, ch.labels, float64(ch.c.Value()))
			case kindGauge:
				writeSeries(bw, f.name, ch.labels, ch.g.Value())
			case kindGaugeFunc:
				if ch.gf != nil {
					writeSeries(bw, f.name, ch.labels, ch.gf())
				}
			case kindHistogram:
				writeHistogram(bw, f.name, ch.labels, ch.h)
			}
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, name, labels string, v float64) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// writeHistogram renders the cumulative bucket series. Bucket counts
// are read per-bucket without a global snapshot, so a scrape racing an
// Observe can be off by one sample between _bucket/_count/_sum — the
// usual lock-free exposition tradeoff.
func writeHistogram(bw *bufio.Writer, name, labels string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSeries(bw, name+"_bucket", withLE(labels, formatValue(bound)), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSeries(bw, name+"_bucket", withLE(labels, "+Inf"), float64(cum))
	writeSeries(bw, name+"_sum", labels, h.Sum())
	writeSeries(bw, name+"_count", labels, float64(h.Count()))
}

// withLE splices the le label into a rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	// labels is `{k="v"}` — insert before the closing brace.
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.HandlerFunc serving the registry in
// Prometheus text format — mount as GET /metrics.
func (r *Registry) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	}
}
