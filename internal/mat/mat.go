// Package mat provides the dense matrix and observation-mask types used by
// the dataset generators, the evaluation code and the experiment harness.
//
// The DMFSGD algorithm itself never materializes a matrix (that is the whole
// point of the paper); matrices appear only on the experiment side, where the
// ground truth X and the weight matrix W of eq. 1 live.
//
// A Dense matrix is stored row-major in a single backing slice. NaN marks a
// missing entry, matching how the raw HP-S3 dataset is distributed (55%
// missing values); the Mask type provides the explicit wᵢⱼ ∈ {0,1} view of
// eq. 1 when needed.
package mat

import (
	"fmt"
	"math"
	"sort"
)

// Dense is a row-major n×m matrix of float64. Missing entries are NaN.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows×cols matrix of zeros.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps existing data (length must equal rows*cols) without
// copying. The caller must not alias the slice afterwards.
func NewDenseFrom(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// NewMissing allocates a rows×cols matrix with every entry missing (NaN).
func NewMissing(rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		m.data[i] = math.NaN()
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the entry at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// SetMissing marks (i, j) as a missing observation.
func (m *Dense) SetMissing(i, j int) { m.Set(i, j, math.NaN()) }

// IsMissing reports whether (i, j) holds no observation.
func (m *Dense) IsMissing(i, j int) bool { return math.IsNaN(m.At(i, j)) }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the backing slice (row-major). Mutating it mutates the matrix.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Apply replaces every present (non-missing) entry with f(i, j, v).
func (m *Dense) Apply(f func(i, j int, v float64) float64) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if !math.IsNaN(v) {
				row[j] = f(i, j, v)
			}
		}
	}
}

// Present returns all present (non-missing, finite) values in row-major
// order. Diagonal entries are included; callers who need off-diagonal values
// only should use PresentOffDiag.
func (m *Dense) Present() []float64 {
	out := make([]float64, 0, len(m.data))
	for _, v := range m.data {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// PresentOffDiag returns present values excluding the diagonal. Performance
// matrices have empty diagonals (a node does not probe itself, Fig. 2), so
// dataset statistics such as the classification threshold τ are computed
// over these values.
func (m *Dense) PresentOffDiag() []float64 {
	out := make([]float64, 0, len(m.data))
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if i != j && !math.IsNaN(v) {
				out = append(out, v)
			}
		}
	}
	return out
}

// MissingFraction returns the fraction of off-diagonal entries that are
// missing.
func (m *Dense) MissingFraction() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	var missing, total int
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if i == j {
				continue
			}
			total++
			if math.IsNaN(v) {
				missing++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(missing) / float64(total)
}

// Symmetrize sets every entry to the average of itself and its transpose
// partner, propagating present values over missing ones. RTT matrices are
// treated as symmetric (§3.1.1).
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic("mat: Symmetrize requires a square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			a, b := m.At(i, j), m.At(j, i)
			switch {
			case math.IsNaN(a) && math.IsNaN(b):
				// both missing: leave as is
			case math.IsNaN(a):
				m.Set(i, j, b)
			case math.IsNaN(b):
				m.Set(j, i, a)
			default:
				avg := (a + b) / 2
				m.Set(i, j, avg)
				m.Set(j, i, avg)
			}
		}
	}
}

// MaxAbs returns the largest absolute present value, or 0 if none.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if math.IsNaN(v) {
			continue
		}
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Mul returns m × other (no missing entries allowed in either operand).
func (m *Dense) Mul(other *Dense) *Dense {
	if m.cols != other.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d × %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := NewDense(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for kk, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := other.Row(kk)
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*out.cols+i] = v
		}
	}
	return out
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Median returns the median of vals. It sorts a copy. Panics on empty input.
func Median(vals []float64) float64 { return Percentile(vals, 50) }

// Percentile returns the p-th percentile (0..100) of vals using linear
// interpolation between closest ranks. It sorts a copy. Panics on empty
// input. Table 1 of the paper is generated from these percentiles.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		panic("mat: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("mat: Percentile %v out of [0,100]", p))
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of vals. Panics on empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		panic("mat: Mean of empty slice")
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Stddev returns the population standard deviation of vals.
func Stddev(vals []float64) float64 {
	if len(vals) == 0 {
		panic("mat: Stddev of empty slice")
	}
	mu := Mean(vals)
	var s float64
	for _, v := range vals {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(vals)))
}
