package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("entry (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3.5)
	m.Set(1, 0, -1)
	if m.At(0, 1) != 3.5 || m.At(1, 0) != -1 || m.At(0, 0) != 0 {
		t.Errorf("unexpected entries: %v %v %v", m.At(0, 1), m.At(1, 0), m.At(0, 0))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewDense(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) should panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestMissing(t *testing.T) {
	m := NewMissing(2, 2)
	if !m.IsMissing(0, 0) || !m.IsMissing(1, 1) {
		t.Error("NewMissing entries should be missing")
	}
	m.Set(0, 0, 5)
	if m.IsMissing(0, 0) {
		t.Error("set entry should not be missing")
	}
	m.SetMissing(0, 0)
	if !m.IsMissing(0, 0) {
		t.Error("SetMissing should mark entry missing")
	}
}

func TestRowAliases(t *testing.T) {
	m := NewDense(2, 3)
	r := m.Row(1)
	r[2] = 42
	if m.At(1, 2) != 42 {
		t.Error("Row should alias matrix storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone should be independent")
	}
}

func TestApplySkipsMissing(t *testing.T) {
	m := NewMissing(2, 2)
	m.Set(0, 1, 10)
	m.Apply(func(i, j int, v float64) float64 { return v * 2 })
	if m.At(0, 1) != 20 {
		t.Errorf("Apply did not transform present entry: %v", m.At(0, 1))
	}
	if !m.IsMissing(0, 0) {
		t.Error("Apply should skip missing entries")
	}
}

func TestPresentOffDiag(t *testing.T) {
	m := NewMissing(3, 3)
	m.Set(0, 0, 100) // diagonal: excluded
	m.Set(0, 1, 1)
	m.Set(1, 2, 2)
	got := m.PresentOffDiag()
	if len(got) != 2 {
		t.Fatalf("PresentOffDiag = %v, want 2 values", got)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("PresentOffDiag = %v", got)
	}
	if n := len(m.Present()); n != 3 {
		t.Errorf("Present = %d values, want 3", n)
	}
}

func TestMissingFraction(t *testing.T) {
	m := NewMissing(3, 3) // 6 off-diagonal entries
	if got := m.MissingFraction(); got != 1 {
		t.Errorf("all-missing fraction = %v", got)
	}
	m.Set(0, 1, 5)
	m.Set(1, 0, 5)
	m.Set(2, 0, 5)
	if got := m.MissingFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("fraction = %v, want 0.5", got)
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMissing(3, 3)
	m.Set(0, 1, 10)
	m.Set(1, 0, 20) // both present: average
	m.Set(0, 2, 30) // only one side: propagate
	m.Symmetrize()
	if m.At(0, 1) != 15 || m.At(1, 0) != 15 {
		t.Errorf("average failed: %v %v", m.At(0, 1), m.At(1, 0))
	}
	if m.At(2, 0) != 30 {
		t.Errorf("propagation failed: %v", m.At(2, 0))
	}
	if !m.IsMissing(1, 2) || !m.IsMissing(2, 1) {
		t.Error("both-missing pair should stay missing")
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("Mul = %v, want %v", c.Data(), want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("Transpose dims = %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewMissing(2, 2)
	if m.MaxAbs() != 0 {
		t.Error("MaxAbs of all-missing should be 0")
	}
	m.Set(0, 0, -7)
	m.Set(1, 1, 3)
	if m.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %v, want 7", m.MaxAbs())
	}
}

func TestMedianPercentile(t *testing.T) {
	vals := []float64{3, 1, 2}
	if got := Median(vals); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	// input untouched
	if vals[0] != 3 {
		t.Error("Median sorted the input in place")
	}
	four := []float64{1, 2, 3, 4}
	if got := Median(four); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := Percentile(four, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(four, 100); got != 4 {
		t.Errorf("P100 = %v, want 4", got)
	}
	if got := Percentile(four, 25); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("P25 = %v, want 1.75", got)
	}
	if got := Percentile([]float64{9}, 73); got != 9 {
		t.Errorf("single-element percentile = %v, want 9", got)
	}
}

func TestMeanStddev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Stddev(vals); math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentilePropertyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(vals, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaskBasics(t *testing.T) {
	w := NewMask(3, 3)
	if w.Count() != 0 {
		t.Error("new mask should be empty")
	}
	w.Set(0, 1)
	w.Set(2, 2)
	if !w.At(0, 1) || !w.At(2, 2) || w.At(1, 1) {
		t.Error("Set/At inconsistent")
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d, want 2", w.Count())
	}
	w.Clear(0, 1)
	if w.At(0, 1) || w.Count() != 1 {
		t.Error("Clear failed")
	}
}

func TestMaskSetIdempotent(t *testing.T) {
	w := NewMask(2, 2)
	w.Set(0, 0)
	w.Set(0, 0)
	if w.Count() != 1 {
		t.Errorf("double Set should count once, got %d", w.Count())
	}
}

func TestMaskPairs(t *testing.T) {
	w := NewMask(2, 3)
	w.Set(1, 2)
	w.Set(0, 0)
	pairs := w.Pairs()
	if len(pairs) != 2 || pairs[0] != (Pair{0, 0}) || pairs[1] != (Pair{1, 2}) {
		t.Errorf("Pairs = %v", pairs)
	}
}

func TestMaskComplement(t *testing.T) {
	w := NewMask(3, 3)
	w.Set(0, 1)
	c := w.Complement()
	// 3x3 has 6 off-diagonal entries; one observed -> 5 in complement.
	if c.Count() != 5 {
		t.Errorf("Complement count = %d, want 5", c.Count())
	}
	if c.At(0, 1) {
		t.Error("observed entry must not be in complement")
	}
	for i := 0; i < 3; i++ {
		if c.At(i, i) {
			t.Error("diagonal must not be in complement")
		}
	}
}

func TestMaskClone(t *testing.T) {
	w := NewMask(2, 2)
	w.Set(0, 0)
	c := w.Clone()
	c.Set(1, 1)
	if w.At(1, 1) {
		t.Error("Clone should be independent")
	}
}

func TestNeighborMask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k := 20, 5
	w, neighbors := NeighborMask(n, k, false, rng)
	if len(neighbors) != n {
		t.Fatalf("neighbors length = %d", len(neighbors))
	}
	for i, ns := range neighbors {
		if len(ns) != k {
			t.Fatalf("node %d has %d neighbors, want %d", i, len(ns), k)
		}
		seen := map[int]bool{}
		for _, j := range ns {
			if j == i {
				t.Fatalf("node %d has itself as neighbor", i)
			}
			if seen[j] {
				t.Fatalf("node %d has duplicate neighbor %d", i, j)
			}
			seen[j] = true
			if !w.At(i, j) {
				t.Fatalf("mask missing observed pair (%d,%d)", i, j)
			}
		}
	}
	// Asymmetric: mask count equals n*k only if no (i,j)+(j,i) coincidence
	// collapses (entries are directed, so count is exactly n*k).
	if w.Count() != n*k {
		t.Errorf("mask count = %d, want %d", w.Count(), n*k)
	}
}

func TestNeighborMaskSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w, _ := NeighborMask(15, 4, true, rng)
	for i := 0; i < 15; i++ {
		for j := 0; j < 15; j++ {
			if w.At(i, j) != w.At(j, i) {
				t.Fatalf("symmetric mask asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestNeighborMaskPanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k >= n")
		}
	}()
	NeighborMask(5, 5, false, rand.New(rand.NewSource(1)))
}

// Property: complement and original partition the off-diagonal entries.
func TestMaskPropertyComplementPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		w := NewMask(n, n)
		for e := 0; e < rng.Intn(n*n); e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				w.Set(i, j)
			}
		}
		c := w.Complement()
		return w.Count()+c.Count() == n*(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMaskCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, _ := NeighborMask(500, 32, true, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = w.Count()
	}
}
