package mat

import (
	"fmt"
	"math/rand"
)

// Pair identifies a directed node pair (I → J), i.e. one matrix entry.
type Pair struct {
	I, J int
}

// Mask is the explicit weight matrix W of eq. 1: wᵢⱼ = 1 where the entry is
// observed (used for training) and 0 elsewhere. It is stored as a bitset.
type Mask struct {
	rows, cols int
	bits       []uint64
}

// NewMask allocates an all-zero rows×cols mask.
func NewMask(rows, cols int) *Mask {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative mask dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	return &Mask{rows: rows, cols: cols, bits: make([]uint64, (n+63)/64)}
}

// Rows returns the number of rows.
func (w *Mask) Rows() int { return w.rows }

// Cols returns the number of columns.
func (w *Mask) Cols() int { return w.cols }

// Set marks (i, j) as observed.
func (w *Mask) Set(i, j int) {
	k := w.index(i, j)
	w.bits[k>>6] |= 1 << (k & 63)
}

// Clear marks (i, j) as unobserved.
func (w *Mask) Clear(i, j int) {
	k := w.index(i, j)
	w.bits[k>>6] &^= 1 << (k & 63)
}

// At reports whether (i, j) is observed.
func (w *Mask) At(i, j int) bool {
	k := w.index(i, j)
	return w.bits[k>>6]&(1<<(k&63)) != 0
}

// Count returns the number of observed entries.
func (w *Mask) Count() int {
	var c int
	for _, b := range w.bits {
		c += popcount(b)
	}
	return c
}

// Pairs returns every observed (i, j) in row-major order.
func (w *Mask) Pairs() []Pair {
	out := make([]Pair, 0, w.Count())
	for i := 0; i < w.rows; i++ {
		for j := 0; j < w.cols; j++ {
			if w.At(i, j) {
				out = append(out, Pair{i, j})
			}
		}
	}
	return out
}

// Complement returns the mask of off-diagonal entries NOT observed in w.
// This is the test set of the matrix-completion problem: the evaluation in
// §6 predicts exactly the entries that were never measured.
func (w *Mask) Complement() *Mask {
	out := NewMask(w.rows, w.cols)
	for i := 0; i < w.rows; i++ {
		for j := 0; j < w.cols; j++ {
			if i != j && !w.At(i, j) {
				out.Set(i, j)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the mask.
func (w *Mask) Clone() *Mask {
	out := NewMask(w.rows, w.cols)
	copy(out.bits, w.bits)
	return out
}

func (w *Mask) index(i, j int) int {
	if i < 0 || i >= w.rows || j < 0 || j >= w.cols {
		panic(fmt.Sprintf("mat: mask index (%d,%d) out of range %dx%d", i, j, w.rows, w.cols))
	}
	return i*w.cols + j
}

func popcount(x uint64) int {
	var c int
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// NeighborMask builds the observation mask induced by the paper's protocol:
// every node i independently selects k distinct random neighbors (§5.3) and
// only pairs (i, neighbor) are ever measured. When symmetric is true the
// reverse direction is marked too (RTT: xᵢⱼ = xⱼᵢ, so a measurement of
// (i, j) also trains entry (j, i)).
//
// The returned neighbor lists drive the simulation; the mask is its matrix
// view used to derive the evaluation test set.
func NeighborMask(n, k int, symmetric bool, rng *rand.Rand) (*Mask, [][]int) {
	if k >= n {
		panic(fmt.Sprintf("mat: neighbor count k=%d must be < n=%d", k, n))
	}
	w := NewMask(n, n)
	neighbors := make([][]int, n)
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		// Sample k distinct nodes ≠ i via a partial Fisher-Yates shuffle.
		for p := range perm {
			perm[p] = p
		}
		// Move i out of the way.
		perm[i], perm[n-1] = perm[n-1], perm[i]
		chosen := make([]int, 0, k)
		for c := 0; c < k; c++ {
			idx := c + rng.Intn(n-1-c)
			perm[c], perm[idx] = perm[idx], perm[c]
			chosen = append(chosen, perm[c])
		}
		neighbors[i] = chosen
		for _, j := range chosen {
			w.Set(i, j)
			if symmetric {
				w.Set(j, i)
			}
		}
	}
	return w, neighbors
}
