// Package svd computes singular values of dense matrices. It exists for one
// experiment: Figure 1 of the paper plots the top-20 normalized singular
// values of RTT and ABW measurement matrices (and of their binarized class
// matrices) to demonstrate the low-rank structure that justifies matrix
// factorization.
//
// Two algorithms are provided:
//
//   - Values: exact one-sided Jacobi SVD. Cubic cost, suitable up to a few
//     hundred rows. Used as the ground truth in tests.
//   - TopK: randomized subspace iteration returning only the k largest
//     singular values. Near-linear in the matrix size for small k, suitable
//     for the full 2500-node Meridian matrix.
//
// Missing entries must be imputed before calling either function; dataset
// matrices in this repository are dense (the HP-S3 generator masks only 4%,
// which the Figure-1 harness fills with the column median, mirroring the
// paper's preprocessing of the raw dataset).
package svd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dmfsgd/internal/mat"
)

// Values returns all singular values of a in descending order using the
// one-sided Jacobi method applied to the columns of a copy of a. The input
// must contain no NaN entries.
func Values(a *mat.Dense) []float64 {
	m, n := a.Rows(), a.Cols()
	if m == 0 || n == 0 {
		return nil
	}
	// One-sided Jacobi orthogonalizes the columns of A; the singular values
	// are the resulting column norms. Work on the transpose if that gives
	// fewer columns to rotate.
	work := a.Clone()
	if n > m {
		work = a.Transpose()
		m, n = n, m
	}
	checkFinite(work)

	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = work.At(i, j)
		}
		cols[j] = col
	}

	const (
		maxSweeps = 60
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha, beta, gamma := 0.0, 0.0, 0.0
				cp, cq := cols[p], cols[q]
				for i := 0; i < m; i++ {
					alpha += cp[i] * cp[i]
					beta += cq[i] * cq[i]
					gamma += cp[i] * cq[i]
				}
				if alpha == 0 || beta == 0 {
					continue
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				off += math.Abs(gamma)
				// Jacobi rotation zeroing the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := sign(zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					vp := cp[i]
					cp[i] = c*vp - s*cq[i]
					cq[i] = s*vp + c*cq[i]
				}
			}
		}
		if off == 0 {
			break
		}
	}

	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		var ss float64
		for _, v := range cols[j] {
			ss += v * v
		}
		sv[j] = math.Sqrt(ss)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	return sv
}

// TopK returns the k largest singular values of a (descending), estimated by
// randomized subspace iteration with oversampling p and iters power
// iterations. iters=4 and p=8 give plotting-quality accuracy on the
// fast-decaying spectra of performance matrices. rng drives the random test
// matrix; pass a seeded source for reproducibility.
func TopK(a *mat.Dense, k int, rng *rand.Rand) []float64 {
	const (
		oversample = 8
		iters      = 4
	)
	m, n := a.Rows(), a.Cols()
	if k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k > m {
		k = m
	}
	checkFinite(a)
	l := k + oversample
	if l > n {
		l = n
	}
	if l > m {
		l = m
	}

	// Y = A·Ω, Ω ∈ n×l Gaussian.
	omega := mat.NewDense(n, l)
	for i := 0; i < n; i++ {
		row := omega.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	y := a.Mul(omega) // m×l
	orthonormalize(y)

	// Power iterations: Y ← A·(Aᵀ·Y), re-orthonormalizing each step.
	at := a.Transpose()
	for it := 0; it < iters; it++ {
		z := at.Mul(y) // n×l
		orthonormalize(z)
		y = a.Mul(z) // m×l
		orthonormalize(y)
	}

	// B = Yᵀ·A is l×n; the singular values of B approximate those of A.
	b := y.Transpose().Mul(a)
	sv := Values(b)
	if len(sv) > k {
		sv = sv[:k]
	}
	return sv
}

// Normalize scales sv so its largest value is 1, as in Figure 1 ("singular
// values are normalized so that the largest singular values of all matrices
// are equal to 1"). A zero or empty spectrum is returned unchanged.
func Normalize(sv []float64) []float64 {
	out := make([]float64, len(sv))
	copy(out, sv)
	if len(out) == 0 || out[0] == 0 {
		return out
	}
	max := out[0]
	for i := range out {
		out[i] /= max
	}
	return out
}

// EffectiveRank returns the smallest r such that the top-r singular values
// carry at least fraction energy (in the squared / Frobenius sense) of the
// whole spectrum. It quantifies the "low effective rank" claim of §4.1.
func EffectiveRank(sv []float64, energy float64) int {
	if energy <= 0 || energy > 1 {
		panic(fmt.Sprintf("svd: energy %v out of (0,1]", energy))
	}
	var total float64
	for _, v := range sv {
		total += v * v
	}
	if total == 0 {
		return 0
	}
	var acc float64
	for i, v := range sv {
		acc += v * v
		if acc >= energy*total {
			return i + 1
		}
	}
	return len(sv)
}

// orthonormalize runs modified Gram-Schmidt on the columns of y in place.
// Columns that become numerically zero are replaced by zero vectors.
func orthonormalize(y *mat.Dense) {
	m, n := y.Rows(), y.Cols()
	col := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			col[i] = y.At(i, j)
		}
		for p := 0; p < j; p++ {
			var dot float64
			for i := 0; i < m; i++ {
				dot += col[i] * y.At(i, p)
			}
			for i := 0; i < m; i++ {
				col[i] -= dot * y.At(i, p)
			}
		}
		var norm float64
		for _, v := range col {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			for i := 0; i < m; i++ {
				y.Set(i, j, 0)
			}
			continue
		}
		for i := 0; i < m; i++ {
			y.Set(i, j, col[i]/norm)
		}
	}
}

func checkFinite(a *mat.Dense) {
	for _, v := range a.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic("svd: matrix contains NaN or Inf; impute missing entries first")
		}
	}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
