package svd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmfsgd/internal/mat"
)

func TestValuesDiagonal(t *testing.T) {
	a := mat.NewDense(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	sv := Values(a)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(sv[i]-w) > 1e-10 {
			t.Errorf("sv[%d] = %v, want %v", i, sv[i], w)
		}
	}
}

func TestValuesKnown2x2(t *testing.T) {
	// A = [[3,0],[4,5]]: AᵀA = [[25,20],[20,25]], eigenvalues 45 and 5,
	// so the singular values are sqrt(45) and sqrt(5).
	a := mat.NewDenseFrom(2, 2, []float64{3, 0, 4, 5})
	sv := Values(a)
	if math.Abs(sv[0]-math.Sqrt(45)) > 1e-10 || math.Abs(sv[1]-math.Sqrt(5)) > 1e-10 {
		t.Errorf("sv = %v, want [%v %v]", sv, math.Sqrt(45), math.Sqrt(5))
	}
}

func TestValuesRankOne(t *testing.T) {
	// Outer product u·vᵀ has exactly one nonzero singular value ‖u‖‖v‖.
	u := []float64{1, 2, 2}
	v := []float64{3, 4}
	a := mat.NewDense(3, 2)
	for i := range u {
		for j := range v {
			a.Set(i, j, u[i]*v[j])
		}
	}
	sv := Values(a)
	if math.Abs(sv[0]-15) > 1e-9 { // ‖u‖=3, ‖v‖=5
		t.Errorf("sv[0] = %v, want 15", sv[0])
	}
	if sv[1] > 1e-9 {
		t.Errorf("sv[1] = %v, want ~0", sv[1])
	}
}

func TestValuesWideMatrix(t *testing.T) {
	// Wide matrices are transposed internally; spectrum must be identical.
	rng := rand.New(rand.NewSource(5))
	a := mat.NewDense(4, 9)
	for i := 0; i < 4; i++ {
		for j := 0; j < 9; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	svA := Values(a)
	svT := Values(a.Transpose())
	for i := range svA {
		if math.Abs(svA[i]-svT[i]) > 1e-9 {
			t.Fatalf("sv mismatch at %d: %v vs %v", i, svA[i], svT[i])
		}
	}
}

func TestValuesFrobeniusIdentity(t *testing.T) {
	// Σσᵢ² must equal ‖A‖F².
	rng := rand.New(rand.NewSource(6))
	a := mat.NewDense(12, 8)
	var frob float64
	for i := 0; i < 12; i++ {
		for j := 0; j < 8; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			frob += v * v
		}
	}
	var sum float64
	for _, s := range Values(a) {
		sum += s * s
	}
	if math.Abs(sum-frob) > 1e-8*frob {
		t.Errorf("Σσ² = %v, ‖A‖F² = %v", sum, frob)
	}
}

func TestValuesPanicsOnNaN(t *testing.T) {
	a := mat.NewMissing(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Values should panic on NaN input")
		}
	}()
	Values(a)
}

func TestTopKMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Build a matrix with controlled fast-decaying spectrum, like Figure 1.
	n := 60
	a := lowRankPlusNoise(n, n, []float64{100, 60, 30, 10, 4, 1.5, 0.5}, 0.01, rng)
	exact := Values(a)
	got := TopK(a, 5, rand.New(rand.NewSource(8)))
	if len(got) != 5 {
		t.Fatalf("TopK returned %d values", len(got))
	}
	for i := 0; i < 5; i++ {
		rel := math.Abs(got[i]-exact[i]) / exact[i]
		if rel > 0.02 {
			t.Errorf("TopK[%d] = %v, exact %v (rel err %v)", i, got[i], exact[i], rel)
		}
	}
}

func TestTopKClampsK(t *testing.T) {
	a := mat.NewDense(3, 3)
	a.Set(0, 0, 1)
	got := TopK(a, 10, rand.New(rand.NewSource(1)))
	if len(got) != 3 {
		t.Errorf("TopK with k>n returned %d values, want 3", len(got))
	}
	if got := TopK(a, 0, rand.New(rand.NewSource(1))); got != nil {
		t.Errorf("TopK with k=0 = %v, want nil", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{4, 2, 1})
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Normalize = %v, want %v", got, want)
		}
	}
	if got := Normalize(nil); len(got) != 0 {
		t.Error("Normalize(nil) should be empty")
	}
	zeros := Normalize([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Error("Normalize of zero spectrum should stay zero")
	}
	// input untouched
	in := []float64{4, 2}
	Normalize(in)
	if in[0] != 4 {
		t.Error("Normalize mutated input")
	}
}

func TestEffectiveRank(t *testing.T) {
	// Spectrum 10, 1, 1: energy = 100+1+1 = 102. Top-1 holds 100/102 ≈ 0.98.
	sv := []float64{10, 1, 1}
	if got := EffectiveRank(sv, 0.9); got != 1 {
		t.Errorf("EffectiveRank(0.9) = %d, want 1", got)
	}
	if got := EffectiveRank(sv, 0.99); got != 2 {
		t.Errorf("EffectiveRank(0.99) = %d, want 2", got)
	}
	if got := EffectiveRank(sv, 1.0); got != 3 {
		t.Errorf("EffectiveRank(1.0) = %d, want 3", got)
	}
	if got := EffectiveRank(nil, 0.9); got != 0 {
		t.Errorf("EffectiveRank(nil) = %d, want 0", got)
	}
}

func TestEffectiveRankPanicsOnBadEnergy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EffectiveRank([]float64{1}, 1.5)
}

// Property: singular values are non-negative, sorted descending, and the
// largest is bounded by the Frobenius norm.
func TestValuesPropertySortedNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		a := mat.NewDense(m, n)
		var frob float64
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				v := rng.NormFloat64() * 10
				a.Set(i, j, v)
				frob += v * v
			}
		}
		frob = math.Sqrt(frob)
		sv := Values(a)
		prev := math.Inf(1)
		for _, s := range sv {
			if s < -1e-12 || s > prev+1e-9 || s > frob+1e-6 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the matrix scales the spectrum.
func TestValuesPropertyScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		alpha := 0.5 + rng.Float64()*3
		a := mat.NewDense(n, n)
		b := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				b.Set(i, j, alpha*v)
			}
		}
		svA, svB := Values(a), Values(b)
		for i := range svA {
			if math.Abs(svB[i]-alpha*svA[i]) > 1e-8*(1+svA[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// lowRankPlusNoise builds sum_k s[k]·u_k·v_kᵀ + eps·noise with orthogonal-ish
// random factors, giving a controlled spectrum for tests.
func lowRankPlusNoise(m, n int, spectrum []float64, eps float64, rng *rand.Rand) *mat.Dense {
	a := mat.NewDense(m, n)
	for _, s := range spectrum {
		u := make([]float64, m)
		v := make([]float64, n)
		var un, vn float64
		for i := range u {
			u[i] = rng.NormFloat64()
			un += u[i] * u[i]
		}
		for j := range v {
			v[j] = rng.NormFloat64()
			vn += v[j] * v[j]
		}
		un, vn = math.Sqrt(un), math.Sqrt(vn)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)+s*(u[i]/un)*(v[j]/vn))
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, a.At(i, j)+eps*rng.NormFloat64())
		}
	}
	return a
}

func BenchmarkValues100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := lowRankPlusNoise(100, 100, []float64{100, 50, 20, 5}, 0.1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Values(a)
	}
}

func BenchmarkTopK500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := lowRankPlusNoise(500, 500, []float64{100, 50, 20, 5, 2}, 0.1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TopK(a, 20, rand.New(rand.NewSource(2)))
	}
}
