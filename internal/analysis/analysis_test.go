package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePrefix is the synthetic import-path root of the golden
// fixtures; the loader resolves it to testdata/src/ under this package.
const fixturePrefix = "dmfsgd/internal/analysis/testdata/src/"

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	modRoot, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(modRoot, modPath)
}

// fixtureConfig extends the project config so the scoped analyzers
// (detorder, noclock, wirebound) also apply to their fixture packages.
func fixtureConfig() Config {
	cfg := DefaultConfig()
	cfg.DeterministicPkgs = append(cfg.DeterministicPkgs,
		fixturePrefix+"detorder", fixturePrefix+"noclock")
	cfg.WireboundPkgs = append(cfg.WireboundPkgs, fixturePrefix+"wirebound")
	return cfg
}

var wantRE = regexp.MustCompile(`// want ([a-z]+)`)

type expectation struct {
	file     string // base name
	line     int
	analyzer string
}

// wantMarkers reads the `// want <analyzer>` markers out of every
// fixture source file in dir.
func wantMarkers(t *testing.T, dir string) []expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				out = append(out, expectation{file: e.Name(), line: i + 1, analyzer: m[1]})
			}
		}
	}
	return out
}

// runFixture loads one fixture package, runs the suite, and checks the
// findings against the fixture's want markers exactly: every marked
// line must be flagged by the named analyzer, and nothing else may be.
func runFixture(t *testing.T, name string) {
	t.Helper()
	pkg, err := newTestLoader(t).Load(fixturePrefix + name)
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackages([]*Pkg{pkg}, fixtureConfig())
	want := wantMarkers(t, filepath.Join("testdata", "src", name))
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want markers", name)
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	wanted := make(map[key]bool, len(want))
	for _, w := range want {
		wanted[key{w.file, w.line, w.analyzer}] = true
	}
	for _, f := range findings {
		k := key{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer}
		if wanted[k] {
			delete(wanted, k)
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for k := range wanted {
		t.Errorf("missing finding: %s:%d [%s]", k.file, k.line, k.analyzer)
	}
	// The CI contract: a fixture with violations must fail the build.
	if len(findings) == 0 {
		t.Errorf("fixture %s produced no findings; dmfvet would exit 0", name)
	}
}

func TestDetorderFixture(t *testing.T)   { runFixture(t, "detorder") }
func TestNoclockFixture(t *testing.T)    { runFixture(t, "noclock") }
func TestMetricnameFixture(t *testing.T) { runFixture(t, "metricname") }
func TestWireboundFixture(t *testing.T)  { runFixture(t, "wirebound") }
func TestZeroallocFixture(t *testing.T)  { runFixture(t, "zeroalloc") }

// TestDirectiveFindings pins the //dmf:allow grammar: a directive with
// no reason and a directive naming an unknown analyzer are findings; a
// well-formed directive with nothing to suppress is not.
func TestDirectiveFindings(t *testing.T) {
	pkg, err := newTestLoader(t).Load(fixturePrefix + "directive")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackages([]*Pkg{pkg}, fixtureConfig())
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "directive" {
			t.Errorf("finding from %q, want directive: %s", f.Analyzer, f)
		}
	}
	if !strings.Contains(findings[0].Message, "malformed") {
		t.Errorf("first finding should report the malformed directive: %s", findings[0])
	}
	if !strings.Contains(findings[1].Message, "unknown analyzer") {
		t.Errorf("second finding should report the unknown analyzer: %s", findings[1])
	}
}

// TestMetricUniquenessAcrossPackages pins that the uniqueness index
// spans every package of one RunPackages call: the same series name
// registered in two packages is a duplicate.
func TestMetricUniquenessAcrossPackages(t *testing.T) {
	l := newTestLoader(t)
	a, err := l.Load(fixturePrefix + "metricdupa")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Load(fixturePrefix + "metricdupb")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackages([]*Pkg{a, b}, fixtureConfig())
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 duplicate: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "metricname" || !strings.Contains(f.Message, "already registered") {
		t.Errorf("want a metricname duplicate finding, got: %s", f)
	}
	if filepath.Base(f.Pos.Filename) != "fix.go" || !strings.Contains(f.Pos.Filename, "metricdupb") {
		t.Errorf("duplicate should be reported at the second registration: %s", f)
	}
}

// TestModulePackages sanity-checks the module walker: it must find this
// package and must not descend into testdata.
func TestModulePackages(t *testing.T) {
	modRoot, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ModulePackages(modRoot, modPath)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pkgs {
		if p == modPath+"/internal/analysis" {
			found = true
		}
		if strings.Contains(p, "testdata") {
			t.Errorf("ModulePackages descended into testdata: %s", p)
		}
	}
	if !found {
		t.Errorf("ModulePackages missed %s/internal/analysis: %v", modPath, pkgs)
	}
}

// TestModuleClean runs the full suite over the real module — the same
// audit CI runs via cmd/dmfvet — and requires a clean tree. Skipped in
// -short mode (the race job) because it type-checks the whole module.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module audit skipped in -short mode")
	}
	modRoot, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ModulePackages(modRoot, modPath)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(modRoot, modPath)
	var pkgs []*Pkg
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, f := range RunPackages(pkgs, DefaultConfig()) {
		t.Errorf("module not clean: %s", f)
	}
}
