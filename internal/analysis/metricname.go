package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// metricnameAnalyzer proves every metric registration against the
// naming contract (DESIGN.md §12): the name is a string literal (so
// the series set is statically enumerable), matches
// dmf_<subsystem>_<quantity>[_<unit>], carries the kind's unit suffix
// (counters end _total; histograms end _seconds or _bytes — base
// units), ends in a known unit/quantity token (catching typos like
// _second or _byte), and is registered at exactly one source site
// module-wide, so two subsystems can never fight over one series.
func metricnameAnalyzer() *Analyzer {
	seen := make(map[string]token.Position)
	return &Analyzer{
		Name: "metricname",
		Doc:  "audits metric registration names, unit suffixes, and module-wide uniqueness",
		Check: func(pkg *Pkg, cfg Config) []Finding {
			var out []Finding
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					kind, ok := registryMethods[sel.Sel.Name]
					if !ok || len(call.Args) < 1 {
						return true
					}
					if !isRegistryRecv(pkg, cfg, sel.X) {
						return true
					}
					pos := pkg.Fset.Position(call.Pos())
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						out = append(out, Finding{Pos: pos, Analyzer: "metricname",
							Message: fmt.Sprintf("%s registration name must be a string literal so the series set is statically checkable", sel.Sel.Name)})
						return true
					}
					name, err := strconv.Unquote(lit.Value)
					if err != nil {
						return true
					}
					out = append(out, checkMetricName(pos, kind, name, seen)...)
					return true
				})
			}
			return out
		},
	}
}

var metricNameRE = regexp.MustCompile(`^dmf_[a-z]+(_[a-z0-9]+)+$`)

// metricSuffixes is the closed vocabulary of final name tokens: units
// proper (seconds, bytes) plus the project's dimensionless gauge
// quantities. Extending it is a deliberate act — add the token here in
// the same change that introduces the first series using it.
var metricSuffixes = map[string]bool{
	"total": true, "seconds": true, "bytes": true, "steps": true,
	"shards": true, "ratio": true, "lag": true, "ready": true,
	"neighbors": true, "sent": true, "updates": true,
}

// registryMethods maps registration method name → metric kind.
var registryMethods = map[string]string{
	"Counter": "counter", "CounterVec": "counter",
	"Gauge": "gauge", "GaugeVec": "gauge", "GaugeFunc": "gauge",
	"Histogram": "histogram", "HistogramVec": "histogram",
}

// isRegistryRecv reports whether e has type *metrics.Registry from the
// configured metrics package (the *Vec families register through
// Registry methods, so Registry is the only receiver that registers a
// name).
func isRegistryRecv(pkg *Pkg, cfg Config, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == cfg.MetricsPkg && named.Obj().Name() == "Registry"
}

func checkMetricName(pos token.Position, kind, name string, seen map[string]token.Position) []Finding {
	var out []Finding
	bad := func(format string, args ...any) {
		out = append(out, Finding{Pos: pos, Analyzer: "metricname", Message: fmt.Sprintf(format, args...)})
	}
	if !metricNameRE.MatchString(name) {
		bad("metric %q does not match dmf_<subsystem>_<quantity>[_<unit>] (^dmf_[a-z]+(_[a-z0-9]+)+$)", name)
		return out
	}
	last := name[strings.LastIndexByte(name, '_')+1:]
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			bad("counter %q must end _total", name)
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			bad("histogram %q must carry a base unit suffix (_seconds or _bytes)", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			bad("gauge %q must not end _total (that suffix promises a monotonic counter)", name)
		}
	}
	if len(out) == 0 && !metricSuffixes[last] {
		bad("metric %q ends in unknown token %q; known units/quantities: total seconds bytes steps shards ratio lag ready neighbors sent updates", name, last)
	}
	if prev, dup := seen[name]; dup {
		bad("metric %q already registered at %s; series names must be unique module-wide", name, prev)
	} else {
		seen[name] = pos
	}
	return out
}
