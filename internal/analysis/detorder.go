package analysis

import (
	"go/ast"
	"go/types"
)

// detorderAnalyzer flags `range` over a map in a determinism-critical
// package. Go randomizes map iteration order, so any such loop whose
// effect depends on visit order silently breaks the bit-identical
// training/replication contracts (partition equivalence,
// restart-without-retrain, snapshot bit-identity).
//
// One idiom passes without annotation: collecting keys (or values)
// into a slice — `s = append(s, k)`, optionally under a single `if`
// guard — when that slice is subsequently sorted in the same function.
// The collection is order-insensitive and the sort restores
// determinism. Everything else needs a sorted-key loop or
// `//dmf:allow detorder <reason>`.
func detorderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "detorder",
		Doc:  "flags map iteration in determinism-critical packages",
		Check: func(pkg *Pkg, cfg Config) []Finding {
			if !hasPkg(cfg.DeterministicPkgs, pkg.Path) {
				return nil
			}
			var out []Finding
			for _, file := range pkg.Files {
				for _, fd := range funcBodies(file) {
					out = append(out, detorderFunc(pkg, fd)...)
				}
			}
			return out
		},
	}
}

func detorderFunc(pkg *Pkg, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectedAndSorted(pkg, fd, rs) {
			return true
		}
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(rs.For),
			Analyzer: "detorder",
			Message: "iteration over a map in a determinism-critical package: order is randomized; " +
				"sort the keys first or annotate //dmf:allow detorder <reason>",
		})
		return true
	})
	return out
}

// collectedAndSorted recognizes the append-then-sort idiom: the range
// body only appends to one slice (possibly inside a single if guard),
// and that slice is passed to a sort call later in the same function.
func collectedAndSorted(pkg *Pkg, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	stmts := rs.Body.List
	// Unwrap a single `if cond { ... }` guard with no else.
	if len(stmts) == 1 {
		if ifs, ok := stmts[0].(*ast.IfStmt); ok && ifs.Else == nil && ifs.Init == nil {
			stmts = ifs.Body.List
		}
	}
	if len(stmts) != 1 {
		return false
	}
	asg, ok := stmts[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 1 {
		return false
	}
	target := sliceObject(pkg, asg.Lhs[0])
	if target == nil || target != sliceObject(pkg, call.Args[0]) {
		return false
	}
	// The collected slice must be sorted after the loop.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() <= rs.End() || len(c.Args) < 1 {
			return true
		}
		if !isSortCall(pkg, c.Fun) {
			return true
		}
		if sliceObject(pkg, c.Args[0]) == target {
			sorted = true
		}
		return true
	})
	return sorted
}

// sliceObject resolves an expression to the variable (or field path
// root) it names, so the append target, the append source, and the
// sort argument can be compared for identity. Selector chains like
// st.Live resolve to the field object.
func sliceObject(pkg *Pkg, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := pkg.Info.Uses[e]; o != nil {
			return o
		}
		return pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[e]; sel != nil {
			return sel.Obj()
		}
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}

// isSortCall reports whether fun names a sorting function from sort or
// slices.
func isSortCall(pkg *Pkg, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
