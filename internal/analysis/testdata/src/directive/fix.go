// Package directivefix exercises the //dmf:allow grammar itself: a
// malformed directive is a finding, never a silent no-op.
package directivefix

//dmf:allow detorder
var missingReason int

//dmf:allow nosuchanalyzer because reasons
var unknownAnalyzer int

//dmf:allow noclock a well-formed directive with nothing to suppress is fine
var unusedButValid int
