// Package metricdupb re-registers metricdupa's series name.
package metricdupb

import "dmfsgd/internal/metrics"

var reg = metrics.NewRegistry()

var second = reg.Counter("dmf_fixdup_events_total", "duplicate across packages")
