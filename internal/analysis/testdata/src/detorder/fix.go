// Package detorderfix is the detorder golden fixture: marked lines
// must be flagged; everything else must pass.
package detorderfix

import "sort"

func sumKeys(m map[int]int) int {
	s := 0
	for k := range m { // want detorder
		s += k
	}
	return s
}

func sortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func guardedCollect(m map[int]bool) []int {
	var live []int
	for k := range m {
		if m[k] {
			live = append(live, k)
		}
	}
	sort.Ints(live)
	return live
}

func collectedNeverSorted(m map[int]bool) []int {
	var out []int
	for k := range m { // want detorder
		out = append(out, k)
	}
	return out
}

func allowedCount(m map[string]bool) int {
	n := 0
	//dmf:allow detorder counting is order-independent
	for range m {
		n++
	}
	return n
}

func sliceRangeIsFine(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
