// Package zeroallocfix is the zeroalloc golden fixture.
package zeroallocfix

import (
	"fmt"
	"strconv"
	"strings"
)

//dmf:zeroalloc
func badFmt(x int) string {
	return fmt.Sprintf("%d", x) // want zeroalloc
}

//dmf:zeroalloc
func badConvToString(b []byte) string {
	return string(b) // want zeroalloc
}

//dmf:zeroalloc
func badConvToBytes(s string) []byte {
	return []byte(s) // want zeroalloc
}

//dmf:zeroalloc
func badBuilder(parts []string) string {
	var sb strings.Builder
	for _, p := range parts {
		sb.WriteString(p) // want zeroalloc
	}
	return sb.String() // want zeroalloc
}

//dmf:zeroalloc
func badGo(ch chan int) {
	go func() { ch <- 1 }() // want zeroalloc
}

//dmf:zeroalloc
func badAssignedClosure(n int) func() int {
	f := func() int { return n } // want zeroalloc
	return f
}

//dmf:zeroalloc
func badReturnedClosure(n int) func() int {
	return func() int { return n } // want zeroalloc
}

//dmf:zeroalloc
func goodAppend(dst []byte, x int) []byte {
	return strconv.AppendInt(dst, int64(x), 10)
}

func apply(f func() int) int { return f() }

//dmf:zeroalloc
func goodClosureCallArg(n int) int {
	// A capturing closure passed directly to a call stays on the stack.
	return apply(func() int { return n })
}

//dmf:zeroalloc
func goodDeferredClosure(release func(int), n int) {
	// Open-coded defers do not allocate the closure.
	defer func() { release(n) }()
}

//dmf:zeroalloc
func goodNonCapturingClosure() func() int {
	return func() int { return 42 }
}

//dmf:zeroalloc
func allowedPanic(n int) {
	if n < 0 {
		//dmf:allow zeroalloc cold panic path
		panic(fmt.Sprintf("negative %d", n))
	}
}

// Unannotated functions may allocate freely.
func coldPath(x int) string {
	return fmt.Sprintf("%d", x)
}
