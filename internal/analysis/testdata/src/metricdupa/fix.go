// Package metricdupa registers a series that metricdupb re-registers:
// the duplicate must be caught across package boundaries.
package metricdupa

import "dmfsgd/internal/metrics"

var reg = metrics.NewRegistry()

var first = reg.Counter("dmf_fixdup_events_total", "registered here first")
