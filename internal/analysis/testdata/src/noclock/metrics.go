package noclockfix

import "time"

// The metrics.go seam file may read the clock: observations never feed
// back into state.
func seamTimer() time.Time { return time.Now() }

func seamSince(t0 time.Time) float64 { return time.Since(t0).Seconds() }
