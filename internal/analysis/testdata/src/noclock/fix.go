// Package noclockfix is the noclock golden fixture.
package noclockfix

import (
	"math/rand"
	"time"
)

func badNow() time.Time {
	return time.Now() // want noclock
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want noclock
}

func badSleep() {
	time.Sleep(time.Millisecond) // want noclock
}

func badGlobalRand() int {
	return rand.Intn(10) // want noclock
}

func goodSeededRand(r *rand.Rand) int {
	return r.Intn(10)
}

func goodConstructor() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func allowedNow() time.Time {
	//dmf:allow noclock liveness bookkeeping is inherently wall-clock
	return time.Now()
}

// Protocol timeouts are wall-clock by design and are not flagged.
func goodTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}
