// Package metricnamefix is the metricname golden fixture. The
// registrations are type-checked, never executed.
package metricnamefix

import "dmfsgd/internal/metrics"

var reg = metrics.NewRegistry()

var (
	goodCounter = reg.Counter("dmf_fix_requests_total", "ok")
	goodGauge   = reg.Gauge("dmf_fix_queue_lag", "ok")
	goodHist    = reg.Histogram("dmf_fix_wait_seconds", "ok", nil)
	goodVec     = reg.CounterVec("dmf_fix_frames_total", "ok", "kind")

	badPattern    = reg.Counter("fix_requests_total", "missing dmf_ prefix")    // want metricname
	badUpper      = reg.Counter("dmf_Fix_requests_total", "uppercase")          // want metricname
	badCounterEnd = reg.Counter("dmf_fix_bytes_written_seconds", "not _total")  // want metricname
	badGaugeEnd   = reg.Gauge("dmf_fix_backlog_total", "gauge ends _total")     // want metricname
	badHistUnit   = reg.Histogram("dmf_fix_wait_millis", "non-base unit", nil)  // want metricname
	badSuffix     = reg.Gauge("dmf_fix_queue_depth", "unknown final token")     // want metricname
	dupName       = reg.Counter("dmf_fix_requests_total", "already registered") // want metricname
)

func dynamicName(name string) *metrics.Counter {
	return reg.Counter(name, "non-literal registration") // want metricname
}
