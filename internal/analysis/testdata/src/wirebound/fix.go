// Package wireboundfix is the wirebound golden fixture.
package wireboundfix

import "encoding/binary"

const maxItems = 1024

func badDecode(p []byte) []uint64 {
	n := int(binary.BigEndian.Uint32(p))
	out := make([]uint64, n) // want wirebound
	for i := range out {
		out[i] = binary.BigEndian.Uint64(p[4+8*i:])
	}
	return out
}

func goodDecode(p []byte) ([]uint64, bool) {
	if len(p) < 4 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint32(p))
	if n > maxItems || len(p) < 4+8*n {
		return nil, false
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(p[4+8*i:])
	}
	return out, true
}

func goodLenProportional(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

func goodMinClamped(n int) []uint64 {
	return make([]uint64, min(n, maxItems))
}

func badSpread(p []byte, declared int) []byte {
	var out []byte
	return append(out, p[:declared]...) // want wirebound
}

func goodSpread(p []byte, declared int) ([]byte, bool) {
	if declared < 0 || declared > len(p) {
		return nil, false
	}
	var out []byte
	return append(out, p[:declared]...), true
}

func allowedDecode(p []byte) []uint64 {
	n := int(binary.BigEndian.Uint32(p))
	//dmf:allow wirebound caller validated n upstream
	return make([]uint64, n)
}
