package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Pkg is one type-checked package under analysis: the parsed non-test
// sources plus the go/types facts the analyzers consult.
type Pkg struct {
	// Path is the package's import path (or a synthetic path for
	// fixture packages loaded from a bare directory).
	Path string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Info carries the type-checker's expression and object facts.
	Info *types.Info
	// Types is the checked package.
	Types *types.Package
}

// Loader parses and type-checks packages from source with no external
// dependencies: stdlib packages resolve from GOROOT/src (cgo disabled,
// so cgo-using packages like net fall back to their pure-Go variants),
// module packages resolve from the module root. It satisfies
// types.Importer, caching every package it checks.
type Loader struct {
	fset    *token.FileSet
	ctxt    build.Context
	modRoot string
	modPath string
	pkgs    map[string]*types.Package
	// retained caches the full analysis view of module packages so a
	// path is checked exactly once whether it is reached by Load or as
	// a dependency: two checks of one path would mint two distinct
	// *types.Package identities and break cross-package assignability.
	retained map[string]*Pkg
	loading  map[string]bool
}

// NewLoader returns a loader for the module rooted at modRoot (the
// directory containing go.mod) whose module path is modPath.
func NewLoader(modRoot, modPath string) *Loader {
	ctxt := build.Default
	// Pure-Go builds only: with cgo off, go/build drops `import "C"`
	// files and picks the portable implementations, which is all the
	// type checker needs.
	ctxt.CgoEnabled = false
	return &Loader{
		fset:     token.NewFileSet(),
		ctxt:     ctxt,
		modRoot:  modRoot,
		modPath:  modPath,
		pkgs:     make(map[string]*types.Package),
		retained: make(map[string]*Pkg),
		loading:  make(map[string]bool),
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// resolveDir maps an import path to the directory holding its sources.
func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.modPath {
		return l.modRoot, nil
	}
	if sub, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(sub)), nil
	}
	goroot := runtime.GOROOT()
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (not stdlib, not under module %s)", path, l.modPath)
}

// Import implements types.Importer by type-checking the package from
// source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	// Module packages keep their syntax and type facts so a later
	// Load of the same path reuses this check instead of re-minting
	// the package.
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, _, _, err := l.check(path, dir, nil)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check parses the build-selected non-test files of dir and
// type-checks them. When info is non-nil the checker fills it.
func (l *Loader) check(path, dir string, info *types.Info) (*types.Package, []*ast.File, *token.FileSet, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	cfg := types.Config{Importer: l, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, files, l.fset, nil
}

// newInfo returns a types.Info recording everything the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Load loads the package named by its import path, resolving the
// directory the same way Import does, while retaining syntax and type
// facts for analysis.
func (l *Loader) Load(path string) (*Pkg, error) {
	if pkg, ok := l.retained[path]; ok {
		return pkg, nil
	}
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	return l.loadDir(path, dir)
}

// LoadDir loads the package in dir under the given import path,
// retaining syntax and type facts for analysis.
func (l *Loader) LoadDir(path, dir string) (*Pkg, error) {
	if pkg, ok := l.retained[path]; ok {
		return pkg, nil
	}
	return l.loadDir(path, dir)
}

func (l *Loader) loadDir(path, dir string) (*Pkg, error) {
	info := newInfo()
	tpkg, files, fset, err := l.check(path, dir, info)
	if err != nil {
		return nil, err
	}
	pkg := &Pkg{Path: path, Fset: fset, Files: files, Info: info, Types: tpkg}
	l.pkgs[path] = tpkg
	l.retained[path] = pkg
	return pkg, nil
}

// ModulePackages walks the module rooted at modRoot and returns the
// import paths (sorted) of every package holding non-test Go files,
// skipping testdata, hidden directories, and vendored trees.
func ModulePackages(modRoot, modPath string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
				!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				rel, err := filepath.Rel(modRoot, p)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, modPath)
				} else {
					out = append(out, modPath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// FindModuleRoot walks upward from dir to the directory containing
// go.mod and returns it together with the declared module path.
func FindModuleRoot(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
