package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// noclockAnalyzer flags wall-clock reads (time.Now, time.Since,
// time.Sleep) and global-source math/rand calls in
// determinism-critical packages. Deterministic paths must draw
// randomness from explicitly seeded streams (engine.CountingSource or
// a *rand.Rand plumbed in) and must not branch on real time — a single
// wall-clock read in the training path breaks restart-without-retrain
// and partition equivalence.
//
// The sanctioned exception is the metrics/trace seam: files named in
// Config.SeamFiles (metrics.go, trace.go) may read the clock to
// measure durations, because their observations never feed back into
// state. Code elsewhere routes timing through those seams. Anything
// else needs //dmf:allow noclock <reason> (e.g. failure-detector
// liveness bookkeeping, which is inherently wall-clock).
func noclockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "noclock",
		Doc:  "flags wall-clock and global-RNG use in determinism-critical packages",
		Check: func(pkg *Pkg, cfg Config) []Finding {
			if !hasPkg(cfg.DeterministicPkgs, pkg.Path) {
				return nil
			}
			seam := make(map[string]bool, len(cfg.SeamFiles))
			for _, s := range cfg.SeamFiles {
				seam[s] = true
			}
			var out []Finding
			for _, file := range pkg.Files {
				name := filepath.Base(pkg.Fset.Position(file.Pos()).Filename)
				if seam[name] {
					continue
				}
				out = append(out, noclockFile(pkg, file)...)
			}
			return out
		},
	}
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// that draw from the process-global, unseedable-in-place source.
// Constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8) are fine:
// they bind an explicit seed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func noclockFile(pkg *Pkg, file *ast.File) []Finding {
	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "time":
			switch sel.Sel.Name {
			case "Now", "Since", "Sleep":
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(sel.Pos()),
					Analyzer: "noclock",
					Message: fmt.Sprintf("time.%s in a determinism-critical package: route timing through the "+
						"metrics seam (metrics.go/trace.go) or annotate //dmf:allow noclock <reason>", sel.Sel.Name),
				})
			}
		case "math/rand", "math/rand/v2":
			if globalRandFuncs[sel.Sel.Name] {
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(sel.Pos()),
					Analyzer: "noclock",
					Message: fmt.Sprintf("global rand.%s in a determinism-critical package: randomness must flow "+
						"through an explicitly seeded source (engine.CountingSource)", sel.Sel.Name),
				})
			}
		}
		return true
	})
	return out
}
