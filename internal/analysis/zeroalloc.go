package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// zeroallocAnalyzer enforces the pooled hot-path contract on functions
// annotated //dmf:zeroalloc (in the declaration's doc comment): the
// serving handlers, Snapshot.RankInto, and the metrics primitives are
// pinned at 0 allocs/op by testing.AllocsPerRun, and this analyzer
// rejects the source patterns that would break the pin before a
// benchmark ever runs:
//
//   - any call into fmt (every fmt call allocates);
//   - strings.Builder use (its growth allocates);
//   - string ↔ []byte conversions (each copies);
//   - go statements (a goroutine per call);
//   - capturing closures in escaping positions (returned, assigned, or
//     stored — the capture forces a heap allocation). A capturing
//     closure passed directly as a call argument or deferred stays on
//     the stack and is allowed.
//
// The check is intra-procedural: calls into other functions are
// trusted to carry their own annotation (or a pin test). Cold paths
// inside an annotated function — a panic message, an error return —
// are suppressed line-by-line with //dmf:allow zeroalloc <reason>.
func zeroallocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "zeroalloc",
		Doc:  "rejects known-allocating constructs in //dmf:zeroalloc functions",
		Check: func(pkg *Pkg, cfg Config) []Finding {
			var out []Finding
			for _, file := range pkg.Files {
				for _, fd := range funcBodies(file) {
					if !isZeroallocAnnotated(fd) {
						continue
					}
					out = append(out, zeroallocFunc(pkg, fd)...)
				}
			}
			return out
		},
	}
}

// isZeroallocAnnotated reports whether the declaration's doc comment
// contains a //dmf:zeroalloc line.
func isZeroallocAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//dmf:zeroalloc") {
			return true
		}
	}
	return false
}

func zeroallocFunc(pkg *Pkg, fd *ast.FuncDecl) []Finding {
	var out []Finding
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "zeroalloc",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			flag(n, "go statement in a //dmf:zeroalloc function allocates a goroutine per call")
		case *ast.CallExpr:
			zeroallocCall(pkg, n, flag)
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if lit, ok := rhs.(*ast.FuncLit); ok && capturesOuter(pkg, lit) {
					flag(lit, "capturing closure assigned to a variable escapes to the heap")
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if lit, ok := r.(*ast.FuncLit); ok && capturesOuter(pkg, lit) {
					flag(lit, "returned capturing closure escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if lit, ok := el.(*ast.FuncLit); ok && capturesOuter(pkg, lit) {
					flag(lit, "capturing closure stored in a composite literal escapes to the heap")
				}
			}
		}
		return true
	})
	return out
}

func zeroallocCall(pkg *Pkg, call *ast.CallExpr, flag func(ast.Node, string, ...any)) {
	// Conversions: string([]byte) and []byte(string) copy.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if at, ok := pkg.Info.Types[call.Args[0]]; ok && isStringByteConv(tv.Type, at.Type) {
			flag(call, "string ↔ []byte conversion copies; keep one representation on the hot path")
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package-level calls into fmt.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" {
				flag(call, "fmt.%s allocates; build output with strconv.Append* into a pooled buffer", sel.Sel.Name)
			}
			return
		}
	}
	// Method calls on strings.Builder.
	if s := pkg.Info.Selections[sel]; s != nil {
		t := s.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "strings" && named.Obj().Name() == "Builder" {
			flag(call, "strings.Builder growth allocates; append into a pooled []byte instead")
		}
	}
}

// isStringByteConv reports whether a conversion from `from` to `to` is
// a string ↔ []byte copy.
func isStringByteConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// capturesOuter reports whether the function literal references any
// variable declared outside itself (below package level) — the
// captures that force a heap-allocated closure object.
func capturesOuter(pkg *Pkg, lit *ast.FuncLit) bool {
	declared := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := pkg.Info.Defs[id]; o != nil {
				declared[o] = true
			}
		}
		return true
	})
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || declared[o] {
			return true
		}
		// Package-level variables are not captures.
		if o.Parent() == pkg.Types.Scope() || o.Parent() == types.Universe {
			return true
		}
		// A variable declared inside the literal but used before the
		// Defs pass saw it would be in `declared`; anything else from an
		// enclosing scope is a capture.
		if o.Pos() < lit.Pos() || o.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}
