package analysis

import (
	"go/ast"
	"go/token"
)

// wireboundAnalyzer enforces the never-over-allocate decode contract
// in the wire/checkpoint packages: a slice allocation (or a
// slice-spread append) whose size comes from a declared count in the
// input must be dominated by a bounds check, so a malformed or
// malicious message can never make the decoder allocate more than the
// protocol limits (MaxStateFloats, MaxRank, ...) or more than the
// input actually holds.
//
// A size expression is considered bounded when it is built from
// constants, len()/cap() of in-memory values (allocating proportional
// to input actually held is fine), min() with at least one bounded
// argument, or identifiers that appear in a comparison inside an
// earlier if-statement of the same function whose body returns (the
// `if n > MaxThing { return ErrTooLarge }` / `if len(p) < 8*n { return
// ErrTruncated }` discipline). Anything else is a finding.
func wireboundAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wirebound",
		Doc:  "requires decode-path allocations to be dominated by bounds checks",
		Check: func(pkg *Pkg, cfg Config) []Finding {
			if !hasPkg(cfg.WireboundPkgs, pkg.Path) {
				return nil
			}
			var out []Finding
			for _, file := range pkg.Files {
				for _, fd := range funcBodies(file) {
					out = append(out, wireboundFunc(pkg, fd)...)
				}
			}
			return out
		},
	}
}

func wireboundFunc(pkg *Pkg, fd *ast.FuncDecl) []Finding {
	checks := collectBoundsChecks(fd)
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		switch fn.Name {
		case "make":
			// make(T, size...) — every size operand must be bounded.
			for _, arg := range call.Args[1:] {
				if !boundedExpr(pkg, arg, call.Pos(), checks) {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: "wirebound",
						Message: "allocation size is not dominated by a bounds check: validate the declared " +
							"length against a protocol limit (and the remaining input) before allocating",
					})
					break
				}
			}
		case "append":
			// append(dst, src[a:b]...) — spread of a reslice whose
			// bounds come from declared counts must be checked too.
			if call.Ellipsis == token.NoPos || len(call.Args) != 2 {
				return true
			}
			sl, ok := call.Args[1].(*ast.SliceExpr)
			if !ok {
				return true
			}
			for _, b := range []ast.Expr{sl.Low, sl.High, sl.Max} {
				if b != nil && !boundedExpr(pkg, b, call.Pos(), checks) {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(call.Pos()),
						Analyzer: "wirebound",
						Message: "append grows by a declared, unvalidated length: bounds-check the slice " +
							"limits before spreading",
					})
					break
				}
			}
		}
		return true
	})
	return out
}

// boundsCheck is one `if ... { return ... }` whose condition compares
// something: the identifiers appearing in its condition (or init
// statement) count as validated for all later positions.
type boundsCheck struct {
	pos    token.Pos
	idents map[string]bool
}

// collectBoundsChecks gathers every if-statement of the function that
// contains a comparison and whose body (or else branch) returns.
func collectBoundsChecks(fd *ast.FuncDecl) []boundsCheck {
	var out []boundsCheck
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !returnsOrPanics(ifs.Body) && (ifs.Else == nil || !returnsOrPanics(ifs.Else)) {
			return true
		}
		ids := make(map[string]bool)
		hasCmp := false
		collect := func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				switch e.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
					hasCmp = true
				}
			case *ast.Ident:
				ids[e.Name] = true
			}
			return true
		}
		ast.Inspect(ifs.Cond, collect)
		if ifs.Init != nil {
			ast.Inspect(ifs.Init, collect)
		}
		if hasCmp {
			out = append(out, boundsCheck{pos: ifs.Pos(), idents: ids})
		}
		return true
	})
	return out
}

// returnsOrPanics reports whether the statement (or block) contains a
// return, panic, or continue/break escape — the shapes a rejection
// path takes.
func returnsOrPanics(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// boundedExpr reports whether the size expression e, used at pos, is
// built entirely from bounded parts.
func boundedExpr(pkg *Pkg, e ast.Expr, pos token.Pos, checks []boundsCheck) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		// Constants are bounded by definition.
		if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
			return true
		}
		return identChecked(e.Name, pos, checks)
	case *ast.SelectorExpr:
		// Qualified constants (wire.MaxRank) and struct fields: bounded
		// only if constant or checked by field name.
		if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
			return true
		}
		return identChecked(e.Sel.Name, pos, checks)
	case *ast.ParenExpr:
		return boundedExpr(pkg, e.X, pos, checks)
	case *ast.BinaryExpr:
		return boundedExpr(pkg, e.X, pos, checks) && boundedExpr(pkg, e.Y, pos, checks)
	case *ast.UnaryExpr:
		return boundedExpr(pkg, e.X, pos, checks)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap":
				// Allocating proportional to data already in memory
				// cannot over-allocate relative to the input.
				return true
			case "min":
				for _, a := range e.Args {
					if boundedExpr(pkg, a, pos, checks) {
						return true
					}
				}
				return false
			case "int", "int64", "int32", "uint", "uint64", "uint32", "uint16", "uint8":
				for _, a := range e.Args {
					if !boundedExpr(pkg, a, pos, checks) {
						return false
					}
				}
				return true
			}
		}
		return false
	}
	return false
}

// identChecked reports whether name appears in a bounds check placed
// before pos.
func identChecked(name string, pos token.Pos, checks []boundsCheck) bool {
	for _, c := range checks {
		if c.pos < pos && c.idents[name] {
			return true
		}
	}
	return false
}
