// Package analysis is the project's static-analysis tier (DESIGN.md
// §13): a dependency-free analyzer driver (stdlib go/ast + go/types
// only, run as cmd/dmfvet) that machine-checks the source-level
// invariants the reproduction's claims rest on — deterministic
// iteration, no wall-clock or global RNG in deterministic paths,
// metric-name hygiene, never-over-allocate wire decodes, and the
// zero-alloc hot-path contract.
//
// Every analyzer honors a per-line escape hatch:
//
//	//dmf:allow <analyzer> <reason>
//
// placed on the flagged line or the line above suppresses that
// analyzer's finding there. The reason is mandatory — a bare directive
// is itself a finding — so every suppression documents why the
// invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Config scopes the analyzers to the project layout.
type Config struct {
	// ModulePath is the module's import-path prefix ("dmfsgd").
	ModulePath string
	// DeterministicPkgs lists the import paths whose code must be
	// reproducible bit-for-bit: detorder and noclock apply here.
	DeterministicPkgs []string
	// WireboundPkgs lists the import paths holding wire/checkpoint
	// decode paths: wirebound applies here.
	WireboundPkgs []string
	// SeamFiles names the per-package files (by base name) that form
	// the sanctioned wall-clock seam — metric observation and event
	// tracing live there, so noclock skips them.
	SeamFiles []string
	// MetricsPkg is the import path of the metrics registry whose
	// registration calls metricname audits.
	MetricsPkg string
}

// DefaultConfig returns the project's invariant map: which packages
// carry the determinism contract, where the decode bounds apply, and
// which files are the wall-clock seam.
func DefaultConfig() Config {
	return Config{
		ModulePath: "dmfsgd",
		DeterministicPkgs: []string{
			"dmfsgd/internal/engine",
			"dmfsgd/internal/cluster",
			"dmfsgd/internal/replica",
			"dmfsgd/internal/wire",
			"dmfsgd/internal/ckpt",
			"dmfsgd/internal/sgd",
		},
		WireboundPkgs: []string{
			"dmfsgd/internal/wire",
			"dmfsgd/internal/ckpt",
		},
		SeamFiles:  []string{"metrics.go", "trace.go"},
		MetricsPkg: "dmfsgd/internal/metrics",
	}
}

// Analyzer is one project-invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// Check reports raw findings for the package; the driver applies
	// //dmf:allow suppression afterwards.
	Check func(pkg *Pkg, cfg Config) []Finding
}

// Analyzers returns the suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		detorderAnalyzer(),
		noclockAnalyzer(),
		metricnameAnalyzer(),
		wireboundAnalyzer(),
		zeroallocAnalyzer(),
	}
}

// hasPkg reports whether path is, or is nested under, one of the
// listed import paths.
func hasPkg(list []string, path string) bool {
	for _, p := range list {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// allowKey identifies one suppression site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowSet indexes the //dmf:allow directives of a package.
type allowSet struct {
	allows map[allowKey]bool
	bad    []Finding
}

const allowPrefix = "//dmf:allow"

// collectAllows scans every comment of the package for allow
// directives. Malformed directives (missing analyzer or reason, or an
// unknown analyzer name) are findings themselves: a suppression that
// silently does nothing is worse than none.
func collectAllows(pkg *Pkg, names map[string]bool) *allowSet {
	as := &allowSet{allows: make(map[allowKey]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					as.bad = append(as.bad, Finding{Pos: pos, Analyzer: "directive",
						Message: "malformed //dmf:allow: want `//dmf:allow <analyzer> <reason>`"})
					continue
				}
				if !names[fields[0]] {
					as.bad = append(as.bad, Finding{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("//dmf:allow names unknown analyzer %q", fields[0])})
					continue
				}
				as.allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return as
}

// allowed reports whether a finding is suppressed by a directive on
// its own line or the line directly above.
func (as *allowSet) allowed(f Finding) bool {
	return as.allows[allowKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}] ||
		as.allows[allowKey{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}]
}

// RunPackages applies one suite instance to every package and returns
// the surviving findings sorted by position. Cross-package state
// (metricname's uniqueness index) lives in the suite, so all packages
// of one audit must flow through one call.
func RunPackages(pkgs []*Pkg, cfg Config) []Finding {
	suite := Analyzers()
	names := make(map[string]bool)
	for _, a := range suite {
		names[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		as := collectAllows(pkg, names)
		out = append(out, as.bad...)
		for _, a := range suite {
			for _, f := range a.Check(pkg, cfg) {
				if !as.allowed(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// funcBodies yields every function or method body in the file together
// with its declaration, including the doc comment zeroalloc consults.
func funcBodies(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
