package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Measurement WAL line formats. A WAL is an NDJSON log mixing three
// record kinds, written strictly in this order per training batch:
//
//	{"wal":1,"seq":B}                       segment header: format
//	                                        version and base sequence —
//	                                        B measurements were already
//	                                        committed before this file
//	                                        segment began (0 for a
//	                                        fresh WAL; a truncation at
//	                                        a checkpoint barrier starts
//	                                        a new segment whose base is
//	                                        the barrier's sequence)
//	{"t":…,"i":…,"j":…,"v":…}               one sourced measurement, in
//	                                        emission order (the stream
//	                                        capture format)
//	{"commit":{"seq":S,"mode":"s",…}}       barrier: every measurement
//	                                        up to sequence S has been
//	                                        applied to the training
//	                                        state
//
// A commit carries what replay needs to reproduce the application
// exactly: mode "s" (the batch was applied sequentially, one
// Gauss-Seidel update per usable measurement), "b" (the batch was
// applied as one synchronous epoch through the engine's sharded batch
// path), or "x" (the batch was logged but discarded — a cancelled
// epoch collection — so replay must skip it too), plus the post-apply
// step counter, the master-RNG draw count, and the source-chain
// cursors. Measurements after the last commit are a torn tail: the
// crash interrupted their application, so replay discards them and the
// resumed source re-emits them deterministically.
//
// The scanner mirrors the package's other loaders: arbitrary input
// yields descriptive errors, never panics or attacker-sized
// allocations.

// WAL format limits, shared with the checkpoint format's cursor
// sections.
const (
	// WALVersion is the format version this package writes and reads.
	WALVersion = 1
	// MaxWALCursorLayers bounds the source-chain cursor count of one
	// commit record.
	MaxWALCursorLayers = 64
	// MaxWALCursorVals bounds the values one cursor layer may carry.
	MaxWALCursorVals = 64
)

// ErrWALVersion marks a WAL segment header with an unsupported version.
var ErrWALVersion = errors.New("dataset: unsupported WAL version")

// WALCommit is one decoded commit barrier.
type WALCommit struct {
	// Seq is the cumulative count of measurements covered: every
	// measurement with sequence ≤ Seq is folded into the training state.
	Seq uint64
	// Batch is true when the batch was applied through the sharded
	// epoch path ("b"), false for sequential application ("s").
	Batch bool
	// Skip is true when the covered measurements were discarded without
	// training ("x"): a cancelled epoch collection logged them, and the
	// run continued past them. Replay discards them the same way.
	// Mutually exclusive with Batch.
	Skip bool
	// Steps is the trainer's cumulative update counter after the apply.
	Steps uint64
	// Draws is the master-RNG stream position after the batch was
	// sourced.
	Draws uint64
	// Cursors holds the source-chain stream positions, outermost layer
	// first.
	Cursors [][]uint64
}

// WALRecordKind discriminates scanned WAL lines.
type WALRecordKind uint8

const (
	// WALHeaderRecord is a segment header line.
	WALHeaderRecord WALRecordKind = iota + 1
	// WALMeasurementRecord is one sourced measurement.
	WALMeasurementRecord
	// WALCommitRecord is a commit barrier.
	WALCommitRecord
)

// WALRecord is one scanned WAL line.
type WALRecord struct {
	Kind WALRecordKind
	// Base is the segment's base sequence (header records).
	Base uint64
	// M is the measurement (measurement records).
	M Measurement
	// Commit is the barrier (commit records).
	Commit WALCommit
}

// walCommitJSON is the wire shape of a commit barrier.
type walCommitJSON struct {
	Seq   uint64     `json:"seq"`
	Mode  string     `json:"mode"`
	Steps uint64     `json:"steps"`
	Draws uint64     `json:"draws"`
	Cur   [][]uint64 `json:"cur,omitempty"`
}

// walLine is the union shape every WAL line decodes into; pointer
// fields distinguish the record kinds.
type walLine struct {
	WAL    *int           `json:"wal"`
	Seq    *uint64        `json:"seq"`
	Commit *walCommitJSON `json:"commit"`
	T      *float64       `json:"t"`
	I      *int           `json:"i"`
	J      *int           `json:"j"`
	V      *float64       `json:"v"`
}

// WriteWALHeader writes a segment header line.
func WriteWALHeader(w io.Writer, baseSeq uint64) error {
	_, err := fmt.Fprintf(w, "{\"wal\":%d,\"seq\":%d}\n", WALVersion, baseSeq)
	return err
}

// WriteWALCommit writes a commit barrier line.
func WriteWALCommit(w io.Writer, c WALCommit) error {
	if len(c.Cursors) > MaxWALCursorLayers {
		return fmt.Errorf("dataset: commit carries %d cursor layers, limit %d", len(c.Cursors), MaxWALCursorLayers)
	}
	for i, cur := range c.Cursors {
		if len(cur) > MaxWALCursorVals {
			return fmt.Errorf("dataset: commit cursor layer %d carries %d values, limit %d", i, len(cur), MaxWALCursorVals)
		}
	}
	if c.Batch && c.Skip {
		return fmt.Errorf("dataset: commit cannot be both batch and skip")
	}
	mode := "s"
	switch {
	case c.Batch:
		mode = "b"
	case c.Skip:
		mode = "x"
	}
	return json.NewEncoder(w).Encode(struct {
		Commit walCommitJSON `json:"commit"`
	}{walCommitJSON{
		Seq: c.Seq, Mode: mode, Steps: c.Steps, Draws: c.Draws, Cur: c.Cursors,
	}})
}

// WAL segment files. A rotating WAL is a directory of NDJSON segments
// named wal-000001.ndjson, wal-000002.ndjson, …, each opening with its
// own header line whose base sequence counts the measurements already
// committed when the segment began. Replay concatenates the segments in
// index order into one logical log; a checkpoint barrier deletes the
// segments it fully covers instead of truncating one growing file.

const (
	walSegPrefix = "wal-"
	walSegSuffix = ".ndjson"
)

// WALSegmentName returns the file name of segment index (≥ 1).
func WALSegmentName(index int) string {
	return fmt.Sprintf("%s%06d%s", walSegPrefix, index, walSegSuffix)
}

// ParseWALSegmentName extracts the index from a segment file name; ok
// is false for anything that is not a WAL segment name.
func ParseWALSegmentName(name string) (index int, ok bool) {
	digits, found := strings.CutPrefix(name, walSegPrefix)
	if !found {
		return 0, false
	}
	digits, found = strings.CutSuffix(digits, walSegSuffix)
	if !found || len(digits) < 6 {
		return 0, false
	}
	idx, err := strconv.Atoi(digits)
	if err != nil || idx < 1 || WALSegmentName(idx) != name {
		return 0, false
	}
	return idx, true
}

// ListWALSegments returns the indices of the WAL segments present in
// dir, ascending numerically (the zero-padded names sort lexically only
// up to six digits). Non-segment files are ignored.
func ListWALSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if idx, ok := ParseWALSegmentName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	return idxs, nil
}

// WALScanner reads a WAL record by record without buffering the log,
// tracking the byte offset after each decoded record so a consumer can
// truncate a torn tail at the last record it trusts.
type WALScanner struct {
	dec    *json.Decoder
	rec    int
	offset int64
}

// NewWALScanner wraps r for record-at-a-time reading.
func NewWALScanner(r io.Reader) *WALScanner {
	return &WALScanner{dec: json.NewDecoder(r)}
}

// Offset returns the input byte offset just past the last successfully
// decoded record — the position to truncate a WAL at when the bytes
// beyond it are torn or untrusted.
func (s *WALScanner) Offset() int64 { return s.offset }

// Next decodes the next record into rec. It returns io.EOF at a clean
// end of log and a descriptive error on malformed or invalid records; a
// torn final line (the crash interrupted the write) surfaces as such an
// error, and Offset still points at the end of the last whole record.
func (s *WALScanner) Next(rec *WALRecord) error {
	var line walLine
	if err := s.dec.Decode(&line); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("dataset: WAL record %d: %w", s.rec+1, err)
	}
	s.rec++
	switch {
	case line.Commit != nil:
		c := line.Commit
		if c.Mode != "s" && c.Mode != "b" && c.Mode != "x" {
			return fmt.Errorf("dataset: WAL record %d: unknown commit mode %q", s.rec, c.Mode)
		}
		if len(c.Cur) > MaxWALCursorLayers {
			return fmt.Errorf("dataset: WAL record %d: %d cursor layers exceed %d", s.rec, len(c.Cur), MaxWALCursorLayers)
		}
		for i, cur := range c.Cur {
			if len(cur) > MaxWALCursorVals {
				return fmt.Errorf("dataset: WAL record %d: cursor layer %d carries %d values, limit %d", s.rec, i, len(cur), MaxWALCursorVals)
			}
		}
		rec.Kind = WALCommitRecord
		rec.Commit = WALCommit{Seq: c.Seq, Batch: c.Mode == "b", Skip: c.Mode == "x", Steps: c.Steps, Draws: c.Draws, Cursors: c.Cur}
	case line.WAL != nil:
		if *line.WAL != WALVersion {
			return fmt.Errorf("%w: %d, this build reads %d", ErrWALVersion, *line.WAL, WALVersion)
		}
		if line.Seq == nil {
			return fmt.Errorf("dataset: WAL record %d: header missing seq", s.rec)
		}
		rec.Kind = WALHeaderRecord
		rec.Base = *line.Seq
	case line.T != nil || line.I != nil || line.J != nil || line.V != nil:
		if line.T == nil || line.I == nil || line.J == nil || line.V == nil {
			return fmt.Errorf("dataset: WAL record %d: incomplete measurement", s.rec)
		}
		if *line.I < 0 || *line.J < 0 {
			return fmt.Errorf("dataset: WAL record %d: negative node id (%d,%d)", s.rec, *line.I, *line.J)
		}
		if *line.I == *line.J {
			return fmt.Errorf("dataset: WAL record %d: self-pair %d", s.rec, *line.I)
		}
		if math.IsNaN(*line.T) || math.IsInf(*line.T, 0) || math.IsNaN(*line.V) || math.IsInf(*line.V, 0) {
			return fmt.Errorf("dataset: WAL record %d: non-finite time or value", s.rec)
		}
		rec.Kind = WALMeasurementRecord
		rec.M = Measurement{T: *line.T, I: *line.I, J: *line.J, Value: *line.V}
	default:
		return fmt.Errorf("dataset: WAL record %d: unrecognized record shape", s.rec)
	}
	s.offset = s.dec.InputOffset()
	return nil
}
