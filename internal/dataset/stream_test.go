package dataset

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	in := []Measurement{
		{T: 0.125, I: 0, J: 1, Value: 42.875},
		{T: 1.5, I: 7, J: 3, Value: 1.0 / 3.0}, // not representable in decimal
		{T: 2.25, I: 3, J: 9, Value: 1e-12},
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for k := range in {
		if in[k] != out[k] {
			t.Errorf("record %d: %+v != %+v (NDJSON must round-trip float64 exactly)", k, in[k], out[k])
		}
	}
}

func TestStreamScannerErrors(t *testing.T) {
	cases := map[string]string{
		"negative id": `{"t":1,"i":-1,"j":0,"v":2}`,
		"self pair":   `{"t":1,"i":3,"j":3,"v":2}`,
		"bad json":    `{"t":1,`,
		"non-finite":  `{"t":1e999,"i":0,"j":1,"v":2}`,
	}
	for name, data := range cases {
		sc := NewStreamScanner(strings.NewReader(data))
		var m Measurement
		if err := sc.Next(&m); err == nil || err == io.EOF {
			t.Errorf("%s: err = %v, want a validation error", name, err)
		}
	}
	// A valid prefix is delivered before the error surfaces.
	sc := NewStreamScanner(strings.NewReader(
		`{"t":1,"i":0,"j":1,"v":2}` + "\n" + `{"t":2,"i":5,"j":5,"v":2}`))
	var m Measurement
	if err := sc.Next(&m); err != nil || m.I != 0 || m.J != 1 {
		t.Fatalf("first record: %+v, %v", m, err)
	}
	if err := sc.Next(&m); err == nil {
		t.Fatal("invalid second record accepted")
	}
}

func TestReadTraceRejectsInvalidRecords(t *testing.T) {
	for name, data := range map[string]string{
		"negative src": "0.5,-1,1,42\n",
		"negative dst": "0.5,1,-2,42\n",
		"self pair":    "0.5,3,3,42\n",
		"nan time":     "nan,0,1,42\n",
		"inf value":    "0.5,0,1,1e999\n",
	} {
		if _, err := ReadTrace(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
