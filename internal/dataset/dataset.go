// Package dataset provides the three evaluation datasets of the paper in
// synthetic form, plus loaders for externally supplied matrices.
//
// The paper evaluates on publicly distributed measurement sets that are not
// shipped with this repository (see DESIGN.md §4 for the substitution
// rationale):
//
//   - Harvard: 2,492,546 dynamic application-level RTTs with timestamps
//     between 226 Azureus clients over 4 hours.
//   - Meridian: static RTTs between 2500 nodes from the Meridian project.
//   - HP-S3: available-bandwidth measurements between 459 nodes collected
//     with pathchirp; the paper extracts a dense 231-node subset with 4%
//     missing entries.
//
// The generators here reproduce the statistical structure those datasets
// contribute to the experiments: low effective rank from shared
// infrastructure (clusters for RTT, shared tree bottlenecks for ABW),
// realistic value ranges (medians near the paper's Table 1), measurement
// noise, asymmetry for ABW, dynamics for Harvard.
package dataset

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/mat"
)

// Metric is the performance metric a dataset measures (§3.1).
type Metric uint8

const (
	// RTT is round-trip time in milliseconds. Symmetric, measured by the
	// sender, "good" means small.
	RTT Metric = iota
	// ABW is available bandwidth in Mbit/s. Asymmetric, inferred by the
	// target, "good" means large.
	ABW
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case RTT:
		return "rtt"
	case ABW:
		return "abw"
	default:
		return fmt.Sprintf("dataset.Metric(%d)", uint8(m))
	}
}

// Unit returns the measurement unit of the metric.
func (m Metric) Unit() string {
	switch m {
	case RTT:
		return "ms"
	case ABW:
		return "Mbps"
	default:
		return "?"
	}
}

// GoodIsLow reports whether smaller metric values are better. RTT: yes
// (short delay); ABW: no (more bandwidth).
func (m Metric) GoodIsLow() bool { return m == RTT }

// Symmetric reports whether the metric is treated as symmetric
// (xᵢⱼ = xⱼᵢ). The paper treats RTT as symmetric (§3.1.1) and ABW as
// asymmetric (§3.1.2).
func (m Metric) Symmetric() bool { return m == RTT }

// Dataset is a ground-truth pairwise performance matrix plus the metadata
// the experiments need.
type Dataset struct {
	// Name identifies the dataset ("harvard", "meridian", "hp-s3", or the
	// name given by a loader).
	Name string
	// Metric is the measured quantity.
	Metric Metric
	// Matrix is the n×n ground truth. Diagonal entries are NaN (a node does
	// not probe itself); other entries may be NaN where the source data had
	// holes (HP-S3: 4%).
	Matrix *mat.Dense
	// DefaultK is the paper's default neighbor count for this dataset
	// (§6.2.2): 10 for Harvard, 32 for Meridian, 10 for HP-S3.
	DefaultK int
	// Trace carries timestamped dynamic measurements for datasets that have
	// them (Harvard). Nil for static datasets. Measurements are sorted by
	// time; Matrix then holds the per-pair medians, which §6.1 uses as the
	// ground truth.
	Trace []Measurement
}

// Measurement is one timestamped directed measurement from a dynamic trace.
type Measurement struct {
	// T is the measurement time as an offset from the trace start, seconds.
	T float64
	// I is the observing node and J the probed node.
	I, J int
	// Value is the measured metric quantity.
	Value float64
}

// N returns the number of nodes.
func (d *Dataset) N() int { return d.Matrix.Rows() }

// Values returns all present off-diagonal ground-truth values.
func (d *Dataset) Values() []float64 { return d.Matrix.PresentOffDiag() }

// Median returns the dataset median, the paper's default classification
// threshold τ.
func (d *Dataset) Median() float64 { return mat.Median(d.Values()) }

// TauForGoodPortion returns the classification threshold τ that labels the
// given fraction (0..1) of paths "good". For RTT, good paths are those with
// value ≤ τ, so τ is the portion-quantile; for ABW, good paths have value
// ≥ τ, so τ is the (1−portion)-quantile. This is how Table 1 is generated.
func (d *Dataset) TauForGoodPortion(portion float64) float64 {
	if portion <= 0 || portion >= 1 {
		panic(fmt.Sprintf("dataset: portion %v out of (0,1)", portion))
	}
	vals := d.Values()
	if d.Metric.GoodIsLow() {
		return mat.Percentile(vals, portion*100)
	}
	return mat.Percentile(vals, (1-portion)*100)
}

// GoodPortion returns the fraction of paths labelled "good" by threshold
// tau under this dataset's metric polarity.
func (d *Dataset) GoodPortion(tau float64) float64 {
	vals := d.Values()
	if len(vals) == 0 {
		return 0
	}
	var good int
	for _, v := range vals {
		if IsGood(d.Metric, v, tau) {
			good++
		}
	}
	return float64(good) / float64(len(vals))
}

// IsGood reports whether a metric value counts as "good" under threshold
// tau: RTT ≤ τ or ABW ≥ τ (§3.2).
func IsGood(m Metric, value, tau float64) bool {
	if m.GoodIsLow() {
		return value <= tau
	}
	return value >= tau
}

// rngFor derives a deterministic rand.Rand from a seed, used by all
// generators so every experiment is reproducible.
func rngFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
