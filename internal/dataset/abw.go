package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"dmfsgd/internal/mat"
)

// HPS3Config parameterizes the HP-S3-like available-bandwidth dataset.
type HPS3Config struct {
	// N is the node count (paper: dense 231-node extraction).
	N int
	// MissingFraction is the fraction of off-diagonal entries masked as
	// unmeasured (paper: 4%).
	MissingFraction float64
	// NoiseSigma is the lognormal measurement noise of the pathchirp-style
	// estimator.
	NoiseSigma float64
	// Seed drives all randomness.
	Seed int64
}

// HPS3 generates the HP-S3-like dataset: pairwise available bandwidth in
// Mbit/s between hosts attached to a capacity-weighted random tree.
//
// The generative model follows the observation (Ramasubramanian et al.,
// SIGMETRICS 2009 — reference [16] of the paper) that Internet bandwidth is
// well approximated by a tree metric: ABW(i,j) is the minimum available
// bandwidth over the links of the unique tree path between i and j. Shared
// links induce exactly the inter-path correlations that make the ABW matrix
// low-rank (paper Fig. 1). Directional utilization makes the matrix
// asymmetric, as pathchirp measurements are (§3.1.2).
func HPS3(cfg HPS3Config) *Dataset {
	if cfg.N == 0 {
		cfg.N = 231
	}
	if cfg.MissingFraction == 0 {
		cfg.MissingFraction = 0.04
	}
	if cfg.NoiseSigma == 0 {
		cfg.NoiseSigma = 0.08
	}
	if cfg.N < 2 {
		panic(fmt.Sprintf("dataset: HPS3 needs at least 2 nodes, got %d", cfg.N))
	}
	rng := rngFor(cfg.Seed)
	tree := buildBandwidthTree(cfg.N, rng)
	m := tree.pairwiseABW(cfg, rng)
	return &Dataset{
		Name:     "hp-s3",
		Metric:   ABW,
		Matrix:   m,
		DefaultK: 10,
	}
}

// bwTree is a rooted tree whose leaves are hosts. Each non-root vertex has
// an uplink with a capacity and per-direction utilizations.
type bwTree struct {
	parent []int // parent[v] = parent vertex, -1 for root
	// upAvail[v] / downAvail[v]: available bandwidth on the link from v to
	// parent(v), in the v→parent and parent→v directions.
	upAvail   []float64
	downAvail []float64
	leaves    []int // vertex id of each host
	depth     []int
}

// capacity tiers, Mbit/s. Interior links (aggregation, core) are faster than
// access links; available bandwidth is capacity × (1 − utilization).
var (
	accessCapacities = []float64{20, 45, 100, 155, 250}
	accessWeights    = []float64{0.1, 0.2, 0.3, 0.3, 0.1}
	coreCapacities   = []float64{155, 622, 1000, 2500}
	coreWeights      = []float64{0.25, 0.35, 0.3, 0.1}
)

func pickWeighted(vals, weights []float64, rng *rand.Rand) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if r < w {
			return vals[i]
		}
		r -= w
	}
	return vals[len(vals)-1]
}

// buildBandwidthTree grows a random hierarchy: a root, a layer of core
// switches, a layer of aggregation nodes, and host leaves attached with
// preferential randomness (some aggregations serve many hosts). The depth
// and fan-out are randomized so paths share varying numbers of links.
func buildBandwidthTree(nHosts int, rng *rand.Rand) *bwTree {
	t := &bwTree{}
	add := func(parent int) int {
		id := len(t.parent)
		t.parent = append(t.parent, parent)
		t.upAvail = append(t.upAvail, 0)
		t.downAvail = append(t.downAvail, 0)
		if parent < 0 {
			t.depth = append(t.depth, 0)
		} else {
			t.depth = append(t.depth, t.depth[parent]+1)
		}
		return id
	}
	root := add(-1)

	nCore := 2 + rng.Intn(3) // 2..4 core switches
	cores := make([]int, nCore)
	for i := range cores {
		cores[i] = add(root)
	}
	nAgg := nHosts/12 + 2
	aggs := make([]int, nAgg)
	for i := range aggs {
		aggs[i] = add(cores[rng.Intn(nCore)])
	}
	for h := 0; h < nHosts; h++ {
		// Preferential-ish: square the random index distribution so a few
		// aggregation nodes are crowded (shared bottlenecks).
		idx := int(math.Pow(rng.Float64(), 1.6) * float64(nAgg))
		if idx >= nAgg {
			idx = nAgg - 1
		}
		leaf := add(aggs[idx])
		t.leaves = append(t.leaves, leaf)
	}

	// Assign capacities and utilizations. Leaf uplinks are access links;
	// everything else is core/aggregation.
	for v := 1; v < len(t.parent); v++ {
		isLeaf := t.depth[v] == 3
		var capacity float64
		if isLeaf {
			capacity = pickWeighted(accessCapacities, accessWeights, rng)
		} else {
			capacity = pickWeighted(coreCapacities, coreWeights, rng)
		}
		// Utilization per direction: concentrated mid-range with occasional
		// near-saturated links; busy links leave little headroom.
		t.upAvail[v] = capacity * availFraction(rng)
		t.downAvail[v] = capacity * availFraction(rng)
	}
	return t
}

// availFraction draws the available fraction of a link's capacity,
// uniform over a busy-but-usable band with occasional congested links that
// become shared bottlenecks.
func availFraction(rng *rand.Rand) float64 {
	if rng.Float64() < 0.05 { // congested link
		return 0.03 + 0.10*rng.Float64()
	}
	return 0.25 + 0.65*rng.Float64()
}

// pairwiseABW computes the directed bottleneck available bandwidth between
// every pair of hosts, with measurement noise and missing entries.
func (t *bwTree) pairwiseABW(cfg HPS3Config, rng *rand.Rand) *mat.Dense {
	n := len(t.leaves)
	m := mat.NewMissing(n, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			abw := t.pathABW(t.leaves[a], t.leaves[b])
			// pathchirp-style noise: lognormal, mild.
			if cfg.NoiseSigma > 0 {
				abw *= math.Exp(rng.NormFloat64()*cfg.NoiseSigma - cfg.NoiseSigma*cfg.NoiseSigma/2)
			}
			if abw < 0.1 {
				abw = 0.1
			}
			m.Set(a, b, abw)
		}
	}
	// Mask MissingFraction of the off-diagonal entries.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && rng.Float64() < cfg.MissingFraction {
				m.SetMissing(a, b)
			}
		}
	}
	return m
}

// pathABW walks the tree path src→dst and returns the minimum directional
// available bandwidth. Uplinks of the source side are traversed upward;
// downlinks of the destination side downward.
func (t *bwTree) pathABW(src, dst int) float64 {
	// Climb both vertices to their common ancestor, tracking the minimum.
	min := math.Inf(1)
	a, b := src, dst
	for t.depth[a] > t.depth[b] {
		if t.upAvail[a] < min {
			min = t.upAvail[a]
		}
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		if t.downAvail[b] < min {
			min = t.downAvail[b]
		}
		b = t.parent[b]
	}
	for a != b {
		if t.upAvail[a] < min {
			min = t.upAvail[a]
		}
		if t.downAvail[b] < min {
			min = t.downAvail[b]
		}
		a = t.parent[a]
		b = t.parent[b]
	}
	return min
}
