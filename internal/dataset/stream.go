package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// streamRecord is the NDJSON shape of one measurement: one JSON object
// per line, {"t":1.5,"i":3,"j":7,"v":42.1}. The format is the capture /
// replay interchange for measurement streams (cmd/datagen -stream,
// live-swarm captures): unlike the CSV trace format it round-trips
// float64 values exactly and is consumed record by record, so a stream
// can be replayed without materializing it.
type streamRecord struct {
	T float64 `json:"t"`
	I int     `json:"i"`
	J int     `json:"j"`
	V float64 `json:"v"`
}

// WriteStream writes measurements as NDJSON, one record per line, in
// slice order (streams are replayed in file order — writers should emit
// time-ordered measurements).
func WriteStream(w io.Writer, ms []Measurement) error {
	enc := json.NewEncoder(w)
	for i := range ms {
		if err := enc.Encode(streamRecord{T: ms[i].T, I: ms[i].I, J: ms[i].J, V: ms[i].Value}); err != nil {
			return err
		}
	}
	return nil
}

// StreamScanner reads an NDJSON measurement stream record by record
// without buffering the whole stream, validating each record as it is
// decoded. Malformed input yields an error naming the record, never a
// panic or an attacker-sized allocation.
type StreamScanner struct {
	dec *json.Decoder
	rec int
}

// NewStreamScanner wraps r for record-at-a-time reading.
func NewStreamScanner(r io.Reader) *StreamScanner {
	return &StreamScanner{dec: json.NewDecoder(r)}
}

// Next decodes the next record into m. It returns io.EOF at a clean end
// of stream and a descriptive error on malformed or invalid records
// (negative node ids, a self-pair, non-finite time or value).
func (s *StreamScanner) Next(m *Measurement) error {
	var rec streamRecord
	if err := s.dec.Decode(&rec); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("dataset: stream record %d: %w", s.rec+1, err)
	}
	s.rec++
	if rec.I < 0 || rec.J < 0 {
		return fmt.Errorf("dataset: stream record %d: negative node id (%d,%d)", s.rec, rec.I, rec.J)
	}
	if rec.I == rec.J {
		return fmt.Errorf("dataset: stream record %d: self-pair %d", s.rec, rec.I)
	}
	if math.IsNaN(rec.T) || math.IsInf(rec.T, 0) || math.IsNaN(rec.V) || math.IsInf(rec.V, 0) {
		return fmt.Errorf("dataset: stream record %d: non-finite time or value", s.rec)
	}
	m.T, m.I, m.J, m.Value = rec.T, rec.I, rec.J, rec.V
	return nil
}

// ReadStream materializes a whole NDJSON stream. Replay paths should
// prefer StreamScanner, which does not hold the stream in memory; this
// is the convenience form for tools and tests.
func ReadStream(r io.Reader) ([]Measurement, error) {
	sc := NewStreamScanner(r)
	var out []Measurement
	for {
		var m Measurement
		err := sc.Next(&m)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
}
