package dataset

import (
	"math"
	"math/rand"
	"sort"
)

// generateTrace emits a timestamped stream of application-level RTT
// measurements over the base matrix, reproducing the properties of the
// Harvard trace that matter to the experiments (§6.1 and footnote 4):
//
//   - measurements are passive, so pairs are probed with uneven
//     frequencies: each node gets a Zipf-like activity weight and pairs are
//     sampled proportionally to the product of endpoint activities;
//   - per-pair values fluctuate around a stable long-term level: an AR(1)
//     jitter process modulates the base RTT, plus occasional queueing
//     spikes (heavy-tailed bursts);
//   - timestamps are uniform over the trace duration, sorted.
//
// The per-pair median of the emitted stream is therefore close to (but not
// identical to) the base matrix, just as the paper's ground-truth matrix is
// a median extraction from noisy streams.
func generateTrace(base interface {
	Rows() int
	At(i, j int) float64
}, cfg HarvardConfig, rng *rand.Rand) []Measurement {
	n := base.Rows()
	// Node activity: Zipf-ish weights, shuffled so node IDs carry no order.
	activity := make([]float64, n)
	for i := range activity {
		activity[i] = 1 / math.Sqrt(float64(i+1))
	}
	rng.Shuffle(n, func(i, j int) { activity[i], activity[j] = activity[j], activity[i] })
	cum := make([]float64, n)
	var total float64
	for i, a := range activity {
		total += a
		cum[i] = total
	}
	pick := func() int {
		r := rng.Float64() * total
		idx := sort.SearchFloat64s(cum, r)
		if idx >= n {
			idx = n - 1
		}
		return idx
	}

	// AR(1) jitter state per pair, created lazily.
	type pairState struct{ jitter float64 }
	states := make(map[[2]int]*pairState)
	const (
		arCoeff   = 0.85 // temporal correlation of jitter
		jitterStd = 0.07 // stationary std of multiplicative log-jitter
		spikeProb = 0.01 // probability of a queueing burst
		spikeMean = 2.0  // mean burst multiplier minus one
	)
	innovStd := jitterStd * math.Sqrt(1-arCoeff*arCoeff)

	trace := make([]Measurement, 0, cfg.Measurements)
	for len(trace) < cfg.Measurements {
		i := pick()
		j := pick()
		if i == j {
			continue
		}
		key := [2]int{i, j}
		st := states[key]
		if st == nil {
			st = &pairState{jitter: rng.NormFloat64() * jitterStd}
			states[key] = st
		}
		st.jitter = arCoeff*st.jitter + rng.NormFloat64()*innovStd
		v := base.At(i, j) * math.Exp(st.jitter)
		if rng.Float64() < spikeProb {
			v *= 1 + rng.ExpFloat64()*spikeMean
		}
		trace = append(trace, Measurement{
			T:     rng.Float64() * cfg.Duration,
			I:     i,
			J:     j,
			Value: v,
		})
	}
	sort.Slice(trace, func(a, b int) bool { return trace[a].T < trace[b].T })
	return trace
}
