package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Fuzz targets for the text loaders, mirroring internal/wire's fuzz
// style: parsers must never panic or over-allocate on arbitrary input,
// and successfully parsed data must re-encode to a form that parses
// back to the same measurements. `go test` runs the seed corpus; the CI
// fuzz smoke job explores further with -fuzz.

func FuzzReadMatrix(f *testing.F) {
	var buf bytes.Buffer
	m := GenerateRTTMatrix(RTTConfig{N: 4, Clusters: 2, Dim: 2, Spread: 50, Jitter: 3, HeightMean: 2, MinRTT: 0.5, Seed: 1})
	if err := WriteMatrix(&buf, m); err != nil {
		f.Fatal(err)
	}
	for _, seed := range []string{
		buf.String(),
		"1 2\n3 4\n",
		"nan 2\n-1 4\n",
		"# comment\n\n1 2\n3 nan\n",
		"1 2\n3\n",
		"1e999 2\n3 4\n",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadMatrix(strings.NewReader(data))
		if err != nil {
			return
		}
		// Parsed OK: the canonical form must parse back identically.
		var out bytes.Buffer
		if err := WriteMatrix(&out, m); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		m2, err := ReadMatrix(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("canonical form unparsable: %v", err)
		}
		if m.Rows() != m2.Rows() || m.Cols() != m2.Cols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", m.Rows(), m.Cols(), m2.Rows(), m2.Cols())
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				a, b := m.At(i, j), m2.At(i, j)
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("round trip changed (%d,%d): %v -> %v", i, j, a, b)
				}
			}
		}
	})
}

func FuzzReadTrace(f *testing.F) {
	for _, seed := range []string{
		"0.5,0,1,42.0\n1.5,1,0,43.0\n",
		"# header\n0.000001,3,7,132.5\n",
		"0.5,0,1\n",
		"0.5,-1,1,42.0\n",
		"0.5,0,0,42.0\n",
		"nan,0,1,42.0\n",
		"0.5,0,1,1e999\n",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		trace, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		for k, m := range trace {
			if m.I < 0 || m.J < 0 || m.I == m.J {
				t.Fatalf("record %d: invalid pair (%d,%d) survived validation", k, m.I, m.J)
			}
			if math.IsNaN(m.T) || math.IsNaN(m.Value) {
				t.Fatalf("record %d: non-finite field survived validation", k)
			}
			if k > 0 && trace[k].T < trace[k-1].T {
				t.Fatalf("record %d: trace not time-sorted", k)
			}
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, trace); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		trace2, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("canonical form unparsable: %v", err)
		}
		if len(trace2) != len(trace) {
			t.Fatalf("round trip changed length: %d -> %d", len(trace), len(trace2))
		}
	})
}

func FuzzReadWAL(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteWALHeader(&buf, 3)
	_ = WriteStream(&buf, []Measurement{{T: 0.5, I: 0, J: 1, Value: 42}})
	_ = WriteWALCommit(&buf, WALCommit{Seq: 4, Batch: true, Steps: 10, Draws: 20, Cursors: [][]uint64{{1}, {}}})
	for _, seed := range []string{
		buf.String(),
		`{"wal":1,"seq":0}`,
		`{"wal":99,"seq":0}`,
		`{"commit":{"seq":1,"mode":"s","steps":2,"draws":3}}`,
		`{"commit":{"seq":1,"mode":"b","cur":[[1,2],[3]]}}`,
		`{"t":1,"i":0,"j":1,"v":2}`,
		`{"t":1,"i":0,"v":2}`,
		"not json",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		sc := NewWALScanner(strings.NewReader(data))
		prev := int64(0)
		for {
			var rec WALRecord
			err := sc.Next(&rec)
			if err != nil {
				// Clean EOF or a descriptive error; either way Offset must
				// still mark the end of the last whole record.
				if sc.Offset() < prev || sc.Offset() > int64(len(data)) {
					t.Fatalf("offset %d out of [%d,%d]", sc.Offset(), prev, len(data))
				}
				return
			}
			if sc.Offset() < prev {
				t.Fatalf("offset went backwards: %d -> %d", prev, sc.Offset())
			}
			prev = sc.Offset()
			switch rec.Kind {
			case WALMeasurementRecord:
				if rec.M.I < 0 || rec.M.J < 0 || rec.M.I == rec.M.J ||
					math.IsNaN(rec.M.T) || math.IsNaN(rec.M.Value) {
					t.Fatalf("invalid measurement survived validation: %+v", rec.M)
				}
			case WALCommitRecord:
				if len(rec.Commit.Cursors) > MaxWALCursorLayers {
					t.Fatalf("oversized cursor set survived validation")
				}
				// Accepted commits must re-encode and re-parse identically.
				var out bytes.Buffer
				if err := WriteWALCommit(&out, rec.Commit); err != nil {
					t.Fatalf("re-encode failed: %v", err)
				}
			case WALHeaderRecord:
			default:
				t.Fatalf("unknown record kind %d", rec.Kind)
			}
		}
	})
}

func FuzzReadStream(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteStream(&buf, []Measurement{{T: 0.5, I: 0, J: 1, Value: 42}, {T: 1.5, I: 3, J: 7, Value: 132.25}})
	for _, seed := range []string{
		buf.String(),
		`{"t":1,"i":0,"j":1,"v":2}`,
		`{"t":1,"i":-1,"j":1,"v":2}`,
		`{"t":1,"i":2,"j":2,"v":2}`,
		`{"t":null,"i":0,"j":1,"v":2}`,
		`{"t":1,"i":0,"j":1,"v":2}{"t":2,"i":1,"j":0,"v":3}`,
		"not json",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		ms, err := ReadStream(strings.NewReader(data))
		if err != nil {
			return
		}
		for k, m := range ms {
			if m.I < 0 || m.J < 0 || m.I == m.J {
				t.Fatalf("record %d: invalid pair (%d,%d) survived validation", k, m.I, m.J)
			}
		}
		// NDJSON round-trips float64 exactly: re-encode, re-parse, compare.
		var out bytes.Buffer
		if err := WriteStream(&out, ms); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		ms2, err := ReadStream(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("canonical form unparsable: %v", err)
		}
		if len(ms2) != len(ms) {
			t.Fatalf("round trip changed length: %d -> %d", len(ms), len(ms2))
		}
		for k := range ms {
			if ms[k] != ms2[k] {
				t.Fatalf("round trip changed record %d: %+v -> %+v", k, ms[k], ms2[k])
			}
		}
	})
}
