package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dmfsgd/internal/mat"
	"dmfsgd/internal/svd"
)

func TestMetricProperties(t *testing.T) {
	if !RTT.GoodIsLow() || ABW.GoodIsLow() {
		t.Error("polarity wrong: RTT good=low, ABW good=high")
	}
	if !RTT.Symmetric() || ABW.Symmetric() {
		t.Error("symmetry wrong: RTT symmetric, ABW asymmetric")
	}
	if RTT.String() != "rtt" || ABW.String() != "abw" {
		t.Error("metric names")
	}
	if RTT.Unit() != "ms" || ABW.Unit() != "Mbps" {
		t.Error("metric units")
	}
}

func TestIsGood(t *testing.T) {
	tests := []struct {
		m          Metric
		value, tau float64
		want       bool
	}{
		{RTT, 50, 100, true},
		{RTT, 150, 100, false},
		{RTT, 100, 100, true}, // boundary counts as good for RTT
		{ABW, 50, 40, true},
		{ABW, 30, 40, false},
		{ABW, 40, 40, true},
	}
	for _, tt := range tests {
		if got := IsGood(tt.m, tt.value, tt.tau); got != tt.want {
			t.Errorf("IsGood(%v, %v, %v) = %v, want %v", tt.m, tt.value, tt.tau, got, tt.want)
		}
	}
}

func TestGenerateRTTMatrixBasics(t *testing.T) {
	cfg := RTTConfig{N: 40, Clusters: 4, Dim: 5, Spread: 100, Jitter: 5, HeightMean: 5, NoiseSigma: 0.1, MinRTT: 0.5, Seed: 1}
	m := GenerateRTTMatrix(cfg)
	if m.Rows() != 40 || m.Cols() != 40 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 40; i++ {
		if !m.IsMissing(i, i) {
			t.Fatal("diagonal must be missing")
		}
		for j := 0; j < 40; j++ {
			if i == j {
				continue
			}
			v := m.At(i, j)
			if math.IsNaN(v) || v < cfg.MinRTT {
				t.Fatalf("entry (%d,%d) = %v invalid", i, j, v)
			}
			if v != m.At(j, i) {
				t.Fatalf("RTT matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGenerateRTTMatrixDeterministic(t *testing.T) {
	cfg := RTTConfig{N: 20, Clusters: 3, Dim: 4, Spread: 80, Jitter: 5, HeightMean: 5, NoiseSigma: 0.1, MinRTT: 0.5, Seed: 42}
	a := GenerateRTTMatrix(cfg)
	b := GenerateRTTMatrix(cfg)
	for i := range a.Data() {
		av, bv := a.Data()[i], b.Data()[i]
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			t.Fatal("same seed must give identical matrices")
		}
	}
	cfg.Seed = 43
	c := GenerateRTTMatrix(cfg)
	diff := false
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] && !math.IsNaN(a.Data()[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should give different matrices")
	}
}

func TestRTTConfigValidate(t *testing.T) {
	good := RTTConfig{N: 10, Clusters: 2, Dim: 3, Spread: 10, Jitter: 1, HeightMean: 1, NoiseSigma: 0.1, MinRTT: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []RTTConfig{
		{N: 1, Clusters: 1, Dim: 1, Spread: 1},
		{N: 10, Clusters: 0, Dim: 1, Spread: 1},
		{N: 10, Clusters: 11, Dim: 1, Spread: 1},
		{N: 10, Clusters: 2, Dim: 0, Spread: 1},
		{N: 10, Clusters: 2, Dim: 1, Spread: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMeridianShape(t *testing.T) {
	d := Meridian(MeridianConfig{N: 120, Seed: 7})
	if d.Name != "meridian" || d.Metric != RTT || d.DefaultK != 32 {
		t.Errorf("metadata: %+v", d)
	}
	if d.N() != 120 {
		t.Errorf("N = %d", d.N())
	}
	med := d.Median()
	// The real Meridian median is 56.4 ms; the generator should land in a
	// plausible wide-area band.
	if med < 20 || med > 150 {
		t.Errorf("median RTT = %v ms, outside plausible band", med)
	}
	if d.Trace != nil {
		t.Error("Meridian is static, should have no trace")
	}
}

func TestMeridianLowRank(t *testing.T) {
	// The core premise of the paper (Fig 1): the RTT matrix has low
	// effective rank. Check that few singular values capture >=95% of the
	// Frobenius energy on a 100-node instance (diagonal imputed).
	d := Meridian(MeridianConfig{N: 100, Seed: 3})
	dense := imputeColumnMedian(d.Matrix)
	sv := svd.Values(dense)
	if r := svd.EffectiveRank(sv, 0.95); r > 20 {
		t.Errorf("RTT effective rank (95%% energy) = %d of 100; expected low-rank structure", r)
	}
}

func TestHarvardTrace(t *testing.T) {
	d := Harvard(HarvardConfig{N: 40, Measurements: 20000, Duration: 3600, Seed: 5})
	if d.Name != "harvard" || d.Metric != RTT || d.DefaultK != 10 {
		t.Errorf("metadata: %+v", d)
	}
	if len(d.Trace) != 20000 {
		t.Fatalf("trace length = %d", len(d.Trace))
	}
	prev := -1.0
	for idx, m := range d.Trace {
		if m.T < prev {
			t.Fatalf("trace not sorted at %d", idx)
		}
		prev = m.T
		if m.T < 0 || m.T > 3600 {
			t.Fatalf("timestamp %v outside duration", m.T)
		}
		if m.I == m.J || m.I < 0 || m.I >= 40 || m.J < 0 || m.J >= 40 {
			t.Fatalf("bad endpoints (%d,%d)", m.I, m.J)
		}
		if m.Value <= 0 || math.IsNaN(m.Value) {
			t.Fatalf("bad value %v", m.Value)
		}
	}
	// Ground truth must be dense off-diagonal and symmetric.
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			if i == j {
				if !d.Matrix.IsMissing(i, j) {
					t.Fatal("diagonal should be missing")
				}
				continue
			}
			if d.Matrix.IsMissing(i, j) {
				t.Fatalf("ground truth missing at (%d,%d)", i, j)
			}
			if d.Matrix.At(i, j) != d.Matrix.At(j, i) {
				t.Fatalf("ground truth not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestHarvardUnevenFrequencies(t *testing.T) {
	// Footnote 4: Harvard pairs are probed with uneven frequencies. The
	// busiest node must see many more measurements than the quietest.
	d := Harvard(HarvardConfig{N: 30, Measurements: 30000, Duration: 3600, Seed: 9})
	count := make([]int, 30)
	for _, m := range d.Trace {
		count[m.I]++
	}
	min, max := count[0], count[0]
	for _, c := range count {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 3*min {
		t.Errorf("activity skew too small: min=%d max=%d", min, max)
	}
}

func TestHPS3Shape(t *testing.T) {
	d := HPS3(HPS3Config{N: 60, Seed: 11})
	if d.Name != "hp-s3" || d.Metric != ABW || d.DefaultK != 10 {
		t.Errorf("metadata: %+v", d)
	}
	if d.N() != 60 {
		t.Errorf("N = %d", d.N())
	}
	frac := d.Matrix.MissingFraction()
	if frac < 0.01 || frac > 0.08 {
		t.Errorf("missing fraction = %v, want ≈0.04", frac)
	}
	vals := d.Values()
	med := mat.Median(vals)
	// Real HP-S3 median is 43 Mbps; accept a plausible band.
	if med < 10 || med > 120 {
		t.Errorf("median ABW = %v Mbps, outside plausible band", med)
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("non-positive ABW %v", v)
		}
	}
}

func TestHPS3Asymmetric(t *testing.T) {
	d := HPS3(HPS3Config{N: 40, Seed: 13})
	asym := 0
	total := 0
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if d.Matrix.IsMissing(i, j) || d.Matrix.IsMissing(j, i) {
				continue
			}
			total++
			if math.Abs(d.Matrix.At(i, j)-d.Matrix.At(j, i)) > 1e-9 {
				asym++
			}
		}
	}
	if total == 0 || float64(asym)/float64(total) < 0.5 {
		t.Errorf("ABW should be asymmetric: %d/%d pairs differ", asym, total)
	}
}

func TestHPS3SharedBottleneckCorrelation(t *testing.T) {
	// Tree structure implies: if i and j hang off the same congested
	// aggregation link, their ABW to any remote node is similar. Weak
	// global check: the matrix has low effective rank.
	d := HPS3(HPS3Config{N: 50, NoiseSigma: 0.01, Seed: 17})
	dense := imputeColumnMedian(d.Matrix)
	sv := svd.Values(dense)
	r := svd.EffectiveRank(sv, 0.95)
	if r > 25 {
		t.Errorf("ABW effective rank (95%% energy) = %d of 50; expected low-rank structure", r)
	}
}

func TestTauForGoodPortionMatchesGoodPortion(t *testing.T) {
	for _, d := range []*Dataset{
		Meridian(MeridianConfig{N: 80, Seed: 19}),
		HPS3(HPS3Config{N: 80, Seed: 19}),
	} {
		for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90} {
			tau := d.TauForGoodPortion(p)
			got := d.GoodPortion(tau)
			if math.Abs(got-p) > 0.03 {
				t.Errorf("%s: portion %v -> tau %v -> portion %v", d.Name, p, tau, got)
			}
		}
		// Monotonicity of τ in the portion follows metric polarity.
		t10 := d.TauForGoodPortion(0.10)
		t90 := d.TauForGoodPortion(0.90)
		if d.Metric.GoodIsLow() && t10 >= t90 {
			t.Errorf("%s: RTT tau should grow with portion: %v vs %v", d.Name, t10, t90)
		}
		if !d.Metric.GoodIsLow() && t10 <= t90 {
			t.Errorf("%s: ABW tau should shrink with portion: %v vs %v", d.Name, t10, t90)
		}
	}
}

func TestTauForGoodPortionPanics(t *testing.T) {
	d := Meridian(MeridianConfig{N: 20, Seed: 1})
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("portion %v should panic", p)
				}
			}()
			d.TauForGoodPortion(p)
		}()
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	m := mat.NewMissing(3, 3)
	m.Set(0, 1, 1.5)
	m.Set(1, 0, 2.25)
	m.Set(2, 1, 100)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 3 || got.Cols() != 3 {
		t.Fatalf("dims %dx%d", got.Rows(), got.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a, b := m.At(i, j), got.At(i, j)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("(%d,%d): %v != %v", i, j, a, b)
			}
		}
	}
}

func TestReadMatrixFormats(t *testing.T) {
	in := "# comment line\n1 2 nan\n-1 5 6\n7 8 9\n"
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsMissing(0, 2) {
		t.Error("nan should parse as missing")
	}
	if !m.IsMissing(1, 0) {
		t.Error("negative should parse as missing (P2PSim convention)")
	}
	if m.At(2, 2) != 9 {
		t.Error("value parse")
	}
}

func TestReadMatrixErrors(t *testing.T) {
	cases := []string{
		"",           // empty
		"1 2\n3\n",   // ragged
		"1 x\n3 4\n", // unparsable
	}
	for i, in := range cases {
		if _, err := ReadMatrix(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	trace := []Measurement{
		{T: 0.5, I: 1, J: 2, Value: 10.25},
		{T: 1.5, I: 2, J: 0, Value: 99},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("length %d", len(got))
	}
	for i := range trace {
		if got[i].I != trace[i].I || got[i].J != trace[i].J ||
			math.Abs(got[i].T-trace[i].T) > 1e-6 ||
			math.Abs(got[i].Value-trace[i].Value) > 1e-6 {
			t.Errorf("record %d: %+v != %+v", i, got[i], trace[i])
		}
	}
}

func TestReadTraceSortsAndRejects(t *testing.T) {
	got, err := ReadTrace(strings.NewReader("5,0,1,10\n1,1,0,20\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].T != 1 {
		t.Error("ReadTrace should sort by time")
	}
	if _, err := ReadTrace(strings.NewReader("1,2,3\n")); err == nil {
		t.Error("short record should fail")
	}
	if _, err := ReadTrace(strings.NewReader("x,0,1,10\n")); err == nil {
		t.Error("bad time should fail")
	}
}

func TestFromMatrix(t *testing.T) {
	small := FromMatrix("x", RTT, mat.NewMissing(100, 100), 0)
	if small.DefaultK != 10 {
		t.Errorf("small defaultK = %d", small.DefaultK)
	}
	big := FromMatrix("y", RTT, mat.NewMissing(1500, 1500), 0)
	if big.DefaultK != 32 {
		t.Errorf("big defaultK = %d", big.DefaultK)
	}
	explicit := FromMatrix("z", ABW, mat.NewMissing(10, 10), 4)
	if explicit.DefaultK != 4 {
		t.Errorf("explicit defaultK = %d", explicit.DefaultK)
	}
}

// imputeColumnMedian fills missing entries with their column median —
// the same preprocessing the Figure-1 harness applies before SVD.
func imputeColumnMedian(m *mat.Dense) *mat.Dense {
	out := m.Clone()
	for j := 0; j < m.Cols(); j++ {
		var col []float64
		for i := 0; i < m.Rows(); i++ {
			if !m.IsMissing(i, j) {
				col = append(col, m.At(i, j))
			}
		}
		fill := 0.0
		if len(col) > 0 {
			fill = mat.Median(col)
		}
		for i := 0; i < m.Rows(); i++ {
			if out.IsMissing(i, j) {
				out.Set(i, j, fill)
			}
		}
	}
	return out
}

func TestPickWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := map[float64]int{}
	for i := 0; i < 10000; i++ {
		counts[pickWeighted([]float64{1, 2}, []float64{0.9, 0.1}, rng)]++
	}
	if counts[1] < 8500 || counts[1] > 9500 {
		t.Errorf("weighted pick skewed: %v", counts)
	}
}

func BenchmarkMeridianGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Meridian(MeridianConfig{N: 200, Seed: int64(i)})
	}
}

func BenchmarkHPS3Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = HPS3(HPS3Config{N: 100, Seed: int64(i)})
	}
}
