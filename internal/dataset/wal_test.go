package dataset

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
)

func scanAll(t *testing.T, data string) ([]WALRecord, *WALScanner, error) {
	t.Helper()
	sc := NewWALScanner(strings.NewReader(data))
	var out []WALRecord
	for {
		var rec WALRecord
		err := sc.Next(&rec)
		if err == io.EOF {
			return out, sc, nil
		}
		if err != nil {
			return out, sc, err
		}
		out = append(out, rec)
	}
}

func TestWALRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWALHeader(&buf, 7); err != nil {
		t.Fatal(err)
	}
	ms := []Measurement{{T: 0.5, I: 0, J: 1, Value: 42.25}, {T: 1.5, I: 3, J: 7, Value: -1}}
	if err := WriteStream(&buf, ms); err != nil {
		t.Fatal(err)
	}
	commit := WALCommit{Seq: 9, Batch: true, Steps: 100, Draws: 555, Cursors: [][]uint64{{3}, {1, 2}}}
	if err := WriteWALCommit(&buf, commit); err != nil {
		t.Fatal(err)
	}

	recs, _, err := scanAll(t, buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[0].Kind != WALHeaderRecord || recs[0].Base != 7 {
		t.Errorf("header: %+v", recs[0])
	}
	for k, m := range ms {
		if recs[1+k].Kind != WALMeasurementRecord || recs[1+k].M != m {
			t.Errorf("measurement %d: %+v", k, recs[1+k])
		}
	}
	got := recs[3]
	if got.Kind != WALCommitRecord || got.Commit.Seq != 9 || !got.Commit.Batch ||
		got.Commit.Steps != 100 || got.Commit.Draws != 555 ||
		len(got.Commit.Cursors) != 2 || got.Commit.Cursors[1][1] != 2 {
		t.Errorf("commit: %+v", got.Commit)
	}
}

func TestWALScannerRejectsBadRecords(t *testing.T) {
	for _, tc := range []struct{ name, data string }{
		{"future version", `{"wal":2,"seq":0}`},
		{"header without seq", `{"wal":1}`},
		{"incomplete measurement", `{"t":1,"i":0,"v":2}`},
		{"self pair", `{"t":1,"i":3,"j":3,"v":2}`},
		{"negative id", `{"t":1,"i":-1,"j":3,"v":2}`},
		{"non-finite", `{"t":null,"i":0,"j":3,"v":2}`},
		{"bad commit mode", `{"commit":{"seq":1,"mode":"q","steps":0,"draws":0}}`},
		{"unrecognized", `{"hello":1}`},
		{"garbage", "not json"},
	} {
		if _, _, err := scanAll(t, tc.data); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, _, err := scanAll(t, `{"wal":2,"seq":0}`); !errors.Is(err, ErrWALVersion) {
		t.Errorf("future version: %v, want ErrWALVersion", err)
	}
}

// TestWALTornTail: a crash mid-line leaves a partial record; the
// scanner surfaces it as an error while Offset still points at the end
// of the last whole record, so the tail can be truncated away.
func TestWALTornTail(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteWALHeader(&buf, 0)
	_ = WriteStream(&buf, []Measurement{{T: 1, I: 0, J: 1, Value: 2}})
	_ = WriteWALCommit(&buf, WALCommit{Seq: 1})
	whole := buf.Len()
	buf.WriteString(`{"t":2,"i":1,"j":0,"v`) // torn mid-write

	recs, sc, err := scanAll(t, buf.String())
	if err == nil {
		t.Fatal("torn tail scanned cleanly")
	}
	if len(recs) != 3 {
		t.Fatalf("got %d whole records, want 3", len(recs))
	}
	// Offset is just past the commit's JSON value (the trailing newline
	// may or may not be consumed); truncating there keeps every whole
	// record and drops the torn bytes.
	if sc.Offset() < int64(whole-1) || sc.Offset() > int64(whole) {
		t.Errorf("offset %d, want ~%d", sc.Offset(), whole)
	}
	recs2, _, err := scanAll(t, buf.String()[:sc.Offset()])
	if err != nil || len(recs2) != 3 {
		t.Errorf("truncated log: %d records, %v", len(recs2), err)
	}
}

// TestWALTornHeader pins resume behavior when a segment's very first
// line — the header — is the torn one: a zero-length segment (crash
// between file create and header write) is a clean empty log (io.EOF,
// no records), and a partial header line is a torn tail at offset 0.
// Either way the trusted prefix is empty, so segmented resume treats
// the segment as contributing nothing and drops it.
func TestWALTornHeader(t *testing.T) {
	recs, sc, err := scanAll(t, "")
	if err != nil || len(recs) != 0 {
		t.Errorf("zero-length segment: %d records, err=%v; want clean empty", len(recs), err)
	}
	if sc.Offset() != 0 {
		t.Errorf("zero-length segment: offset %d, want 0", sc.Offset())
	}
	for _, torn := range []string{`{"wal":1,`, `{"wa`, "{"} {
		recs, sc, err := scanAll(t, torn)
		if err == nil {
			t.Errorf("torn header %q scanned cleanly", torn)
		}
		if len(recs) != 0 {
			t.Errorf("torn header %q: %d records, want 0", torn, len(recs))
		}
		if sc.Offset() != 0 {
			t.Errorf("torn header %q: offset %d, want 0 (nothing trusted)", torn, sc.Offset())
		}
	}
}

// TestWALSegmentNames: the segment file-name codec round-trips every
// index, rejects non-segment names, and ListWALSegments orders a
// directory numerically (lexical order breaks past six digits).
func TestWALSegmentNames(t *testing.T) {
	for _, idx := range []int{1, 2, 999999, 1000000, 12345678} {
		name := WALSegmentName(idx)
		got, ok := ParseWALSegmentName(name)
		if !ok || got != idx {
			t.Errorf("round trip %d → %q → (%d,%v)", idx, name, got, ok)
		}
	}
	for _, bad := range []string{
		"wal-000000.ndjson", // index 0 is reserved
		"wal--00001.ndjson", // negative
		"wal-1.ndjson",      // unpadded
		"wal-0000001x.ndjson",
		"wal-000001.ndjson.tmp",
		"checkpoint.dmf",
		"wal-000001",
	} {
		if idx, ok := ParseWALSegmentName(bad); ok {
			t.Errorf("accepted %q as segment %d", bad, idx)
		}
	}
	dir := t.TempDir()
	for _, name := range []string{
		WALSegmentName(3), WALSegmentName(1), WALSegmentName(1000000),
		WALSegmentName(999999), "notes.txt",
	} {
		if err := os.WriteFile(dir+"/"+name, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(dir+"/"+WALSegmentName(7), 0o755); err != nil {
		t.Fatal(err)
	}
	idxs, err := ListWALSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 999999, 1000000}
	if !reflect.DeepEqual(idxs, want) {
		t.Errorf("ListWALSegments = %v, want %v", idxs, want)
	}
}

func TestWriteWALCommitRejectsOversizedCursors(t *testing.T) {
	big := make([][]uint64, MaxWALCursorLayers+1)
	if err := WriteWALCommit(io.Discard, WALCommit{Cursors: big}); err == nil {
		t.Error("oversized layer count accepted")
	}
	if err := WriteWALCommit(io.Discard, WALCommit{Cursors: [][]uint64{make([]uint64, MaxWALCursorVals+1)}}); err == nil {
		t.Error("oversized layer accepted")
	}
}
