package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"dmfsgd/internal/mat"
)

// RTTConfig parameterizes the synthetic RTT matrix generator shared by the
// Meridian-like and Harvard-like datasets.
//
// The generative model follows what is known about Internet delay spaces
// (and what makes the paper's experiments work): nodes cluster by geography
// and provider, giving a delay matrix that is approximately block-structured
// and therefore of low effective rank; per-node access links add a "height"
// component (as in Vivaldi's height model); and measurements carry
// multiplicative noise plus mild triangle-inequality violations.
type RTTConfig struct {
	// N is the number of nodes.
	N int
	// Clusters is the number of geographic/provider clusters.
	Clusters int
	// Dim is the dimensionality of the latent embedding space.
	Dim int
	// Spread scales inter-cluster distances (ms). Median inter-cluster RTT
	// grows with Spread.
	Spread float64
	// Jitter is the intra-cluster standard deviation (ms).
	Jitter float64
	// HeightMean is the mean of the exponential per-node access delay (ms).
	HeightMean float64
	// NoiseSigma is the standard deviation of the lognormal measurement
	// noise (0 disables noise).
	NoiseSigma float64
	// MinRTT floors every entry (ms).
	MinRTT float64
	// Seed drives all randomness.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c RTTConfig) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("dataset: need at least 2 nodes, got %d", c.N)
	}
	if c.Clusters < 1 || c.Clusters > c.N {
		return fmt.Errorf("dataset: clusters %d out of [1,%d]", c.Clusters, c.N)
	}
	if c.Dim < 1 {
		return fmt.Errorf("dataset: dim must be >=1, got %d", c.Dim)
	}
	if c.Spread <= 0 || c.Jitter < 0 || c.HeightMean < 0 || c.NoiseSigma < 0 || c.MinRTT < 0 {
		return fmt.Errorf("dataset: negative or zero scale parameter: %+v", c)
	}
	return nil
}

// GenerateRTTMatrix produces a symmetric RTT matrix (ms) with NaN diagonal
// according to cfg.
func GenerateRTTMatrix(cfg RTTConfig) *mat.Dense {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rngFor(cfg.Seed)
	pos, height := embedNodes(cfg, rng)

	m := mat.NewMissing(cfg.N, cfg.N)
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			base := dist(pos[i], pos[j]) + height[i] + height[j]
			noise := 1.0
			if cfg.NoiseSigma > 0 {
				noise = math.Exp(rng.NormFloat64()*cfg.NoiseSigma - cfg.NoiseSigma*cfg.NoiseSigma/2)
			}
			rtt := base * noise
			if rtt < cfg.MinRTT {
				rtt = cfg.MinRTT
			}
			m.Set(i, j, rtt)
			m.Set(j, i, rtt)
		}
	}
	return m
}

// embedNodes places N nodes around cluster centers and draws their access
// heights. Shared by the static generator and the Harvard trace generator.
func embedNodes(cfg RTTConfig, rng *rand.Rand) (pos [][]float64, height []float64) {
	centers := make([][]float64, cfg.Clusters)
	for c := range centers {
		p := make([]float64, cfg.Dim)
		for d := range p {
			p[d] = rng.Float64() * cfg.Spread
		}
		centers[c] = p
	}
	// Cluster sizes follow a Zipf-ish skew: big providers have many nodes.
	weights := make([]float64, cfg.Clusters)
	var wsum float64
	for c := range weights {
		weights[c] = 1 / float64(c+1)
		wsum += weights[c]
	}
	pos = make([][]float64, cfg.N)
	height = make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		r := rng.Float64() * wsum
		c := 0
		for acc := weights[0]; acc < r && c < cfg.Clusters-1; {
			c++
			acc += weights[c]
		}
		p := make([]float64, cfg.Dim)
		for d := range p {
			p[d] = centers[c][d] + rng.NormFloat64()*cfg.Jitter
		}
		pos[i] = p
		height[i] = rng.ExpFloat64() * cfg.HeightMean
	}
	return pos, height
}

func dist(a, b []float64) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// MeridianConfig parameterizes the Meridian-like static RTT dataset.
type MeridianConfig struct {
	// N is the node count. The real dataset has 2500 nodes; experiments in
	// this repository default to a smaller N for wall-clock reasons and can
	// be scaled up (cmd/dmfbench -full).
	N int
	// Seed drives all randomness.
	Seed int64
}

// Meridian generates the Meridian-like dataset: a static, symmetric RTT
// matrix between infrastructure nodes. Scales are tuned so the median RTT
// lands near the paper's 56 ms (Table 1: 56.4 ms at the 50th percentile).
func Meridian(cfg MeridianConfig) *Dataset {
	if cfg.N == 0 {
		cfg.N = 2500
	}
	clusters := cfg.N / 50
	if clusters < 8 {
		clusters = 8
	}
	m := GenerateRTTMatrix(RTTConfig{
		N:          cfg.N,
		Clusters:   clusters,
		Dim:        5,
		Spread:     68,
		Jitter:     5,
		HeightMean: 3,
		NoiseSigma: 0.10,
		MinRTT:     0.5,
		Seed:       cfg.Seed,
	})
	return &Dataset{
		Name:     "meridian",
		Metric:   RTT,
		Matrix:   m,
		DefaultK: 32,
	}
}

// HarvardConfig parameterizes the Harvard-like dynamic RTT dataset.
type HarvardConfig struct {
	// N is the node count (paper: 226 Azureus clients).
	N int
	// Measurements is the total number of dynamic measurements to emit
	// (paper: 2,492,546 over 4 hours; default here 250,000 — the
	// convergence experiments use far fewer than the full trace).
	Measurements int
	// Duration is the trace length in seconds (paper: 4 hours).
	Duration float64
	// Seed drives all randomness.
	Seed int64
}

// Harvard generates the Harvard-like dataset: application-level RTTs
// between peer-to-peer clients, as a dynamic timestamped trace. Ground
// truth is the per-pair median of the stream, exactly as §6.1 builds its
// static matrix for evaluation. Application-level RTTs sit on top of
// network RTT (overlay processing, scheduling), hence larger heights and
// noise than Meridian; the median lands near the paper's 132 ms.
func Harvard(cfg HarvardConfig) *Dataset {
	if cfg.N == 0 {
		cfg.N = 226
	}
	if cfg.Measurements == 0 {
		cfg.Measurements = 250000
	}
	if cfg.Duration == 0 {
		cfg.Duration = 4 * 3600
	}
	rttCfg := RTTConfig{
		N:          cfg.N,
		Clusters:   6,
		Dim:        5,
		Spread:     160,
		Jitter:     5,
		HeightMean: 12,
		NoiseSigma: 0, // base matrix noiseless; the trace carries the noise
		MinRTT:     1,
		Seed:       cfg.Seed,
	}
	base := GenerateRTTMatrix(rttCfg)
	trace := generateTrace(base, cfg, rngFor(cfg.Seed+1))

	// Ground truth = per-pair median of the observed stream (§6.1).
	truth := medianMatrix(base.Rows(), trace)
	// Pairs never probed fall back to the base value so the evaluation
	// ground truth is dense, and stay symmetric like the paper's matrix.
	for i := 0; i < truth.Rows(); i++ {
		for j := 0; j < truth.Cols(); j++ {
			if i != j && truth.IsMissing(i, j) {
				truth.Set(i, j, base.At(i, j))
			}
		}
	}
	truth.Symmetrize()

	return &Dataset{
		Name:     "harvard",
		Metric:   RTT,
		Matrix:   truth,
		DefaultK: 10,
		Trace:    trace,
	}
}

// medianMatrix computes the per-ordered-pair median of the trace.
func medianMatrix(n int, trace []Measurement) *mat.Dense {
	byPair := make(map[[2]int][]float64)
	for _, ms := range trace {
		key := [2]int{ms.I, ms.J}
		byPair[key] = append(byPair[key], ms.Value)
	}
	m := mat.NewMissing(n, n)
	for key, vals := range byPair {
		m.Set(key[0], key[1], mat.Median(vals))
	}
	return m
}
