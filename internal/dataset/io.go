package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"dmfsgd/internal/mat"
)

// WriteMatrix writes a matrix in the plain text format used by the public
// RTT datasets (Meridian, P2PSim): one row per line, whitespace-separated
// values, missing entries written as "nan".
func WriteMatrix(w io.Writer, m *mat.Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			var s string
			if math.IsNaN(v) {
				s = "nan"
			} else {
				s = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if _, err := bw.WriteString(s); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrix parses a whitespace-separated matrix. Lines may have differing
// leading/trailing whitespace; "nan", "NaN", "-1" (the P2PSim missing
// marker) and empty trailing fields are treated as missing when negative
// values are impossible for the metric. All rows must have equal length.
func ReadMatrix(r io.Reader) (*mat.Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]float64
	cols := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(fields), cols)
		}
		row := make([]float64, len(fields))
		for j, f := range fields {
			switch strings.ToLower(f) {
			case "nan", "na", "-":
				row[j] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %v", line, j+1, err)
			}
			if v < 0 {
				v = math.NaN() // P2PSim convention: negative = unmeasured
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty matrix")
	}
	data := make([]float64, 0, len(rows)*cols)
	for _, row := range rows {
		data = append(data, row...)
	}
	return mat.NewDenseFrom(len(rows), cols, data), nil
}

// WriteTrace writes a dynamic trace as CSV: time,src,dst,value — the shape
// of the published Harvard trace files.
func WriteTrace(w io.Writer, trace []Measurement) error {
	bw := bufio.NewWriter(w)
	for _, m := range trace {
		if _, err := fmt.Fprintf(bw, "%.6f,%d,%d,%.6f\n", m.T, m.I, m.J, m.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a CSV trace written by WriteTrace (or the equivalent
// external format). Records are sorted by timestamp before returning.
func ReadTrace(r io.Reader) ([]Measurement, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []Measurement
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("dataset: trace line %d has %d fields, want 4", line, len(parts))
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: trace line %d time: %v", line, err)
		}
		i, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("dataset: trace line %d src: %v", line, err)
		}
		j, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("dataset: trace line %d dst: %v", line, err)
		}
		// Node ids index coordinate arrays downstream; reject records no
		// replay could ever use rather than hand callers a panic.
		if i < 0 || j < 0 {
			return nil, fmt.Errorf("dataset: trace line %d: negative node id (%d,%d)", line, i, j)
		}
		if i == j {
			return nil, fmt.Errorf("dataset: trace line %d: self-pair %d", line, i)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: trace line %d value: %v", line, err)
		}
		if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dataset: trace line %d: non-finite time or value", line)
		}
		out = append(out, Measurement{T: t, I: i, J: j, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool { return out[a].T < out[b].T })
	return out, nil
}

// FromMatrix wraps an externally loaded matrix as a Dataset. defaultK
// follows the paper's guidance (≈10 for a few hundred nodes, 32 for
// thousands) when zero is passed.
func FromMatrix(name string, metric Metric, m *mat.Dense, defaultK int) *Dataset {
	if defaultK == 0 {
		if m.Rows() >= 1000 {
			defaultK = 32
		} else {
			defaultK = 10
		}
	}
	return &Dataset{Name: name, Metric: metric, Matrix: m, DefaultK: defaultK}
}
