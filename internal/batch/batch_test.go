package batch

import (
	"math/rand"
	"testing"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
)

func TestValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Config{
		{Rank: 0, LearningRate: 0.1, Lambda: 0.1, Epochs: 1},
		{Rank: 1, LearningRate: 0, Lambda: 0.1, Epochs: 1},
		{Rank: 1, LearningRate: 0.1, Lambda: -1, Epochs: 1},
		{Rank: 1, LearningRate: 0.1, Lambda: 0.1, Epochs: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(mat.NewMissing(3, 4), Defaults()); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Fit(mat.NewMissing(3, 3), Defaults()); err == nil {
		t.Error("all-missing accepted")
	}
	cfg := Defaults()
	cfg.Rank = 0
	m := mat.NewMissing(3, 3)
	m.Set(0, 1, 1)
	if _, err := Fit(m, cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFitDecreasesObjective(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 40, Seed: 101})
	labels := classify.Matrix(ds, ds.Median())
	one := Defaults()
	one.Epochs = 1
	many := Defaults()
	many.Epochs = 30

	m1, err := Fit(labels, one)
	if err != nil {
		t.Fatal(err)
	}
	m30, err := Fit(labels, many)
	if err != nil {
		t.Fatal(err)
	}
	if ObjectiveValue(labels, m30, many) >= ObjectiveValue(labels, m1, one) {
		t.Error("more epochs should reduce the training objective")
	}
}

func TestCentralizedCompletesMaskedMatrix(t *testing.T) {
	// Train on the masked entries, evaluate on the holdout: the essence of
	// matrix completion.
	ds := dataset.Meridian(dataset.MeridianConfig{N: 80, Seed: 102})
	tau := ds.Median()
	full := classify.Matrix(ds, tau)
	trainMask, _ := mat.NeighborMask(ds.N(), 10, true, rng(103))

	train := mat.NewMissing(ds.N(), ds.N())
	for _, p := range trainMask.Pairs() {
		if !full.IsMissing(p.I, p.J) {
			train.Set(p.I, p.J, full.At(p.I, p.J))
		}
	}
	model, err := Fit(train, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var labels, scores []float64
	for _, p := range trainMask.Complement().Pairs() {
		if full.IsMissing(p.I, p.J) {
			continue
		}
		labels = append(labels, full.At(p.I, p.J))
		scores = append(scores, model.Predict(p.I, p.J))
	}
	if auc := eval.AUC(labels, scores); auc < 0.9 {
		t.Errorf("centralized holdout AUC = %v, want >= 0.9", auc)
	}
}

// The headline comparison: the decentralized algorithm must land close to
// the centralized reference on the same dataset and neighbor budget
// (within 0.05 AUC). This validates the paper's claim that
// decentralization costs little accuracy.
func TestDecentralizedMatchesCentralized(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 80, Seed: 104})
	tau := ds.Median()

	drv, err := sim.ClassDriver(ds, tau, sim.Config{SGD: sgd.Defaults(), K: 10, Seed: 104}, nil)
	if err != nil {
		t.Fatal(err)
	}
	drv.Run(sim.DefaultBudget(ds.N(), 10))
	decAUC := drv.AUC()

	// Central node sees exactly the same observed entries.
	full := classify.Matrix(ds, tau)
	train := mat.NewMissing(ds.N(), ds.N())
	for _, p := range drv.TrainMask().Pairs() {
		if !full.IsMissing(p.I, p.J) {
			train.Set(p.I, p.J, full.At(p.I, p.J))
		}
	}
	model, err := Fit(train, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var labels, scores []float64
	for _, p := range drv.TrainMask().Complement().Pairs() {
		if full.IsMissing(p.I, p.J) {
			continue
		}
		labels = append(labels, full.At(p.I, p.J))
		scores = append(scores, model.Predict(p.I, p.J))
	}
	cenAUC := eval.AUC(labels, scores)

	if decAUC < cenAUC-0.05 {
		t.Errorf("decentralized AUC %v too far below centralized %v", decAUC, cenAUC)
	}
}

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
