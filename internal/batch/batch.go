// Package batch implements the centralized matrix-factorization
// architecture of §4.3 (Figure 2): all class measurements are collected at
// one place, and U, V are fitted by full passes of (mini-batched
// stochastic) gradient descent over the known entries.
//
// The paper's contribution is precisely to *remove* this central node
// (§5); package batch exists as the reference the decentralized algorithms
// are measured against. Its factorization quality is an upper bound for
// DMFSGD at the same measurement budget, and the integration tests assert
// the decentralized runs land close to it.
package batch

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/loss"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/vec"
)

// Config parameterizes a centralized factorization.
type Config struct {
	// Rank, LearningRate, Lambda, Loss as in sgd.Config.
	Rank         int
	LearningRate float64
	Lambda       float64
	Loss         loss.Kind
	// Epochs is the number of full passes over the observed entries.
	Epochs int
	// Seed drives initialization and the per-epoch shuffle.
	Seed int64
}

// Defaults returns a configuration matching the paper's decentralized
// defaults plus 30 epochs.
func Defaults() Config {
	return Config{Rank: 10, LearningRate: 0.1, Lambda: 0.1, Loss: loss.Logistic, Epochs: 30}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Rank <= 0 {
		return fmt.Errorf("batch: rank must be positive, got %d", c.Rank)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("batch: learning rate must be positive, got %v", c.LearningRate)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("batch: lambda must be non-negative, got %v", c.Lambda)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("batch: epochs must be positive, got %d", c.Epochs)
	}
	return nil
}

// Model is a fitted factorization: row i of U and of V per node.
type Model struct {
	U, V [][]float64
}

// Predict returns x̂ᵢⱼ = uᵢ·vⱼᵀ.
func (m *Model) Predict(i, j int) float64 { return vec.Dot(m.U[i], m.V[j]) }

// Fit factorizes the observed entries of labels (NaN = unobserved,
// diagonal ignored) under the mask semantics of eq. 1. The optimization is
// stochastic gradient descent over a reshuffled entry list each epoch —
// the centralized twin of the DMFSGD updates, using the identical
// gradients from package loss.
func Fit(labels *mat.Dense, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if labels.Rows() != labels.Cols() {
		return nil, fmt.Errorf("batch: labels must be square, got %dx%d", labels.Rows(), labels.Cols())
	}
	n := labels.Rows()
	rng := rand.New(rand.NewSource(cfg.Seed))

	model := &Model{U: make([][]float64, n), V: make([][]float64, n)}
	for i := 0; i < n; i++ {
		model.U[i] = vec.NewRandUniform(rng, cfg.Rank)
		model.V[i] = vec.NewRandUniform(rng, cfg.Rank)
	}

	// Collect observed entries once.
	var entries []mat.Pair
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && !labels.IsMissing(i, j) {
				entries = append(entries, mat.Pair{I: i, J: j})
			}
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("batch: no observed entries")
	}

	shrink := 1 - cfg.LearningRate*cfg.Lambda
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
		for _, e := range entries {
			x := labels.At(e.I, e.J)
			u, v := model.U[e.I], model.V[e.J]
			g := cfg.Loss.Scalar(x, vec.Dot(u, v))
			// Both factor rows move per sample — the central node holds
			// everything, so unlike DMFSGD no information constraint
			// applies. Both gradients use the pre-update rows.
			step := -cfg.LearningRate * g
			uPre := append([]float64(nil), u...)
			vPre := append([]float64(nil), v...)
			vec.ScaleAxpy(shrink, u, step, vPre)
			vec.ScaleAxpy(shrink, v, step, uPre)
		}
	}
	return model, nil
}

// ObjectiveValue returns the regularized empirical loss of eq. 3 over the
// observed entries — used by tests to verify that training decreases it.
func ObjectiveValue(labels *mat.Dense, m *Model, cfg Config) float64 {
	n := labels.Rows()
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || labels.IsMissing(i, j) {
				continue
			}
			total += cfg.Loss.Value(labels.At(i, j), m.Predict(i, j))
		}
	}
	for i := 0; i < n; i++ {
		total += cfg.Lambda * (vec.SqNorm(m.U[i]) + vec.SqNorm(m.V[i]))
	}
	return total
}
