package peersel

import (
	"math"
	"testing"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/loss"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/sim"
)

func TestStrategyString(t *testing.T) {
	if Random.String() != "random" || ClassBased.String() != "classification" || QuantityBased.String() != "regression" {
		t.Error("strategy names")
	}
}

// oraclePredictor predicts with perfect knowledge — an upper bound used to
// test the selection mechanics separately from learning quality.
type oraclePredictor struct {
	ds    *dataset.Dataset
	class bool // emulate classifier scores (larger = more likely good)
	tau   float64
}

func (o oraclePredictor) Predict(i, j int) float64 {
	v := o.ds.Matrix.At(i, j)
	if o.class {
		// A perfect classifier's score: positive margin when good.
		if dataset.IsGood(o.ds.Metric, v, o.tau) {
			return 1 + 1/(1+v)
		}
		return -1 - v/1000
	}
	return v
}

func TestBuildPeerSets(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 50, Seed: 51})
	exclude := make([][]int, 50)
	for i := range exclude {
		exclude[i] = []int{(i + 1) % 50, (i + 2) % 50}
	}
	cfg := Config{PeerSetSize: 10, Tau: ds.Median(), Exclude: exclude, Seed: 9}
	sets := BuildPeerSets(ds, cfg)
	if len(sets) != 50 {
		t.Fatalf("sets = %d", len(sets))
	}
	for i, set := range sets {
		if len(set) != 10 {
			t.Fatalf("node %d set size %d", i, len(set))
		}
		seen := map[int]bool{}
		for _, p := range set {
			if p == i {
				t.Fatalf("node %d has itself", i)
			}
			if p == (i+1)%50 || p == (i+2)%50 {
				t.Fatalf("node %d includes excluded peer %d", i, p)
			}
			if seen[p] {
				t.Fatalf("node %d duplicate peer %d", i, p)
			}
			seen[p] = true
		}
	}
}

func TestBuildPeerSetsDeterministic(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 30, Seed: 52})
	cfg := Config{PeerSetSize: 5, Tau: ds.Median(), Seed: 3}
	a := BuildPeerSets(ds, cfg)
	b := BuildPeerSets(ds, cfg)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("peer sets not deterministic")
			}
		}
	}
}

func TestBuildPeerSetsPanicsOnBadSize(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildPeerSets(ds, Config{PeerSetSize: 0})
}

func TestOracleSelectionIsOptimal(t *testing.T) {
	// With a perfect quantity predictor, stretch must be exactly 1 and no
	// node unsatisfied.
	for _, mk := range []func() *dataset.Dataset{
		func() *dataset.Dataset { return dataset.Meridian(dataset.MeridianConfig{N: 40, Seed: 53}) },
		func() *dataset.Dataset { return dataset.HPS3(dataset.HPS3Config{N: 40, Seed: 53}) },
	} {
		ds := mk()
		cfg := Config{PeerSetSize: 8, Tau: ds.Median(), Seed: 5}
		sets := BuildPeerSets(ds, cfg)
		res := Evaluate(ds, sets, QuantityBased, oraclePredictor{ds: ds}, cfg)
		if math.Abs(res.MeanStretch-1) > 1e-12 {
			t.Errorf("%s: oracle stretch = %v, want 1", ds.Name, res.MeanStretch)
		}
		if res.Unsatisfied != 0 {
			t.Errorf("%s: oracle unsatisfied = %v, want 0", ds.Name, res.Unsatisfied)
		}
	}
}

func TestOracleClassifierSatisfies(t *testing.T) {
	// A perfect classifier guarantees satisfaction (never picks bad when
	// good exists) but not optimality.
	ds := dataset.Meridian(dataset.MeridianConfig{N: 40, Seed: 54})
	cfg := Config{PeerSetSize: 8, Tau: ds.Median(), Seed: 7}
	sets := BuildPeerSets(ds, cfg)
	res := Evaluate(ds, sets, ClassBased, oraclePredictor{ds: ds, class: true, tau: cfg.Tau}, cfg)
	if res.Unsatisfied != 0 {
		t.Errorf("perfect classifier unsatisfied = %v, want 0", res.Unsatisfied)
	}
	if res.MeanStretch < 1 {
		t.Errorf("RTT stretch must be >= 1, got %v", res.MeanStretch)
	}
}

func TestRandomWorseThanOracle(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 60, Seed: 55})
	cfg := Config{PeerSetSize: 20, Tau: ds.Median(), Seed: 11}
	sets := BuildPeerSets(ds, cfg)
	random := Evaluate(ds, sets, Random, nil, cfg)
	oracle := Evaluate(ds, sets, QuantityBased, oraclePredictor{ds: ds}, cfg)
	if random.MeanStretch <= oracle.MeanStretch {
		t.Errorf("random stretch %v should exceed oracle %v", random.MeanStretch, oracle.MeanStretch)
	}
	if random.Unsatisfied <= 0.1 {
		t.Errorf("random selection with 20 peers should often be unsatisfied, got %v", random.Unsatisfied)
	}
}

func TestABWStretchAtMostOne(t *testing.T) {
	ds := dataset.HPS3(dataset.HPS3Config{N: 40, Seed: 56})
	cfg := Config{PeerSetSize: 10, Tau: ds.Median(), Seed: 13}
	sets := BuildPeerSets(ds, cfg)
	for _, strat := range []Strategy{Random, QuantityBased} {
		var pred Predictor
		if strat != Random {
			pred = oraclePredictor{ds: ds}
		}
		res := Evaluate(ds, sets, strat, pred, cfg)
		if res.MeanStretch > 1+1e-9 {
			t.Errorf("%v: ABW stretch %v must be <= 1", strat, res.MeanStretch)
		}
	}
}

func TestEvaluatePanicsWithoutPredictor(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 20, Seed: 57})
	cfg := Config{PeerSetSize: 5, Tau: ds.Median(), Seed: 1}
	sets := BuildPeerSets(ds, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate(ds, sets, ClassBased, nil, cfg)
}

// End-to-end: a trained classifier must beat random selection on both
// criteria, and a trained regressor must beat the classifier on stretch
// (Figure 7's qualitative ordering).
func TestTrainedSelectionOrdering(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 80, Seed: 58})
	tau := ds.Median()
	k := 10

	clsDrv, err := sim.ClassDriver(ds, tau, sim.Config{SGD: sgd.Defaults(), K: k, Seed: 21}, nil)
	if err != nil {
		t.Fatal(err)
	}
	clsDrv.Run(sim.DefaultBudget(ds.N(), k))

	qCfg := sim.Config{SGD: sgd.Defaults(), K: k, Seed: 21}
	qCfg.SGD.Loss = loss.L2
	qDrv, err := sim.QuantityDriver(ds, tau, qCfg)
	if err != nil {
		t.Fatal(err)
	}
	qDrv.Run(sim.DefaultBudget(ds.N(), k))

	cfg := Config{
		PeerSetSize: 20,
		Tau:         tau,
		Exclude:     NeighborExclusion(ds.N(), clsDrv.Neighbors),
		Seed:        23,
	}
	sets := BuildPeerSets(ds, cfg)
	random := Evaluate(ds, sets, Random, nil, cfg)
	class := Evaluate(ds, sets, ClassBased, clsDrv, cfg)
	quant := Evaluate(ds, sets, QuantityBased, qDrv, cfg)

	if class.Unsatisfied >= random.Unsatisfied {
		t.Errorf("classification unsatisfied %v should beat random %v", class.Unsatisfied, random.Unsatisfied)
	}
	if class.MeanStretch >= random.MeanStretch {
		t.Errorf("classification stretch %v should beat random %v", class.MeanStretch, random.MeanStretch)
	}
	if quant.MeanStretch >= random.MeanStretch {
		t.Errorf("regression stretch %v should beat random %v", quant.MeanStretch, random.MeanStretch)
	}
}

func TestNeighborExclusion(t *testing.T) {
	got := NeighborExclusion(3, func(i int) []int { return []int{i + 10} })
	if len(got) != 3 || got[1][0] != 11 {
		t.Errorf("NeighborExclusion = %v", got)
	}
}
