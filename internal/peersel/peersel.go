// Package peersel implements the peer-selection evaluation of §6.4: each
// node must pick, from a random peer set, a node to interact with, using
// only predicted performance. The paper contrasts:
//
//   - Random selection (baseline);
//   - Class-based selection: pick the peer with the largest raw prediction
//     x̂ᵢⱼ = uᵢ·vⱼᵀ from a classifier-trained factorization ("the most
//     likely to be good"), without thresholding;
//   - Quantity-based selection: pick the predicted best performer from an
//     L2-trained factorization (smallest x̂ for RTT, largest for ABW).
//
// Two criteria are reported (Figure 7):
//
//   - Optimality: the stretch sᵢ = xᵢ•/xᵢ∘, measured value of the selected
//     peer over the true best peer in the set (≥1 for RTT, ≤1 for ABW;
//     closer to 1 is better).
//   - Satisfaction: the fraction of unsatisfied nodes — nodes that selected
//     a "bad" peer although a "good" peer existed in their peer set. Nodes
//     whose peer set contains no good peer are excluded.
package peersel

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/dataset"
)

// Strategy selects how a node ranks its candidate peers.
type Strategy uint8

const (
	// Random picks a peer uniformly at random.
	Random Strategy = iota
	// ClassBased picks the peer with the largest raw classifier output.
	ClassBased
	// QuantityBased picks the predicted best performer under the metric
	// polarity (min predicted RTT / max predicted ABW).
	QuantityBased
)

// String names the strategy as in Figure 7's legend.
func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case ClassBased:
		return "classification"
	case QuantityBased:
		return "regression"
	default:
		return fmt.Sprintf("peersel.Strategy(%d)", uint8(s))
	}
}

// Predictor supplies pairwise predictions; *sim.Driver satisfies it.
type Predictor interface {
	Predict(i, j int) float64
}

// Result aggregates the two Figure-7 criteria over all nodes.
type Result struct {
	// MeanStretch is the average stretch over nodes with a usable peer set.
	MeanStretch float64
	// Unsatisfied is the fraction of nodes that picked a bad peer while a
	// good one was available.
	Unsatisfied float64
	// Nodes is the number of nodes contributing to MeanStretch.
	Nodes int
	// SatisfactionNodes is the number contributing to Unsatisfied (nodes
	// with at least one good peer).
	SatisfactionNodes int
}

// Config parameterizes an evaluation.
type Config struct {
	// PeerSetSize is the number of candidate peers per node (Figure 7
	// sweeps 10..60).
	PeerSetSize int
	// Tau is the threshold defining good/bad for the satisfaction
	// criterion.
	Tau float64
	// Exclude lists, per node, nodes that may not appear in its peer set
	// (§6.4: "the nodes in the peer set are forced to be different from
	// those in the neighbor set"). Nil disables exclusion.
	Exclude [][]int
	// Seed drives peer-set sampling and random selection.
	Seed int64
}

// BuildPeerSets samples a peer set per node: PeerSetSize distinct nodes,
// not the node itself, not excluded, and with present ground truth for the
// directed pair (i, peer) so stretch is computable.
func BuildPeerSets(ds *dataset.Dataset, cfg Config) [][]int {
	n := ds.N()
	if cfg.PeerSetSize <= 0 {
		panic(fmt.Sprintf("peersel: peer set size %d", cfg.PeerSetSize))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sets := make([][]int, n)
	for i := 0; i < n; i++ {
		banned := make(map[int]bool, 8)
		banned[i] = true
		if cfg.Exclude != nil {
			for _, e := range cfg.Exclude[i] {
				banned[e] = true
			}
		}
		var candidates []int
		for j := 0; j < n; j++ {
			if !banned[j] && !ds.Matrix.IsMissing(i, j) {
				candidates = append(candidates, j)
			}
		}
		rng.Shuffle(len(candidates), func(a, b int) {
			candidates[a], candidates[b] = candidates[b], candidates[a]
		})
		if len(candidates) > cfg.PeerSetSize {
			candidates = candidates[:cfg.PeerSetSize]
		}
		sets[i] = candidates
	}
	return sets
}

// Evaluate runs one strategy over given peer sets. pred may be nil for
// Random. Returns the aggregate criteria.
func Evaluate(ds *dataset.Dataset, sets [][]int, strat Strategy, pred Predictor, cfg Config) Result {
	if strat != Random && pred == nil {
		panic("peersel: strategy requires a Predictor")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var (
		stretchSum float64
		stretchN   int
		unsat      int
		satN       int
	)
	for i, set := range sets {
		if len(set) == 0 {
			continue
		}
		sel := selectPeer(ds, i, set, strat, pred, rng)
		best := truBest(ds, i, set)

		xs := ds.Matrix.At(i, sel)
		xb := ds.Matrix.At(i, best)
		if xb > 0 {
			stretchSum += xs / xb
			stretchN++
		}

		// Satisfaction: is there a good peer at all?
		hasGood := false
		for _, p := range set {
			if dataset.IsGood(ds.Metric, ds.Matrix.At(i, p), cfg.Tau) {
				hasGood = true
				break
			}
		}
		if hasGood {
			satN++
			if !dataset.IsGood(ds.Metric, xs, cfg.Tau) {
				unsat++
			}
		}
	}
	res := Result{Nodes: stretchN, SatisfactionNodes: satN}
	if stretchN > 0 {
		res.MeanStretch = stretchSum / float64(stretchN)
	}
	if satN > 0 {
		res.Unsatisfied = float64(unsat) / float64(satN)
	}
	return res
}

// selectPeer applies the strategy for node i.
func selectPeer(ds *dataset.Dataset, i int, set []int, strat Strategy, pred Predictor, rng *rand.Rand) int {
	switch strat {
	case Random:
		return set[rng.Intn(len(set))]
	case ClassBased:
		// jp = argmax x̂ᵢⱼ: "directly use the output without taking its
		// sign or thresholding it" (§6.4).
		best, bestScore := set[0], pred.Predict(i, set[0])
		for _, p := range set[1:] {
			if s := pred.Predict(i, p); s > bestScore {
				best, bestScore = p, s
			}
		}
		return best
	case QuantityBased:
		best, bestScore := set[0], pred.Predict(i, set[0])
		for _, p := range set[1:] {
			s := pred.Predict(i, p)
			if ds.Metric.GoodIsLow() && s < bestScore || !ds.Metric.GoodIsLow() && s > bestScore {
				best, bestScore = p, s
			}
		}
		return best
	default:
		panic(fmt.Sprintf("peersel: unknown strategy %v", strat))
	}
}

// truBest returns the true best-performing peer by ground truth.
func truBest(ds *dataset.Dataset, i int, set []int) int {
	best, bestVal := set[0], ds.Matrix.At(i, set[0])
	for _, p := range set[1:] {
		v := ds.Matrix.At(i, p)
		if ds.Metric.GoodIsLow() && v < bestVal || !ds.Metric.GoodIsLow() && v > bestVal {
			best, bestVal = p, v
		}
	}
	return best
}

// NeighborExclusion adapts a driver's neighbor lists into the Exclude field
// of Config (peer sets must avoid training neighbors).
func NeighborExclusion(n int, neighbors func(i int) []int) [][]int {
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		out[i] = append([]int(nil), neighbors(i)...)
	}
	return out
}
