package sim

import (
	"testing"

	"dmfsgd/internal/vec"
)

// TestDriverShardInvariance is the acceptance contract of the engine
// refactor: the sequential driver produces bit-identical coordinates and
// metrics for every shard count at a fixed seed.
func TestDriverShardInvariance(t *testing.T) {
	for _, ds := range []struct {
		name string
		mk   func() *Driver
	}{
		{"meridian", func() *Driver {
			d := meridianSmall(t, 44)
			cfg := defaultCfg(10, 101)
			cfg.Shards = 8
			cfg.Workers = 4
			drv, err := ClassDriver(d, d.Median(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			return drv
		}},
		{"hp-s3", func() *Driver {
			d := hps3Small(t, 45)
			cfg := defaultCfg(10, 102)
			cfg.Shards = 8
			cfg.Workers = 4
			drv, err := ClassDriver(d, d.Median(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			return drv
		}},
	} {
		sharded := ds.mk()
		plainDS := sharded.ds
		cfgPlain := sharded.cfg
		cfgPlain.Shards = 0
		cfgPlain.Workers = 1
		plain, err := New(plainDS, sharded.labels, cfgPlain)
		if err != nil {
			t.Fatal(err)
		}
		sharded.Run(4000)
		plain.Run(4000)
		for i := 0; i < plain.N(); i++ {
			a, b := plain.Coordinates(i), sharded.Coordinates(i)
			if !vec.Equal(a.U, b.U, 0) || !vec.Equal(a.V, b.V, 0) {
				t.Fatalf("%s: node %d diverges across shard counts", ds.name, i)
			}
		}
		if a, b := plain.AUC(), sharded.AUC(); a != b {
			t.Fatalf("%s: AUC %v vs %v", ds.name, a, b)
		}
	}
}

// TestEvalSetParallelEquivalence: the block-parallel evaluator returns
// exactly what a single-worker pass returns, labels and scores both.
func TestEvalSetParallelEquivalence(t *testing.T) {
	ds := meridianSmall(t, 46)
	tau := ds.Median()
	mk := func(workers int) *Driver {
		cfg := defaultCfg(10, 103)
		cfg.Workers = workers
		drv, err := ClassDriver(ds, tau, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		drv.Run(3000)
		return drv
	}
	seq := mk(1)
	par := mk(8)
	sl, ss := seq.EvalSet(0)
	pl, ps := par.EvalSet(0)
	if len(sl) != len(pl) {
		t.Fatalf("eval set sizes %d vs %d", len(sl), len(pl))
	}
	for i := range sl {
		if sl[i] != pl[i] || ss[i] != ps[i] {
			t.Fatalf("entry %d: (%v,%v) vs (%v,%v)", i, sl[i], ss[i], pl[i], ps[i])
		}
	}
	if a, b := seq.Confusion(), par.Confusion(); a != b {
		t.Fatalf("confusion %+v vs %+v", a, b)
	}
}

// TestDriverRunEpochsLearns: the public epoch path through the driver
// reaches the sequential quality bar at the same budget.
func TestDriverRunEpochsLearns(t *testing.T) {
	ds := meridianSmall(t, 47)
	cfg := defaultCfg(10, 104)
	cfg.Shards = 4
	drv, err := ClassDriver(ds, ds.Median(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	drv.RunEpochs(20, 10) // = DefaultBudget(n, 10) probes
	if drv.Steps() == 0 {
		t.Fatal("no epoch updates")
	}
	if auc := drv.AUC(); auc < 0.85 {
		t.Errorf("epoch-trained AUC = %v, want >= 0.85", auc)
	}
}
