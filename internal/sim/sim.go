// Package sim provides the deterministic sequential simulation driver used
// by all experiments (§6). It reproduces the paper's evaluation procedure:
//
//   - every node independently selects a random neighbor set of k nodes
//     (§5.3, same architecture as Vivaldi);
//   - static measurements (Meridian, HP-S3) are consumed in random order:
//     at each step a random node probes a random neighbor and applies the
//     DMFSGD update rules;
//   - dynamic measurements (Harvard) are replayed in timestamp order;
//   - evaluation predicts the entries that were never measured (the
//     complement of the training mask) and compares them against the
//     ground-truth classes.
//
// The driver is fully deterministic given a seed, which is what makes every
// figure and table in this repository reproducible. Since the engine
// refactor it is a thin configuration front-end over package engine, which
// owns the sharded coordinate store and both execution schedules; the
// concurrent message-passing implementation of the same protocol lives in
// package runtime and shares the same store layer.
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/engine"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
)

// Config parameterizes a simulation run.
type Config struct {
	// SGD carries the factorization hyper-parameters (rank, η, λ, loss).
	SGD sgd.Config
	// K is the neighbor count per node (§6.2.2).
	K int
	// Tau is the classification threshold used for ground-truth evaluation
	// labels.
	Tau float64
	// TrainScale divides training labels before the SGD update. Classes
	// (±1) use 1 (or 0, which means 1); quantity-based training uses the
	// dataset median so the L2 loss sees O(1) targets. Scaling only changes
	// the magnitude of predictions, not their ranking, so classification
	// metrics and peer selection are unaffected.
	TrainScale float64
	// ForceAsymmetric disables the symmetric RTT trick of Algorithm 1
	// (updating both uᵢ and vᵢ from one sample) and applies the one-sided
	// Algorithm-2 updates instead. Used only by the ablation benchmarks
	// that quantify the value of exploiting RTT symmetry.
	ForceAsymmetric bool
	// Shards partitions the coordinate store for parallel epoch training
	// (0 = 1). Sequential Step/Run results are identical for every value.
	Shards int
	// Workers bounds the goroutines used by parallel epochs and parallel
	// evaluation (0 = GOMAXPROCS). Evaluation output is identical for
	// every value.
	Workers int
	// Seed drives neighbor selection, probe order and initialization.
	Seed int64
}

// Driver runs the decentralized factorization against a dataset. It is a
// configuration front-end over engine.Engine: the driver owns the dataset
// binding, threshold and evaluation procedure; the engine owns the sharded
// coordinate store and the update schedules.
type Driver struct {
	ds     *dataset.Dataset
	labels *mat.Dense // training labels: classes (±1) or quantities
	cfg    Config

	eng       *engine.Engine
	msrc      *engine.CountingSource // the master stream's source (checkpointing)
	neighbors [][]int
	trainMask *mat.Mask
	evalCache engine.PairCache
}

// New builds a Driver.
//
// labels is the matrix the *measurement module* would produce: the class
// matrix (possibly corrupted, §6.3) for class-based prediction, or the raw
// quantity matrix for quantity-based prediction (§6.4). Ground truth for
// evaluation always comes from the clean dataset thresholded at cfg.Tau.
func New(ds *dataset.Dataset, labels *mat.Dense, cfg Config) (*Driver, error) {
	if err := cfg.SGD.Validate(); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K >= ds.N() {
		return nil, fmt.Errorf("sim: k=%d out of (0,%d)", cfg.K, ds.N())
	}
	if labels.Rows() != ds.N() || labels.Cols() != ds.N() {
		return nil, fmt.Errorf("sim: labels %dx%d, dataset has %d nodes",
			labels.Rows(), labels.Cols(), ds.N())
	}
	if cfg.TrainScale == 0 {
		cfg.TrainScale = 1
	}
	if cfg.TrainScale < 0 {
		return nil, fmt.Errorf("sim: TrainScale must be positive, got %v", cfg.TrainScale)
	}
	// The master sequential stream runs off a counting source so its
	// position is checkpointable (value-transparent: same draws as a bare
	// rand.NewSource at the same seed).
	msrc := engine.NewCountingSource(cfg.Seed)
	rng := rand.New(msrc)
	trainMask, neighbors := mat.NeighborMask(ds.N(), cfg.K, ds.Metric.Symmetric(), rng)
	eng, err := engine.New(labels, neighbors, rng, engine.Config{
		SGD:        cfg.SGD,
		TrainScale: cfg.TrainScale,
		Symmetric:  ds.Metric.Symmetric() && !cfg.ForceAsymmetric,
		Shards:     cfg.Shards,
		Workers:    cfg.Workers,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &Driver{
		ds:        ds,
		labels:    labels,
		cfg:       cfg,
		eng:       eng,
		msrc:      msrc,
		neighbors: neighbors,
		trainMask: trainMask,
	}, nil
}

// MasterDraws returns the number of values drawn from the master
// sequential RNG stream since construction (neighbor-mask build,
// coordinate init, probe sampling) — the stream position a checkpoint
// records.
func (d *Driver) MasterDraws() uint64 { return d.msrc.Draws() }

// FastForwardMaster advances the master stream to a checkpointed draw
// count. The target must be at or past the current position (a freshly
// built driver has already consumed its construction draws); rewinding
// means the checkpoint belongs to a different configuration.
func (d *Driver) FastForwardMaster(target uint64) error {
	return d.msrc.FastForward(target)
}

// N returns the node count.
func (d *Driver) N() int { return d.ds.N() }

// TauValue returns the evaluation threshold in effect.
func (d *Driver) TauValue() float64 { return d.cfg.Tau }

// Engine returns the underlying execution engine (parallel epoch training,
// shard introspection, benchmarks).
func (d *Driver) Engine() *engine.Engine { return d.eng }

// SwapLabels replaces the training label matrix mid-run, modelling a
// network whose ground truth changes while the system keeps running (the
// dynamics the paper's SGD formulation is designed for: measurements are
// processed as they arrive, so a change simply shows up in future
// samples). Dimensions must match the dataset.
func (d *Driver) SwapLabels(labels *mat.Dense) {
	if labels.Rows() != d.ds.N() || labels.Cols() != d.ds.N() {
		panic(fmt.Sprintf("sim: SwapLabels %dx%d, dataset has %d nodes",
			labels.Rows(), labels.Cols(), d.ds.N()))
	}
	d.labels = labels
	d.eng.SetLabels(labels)
}

// Steps returns the number of successful measurements consumed so far.
func (d *Driver) Steps() int { return d.eng.Steps() }

// Neighbors returns node i's neighbor set (shared slice; do not modify).
func (d *Driver) Neighbors(i int) []int { return d.neighbors[i] }

// TrainMask returns the observation mask (shared; do not modify).
func (d *Driver) TrainMask() *mat.Mask { return d.trainMask }

// Coordinates returns node i's coordinates (live, not a copy).
func (d *Driver) Coordinates(i int) *sgd.Coordinates { return d.eng.Store().Coord(i) }

// Predict returns x̂ᵢⱼ = uᵢ·vⱼᵀ, the estimate of the (possibly scaled)
// training label from i to j.
func (d *Driver) Predict(i, j int) float64 { return d.eng.Predict(i, j) }

// Step performs one protocol exchange: a random node probes one random
// neighbor, the measurement module yields the pair's label, and the DMFSGD
// update rules fire. Returns false when the sampled pair has no label
// (missing data) — the probe failed and nothing was updated.
func (d *Driver) Step() bool { return d.eng.Step() }

// SampleProbe draws the next (node, neighbor) probe pair from the master
// sequential stream without applying an update (see engine.SampleProbe).
// The ingestion layer binds MatrixSource to this, which is what makes a
// source-drained sequential run bit-identical to the classic driver.
func (d *Driver) SampleProbe() (i, j int) { return d.eng.SampleProbe() }

// ApplyLabel consumes one externally supplied training label for the
// pair (i, j) — the seam through which measurement sources (trace
// replay, NDJSON streams, scenario decorators) feed the engine.
func (d *Driver) ApplyLabel(i, j int, label float64) { d.eng.ApplyLabel(i, j, label) }

// ApplyBatchCtx trains on one epoch-style batch of externally supplied
// samples through the engine's sharded apply path (see
// engine.ApplyBatchCtx): peer reads from a batch-start snapshot,
// per-shard workers, deterministic for every shard and worker count.
func (d *Driver) ApplyBatchCtx(ctx context.Context, batch []engine.Sample) (int, error) {
	return d.eng.ApplyBatchCtx(ctx, batch)
}

// Run performs total successful measurement steps (missing-data probes are
// retried and do not count).
func (d *Driver) Run(total int) { d.eng.Run(total) }

// RunCtx is Run with cancellation between probe attempts; see
// engine.Engine.RunCtx for the exact semantics. Returns the successful
// steps performed and, when interrupted, the context's error.
func (d *Driver) RunCtx(ctx context.Context, total int) (int, error) {
	return d.eng.RunCtx(ctx, total)
}

// RunEpochs trains with the engine's parallel epoch scheduler instead of
// the sequential stream: epochs sweeps in which every node issues
// probesPerNode probes, executed across the configured shards and workers.
// Deterministic for a fixed seed regardless of shard count, but a
// different (epoch-synchronous) schedule than Run — do not mix the two
// modes within an experiment that must reproduce historical figures.
// Returns the number of successful updates.
func (d *Driver) RunEpochs(epochs, probesPerNode int) int {
	return d.eng.RunEpochs(epochs, probesPerNode)
}

// RunEpochCtx runs one parallel epoch with cancellation at shard
// granularity (see engine.Engine.RunEpochCtx). Callers wanting multiple
// cancellable epochs loop over it (as Session.RunEpochs does, publishing
// telemetry between epochs).
func (d *Driver) RunEpochCtx(ctx context.Context, probesPerNode int) (int, error) {
	return d.eng.RunEpochCtx(ctx, probesPerNode)
}

// RunCheckpoints runs total steps, invoking fn after every chunk of `every`
// steps (and once at the end if total is not a multiple). fn receives the
// cumulative step count. Used for the convergence curves of Fig. 5(c).
func (d *Driver) RunCheckpoints(total, every int, fn func(step int)) {
	if every <= 0 {
		panic("sim: checkpoint interval must be positive")
	}
	done := 0
	for done < total {
		chunk := every
		if done+chunk > total {
			chunk = total - done
		}
		d.Run(chunk)
		done += chunk
		fn(done)
	}
}

// ReplayTrace consumes up to limit dynamic measurements in trace order
// (Harvard). Only measurements toward the observing node's neighbor set
// are used, matching the k-neighbor architecture; other records are
// ignored (passively probed paths outside the neighbor set). toLabel
// converts each raw value to a training label (class or scaled quantity);
// it may return false to skip a record (e.g. a missing corrupted label).
//
// Returns used, the number of measurements consumed, and scanned, the
// number of trace records examined. Callers replaying in chunks (the
// convergence experiment) pass trace[scanned:] on the next call.
func (d *Driver) ReplayTrace(trace []dataset.Measurement, toLabel func(dataset.Measurement) (float64, bool), limit int) (used, scanned int) {
	used, scanned, _ = d.ReplayTraceCtx(context.Background(), trace, toLabel, limit)
	return used, scanned
}

// ReplayTraceCtx is ReplayTrace with cancellation, polled every few
// thousand scanned records. On cancellation it returns the context's error
// along with the counts consumed so far; resume by passing trace[scanned:].
func (d *Driver) ReplayTraceCtx(ctx context.Context, trace []dataset.Measurement, toLabel func(dataset.Measurement) (float64, bool), limit int) (used, scanned int, err error) {
	for _, m := range trace {
		if limit > 0 && used >= limit {
			break
		}
		if scanned&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return used, scanned, err
			}
		}
		scanned++
		if !d.IsNeighbor(m.I, m.J) {
			continue
		}
		label, ok := toLabel(m)
		if !ok {
			continue
		}
		d.eng.ApplyLabel(m.I, m.J, label)
		used++
	}
	return used, scanned, nil
}

// IsNeighbor reports whether j is in node i's neighbor set — the
// topology filter trace replay and source draining apply to incoming
// measurements (only probes toward a node's k neighbors train it, §5.3).
// i must be in [0, n); out-of-range j simply reports false.
func (d *Driver) IsNeighbor(i, j int) bool {
	for _, n := range d.neighbors[i] {
		if n == j {
			return true
		}
	}
	return false
}

// EvalSet returns the ground-truth labels and predicted scores over the
// evaluation pairs: the off-diagonal entries never used for training, with
// present ground truth ("probe a few and predict many" — prediction is
// judged on the unmeasured pairs). maxPairs > 0 subsamples the set
// deterministically for cheap checkpoint evaluation; 0 means everything.
//
// Label computation and prediction are spread over row-blocks of the pair
// list (cfg.Workers goroutines, 0 = GOMAXPROCS); the output is identical
// to a sequential pass for every worker count. The pair list and the
// full-set labels are cached across calls (they only depend on the fixed
// training mask, ground-truth missing pattern and τ; see
// engine.PairCache) — treat the returned labels as read-only.
func (d *Driver) EvalSet(maxPairs int) (labels, scores []float64) {
	labels, scores, _ = d.EvalSetCtx(context.Background(), maxPairs)
	return labels, scores
}

// EvalSetCtx is EvalSet with cancellation of the block-parallel label and
// score sweeps (see engine.EvalSetCtx).
func (d *Driver) EvalSetCtx(ctx context.Context, maxPairs int) (labels, scores []float64, err error) {
	return engine.EvalSetCtx(ctx, d.eng.Store(), engine.EvalSpec{
		Mask:          d.trainMask,
		Truth:         d.ds.Matrix,
		Metric:        d.ds.Metric,
		Tau:           d.cfg.Tau,
		MaxPairs:      maxPairs,
		SubsampleSeed: d.cfg.Seed + 7919,
		Workers:       d.cfg.Workers,
		Cache:         &d.evalCache,
	})
}

// AUC evaluates the classifier on the full test set.
func (d *Driver) AUC() float64 {
	labels, scores := d.EvalSet(0)
	return eval.AUC(labels, scores)
}

// AUCSample evaluates on a deterministic subsample of the test set.
func (d *Driver) AUCSample(maxPairs int) float64 {
	labels, scores := d.EvalSet(maxPairs)
	return eval.AUC(labels, scores)
}

// Confusion evaluates the sign decision rule on the full test set
// (Table 2: predicted class = sign(x̂)), accumulating the matrix in
// parallel over blocks of the test set.
func (d *Driver) Confusion() eval.Confusion {
	labels, scores := d.EvalSet(0)
	return eval.ConfusionAtParallel(labels, scores, 0, d.cfg.Workers)
}

// DefaultBudget returns the paper's convergence budget: each node consumes
// on average 20·k measurements from its k neighbors ("the DMFSGD
// algorithms converge fast after each node probes, on average, no more
// than 20×k measurements", §6.2.4), so the total is 20·k·n.
func DefaultBudget(n, k int) int { return 20 * k * n }

// ClassDriver is the common construction for class-based experiments:
// threshold the dataset at tau, optionally replace the clean class matrix
// via mutate (error injection), and build the driver.
func ClassDriver(ds *dataset.Dataset, tau float64, cfg Config, mutate func(clean *mat.Dense) *mat.Dense) (*Driver, error) {
	cm := classify.Matrix(ds, tau)
	if mutate != nil {
		cm = mutate(cm)
	}
	cfg.Tau = tau
	return New(ds, cm, cfg)
}

// QuantityDriver is the construction for quantity-based (regression)
// experiments: train on raw values scaled by the dataset median, with the
// L2 loss (§6.4).
func QuantityDriver(ds *dataset.Dataset, tau float64, cfg Config) (*Driver, error) {
	cfg.Tau = tau
	cfg.TrainScale = ds.Median()
	return New(ds, ds.Matrix, cfg)
}
