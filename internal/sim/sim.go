// Package sim provides the deterministic sequential simulation driver used
// by all experiments (§6). It reproduces the paper's evaluation procedure:
//
//   - every node independently selects a random neighbor set of k nodes
//     (§5.3, same architecture as Vivaldi);
//   - static measurements (Meridian, HP-S3) are consumed in random order:
//     at each step a random node probes a random neighbor and applies the
//     DMFSGD update rules;
//   - dynamic measurements (Harvard) are replayed in timestamp order;
//   - evaluation predicts the entries that were never measured (the
//     complement of the training mask) and compares them against the
//     ground-truth classes.
//
// The driver is fully deterministic given a seed, which is what makes every
// figure and table in this repository reproducible. The concurrent,
// message-passing implementation of the same protocol lives in package
// runtime; both share the update rules of package sgd.
package sim

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
)

// Config parameterizes a simulation run.
type Config struct {
	// SGD carries the factorization hyper-parameters (rank, η, λ, loss).
	SGD sgd.Config
	// K is the neighbor count per node (§6.2.2).
	K int
	// Tau is the classification threshold used for ground-truth evaluation
	// labels.
	Tau float64
	// TrainScale divides training labels before the SGD update. Classes
	// (±1) use 1 (or 0, which means 1); quantity-based training uses the
	// dataset median so the L2 loss sees O(1) targets. Scaling only changes
	// the magnitude of predictions, not their ranking, so classification
	// metrics and peer selection are unaffected.
	TrainScale float64
	// ForceAsymmetric disables the symmetric RTT trick of Algorithm 1
	// (updating both uᵢ and vᵢ from one sample) and applies the one-sided
	// Algorithm-2 updates instead. Used only by the ablation benchmarks
	// that quantify the value of exploiting RTT symmetry.
	ForceAsymmetric bool
	// Seed drives neighbor selection, probe order and initialization.
	Seed int64
}

// Driver runs the decentralized factorization against a dataset.
type Driver struct {
	ds     *dataset.Dataset
	labels *mat.Dense // training labels: classes (±1) or quantities
	cfg    Config

	nodes     []*sgd.Coordinates
	neighbors [][]int
	trainMask *mat.Mask
	rng       *rand.Rand

	steps int // successful updates so far
}

// New builds a Driver.
//
// labels is the matrix the *measurement module* would produce: the class
// matrix (possibly corrupted, §6.3) for class-based prediction, or the raw
// quantity matrix for quantity-based prediction (§6.4). Ground truth for
// evaluation always comes from the clean dataset thresholded at cfg.Tau.
func New(ds *dataset.Dataset, labels *mat.Dense, cfg Config) (*Driver, error) {
	if err := cfg.SGD.Validate(); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K >= ds.N() {
		return nil, fmt.Errorf("sim: k=%d out of (0,%d)", cfg.K, ds.N())
	}
	if labels.Rows() != ds.N() || labels.Cols() != ds.N() {
		return nil, fmt.Errorf("sim: labels %dx%d, dataset has %d nodes",
			labels.Rows(), labels.Cols(), ds.N())
	}
	if cfg.TrainScale == 0 {
		cfg.TrainScale = 1
	}
	if cfg.TrainScale < 0 {
		return nil, fmt.Errorf("sim: TrainScale must be positive, got %v", cfg.TrainScale)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	trainMask, neighbors := mat.NeighborMask(ds.N(), cfg.K, ds.Metric.Symmetric(), rng)
	nodes := make([]*sgd.Coordinates, ds.N())
	for i := range nodes {
		nodes[i] = sgd.NewCoordinates(cfg.SGD.Rank, rng)
	}
	return &Driver{
		ds:        ds,
		labels:    labels,
		cfg:       cfg,
		nodes:     nodes,
		neighbors: neighbors,
		trainMask: trainMask,
		rng:       rng,
	}, nil
}

// N returns the node count.
func (d *Driver) N() int { return d.ds.N() }

// TauValue returns the evaluation threshold in effect.
func (d *Driver) TauValue() float64 { return d.cfg.Tau }

// SwapLabels replaces the training label matrix mid-run, modelling a
// network whose ground truth changes while the system keeps running (the
// dynamics the paper's SGD formulation is designed for: measurements are
// processed as they arrive, so a change simply shows up in future
// samples). Dimensions must match the dataset.
func (d *Driver) SwapLabels(labels *mat.Dense) {
	if labels.Rows() != d.ds.N() || labels.Cols() != d.ds.N() {
		panic(fmt.Sprintf("sim: SwapLabels %dx%d, dataset has %d nodes",
			labels.Rows(), labels.Cols(), d.ds.N()))
	}
	d.labels = labels
}

// Steps returns the number of successful measurements consumed so far.
func (d *Driver) Steps() int { return d.steps }

// Neighbors returns node i's neighbor set (shared slice; do not modify).
func (d *Driver) Neighbors(i int) []int { return d.neighbors[i] }

// TrainMask returns the observation mask (shared; do not modify).
func (d *Driver) TrainMask() *mat.Mask { return d.trainMask }

// Coordinates returns node i's coordinates (live, not a copy).
func (d *Driver) Coordinates(i int) *sgd.Coordinates { return d.nodes[i] }

// Predict returns x̂ᵢⱼ = uᵢ·vⱼᵀ, the estimate of the (possibly scaled)
// training label from i to j.
func (d *Driver) Predict(i, j int) float64 {
	return sgd.Predict(d.nodes[i].U, d.nodes[j].V)
}

// Step performs one protocol exchange: a random node probes one random
// neighbor, the measurement module yields the pair's label, and the DMFSGD
// update rules fire. Returns false when the sampled pair has no label
// (missing data) — the probe failed and nothing was updated.
func (d *Driver) Step() bool {
	i := d.rng.Intn(len(d.nodes))
	j := d.neighbors[i][d.rng.Intn(len(d.neighbors[i]))]
	return d.apply(i, j)
}

// apply consumes the label of pair (i, j) with the metric-appropriate
// algorithm.
func (d *Driver) apply(i, j int) bool {
	if d.labels.IsMissing(i, j) {
		return false
	}
	x := d.labels.At(i, j) / d.cfg.TrainScale
	if d.ds.Metric.Symmetric() && !d.cfg.ForceAsymmetric {
		// Algorithm 1 (RTT): the sender i infers x and updates both its
		// vectors against j's.
		d.cfg.SGD.UpdateRTT(d.nodes[i], d.nodes[j].U, d.nodes[j].V, x)
	} else {
		// Algorithm 2 (ABW): the target j infers x, updates vⱼ with the uᵢ
		// carried by the probe, and replies with (x, vⱼ); i updates uᵢ.
		// The reply carries vⱼ as it was when sent (step 3 precedes step 4),
		// i.e. the pre-update value.
		vj := append([]float64(nil), d.nodes[j].V...)
		d.cfg.SGD.UpdateABWTarget(d.nodes[j], d.nodes[i].U, x)
		d.cfg.SGD.UpdateABWSender(d.nodes[i], vj, x)
	}
	d.steps++
	return true
}

// Run performs total successful measurement steps (missing-data probes are
// retried and do not count).
func (d *Driver) Run(total int) {
	for done := 0; done < total; {
		if d.Step() {
			done++
		}
	}
}

// RunCheckpoints runs total steps, invoking fn after every chunk of `every`
// steps (and once at the end if total is not a multiple). fn receives the
// cumulative step count. Used for the convergence curves of Fig. 5(c).
func (d *Driver) RunCheckpoints(total, every int, fn func(step int)) {
	if every <= 0 {
		panic("sim: checkpoint interval must be positive")
	}
	done := 0
	for done < total {
		chunk := every
		if done+chunk > total {
			chunk = total - done
		}
		d.Run(chunk)
		done += chunk
		fn(done)
	}
}

// ReplayTrace consumes up to limit dynamic measurements in trace order
// (Harvard). Only measurements toward the observing node's neighbor set
// are used, matching the k-neighbor architecture; other records are
// ignored (passively probed paths outside the neighbor set). toLabel
// converts each raw value to a training label (class or scaled quantity);
// it may return false to skip a record (e.g. a missing corrupted label).
//
// Returns used, the number of measurements consumed, and scanned, the
// number of trace records examined. Callers replaying in chunks (the
// convergence experiment) pass trace[scanned:] on the next call.
func (d *Driver) ReplayTrace(trace []dataset.Measurement, toLabel func(dataset.Measurement) (float64, bool), limit int) (used, scanned int) {
	for _, m := range trace {
		if limit > 0 && used >= limit {
			break
		}
		scanned++
		if !d.isNeighbor(m.I, m.J) {
			continue
		}
		label, ok := toLabel(m)
		if !ok {
			continue
		}
		x := label / d.cfg.TrainScale
		if d.ds.Metric.Symmetric() && !d.cfg.ForceAsymmetric {
			d.cfg.SGD.UpdateRTT(d.nodes[m.I], d.nodes[m.J].U, d.nodes[m.J].V, x)
		} else {
			vj := append([]float64(nil), d.nodes[m.J].V...)
			d.cfg.SGD.UpdateABWTarget(d.nodes[m.J], d.nodes[m.I].U, x)
			d.cfg.SGD.UpdateABWSender(d.nodes[m.I], vj, x)
		}
		d.steps++
		used++
	}
	return used, scanned
}

func (d *Driver) isNeighbor(i, j int) bool {
	for _, n := range d.neighbors[i] {
		if n == j {
			return true
		}
	}
	return false
}

// EvalSet returns the ground-truth labels and predicted scores over the
// evaluation pairs: the off-diagonal entries never used for training, with
// present ground truth ("probe a few and predict many" — prediction is
// judged on the unmeasured pairs). maxPairs > 0 subsamples the set
// deterministically for cheap checkpoint evaluation; 0 means everything.
func (d *Driver) EvalSet(maxPairs int) (labels, scores []float64) {
	test := d.trainMask.Complement()
	pairs := test.Pairs()
	// Drop pairs with missing ground truth.
	kept := pairs[:0]
	for _, p := range pairs {
		if !d.ds.Matrix.IsMissing(p.I, p.J) {
			kept = append(kept, p)
		}
	}
	pairs = kept
	if maxPairs > 0 && len(pairs) > maxPairs {
		sub := rand.New(rand.NewSource(d.cfg.Seed + 7919))
		sub.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		pairs = pairs[:maxPairs]
	}
	labels = make([]float64, len(pairs))
	scores = make([]float64, len(pairs))
	for idx, p := range pairs {
		labels[idx] = classify.Of(d.ds.Metric, d.ds.Matrix.At(p.I, p.J), d.cfg.Tau).Value()
		scores[idx] = d.Predict(p.I, p.J)
	}
	return labels, scores
}

// AUC evaluates the classifier on the full test set.
func (d *Driver) AUC() float64 {
	labels, scores := d.EvalSet(0)
	return eval.AUC(labels, scores)
}

// AUCSample evaluates on a deterministic subsample of the test set.
func (d *Driver) AUCSample(maxPairs int) float64 {
	labels, scores := d.EvalSet(maxPairs)
	return eval.AUC(labels, scores)
}

// Confusion evaluates the sign decision rule on the full test set
// (Table 2: predicted class = sign(x̂)).
func (d *Driver) Confusion() eval.Confusion {
	labels, scores := d.EvalSet(0)
	return eval.ConfusionAt(labels, scores, 0)
}

// DefaultBudget returns the paper's convergence budget: each node consumes
// on average 20·k measurements from its k neighbors ("the DMFSGD
// algorithms converge fast after each node probes, on average, no more
// than 20×k measurements", §6.2.4), so the total is 20·k·n.
func DefaultBudget(n, k int) int { return 20 * k * n }

// ClassDriver is the common construction for class-based experiments:
// threshold the dataset at tau, optionally replace the clean class matrix
// via mutate (error injection), and build the driver.
func ClassDriver(ds *dataset.Dataset, tau float64, cfg Config, mutate func(clean *mat.Dense) *mat.Dense) (*Driver, error) {
	cm := classify.Matrix(ds, tau)
	if mutate != nil {
		cm = mutate(cm)
	}
	cfg.Tau = tau
	return New(ds, cm, cfg)
}

// QuantityDriver is the construction for quantity-based (regression)
// experiments: train on raw values scaled by the dataset median, with the
// L2 loss (§6.4).
func QuantityDriver(ds *dataset.Dataset, tau float64, cfg Config) (*Driver, error) {
	cfg.Tau = tau
	cfg.TrainScale = ds.Median()
	return New(ds, ds.Matrix, cfg)
}
