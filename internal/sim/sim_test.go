package sim

import (
	"math"
	"testing"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/loss"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
)

func meridianSmall(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	return dataset.Meridian(dataset.MeridianConfig{N: 80, Seed: seed})
}

func hps3Small(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	return dataset.HPS3(dataset.HPS3Config{N: 80, Seed: seed})
}

func defaultCfg(k int, seed int64) Config {
	return Config{SGD: sgd.Defaults(), K: k, Seed: seed}
}

func TestNewValidation(t *testing.T) {
	ds := meridianSmall(t, 1)
	cm := classify.Matrix(ds, ds.Median())

	if _, err := New(ds, cm, Config{SGD: sgd.Defaults(), K: 0, Seed: 1}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(ds, cm, Config{SGD: sgd.Defaults(), K: 80, Seed: 1}); err == nil {
		t.Error("k=n should fail")
	}
	bad := sgd.Defaults()
	bad.Rank = 0
	if _, err := New(ds, cm, Config{SGD: bad, K: 10, Seed: 1}); err == nil {
		t.Error("invalid SGD config should fail")
	}
	small := classify.Matrix(meridianSmall(t, 2), 50)
	_ = small
	wrong := mat.NewMissing(10, 10)
	if _, err := New(ds, wrong, Config{SGD: sgd.Defaults(), K: 10, Seed: 1}); err == nil {
		t.Error("label dimension mismatch should fail")
	}
	cfg := defaultCfg(10, 1)
	cfg.TrainScale = -1
	if _, err := New(ds, cm, cfg); err == nil {
		t.Error("negative TrainScale should fail")
	}
}

func TestRTTLearningBeatsRandom(t *testing.T) {
	// The headline behavior: after the paper's budget, AUC must be far
	// above 0.5 on a class-based RTT task.
	ds := meridianSmall(t, 3)
	tau := ds.Median()
	drv, err := ClassDriver(ds, tau, defaultCfg(10, 42), nil)
	if err != nil {
		t.Fatal(err)
	}
	drv.Run(DefaultBudget(ds.N(), 10))
	auc := drv.AUC()
	if auc < 0.85 {
		t.Errorf("RTT AUC = %v, want >= 0.85", auc)
	}
}

func TestABWLearningBeatsRandom(t *testing.T) {
	ds := hps3Small(t, 4)
	tau := ds.Median()
	drv, err := ClassDriver(ds, tau, defaultCfg(10, 43), nil)
	if err != nil {
		t.Fatal(err)
	}
	drv.Run(DefaultBudget(ds.N(), 10))
	auc := drv.AUC()
	if auc < 0.80 {
		t.Errorf("ABW AUC = %v, want >= 0.80", auc)
	}
}

func TestDeterminism(t *testing.T) {
	ds := meridianSmall(t, 5)
	tau := ds.Median()
	run := func() float64 {
		drv, err := ClassDriver(ds, tau, defaultCfg(10, 7), nil)
		if err != nil {
			t.Fatal(err)
		}
		drv.Run(5000)
		return drv.AUC()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different AUC: %v vs %v", a, b)
	}
}

func TestSeedChangesRun(t *testing.T) {
	ds := meridianSmall(t, 5)
	tau := ds.Median()
	a, _ := ClassDriver(ds, tau, defaultCfg(10, 1), nil)
	b, _ := ClassDriver(ds, tau, defaultCfg(10, 2), nil)
	a.Run(2000)
	b.Run(2000)
	if a.AUC() == b.AUC() {
		t.Error("different seeds should diverge")
	}
}

func TestStepOnlyTouchesNeighborPairs(t *testing.T) {
	ds := meridianSmall(t, 6)
	tau := ds.Median()
	drv, _ := ClassDriver(ds, tau, defaultCfg(5, 9), nil)
	// Coordinates of nodes must change only through neighbor exchanges;
	// verify the train mask matches the neighbor lists.
	mask := drv.TrainMask()
	for i := 0; i < drv.N(); i++ {
		for _, j := range drv.Neighbors(i) {
			if !mask.At(i, j) {
				t.Fatalf("neighbor pair (%d,%d) not in mask", i, j)
			}
		}
	}
	// RTT mask is symmetric.
	for i := 0; i < drv.N(); i++ {
		for j := 0; j < drv.N(); j++ {
			if mask.At(i, j) != mask.At(j, i) {
				t.Fatal("RTT train mask must be symmetric")
			}
		}
	}
}

func TestEvalSetExcludesTraining(t *testing.T) {
	ds := meridianSmall(t, 7)
	tau := ds.Median()
	drv, _ := ClassDriver(ds, tau, defaultCfg(10, 11), nil)
	labels, scores := drv.EvalSet(0)
	if len(labels) != len(scores) || len(labels) == 0 {
		t.Fatal("empty eval set")
	}
	n := drv.N()
	trainCount := drv.TrainMask().Count()
	// Eval pairs + train pairs = all off-diagonal pairs (Meridian is dense).
	if len(labels)+trainCount != n*(n-1) {
		t.Errorf("eval %d + train %d != %d", len(labels), trainCount, n*(n-1))
	}
	for _, l := range labels {
		if l != 1 && l != -1 {
			t.Fatal("labels must be ±1")
		}
	}
}

func TestEvalSetSubsample(t *testing.T) {
	ds := meridianSmall(t, 8)
	tau := ds.Median()
	drv, _ := ClassDriver(ds, tau, defaultCfg(10, 13), nil)
	labels, _ := drv.EvalSet(100)
	if len(labels) != 100 {
		t.Errorf("subsample size = %d", len(labels))
	}
	// Deterministic subsample.
	l2, _ := drv.EvalSet(100)
	for i := range labels {
		if labels[i] != l2[i] {
			t.Fatal("subsample not deterministic")
		}
	}
}

func TestRunCheckpoints(t *testing.T) {
	ds := meridianSmall(t, 9)
	tau := ds.Median()
	drv, _ := ClassDriver(ds, tau, defaultCfg(10, 17), nil)
	var steps []int
	drv.RunCheckpoints(2500, 1000, func(s int) { steps = append(steps, s) })
	want := []int{1000, 2000, 2500}
	if len(steps) != len(want) {
		t.Fatalf("checkpoints = %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("checkpoints = %v, want %v", steps, want)
		}
	}
	if drv.Steps() != 2500 {
		t.Errorf("Steps = %d", drv.Steps())
	}
}

func TestRunCheckpointsPanicsOnBadInterval(t *testing.T) {
	ds := meridianSmall(t, 10)
	drv, _ := ClassDriver(ds, ds.Median(), defaultCfg(10, 1), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	drv.RunCheckpoints(10, 0, func(int) {})
}

func TestConvergenceImprovesWithBudget(t *testing.T) {
	// Fig 5(c): AUC improves with the number of measurements.
	ds := meridianSmall(t, 11)
	tau := ds.Median()
	drv, _ := ClassDriver(ds, tau, defaultCfg(10, 19), nil)
	var aucs []float64
	drv.RunCheckpoints(16000, 4000, func(int) {
		aucs = append(aucs, drv.AUCSample(3000))
	})
	if aucs[len(aucs)-1] < aucs[0] {
		t.Errorf("AUC should improve with budget: %v", aucs)
	}
	if aucs[len(aucs)-1] < 0.8 {
		t.Errorf("final AUC %v too low", aucs[len(aucs)-1])
	}
}

func TestMissingLabelsAreRetried(t *testing.T) {
	// HP-S3 has missing entries; Run must still complete the exact budget.
	ds := hps3Small(t, 12)
	tau := ds.Median()
	drv, _ := ClassDriver(ds, tau, defaultCfg(10, 23), nil)
	drv.Run(3000)
	if drv.Steps() != 3000 {
		t.Errorf("Steps = %d, want 3000", drv.Steps())
	}
}

func TestQuantityDriverRanksPaths(t *testing.T) {
	// Regression mode (§6.4): train on scaled quantities with L2; the
	// predictions must rank test paths usefully (AUC vs. the median
	// threshold well above chance). For RTT, *small* is good, so scores
	// must be negated for AUC.
	ds := meridianSmall(t, 13)
	tau := ds.Median()
	cfg := defaultCfg(10, 29)
	cfg.SGD.Loss = loss.L2
	drv, err := QuantityDriver(ds, tau, cfg)
	if err != nil {
		t.Fatal(err)
	}
	drv.Run(DefaultBudget(ds.N(), 10))
	labels, scores := drv.EvalSet(0)
	for i := range scores {
		scores[i] = -scores[i] // low RTT = good
	}
	auc := evalAUC(labels, scores)
	if auc < 0.8 {
		t.Errorf("quantity-based AUC = %v, want >= 0.8", auc)
	}
}

func TestReplayTraceLearns(t *testing.T) {
	ds := dataset.Harvard(dataset.HarvardConfig{N: 60, Measurements: 150000, Duration: 3600, Seed: 31})
	tau := ds.Median()
	cfg := defaultCfg(10, 37)
	cfg.Tau = tau
	cm := classify.Matrix(ds, tau)
	drv, err := New(ds, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := classify.NewTraceClassifier(ds.Metric, tau)
	used, scanned := drv.ReplayTrace(ds.Trace, func(m dataset.Measurement) (float64, bool) {
		return tc.Classify(m).Value(), true
	}, 0)
	if used == 0 {
		t.Fatal("no trace measurements used")
	}
	if scanned != len(ds.Trace) {
		t.Fatalf("scanned %d of %d", scanned, len(ds.Trace))
	}
	// Only neighbor-set measurements are consumed.
	if used >= len(ds.Trace) {
		t.Fatalf("used %d of %d: neighbor filter not applied", used, len(ds.Trace))
	}
	auc := drv.AUC()
	if auc < 0.75 {
		t.Errorf("trace replay AUC = %v, want >= 0.75", auc)
	}
}

func TestReplayTraceLimit(t *testing.T) {
	ds := dataset.Harvard(dataset.HarvardConfig{N: 40, Measurements: 20000, Duration: 3600, Seed: 41})
	tau := ds.Median()
	cfg := defaultCfg(8, 43)
	cfg.Tau = tau
	drv, _ := New(ds, classify.Matrix(ds, tau), cfg)
	tc := classify.NewTraceClassifier(ds.Metric, tau)
	used, scanned := drv.ReplayTrace(ds.Trace, func(m dataset.Measurement) (float64, bool) {
		return tc.Classify(m).Value(), true
	}, 500)
	if used != 500 {
		t.Errorf("limit not honored: used %d", used)
	}
	if scanned < 500 || scanned > len(ds.Trace) {
		t.Errorf("scanned = %d", scanned)
	}
	// Resuming from trace[scanned:] must consume fresh records.
	used2, _ := drv.ReplayTrace(ds.Trace[scanned:], func(m dataset.Measurement) (float64, bool) {
		return tc.Classify(m).Value(), true
	}, 100)
	if used2 != 100 {
		t.Errorf("resume consumed %d", used2)
	}
}

func TestForceAsymmetricStillLearns(t *testing.T) {
	// Ablation plumbing: one-sided updates on RTT data must run and learn,
	// if typically slower than the symmetric trick.
	ds := meridianSmall(t, 14)
	tau := ds.Median()
	cfg := defaultCfg(10, 47)
	cfg.ForceAsymmetric = true
	drv, err := ClassDriver(ds, tau, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	drv.Run(sim20k(ds.N()))
	if auc := drv.AUC(); auc < 0.7 {
		t.Errorf("asymmetric-update AUC = %v, want >= 0.7", auc)
	}
}

func sim20k(n int) int { return DefaultBudget(n, 10) }

func TestDefaultBudget(t *testing.T) {
	if DefaultBudget(100, 10) != 20000 {
		t.Errorf("DefaultBudget = %d", DefaultBudget(100, 10))
	}
}

// evalAUC avoids importing eval into the test twice (kept tiny here).
func evalAUC(labels, scores []float64) float64 {
	// Mann-Whitney by brute force (test-only, small inputs acceptable).
	var pos, neg int
	var wins float64
	for i, li := range labels {
		if li != 1 {
			continue
		}
		pos++
		for j, lj := range labels {
			if lj != -1 {
				continue
			}
			switch {
			case scores[i] > scores[j]:
				wins++
			case scores[i] == scores[j]:
				wins += 0.5
			}
			_ = j
		}
	}
	for _, l := range labels {
		if l == -1 {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return math.NaN()
	}
	return wins / float64(pos*neg)
}

func BenchmarkDriverStepRTT(b *testing.B) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 200, Seed: 1})
	drv, err := ClassDriver(ds, ds.Median(), Config{SGD: sgd.Defaults(), K: 10, Seed: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.Step()
	}
}

func BenchmarkDriverStepABW(b *testing.B) {
	ds := dataset.HPS3(dataset.HPS3Config{N: 200, Seed: 1})
	drv, err := ClassDriver(ds, ds.Median(), Config{SGD: sgd.Defaults(), K: 10, Seed: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.Step()
	}
}
