package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"dmfsgd/internal/wire"
)

// randClock builds a random canonical clock over a small trainer id
// space so collisions between independently drawn clocks are common.
func randClock(rng *rand.Rand) Clock {
	var c Clock
	for id := uint32(0); id < 6; id++ {
		if rng.Float64() < 0.5 {
			continue
		}
		c = c.Tick(id, uint32(rng.Intn(3)), uint64(rng.Intn(50)+1))
	}
	return c
}

func TestTickAdvancesAndNeverRegresses(t *testing.T) {
	var c Clock
	c = c.Tick(3, 1, 10)
	if e, ok := c.Get(3); !ok || e.Inc != 1 || e.Counter != 10 {
		t.Fatalf("tick not recorded: %+v", c)
	}
	// Lexicographically smaller (inc, counter) pairs are no-ops.
	for _, tick := range []Entry{{3, 1, 9}, {3, 0, 99}} {
		if got := c.Tick(tick.Trainer, tick.Inc, tick.Counter); !reflect.DeepEqual(got, c) {
			t.Errorf("tick to %+v regressed clock: %+v", tick, got)
		}
	}
	// Same incarnation, higher counter advances; higher incarnation
	// advances even when its counter restarts low.
	c = c.Tick(3, 1, 11)
	if e, _ := c.Get(3); e.Counter != 11 {
		t.Fatalf("counter tick lost: %+v", c)
	}
	c = c.Tick(3, 2, 1)
	if e, _ := c.Get(3); e.Inc != 2 || e.Counter != 1 {
		t.Fatalf("incarnation tick lost: %+v", c)
	}
	// New trainers insert in sorted position.
	c = c.Tick(1, 0, 5).Tick(7, 0, 2)
	want := Clock{{1, 0, 5}, {3, 2, 1}, {7, 0, 2}}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("canonical order broken: %+v", c)
	}
}

// TestRestartLineage pins the regression-safety property the cluster
// leans on: after a restart-from-checkpoint, a bumped incarnation with a
// freshly restarted counter still dominates the old life's huge counter.
func TestRestartLineage(t *testing.T) {
	old := Clock{}.Tick(2, 1, 1_000_000)
	restarted := old.Tick(2, 2, 1)
	if restarted.Compare(old) != After {
		t.Fatalf("restarted lineage does not dominate: %+v vs %+v", restarted, old)
	}
	// And the stale lineage can never claw the shard back.
	if got := restarted.Tick(2, 1, 2_000_000); !reflect.DeepEqual(got, restarted) {
		t.Fatalf("old lineage regressed the clock: %+v", got)
	}
}

func TestMergeAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		a, b, c := randClock(rng), randClock(rng), randClock(rng)
		ab, ba := Merge(a, b), Merge(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
		}
		if aa := Merge(a, a); !reflect.DeepEqual(aa, a) {
			t.Fatalf("merge not idempotent: %+v vs %+v", aa, a)
		}
		left, right := Merge(ab, c), Merge(a, Merge(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("merge not associative: %+v vs %+v", left, right)
		}
		if !ab.Dominates(a) || !ab.Dominates(b) {
			t.Fatalf("merge does not dominate inputs: %+v from %+v, %+v", ab, a, b)
		}
		// Canonical: sorted, unique trainers.
		for i := 1; i < len(ab); i++ {
			if ab[i-1].Trainer >= ab[i].Trainer {
				t.Fatalf("merge output not canonical: %+v", ab)
			}
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	base := Clock{{1, 0, 3}, {2, 1, 7}}
	cases := []struct {
		name string
		a, b Clock
		want Ordering
	}{
		{"equal", base, Clock{{1, 0, 3}, {2, 1, 7}}, Equal},
		{"empty-before", nil, base, Before},
		{"counter-after", Clock{{1, 0, 4}, {2, 1, 7}}, base, After},
		{"inc-after", Clock{{1, 1, 1}, {2, 1, 7}}, base, After},
		{"missing-component-before", Clock{{1, 0, 3}}, base, Before},
		{"concurrent", Clock{{1, 0, 9}}, Clock{{2, 0, 9}}, Concurrent},
		{"concurrent-mixed", Clock{{1, 0, 9}, {2, 1, 6}}, base, Concurrent},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
		// Compare is antisymmetric: flipping the sides flips the order.
		flip := map[Ordering]Ordering{Equal: Equal, Concurrent: Concurrent, Before: After, After: Before}
		if got := tc.b.Compare(tc.a); got != flip[tc.want] {
			t.Errorf("%s flipped: got %v, want %v", tc.name, got, flip[tc.want])
		}
	}
}

// TestWeightMonotone: Weight is a strictly monotone projection of clock
// advancement, so equal weights at quiescence certify equal clocks.
func TestWeightMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		a, b := randClock(rng), randClock(rng)
		m := Merge(a, b)
		if m.Weight() < a.Weight() || m.Weight() < b.Weight() {
			t.Fatalf("merge decreased weight: %d from %d/%d", m.Weight(), a.Weight(), b.Weight())
		}
		ticked := a.Tick(uint32(rng.Intn(6)), uint32(rng.Intn(3)), uint64(rng.Intn(60)+1))
		switch ticked.Compare(a) {
		case After:
			if ticked.Weight() <= a.Weight() {
				t.Fatalf("advancing tick did not raise weight: %+v vs %+v", ticked, a)
			}
		case Equal:
			if ticked.Weight() != a.Weight() {
				t.Fatalf("no-op tick changed weight: %+v vs %+v", ticked, a)
			}
		default:
			t.Fatalf("tick produced %v order", ticked.Compare(a))
		}
	}
}

func TestClockWireRoundTrip(t *testing.T) {
	c := Clock{{1, 0, 3}, {4, 2, 9}, {9, 1, 1}}
	if got := ClockFromWire(c.ToWire()); !reflect.DeepEqual(got, c) {
		t.Fatalf("wire round trip: %+v", got)
	}
	// A peer's encoding is untrusted: duplicates and disorder must
	// canonicalize, keeping the per-trainer maximum.
	mangled := []wire.ClockEntry{
		{Trainer: 4, Inc: 2, Counter: 9},
		{Trainer: 1, Inc: 0, Counter: 2},
		{Trainer: 1, Inc: 0, Counter: 3},
		{Trainer: 9, Inc: 1, Counter: 1},
		{Trainer: 4, Inc: 1, Counter: 88},
	}
	if got := ClockFromWire(mangled); !reflect.DeepEqual(got, c) {
		t.Fatalf("mangled wire entries not canonicalized: %+v", got)
	}
}
