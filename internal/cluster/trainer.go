package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"dmfsgd/internal/engine"
	"dmfsgd/internal/metrics"
	"dmfsgd/internal/transport"
	"dmfsgd/internal/wire"
)

// Sentinel errors Step can return. A caller should treat ErrRoundAborted
// as a lost measurement round (skip the batch, call Step again) and
// ErrEvicted as fatal: the surviving cluster has declared this trainer
// dead and reassigned its shards, so continuing would split the brain.
var (
	ErrRoundAborted = errors.New("cluster: round aborted by ownership change")
	ErrEvicted      = errors.New("cluster: evicted from the ownership map")
)

// rosterPoll is how often WaitRoster rechecks the address book.
const rosterPoll = 20 * time.Millisecond

// defaultTimeout is the barrier timeout when Config.Timeout is zero.
const defaultTimeout = 5 * time.Second

// Config describes one trainer's place in the cluster.
type Config struct {
	// ID is this trainer's stable identity (flag-assigned, not a pid: it
	// must survive restarts so the incarnation lineage stays attached).
	ID uint32
	// Incarnation numbers this process lifetime of ID; a restart from a
	// checkpoint must bump it past the persisted value so the new
	// lineage's clock entries dominate every shard the old life wrote.
	Incarnation uint32
	// Trainers is the full initial roster, self included. At most
	// wire.MaxTrainers entries and no more trainers than shards (every
	// roster member must own at least one shard — eviction is detected
	// by absence from the ownership map).
	Trainers []uint32
	// Transport is the cluster lane. It must be FIFO per peer pair
	// (transport.ListenTCPStream, or an in-memory Network without
	// reordering delays — NOT the dial-per-frame gossip TCP, whose
	// frames can overtake each other) and must not be shared with
	// another consumer: Step drains Recv directly.
	Transport transport.Transport
	// Engine is the local training engine. The cluster's step accounting
	// (every trainer advances by the full batch length each round)
	// requires the engine's MailboxCap to be 0 — unbounded — so that the
	// cluster-wide sum of per-trainer applies equals the batch length.
	Engine *engine.Engine
	// Timeout bounds each barrier wait; a peer that misses it is
	// declared dead and failed over. 0 means defaultTimeout.
	Timeout time.Duration
	// Logf, when set, receives protocol diagnostics.
	Logf func(format string, args ...any)
}

// Status is a point-in-time snapshot of the trainer's cluster view,
// the source for dmfserve's /healthz ownership and clock-lag fields.
type Status struct {
	ID          uint32
	Incarnation uint32
	Epoch       uint64
	Round       uint64
	Shards      int
	OwnedShards int
	Owners      []uint32
	Live        []uint32
	// ClockLag sums, over all shards, how far the largest clock weight
	// any peer has advertised runs ahead of the local clock. Zero at
	// quiescence: every broadcast has been merged.
	ClockLag uint64
}

// Trainer runs one member of the lockstep trainer cluster. All methods
// are safe for concurrent use, but Step itself must be called from a
// single goroutine — it is the protocol's main loop.
type Trainer struct {
	cfg     Config
	eng     *engine.Engine
	tp      transport.Transport
	timeout time.Duration

	mu      sync.Mutex
	addrs   map[uint32]string
	live    map[uint32]bool
	owners  []uint32
	mask    []bool
	epoch   uint64
	round   uint64
	clocks  []Clock
	remoteW []uint64
	evicted bool

	prevVers []uint64
	versBuf  []uint64
}

// New validates cfg and builds the trainer with the epoch-0 ownership
// map computed from the full roster. The local clock starts with one
// entry per owned shard at the store's current version, so a trainer
// restored from a checkpoint announces its resumed lineage immediately.
func New(cfg Config) (*Trainer, error) {
	if cfg.Engine == nil || cfg.Transport == nil {
		return nil, errors.New("cluster: Engine and Transport are required")
	}
	shards := cfg.Engine.Store().Shards()
	if len(cfg.Trainers) == 0 || len(cfg.Trainers) > wire.MaxTrainers {
		return nil, fmt.Errorf("cluster: roster of %d trainers, want [1,%d]",
			len(cfg.Trainers), wire.MaxTrainers)
	}
	if len(cfg.Trainers) > shards {
		return nil, fmt.Errorf("cluster: %d trainers over %d shards; every trainer must own a shard",
			len(cfg.Trainers), shards)
	}
	seen := make(map[uint32]bool, len(cfg.Trainers))
	for _, id := range cfg.Trainers {
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate trainer id %d", id)
		}
		seen[id] = true
	}
	if !seen[cfg.ID] {
		return nil, fmt.Errorf("cluster: own id %d missing from roster %v", cfg.ID, cfg.Trainers)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = defaultTimeout
	}
	t := &Trainer{
		cfg:     cfg,
		eng:     cfg.Engine,
		tp:      cfg.Transport,
		timeout: timeout,
		addrs:   make(map[uint32]string),
		live:    seen,
		owners:  Assign(shards, cfg.Trainers),
		clocks:  make([]Clock, shards),
		remoteW: make([]uint64, shards),
	}
	t.mask = OwnedMask(t.owners, cfg.ID)
	t.prevVers = t.eng.Store().Versions(nil)
	for s, owned := range t.mask {
		if owned {
			t.clocks[s] = t.clocks[s].Tick(cfg.ID, cfg.Incarnation, t.prevVers[s])
		}
	}
	return t, nil
}

func (t *Trainer) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// AddPeer records a roster member's transport address (wired from
// member discovery, or statically from flags). Later addresses win.
func (t *Trainer) AddPeer(id uint32, addr string) {
	if id == t.cfg.ID {
		return
	}
	t.mu.Lock()
	t.addrs[id] = addr
	t.mu.Unlock()
}

// WaitRoster blocks until every live roster member has a known address.
func (t *Trainer) WaitRoster(ctx context.Context) error {
	for {
		t.mu.Lock()
		ready := true
		//dmf:allow detorder readiness is an order-independent conjunction over the roster
		for id := range t.live {
			if id != t.cfg.ID && t.addrs[id] == "" {
				ready = false
				break
			}
		}
		t.mu.Unlock()
		if ready {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(rosterPoll):
		}
	}
}

// Status snapshots the trainer's cluster view.
func (t *Trainer) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{
		ID:          t.cfg.ID,
		Incarnation: t.cfg.Incarnation,
		Epoch:       t.epoch,
		Round:       t.round,
		Shards:      len(t.owners),
		OwnedShards: ownedShards(t.mask),
		Owners:      append([]uint32(nil), t.owners...),
	}
	for id := range t.live {
		st.Live = append(st.Live, id)
	}
	sort.Slice(st.Live, func(i, j int) bool { return st.Live[i] < st.Live[j] })
	for s, c := range t.clocks {
		if w := c.Weight(); t.remoteW[s] > w {
			st.ClockLag += t.remoteW[s] - w
		}
	}
	return st
}

// OwnedMask returns a copy of the current ownership mask for this
// trainer (shard → owned here).
func (t *Trainer) OwnedMask() []bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]bool(nil), t.mask...)
}

// roundState accumulates one round's inbound barrier traffic.
type roundState struct {
	epoch      uint64
	round      uint64
	inbound    []engine.RoutedTarget
	routedDone map[uint32]bool
	clockDone  map[uint32]bool
}

// Step runs one lockstep round over batch. Every live trainer must call
// Step with the same round's batch (identical sessions seeded alike
// guarantee this); a nil batch is a heartbeat round — a pure barrier
// exchange that keeps failure detection live while no measurements
// arrive. On success the whole batch has been applied cluster-wide and
// the local engine's step counter advanced by len(batch).
//
// On a barrier timeout the trainer declares the silent peers dead,
// recomputes the ownership map from the survivors (deterministically,
// so concurrent detectors agree), broadcasts it, and returns
// ErrRoundAborted: the round's batch is partially applied, like a lossy
// measurement round. Receiving a higher-epoch ownership map likewise
// aborts the round in flight; ErrEvicted means this trainer was
// declared dead and must stop training.
func (t *Trainer) Step(ctx context.Context, batch []engine.Sample) (n int, err error) {
	start := startTimer()
	// The pprof label attributes profile samples taken anywhere under the
	// round — engine apply, wire encode, barrier wait — to the round loop.
	pprof.Do(ctx, pprof.Labels("dmf_phase", "cluster_round"), func(ctx context.Context) {
		n, err = t.step(ctx, batch)
	})
	dur := sinceDur(start)
	t.mu.Lock()
	round := t.round
	t.updateClockLagLocked()
	t.mu.Unlock()
	switch {
	case err == nil:
		mRounds.Inc()
		mRoundSec.Observe(dur.Seconds())
		metrics.Emit("round", dur,
			metrics.KV{K: "round", V: int64(round)},
			metrics.KV{K: "batch", V: int64(len(batch))})
	case errors.Is(err, ErrRoundAborted), errors.Is(err, ErrEvicted):
		mRoundsAborted.Inc()
		metrics.Emit("round_aborted", dur,
			metrics.KV{K: "round", V: int64(round)})
	}
	return n, err
}

// updateClockLagLocked refreshes the clock-lag gauge from the same
// comparison Status reports. Callers hold t.mu.
func (t *Trainer) updateClockLagLocked() {
	var lag uint64
	for s, c := range t.clocks {
		if w := c.Weight(); t.remoteW[s] > w {
			lag += t.remoteW[s] - w
		}
	}
	mClockLag.SetInt(int64(lag))
}

// step is the round body; Step wraps it with profiling labels, round
// metrics, and tracing.
func (t *Trainer) step(ctx context.Context, batch []engine.Sample) (int, error) {
	t.mu.Lock()
	if t.evicted {
		t.mu.Unlock()
		return 0, ErrEvicted
	}
	st := &roundState{
		epoch:      t.epoch,
		round:      t.round,
		routedDone: make(map[uint32]bool),
		clockDone:  make(map[uint32]bool),
	}
	mask := t.mask
	owners := t.owners
	peers := t.peerIDsLocked()
	t.mu.Unlock()

	stepsBefore := t.eng.Steps()
	_, routed, err := t.eng.ApplyBatchOwned(ctx, batch, mask)
	if err != nil {
		return 0, err
	}

	// Exchange routed cross-shard target updates; an empty Last frame is
	// the barrier marker when nothing crossed a boundary.
	outbound := make(map[uint32][]wire.Routed)
	for _, r := range routed {
		dst := owners[int(r.Target)%len(owners)]
		outbound[dst] = append(outbound[dst], wire.Routed{
			Target: uint32(r.Target),
			Sender: uint32(r.Sender),
			K:      uint32(r.K),
			X:      r.X,
		})
	}
	for _, id := range peers {
		if err := t.sendRouted(id, st, outbound[id]); err != nil {
			t.logf("cluster: routed send to %d: %v", id, err)
		}
	}
	if err := t.await(ctx, st, false); err != nil {
		return 0, err
	}

	if err := t.eng.CommitBatchTargets(ctx, st.inbound, mask); err != nil {
		return 0, err
	}
	// Valid because MailboxCap is 0 in cluster mode: the sender-shard
	// partition applies every sample exactly once cluster-wide, so each
	// trainer's counter tracks the cluster-wide sample count — the same
	// trajectory a single engine's counter follows.
	t.eng.SetSteps(stepsBefore + len(batch))

	// Tick the clock of every owned shard the round dirtied and
	// broadcast the refreshed blocks; an empty frame terminates the
	// stream and doubles as the barrier marker.
	dirty := t.tickDirty(mask)
	for _, id := range peers {
		if err := t.sendClock(id, st, dirty); err != nil {
			t.logf("cluster: clock send to %d: %v", id, err)
		}
	}
	if err := t.await(ctx, st, true); err != nil {
		return 0, err
	}

	t.mu.Lock()
	t.round = st.round + 1
	t.mu.Unlock()
	return len(batch), nil
}

// peerIDsLocked returns the live roster minus self, sorted.
func (t *Trainer) peerIDsLocked() []uint32 {
	ids := make([]uint32, 0, len(t.live))
	for id := range t.live {
		if id != t.cfg.ID {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// tickDirty advances the local clock of every owned shard whose store
// version moved since the last round and returns those shard indices.
func (t *Trainer) tickDirty(mask []bool) []int {
	store := t.eng.Store()
	t.versBuf = store.Versions(t.versBuf)
	var dirty []int
	t.mu.Lock()
	for s, ver := range t.versBuf {
		if mask[s] && ver != t.prevVers[s] {
			t.clocks[s] = t.clocks[s].Tick(t.cfg.ID, t.cfg.Incarnation, ver)
			dirty = append(dirty, s)
		}
	}
	t.mu.Unlock()
	t.prevVers = append(t.prevVers[:0], t.versBuf...)
	return dirty
}

// send resolves id's address and ships one frame.
func (t *Trainer) send(id uint32, data []byte) error {
	t.mu.Lock()
	addr := t.addrs[id]
	t.mu.Unlock()
	if addr == "" {
		return fmt.Errorf("no address for trainer %d", id)
	}
	return t.tp.Send(addr, data)
}

// sendRouted ships id's routed updates, fragmented to the wire limit,
// with Last marking the final frame (always sent, even empty).
func (t *Trainer) sendRouted(id uint32, st *roundState, ups []wire.Routed) error {
	for {
		frame := ups
		if len(frame) > wire.MaxRoutedUpdates {
			frame = frame[:wire.MaxRoutedUpdates]
		}
		ups = ups[len(frame):]
		m := wire.RoutedUpdate{
			From:    t.cfg.ID,
			Epoch:   st.epoch,
			Round:   st.round,
			Last:    len(ups) == 0,
			Updates: frame,
		}
		buf, err := wire.AppendRoutedUpdate(nil, &m)
		if err != nil {
			return err
		}
		if err := t.send(id, buf); err != nil {
			return err
		}
		mRoutedFrames.Inc()
		mRoutedUpdates.Add(uint64(len(frame)))
		mRoutedBytes.Add(uint64(len(buf)))
		if m.Last {
			return nil
		}
	}
}

// sendClock ships the dirty owned shard blocks to id, greedily packed
// under the per-frame float budget, then an empty terminator frame.
func (t *Trainer) sendClock(id uint32, st *roundState, dirty []int) error {
	store := t.eng.Store()
	head := wire.ClockDelta{
		From:   t.cfg.ID,
		Epoch:  st.epoch,
		Round:  st.round,
		N:      uint32(store.N()),
		Rank:   uint16(store.Rank()),
		Shards: uint16(store.Shards()),
		Steps:  uint64(t.eng.Steps()),
	}
	flush := func(blocks []wire.ClockBlock) error {
		m := head
		m.Blocks = blocks
		buf, err := wire.AppendClockDelta(nil, &m)
		if err != nil {
			return err
		}
		if err := t.send(id, buf); err != nil {
			return err
		}
		mClockFrames.Inc()
		mClockBytes.Add(uint64(len(buf)))
		return nil
	}
	var blocks []wire.ClockBlock
	budget := 0
	for _, s := range dirty {
		rows := store.ShardNodeCount(s) * store.Rank()
		if len(blocks) > 0 && budget+rows > wire.MaxStateFloats {
			if err := flush(blocks); err != nil {
				return err
			}
			blocks, budget = nil, 0
		}
		u := make([]float64, rows)
		v := make([]float64, rows)
		store.SnapshotShardBlock(s, u, v)
		t.mu.Lock()
		clock := t.clocks[s].ToWire()
		t.mu.Unlock()
		blocks = append(blocks, wire.ClockBlock{Shard: uint16(s), Clock: clock, U: u, V: v})
		budget += rows
	}
	if len(blocks) > 0 {
		if err := flush(blocks); err != nil {
			return err
		}
	}
	return flush(nil) // terminator = barrier marker
}

// await drains the transport until every live peer has delivered its
// round barrier (routed frames, or clock frames when clockPhase), a
// peer misses the timeout (failover, ErrRoundAborted), or an ownership
// change aborts the round.
func (t *Trainer) await(ctx context.Context, st *roundState, clockPhase bool) error {
	waitStart := startTimer()
	barrier := mBarrierRouted
	if clockPhase {
		barrier = mBarrierClock
	}
	defer func() { observeSince(barrier, waitStart) }()
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	for {
		t.mu.Lock()
		peers := t.peerIDsLocked()
		t.mu.Unlock()
		done := true
		for _, id := range peers {
			ok := st.routedDone[id]
			if clockPhase {
				ok = st.clockDone[id]
			}
			if !ok {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case pkt, ok := <-t.tp.Recv():
			if !ok {
				return errors.New("cluster: transport closed")
			}
			if err := t.handleFrame(st, pkt.Data); err != nil {
				return err
			}
		case <-timer.C:
			var missing []uint32
			for _, id := range peers {
				ok := st.routedDone[id]
				if clockPhase {
					ok = st.clockDone[id]
				}
				if !ok {
					missing = append(missing, id)
				}
			}
			t.failover(missing, st.round)
			return ErrRoundAborted
		}
	}
}

// handleFrame dispatches one inbound cluster frame. Malformed or stale
// frames are logged and dropped; only an ownership change returns an
// error (ErrRoundAborted or ErrEvicted), aborting the round in flight.
func (t *Trainer) handleFrame(st *roundState, data []byte) error {
	typ, err := wire.PeekType(data)
	if err != nil {
		t.logf("cluster: bad frame: %v", err)
		return nil
	}
	switch typ {
	case wire.TypeOwnershipMap:
		var m wire.OwnershipMap
		if err := wire.DecodeOwnershipMap(data, &m); err != nil {
			t.logf("cluster: bad ownership map: %v", err)
			return nil
		}
		return t.adoptMap(&m)
	case wire.TypeRoutedUpdate:
		var m wire.RoutedUpdate
		if err := wire.DecodeRoutedUpdate(data, &m); err != nil {
			t.logf("cluster: bad routed update: %v", err)
			return nil
		}
		t.applyRouted(st, &m)
	case wire.TypeClockDelta:
		var m wire.ClockDelta
		if err := wire.DecodeClockDelta(data, &m); err != nil {
			t.logf("cluster: bad clock delta: %v", err)
			return nil
		}
		t.applyClockDelta(st, &m)
	default:
		t.logf("cluster: unexpected %v frame on cluster lane", typ)
	}
	return nil
}

// applyRouted folds one routed-update frame into the round state.
func (t *Trainer) applyRouted(st *roundState, m *wire.RoutedUpdate) {
	if m.Epoch != st.epoch || m.Round != st.round {
		t.logf("cluster: dropping routed frame from %d at epoch %d round %d (at %d/%d)",
			m.From, m.Epoch, m.Round, st.epoch, st.round)
		return
	}
	t.mu.Lock()
	live := t.live[m.From]
	mask := t.mask
	t.mu.Unlock()
	if !live {
		return
	}
	n := t.eng.Store().N()
	for _, u := range m.Updates {
		// Re-validate against local geometry and ownership: a confused
		// peer must not be able to fail the whole round downstream in
		// CommitBatchTargets.
		if int(u.Target) >= n || int(u.Sender) >= n || !mask[int(u.Target)%len(mask)] ||
			math.IsNaN(u.X) || math.IsInf(u.X, 0) {
			t.logf("cluster: dropping invalid routed update %+v from %d", u, m.From)
			continue
		}
		st.inbound = append(st.inbound, engine.RoutedTarget{
			Target: int32(u.Target),
			Sender: int32(u.Sender),
			K:      int32(u.K),
			X:      u.X,
		})
	}
	if m.Last {
		st.routedDone[m.From] = true
	}
}

// applyClockDelta merges a peer's shard clocks and installs the blocks
// that advance them into the local read-only mirror. The empty
// terminator frame marks the peer's clock barrier.
func (t *Trainer) applyClockDelta(st *roundState, m *wire.ClockDelta) {
	if m.Epoch != st.epoch || m.Round != st.round {
		t.logf("cluster: dropping clock frame from %d at epoch %d round %d (at %d/%d)",
			m.From, m.Epoch, m.Round, st.epoch, st.round)
		return
	}
	store := t.eng.Store()
	if int(m.N) != store.N() || int(m.Rank) != store.Rank() || int(m.Shards) != store.Shards() {
		t.logf("cluster: dropping clock frame from %d with foreign geometry %dx%d/%d",
			m.From, m.N, m.Rank, m.Shards)
		return
	}
	t.mu.Lock()
	live := t.live[m.From]
	t.mu.Unlock()
	if !live {
		return
	}
	for i := range m.Blocks {
		b := &m.Blocks[i]
		s := int(b.Shard)
		in := ClockFromWire(b.Clock)
		t.mu.Lock()
		install := !t.clocks[s].Dominates(in) && !t.mask[s]
		t.clocks[s] = Merge(t.clocks[s], in)
		if w := in.Weight(); w > t.remoteW[s] {
			t.remoteW[s] = w
		}
		t.mu.Unlock()
		if !install {
			continue
		}
		// Mirror the block under the owner's own counter so the store's
		// scalar version vector converges across trainers — that is what
		// keeps the legacy follower anti-entropy protocol working
		// unchanged against any cluster member.
		ver := uint64(0)
		if e, ok := in.Get(m.From); ok {
			ver = e.Counter
		}
		store.SetShardBlock(s, b.U, b.V, ver)
	}
	if len(m.Blocks) == 0 {
		st.clockDone[m.From] = true
	}
}

// adoptMap applies an inbound ownership map. Higher epochs win; the
// current round aborts and the next Step resumes one round past the
// announcement so survivors re-enter lockstep at the same round.
func (t *Trainer) adoptMap(m *wire.OwnershipMap) error {
	t.mu.Lock()
	if m.Epoch <= t.epoch || len(m.Owners) != len(t.owners) {
		stale := m.Epoch <= t.epoch
		t.mu.Unlock()
		if !stale {
			t.logf("cluster: dropping ownership map with %d shards, have %d", len(m.Owners), len(t.owners))
		}
		return nil
	}
	t.installOwnersLocked(m.Epoch, m.Round+1, m.Owners)
	evicted := t.evicted
	t.mu.Unlock()
	t.logf("cluster: adopted ownership epoch %d from trainer %d (round %d)", m.Epoch, m.From, m.Round)
	if evicted {
		return ErrEvicted
	}
	return ErrRoundAborted
}

// installOwnersLocked swaps in a new ownership map: the live set is the
// map's owner set, the mask is recomputed, and shards newly owned here
// join the local clock lineage at their current store version.
func (t *Trainer) installOwnersLocked(epoch, round uint64, owners []uint32) {
	t.epoch = epoch
	t.round = round
	t.owners = append([]uint32(nil), owners...)
	t.live = make(map[uint32]bool)
	for _, id := range owners {
		t.live[id] = true
	}
	t.evicted = !t.live[t.cfg.ID]
	prev := t.mask
	t.mask = OwnedMask(t.owners, t.cfg.ID)
	store := t.eng.Store()
	for s, owned := range t.mask {
		if owned && !prev[s] {
			t.clocks[s] = t.clocks[s].Tick(t.cfg.ID, t.cfg.Incarnation, store.ShardVersion(s))
		}
	}
}

// failover declares missing dead, recomputes ownership from the
// survivors and broadcasts the new map — including to the suspects, so
// a merely-slow peer learns it was evicted and stops. Assign is a pure
// function of the surviving roster, so concurrent detectors that agree
// on the failure agree on the whole map without coordinating.
func (t *Trainer) failover(missing []uint32, round uint64) {
	t.mu.Lock()
	dead := make(map[uint32]bool, len(missing))
	for _, id := range missing {
		dead[id] = true
	}
	var survivors []uint32
	//dmf:allow detorder Assign sorts the survivor set before computing ownership
	for id := range t.live {
		if !dead[id] {
			survivors = append(survivors, id)
		}
	}
	epoch := t.epoch + 1
	owners := Assign(len(t.owners), survivors)
	t.installOwnersLocked(epoch, round+1, owners)
	notify := make([]uint32, 0, len(t.addrs))
	//dmf:allow detorder one fire-and-forget send per peer; delivery order is not part of the protocol
	for id := range t.addrs {
		if id != t.cfg.ID {
			notify = append(notify, id)
		}
	}
	t.mu.Unlock()
	mFailovers.Inc()
	mEvicted.Add(uint64(len(missing)))
	metrics.Emit("failover", 0,
		metrics.KV{K: "round", V: int64(round)},
		metrics.KV{K: "epoch", V: int64(epoch)},
		metrics.KV{K: "evicted", V: int64(len(missing))})
	t.logf("cluster: trainer(s) %v missed the round-%d barrier; epoch %d owners %v",
		missing, round, epoch, owners)
	m := wire.OwnershipMap{From: t.cfg.ID, Epoch: epoch, Round: round, Owners: owners}
	buf, err := wire.AppendOwnershipMap(nil, &m)
	if err != nil {
		t.logf("cluster: encoding ownership map: %v", err)
		return
	}
	for _, id := range notify {
		if err := t.send(id, buf); err != nil {
			t.logf("cluster: ownership broadcast to %d: %v", id, err)
		}
	}
}
