package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dmfsgd/internal/engine"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/transport"
)

// testEngine builds a deterministic engine over a random problem; every
// call with the same seed yields a bit-identical engine, which is what
// lets N cluster members start from the same coordinates.
func testEngine(t testing.TB, n, k, shards int, symmetric bool, seed int64) (*engine.Engine, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	_, neighbors := mat.NeighborMask(n, k, symmetric, rng)
	labels := mat.NewDense(n, n)
	lrng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if lrng.Float64() < 0.5 {
				labels.Set(i, j, 1)
			} else {
				labels.Set(i, j, -1)
			}
		}
	}
	e, err := engine.New(labels, neighbors, rng, engine.Config{
		SGD:       sgd.Defaults(),
		Symmetric: symmetric,
		Shards:    shards,
		Workers:   1,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, neighbors
}

func testBatch(neighbors [][]int, n, size int, seed int64) []engine.Sample {
	rng := rand.New(rand.NewSource(seed))
	batch := make([]engine.Sample, 0, size)
	for len(batch) < size {
		i := rng.Intn(n)
		j := neighbors[i][rng.Intn(len(neighbors[i]))]
		label := 1.0
		if rng.Float64() < 0.5 {
			label = -1
		}
		batch = append(batch, engine.Sample{I: i, J: j, Label: label})
	}
	return batch
}

func enginesEqual(t *testing.T, ctx string, a, b *engine.Engine) {
	t.Helper()
	au, av := a.Store().SnapshotFlat()
	bu, bv := b.Store().SnapshotFlat()
	if !reflect.DeepEqual(au, bu) || !reflect.DeepEqual(av, bv) {
		t.Fatalf("%s: coordinates diverge", ctx)
	}
	if !a.Store().VersionsEqual(b.Store().Versions(nil)) {
		t.Fatalf("%s: store versions diverge: %v vs %v",
			ctx, a.Store().Versions(nil), b.Store().Versions(nil))
	}
	if a.Steps() != b.Steps() {
		t.Fatalf("%s: steps diverge: %d vs %d", ctx, a.Steps(), b.Steps())
	}
}

// soloTrainer runs a roster-of-one trainer over the batches and returns
// it — the lockstep reference every partitioned run must reproduce.
func soloTrainer(t *testing.T, symmetric bool, batches [][]engine.Sample, seed int64, n, k, shards int) *Trainer {
	t.Helper()
	e, _ := testEngine(t, n, k, shards, symmetric, seed)
	net := transport.NewNetwork(transport.NetworkConfig{})
	tr, err := New(Config{ID: 1, Trainers: []uint32{1}, Transport: net.Attach("solo"), Engine: e})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for r, b := range batches {
		if applied, err := tr.Step(ctx, b); err != nil || applied != len(b) {
			t.Fatalf("solo round %d: applied %d, err %v", r, applied, err)
		}
	}
	return tr
}

// TestSingleTrainerMatchesApplyBatchCtx pins the T=1 contract: a
// roster-of-one cluster is bit-identical to the plain engine path in
// both update modes — coordinates, store versions and step counter.
func TestSingleTrainerMatchesApplyBatchCtx(t *testing.T) {
	for _, symmetric := range []bool{true, false} {
		const n, k, shards = 40, 8, 5
		ref, neighbors := testEngine(t, n, k, shards, symmetric, 7)
		var batches [][]engine.Sample
		for r := 0; r < 4; r++ {
			batches = append(batches, testBatch(neighbors, n, 300, int64(100+r)))
		}
		tr := soloTrainer(t, symmetric, batches, 7, n, k, shards)
		for _, b := range batches {
			if _, err := ref.ApplyBatchCtx(context.Background(), b); err != nil {
				t.Fatal(err)
			}
		}
		enginesEqual(t, fmt.Sprintf("symmetric=%v", symmetric), ref, tr.eng)
		st := tr.Status()
		if st.Round != uint64(len(batches)) || st.Epoch != 0 || st.OwnedShards != shards {
			t.Fatalf("solo status: %+v", st)
		}
	}
}

// runCluster builds T trainers over one in-memory network, steps them
// through the batches concurrently (the barriers demand it) and returns
// them.
func runCluster(t *testing.T, ids []uint32, symmetric bool, batches [][]engine.Sample, seed int64, n, k, shards int) []*Trainer {
	t.Helper()
	net := transport.NewNetwork(transport.NetworkConfig{})
	trainers := make([]*Trainer, len(ids))
	for i, id := range ids {
		e, _ := testEngine(t, n, k, shards, symmetric, seed)
		tr, err := New(Config{
			ID:        id,
			Trainers:  ids,
			Transport: net.Attach(fmt.Sprintf("t%d", id)),
			Engine:    e,
			Timeout:   30 * time.Second,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		trainers[i] = tr
	}
	for i, tr := range trainers {
		for j, id := range ids {
			if i != j {
				tr.AddPeer(id, fmt.Sprintf("t%d", id))
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	errs := make(chan error, len(trainers))
	for _, tr := range trainers {
		go func(tr *Trainer) {
			for _, b := range batches {
				if applied, err := tr.Step(ctx, b); err != nil {
					errs <- fmt.Errorf("trainer %d: %w", tr.cfg.ID, err)
					return
				} else if applied != len(b) {
					errs <- fmt.Errorf("trainer %d: applied %d of %d", tr.cfg.ID, applied, len(b))
					return
				}
			}
			errs <- nil
		}(tr)
	}
	for range trainers {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	return trainers
}

// TestPartitionEquivalence is the tentpole acceptance pin: a 2- and
// 3-trainer cluster converges bit-identically to the solo lockstep run
// — every member's full coordinate view (owned shards plus mirrors),
// store version vector and step counter — with zero clock lag and
// identical per-shard vector clocks at quiescence.
func TestPartitionEquivalence(t *testing.T) {
	for _, symmetric := range []bool{true, false} {
		for _, ids := range [][]uint32{{1, 2}, {3, 1, 2}} {
			const n, k, shards = 40, 8, 5
			seed := int64(7)
			_, neighbors := testEngine(t, n, k, shards, symmetric, seed)
			var batches [][]engine.Sample
			for r := 0; r < 4; r++ {
				batches = append(batches, testBatch(neighbors, n, 300, int64(100+r)))
			}
			solo := soloTrainer(t, symmetric, batches, seed, n, k, shards)
			trainers := runCluster(t, ids, symmetric, batches, seed, n, k, shards)
			for _, tr := range trainers {
				ctx := fmt.Sprintf("symmetric=%v T=%d trainer %d", symmetric, len(ids), tr.cfg.ID)
				enginesEqual(t, ctx, solo.eng, tr.eng)
				st := tr.Status()
				if st.ClockLag != 0 {
					t.Fatalf("%s: clock lag %d at quiescence", ctx, st.ClockLag)
				}
				if st.Round != uint64(len(batches)) || st.Epoch != 0 {
					t.Fatalf("%s: status %+v", ctx, st)
				}
				if !reflect.DeepEqual(tr.clocks, trainers[0].clocks) {
					t.Fatalf("%s: vector clocks diverge:\n%v\n%v", ctx, tr.clocks, trainers[0].clocks)
				}
			}
		}
	}
}

// TestHeartbeatRound: a nil batch is a pure barrier exchange — rounds
// advance, coordinates and steps do not.
func TestHeartbeatRound(t *testing.T) {
	const n, k, shards = 40, 8, 5
	trainers := runCluster(t, []uint32{1, 2}, false, [][]engine.Sample{nil, nil, nil}, 7, n, k, shards)
	fresh, _ := testEngine(t, n, k, shards, false, 7)
	for _, tr := range trainers {
		enginesEqual(t, "heartbeat", fresh, tr.eng)
		if st := tr.Status(); st.Round != 3 || st.ClockLag != 0 {
			t.Fatalf("heartbeat status: %+v", st)
		}
	}
}

// TestFailoverHandoff: when a trainer goes silent past the barrier
// timeout, the survivor bumps the epoch, takes over every shard, keeps
// training alone, and the late peer is evicted by the broadcast map.
func TestFailoverHandoff(t *testing.T) {
	const n, k, shards = 40, 8, 5
	ids := []uint32{1, 2}
	net := transport.NewNetwork(transport.NetworkConfig{})
	var trainers []*Trainer
	var neighbors [][]int
	for _, id := range ids {
		e, nb := testEngine(t, n, k, shards, false, 7)
		neighbors = nb
		tr, err := New(Config{
			ID:        id,
			Trainers:  ids,
			Transport: net.Attach(fmt.Sprintf("t%d", id)),
			Engine:    e,
			Timeout:   200 * time.Millisecond,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		trainers = append(trainers, tr)
	}
	a, b := trainers[0], trainers[1]
	a.AddPeer(2, "t2")
	b.AddPeer(1, "t1")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Two healthy joint rounds.
	for r := 0; r < 2; r++ {
		batch := testBatch(neighbors, n, 300, int64(100+r))
		errs := make(chan error, 2)
		for _, tr := range trainers {
			go func(tr *Trainer) {
				_, err := tr.Step(ctx, batch)
				errs <- err
			}(tr)
		}
		for range trainers {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
	}

	// Trainer 2 goes silent: trainer 1's next round must abort into a
	// failover that hands it every shard.
	if _, err := a.Step(ctx, testBatch(neighbors, n, 300, 102)); !errors.Is(err, ErrRoundAborted) {
		t.Fatalf("silent peer round: err %v, want ErrRoundAborted", err)
	}
	st := a.Status()
	if st.Epoch != 1 || st.OwnedShards != shards || len(st.Live) != 1 || st.Live[0] != 1 {
		t.Fatalf("post-failover status: %+v", st)
	}

	// The survivor serves and trains every shard alone.
	batch := testBatch(neighbors, n, 300, 103)
	if applied, err := a.Step(ctx, batch); err != nil || applied != len(batch) {
		t.Fatalf("solo round after failover: applied %d, err %v", applied, err)
	}

	// The suspect was merely slow: the queued ownership map evicts it.
	if _, err := b.Step(ctx, nil); !errors.Is(err, ErrEvicted) {
		t.Fatalf("late peer: err %v, want ErrEvicted", err)
	}
	if _, err := b.Step(ctx, nil); !errors.Is(err, ErrEvicted) {
		t.Fatal("eviction must be sticky")
	}
}

func TestNewValidation(t *testing.T) {
	e, _ := testEngine(t, 40, 8, 5, false, 7)
	net := transport.NewNetwork(transport.NetworkConfig{})
	tp := net.Attach("x")
	cases := []Config{
		{ID: 1, Trainers: []uint32{1}, Engine: e},                               // nil transport
		{ID: 1, Trainers: []uint32{1}, Transport: tp},                           // nil engine
		{ID: 1, Trainers: []uint32{2, 3}, Transport: tp, Engine: e},             // self missing
		{ID: 1, Trainers: []uint32{1, 1}, Transport: tp, Engine: e},             // duplicate id
		{ID: 1, Trainers: []uint32{1, 2, 3, 4, 5, 6}, Transport: tp, Engine: e}, // trainers > shards
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestWaitRoster(t *testing.T) {
	e, _ := testEngine(t, 40, 8, 5, false, 7)
	net := transport.NewNetwork(transport.NetworkConfig{})
	tr, err := New(Config{ID: 1, Trainers: []uint32{1, 2}, Transport: net.Attach("t1"), Engine: e})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := tr.WaitRoster(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("incomplete roster: err %v", err)
	}
	cancel()
	tr.AddPeer(2, "t2")
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := tr.WaitRoster(ctx2); err != nil {
		t.Fatalf("complete roster: %v", err)
	}
}
