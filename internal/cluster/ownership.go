package cluster

import "sort"

// Assign maps every shard to an owning trainer: the trainer ids are
// sorted and each gets a contiguous run of shards, the first
// shards%len(trainers) trainers one extra. The function is a pure
// deterministic map of (shards, roster), which is what makes failover
// coordination-free: survivors that agree on the surviving roster
// compute identical ownership maps independently.
//
// Contiguous runs (rather than striping) keep each trainer's owned
// mask a single dense range, so a batch's routed updates concentrate
// on at most a couple of boundary trainers.
func Assign(shards int, trainers []uint32) []uint32 {
	if shards <= 0 || len(trainers) == 0 {
		return nil
	}
	ids := append([]uint32(nil), trainers...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	owners := make([]uint32, shards)
	t := len(ids)
	if t > shards {
		ids = ids[:shards] // surplus trainers own nothing
		t = shards
	}
	base, extra := shards/t, shards%t
	s := 0
	for i, id := range ids {
		run := base
		if i < extra {
			run++
		}
		for j := 0; j < run; j++ {
			owners[s] = id
			s++
		}
	}
	return owners
}

// OwnedMask converts an ownership map into trainer id's boolean mask,
// the form engine.ApplyBatchOwned consumes.
func OwnedMask(owners []uint32, id uint32) []bool {
	mask := make([]bool, len(owners))
	for s, o := range owners {
		mask[s] = o == id
	}
	return mask
}

// ownedShards counts the true entries of a mask.
func ownedShards(mask []bool) int {
	n := 0
	for _, o := range mask {
		if o {
			n++
		}
	}
	return n
}
