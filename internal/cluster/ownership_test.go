package cluster

import (
	"reflect"
	"testing"
)

func TestAssignContiguousBalanced(t *testing.T) {
	for _, tc := range []struct {
		shards   int
		trainers []uint32
	}{
		{8, []uint32{1}},
		{8, []uint32{1, 2}},
		{7, []uint32{5, 1, 3}},
		{16, []uint32{4, 2, 9, 7, 11}},
		{3, []uint32{2, 1, 3}},
	} {
		owners := Assign(tc.shards, tc.trainers)
		if len(owners) != tc.shards {
			t.Fatalf("Assign(%d, %v): %d entries", tc.shards, tc.trainers, len(owners))
		}
		counts := map[uint32]int{}
		runs := 0
		for s, id := range owners {
			counts[id]++
			if s == 0 || owners[s-1] != id {
				runs++
			}
		}
		if runs != len(tc.trainers) {
			t.Errorf("Assign(%d, %v): %d runs, want contiguous per trainer: %v",
				tc.shards, tc.trainers, runs, owners)
		}
		base := tc.shards / len(tc.trainers)
		for _, id := range tc.trainers {
			if c := counts[id]; c != base && c != base+1 {
				t.Errorf("Assign(%d, %v): trainer %d owns %d shards, want %d or %d",
					tc.shards, tc.trainers, id, c, base, base+1)
			}
		}
	}
}

// TestAssignDeterministic: failover correctness rests on every survivor
// computing the identical map from the same roster, whatever order it
// learned the ids in.
func TestAssignDeterministic(t *testing.T) {
	want := Assign(10, []uint32{1, 4, 7})
	for _, perm := range [][]uint32{{4, 7, 1}, {7, 1, 4}, {7, 4, 1}} {
		if got := Assign(10, perm); !reflect.DeepEqual(got, want) {
			t.Errorf("Assign(10, %v) = %v, want %v", perm, got, want)
		}
	}
	// Sorted ids own sorted ranges: lower id, lower shards.
	if want[0] != 1 || want[len(want)-1] != 7 {
		t.Errorf("range order: %v", want)
	}
}

func TestAssignEdgeCases(t *testing.T) {
	if got := Assign(0, []uint32{1}); got != nil {
		t.Errorf("zero shards: %v", got)
	}
	if got := Assign(4, nil); got != nil {
		t.Errorf("empty roster: %v", got)
	}
	// More trainers than shards: the lowest ids each take one shard.
	got := Assign(2, []uint32{9, 3, 5})
	if !reflect.DeepEqual(got, []uint32{3, 5}) {
		t.Errorf("surplus trainers: %v", got)
	}
}

func TestOwnedMask(t *testing.T) {
	owners := Assign(5, []uint32{2, 8})
	m2, m8 := OwnedMask(owners, 2), OwnedMask(owners, 8)
	for s := range owners {
		if m2[s] == m8[s] {
			t.Fatalf("shard %d owned by both or neither: %v %v", s, m2, m8)
		}
		if m2[s] != (owners[s] == 2) {
			t.Fatalf("mask disagrees with map at %d", s)
		}
	}
	if ownedShards(m2)+ownedShards(m8) != len(owners) {
		t.Fatal("masks do not partition the shards")
	}
	if OwnedMask(owners, 99) == nil || ownedShards(OwnedMask(owners, 99)) != 0 {
		t.Fatal("foreign trainer mask not empty")
	}
}
