// Package cluster partitions training across a set of cooperating
// trainer processes. Each trainer owns a contiguous range of the
// coordinate store's shards (node i lives in shard i mod P, exactly the
// engine's partition): it applies the sender updates of every batch
// sample observed by its owned nodes, routes the asymmetric target
// updates that cross an ownership boundary to their owning trainer over
// the wire, and mirrors the other trainers' shards read-only so local
// snapshot reads (prediction, replication fan-out) keep working against
// a full coordinate view.
//
// The protocol is lockstep: every trainer of a round sees the same
// batch, and two barriers — routed-update exchange, then shard-block
// broadcast — make the round's result bit-identical to a single engine
// applying the whole batch (see Trainer.Step). Shard versions are
// promoted to vector clocks keyed by (trainer, incarnation) so that a
// trainer restarting from a checkpoint (incarnation bumped) starts a
// new lineage instead of fighting its own stale counters, and so
// concurrent writers after an ownership handoff merge deterministically.
//
// Failure handling is crash-stop: a trainer that misses a barrier past
// the timeout is declared dead, the survivors recompute the ownership
// map deterministically from the surviving roster (everyone arrives at
// the same map independently; the highest epoch wins), and the failed
// round aborts like a lossy measurement round. See DESIGN.md §11 for
// the full protocol, the memory model (owned shards writable, remote
// shards read-only mirrors) and the trust model.
package cluster

import (
	"sort"

	"dmfsgd/internal/wire"
)

// Entry is one vector-clock component: the counter trainer had reached
// during its inc-th incarnation. Incarnations order lineages of the same
// trainer (a restart from a checkpoint bumps the incarnation, restarting
// the counter), so entries compare lexicographically by (Inc, Counter).
type Entry struct {
	Trainer uint32
	Inc     uint32
	Counter uint64
}

// less orders (Inc, Counter) pairs lexicographically.
func (e Entry) less(o Entry) bool {
	if e.Inc != o.Inc {
		return e.Inc < o.Inc
	}
	return e.Counter < o.Counter
}

// Clock is a per-shard vector clock: at most one entry per trainer,
// sorted ascending by trainer id (the canonical form every operation
// maintains, which is what makes Merge deterministic and encodings
// byte-stable). The zero value is the empty clock.
type Clock []Entry

// Get returns trainer's entry, if present.
func (c Clock) Get(trainer uint32) (Entry, bool) {
	i := sort.Search(len(c), func(i int) bool { return c[i].Trainer >= trainer })
	if i < len(c) && c[i].Trainer == trainer {
		return c[i], true
	}
	return Entry{}, false
}

// Tick returns c with trainer's component advanced to (inc, counter).
// Advancing to a lexicographically smaller value is a no-op: a clock
// never regresses, which is the shard-level restart guarantee (a
// restarted trainer's bumped incarnation makes its fresh counters
// compare above any counter of its previous life).
func (c Clock) Tick(trainer, inc uint32, counter uint64) Clock {
	next := Entry{Trainer: trainer, Inc: inc, Counter: counter}
	i := sort.Search(len(c), func(i int) bool { return c[i].Trainer >= trainer })
	if i < len(c) && c[i].Trainer == trainer {
		if c[i].less(next) {
			out := append(Clock(nil), c...)
			out[i] = next
			return out
		}
		return c
	}
	out := make(Clock, 0, len(c)+1)
	out = append(out, c[:i]...)
	out = append(out, next)
	out = append(out, c[i:]...)
	return out
}

// Merge returns the component-wise maximum of a and b — deterministic,
// commutative, associative and idempotent, so any exchange order across
// the cluster converges on the same clock.
func Merge(a, b Clock) Clock {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(Clock, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Trainer < b[j].Trainer:
			out = append(out, a[i])
			i++
		case a[i].Trainer > b[j].Trainer:
			out = append(out, b[j])
			j++
		default:
			if a[i].less(b[j]) {
				out = append(out, b[j])
			} else {
				out = append(out, a[i])
			}
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Ordering is the result of comparing two vector clocks.
type Ordering int8

const (
	// Equal: identical component sets.
	Equal Ordering = iota
	// Before: the receiver is dominated by (strictly older than) the
	// argument.
	Before
	// After: the receiver dominates (is strictly newer than) the
	// argument.
	After
	// Concurrent: each side has a component the other lacks or trails —
	// neither ordered write history contains the other.
	Concurrent
)

// Compare orders c against o. A missing component counts as (0, 0),
// which every real entry exceeds (counters start at 1).
func (c Clock) Compare(o Clock) Ordering {
	var ahead, behind bool
	i, j := 0, 0
	for i < len(c) || j < len(o) {
		switch {
		case j >= len(o) || (i < len(c) && c[i].Trainer < o[j].Trainer):
			ahead = true
			i++
		case i >= len(c) || c[i].Trainer > o[j].Trainer:
			behind = true
			j++
		default:
			if c[i].less(o[j]) {
				behind = true
			} else if o[j].less(c[i]) {
				ahead = true
			}
			i++
			j++
		}
	}
	switch {
	case ahead && behind:
		return Concurrent
	case ahead:
		return After
	case behind:
		return Before
	default:
		return Equal
	}
}

// Dominates reports whether c is at least as new as o on every
// component (Equal or After).
func (c Clock) Dominates(o Clock) bool {
	ord := c.Compare(o)
	return ord == Equal || ord == After
}

// incShift packs (inc, counter) into one monotone scalar for Weight.
const incShift = 40

// Weight projects the clock onto a single monotone scalar — the sum of
// each component's incarnation-weighted counter. It exists only for
// coarse lag reporting (/healthz clock_lag): any Tick or Merge that
// advances the clock strictly increases the weight, so equal weights at
// quiescence mean equal clocks. The packing assumes incarnations stay
// below 2^24 and per-incarnation counters below 2^40 — both hold because
// incarnations are small checkpoint-persisted sequence numbers, not
// timestamps.
func (c Clock) Weight() uint64 {
	var w uint64
	for _, e := range c {
		w += uint64(e.Inc)<<incShift | e.Counter
	}
	return w
}

// ToWire converts the clock to its wire form.
func (c Clock) ToWire() []wire.ClockEntry {
	out := make([]wire.ClockEntry, len(c))
	for i, e := range c {
		out[i] = wire.ClockEntry{Trainer: e.Trainer, Inc: e.Inc, Counter: e.Counter}
	}
	return out
}

// ClockFromWire builds a canonical Clock from wire entries, sorting and
// merging duplicates (the decoder validates lengths, not canonical form
// — a peer's encoding is untrusted input).
func ClockFromWire(es []wire.ClockEntry) Clock {
	out := make(Clock, 0, len(es))
	for _, e := range es {
		out = Merge(out, Clock{{Trainer: e.Trainer, Inc: e.Inc, Counter: e.Counter}})
	}
	return out
}
