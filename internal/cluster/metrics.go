package cluster

import (
	"time"

	"dmfsgd/internal/metrics"
)

// Lockstep-round series (DESIGN.md §12). Round latency and barrier
// wait are histograms per the tail-latency argument in PAPERS.md
// (Zhao et al.): a diverging cluster shows up in p99 long before it
// moves an average.
var (
	mRoundSec = metrics.Default().Histogram("dmf_cluster_round_seconds",
		"Duration of completed lockstep rounds.", metrics.DurationBuckets)
	mRounds = metrics.Default().Counter("dmf_cluster_rounds_total",
		"Lockstep rounds completed.")
	mRoundsAborted = metrics.Default().Counter("dmf_cluster_rounds_aborted_total",
		"Rounds aborted by a barrier timeout or ownership change.")
	mBarrierSec = metrics.Default().HistogramVec("dmf_cluster_barrier_wait_seconds",
		"Time spent waiting on each round barrier.", metrics.DurationBuckets, "phase")
	mBarrierRouted = mBarrierSec.With("routed")
	mBarrierClock  = mBarrierSec.With("clock")
	mRoutedFrames  = metrics.Default().Counter("dmf_cluster_routed_frames_total",
		"Routed-update frames sent (including empty barrier markers).")
	mRoutedUpdates = metrics.Default().Counter("dmf_cluster_routed_updates_total",
		"Cross-shard target updates routed to their owners.")
	mRoutedBytes = metrics.Default().Counter("dmf_cluster_routed_bytes_total",
		"Encoded routed-update bytes sent.")
	mClockFrames = metrics.Default().Counter("dmf_cluster_clock_frames_total",
		"Clock-delta frames sent (including empty terminators).")
	mClockBytes = metrics.Default().Counter("dmf_cluster_clock_bytes_total",
		"Encoded clock-delta bytes sent.")
	mFailovers = metrics.Default().Counter("dmf_cluster_failovers_total",
		"Locally initiated failovers (barrier timeouts that recomputed ownership).")
	mEvicted = metrics.Default().Counter("dmf_cluster_evictions_total",
		"Peers this trainer declared dead and evicted from the ownership map.")
	mClockLag = metrics.Default().Gauge("dmf_cluster_clock_lag",
		"Summed clock weight the newest peer broadcasts run ahead of the local clocks.")
)

// Wall-clock seam (dmfvet noclock exempts this file): round and barrier
// durations are read here, feed metrics and traces only, and never
// influence the round protocol. The barrier *timeout* is different — it
// is protocol behavior and legitimately wall-clock, so it uses
// time.NewTimer at the call site, which noclock does not flag.

// startTimer reads the clock for a later observeSince/sinceDur.
func startTimer() time.Time { return time.Now() }

// observeSince records the seconds elapsed since t0 on h.
func observeSince(h *metrics.Histogram, t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// sinceDur returns the duration elapsed since t0, for trace emission.
func sinceDur(t0 time.Time) time.Duration { return time.Since(t0) }
