package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"unit", []float64{1, 0}, []float64{0, 1}, 0},
		{"simple", []float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{"negative", []float64{-1, 2}, []float64{3, -4}, -11},
		{"single", []float64{2.5}, []float64{4}, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dot(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(2, []float64{10, 20, 30}, dst)
	want := []float64{21, 42, 63}
	if !Equal(dst, want, 1e-12) {
		t.Errorf("Axpy = %v, want %v", dst, want)
	}
}

func TestScale(t *testing.T) {
	dst := []float64{1, -2, 3}
	Scale(-0.5, dst)
	want := []float64{-0.5, 1, -1.5}
	if !Equal(dst, want, 1e-12) {
		t.Errorf("Scale = %v, want %v", dst, want)
	}
}

func TestScaleAxpyMatchesTwoStep(t *testing.T) {
	// ScaleAxpy(beta, dst, alpha, x) must equal Scale(beta) then Axpy(alpha, x).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(16)
		dst1 := NewRandUniform(rng, n)
		x := NewRandUniform(rng, n)
		dst2 := Copy(dst1)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()

		ScaleAxpy(beta, dst1, alpha, x)
		Scale(beta, dst2)
		Axpy(alpha, x, dst2)
		if !Equal(dst1, dst2, 1e-12) {
			t.Fatalf("trial %d: ScaleAxpy %v != two-step %v", trial, dst1, dst2)
		}
	}
}

func TestAddSub(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := Add(a, b); !Equal(got, []float64{4, 7}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b); !Equal(got, []float64{-2, -3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	// inputs untouched
	if !Equal(a, []float64{1, 2}, 0) || !Equal(b, []float64{3, 5}, 0) {
		t.Error("Add/Sub mutated inputs")
	}
}

func TestCopyIndependence(t *testing.T) {
	a := []float64{1, 2, 3}
	c := Copy(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Copy is not independent")
	}
}

func TestNorm2(t *testing.T) {
	tests := []struct {
		a    []float64
		want float64
	}{
		{[]float64{3, 4}, 5},
		{[]float64{0, 0, 0}, 0},
		{[]float64{1}, 1},
		{[]float64{-2, 0, 0}, 2},
	}
	for _, tt := range tests {
		if got := Norm2(tt.a); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Norm2(%v) = %v, want %v", tt.a, got, tt.want)
		}
	}
}

func TestNorm2NoOverflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Norm2 overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestDist(t *testing.T) {
	a := []float64{1, 1}
	b := []float64{4, 5}
	if got := Dist(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist(a, a); got != 0 {
		t.Errorf("Dist(a,a) = %v, want 0", got)
	}
}

func TestZeroFill(t *testing.T) {
	a := []float64{1, 2, 3}
	Fill(a, 7)
	if !Equal(a, []float64{7, 7, 7}, 0) {
		t.Errorf("Fill = %v", a)
	}
	Zero(a)
	if !Equal(a, []float64{0, 0, 0}, 0) {
		t.Errorf("Zero = %v", a)
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := NewRandUniform(rng, 1000)
	for i, v := range a {
		if v < 0 || v >= 1 {
			t.Fatalf("element %d out of [0,1): %v", i, v)
		}
	}
	// Mean should be near 0.5 for 1000 draws.
	var sum float64
	for _, v := range a {
		sum += v
	}
	if mean := sum / 1000; math.Abs(mean-0.5) > 0.05 {
		t.Errorf("mean = %v, too far from 0.5", mean)
	}
}

func TestRandUniformDeterministic(t *testing.T) {
	a := NewRandUniform(rand.New(rand.NewSource(7)), 16)
	b := NewRandUniform(rand.New(rand.NewSource(7)), 16)
	if !Equal(a, b, 0) {
		t.Error("same seed should give identical vectors")
	}
}

func TestHasNaN(t *testing.T) {
	tests := []struct {
		a    []float64
		want bool
	}{
		{[]float64{1, 2, 3}, false},
		{[]float64{1, math.NaN()}, true},
		{[]float64{math.Inf(1)}, true},
		{[]float64{math.Inf(-1), 0}, true},
		{nil, false},
	}
	for _, tt := range tests {
		if got := HasNaN(tt.a); got != tt.want {
			t.Errorf("HasNaN(%v) = %v, want %v", tt.a, got, tt.want)
		}
	}
}

func TestClamp(t *testing.T) {
	a := []float64{-10, -1, 0, 1, 10}
	Clamp(a, 2)
	want := []float64{-2, -1, 0, 1, 2}
	if !Equal(a, want, 0) {
		t.Errorf("Clamp = %v, want %v", a, want)
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if Equal([]float64{1}, []float64{1, 2}, 1) {
		t.Error("Equal should be false for different lengths")
	}
}

// Property: Dot is symmetric and bilinear.
func TestDotPropertySymmetricBilinear(t *testing.T) {
	f := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			alpha = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := NewRandUniform(rng, n)
		b := NewRandUniform(rng, n)
		c := NewRandUniform(rng, n)
		// symmetry
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-9 {
			return false
		}
		// linearity in first argument: (alpha*a + c)·b = alpha*(a·b) + c·b
		scaled := Copy(a)
		Scale(alpha, scaled)
		lhs := Dot(Add(scaled, c), b)
		rhs := alpha*Dot(a, b) + Dot(c, b)
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |a·b| <= ‖a‖‖b‖.
func TestDotPropertyCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := NewRandUniform(rng, n)
		b := NewRandUniform(rng, n)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist.
func TestDistPropertyTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := NewRandUniform(rng, n)
		b := NewRandUniform(rng, n)
		c := NewRandUniform(rng, n)
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SqNorm(a) == Dot(a,a) == Norm2(a)^2.
func TestNormPropertyConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := NewRandUniform(rng, n)
		n2 := Norm2(a)
		return math.Abs(SqNorm(a)-n2*n2) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandUniform(rng, 10) // rank r=10, the paper's default
	y := NewRandUniform(rng, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkScaleAxpy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandUniform(rng, 10)
	dst := NewRandUniform(rng, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScaleAxpy(0.99, dst, -0.1, x)
	}
}

// --- Unrolled-kernel bit-identity ---
//
// The Dot/ScaleAxpy/Axpy unrolls (and their rank-10 fast paths) must be
// bit-identical to the naive reference loops: a single float64 accumulator
// updated in ascending index order. Any reassociation of the summation
// would change fixed-seed experiment outputs.

func refDot(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

func refScaleAxpy(beta float64, dst []float64, alpha float64, x []float64) {
	for i, xv := range x {
		dst[i] = beta*dst[i] + alpha*xv
	}
}

func refAxpy(alpha float64, x, dst []float64) {
	for i, xv := range x {
		dst[i] += alpha * xv
	}
}

// randSigned fills a vector with signed values spread over several orders
// of magnitude, where float64 rounding differences would show up.
func randSigned(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return out
}

func TestDotBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 40; n++ {
		for trial := 0; trial < 50; trial++ {
			a := randSigned(rng, n)
			b := randSigned(rng, n)
			got, want := Dot(a, b), refDot(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d trial=%d: Dot=%x ref=%x", n, trial,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestScaleAxpyBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 0; n <= 40; n++ {
		for trial := 0; trial < 50; trial++ {
			x := randSigned(rng, n)
			dst := randSigned(rng, n)
			ref := append([]float64(nil), dst...)
			beta, alpha := rng.Float64()*2-1, rng.Float64()*2-1
			ScaleAxpy(beta, dst, alpha, x)
			refScaleAxpy(beta, ref, alpha, x)
			for i := range dst {
				if math.Float64bits(dst[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("n=%d trial=%d i=%d: got %x ref %x", n, trial, i,
						math.Float64bits(dst[i]), math.Float64bits(ref[i]))
				}
			}
		}
	}
}

func TestAxpyBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for n := 0; n <= 40; n++ {
		for trial := 0; trial < 50; trial++ {
			x := randSigned(rng, n)
			dst := randSigned(rng, n)
			ref := append([]float64(nil), dst...)
			alpha := rng.Float64()*2 - 1
			Axpy(alpha, x, dst)
			refAxpy(alpha, x, ref)
			for i := range dst {
				if math.Float64bits(dst[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("n=%d trial=%d i=%d: got %x ref %x", n, trial, i,
						math.Float64bits(dst[i]), math.Float64bits(ref[i]))
				}
			}
		}
	}
}

func BenchmarkDotRank16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewRandUniform(rng, 16)
	y := NewRandUniform(rng, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}
