// Package vec provides the small dense-vector kernel used throughout the
// DMFSGD library. Coordinates of a node (the rows uᵢ and vᵢ of the factor
// matrices U and V) are plain []float64 slices; the stochastic gradient
// updates in the paper (eqs. 9, 10, 12, 13) reduce to a handful of
// dot/axpy/scale primitives which live here.
//
// All functions panic on dimension mismatch: a mismatch is always a
// programming error in this library, never an input error.
package vec

import (
	"fmt"
	"math"
	"math/rand"
)

// Dot returns the inner product a·b.
//
// The loop is unrolled four ways into a single accumulator — the adds
// stay in ascending index order, exactly like the naive loop, so results
// are bit-identical to it (unrolling only removes loop and bounds-check
// overhead, it never reassociates the float64 summation). Small fixed
// ranks get fully unrolled fast paths: r = 10 is the paper's default
// coordinate dimensionality, and every snapshot/SGD hot loop lands there.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(dimErr("Dot", len(a), len(b)))
	}
	if len(a) == 10 {
		return dot10(a, b)
	}
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// dot10 is the rank-10 fast path: fully unrolled, one accumulator, adds
// in ascending index order (bit-identical to the generic loop).
func dot10(a, b []float64) float64 {
	a = a[:10]
	b = b[:10]
	var s float64
	s += a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	s += a[9] * b[9]
	return s
}

// Axpy performs dst += alpha*x element-wise. Like ScaleAxpy, elements are
// independent, so the unroll is bit-identical to the naive loop.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic(dimErr("Axpy", len(x), len(dst)))
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		dst[i] += alpha * x[i]
		dst[i+1] += alpha * x[i+1]
		dst[i+2] += alpha * x[i+2]
		dst[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of dst by alpha in place.
func Scale(alpha float64, dst []float64) {
	for i := range dst {
		dst[i] *= alpha
	}
}

// ScaleAxpy performs dst = beta*dst + alpha*x in a single pass. This is the
// exact shape of the SGD update rules: uᵢ ← (1−ηλ)uᵢ − η·grad.
//
// Each element is independent (no cross-element summation), so the 4-way
// unroll and the rank-10 fast path are trivially bit-identical to the
// naive loop.
func ScaleAxpy(beta float64, dst []float64, alpha float64, x []float64) {
	if len(x) != len(dst) {
		panic(dimErr("ScaleAxpy", len(x), len(dst)))
	}
	if len(x) == 10 {
		scaleAxpy10(beta, dst, alpha, x)
		return
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		dst[i] = beta*dst[i] + alpha*x[i]
		dst[i+1] = beta*dst[i+1] + alpha*x[i+1]
		dst[i+2] = beta*dst[i+2] + alpha*x[i+2]
		dst[i+3] = beta*dst[i+3] + alpha*x[i+3]
	}
	for ; i < len(x); i++ {
		dst[i] = beta*dst[i] + alpha*x[i]
	}
}

// scaleAxpy10 is the rank-10 fast path of ScaleAxpy.
func scaleAxpy10(beta float64, dst []float64, alpha float64, x []float64) {
	dst = dst[:10]
	x = x[:10]
	dst[0] = beta*dst[0] + alpha*x[0]
	dst[1] = beta*dst[1] + alpha*x[1]
	dst[2] = beta*dst[2] + alpha*x[2]
	dst[3] = beta*dst[3] + alpha*x[3]
	dst[4] = beta*dst[4] + alpha*x[4]
	dst[5] = beta*dst[5] + alpha*x[5]
	dst[6] = beta*dst[6] + alpha*x[6]
	dst[7] = beta*dst[7] + alpha*x[7]
	dst[8] = beta*dst[8] + alpha*x[8]
	dst[9] = beta*dst[9] + alpha*x[9]
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(dimErr("Add", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = av + b[i]
	}
	return out
}

// Sub returns a−b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(dimErr("Sub", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = av - b[i]
	}
	return out
}

// Copy returns an independent copy of a.
func Copy(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Norm2 returns the Euclidean norm ‖a‖₂, guarding against overflow for
// large components by scaling.
func Norm2(a []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range a {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// SqNorm returns a·a. This is the regularization term λ·uuᵀ of eq. 3.
func SqNorm(a []float64) float64 { return Dot(a, a) }

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(dimErr("Dist", len(a), len(b)))
	}
	var scale, ssq float64
	ssq = 1
	for i := range a {
		v := a[i] - b[i]
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Zero sets every element of dst to 0.
func Zero(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// Fill sets every element of dst to v.
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// RandUniform fills dst with independent draws from Uniform[0,1) using rng.
// The paper initializes all node coordinates this way (§5.3).
func RandUniform(rng *rand.Rand, dst []float64) {
	for i := range dst {
		dst[i] = rng.Float64()
	}
}

// NewRandUniform allocates a length-n vector initialized from Uniform[0,1).
func NewRandUniform(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	RandUniform(rng, out)
	return out
}

// HasNaN reports whether any element is NaN or ±Inf. The runtime uses this
// to reject coordinate updates poisoned by corrupted wire input.
func HasNaN(a []float64) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Clamp limits every element of dst to [−limit, +limit]. A cheap safeguard
// against coordinate blow-up when a caller disables regularization.
func Clamp(dst []float64, limit float64) {
	for i, v := range dst {
		if v > limit {
			dst[i] = limit
		} else if v < -limit {
			dst[i] = -limit
		}
	}
}

// Equal reports element-wise equality within tolerance tol.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func dimErr(op string, a, b int) string {
	return fmt.Sprintf("vec: %s dimension mismatch: %d vs %d", op, a, b)
}
