// Package vec provides the small dense-vector kernel used throughout the
// DMFSGD library. Coordinates of a node (the rows uᵢ and vᵢ of the factor
// matrices U and V) are plain []float64 slices; the stochastic gradient
// updates in the paper (eqs. 9, 10, 12, 13) reduce to a handful of
// dot/axpy/scale primitives which live here.
//
// All functions panic on dimension mismatch: a mismatch is always a
// programming error in this library, never an input error.
package vec

import (
	"fmt"
	"math"
	"math/rand"
)

// Dot returns the inner product a·b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(dimErr("Dot", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy performs dst += alpha*x element-wise.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic(dimErr("Axpy", len(x), len(dst)))
	}
	for i, xv := range x {
		dst[i] += alpha * xv
	}
}

// Scale multiplies every element of dst by alpha in place.
func Scale(alpha float64, dst []float64) {
	for i := range dst {
		dst[i] *= alpha
	}
}

// ScaleAxpy performs dst = beta*dst + alpha*x in a single pass. This is the
// exact shape of the SGD update rules: uᵢ ← (1−ηλ)uᵢ − η·grad.
func ScaleAxpy(beta float64, dst []float64, alpha float64, x []float64) {
	if len(x) != len(dst) {
		panic(dimErr("ScaleAxpy", len(x), len(dst)))
	}
	for i, xv := range x {
		dst[i] = beta*dst[i] + alpha*xv
	}
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(dimErr("Add", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = av + b[i]
	}
	return out
}

// Sub returns a−b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(dimErr("Sub", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = av - b[i]
	}
	return out
}

// Copy returns an independent copy of a.
func Copy(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Norm2 returns the Euclidean norm ‖a‖₂, guarding against overflow for
// large components by scaling.
func Norm2(a []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range a {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// SqNorm returns a·a. This is the regularization term λ·uuᵀ of eq. 3.
func SqNorm(a []float64) float64 { return Dot(a, a) }

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(dimErr("Dist", len(a), len(b)))
	}
	var scale, ssq float64
	ssq = 1
	for i := range a {
		v := a[i] - b[i]
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Zero sets every element of dst to 0.
func Zero(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// Fill sets every element of dst to v.
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// RandUniform fills dst with independent draws from Uniform[0,1) using rng.
// The paper initializes all node coordinates this way (§5.3).
func RandUniform(rng *rand.Rand, dst []float64) {
	for i := range dst {
		dst[i] = rng.Float64()
	}
}

// NewRandUniform allocates a length-n vector initialized from Uniform[0,1).
func NewRandUniform(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	RandUniform(rng, out)
	return out
}

// HasNaN reports whether any element is NaN or ±Inf. The runtime uses this
// to reject coordinate updates poisoned by corrupted wire input.
func HasNaN(a []float64) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Clamp limits every element of dst to [−limit, +limit]. A cheap safeguard
// against coordinate blow-up when a caller disables regularization.
func Clamp(dst []float64, limit float64) {
	for i, v := range dst {
		if v > limit {
			dst[i] = limit
		} else if v < -limit {
			dst[i] = -limit
		}
	}
}

// Equal reports element-wise equality within tolerance tol.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func dimErr(op string, a, b int) string {
	return fmt.Sprintf("vec: %s dimension mismatch: %d vs %d", op, a, b)
}
