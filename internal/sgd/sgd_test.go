package sgd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmfsgd/internal/loss"
	"dmfsgd/internal/vec"
)

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := Defaults()
	if cfg.Rank != 10 || cfg.LearningRate != 0.1 || cfg.Lambda != 0.1 || cfg.Loss != loss.Logistic {
		t.Errorf("Defaults() = %+v, want paper §6.2.4 values", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Defaults should validate: %v", err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"defaults", func(c *Config) {}, true},
		{"zero rank", func(c *Config) { c.Rank = 0 }, false},
		{"negative rank", func(c *Config) { c.Rank = -1 }, false},
		{"zero eta", func(c *Config) { c.LearningRate = 0 }, false},
		{"negative lambda", func(c *Config) { c.Lambda = -0.1 }, false},
		{"zero lambda ok", func(c *Config) { c.Lambda = 0 }, true},
		{"negative clamp", func(c *Config) { c.MaxCoord = -1 }, false},
		{"positive clamp ok", func(c *Config) { c.MaxCoord = 100 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Defaults()
			tt.mut(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() error = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewCoordinatesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCoordinates(10, rng)
	if c.Rank() != 10 || len(c.V) != 10 {
		t.Fatalf("rank = %d / %d", len(c.U), len(c.V))
	}
	for i := 0; i < 10; i++ {
		if c.U[i] < 0 || c.U[i] >= 1 || c.V[i] < 0 || c.V[i] >= 1 {
			t.Fatalf("coordinates out of [0,1): %v %v", c.U[i], c.V[i])
		}
	}
	if !c.Valid() {
		t.Error("fresh coordinates should be valid")
	}
}

func TestCloneIndependent(t *testing.T) {
	c := NewCoordinates(4, rand.New(rand.NewSource(2)))
	d := c.Clone()
	d.U[0] = 99
	if c.U[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestPredictConsistency(t *testing.T) {
	a := &Coordinates{U: []float64{1, 2}, V: []float64{3, 4}}
	b := &Coordinates{U: []float64{5, 6}, V: []float64{7, 8}}
	// x̂(a→b) = u_a · v_b = 1*7+2*8 = 23
	if got := a.PredictTo(b.V); got != 23 {
		t.Errorf("PredictTo = %v, want 23", got)
	}
	if got := b.PredictFrom(a.U); got != 23 {
		t.Errorf("PredictFrom = %v, want 23", got)
	}
	if got := Predict(a.U, b.V); got != 23 {
		t.Errorf("Predict = %v, want 23", got)
	}
}

// The single most important invariant: one SGD step on a sample must not
// increase that sample's regularized loss (for a small enough step, along
// the negative gradient). We verify the update direction decreases the
// objective for the paper's default η.
func TestUpdateRTTDecreasesSampleLoss(t *testing.T) {
	for _, lk := range []loss.Kind{loss.Hinge, loss.Logistic, loss.L2} {
		cfg := Defaults()
		cfg.Loss = lk
		cfg.LearningRate = 0.05
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 50; trial++ {
			self := NewCoordinates(cfg.Rank, rng)
			peer := NewCoordinates(cfg.Rank, rng)
			x := float64(1)
			if rng.Intn(2) == 0 {
				x = -1
			}
			before := cfg.SampleLoss(self.U, peer.V, x, false)
			if !cfg.UpdateRTT(self, peer.U, peer.V, x) {
				t.Fatal("update rejected valid input")
			}
			after := cfg.SampleLoss(self.U, peer.V, x, false)
			if after > before+1e-9 {
				t.Errorf("%v trial %d: loss rose %v -> %v", lk, trial, before, after)
			}
		}
	}
}

func TestUpdateRTTMovesBothVectors(t *testing.T) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(3))
	self := NewCoordinates(cfg.Rank, rng)
	peer := NewCoordinates(cfg.Rank, rng)
	u0, v0 := vec.Copy(self.U), vec.Copy(self.V)
	cfg.UpdateRTT(self, peer.U, peer.V, -1)
	if vec.Equal(self.U, u0, 0) {
		t.Error("u did not move")
	}
	if vec.Equal(self.V, v0, 0) {
		t.Error("v did not move (RTT symmetry should update v too)")
	}
}

func TestUpdateABWSplitsWork(t *testing.T) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(4))
	sender := NewCoordinates(cfg.Rank, rng)
	target := NewCoordinates(cfg.Rank, rng)
	su0, sv0 := vec.Copy(sender.U), vec.Copy(sender.V)
	tu0, tv0 := vec.Copy(target.U), vec.Copy(target.V)

	// Algorithm 2: target updates v_j, sender updates u_i; the other two
	// vectors stay put.
	cfg.UpdateABWTarget(target, sender.U, 1)
	cfg.UpdateABWSender(sender, target.V, 1)

	if vec.Equal(sender.U, su0, 0) {
		t.Error("sender u did not move")
	}
	if !vec.Equal(sender.V, sv0, 0) {
		t.Error("sender v must not move in ABW update")
	}
	if !vec.Equal(target.U, tu0, 0) {
		t.Error("target u must not move in ABW update")
	}
	if vec.Equal(target.V, tv0, 0) {
		t.Error("target v did not move")
	}
}

func TestUpdateRejectsPoisonedPeer(t *testing.T) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(5))
	self := NewCoordinates(cfg.Rank, rng)
	bad := vec.NewRandUniform(rng, cfg.Rank)
	bad[3] = math.NaN()
	good := vec.NewRandUniform(rng, cfg.Rank)
	u0, v0 := vec.Copy(self.U), vec.Copy(self.V)

	if cfg.UpdateRTT(self, bad, good, 1) {
		t.Error("UpdateRTT accepted NaN peer u")
	}
	if cfg.UpdateRTT(self, good, bad, 1) {
		t.Error("UpdateRTT accepted NaN peer v")
	}
	if cfg.UpdateABWSender(self, bad, 1) {
		t.Error("UpdateABWSender accepted NaN")
	}
	if cfg.UpdateABWTarget(self, bad, 1) {
		t.Error("UpdateABWTarget accepted NaN")
	}
	if !vec.Equal(self.U, u0, 0) || !vec.Equal(self.V, v0, 0) {
		t.Error("rejected update still modified coordinates")
	}
	if !self.Valid() {
		t.Error("self poisoned")
	}
}

func TestHingeNoUpdateWhenCorrect(t *testing.T) {
	// Hinge gradient is zero for samples beyond the margin (§5.2.3): the
	// only change must be the regularization shrink.
	cfg := Defaults()
	cfg.Loss = loss.Hinge
	self := &Coordinates{U: []float64{2, 0}, V: []float64{2, 0}}
	peerU := []float64{2, 0}
	peerV := []float64{2, 0}
	// x=1, x̂ = u·v = 4 > 1: correctly classified with margin.
	cfg.UpdateRTT(self, peerU, peerV, 1)
	shrink := 1 - cfg.LearningRate*cfg.Lambda
	want := []float64{2 * shrink, 0}
	if !vec.Equal(self.U, want, 1e-12) || !vec.Equal(self.V, want, 1e-12) {
		t.Errorf("u = %v, v = %v, want both %v", self.U, self.V, want)
	}
}

func TestRegularizationShrinksNorms(t *testing.T) {
	// With λ>0 and a zero-gradient sample, norms must shrink by (1−ηλ).
	cfg := Config{Rank: 3, LearningRate: 0.1, Lambda: 0.5, Loss: loss.Hinge}
	self := &Coordinates{U: []float64{10, 0, 0}, V: []float64{10, 0, 0}}
	n0 := vec.Norm2(self.U)
	cfg.UpdateRTT(self, []float64{10, 0, 0}, []float64{10, 0, 0}, 1) // margin satisfied
	if got, want := vec.Norm2(self.U), n0*(1-0.05); math.Abs(got-want) > 1e-9 {
		t.Errorf("norm after shrink = %v, want %v", got, want)
	}
}

func TestMaxCoordClamps(t *testing.T) {
	cfg := Config{Rank: 2, LearningRate: 10, Lambda: 0, Loss: loss.L2, MaxCoord: 1}
	self := &Coordinates{U: []float64{0.5, 0.5}, V: []float64{0.5, 0.5}}
	// Huge learning rate on L2 would explode the coordinates without clamp.
	cfg.UpdateRTT(self, []float64{5, 5}, []float64{5, 5}, 100)
	for _, v := range append(vec.Copy(self.U), self.V...) {
		if math.Abs(v) > 1 {
			t.Fatalf("coordinate %v exceeds clamp", v)
		}
	}
}

// Convergence test: two-node ping-pong with L2 loss on a constant target
// must drive the prediction to the target (a fixed point of the dynamics).
func TestTwoNodeConvergenceL2(t *testing.T) {
	cfg := Config{Rank: 4, LearningRate: 0.05, Lambda: 0.001, Loss: loss.L2}
	rng := rand.New(rand.NewSource(6))
	a := NewCoordinates(cfg.Rank, rng)
	b := NewCoordinates(cfg.Rank, rng)
	const target = 3.0
	for it := 0; it < 4000; it++ {
		cfg.UpdateRTT(a, b.U, b.V, target)
		cfg.UpdateRTT(b, a.U, a.V, target)
	}
	got := Predict(a.U, b.V)
	if math.Abs(got-target) > 0.15 {
		t.Errorf("two-node L2 fixed point = %v, want ≈%v", got, target)
	}
}

// Convergence test: classification ping-pong must produce the right sign
// with a comfortable margin.
func TestTwoNodeConvergenceLogistic(t *testing.T) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(7))
	for _, x := range []float64{1, -1} {
		a := NewCoordinates(cfg.Rank, rng)
		b := NewCoordinates(cfg.Rank, rng)
		for it := 0; it < 2000; it++ {
			cfg.UpdateRTT(a, b.U, b.V, x)
			cfg.UpdateRTT(b, a.U, a.V, x)
		}
		if got := Predict(a.U, b.V); got*x <= 0 {
			t.Errorf("class %v: prediction %v has wrong sign", x, got)
		}
	}
}

// Property: the update with x=+1 moves the prediction up (or keeps it) and
// x=−1 moves it down, for classification losses — a monotonicity sanity
// check on gradient signs.
func TestUpdatePropertyDirection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, lk := range loss.ClassificationKinds() {
			cfg := Config{Rank: 5, LearningRate: 0.01, Lambda: 0, Loss: lk}
			self := NewCoordinates(cfg.Rank, rng)
			peer := NewCoordinates(cfg.Rank, rng)
			for _, x := range []float64{1, -1} {
				s := self.Clone()
				before := s.PredictTo(peer.V)
				cfg.UpdateABWSender(s, peer.V, x)
				after := s.PredictTo(peer.V)
				if x > 0 && after < before-1e-12 {
					return false
				}
				if x < 0 && after > before+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: updates never produce NaN from finite inputs, for any loss and
// class label, even with extreme-but-finite coordinates.
func TestUpdatePropertyFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, lk := range loss.Kinds() {
			cfg := Config{Rank: 3, LearningRate: 0.1, Lambda: 0.1, Loss: lk}
			self := &Coordinates{
				U: []float64{rng.NormFloat64() * 100, rng.NormFloat64(), rng.NormFloat64()},
				V: []float64{rng.NormFloat64() * 100, rng.NormFloat64(), rng.NormFloat64()},
			}
			peerU := []float64{rng.NormFloat64() * 100, rng.NormFloat64(), rng.NormFloat64()}
			peerV := []float64{rng.NormFloat64() * 100, rng.NormFloat64(), rng.NormFloat64()}
			x := float64(1)
			if rng.Intn(2) == 0 {
				x = -1
			}
			cfg.UpdateRTT(self, peerU, peerV, x)
			if !self.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpdateRTT(b *testing.B) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(1))
	self := NewCoordinates(cfg.Rank, rng)
	peer := NewCoordinates(cfg.Rank, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := float64(1 - 2*(i&1))
		cfg.UpdateRTT(self, peer.U, peer.V, x)
	}
}

func BenchmarkUpdateABW(b *testing.B) {
	cfg := Defaults()
	rng := rand.New(rand.NewSource(1))
	self := NewCoordinates(cfg.Rank, rng)
	peer := NewCoordinates(cfg.Rank, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := float64(1 - 2*(i&1))
		cfg.UpdateABWSender(self, peer.V, x)
	}
}
