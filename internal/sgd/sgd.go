// Package sgd implements the heart of the paper: the Stochastic Gradient
// Descent update rules that let every node maintain its own factor
// coordinates (uᵢ, vᵢ) from local measurements only (§5).
//
// Node i stores two rank-r vectors:
//
//   - uᵢ, the i-th row of U ("out" coordinate: how i probes others),
//   - vᵢ, the i-th row of V ("in" coordinate: how others probe i),
//
// and the estimate of the performance measure from i to j is x̂ᵢⱼ = uᵢ·vⱼᵀ.
//
// Given one measurement xᵢⱼ and the relevant peer coordinates, the updates
// are (η learning rate, λ regularization coefficient):
//
//	RTT (symmetric, measured by the sender — Algorithm 1):
//	  uᵢ ← (1−ηλ)·uᵢ − η·∂l(xᵢⱼ, uᵢvⱼᵀ)/∂uᵢ     (eq. 9)
//	  vᵢ ← (1−ηλ)·vᵢ − η·∂l(xᵢⱼ, uⱼvᵢᵀ)/∂vᵢ     (eq. 10)
//
//	ABW (asymmetric, inferred by the target — Algorithm 2):
//	  uᵢ ← (1−ηλ)·uᵢ − η·∂l(xᵢⱼ, uᵢvⱼᵀ)/∂uᵢ     (eq. 12, at sender i)
//	  vⱼ ← (1−ηλ)·vⱼ − η·∂l(xᵢⱼ, uᵢvⱼᵀ)/∂vⱼ     (eq. 13, at target j)
//
// All losses in this library have gradients of the form g(x, x̂)·other, so
// every update is one Dot plus one ScaleAxpy — no allocation on the hot path.
package sgd

import (
	"fmt"
	"math/rand"

	"dmfsgd/internal/loss"
	"dmfsgd/internal/vec"
)

// Config carries the hyper-parameters of the DMFSGD algorithms. The zero
// value is not usable; call Defaults or fill the fields explicitly.
type Config struct {
	// Rank is r, the number of columns of U and V (paper default: 10).
	Rank int
	// LearningRate is η, the SGD step size (paper default: 0.1).
	LearningRate float64
	// Lambda is λ, the regularization coefficient of eq. 3 (paper
	// default: 0.1). It shrinks coordinates every update, preventing both
	// overfitting and the drift allowed by the non-uniqueness of the
	// factorization (eq. 4).
	Lambda float64
	// Loss selects the loss function (paper default for classes: logistic).
	Loss loss.Kind
	// MaxCoord, when positive, clamps every coordinate component to
	// [−MaxCoord, MaxCoord] after each update. A safety valve for λ=0
	// ablations; the paper's default configuration never hits it.
	MaxCoord float64
}

// Defaults returns the paper's recommended configuration (§6.2.4):
// r=10, η=0.1, λ=0.1, logistic loss.
func Defaults() Config {
	return Config{Rank: 10, LearningRate: 0.1, Lambda: 0.1, Loss: loss.Logistic}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Rank <= 0 {
		return fmt.Errorf("sgd: rank must be positive, got %d", c.Rank)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("sgd: learning rate must be positive, got %v", c.LearningRate)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("sgd: lambda must be non-negative, got %v", c.Lambda)
	}
	if c.MaxCoord < 0 {
		return fmt.Errorf("sgd: MaxCoord must be non-negative, got %v", c.MaxCoord)
	}
	return nil
}

// Coordinates is the per-node state: the node's rows of U and V. It is the
// only state a node needs to participate in DMFSGD (besides its neighbor
// list), which is what makes the system fully decentralized.
type Coordinates struct {
	U []float64
	V []float64
}

// NewCoordinates draws initial coordinates uniformly from [0,1), as §5.3
// prescribes ("initialized with random numbers uniformly distributed
// between 0 and 1"; the algorithms are insensitive to this choice).
func NewCoordinates(rank int, rng *rand.Rand) *Coordinates {
	return &Coordinates{
		U: vec.NewRandUniform(rng, rank),
		V: vec.NewRandUniform(rng, rank),
	}
}

// Clone returns an independent deep copy.
func (c *Coordinates) Clone() *Coordinates {
	return &Coordinates{U: vec.Copy(c.U), V: vec.Copy(c.V)}
}

// Rank returns the coordinate dimensionality.
func (c *Coordinates) Rank() int { return len(c.U) }

// Valid reports whether both vectors are finite (no NaN/Inf poisoning).
func (c *Coordinates) Valid() bool {
	return !vec.HasNaN(c.U) && !vec.HasNaN(c.V)
}

// Predict returns x̂ = u·vᵀ for arbitrary coordinate rows. For the estimate
// from node i to node j, pass uᵢ and vⱼ.
func Predict(u, v []float64) float64 { return vec.Dot(u, v) }

// PredictTo returns this node's estimate of the path from itself to the
// node owning peerV.
func (c *Coordinates) PredictTo(peerV []float64) float64 {
	return vec.Dot(c.U, peerV)
}

// PredictFrom returns this node's estimate of the path from the node owning
// peerU to itself.
func (c *Coordinates) PredictFrom(peerU []float64) float64 {
	return vec.Dot(peerU, c.V)
}

// UpdateRTT applies eqs. 9 and 10 at node i after it measured x = xᵢⱼ to a
// neighbor j whose coordinates (peerU, peerV) arrived in the probe reply
// (Algorithm 1). Because RTT is symmetric (xᵢⱼ = xⱼᵢ), the single sample
// updates both of i's vectors: uᵢ against vⱼ, and vᵢ against uⱼ.
//
// Updates are computed from the pre-update state and applied atomically; a
// measurement with poisoned peer coordinates is rejected without modifying
// self.
func (cfg Config) UpdateRTT(self *Coordinates, peerU, peerV []float64, x float64) bool {
	if vec.HasNaN(peerU) || vec.HasNaN(peerV) {
		return false
	}
	shrink := 1 - cfg.LearningRate*cfg.Lambda
	// eq. 9: uᵢ against vⱼ.
	gU := cfg.Loss.Scalar(x, vec.Dot(self.U, peerV))
	// eq. 10: vᵢ against uⱼ — computed before either vector moves.
	gV := cfg.Loss.Scalar(x, vec.Dot(peerU, self.V))
	vec.ScaleAxpy(shrink, self.U, -cfg.LearningRate*gU, peerV)
	vec.ScaleAxpy(shrink, self.V, -cfg.LearningRate*gV, peerU)
	cfg.clamp(self)
	return true
}

// UpdateABWSender applies eq. 12 at the probing node i, after the target j
// returned the inferred measurement x = xᵢⱼ together with vⱼ (Algorithm 2,
// step 5).
func (cfg Config) UpdateABWSender(self *Coordinates, peerV []float64, x float64) bool {
	if vec.HasNaN(peerV) {
		return false
	}
	g := cfg.Loss.Scalar(x, vec.Dot(self.U, peerV))
	vec.ScaleAxpy(1-cfg.LearningRate*cfg.Lambda, self.U, -cfg.LearningRate*g, peerV)
	cfg.clamp(self)
	return true
}

// UpdateABWTarget applies eq. 13 at the target node j, which inferred
// x = xᵢⱼ from a probe carrying the sender's uᵢ (Algorithm 2, step 4).
func (cfg Config) UpdateABWTarget(self *Coordinates, peerU []float64, x float64) bool {
	if vec.HasNaN(peerU) {
		return false
	}
	g := cfg.Loss.Scalar(x, vec.Dot(peerU, self.V))
	vec.ScaleAxpy(1-cfg.LearningRate*cfg.Lambda, self.V, -cfg.LearningRate*g, peerU)
	cfg.clamp(self)
	return true
}

// SampleLoss returns the regularized per-sample objective of eqs. 5/11 for
// diagnostics: l(x, uᵢvⱼᵀ) + λ‖uᵢ‖² (+ λ‖vⱼ‖² when includePeer is set).
func (cfg Config) SampleLoss(selfU, peerV []float64, x float64, includePeer bool) float64 {
	v := cfg.Loss.Value(x, vec.Dot(selfU, peerV)) + cfg.Lambda*vec.SqNorm(selfU)
	if includePeer {
		v += cfg.Lambda * vec.SqNorm(peerV)
	}
	return v
}

func (cfg Config) clamp(c *Coordinates) {
	if cfg.MaxCoord > 0 {
		vec.Clamp(c.U, cfg.MaxCoord)
		vec.Clamp(c.V, cfg.MaxCoord)
	}
}
