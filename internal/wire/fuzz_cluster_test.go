package wire

import (
	"bytes"
	"testing"
)

// Fuzz targets for the trainer-cluster messages, same contract as
// fuzz_test.go: never panic or over-allocate on arbitrary input, and a
// successful decode re-encodes byte-identically.

func FuzzReadOwnershipMap(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m OwnershipMap
		if err := DecodeOwnershipMap(data, &m); err != nil {
			return
		}
		out, err := AppendOwnershipMap(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzReadRoutedUpdate(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m RoutedUpdate
		if err := DecodeRoutedUpdate(data, &m); err != nil {
			return
		}
		out, err := AppendRoutedUpdate(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzReadClockDelta(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ClockDelta
		if err := DecodeClockDelta(data, &m); err != nil {
			return
		}
		out, err := AppendClockDelta(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}
