package wire

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestProbeRequestRoundTrip(t *testing.T) {
	in := &ProbeRequest{Seq: 42, From: 7, Rate: 43.5, SenderU: []float64{1.5, -2.25, 0}}
	buf, err := AppendProbeRequest(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out ProbeRequest
	if err := DecodeProbeRequest(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestProbeRequestEmptyVector(t *testing.T) {
	in := &ProbeRequest{Seq: 1, From: 2}
	buf, err := AppendProbeRequest(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out ProbeRequest
	if err := DecodeProbeRequest(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != 1 || out.From != 2 || len(out.SenderU) != 0 {
		t.Errorf("got %+v", out)
	}
}

func TestProbeReplyRoundTrip(t *testing.T) {
	in := &ProbeReply{
		Seq: 9, From: 3, Class: -1,
		U: []float64{0.5, 0.25},
		V: []float64{-1, 2, 3},
	}
	buf, err := AppendProbeReply(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out ProbeReply
	if err := DecodeProbeReply(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	in := &Join{From: 11, Addr: "127.0.0.1:9000"}
	buf, err := AppendJoin(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out Join
	if err := DecodeJoin(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestPeersRoundTrip(t *testing.T) {
	in := &Peers{Addrs: []string{"a:1", "bb:22", "ccc:333"}}
	buf, err := AppendPeers(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out := Peers{Addrs: []string{"stale"}}
	if err := DecodePeers(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Addrs, out.Addrs) {
		t.Errorf("round trip: %v != %v", out.Addrs, in.Addrs)
	}
}

func TestPeersEmpty(t *testing.T) {
	buf, err := AppendPeers(nil, &Peers{})
	if err != nil {
		t.Fatal(err)
	}
	var out Peers
	if err := DecodePeers(buf, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Addrs) != 0 {
		t.Errorf("got %v", out.Addrs)
	}
}

func TestPeekType(t *testing.T) {
	buf, _ := AppendJoin(nil, &Join{From: 1, Addr: "x"})
	typ, err := PeekType(buf)
	if err != nil || typ != TypeJoin {
		t.Errorf("PeekType = %v, %v", typ, err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", []byte{Magic}, ErrTruncated},
		{"bad magic", []byte{0x00, Version, 1}, ErrBadMagic},
		{"bad version", []byte{Magic, 99, 1}, ErrBadVersion},
		{"bad type", []byte{Magic, Version, 200}, ErrBadType},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := PeekType(tt.data); !errors.Is(err, tt.want) {
				t.Errorf("PeekType error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeWrongType(t *testing.T) {
	buf, _ := AppendJoin(nil, &Join{From: 1, Addr: "x"})
	var pr ProbeRequest
	if err := DecodeProbeRequest(buf, &pr); !errors.Is(err, ErrBadType) {
		t.Errorf("decoding join as probe request: %v", err)
	}
	var rep ProbeReply
	if err := DecodeProbeReply(buf, &rep); !errors.Is(err, ErrBadType) {
		t.Errorf("decoding join as probe reply: %v", err)
	}
	req, _ := AppendProbeRequest(nil, &ProbeRequest{})
	var j Join
	if err := DecodeJoin(req, &j); !errors.Is(err, ErrBadType) {
		t.Errorf("decoding probe request as join: %v", err)
	}
	var p Peers
	if err := DecodePeers(req, &p); !errors.Is(err, ErrBadType) {
		t.Errorf("decoding probe request as peers: %v", err)
	}
}

// Truncation at every byte boundary must produce an error, never a panic
// or a silent partial decode.
func TestTruncationRobustness(t *testing.T) {
	msgs := [][]byte{}
	b1, _ := AppendProbeRequest(nil, &ProbeRequest{Seq: 1, From: 2, Rate: 3, SenderU: []float64{1, 2, 3}})
	b2, _ := AppendProbeReply(nil, &ProbeReply{Seq: 1, From: 2, Class: 1, U: []float64{1}, V: []float64{2, 3}})
	b3, _ := AppendJoin(nil, &Join{From: 1, Addr: "host:1234"})
	b4, _ := AppendPeers(nil, &Peers{Addrs: []string{"a:1", "b:2"}})
	msgs = append(msgs, b1, b2, b3, b4)

	for mi, full := range msgs {
		for cut := 0; cut < len(full); cut++ {
			data := full[:cut]
			typ, _ := PeekType(data)
			var err error
			switch typ {
			case TypeProbeRequest:
				err = DecodeProbeRequest(data, &ProbeRequest{})
			case TypeProbeReply:
				err = DecodeProbeReply(data, &ProbeReply{})
			case TypeJoin:
				err = DecodeJoin(data, &Join{})
			case TypePeers:
				err = DecodePeers(data, &Peers{})
			default:
				continue // header itself truncated: fine
			}
			if err == nil {
				t.Fatalf("msg %d truncated at %d decoded without error", mi, cut)
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	buf, _ := AppendProbeRequest(nil, &ProbeRequest{Seq: 1})
	buf = append(buf, 0xFF)
	if err := DecodeProbeRequest(buf, &ProbeRequest{}); err == nil {
		t.Error("trailing bytes accepted")
	}
	rep, _ := AppendProbeReply(nil, &ProbeReply{Seq: 1})
	rep = append(rep, 0)
	if err := DecodeProbeReply(rep, &ProbeReply{}); err == nil {
		t.Error("trailing bytes accepted in reply")
	}
}

func TestSizeLimits(t *testing.T) {
	big := make([]float64, MaxRank+1)
	if _, err := AppendProbeRequest(nil, &ProbeRequest{SenderU: big}); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized vector accepted on encode")
	}
	if _, err := AppendProbeReply(nil, &ProbeReply{V: big}); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized vector accepted on encode")
	}
	longAddr := string(make([]byte, MaxAddrLen+1))
	if _, err := AppendJoin(nil, &Join{Addr: longAddr}); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized address accepted")
	}
	many := make([]string, MaxPeers+1)
	if _, err := AppendPeers(nil, &Peers{Addrs: many}); !errors.Is(err, ErrTooLarge) {
		t.Error("too many peers accepted")
	}
	// Forged oversized length on decode must be rejected before allocating.
	forged := []byte{Magic, Version, byte(TypeProbeRequest)}
	forged = append(forged, 0, 0, 0, 1, 0, 0, 0, 2) // seq, from
	forged = append(forged, 0, 0, 0, 0, 0, 0, 0, 0) // rate
	forged = append(forged, 0xFF, 0xFF)             // vector length 65535
	if err := DecodeProbeRequest(forged, &ProbeRequest{}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("forged length: %v", err)
	}
}

func TestDecodeReusesCapacity(t *testing.T) {
	in := &ProbeReply{Seq: 1, From: 2, U: []float64{1, 2}, V: []float64{3}}
	buf, _ := AppendProbeReply(nil, in)
	out := ProbeReply{
		U: make([]float64, 0, 16),
		V: make([]float64, 0, 16),
	}
	u0 := &out.U[:1][0] // capture backing array
	if err := DecodeProbeReply(buf, &out); err != nil {
		t.Fatal(err)
	}
	if &out.U[0] != u0 {
		t.Error("decode did not reuse preallocated capacity")
	}
}

// Property: encode→decode is the identity for random valid messages.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vec := func() []float64 {
			n := rng.Intn(16)
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v
		}
		req := &ProbeRequest{
			Seq:     rng.Uint32(),
			From:    rng.Uint32(),
			Rate:    rng.Float64() * 1000,
			SenderU: vec(),
		}
		buf, err := AppendProbeRequest(nil, req)
		if err != nil {
			return false
		}
		var gotReq ProbeRequest
		if err := DecodeProbeRequest(buf, &gotReq); err != nil {
			return false
		}
		if gotReq.Seq != req.Seq || gotReq.From != req.From || gotReq.Rate != req.Rate {
			return false
		}
		if len(gotReq.SenderU) != len(req.SenderU) {
			return false
		}
		for i := range req.SenderU {
			if gotReq.SenderU[i] != req.SenderU[i] {
				return false
			}
		}

		rep := &ProbeReply{
			Seq:   rng.Uint32(),
			From:  rng.Uint32(),
			Class: int8(rng.Intn(3) - 1),
			U:     vec(),
			V:     vec(),
		}
		buf2, err := AppendProbeReply(nil, rep)
		if err != nil {
			return false
		}
		var gotRep ProbeReply
		if err := DecodeProbeReply(buf2, &gotRep); err != nil {
			return false
		}
		return gotRep.Seq == rep.Seq && gotRep.Class == rep.Class &&
			len(gotRep.U) == len(rep.U) && len(gotRep.V) == len(rep.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random garbage never panics any decoder.
func TestPropertyGarbageSafety(t *testing.T) {
	f := func(data []byte) bool {
		// Must not panic; errors are fine.
		_ = DecodeProbeRequest(data, &ProbeRequest{})
		_ = DecodeProbeReply(data, &ProbeReply{})
		_ = DecodeJoin(data, &Join{})
		_ = DecodePeers(data, &Peers{})
		_, _ = PeekType(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNaNSurvivesEncoding(t *testing.T) {
	// NaN coordinates must survive the wire (the SGD layer rejects them;
	// the wire layer is policy-free).
	in := &ProbeReply{U: []float64{math.NaN()}, V: []float64{math.Inf(1)}}
	buf, _ := AppendProbeReply(nil, in)
	var out ProbeReply
	if err := DecodeProbeReply(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.U[0]) || !math.IsInf(out.V[0], 1) {
		t.Error("special floats mangled")
	}
}

func BenchmarkProbeReplyEncode(b *testing.B) {
	rep := &ProbeReply{Seq: 1, From: 2, U: make([]float64, 10), V: make([]float64, 10)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		buf, _ = AppendProbeReply(buf, rep)
	}
}

func BenchmarkProbeReplyDecode(b *testing.B) {
	rep := &ProbeReply{Seq: 1, From: 2, U: make([]float64, 10), V: make([]float64, 10)}
	buf, _ := AppendProbeReply(nil, rep)
	out := ProbeReply{U: make([]float64, 0, 16), V: make([]float64, 0, 16)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeProbeReply(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}
