package wire

import (
	"bytes"
	"testing"
)

// Fuzz targets: decoders must never panic or over-allocate on arbitrary
// input, and successfully decoded messages must re-encode to a decodable
// form. Seeds cover every message type and a few mutations; `go test`
// runs the seed corpus, `go test -fuzz=FuzzDecode` explores further.

func fuzzSeeds(f *testing.F) {
	b1, _ := AppendProbeRequest(nil, &ProbeRequest{Seq: 1, From: 2, Rate: 43.5, SenderU: []float64{1, 2}})
	b2, _ := AppendProbeReply(nil, &ProbeReply{Seq: 3, From: 4, Class: -1, U: []float64{1}, V: []float64{2, 3}})
	b3, _ := AppendJoin(nil, &Join{From: 5, Addr: "10.0.0.1:9000"})
	b4, _ := AppendPeers(nil, &Peers{Addrs: []string{"a:1", "b:2"}})
	for _, seed := range [][]byte{b1, b2, b3, b4, {Magic, Version}, {}, {0xFF, 0xFF, 0xFF}} {
		f.Add(seed)
	}
}

func FuzzDecodeProbeRequest(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ProbeRequest
		if err := DecodeProbeRequest(data, &m); err != nil {
			return
		}
		// Decoded OK: round trip must be stable.
		out, err := AppendProbeRequest(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodeProbeReply(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ProbeReply
		if err := DecodeProbeReply(data, &m); err != nil {
			return
		}
		out, err := AppendProbeReply(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodeJoin(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Join
		if err := DecodeJoin(data, &m); err != nil {
			return
		}
		out, err := AppendJoin(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodePeers(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Peers
		if err := DecodePeers(data, &m); err != nil {
			return
		}
		out, err := AppendPeers(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}
