package wire

import (
	"bytes"
	"testing"
)

// Fuzz targets: decoders must never panic or over-allocate on arbitrary
// input, and successfully decoded messages must re-encode to a decodable
// form. Seeds cover every message type and a few mutations; `go test`
// runs the seed corpus, `go test -fuzz=FuzzDecode` explores further.

func fuzzSeeds(f *testing.F) {
	b1, _ := AppendProbeRequest(nil, &ProbeRequest{Seq: 1, From: 2, Rate: 43.5, SenderU: []float64{1, 2}})
	b2, _ := AppendProbeReply(nil, &ProbeReply{Seq: 3, From: 4, Class: -1, U: []float64{1}, V: []float64{2, 3}})
	b3, _ := AppendJoin(nil, &Join{From: 5, Addr: "10.0.0.1:9000"})
	b4, _ := AppendPeers(nil, &Peers{Addrs: []string{"a:1", "b:2"}})
	b5, _ := AppendVersionVec(nil, &VersionVec{From: 6, Inc: 1, Addr: "c:3", N: 5, Rank: 2, Shards: 2, Steps: 9, Vers: []uint64{4, 1}})
	b6, _ := AppendVersionVec(nil, &VersionVec{From: 7})
	b7, _ := AppendDeltaRequest(nil, &DeltaRequest{From: 8, Addr: "d:4", Shards: []uint16{0, 1}})
	b8, _ := AppendDelta(nil, &Delta{
		From: 9, Inc: 3, N: 3, Rank: 1, Shards: 2, Steps: 2, Tau: 1.5, Metric: 0,
		Blocks: []DeltaBlock{{Shard: 1, Ver: 2, U: []float64{1}, V: []float64{2}}},
	})
	b9, _ := AppendOwnershipMap(nil, &OwnershipMap{From: 1, Epoch: 2, Round: 40, Owners: []uint32{0, 1, 0}})
	b10, _ := AppendRoutedUpdate(nil, &RoutedUpdate{
		From: 1, Epoch: 2, Round: 40, Last: true,
		Updates: []Routed{{Target: 3, Sender: 1, K: 0, X: -1}, {Target: 0, Sender: 2, K: 5, X: 1}},
	})
	b11, _ := AppendClockDelta(nil, &ClockDelta{
		From: 1, Epoch: 2, Round: 40, N: 3, Rank: 1, Shards: 2, Steps: 7,
		Blocks: []ClockBlock{{
			Shard: 1,
			Clock: []ClockEntry{{Trainer: 1, Inc: 1, Counter: 9}},
			U:     []float64{1}, V: []float64{2},
		}},
	})
	for _, seed := range [][]byte{b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, {Magic, Version}, {}, {0xFF, 0xFF, 0xFF}} {
		f.Add(seed)
	}
}

func FuzzDecodeProbeRequest(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ProbeRequest
		if err := DecodeProbeRequest(data, &m); err != nil {
			return
		}
		// Decoded OK: round trip must be stable.
		out, err := AppendProbeRequest(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodeProbeReply(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m ProbeReply
		if err := DecodeProbeReply(data, &m); err != nil {
			return
		}
		out, err := AppendProbeReply(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodeJoin(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Join
		if err := DecodeJoin(data, &m); err != nil {
			return
		}
		out, err := AppendJoin(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodePeers(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Peers
		if err := DecodePeers(data, &m); err != nil {
			return
		}
		out, err := AppendPeers(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodeVersionVec(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m VersionVec
		if err := DecodeVersionVec(data, &m); err != nil {
			return
		}
		out, err := AppendVersionVec(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodeDeltaRequest(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m DeltaRequest
		if err := DecodeDeltaRequest(data, &m); err != nil {
			return
		}
		out, err := AppendDeltaRequest(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}

func FuzzDecodeDelta(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Delta
		if err := DecodeDelta(data, &m); err != nil {
			return
		}
		out, err := AppendDelta(nil, &m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes: %x -> %x", data, out)
		}
	})
}
